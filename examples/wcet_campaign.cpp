// WCET-estimation campaign: the full MBPTA workflow of the paper.
//
// 1. Put the platform in WCET-estimation mode (Table I): contenders'
//    REQ forced, COMP latch, 56-cycle holds, TuA starts with zero budget.
// 2. Collect execution times over many randomized runs.
// 3. Fit a Gumbel tail (EVT) to block maxima and read off pWCET values.
// 4. Cross-check against operation-mode runs with real co-runners: the
//    pWCET curve must upper-bound everything observed there.
//
//   ./wcet_campaign [kernel] [runs]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

#include "mbpta/pwcet.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/streaming.hpp"

int main(int argc, char** argv) {
  using namespace cbus;

  const std::string kernel = argc > 1 ? argv[1] : "tblook";
  const auto runs =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 200);

  std::cout << "MBPTA campaign for '" << kernel << "' on the CBA bus ("
            << runs << " analysis runs)\n\n";

  auto tua = workloads::make_eembc(kernel);
  platform::CampaignSpec spec;
  spec.tua = tua.get();
  spec.runs = runs;
  spec.base_seed = 0xE57;
  // MBPTA fits the raw execution-time series, so keep it.
  spec.retain_raw = true;

  // Analysis-time measurements under the Table-I protocol.
  spec.protocol = platform::CampaignSpec::Protocol::kMaxContention;
  spec.config =
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kCba);
  const auto analysis_runs = platform::run_campaign(spec);

  mbpta::MbptaConfig mcfg;
  mcfg.block_size = 10;
  const auto result = mbpta::analyze(analysis_runs.samples(), mcfg);

  std::cout << "samples            : " << analysis_runs.samples().size()
            << "\n"
            << "block maxima used  : " << result.maxima_used << "\n"
            << "observed max       : " << result.observed_max << " cycles\n"
            << "Gumbel fit (PWM)   : location=" << result.fit.location
            << " scale=" << result.fit.scale << "\n"
            << "fit agreement      : moments scale="
            << result.moments_fit.scale << "\n\n";

  std::cout << "diagnostics:\n"
            << "  CV test          : cv=" << result.diagnostics.cv.cv
            << (result.diagnostics.cv.accepted ? "  (accepted)"
                                               : "  (NOT accepted)")
            << "\n"
            << "  runs test        : z=" << result.diagnostics.runs.z
            << (result.diagnostics.runs.accepted ? "  (independent)"
                                                 : "  (dependence!)")
            << "\n"
            << "  lag-1 autocorr   : "
            << result.diagnostics.lag1_autocorrelation << "\n"
            << "  KS distance (PWM): " << result.diagnostics.ks_pwm << "\n\n";

  std::cout << "pWCET curve:\n";
  for (const auto& point : result.curve) {
    std::cout << "  P(exceed) = " << std::scientific << std::setprecision(0)
              << point.exceedance_probability << std::defaultfloat
              << "  ->  " << point.wcet_estimate << " cycles\n";
  }

  // Validation: operation-mode execution with real streaming co-runners
  // must stay below the pWCET estimates.
  workloads::StreamingStream s1(0), s2(0), s3(0);
  platform::CampaignSpec op_spec;
  op_spec.protocol = platform::CampaignSpec::Protocol::kCorun;
  op_spec.config = platform::PlatformConfig::paper(platform::BusSetup::kCba);
  op_spec.tua = tua.get();
  op_spec.corunners = {&s1, &s2, &s3};
  op_spec.runs = runs / 4 + 1;
  op_spec.base_seed = 0x0b5;
  const auto op = platform::run_campaign(op_spec);

  std::cout << "\noperation-mode max (real contenders): "
            << op.exec_time().max() << " cycles\n"
            << "pWCET@1e-12                         : "
            << result.fit.quantile_exceedance(1e-12) << " cycles\n"
            << (op.exec_time().max() <=
                        result.fit.quantile_exceedance(1e-12)
                    ? "bound holds."
                    : "BOUND VIOLATED -- investigate!")
            << "\n";
  return 0;
}
