// Quickstart: the smallest end-to-end use of the cbus public API.
//
// Builds the paper's 4-core LEON3-like platform, runs one EEMBC-like
// kernel in isolation and under maximum contention, with and without
// Credit-Based Arbitration, and prints the slowdowns -- a one-benchmark
// slice of the paper's Figure 1.
//
//   ./quickstart [kernel] [runs]
#include <cstdlib>
#include <iostream>
#include <string>

#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"

int main(int argc, char** argv) {
  using namespace cbus;

  const std::string kernel = argc > 1 ? argv[1] : "matrix";
  const auto runs =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 10);

  std::cout << "cbus quickstart: kernel=" << kernel << ", " << runs
            << " randomized runs per configuration\n\n";

  auto tua = workloads::make_eembc(kernel);

  // One CampaignSpec describes a whole campaign; protocol and platform
  // vary per measurement below.
  platform::CampaignSpec spec;
  spec.tua = tua.get();
  spec.runs = runs;
  spec.base_seed = 0xC0FFEE;

  // 1. Baseline: random-permutations bus, task alone on the machine.
  spec.protocol = platform::CampaignSpec::Protocol::kIsolation;
  spec.config = platform::PlatformConfig::paper(platform::BusSetup::kRp);
  const auto rp_iso = platform::run_campaign(spec);
  std::cout << "RP  isolation      : " << rp_iso.exec_time().mean()
            << " cycles (avg)\n";

  // 2. Baseline under maximum contention (WCET-estimation protocol).
  spec.protocol = platform::CampaignSpec::Protocol::kMaxContention;
  spec.config =
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kRp);
  const auto rp_con = platform::run_campaign(spec);
  std::cout << "RP  max contention : " << rp_con.exec_time().mean()
            << " cycles -> slowdown " << platform::slowdown(rp_con, rp_iso)
            << "x\n";

  // 3. Same contention with CBA enabled: slowdown drops towards the
  //    core-count bound.
  spec.config =
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kCba);
  const auto cba_con = platform::run_campaign(spec);
  std::cout << "CBA max contention : " << cba_con.exec_time().mean()
            << " cycles -> slowdown " << platform::slowdown(cba_con, rp_iso)
            << "x\n";

  // 4. H-CBA: give the task under analysis 50% of the bus.
  spec.config =
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kHcba);
  const auto hcba_con = platform::run_campaign(spec);
  std::cout << "H-CBA max contention: " << hcba_con.exec_time().mean()
            << " cycles -> slowdown " << platform::slowdown(hcba_con, rp_iso)
            << "x\n";

  // The metric record behind every campaign: Jain's fairness index over
  // per-master occupancy cycles, straight from the aggregate.
  std::cout << "\nCBA occupancy fairness (Jain, 1.0 = equal): "
            << cba_con.aggregate.element_stats("fair.jain_occupancy").mean()
            << " vs RP "
            << rp_con.aggregate.element_stats("fair.jain_occupancy").mean()
            << "\n";

  std::cout << "\nCBA turns an (in general) unbounded contention slowdown "
               "into one bounded by the core count.\n";
  return 0;
}
