// Quickstart: the smallest end-to-end use of the cbus public API.
//
// Builds the paper's 4-core LEON3-like platform, runs one EEMBC-like
// kernel in isolation and under maximum contention, with and without
// Credit-Based Arbitration, and prints the slowdowns -- a one-benchmark
// slice of the paper's Figure 1.
//
//   ./quickstart [kernel] [runs]
#include <cstdlib>
#include <iostream>
#include <string>

#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"

int main(int argc, char** argv) {
  using namespace cbus;

  const std::string kernel = argc > 1 ? argv[1] : "matrix";
  const auto runs =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 10);

  std::cout << "cbus quickstart: kernel=" << kernel << ", " << runs
            << " randomized runs per configuration\n\n";

  auto tua = workloads::make_eembc(kernel);

  platform::CampaignConfig campaign;
  campaign.runs = runs;
  campaign.base_seed = 0xC0FFEE;

  // 1. Baseline: random-permutations bus, task alone on the machine.
  const auto rp_iso = platform::run_isolation(
      platform::PlatformConfig::paper(platform::BusSetup::kRp), *tua,
      campaign);
  std::cout << "RP  isolation      : " << rp_iso.exec_time.mean()
            << " cycles (avg)\n";

  // 2. Baseline under maximum contention (WCET-estimation protocol).
  const auto rp_con = platform::run_max_contention(
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kRp), *tua,
      campaign);
  std::cout << "RP  max contention : " << rp_con.exec_time.mean()
            << " cycles -> slowdown " << platform::slowdown(rp_con, rp_iso)
            << "x\n";

  // 3. Same contention with CBA enabled: slowdown drops towards the
  //    core-count bound.
  const auto cba_con = platform::run_max_contention(
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kCba), *tua,
      campaign);
  std::cout << "CBA max contention : " << cba_con.exec_time.mean()
            << " cycles -> slowdown " << platform::slowdown(cba_con, rp_iso)
            << "x\n";

  // 4. H-CBA: give the task under analysis 50% of the bus.
  const auto hcba_con = platform::run_max_contention(
      platform::PlatformConfig::paper_wcet(platform::BusSetup::kHcba), *tua,
      campaign);
  std::cout << "H-CBA max contention: " << hcba_con.exec_time.mean()
            << " cycles -> slowdown " << platform::slowdown(hcba_con, rp_iso)
            << "x\n";

  std::cout << "\nCBA turns an (in general) unbounded contention slowdown "
               "into one bounded by the core count.\n";
  return 0;
}
