// Policy explorer: put every arbitration policy on the same adversarial
// traffic (greedy masters with 5/9/28/56-cycle requests) and print who
// actually gets the bus -- grant shares vs occupancy shares, with and
// without the CBA filter.
//
// This reproduces the paper's core observation interactively: request-fair
// policies equalise GRANTS, CBA equalises CYCLES.
//
//   ./policy_explorer [cycles]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bus/arbiter_factory.hpp"
#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "platform/synthetic_master.hpp"
#include "sim/kernel.hpp"
#include "stats/fairness.hpp"

namespace {

class NoSlave final : public cbus::bus::BusSlave {
 public:
  cbus::Cycle begin_transaction(const cbus::bus::BusRequest&,
                                cbus::Cycle) override {
    return 1;  // unreachable: all requests carry forced holds
  }
};

void explore(cbus::bus::ArbiterKind kind, bool with_cba,
             cbus::Cycle cycles) {
  using namespace cbus;
  const std::vector<Cycle> holds{5, 9, 28, 56};

  rng::RandBank bank(0xF00D);
  NoSlave slave;
  const auto arbiter = bus::make_arbiter(kind, 4, bank, /*tdma_slot=*/56);
  bus::NonSplitBus b(bus::BusConfig{4, true}, *arbiter, slave);
  std::unique_ptr<core::CreditFilter> filter;
  if (with_cba) {
    filter = std::make_unique<core::CreditFilter>(
        core::CbaConfig::homogeneous(4, 56));
    b.set_filter(filter.get());
  }

  sim::Kernel kernel;
  std::vector<std::unique_ptr<platform::SyntheticMaster>> masters;
  for (MasterId m = 0; m < 4; ++m) {
    platform::SyntheticMasterConfig cfg;
    cfg.id = m;
    cfg.hold = holds[m];
    cfg.requests = 0;  // greedy
    cfg.gap = 0;
    masters.push_back(std::make_unique<platform::SyntheticMaster>(cfg, b));
    kernel.add(*masters.back());
  }
  kernel.add(b);
  kernel.run(cycles);

  const auto& s = b.statistics();
  std::vector<double> occupancy;
  std::cout << std::left << std::setw(22)
            << (std::string(to_string(kind)) + (with_cba ? "+CBA" : ""));
  for (MasterId m = 0; m < 4; ++m) {
    occupancy.push_back(s.occupancy_share(m));
    std::cout << "  " << std::setw(5) << std::fixed << std::setprecision(3)
              << s.grant_share(m) << "/" << std::setw(5)
              << s.occupancy_share(m);
  }
  std::cout << "  J=" << std::setprecision(3)
            << cbus::stats::jain_index(occupancy) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using cbus::bus::ArbiterKind;
  const auto cycles =
      static_cast<cbus::Cycle>(argc > 1 ? std::atol(argv[1]) : 200'000);

  std::cout << "Greedy masters with request lengths 5/9/28/56 cycles.\n"
            << "Cells are grant-share/occupancy-share per master; J is the\n"
            << "Jain index over occupancy (1.0 = perfectly cycle-fair).\n\n";

  for (const auto kind :
       {ArbiterKind::kRoundRobin, ArbiterKind::kFifo, ArbiterKind::kLottery,
        ArbiterKind::kRandomPermutation, ArbiterKind::kTdma,
        ArbiterKind::kFixedPriority}) {
    explore(kind, /*with_cba=*/false, cycles);
  }
  std::cout << '\n';
  for (const auto kind :
       {ArbiterKind::kRoundRobin, ArbiterKind::kFifo, ArbiterKind::kLottery,
        ArbiterKind::kRandomPermutation, ArbiterKind::kTdma}) {
    explore(kind, /*with_cba=*/true, cycles);
  }

  std::cout << "\nEvery request-fair policy hands the bus to the longest "
               "requests; the CBA filter restores ~25% occupancy each, "
               "independent of the inner policy.\n";
  return 0;
}
