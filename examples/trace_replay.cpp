// Trace capture & replay: substitute recorded memory-operation traces for
// the synthetic generators -- the integration path for real target traces.
//
// 1. Capture an op trace from a workload generator (stand-in for a trace
//    collected on real hardware) and save it as CSV.
// 2. Reload it and replay it through the platform: identical op streams
//    produce identical execution times under the same seed.
// 3. Attach a transaction-level bus tracer and dump what actually
//    happened on the bus, transaction by transaction.
//
//   ./trace_replay [kernel] [ops]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "trace/bus_trace.hpp"
#include "trace/op_trace.hpp"
#include "workloads/eembc_like.hpp"

int main(int argc, char** argv) {
  using namespace cbus;

  const std::string kernel = argc > 1 ? argv[1] : "canrdr";
  const auto ops_to_capture =
      static_cast<std::size_t>(argc > 2 ? std::atoi(argv[2]) : 2000);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string op_path = (dir / "cbus_ops.csv").string();
  const std::string bus_path = (dir / "cbus_bus.csv").string();

  // 1. Capture.
  auto generator = workloads::make_eembc(kernel);
  generator->reset(42);
  const auto ops = trace::capture(*generator, ops_to_capture);
  trace::save_ops(op_path, ops);
  std::cout << "captured " << ops.size() << " ops from '" << kernel
            << "' -> " << op_path << "\n";

  // 2. Reload & replay twice: determinism check.
  const auto loaded = trace::load_ops(op_path);
  const auto cfg = platform::PlatformConfig::paper(platform::BusSetup::kCba);

  auto replay_once = [&](trace::BusTraceRecorder* recorder) {
    auto stream = trace::replay(loaded);
    platform::Multicore machine(cfg, 7, *stream);
    if (recorder != nullptr) machine.bus().set_observer(recorder);
    return machine.run().tua_cycles;
  };

  const Cycle t1 = replay_once(nullptr);
  const Cycle t2 = replay_once(nullptr);
  std::cout << "replay #1: " << t1 << " cycles, replay #2: " << t2
            << " cycles -> " << (t1 == t2 ? "deterministic" : "MISMATCH!")
            << "\n";

  // 3. Replay with the bus analyzer attached.
  trace::BusTraceRecorder recorder;
  (void)replay_once(&recorder);
  trace::save_bus_trace(bus_path, recorder.transactions());
  std::cout << "bus analyzer: " << recorder.transactions().size()
            << " transactions -> " << bus_path << "\n";
  const auto waits = recorder.wait_stats(0);
  std::cout << "master 0 wait cycles: mean=" << waits.mean()
            << " max=" << waits.max() << " over " << waits.count()
            << " transactions\n";

  std::cout << "\nAny trace in the same CSV format (kind,addr_hex,gap) can "
               "be dropped in place\nof the synthetic kernels -- including "
               "traces collected on real LEON3 hardware.\n";
  return 0;
}
