// Space-domain scenario (the setting of the paper and of Jalle et al.'s
// dual-criticality memory controller): one critical control task sharing
// the SoC with three bandwidth-hungry payload-processing applications.
//
// Demonstrates operation-mode contention (real co-runners, not the WCET
// protocol) and how H-CBA's heterogeneous shares protect the control task
// while leaving the payloads most of the remaining bandwidth.
//
//   ./space_payload [runs]
#include <cstdlib>
#include <iostream>

#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/streaming.hpp"

int main(int argc, char** argv) {
  using namespace cbus;

  const auto runs =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 10);

  // The control task: the cache-handling kernel (moderate bus usage,
  // latency-critical).
  auto control = workloads::make_eembc("cacheb");

  // Payload applications: streaming reads straight through to DRAM.
  workloads::StreamingStream payload1(0);
  workloads::StreamingStream payload2(0);
  workloads::StreamingStream payload3(0);
  const std::vector<cpu::OpStream*> payloads{&payload1, &payload2, &payload3};

  platform::CampaignSpec spec;
  spec.tua = control.get();
  spec.runs = runs;
  spec.base_seed = 0x5ACE;

  spec.protocol = platform::CampaignSpec::Protocol::kIsolation;
  spec.config = platform::PlatformConfig::paper(platform::BusSetup::kRp);
  const auto iso = platform::run_campaign(spec);
  std::cout << "control task alone          : " << iso.exec_time().mean()
            << " cycles\n";

  spec.protocol = platform::CampaignSpec::Protocol::kCorun;
  spec.corunners = payloads;
  for (const auto setup :
       {platform::BusSetup::kRp, platform::BusSetup::kCba,
        platform::BusSetup::kHcba}) {
    spec.config = platform::PlatformConfig::paper(setup);
    const auto r = platform::run_campaign(spec);
    std::cout << "with 3 streaming payloads, " << to_string(setup) << "\t: "
              << r.exec_time().mean() << " cycles -> slowdown "
              << platform::slowdown(r, iso) << "x  (bus util "
              << 100.0 * r.bus_utilization().mean() << "%, control share "
              << 100.0 *
                     r.aggregate.element_stats("bus.occupancy_share", 0)
                         .mean()
              << "%)\n";
  }

  std::cout << "\nH-CBA (control task at 50% bandwidth) shields the "
               "critical task hardest; plain CBA already bounds the "
               "payloads' interference at 3/4 of the bus.\n";
  return 0;
}
