// Slice-granularity campaign checkpoints and multi-process sharding.
//
// A checkpoint file records which work slices of an experiment finished
// and each slice's folded aggregator digest (metrics::Aggregator
// serialize()), so a campaign can be killed and resumed -- or split
// across processes (`cbus_sim --shard i/N`) and merged (`cbus_merge`)
// -- with byte-identical final output. That guarantee rests on two
// legs: slice results are exactly mergeable in any order, and the file
// header pins every input that shapes the run (spec hash, seed, runs,
// batch, slice plan, shard geometry), so a stale or foreign checkpoint
// is rejected with a named-field diagnostic instead of quietly mixing
// campaigns.
//
// File layout (host byte order; a working file, not interchange):
//
//   header  "CBUSCKPT" u32:version u32:len payload u64:fnv1a(payload)
//   entry*  "SLCE"     u32:len payload u64:fnv1a(payload)
//
// Entries are appended and flushed one per finished slice. A process
// killed mid-append leaves a truncated final entry; load_checkpoint
// drops that tail (the slice just reruns) and resume rewrites it. Any
// other malformation -- bad magic, unsupported version, checksum
// mismatch, header fields from a different campaign -- is a hard
// std::invalid_argument.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "metrics/aggregator.hpp"

namespace cbus::exp {

/// Everything the header pins. Two runs with equal metas execute the
/// same slice plan over the same seeds and may share checkpoint state.
struct CheckpointMeta {
  std::string name;
  std::uint64_t seed = 0;
  std::uint64_t max_cycles = 0;
  std::uint64_t spec_hash = 0;   ///< spec_hash() over the full spec
  std::uint32_t runs = 0;        ///< per job
  std::uint32_t batch = 0;       ///< slice width
  std::uint32_t job_count = 0;
  std::uint32_t slice_count = 0; ///< global, job-major slice plan
  std::uint32_t shard_index = 0; ///< this file owns slices s with
  std::uint32_t shard_count = 1; ///<   s % shard_count == shard_index
};

/// FNV-1a over a canonical rendering of every spec field that shapes
/// simulation results (workloads, platform, sweeps, runs, seeds --
/// not output paths or thread counts).
[[nodiscard]] std::uint64_t spec_hash(const ExperimentSpec& spec);

/// The meta a run of `spec` as shard `shard_index` of `shard_count`
/// writes; derives job/slice counts from the sweep grid and batch.
[[nodiscard]] CheckpointMeta make_meta(const ExperimentSpec& spec,
                                       std::uint32_t shard_index,
                                       std::uint32_t shard_count);

/// Throw std::invalid_argument naming the first mismatching field when
/// `on_disk` was not written by a run shaped like `expected`.
void validate_checkpoint_meta(const CheckpointMeta& on_disk,
                              const CheckpointMeta& expected);

/// One finished slice: its place in the global slice plan plus the
/// streaming digest of its finished runs.
struct SliceState {
  std::uint32_t slice = 0;      ///< global slice index
  std::uint32_t job = 0;
  std::uint32_t first_run = 0;
  std::uint32_t run_count = 0;
  std::uint32_t unfinished = 0; ///< runs that hit max_cycles
  metrics::Aggregator aggregate;
};

struct LoadedCheckpoint {
  CheckpointMeta meta;
  std::vector<SliceState> slices;
  /// Byte length of the valid prefix; a truncated tail entry (kill
  /// mid-append) lies beyond it and is discarded on resume.
  std::uint64_t valid_bytes = 0;
};

/// Parse a checkpoint file. Tolerates exactly one truncated tail entry;
/// throws std::invalid_argument on every other malformation.
[[nodiscard]] LoadedCheckpoint load_checkpoint(const std::string& path);

/// Single-pass streaming read: `on_meta` fires once with the parsed
/// header, then `on_slice` once per complete entry, in file order. The
/// caller folds each slice and drops it, so reading an N-slice
/// checkpoint needs O(1) live slice states instead of O(N) -- the
/// foundation of cbus_merge's streaming fold. Same error/truncation
/// contract as load_checkpoint (which is built on this). Returns the
/// valid-prefix byte length.
std::uint64_t stream_checkpoint(
    const std::string& path,
    const std::function<void(const CheckpointMeta&)>& on_meta,
    const std::function<void(SliceState&&)>& on_slice);

/// Appends finished slices to a checkpoint file, one flushed entry per
/// append() so a kill loses at most the entry in flight.
class CheckpointWriter {
 public:
  /// Start a fresh checkpoint at `path` (truncates) with `meta`.
  [[nodiscard]] static CheckpointWriter create(const std::string& path,
                                               const CheckpointMeta& meta);

  /// Reopen an existing checkpoint for appending after its valid prefix
  /// (load_checkpoint's valid_bytes); a truncated tail entry is cut off.
  [[nodiscard]] static CheckpointWriter append_to(const std::string& path,
                                                  std::uint64_t valid_bytes);

  void append(const SliceState& slice);

 private:
  CheckpointWriter() = default;
  std::ofstream out_;
};

/// Load one checkpoint per shard and fold them into the complete slice
/// set of the campaign `spec` describes. Validates every header against
/// the spec, requires exactly one file per shard with distinct indices,
/// every slice exactly once in its owning shard's file, and full
/// coverage of the slice plan. The merged meta reads as a completed
/// single process (shard 0 of 1).
[[nodiscard]] LoadedCheckpoint merge_checkpoints(
    const ExperimentSpec& spec, const std::vector<std::string>& paths);

}  // namespace cbus::exp
