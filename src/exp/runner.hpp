// Experiment execution: sweep expansion into a job list, then a thread
// pool over lockstep slices of every job's campaign (`batch` runs per
// slice, platform::run_campaign_slice) -- slices from all sweep jobs
// share the one pool, so threads stay busy even for a single huge job.
//
// Determinism contract: expansion happens single-threaded and derives one
// seed per job from the experiment master seed through an rng::RandBank;
// every slice derives its runs' seeds from its job seed by run index and
// writes into pre-allocated per-run outcome slots, which are folded in
// run order afterwards -- so the result vector is bit-identical no
// matter how many worker threads run the slices, in which order they
// finish, or what `batch` is.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"
#include "mbpta/pwcet.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"

namespace cbus::exp {

/// One point of the sweep grid: a fully-resolved campaign to run.
struct Job {
  std::size_t index = 0;
  /// Axis assignments in sweep-declaration order (empty when no sweeps).
  std::vector<std::pair<std::string, std::string>> axes;
  std::string kernel;
  Scenario scenario = Scenario::kMaxContention;
  platform::PlatformConfig config;
  std::uint64_t seed = 0;  ///< campaign base seed, derived per job
};

/// What one finished (or failed) job reports to the sinks.
struct JobResult {
  std::size_t index = 0;
  std::vector<std::pair<std::string, std::string>> axes;
  std::string kernel;
  std::string scenario;
  std::uint64_t seed = 0;
  platform::CampaignResult campaign;
  std::optional<mbpta::MbptaResult> mbpta;
  std::string mbpta_error;  ///< analysis declined (e.g. too few samples)
  std::string error;        ///< nonempty when the job itself failed

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

struct ExperimentResult {
  std::vector<JobResult> jobs;
  [[nodiscard]] std::size_t failed_jobs() const noexcept;
};

/// Expand the sweep axes into the cartesian-product job list (declaration
/// order, last axis fastest) and resolve each point's PlatformConfig.
/// Throws std::invalid_argument naming the offending sweep point when a
/// combination is invalid (e.g. `setup = hcba` with `cores = 1`).
[[nodiscard]] std::vector<Job> expand(const ExperimentSpec& spec);

/// Run every job. `threads_override` (when nonzero) beats spec.threads;
/// 0/0 falls back to the hardware concurrency, clamped to the job count.
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentSpec& spec, std::uint32_t threads_override = 0);

/// Run one already-expanded job (exposed for tests).
[[nodiscard]] JobResult run_job(const ExperimentSpec& spec, const Job& job);

}  // namespace cbus::exp
