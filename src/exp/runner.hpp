// Experiment execution: sweep expansion into a job list, then a thread
// pool over lockstep slices of every job's campaign (`batch` runs per
// slice, platform::run_campaign_slice) -- slices from all sweep jobs
// share the one pool, so threads stay busy even for a single huge job.
//
// Determinism contract: expansion happens single-threaded and derives one
// seed per job from the experiment master seed through an rng::RandBank;
// every slice derives its runs' seeds from its job seed by run index and
// writes into pre-allocated per-run outcome slots, which are folded in
// run order afterwards -- so the result vector is bit-identical no
// matter how many worker threads run the slices, in which order they
// finish, or what `batch` is.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "mbpta/convergence.hpp"
#include "mbpta/pwcet.hpp"
#include "obs/telemetry.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"

namespace cbus::exp {

/// One point of the sweep grid: a fully-resolved campaign to run.
struct Job {
  std::size_t index = 0;
  /// Axis assignments in sweep-declaration order (empty when no sweeps).
  std::vector<std::pair<std::string, std::string>> axes;
  std::string kernel;
  Scenario scenario = Scenario::kMaxContention;
  platform::PlatformConfig config;
  std::uint64_t seed = 0;  ///< campaign base seed, derived per job
};

/// What one finished (or failed) job reports to the sinks.
struct JobResult {
  std::size_t index = 0;
  std::vector<std::pair<std::string, std::string>> axes;
  std::string kernel;
  std::string scenario;
  std::uint64_t seed = 0;
  platform::CampaignResult campaign;
  std::optional<mbpta::MbptaResult> mbpta;
  /// Tail-stability diagnostics on the pWCET estimate (with `pwcet`).
  std::optional<mbpta::ConvergenceReport> convergence;
  std::string mbpta_error;  ///< analysis declined (e.g. too few samples)
  std::string error;        ///< nonempty when the job itself failed

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

struct ExperimentResult {
  std::vector<JobResult> jobs;
  /// What the runner measured about its own execution (progress,
  /// throughput, thread utilisation, peak RSS). Always filled; the
  /// caller decides whether to render it (`telemetry = PATH`,
  /// `--telemetry`).
  obs::Telemetry telemetry;
  [[nodiscard]] std::size_t failed_jobs() const noexcept;
};

/// Expand the sweep axes into the cartesian-product job list (declaration
/// order, last axis fastest) and resolve each point's PlatformConfig.
/// Throws std::invalid_argument naming the offending sweep point when a
/// combination is invalid (e.g. `setup = hcba` with `cores = 1`).
[[nodiscard]] std::vector<Job> expand(const ExperimentSpec& spec);

/// Execution knobs run_experiment takes beyond the spec: worker threads,
/// shard ownership and the slice checkpoint. Shard i of N owns exactly
/// the global slices s with s % N == i; each shard writes its own
/// checkpoint file, and cbus_merge folds the set back together.
struct RunOptions {
  std::uint32_t threads_override = 0;  ///< nonzero beats spec.threads
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Overrides spec.checkpoint_path when nonempty. Sharded runs
  /// (shard_count > 1) must checkpoint -- the file IS the shard's
  /// output. Checkpointing requires retain = stream.
  std::string checkpoint_path;
  /// Render the throttled stderr progress line (also enabled by
  /// `progress = on` in the spec). stderr only: stdout and every output
  /// file stay byte-identical with or without it.
  bool progress = false;
};

/// Run every job this process owns. With a checkpoint: slices already in
/// the file are skipped (after validating its header against the spec)
/// and newly finished ones are appended, so a killed campaign resumes
/// where it stopped and produces byte-identical output.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentSpec& spec,
                                              const RunOptions& options);

/// Run every job. `threads_override` (when nonzero) beats spec.threads;
/// 0/0 falls back to the hardware concurrency, clamped to the job count.
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentSpec& spec, std::uint32_t threads_override = 0);

/// Fold externally-executed slice states (a merged shard checkpoint set)
/// into per-job results, exactly as a local streaming run would have.
[[nodiscard]] ExperimentResult finalize_from_slices(
    const ExperimentSpec& spec, const std::vector<SliceState>& slices);

/// Streaming equivalent of merge_checkpoints + finalize_from_slices:
/// reads each shard checkpoint in one pass and folds every slice digest
/// into its job's aggregate as it is decoded, so peak live slice states
/// stay O(1) and peak live aggregators O(jobs) -- independent of the
/// slice count (merge_checkpoints materializes all slices; million-run
/// campaigns cannot). Same validation and diagnostics as
/// merge_checkpoints; exact mergeability makes the result bit-identical
/// to the materializing path. `progress` renders the fold's stderr
/// progress line; result.telemetry reports the fold itself.
[[nodiscard]] ExperimentResult fold_checkpoints_streaming(
    const ExperimentSpec& spec, const std::vector<std::string>& paths,
    bool progress = false);

/// Run one already-expanded job (exposed for tests).
[[nodiscard]] JobResult run_job(const ExperimentSpec& spec, const Job& job);

}  // namespace cbus::exp
