// Result sinks: where a finished experiment's numbers go.
//
// Sinks are pure formatters over the deterministic JobResult vector --
// they never re-run anything, so writing the same results through the
// same sink twice produces byte-identical output (the golden tests and
// the 1-vs-N-thread determinism check rely on this).
//
//   CSV     one row per finished run (tidy data: job axes repeated per
//           row; optional per-job MBPTA/pWCET columns when pwcet is on)
//   JSON    one document: per-job summary stats, samples, pWCET curves
//   summary human-readable per-job table (stats::OnlineStats digests)
#pragma once

#include <iosfwd>
#include <memory>
#include <vector>

#include "exp/runner.hpp"

namespace cbus::exp {

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void write(const ExperimentSpec& spec,
                     const std::vector<JobResult>& results,
                     std::ostream& out) const = 0;
};

enum class SinkKind : std::uint8_t { kCsv, kJson, kSummary };

[[nodiscard]] std::unique_ptr<ResultSink> make_sink(SinkKind kind);

/// Write every output the spec asks for (csv/json paths, "-" = stdout;
/// summary to stdout). Throws std::invalid_argument when a file cannot
/// be opened.
void emit_outputs(const ExperimentSpec& spec,
                  const std::vector<JobResult>& results, std::ostream& out);

}  // namespace cbus::exp
