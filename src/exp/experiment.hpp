// Declarative experiment files: whole measurement campaigns -- which
// workloads on which cores, which bus setups, what to sweep, how many
// runs, where the results go -- as plain text instead of C++.
//
// The format is the platform config-file dialect (`key = value`, `#`
// comments) extended with experiment-level keys, per-core workload
// assignments and sweep axes:
//
//   # Figure-1-style contention study, all kernels x all setups
//   name     = paper-con
//   scenario = con                  # iso | con | stream | corun
//   sweep kernel = cacheb canrdr matrix tblook
//   sweep setup  = rp cba hcba
//   cores    = 4                    # any platform config key works here
//   runs     = 50                   # campaign size per sweep point
//   batch    = 8                    # lockstep replicas per work slice
//   seed     = 0xC0FFEE             # experiment master seed
//   csv      = results.csv          # per-run rows ("-" = stdout)
//   json     = results.json         # structured summary ("-" = stdout)
//   pwcet    = on                   # per-job MBPTA columns
//   metrics  = fair.jain_occupancy,bus.occupancy_share   # or `all`
//
// Per-core workload assignments drive the `corun` scenario (core 0 is
// always the task under analysis):
//
//   scenario = corun
//   kernel   = matrix               # the TuA (alias: core0 = matrix)
//   core1    = stream               # saturating streaming reader
//   core2    = stream:4             # streaming with a 4-cycle gap
//   core3    = tblook               # a real co-running kernel
//
// Every platform key (`cores`, `arbiter`, `setup`, `mode`, `bus`, `dram`,
// `l1_bytes`, `l2_bytes`, `store_buffer`, `maxl`, `tdma_slot`) is
// forwarded to platform::parse_config, so the experiment layer never
// duplicates platform semantics. `sweep <key> = v1 v2 ...` turns any
// platform key -- plus `kernel` and `scenario` -- into an axis; the job
// list is the cartesian product of all axes (declaration order, last
// axis fastest).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace cbus::exp {

/// One sweep axis: a sweepable key and its values in declaration order.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

/// A per-core workload assignment, parsed from e.g. "stream:4".
struct WorkloadSpec {
  enum class Kind : std::uint8_t {
    kKernel,  ///< EEMBC-like kernel by name
    kStream,  ///< StreamingStream with a configurable gap
    kIdle,    ///< core stays idle
    kPhased,  ///< PhaseShiftedStream square-wave load (ctrl stressor)
  };
  Kind kind = Kind::kIdle;
  std::string kernel;      ///< kKernel only
  std::uint32_t gap = 0;   ///< kStream: inter-op gap; kPhased: quiet gap
  // kPhased only (see workloads::PhaseShiftedStream):
  std::uint64_t period = 512;  ///< ops per active/quiet half-wave
  std::uint64_t offset = 0;    ///< wave shift in ops (per-core stagger)

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Parse "matrix" / "stream" / "stream:4" / "idle" /
/// "phased[:period[:offset[:gap]]]"; throws on junk.
[[nodiscard]] WorkloadSpec parse_workload(const std::string& text);

/// Parse a `metrics` selection: `all` (the whole probe catalog, in
/// catalog order) or a comma- and/or whitespace-separated list of
/// catalog keys, each optionally addressing one vector element
/// (`bus.occupancy_share[2]`). Throws std::invalid_argument on unknown
/// keys, malformed references, or an element index on a scalar key.
[[nodiscard]] std::vector<std::string> parse_metric_selection(
    const std::string& value);

/// Space-joined names of every known kernel, for error messages.
[[nodiscard]] std::string known_kernel_list();

/// The measurement protocols an experiment can request per job.
enum class Scenario : std::uint8_t {
  kIsolation,      ///< TuA alone (ISO columns)
  kMaxContention,  ///< WCET-estimation protocol (CON columns)
  kStream,         ///< legacy: 3 saturating streaming co-runners
  kCorun,          ///< per-core workload assignments from the file
};

[[nodiscard]] std::string_view to_string(Scenario scenario) noexcept;

/// Parse "iso" / "con" / "stream" / "corun"; throws on junk.
[[nodiscard]] Scenario parse_scenario(const std::string& text);

/// Every scenario, in declaration order -- the single source for CLI
/// listings (`cbus_sim --list scenarios`).
[[nodiscard]] std::span<const Scenario> all_scenarios() noexcept;

/// Everything a parsed experiment file declares.
struct ExperimentSpec {
  std::string name = "experiment";

  /// Raw platform-config text layered UNDER `platform_keys` (e.g. an
  /// external `--config` file); may be empty.
  std::string platform_text;
  /// Platform keys from the experiment file, in order, last write wins.
  std::vector<std::pair<std::string, std::string>> platform_keys;

  std::string kernel = "matrix";    ///< the task under analysis
  std::string scenario = "con";     ///< kept as text so it can be swept
  /// Co-runner assignments for `corun`: core index (>= 1) -> workload.
  /// Unassigned cores below the highest index idle.
  std::map<std::uint32_t, WorkloadSpec> corunners;

  std::vector<SweepAxis> sweeps;

  std::uint32_t runs = 20;          ///< campaign size per job
  std::uint64_t seed = 0xC0FFEE;    ///< master seed (per-job seeds derive)
  Cycle max_cycles = 50'000'000;    ///< per-run cycle budget
  bool pwcet = false;               ///< per-job MBPTA analysis
  /// Replicas advanced in lockstep per work slice (`batch = <n>`). Output
  /// is byte-identical for every value; larger batches trade memory for
  /// throughput and let worker threads run slices of one big job in
  /// parallel (slices from all sweep jobs share one pool).
  std::uint32_t batch = 1;

  /// `retain = raw` (the default) keeps every job's per-run sample
  /// series: required by per-run CSV rows and the `pwcet` analysis.
  /// `retain = stream` folds exactly-mergeable digests instead, at
  /// memory independent of `runs` -- the mode for million-run campaigns
  /// -- and is required for checkpointing and sharding.
  bool retain_raw = true;

  /// Slice-granularity checkpoint file (`checkpoint = PATH`): finished
  /// slices are appended as they complete, and a rerun of the same spec
  /// skips them (see docs/CAMPAIGNS.md). Requires `retain = stream`.
  std::string checkpoint_path;

  /// Metric selections from the `metrics` directive, in declaration
  /// order: catalog keys (`fair.jain_occupancy`), optionally one vector
  /// element (`bus.occupancy_share[2]`). Empty = no metric columns.
  std::vector<std::string> metrics;

  std::string csv_path;             ///< per-run CSV; "-" = stdout
  std::string json_path;            ///< JSON document; "-" = stdout
  bool summary = true;              ///< human-readable summary on stdout
  std::uint32_t threads = 0;        ///< worker threads; 0 = hardware

  // --- observability (docs/OBSERVABILITY.md) ----------------------------
  // None of these keys enters the spec hash or perturbs simulation: with
  // all of them off/empty, outputs are byte-identical to a spec that
  // never mentions them.
  std::string trace_path;           ///< Chrome trace JSON (`trace = PATH`)
  /// Which run of job 0 the trace captures (`trace_run = <k>`).
  std::uint32_t trace_run = 0;
  /// Cycle window the trace captures (`trace_window = a:b`).
  Cycle trace_window_begin = 0;
  Cycle trace_window_end = std::numeric_limits<Cycle>::max();
  std::string telemetry_path;       ///< telemetry JSON (`telemetry = PATH`)
  bool progress = false;            ///< throttled stderr progress line

  /// Set or replace a platform key (keeps declaration order stable).
  void set_platform_key(const std::string& key, const std::string& value);
};

/// Cross-key validation: `retain = stream` forbids per-run CSV rows and
/// `pwcet` (both need the raw series), and `checkpoint` requires
/// `retain = stream`. Runs at parse time and again after CLI overrides
/// layer on top. Throws std::invalid_argument.
void validate_spec(const ExperimentSpec& spec);

/// Parse an experiment stream. Throws std::invalid_argument with the
/// offending line number on malformed input or unknown keys.
[[nodiscard]] ExperimentSpec parse_experiment(std::istream& in);

/// Parse an experiment file by path.
[[nodiscard]] ExperimentSpec load_experiment(const std::string& path);

}  // namespace cbus::exp
