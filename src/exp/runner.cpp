#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <thread>

#include "common/contracts.hpp"
#include "obs/timeline.hpp"
#include "platform/config_file.hpp"
#include "rng/rand_bank.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/fixed_stream.hpp"
#include "workloads/phased.hpp"
#include "workloads/streaming.hpp"

namespace cbus::exp {

namespace {

/// Resolve one sweep point into a PlatformConfig by layering the axis
/// overrides over the experiment's platform keys over the base text, then
/// handing the whole thing to the platform parser (later lines win).
[[nodiscard]] platform::PlatformConfig make_config(
    const ExperimentSpec& spec, const Job& job) {
  std::ostringstream text;
  text << spec.platform_text << '\n';
  for (const auto& [key, value] : spec.platform_keys) {
    text << key << " = " << value << '\n';
  }
  for (const auto& [key, value] : job.axes) {
    if (key == "kernel" || key == "scenario") continue;
    text << key << " = " << value << '\n';
  }
  // Maximum contention is definitionally a WCET-estimation-mode protocol
  // (paper §III-B), so the scenario implies the mode -- and a declared
  // `mode = operation` (plain key or sweep value) is a contradiction the
  // user must resolve, not something to silently override.
  if (job.scenario == Scenario::kMaxContention) {
    std::string declared;
    if (!spec.platform_text.empty()) {
      std::istringstream base(spec.platform_text);
      platform::scan_config_lines(
          base, [&](const std::string& key, const std::string& value, int) {
            if (key == "mode") declared = value;
          });
    }
    for (const auto& [key, value] : spec.platform_keys) {
      if (key == "mode") declared = value;
    }
    for (const auto& [key, value] : job.axes) {
      if (key == "mode") declared = value;
    }
    CBUS_EXPECTS_MSG(declared.empty() || declared == "wcet",
                     "scenario 'con' is the WCET-estimation protocol and "
                     "conflicts with mode = " + declared);
    text << "mode = wcet\n";
  }
  std::istringstream in(text.str());
  return platform::parse_config(in);
}

[[nodiscard]] std::unique_ptr<cpu::OpStream> make_stream(
    const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadSpec::Kind::kKernel:
      return workloads::make_eembc(spec.kernel);
    case WorkloadSpec::Kind::kStream:
      return std::make_unique<workloads::StreamingStream>(spec.gap);
    case WorkloadSpec::Kind::kPhased:
      return std::make_unique<workloads::PhaseShiftedStream>(
          spec.period, spec.offset, spec.gap);
    case WorkloadSpec::Kind::kIdle:
      // An empty op list finishes immediately: the core sits idle.
      return std::make_unique<workloads::FixedOpsStream>(
          std::vector<cpu::MemOp>{});
  }
  CBUS_ASSERT(false);
  return nullptr;  // unreachable
}

/// Co-runner workload specs for a corun job: masters 1..k in order, with
/// unassigned cores below the highest assigned index idling.
[[nodiscard]] std::vector<WorkloadSpec> corunner_workloads(
    const ExperimentSpec& spec, std::uint32_t n_cores) {
  std::vector<WorkloadSpec> workloads;
  std::uint32_t highest = 0;
  for (const auto& [index, workload] : spec.corunners) {
    if (index < n_cores) highest = std::max(highest, index);
  }
  for (std::uint32_t core = 1; core <= highest; ++core) {
    const auto it = spec.corunners.find(core);
    workloads.push_back(it == spec.corunners.end()
                            ? WorkloadSpec{}  // idle filler
                            : it->second);
  }
  return workloads;
}

/// The job's campaign in stream-factory form: every run builds its own
/// streams, so any worker thread can execute any contiguous slice of the
/// campaign as one lockstep batch (platform::run_campaign_slice).
[[nodiscard]] platform::CampaignSpec make_campaign(const ExperimentSpec& spec,
                                                   const Job& job) {
  platform::CampaignSpec campaign;
  campaign.config = job.config;
  campaign.base_seed = job.seed;
  campaign.runs = spec.runs;
  campaign.max_cycles = spec.max_cycles;
  campaign.batch = std::max(1u, spec.batch);
  campaign.retain_raw = spec.retain_raw;
  const std::string kernel = job.kernel;
  campaign.tua_factory = [kernel]() { return workloads::make_eembc(kernel); };

  switch (job.scenario) {
    case Scenario::kIsolation:
      campaign.protocol = platform::CampaignSpec::Protocol::kIsolation;
      break;
    case Scenario::kMaxContention:
      campaign.protocol = platform::CampaignSpec::Protocol::kMaxContention;
      break;
    case Scenario::kStream:
      // The legacy cbus_sim scenario: saturating streaming readers on
      // every other core, capped at three.
      campaign.protocol = platform::CampaignSpec::Protocol::kCorun;
      for (std::uint32_t i = 0;
           i < std::min<std::uint32_t>(3, job.config.n_cores - 1); ++i) {
        campaign.corunner_factories.emplace_back([]() {
          return std::make_unique<workloads::StreamingStream>(0);
        });
      }
      break;
    case Scenario::kCorun:
      campaign.protocol = platform::CampaignSpec::Protocol::kCorun;
      for (const WorkloadSpec& workload :
           corunner_workloads(spec, job.config.n_cores)) {
        campaign.corunner_factories.emplace_back(
            [workload]() { return make_stream(workload); });
      }
      break;
  }
  return campaign;
}

/// A JobResult shell carrying the job's identity (everything but the
/// campaign payload), shared by run_job and run_experiment.
[[nodiscard]] JobResult job_shell(const Job& job) {
  JobResult out;
  out.index = job.index;
  out.axes = job.axes;
  out.kernel = job.kernel;
  out.scenario = std::string(to_string(job.scenario));
  out.seed = job.seed;
  return out;
}

/// Run the optional per-job MBPTA analysis (and its tail-convergence
/// diagnostics) over the folded campaign.
void attach_mbpta(const ExperimentSpec& spec, JobResult& out) {
  if (!spec.pwcet) return;
  mbpta::MbptaConfig mcfg;
  mcfg.block_size = std::max<std::size_t>(2, spec.runs / 30);
  try {
    out.mbpta = mbpta::analyze(out.campaign.samples(), mcfg);
    out.convergence = mbpta::tail_convergence(out.campaign.samples(), mcfg);
  } catch (const std::exception& e) {
    out.mbpta_error = e.what();
  }
}

/// Fold a job's per-run outcomes (in run order, retaining the raw
/// series) and attach the optional MBPTA analysis -- the tail of the
/// original run_job.
void finalize_job(const ExperimentSpec& spec,
                  std::span<platform::RunOutcome> outcomes, JobResult& out) {
  out.campaign.aggregate =
      metrics::Aggregator(metrics::Aggregator::Options{.retain_raw = true});
  for (platform::RunOutcome& outcome : outcomes) {
    if (!outcome.finished) {
      ++out.campaign.unfinished_runs;
      continue;
    }
    out.campaign.aggregate.add(outcome.record);
  }
  attach_mbpta(spec, out);
}

}  // namespace

std::size_t ExperimentResult::failed_jobs() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const JobResult& j) { return j.failed(); }));
}

std::vector<Job> expand(const ExperimentSpec& spec) {
  std::size_t total = 1;
  for (const auto& axis : spec.sweeps) {
    CBUS_EXPECTS_MSG(!axis.values.empty(),
                     "sweep '" + axis.key + "' has no values");
    total *= axis.values.size();
  }

  std::vector<Job> jobs;
  jobs.reserve(total);
  std::vector<std::size_t> odometer(spec.sweeps.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    Job job;
    job.index = index;
    job.kernel = spec.kernel;
    job.scenario = parse_scenario(spec.scenario);
    for (std::size_t a = 0; a < spec.sweeps.size(); ++a) {
      const std::string& value = spec.sweeps[a].values[odometer[a]];
      job.axes.emplace_back(spec.sweeps[a].key, value);
      if (spec.sweeps[a].key == "kernel") {
        job.kernel = value;
      } else if (spec.sweeps[a].key == "scenario") {
        job.scenario = parse_scenario(value);
      }
    }
    try {
      job.config = make_config(spec, job);
    } catch (const std::invalid_argument& e) {
      std::ostringstream msg;
      msg << "job " << index;
      for (const auto& [k, v] : job.axes) msg << ' ' << k << '=' << v;
      msg << ": " << e.what();
      CBUS_EXPECTS_MSG(false, msg.str());
    }
    jobs.push_back(std::move(job));

    // Advance the odometer, last axis fastest.
    for (std::size_t a = spec.sweeps.size(); a-- > 0;) {
      if (++odometer[a] < spec.sweeps[a].values.size()) break;
      odometer[a] = 0;
    }
  }

  // A co-runner assignment beyond the core count is a declared workload
  // that would silently never run. Under a `cores` sweep, too-small
  // sweep points drop assignments by design, so the bound is the LARGEST
  // core count any corun job runs with.
  std::uint32_t max_corun_cores = 0;
  bool any_corun = false;
  for (const Job& job : jobs) {
    if (job.scenario == Scenario::kCorun) {
      any_corun = true;
      max_corun_cores = std::max(max_corun_cores, job.config.n_cores);
    }
  }
  if (any_corun) {
    for (const auto& [index, workload] : spec.corunners) {
      CBUS_EXPECTS_MSG(index < max_corun_cores,
                       "core" + std::to_string(index) +
                           " assignment would never run: every corun job "
                           "has cores <= " +
                           std::to_string(max_corun_cores));
    }
  }

  // Per-job seed streams from the master seed, in job order, so results
  // do not depend on which thread picks up which job.
  rng::RandBank bank(spec.seed);
  for (Job& job : jobs) job.seed = bank.derive_seed();
  return jobs;
}

JobResult run_job(const ExperimentSpec& spec, const Job& job) {
  JobResult out = job_shell(job);
  try {
    // run_campaign's factory form does the slice partitioning and
    // run-order folding itself (single-threaded here; run_experiment
    // schedules the slices of all jobs on its own pool instead).
    out.campaign = platform::run_campaign(make_campaign(spec, job));
    attach_mbpta(spec, out);
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                const RunOptions& options) {
  validate_spec(spec);
  CBUS_EXPECTS(options.shard_count >= 1 &&
               options.shard_index < options.shard_count);
  const std::string checkpoint_path = !options.checkpoint_path.empty()
                                          ? options.checkpoint_path
                                          : spec.checkpoint_path;
  CBUS_EXPECTS_MSG(options.shard_count == 1 || !checkpoint_path.empty(),
                   "sharded runs need a checkpoint file (the shard's "
                   "results live there)");
  CBUS_EXPECTS_MSG(checkpoint_path.empty() || !spec.retain_raw,
                   "checkpointing requires retain = stream (slice digests "
                   "are what the checkpoint stores)");
  CBUS_EXPECTS_MSG(spec.trace_path.empty() || options.shard_count == 1,
                   "tracing a sharded run is ambiguous (the traced run may "
                   "belong to another shard); trace a single-process run");
  const bool progress = spec.progress || options.progress;

  const std::vector<Job> jobs = expand(spec);
  const std::uint32_t batch = std::max(1u, spec.batch);

  // Per-job campaign in factory form plus (raw mode only) its per-run
  // outcome slots. Building the campaign cannot fail (streams are made
  // lazily inside slices), so failures surface per slice below.
  struct Plan {
    platform::CampaignSpec campaign;
    std::vector<platform::RunOutcome> outcomes;
  };
  std::vector<Plan> plans(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    plans[j].campaign = make_campaign(spec, jobs[j]);
    if (spec.retain_raw) plans[j].outcomes.resize(spec.runs);
  }

  // The timeline tracer captures exactly ONE run: run `trace_run` of job
  // 0 (the first sweep point). It rides the campaign's instrument hook;
  // only the single worker executing that run's slice ever touches the
  // Timeline, so no synchronisation is needed. On a checkpoint resume
  // where that slice already finished, the trace file is written with no
  // events (the run was not re-executed).
  std::optional<obs::Timeline> timeline;
  if (!spec.trace_path.empty()) {
    obs::Timeline::Config tcfg;
    tcfg.window_begin = spec.trace_window_begin;
    tcfg.window_end = spec.trace_window_end;
    timeline.emplace(tcfg);
    plans[0].campaign.instrument =
        [&timeline, target = spec.trace_run](std::uint32_t run,
                                             platform::Multicore& machine) {
          if (run == target) timeline->attach(machine);
        };
  }

  // ONE job-major slice plan across every sweep job: batches span jobs,
  // so the worker pool stays busy even when the experiment has fewer
  // jobs than threads (e.g. one job with thousands of runs). In raw
  // mode every slice writes into its job's pre-sized outcome slots and
  // results are folded in run order; in streaming mode each slice folds
  // into a local digest merged under a mutex -- exact mergeability
  // makes both identical for any thread count, batch, shard split or
  // resume. Every job has the same runs/batch, so the plan is a pure
  // function of the slice index and is computed on demand rather than
  // materialized: per-slice bookkeeping vectors would put the run count
  // back into the memory profile that streaming mode exists to flatten
  // (docs/CAMPAIGNS.md pins peak RSS independent of the run count).
  struct Slice {
    std::size_t job;
    std::uint32_t first;
    std::uint32_t count;
  };
  const std::uint32_t slices_per_job = (spec.runs + batch - 1) / batch;
  const std::size_t slice_count =
      jobs.size() * static_cast<std::size_t>(slices_per_job);
  const auto slice_of = [&](std::size_t s) {
    const std::uint32_t first =
        static_cast<std::uint32_t>(s % slices_per_job) * batch;
    return Slice{s / slices_per_job, first,
                 std::min(batch, spec.runs - first)};
  };

  // A failed slice fails its whole job; only the lowest-numbered
  // slice's error is reported so the report is thread-count
  // independent.
  constexpr std::size_t kNoErrorSlice = ~static_cast<std::size_t>(0);
  struct JobError {
    std::size_t slice = kNoErrorSlice;
    std::string message;
  };
  std::vector<JobError> job_errors(jobs.size());
  std::mutex error_mutex;

  // Streaming fold state, one aggregator per job; and the checkpoint,
  // whose already-completed slices are merged in up front and skipped.
  std::vector<metrics::Aggregator> folded(jobs.size());
  std::vector<std::uint32_t> fold_unfinished(jobs.size(), 0);
  std::vector<bool> done(slice_count, false);
  std::mutex fold_mutex;
  std::optional<CheckpointWriter> writer;
  if (!checkpoint_path.empty()) {
    const CheckpointMeta meta =
        make_meta(spec, options.shard_index, options.shard_count);
    CBUS_ASSERT(meta.job_count == jobs.size() &&
                meta.slice_count == slice_count);
    if (std::filesystem::exists(checkpoint_path)) {
      LoadedCheckpoint loaded = load_checkpoint(checkpoint_path);
      validate_checkpoint_meta(loaded.meta, meta);
      for (SliceState& state : loaded.slices) {
        CBUS_EXPECTS_MSG(state.slice < slice_count && !done[state.slice],
                         "checkpoint repeats slice " +
                             std::to_string(state.slice));
        const Slice planned = slice_of(state.slice);
        CBUS_EXPECTS_MSG(
            state.job == planned.job && state.first_run == planned.first &&
                state.run_count == planned.count &&
                state.slice % options.shard_count == options.shard_index,
            "checkpoint slice " + std::to_string(state.slice) +
                " does not match the campaign's slice plan");
        done[state.slice] = true;
        folded[state.job].merge(state.aggregate);
        fold_unfinished[state.job] += state.unfinished;
      }
      writer.emplace(
          CheckpointWriter::append_to(checkpoint_path, loaded.valid_bytes));
    } else {
      writer.emplace(CheckpointWriter::create(checkpoint_path, meta));
    }
  }

  // This shard's share of the plan, minus what the checkpoint already
  // holds -- counted (to size the pool), never materialized.
  std::size_t pending = 0;
  std::uint64_t pending_runs = 0;
  for (std::size_t s = options.shard_index; s < slice_count;
       s += options.shard_count) {
    if (!done[s]) {
      ++pending;
      pending_runs += slice_of(s).count;
    }
  }

  std::uint32_t threads = options.threads_override != 0
                              ? options.threads_override
                              : spec.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads =
      static_cast<std::uint32_t>(std::min<std::size_t>(threads, pending));

  // Telemetry counts only the work this process actually executes:
  // resumed/foreign slices are excluded from the totals, so runs/sec and
  // ETA describe this invocation, not the whole campaign. Counters and
  // the progress meter are updated under fold_mutex (the meter is not
  // thread-safe); busy seconds go to per-worker slots, lock-free.
  obs::Telemetry telemetry;
  telemetry.total_slices = pending;
  telemetry.total_runs = pending_runs;
  telemetry.thread_busy_seconds.assign(std::max(1u, threads), 0.0);
  std::optional<obs::ProgressMeter> meter;
  if (progress) meter.emplace(std::cerr, pending_runs);
  const auto wall_start = std::chrono::steady_clock::now();

  const auto run_one = [&](std::size_t s) {
    const Slice slice = slice_of(s);
    const auto slice_start = std::chrono::steady_clock::now();
    std::optional<SliceState> state;
    if (spec.retain_raw) {
      platform::run_campaign_slice(
          plans[slice.job].campaign, slice.first,
          std::span<platform::RunOutcome>(plans[slice.job].outcomes)
              .subspan(slice.first, slice.count));
    } else {
      std::vector<platform::RunOutcome> outcomes(slice.count);
      platform::run_campaign_slice(plans[slice.job].campaign, slice.first,
                                   outcomes);
      state.emplace();
      state->slice = static_cast<std::uint32_t>(s);
      state->job = static_cast<std::uint32_t>(slice.job);
      state->first_run = slice.first;
      state->run_count = slice.count;
      for (const platform::RunOutcome& outcome : outcomes) {
        if (!outcome.finished) {
          ++state->unfinished;
          continue;
        }
        state->aggregate.add(outcome.record);
      }
    }
    const double slice_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - slice_start)
            .count();
    const std::lock_guard<std::mutex> lock(fold_mutex);
    if (state.has_value()) {
      if (writer.has_value()) writer->append(*state);
      folded[slice.job].merge(state->aggregate);
      fold_unfinished[slice.job] += state->unfinished;
    }
    ++telemetry.slices_done;
    telemetry.runs_done += slice.count;
    telemetry.slice_wall_ms.add(slice_ms);
    if (meter.has_value()) {
      meter->update(telemetry.runs_done, telemetry.slices_done);
    }
  };

  // Workers claim raw slice indices and skip the ones this shard does
  // not own (or the checkpoint already holds); `done` is read-only once
  // the pool starts, so the scan needs no lock.
  std::atomic<std::size_t> next{0};
  const auto worker = [&](std::uint32_t me) {
    double busy = 0.0;
    while (true) {
      const std::size_t s = next.fetch_add(1);
      if (s >= slice_count) break;
      if (s % options.shard_count != options.shard_index || done[s]) {
        continue;
      }
      const auto t0 = std::chrono::steady_clock::now();
      try {
        run_one(s);
      } catch (const std::exception& e) {
        const std::size_t job = s / slices_per_job;
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (s < job_errors[job].slice) {
          job_errors[job] = JobError{s, e.what()};
        }
      }
      busy += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    }
    telemetry.thread_busy_seconds[me] += busy;  // exclusive per-worker slot
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& t : pool) t.join();
  }

  telemetry.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
  telemetry.peak_rss_kb = obs::peak_rss_kb();
  if (meter.has_value()) {
    meter->finish(telemetry.runs_done, telemetry.slices_done);
  }
  if (timeline.has_value()) {
    std::ofstream trace(spec.trace_path, std::ios::trunc);
    CBUS_EXPECTS_MSG(trace.good(),
                     "cannot write trace file: " + spec.trace_path);
    timeline->write_json(trace);
  }

  ExperimentResult result;
  result.jobs.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    JobResult& out = result.jobs[j];
    out = job_shell(jobs[j]);
    // A failed slice fails the whole job (as an exception aborted the
    // whole campaign before).
    if (job_errors[j].slice != kNoErrorSlice) {
      out.error = job_errors[j].message;
    }
    if (!out.error.empty()) continue;
    if (spec.retain_raw) {
      finalize_job(spec, plans[j].outcomes, out);
    } else {
      out.campaign.aggregate = std::move(folded[j]);
      out.campaign.unfinished_runs = fold_unfinished[j];
      attach_mbpta(spec, out);  // no-op: stream mode forbids pwcet
    }
  }
  result.telemetry = std::move(telemetry);
  return result;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                std::uint32_t threads_override) {
  RunOptions options;
  options.threads_override = threads_override;
  return run_experiment(spec, options);
}

ExperimentResult finalize_from_slices(const ExperimentSpec& spec,
                                      const std::vector<SliceState>& slices) {
  validate_spec(spec);
  const std::vector<Job> jobs = expand(spec);
  ExperimentResult result;
  result.jobs.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    result.jobs[j] = job_shell(jobs[j]);
  }
  for (const SliceState& state : slices) {
    CBUS_EXPECTS_MSG(state.job < jobs.size(),
                     "slice state references job " +
                         std::to_string(state.job) + " of " +
                         std::to_string(jobs.size()));
    result.jobs[state.job].campaign.aggregate.merge(state.aggregate);
    result.jobs[state.job].campaign.unfinished_runs += state.unfinished;
  }
  for (JobResult& job : result.jobs) attach_mbpta(spec, job);
  return result;
}

ExperimentResult fold_checkpoints_streaming(
    const ExperimentSpec& spec, const std::vector<std::string>& paths,
    bool progress) {
  validate_spec(spec);
  CBUS_EXPECTS_MSG(!paths.empty(), "no checkpoint files to merge");

  const std::vector<Job> jobs = expand(spec);
  const CheckpointMeta merged_meta = make_meta(spec, 0, 1);
  ExperimentResult result;
  result.jobs.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    result.jobs[j] = job_shell(jobs[j]);
  }

  obs::Telemetry telemetry;
  telemetry.total_slices = merged_meta.slice_count;
  telemetry.total_runs = static_cast<std::uint64_t>(spec.runs) * jobs.size();
  telemetry.thread_busy_seconds.assign(1, 0.0);  // the fold is sequential
  std::optional<obs::ProgressMeter> meter;
  if (progress) meter.emplace(std::cerr, telemetry.total_runs);
  const auto wall_start = std::chrono::steady_clock::now();

  // Every validation merge_checkpoints performs, applied as headers and
  // slices stream past -- never holding more than one slice (and one
  // aggregator per job) live. The first header establishes the shard
  // geometry; exact mergeability makes the fold order irrelevant, so
  // slices fold straight into their job in file order.
  std::uint32_t shard_count = 0;
  std::vector<bool> shard_seen;
  std::vector<bool> slice_seen(merged_meta.slice_count, false);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::uint32_t file_shard = 0;
    (void)stream_checkpoint(
        paths[i],
        [&](const CheckpointMeta& meta) {
          if (shard_count == 0) {
            shard_count = meta.shard_count;
            CBUS_EXPECTS_MSG(
                paths.size() == shard_count,
                "the campaign ran as " + std::to_string(shard_count) +
                    " shard(s) but " + std::to_string(paths.size()) +
                    " checkpoint file(s) were given");
            shard_seen.assign(shard_count, false);
          }
          CBUS_EXPECTS_MSG(meta.shard_index < shard_count,
                           paths[i] + ": shard index " +
                               std::to_string(meta.shard_index) +
                               " out of range for " +
                               std::to_string(shard_count) + " shard(s)");
          validate_checkpoint_meta(
              meta, make_meta(spec, meta.shard_index, shard_count));
          CBUS_EXPECTS_MSG(!shard_seen[meta.shard_index],
                           "two checkpoint files claim shard " +
                               std::to_string(meta.shard_index));
          shard_seen[meta.shard_index] = true;
          file_shard = meta.shard_index;
        },
        [&](SliceState&& state) {
          CBUS_EXPECTS_MSG(state.slice < merged_meta.slice_count,
                           "slice " + std::to_string(state.slice) +
                               " is outside the campaign's slice plan");
          CBUS_EXPECTS_MSG(
              state.slice % shard_count == file_shard,
              "slice " + std::to_string(state.slice) + " appears in shard " +
                  std::to_string(file_shard) +
                  "'s checkpoint but belongs to shard " +
                  std::to_string(state.slice % shard_count));
          CBUS_EXPECTS_MSG(!slice_seen[state.slice],
                           "slice " + std::to_string(state.slice) +
                               " appears twice in the checkpoint set");
          CBUS_EXPECTS_MSG(state.job < jobs.size(),
                           "slice state references job " +
                               std::to_string(state.job) + " of " +
                               std::to_string(jobs.size()));
          slice_seen[state.slice] = true;
          result.jobs[state.job].campaign.aggregate.merge(state.aggregate);
          result.jobs[state.job].campaign.unfinished_runs += state.unfinished;
          ++telemetry.slices_done;
          telemetry.runs_done += state.run_count;
          if (meter.has_value()) {
            meter->update(telemetry.runs_done, telemetry.slices_done);
          }
        });
  }
  for (std::uint32_t s = 0; s < merged_meta.slice_count; ++s) {
    CBUS_EXPECTS_MSG(slice_seen[s],
                     "checkpoint set is incomplete: slice " +
                         std::to_string(s) + " (shard " +
                         std::to_string(s % shard_count) +
                         ") has not finished");
  }
  for (JobResult& job : result.jobs) attach_mbpta(spec, job);

  telemetry.wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - wall_start)
                               .count();
  telemetry.thread_busy_seconds[0] = telemetry.wall_seconds;
  telemetry.peak_rss_kb = obs::peak_rss_kb();
  if (meter.has_value()) {
    meter->finish(telemetry.runs_done, telemetry.slices_done);
  }
  result.telemetry = std::move(telemetry);
  return result;
}

}  // namespace cbus::exp
