#include "exp/runner.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <thread>

#include "common/contracts.hpp"
#include "platform/config_file.hpp"
#include "rng/rand_bank.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/fixed_stream.hpp"
#include "workloads/streaming.hpp"

namespace cbus::exp {

namespace {

/// Resolve one sweep point into a PlatformConfig by layering the axis
/// overrides over the experiment's platform keys over the base text, then
/// handing the whole thing to the platform parser (later lines win).
[[nodiscard]] platform::PlatformConfig make_config(
    const ExperimentSpec& spec, const Job& job) {
  std::ostringstream text;
  text << spec.platform_text << '\n';
  for (const auto& [key, value] : spec.platform_keys) {
    text << key << " = " << value << '\n';
  }
  for (const auto& [key, value] : job.axes) {
    if (key == "kernel" || key == "scenario") continue;
    text << key << " = " << value << '\n';
  }
  // Maximum contention is definitionally a WCET-estimation-mode protocol
  // (paper §III-B), so the scenario implies the mode -- and a declared
  // `mode = operation` (plain key or sweep value) is a contradiction the
  // user must resolve, not something to silently override.
  if (job.scenario == Scenario::kMaxContention) {
    std::string declared;
    if (!spec.platform_text.empty()) {
      std::istringstream base(spec.platform_text);
      platform::scan_config_lines(
          base, [&](const std::string& key, const std::string& value, int) {
            if (key == "mode") declared = value;
          });
    }
    for (const auto& [key, value] : spec.platform_keys) {
      if (key == "mode") declared = value;
    }
    for (const auto& [key, value] : job.axes) {
      if (key == "mode") declared = value;
    }
    CBUS_EXPECTS_MSG(declared.empty() || declared == "wcet",
                     "scenario 'con' is the WCET-estimation protocol and "
                     "conflicts with mode = " + declared);
    text << "mode = wcet\n";
  }
  std::istringstream in(text.str());
  return platform::parse_config(in);
}

[[nodiscard]] std::unique_ptr<cpu::OpStream> make_stream(
    const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadSpec::Kind::kKernel:
      return workloads::make_eembc(spec.kernel);
    case WorkloadSpec::Kind::kStream:
      return std::make_unique<workloads::StreamingStream>(spec.gap);
    case WorkloadSpec::Kind::kIdle:
      // An empty op list finishes immediately: the core sits idle.
      return std::make_unique<workloads::FixedOpsStream>(
          std::vector<cpu::MemOp>{});
  }
  CBUS_ASSERT(false);
  return nullptr;  // unreachable
}

/// Build the co-runner streams for a corun job: masters 1..k in order,
/// with unassigned cores below the highest assigned index idling.
[[nodiscard]] std::vector<std::unique_ptr<cpu::OpStream>> make_corunners(
    const ExperimentSpec& spec, std::uint32_t n_cores) {
  std::vector<std::unique_ptr<cpu::OpStream>> streams;
  std::uint32_t highest = 0;
  for (const auto& [index, workload] : spec.corunners) {
    if (index < n_cores) highest = std::max(highest, index);
  }
  for (std::uint32_t core = 1; core <= highest; ++core) {
    const auto it = spec.corunners.find(core);
    streams.push_back(it == spec.corunners.end()
                          ? make_stream(WorkloadSpec{})  // idle filler
                          : make_stream(it->second));
  }
  return streams;
}

}  // namespace

std::size_t ExperimentResult::failed_jobs() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const JobResult& j) { return j.failed(); }));
}

std::vector<Job> expand(const ExperimentSpec& spec) {
  std::size_t total = 1;
  for (const auto& axis : spec.sweeps) {
    CBUS_EXPECTS_MSG(!axis.values.empty(),
                     "sweep '" + axis.key + "' has no values");
    total *= axis.values.size();
  }

  std::vector<Job> jobs;
  jobs.reserve(total);
  std::vector<std::size_t> odometer(spec.sweeps.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    Job job;
    job.index = index;
    job.kernel = spec.kernel;
    job.scenario = parse_scenario(spec.scenario);
    for (std::size_t a = 0; a < spec.sweeps.size(); ++a) {
      const std::string& value = spec.sweeps[a].values[odometer[a]];
      job.axes.emplace_back(spec.sweeps[a].key, value);
      if (spec.sweeps[a].key == "kernel") {
        job.kernel = value;
      } else if (spec.sweeps[a].key == "scenario") {
        job.scenario = parse_scenario(value);
      }
    }
    try {
      job.config = make_config(spec, job);
    } catch (const std::invalid_argument& e) {
      std::ostringstream msg;
      msg << "job " << index;
      for (const auto& [k, v] : job.axes) msg << ' ' << k << '=' << v;
      msg << ": " << e.what();
      CBUS_EXPECTS_MSG(false, msg.str());
    }
    jobs.push_back(std::move(job));

    // Advance the odometer, last axis fastest.
    for (std::size_t a = spec.sweeps.size(); a-- > 0;) {
      if (++odometer[a] < spec.sweeps[a].values.size()) break;
      odometer[a] = 0;
    }
  }

  // A co-runner assignment beyond the core count is a declared workload
  // that would silently never run. Under a `cores` sweep, too-small
  // sweep points drop assignments by design, so the bound is the LARGEST
  // core count any corun job runs with.
  std::uint32_t max_corun_cores = 0;
  bool any_corun = false;
  for (const Job& job : jobs) {
    if (job.scenario == Scenario::kCorun) {
      any_corun = true;
      max_corun_cores = std::max(max_corun_cores, job.config.n_cores);
    }
  }
  if (any_corun) {
    for (const auto& [index, workload] : spec.corunners) {
      CBUS_EXPECTS_MSG(index < max_corun_cores,
                       "core" + std::to_string(index) +
                           " assignment would never run: every corun job "
                           "has cores <= " +
                           std::to_string(max_corun_cores));
    }
  }

  // Per-job seed streams from the master seed, in job order, so results
  // do not depend on which thread picks up which job.
  rng::RandBank bank(spec.seed);
  for (Job& job : jobs) job.seed = bank.derive_seed();
  return jobs;
}

JobResult run_job(const ExperimentSpec& spec, const Job& job) {
  JobResult out;
  out.index = job.index;
  out.axes = job.axes;
  out.kernel = job.kernel;
  out.scenario = std::string(to_string(job.scenario));
  out.seed = job.seed;
  try {
    auto tua = workloads::make_eembc(job.kernel);
    platform::CampaignSpec campaign;
    campaign.config = job.config;
    campaign.tua = tua.get();
    campaign.base_seed = job.seed;
    campaign.runs = spec.runs;
    campaign.max_cycles = spec.max_cycles;

    // Owned co-runner streams (kStream/kCorun); campaign.corunners holds
    // non-owning views into this vector.
    std::vector<std::unique_ptr<cpu::OpStream>> owned;
    switch (job.scenario) {
      case Scenario::kIsolation:
        campaign.protocol = platform::CampaignSpec::Protocol::kIsolation;
        break;
      case Scenario::kMaxContention:
        campaign.protocol =
            platform::CampaignSpec::Protocol::kMaxContention;
        break;
      case Scenario::kStream:
        // The legacy cbus_sim scenario: saturating streaming readers on
        // every other core, capped at three.
        campaign.protocol = platform::CampaignSpec::Protocol::kCorun;
        for (std::uint32_t i = 0;
             i < std::min<std::uint32_t>(3, job.config.n_cores - 1); ++i) {
          owned.push_back(std::make_unique<workloads::StreamingStream>(0));
        }
        break;
      case Scenario::kCorun:
        campaign.protocol = platform::CampaignSpec::Protocol::kCorun;
        owned = make_corunners(spec, job.config.n_cores);
        break;
    }
    campaign.corunners.reserve(owned.size());
    for (const auto& s : owned) campaign.corunners.push_back(s.get());

    out.campaign = platform::run_campaign(campaign);

    if (spec.pwcet) {
      mbpta::MbptaConfig mcfg;
      mcfg.block_size = std::max<std::size_t>(2, spec.runs / 30);
      try {
        out.mbpta = mbpta::analyze(out.campaign.samples(), mcfg);
      } catch (const std::exception& e) {
        out.mbpta_error = e.what();
      }
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

ExperimentResult run_experiment(const ExperimentSpec& spec,
                                std::uint32_t threads_override) {
  const std::vector<Job> jobs = expand(spec);

  std::uint32_t threads =
      threads_override != 0 ? threads_override : spec.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, jobs.size()));

  ExperimentResult result;
  result.jobs.resize(jobs.size());

  std::atomic<std::size_t> next{0};
  const auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs.size()) return;
      result.jobs[i] = run_job(spec, jobs[i]);
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  return result;
}

}  // namespace cbus::exp
