#include "exp/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "common/binary_io.hpp"
#include "common/build_info.hpp"
#include "common/contracts.hpp"

namespace cbus::exp {

namespace {

constexpr char kFileMagic[8] = {'C', 'B', 'U', 'S', 'C', 'K', 'P', 'T'};
/// Owned by common/build_info.hpp so --version and the telemetry headers
/// report the format this build actually reads and writes.
constexpr std::uint32_t kFormatVersion = common::kCheckpointFormatVersion;
constexpr std::uint32_t kSliceMagic = 0x45434C53;  // "SLCE"
/// An entry holds one slice's digest: far below this even for huge
/// metric catalogs. Guards length-prefixed reads of corrupted files.
constexpr std::uint32_t kMaxPayload = 1u << 30;

/// Canonical-rendering separators: never appear in config values.
constexpr char kUnit = '\x1f';
constexpr char kGroup = '\x1e';

[[nodiscard]] bool read_raw(std::istream& in, char* buf, std::size_t n) {
  in.read(buf, static_cast<std::streamsize>(n));
  return in.gcount() == static_cast<std::streamsize>(n);
}

[[nodiscard]] std::string header_payload(const CheckpointMeta& meta) {
  std::ostringstream out;
  io::write_u64(out, meta.seed);
  io::write_u64(out, meta.max_cycles);
  io::write_u64(out, meta.spec_hash);
  io::write_u32(out, meta.runs);
  io::write_u32(out, meta.batch);
  io::write_u32(out, meta.job_count);
  io::write_u32(out, meta.slice_count);
  io::write_u32(out, meta.shard_index);
  io::write_u32(out, meta.shard_count);
  io::write_string(out, meta.name);
  return out.str();
}

[[nodiscard]] CheckpointMeta parse_header_payload(const std::string& bytes) {
  std::istringstream in(bytes);
  CheckpointMeta meta;
  meta.seed = io::read_u64(in, "checkpoint seed");
  meta.max_cycles = io::read_u64(in, "checkpoint max_cycles");
  meta.spec_hash = io::read_u64(in, "checkpoint spec hash");
  meta.runs = io::read_u32(in, "checkpoint runs");
  meta.batch = io::read_u32(in, "checkpoint batch");
  meta.job_count = io::read_u32(in, "checkpoint job count");
  meta.slice_count = io::read_u32(in, "checkpoint slice count");
  meta.shard_index = io::read_u32(in, "checkpoint shard index");
  meta.shard_count = io::read_u32(in, "checkpoint shard count");
  meta.name = io::read_string(in, "checkpoint name", 4096);
  return meta;
}

[[nodiscard]] std::string slice_payload(const SliceState& slice) {
  std::ostringstream out;
  io::write_u32(out, slice.slice);
  io::write_u32(out, slice.job);
  io::write_u32(out, slice.first_run);
  io::write_u32(out, slice.run_count);
  io::write_u32(out, slice.unfinished);
  slice.aggregate.serialize(out);
  return out.str();
}

[[nodiscard]] SliceState parse_slice_payload(const std::string& bytes) {
  std::istringstream in(bytes);
  SliceState slice;
  slice.slice = io::read_u32(in, "slice index");
  slice.job = io::read_u32(in, "slice job");
  slice.first_run = io::read_u32(in, "slice first run");
  slice.run_count = io::read_u32(in, "slice run count");
  slice.unfinished = io::read_u32(in, "slice unfinished count");
  slice.aggregate = metrics::Aggregator::deserialize(in);
  return slice;
}

void write_framed(std::ostream& out, const std::string& payload) {
  io::write_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  io::write_u64(out, io::fnv1a(payload));
}

}  // namespace

std::uint64_t spec_hash(const ExperimentSpec& spec) {
  // Canonical rendering of every result-shaping field, in fixed order.
  // Output paths, summary and threads are deliberately absent: they do
  // not change what the slices compute.
  std::ostringstream text;
  text << spec.name << kUnit << spec.kernel << kUnit << spec.scenario
       << kUnit << spec.platform_text << kGroup;
  for (const auto& [key, value] : spec.platform_keys) {
    text << key << '=' << value << kUnit;
  }
  text << kGroup;
  for (const auto& [core, workload] : spec.corunners) {
    text << core << '=' << static_cast<int>(workload.kind) << ':'
         << workload.kernel << ':' << workload.gap;
    // Extra fields render only for the kinds that use them, so hashes
    // of pre-existing workloads stay byte-stable as kinds are added.
    if (workload.kind == WorkloadSpec::Kind::kPhased) {
      text << ':' << workload.period << ':' << workload.offset;
    }
    text << kUnit;
  }
  text << kGroup;
  for (const auto& axis : spec.sweeps) {
    text << axis.key << '=';
    for (const auto& value : axis.values) text << value << kUnit;
    text << kGroup;
  }
  for (const auto& metric : spec.metrics) text << metric << kUnit;
  text << kGroup << spec.runs << kUnit << spec.seed << kUnit
       << spec.max_cycles << kUnit << spec.batch << kUnit
       << (spec.pwcet ? 1 : 0) << kUnit << (spec.retain_raw ? 1 : 0);
  return io::fnv1a(text.str());
}

CheckpointMeta make_meta(const ExperimentSpec& spec,
                         std::uint32_t shard_index,
                         std::uint32_t shard_count) {
  CBUS_EXPECTS(shard_count >= 1 && shard_index < shard_count);
  CheckpointMeta meta;
  meta.name = spec.name;
  meta.seed = spec.seed;
  meta.max_cycles = spec.max_cycles;
  meta.spec_hash = spec_hash(spec);
  meta.runs = spec.runs;
  meta.batch = std::max(1u, spec.batch);
  std::size_t job_count = 1;
  for (const auto& axis : spec.sweeps) job_count *= axis.values.size();
  meta.job_count = static_cast<std::uint32_t>(job_count);
  const std::uint32_t slices_per_job =
      (spec.runs + meta.batch - 1) / meta.batch;
  meta.slice_count =
      static_cast<std::uint32_t>(job_count * slices_per_job);
  meta.shard_index = shard_index;
  meta.shard_count = shard_count;
  return meta;
}

namespace {

template <typename T>
void check_field(const char* field, const T& on_disk, const T& expected) {
  if (on_disk == expected) return;
  std::ostringstream msg;
  msg << "checkpoint does not match this campaign: " << field << " is ";
  if constexpr (std::is_same_v<T, std::string>) {
    msg << '\'' << on_disk << "' in the file but '" << expected
        << "' here";
  } else {
    msg << on_disk << " in the file but " << expected << " here";
  }
  CBUS_EXPECTS_MSG(false, msg.str());
}

}  // namespace

void validate_checkpoint_meta(const CheckpointMeta& on_disk,
                              const CheckpointMeta& expected) {
  check_field("name", on_disk.name, expected.name);
  check_field("seed", on_disk.seed, expected.seed);
  check_field("max_cycles", on_disk.max_cycles, expected.max_cycles);
  check_field("spec_hash", on_disk.spec_hash, expected.spec_hash);
  check_field("runs", on_disk.runs, expected.runs);
  check_field("batch", on_disk.batch, expected.batch);
  check_field("job_count", on_disk.job_count, expected.job_count);
  check_field("slice_count", on_disk.slice_count, expected.slice_count);
  check_field("shard_index", on_disk.shard_index, expected.shard_index);
  check_field("shard_count", on_disk.shard_count, expected.shard_count);
}

std::uint64_t stream_checkpoint(
    const std::string& path,
    const std::function<void(const CheckpointMeta&)>& on_meta,
    const std::function<void(SliceState&&)>& on_slice) {
  std::ifstream in(path, std::ios::binary);
  CBUS_EXPECTS_MSG(in.good(), "cannot open checkpoint file: " + path);

  // Header: every truncation here is a hard error -- a checkpoint is
  // created with a flushed header before any slice runs, so a file
  // without one was never a checkpoint (delete it to start over).
  char magic[sizeof kFileMagic];
  CBUS_EXPECTS_MSG(read_raw(in, magic, sizeof magic) &&
                       std::equal(magic, magic + sizeof magic, kFileMagic),
                   "not a cbus checkpoint file (bad magic): " + path);
  const std::uint32_t version = io::read_u32(in, "checkpoint version");
  CBUS_EXPECTS_MSG(version == kFormatVersion,
                   "checkpoint format version " + std::to_string(version) +
                       " is not supported (this build reads version " +
                       std::to_string(kFormatVersion) + ")");
  const std::uint32_t header_len = io::read_u32(in, "checkpoint header");
  CBUS_EXPECTS_MSG(header_len <= kMaxPayload,
                   "implausible checkpoint header length (corrupted file)");
  std::string header(header_len, '\0');
  CBUS_EXPECTS_MSG(read_raw(in, header.data(), header_len),
                   "truncated checkpoint header: " + path);
  const std::uint64_t header_sum = io::read_u64(in, "checkpoint checksum");
  CBUS_EXPECTS_MSG(header_sum == io::fnv1a(header),
                   "checkpoint header failed its checksum (corrupted "
                   "file): " + path);

  if (on_meta) on_meta(parse_header_payload(header));
  std::uint64_t valid_bytes = static_cast<std::uint64_t>(in.tellg());

  // Entries: a short read anywhere inside one entry is the expected
  // kill-mid-append artifact -- drop the tail and report the prefix. A
  // complete entry that fails its magic or checksum is corruption.
  while (true) {
    char entry_magic[4];
    in.read(entry_magic, sizeof entry_magic);
    if (in.gcount() == 0) break;  // clean end of file
    if (in.gcount() < static_cast<std::streamsize>(sizeof entry_magic)) {
      break;  // truncated tail
    }
    std::uint32_t magic_value;
    std::memcpy(&magic_value, entry_magic, sizeof magic_value);
    CBUS_EXPECTS_MSG(magic_value == kSliceMagic,
                     "checkpoint slice entry has a bad magic (corrupted "
                     "file): " + path);
    char len_bytes[4];
    if (!read_raw(in, len_bytes, sizeof len_bytes)) break;
    std::uint32_t len;
    std::memcpy(&len, len_bytes, sizeof len);
    CBUS_EXPECTS_MSG(len <= kMaxPayload,
                     "implausible slice entry length (corrupted file): " +
                         path);
    std::string payload(len, '\0');
    if (!read_raw(in, payload.data(), len)) break;
    char sum_bytes[8];
    if (!read_raw(in, sum_bytes, sizeof sum_bytes)) break;
    std::uint64_t sum;
    std::memcpy(&sum, sum_bytes, sizeof sum);
    CBUS_EXPECTS_MSG(sum == io::fnv1a(payload),
                     "checkpoint slice entry failed its checksum "
                     "(corrupted file): " + path);
    if (on_slice) on_slice(parse_slice_payload(payload));
    valid_bytes = static_cast<std::uint64_t>(in.tellg());
  }
  return valid_bytes;
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  LoadedCheckpoint out;
  out.valid_bytes = stream_checkpoint(
      path, [&](const CheckpointMeta& meta) { out.meta = meta; },
      [&](SliceState&& slice) { out.slices.push_back(std::move(slice)); });
  return out;
}

CheckpointWriter CheckpointWriter::create(const std::string& path,
                                          const CheckpointMeta& meta) {
  CheckpointWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  CBUS_EXPECTS_MSG(writer.out_.good(),
                   "cannot create checkpoint file: " + path);
  writer.out_.write(kFileMagic, sizeof kFileMagic);
  io::write_u32(writer.out_, kFormatVersion);
  write_framed(writer.out_, header_payload(meta));
  writer.out_.flush();
  CBUS_EXPECTS_MSG(writer.out_.good(),
                   "cannot write checkpoint header: " + path);
  return writer;
}

CheckpointWriter CheckpointWriter::append_to(const std::string& path,
                                             std::uint64_t valid_bytes) {
  // Cut off any truncated tail entry first, so appends start at the end
  // of the last complete one.
  std::error_code ec;
  std::filesystem::resize_file(path, valid_bytes, ec);
  CBUS_EXPECTS_MSG(!ec, "cannot truncate checkpoint file: " + path);
  CheckpointWriter writer;
  writer.out_.open(path, std::ios::binary | std::ios::app);
  CBUS_EXPECTS_MSG(writer.out_.good(),
                   "cannot reopen checkpoint file: " + path);
  return writer;
}

void CheckpointWriter::append(const SliceState& slice) {
  io::write_u32(out_, kSliceMagic);
  write_framed(out_, slice_payload(slice));
  out_.flush();
  CBUS_EXPECTS_MSG(out_.good(), "checkpoint append failed (disk full?)");
}

LoadedCheckpoint merge_checkpoints(const ExperimentSpec& spec,
                                   const std::vector<std::string>& paths) {
  CBUS_EXPECTS_MSG(!paths.empty(), "no checkpoint files to merge");

  std::vector<LoadedCheckpoint> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    shards.push_back(load_checkpoint(path));
  }
  const std::uint32_t shard_count = shards.front().meta.shard_count;
  CBUS_EXPECTS_MSG(
      paths.size() == shard_count,
      "the campaign ran as " + std::to_string(shard_count) + " shard(s) "
          "but " + std::to_string(paths.size()) + " checkpoint file(s) "
          "were given");

  std::vector<bool> shard_seen(shard_count, false);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const CheckpointMeta& meta = shards[i].meta;
    // Each file must describe this spec as its own shard; comparing
    // against make_meta with the file's own index checks every other
    // field (including shard_count) with named diagnostics.
    CBUS_EXPECTS_MSG(meta.shard_index < shard_count,
                     paths[i] + ": shard index " +
                         std::to_string(meta.shard_index) +
                         " out of range for " +
                         std::to_string(shard_count) + " shard(s)");
    validate_checkpoint_meta(
        meta, make_meta(spec, meta.shard_index, shard_count));
    CBUS_EXPECTS_MSG(!shard_seen[meta.shard_index],
                     "two checkpoint files claim shard " +
                         std::to_string(meta.shard_index));
    shard_seen[meta.shard_index] = true;
  }

  LoadedCheckpoint merged;
  merged.meta = make_meta(spec, 0, 1);
  std::vector<bool> slice_seen(merged.meta.slice_count, false);
  for (const LoadedCheckpoint& shard : shards) {
    for (const SliceState& slice : shard.slices) {
      CBUS_EXPECTS_MSG(slice.slice < merged.meta.slice_count,
                       "slice " + std::to_string(slice.slice) +
                           " is outside the campaign's slice plan");
      CBUS_EXPECTS_MSG(
          slice.slice % shard_count == shard.meta.shard_index,
          "slice " + std::to_string(slice.slice) + " appears in shard " +
              std::to_string(shard.meta.shard_index) +
              "'s checkpoint but belongs to shard " +
              std::to_string(slice.slice % shard_count));
      CBUS_EXPECTS_MSG(!slice_seen[slice.slice],
                       "slice " + std::to_string(slice.slice) +
                           " appears twice in the checkpoint set");
      slice_seen[slice.slice] = true;
      merged.slices.push_back(slice);
    }
  }
  for (std::uint32_t s = 0; s < merged.meta.slice_count; ++s) {
    CBUS_EXPECTS_MSG(slice_seen[s],
                     "checkpoint set is incomplete: slice " +
                         std::to_string(s) + " (shard " +
                         std::to_string(s % shard_count) +
                         ") has not finished");
  }
  std::sort(merged.slices.begin(), merged.slices.end(),
            [](const SliceState& a, const SliceState& b) {
              return a.slice < b.slice;
            });
  return merged;
}

}  // namespace cbus::exp
