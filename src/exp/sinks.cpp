#include "exp/sinks.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/contracts.hpp"
#include "metrics/record.hpp"

namespace cbus::exp {

namespace {

/// Shortest round-trippable decimal rendering: integral doubles (cycle
/// counts) print without a decimal point and 159.4 stays "159.4", so
/// CSV/JSON rows are stable across thread counts and platforms with
/// IEEE doubles.
[[nodiscard]] std::string fmt(double x) {
  char buf[40];
  for (int digits = 15; digits <= 17; ++digits) {
    std::snprintf(buf, sizeof buf, "%.*g", digits, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The pWCET estimate at an exceedance probability, "" when unavailable.
[[nodiscard]] std::string pwcet_at(const JobResult& job, double p) {
  if (!job.mbpta.has_value()) return "";
  for (const auto& point : job.mbpta->curve) {
    if (point.exceedance_probability == p) return fmt(point.wcet_estimate);
  }
  return "";
}

/// Sweep-axis columns beyond kernel/scenario (which always get columns).
[[nodiscard]] std::vector<std::string> extra_axis_keys(
    const ExperimentSpec& spec) {
  std::vector<std::string> keys;
  for (const auto& axis : spec.sweeps) {
    if (axis.key != "kernel" && axis.key != "scenario") {
      keys.push_back(axis.key);
    }
  }
  return keys;
}

[[nodiscard]] std::string axis_value(const JobResult& job,
                                     const std::string& key) {
  for (const auto& [k, v] : job.axes) {
    if (k == key) return v;
  }
  return "";
}

/// One rendered metric column: a key plus the element it reads.
struct MetricColumn {
  std::string header;   ///< bare key, or key[i] for vector elements
  std::string base;     ///< key without the element suffix
  std::size_t element = 0;
};

/// Resolve the spec's metric selections against the result set. A bare
/// per-master key expands to one column per element, sized by the widest
/// finished job (a `cores` sweep makes widths job-dependent; narrower
/// jobs render empty cells). Column layout depends only on the job
/// results, so it is identical for any worker-thread count.
[[nodiscard]] std::vector<MetricColumn> metric_columns(
    const ExperimentSpec& spec, const std::vector<JobResult>& results) {
  std::vector<MetricColumn> columns;
  for (const std::string& entry : spec.metrics) {
    const metrics::KeyRef ref = metrics::parse_key_ref(entry);
    if (ref.element.has_value()) {
      columns.push_back(MetricColumn{entry, ref.base, *ref.element});
      continue;
    }
    std::size_t width = 0;
    bool vector_valued = false;
    for (const JobResult& job : results) {
      if (job.failed() || !job.campaign.aggregate.has(ref.base)) continue;
      width = std::max(width, job.campaign.aggregate.width(ref.base));
      vector_valued |= job.campaign.aggregate.is_vector(ref.base);
    }
    if (!vector_valued) {
      columns.push_back(MetricColumn{ref.base, ref.base, 0});
      continue;
    }
    for (std::size_t e = 0; e < width; ++e) {
      columns.push_back(
          MetricColumn{metrics::element_key(ref.base, e), ref.base, e});
    }
  }
  return columns;
}

/// The per-run value of one metric column, "" when the job lacks the key
/// or the element (narrow jobs under a `cores` sweep).
[[nodiscard]] std::string metric_cell(const JobResult& job,
                                      const MetricColumn& column,
                                      std::size_t run) {
  const auto& aggregate = job.campaign.aggregate;
  if (!aggregate.has(column.base) ||
      column.element >= aggregate.width(column.base)) {
    return "";
  }
  return fmt(aggregate.element_samples(column.base, column.element)[run]);
}

class CsvSink final : public ResultSink {
 public:
  void write(const ExperimentSpec& spec,
             const std::vector<JobResult>& results,
             std::ostream& out) const override {
    const auto extra = extra_axis_keys(spec);
    const auto metric_cols = metric_columns(spec, results);
    out << "job,kernel,scenario";
    for (const auto& key : extra) out << ',' << key;
    out << ",seed,run,cycles";
    for (const auto& column : metric_cols) out << ',' << column.header;
    if (spec.pwcet) {
      out << ",gumbel_location,gumbel_scale,pwcet_1e-9,pwcet_1e-12";
    }
    out << '\n';

    for (const JobResult& job : results) {
      if (job.failed()) continue;  // the summary sink reports failures
      std::string prefix = std::to_string(job.index);
      prefix += ',' + job.kernel + ',' + job.scenario;
      for (const auto& key : extra) prefix += ',' + axis_value(job, key);
      prefix += ',' + std::to_string(job.seed);
      std::string suffix;
      if (spec.pwcet) {
        suffix = ',';
        if (job.mbpta.has_value()) {
          suffix += fmt(job.mbpta->fit.location) + ',' +
                    fmt(job.mbpta->fit.scale);
        } else {
          suffix += ',';
        }
        suffix += ',' + pwcet_at(job, 1e-9) + ',' + pwcet_at(job, 1e-12);
      }
      const auto& samples = job.campaign.samples();
      for (std::size_t run = 0; run < samples.size(); ++run) {
        out << prefix << ',' << run << ',' << fmt(samples[run]);
        for (const auto& column : metric_cols) {
          out << ',' << metric_cell(job, column, run);
        }
        out << suffix << '\n';
      }
    }
  }
};

/// JSON has no inf/nan literals; non-finite metric values (the
/// fair.maxmin_* infinity contract over idle masters, and the NaN a
/// Welford mean over infinities degrades to) render as null.
[[nodiscard]] std::string json_number(double x) {
  return std::isfinite(x) ? fmt(x) : "null";
}

/// {"mean": ..., "min": ..., "max": ..., "stddev": ...} for one element.
void write_element_stats(std::ostream& out, const stats::OnlineStats& s) {
  out << "{\"mean\": " << json_number(s.mean()) << ", \"min\": "
      << json_number(s.min()) << ", \"max\": " << json_number(s.max())
      << ", \"stddev\": " << json_number(s.stddev()) << '}';
}

/// One selected metric as a JSON value: per-element stats objects --
/// an array for full per-master keys, a single object otherwise, null
/// when the job never produced the key/element.
void write_metric_json(std::ostream& out, const JobResult& job,
                       const std::string& entry) {
  const metrics::KeyRef ref = metrics::parse_key_ref(entry);
  const auto& aggregate = job.campaign.aggregate;
  if (!aggregate.has(ref.base)) {
    out << "null";
    return;
  }
  const std::size_t width = aggregate.width(ref.base);
  if (ref.element.has_value()) {
    if (*ref.element >= width) {
      out << "null";
      return;
    }
    write_element_stats(out, aggregate.element_stats(ref.base, *ref.element));
    return;
  }
  if (!aggregate.is_vector(ref.base)) {
    write_element_stats(out, aggregate.element_stats(ref.base));
    return;
  }
  out << '[';
  for (std::size_t e = 0; e < width; ++e) {
    if (e != 0) out << ", ";
    write_element_stats(out, aggregate.element_stats(ref.base, e));
  }
  out << ']';
}

class JsonSink final : public ResultSink {
 public:
  void write(const ExperimentSpec& spec,
             const std::vector<JobResult>& results,
             std::ostream& out) const override {
    out << "{\n";
    out << "  \"experiment\": \"" << json_escape(spec.name) << "\",\n";
    out << "  \"runs_per_job\": " << spec.runs << ",\n";
    out << "  \"base_seed\": " << spec.seed << ",\n";
    out << "  \"jobs\": [";
    for (std::size_t j = 0; j < results.size(); ++j) {
      const JobResult& job = results[j];
      out << (j == 0 ? "\n" : ",\n");
      out << "    {\n";
      out << "      \"job\": " << job.index << ",\n";
      out << "      \"kernel\": \"" << json_escape(job.kernel) << "\",\n";
      out << "      \"scenario\": \"" << json_escape(job.scenario)
          << "\",\n";
      out << "      \"axes\": {";
      for (std::size_t a = 0; a < job.axes.size(); ++a) {
        out << (a == 0 ? "" : ", ") << '"' << json_escape(job.axes[a].first)
            << "\": \"" << json_escape(job.axes[a].second) << '"';
      }
      out << "},\n";
      out << "      \"seed\": " << job.seed;
      if (job.failed()) {
        out << ",\n      \"error\": \"" << json_escape(job.error)
            << "\"\n    }";
        continue;
      }
      const auto& stats = job.campaign.exec_time();
      out << ",\n      \"mean\": " << fmt(stats.mean());
      out << ",\n      \"min\": " << fmt(stats.min());
      out << ",\n      \"max\": " << fmt(stats.max());
      out << ",\n      \"ci95\": " << fmt(stats.ci95_halfwidth());
      out << ",\n      \"bus_util\": "
          << fmt(job.campaign.bus_utilization().mean());
      out << ",\n      \"unfinished\": " << job.campaign.unfinished_runs;
      out << ",\n      \"credit_underflows\": "
          << job.campaign.credit_underflows();
      // Streaming campaigns (retain = stream) do not keep the per-run
      // series, so the samples array is raw-retention-only.
      if (job.campaign.aggregate.retains_raw()) {
        out << ",\n      \"samples\": [";
        const auto& samples = job.campaign.samples();
        for (std::size_t i = 0; i < samples.size(); ++i) {
          out << (i == 0 ? "" : ", ") << fmt(samples[i]);
        }
        out << ']';
      }
      if (!spec.metrics.empty()) {
        out << ",\n      \"metrics\": {";
        for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
          out << (m == 0 ? "\n" : ",\n");
          out << "        \"" << json_escape(spec.metrics[m]) << "\": ";
          write_metric_json(out, job, spec.metrics[m]);
        }
        out << "\n      }";
      }
      if (job.mbpta.has_value()) {
        const auto& m = *job.mbpta;
        out << ",\n      \"pwcet\": {\n";
        out << "        \"location\": " << fmt(m.fit.location) << ",\n";
        out << "        \"scale\": " << fmt(m.fit.scale) << ",\n";
        out << "        \"cv_ok\": "
            << (m.diagnostics.cv.accepted ? "true" : "false") << ",\n";
        out << "        \"indep_ok\": "
            << (m.diagnostics.runs.accepted ? "true" : "false") << ",\n";
        out << "        \"curve\": [";
        for (std::size_t i = 0; i < m.curve.size(); ++i) {
          out << (i == 0 ? "" : ", ") << "{\"p\": "
              << fmt(m.curve[i].exceedance_probability) << ", \"wcet\": "
              << fmt(m.curve[i].wcet_estimate) << '}';
        }
        out << "]\n      }";
      } else if (!job.mbpta_error.empty()) {
        out << ",\n      \"pwcet_error\": \"" << json_escape(job.mbpta_error)
            << '"';
      }
      if (job.convergence.has_value()) {
        const auto& c = *job.convergence;
        out << ",\n      \"convergence\": {\n";
        out << "        \"converged\": " << (c.converged ? "true" : "false")
            << ",\n";
        out << "        \"scale_cv\": " << json_number(c.scale_cv) << ",\n";
        out << "        \"pwcet_drift\": " << json_number(c.pwcet_drift)
            << ",\n";
        out << "        \"curve\": [";
        for (std::size_t i = 0; i < c.curve.size(); ++i) {
          out << (i == 0 ? "" : ", ") << "{\"runs\": " << c.curve[i].runs
              << ", \"pwcet\": " << json_number(c.curve[i].pwcet) << '}';
        }
        out << "]\n      }";
      }
      out << "\n    }";
    }
    out << (results.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
  }
};

class SummarySink final : public ResultSink {
 public:
  void write(const ExperimentSpec& spec,
             const std::vector<JobResult>& results,
             std::ostream& out) const override {
    std::size_t failed = 0;
    for (const auto& job : results) failed += job.failed() ? 1 : 0;
    out << "experiment '" << spec.name << "': " << results.size()
        << " job(s), " << spec.runs << " runs/job";
    if (failed != 0) out << ", " << failed << " FAILED";
    out << '\n';
    for (const JobResult& job : results) {
      out << "[" << job.index << "] kernel=" << job.kernel
          << " scenario=" << job.scenario;
      for (const auto& [key, value] : job.axes) {
        if (key == "kernel" || key == "scenario") continue;
        out << ' ' << key << '=' << value;
      }
      if (job.failed()) {
        out << " ERROR: " << job.error << '\n';
        continue;
      }
      const auto& stats = job.campaign.exec_time();
      char line[160];
      std::snprintf(line, sizeof line,
                    " | mean=%.6g ci95=%.3g min=%.6g max=%.6g util=%.3f",
                    stats.mean(), stats.ci95_halfwidth(), stats.min(),
                    stats.max(), job.campaign.bus_utilization().mean());
      out << line;
      if (job.campaign.unfinished_runs != 0) {
        out << " unfinished=" << job.campaign.unfinished_runs;
      }
      if (job.mbpta.has_value()) {
        out << " pwcet(1e-12)=" << pwcet_at(job, 1e-12);
      } else if (!job.mbpta_error.empty()) {
        out << " pwcet=n/a (" << job.mbpta_error << ")";
      }
      out << '\n';
    }
  }
};

}  // namespace

std::unique_ptr<ResultSink> make_sink(SinkKind kind) {
  switch (kind) {
    case SinkKind::kCsv: return std::make_unique<CsvSink>();
    case SinkKind::kJson: return std::make_unique<JsonSink>();
    case SinkKind::kSummary: return std::make_unique<SummarySink>();
  }
  CBUS_ASSERT(false);
  return nullptr;  // unreachable
}

namespace {

void write_to(const std::string& path, SinkKind kind,
              const ExperimentSpec& spec,
              const std::vector<JobResult>& results, std::ostream& out) {
  const auto sink = make_sink(kind);
  if (path == "-") {
    sink->write(spec, results, out);
    return;
  }
  std::ofstream file(path);
  CBUS_EXPECTS_MSG(file.good(), "cannot open output file: " + path);
  sink->write(spec, results, file);
}

}  // namespace

void emit_outputs(const ExperimentSpec& spec,
                  const std::vector<JobResult>& results, std::ostream& out) {
  if (!spec.csv_path.empty()) {
    write_to(spec.csv_path, SinkKind::kCsv, spec, results, out);
  }
  if (!spec.json_path.empty()) {
    write_to(spec.json_path, SinkKind::kJson, spec, results, out);
  }
  if (spec.summary) {
    make_sink(SinkKind::kSummary)->write(spec, results, out);
  }
}

}  // namespace cbus::exp
