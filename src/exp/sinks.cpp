#include "exp/sinks.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/contracts.hpp"

namespace cbus::exp {

namespace {

/// Shortest round-trippable decimal rendering: integral doubles (cycle
/// counts) print without a decimal point and 159.4 stays "159.4", so
/// CSV/JSON rows are stable across thread counts and platforms with
/// IEEE doubles.
[[nodiscard]] std::string fmt(double x) {
  char buf[40];
  for (int digits = 15; digits <= 17; ++digits) {
    std::snprintf(buf, sizeof buf, "%.*g", digits, x);
    if (std::strtod(buf, nullptr) == x) break;
  }
  return buf;
}

[[nodiscard]] std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The pWCET estimate at an exceedance probability, "" when unavailable.
[[nodiscard]] std::string pwcet_at(const JobResult& job, double p) {
  if (!job.mbpta.has_value()) return "";
  for (const auto& point : job.mbpta->curve) {
    if (point.exceedance_probability == p) return fmt(point.wcet_estimate);
  }
  return "";
}

/// Sweep-axis columns beyond kernel/scenario (which always get columns).
[[nodiscard]] std::vector<std::string> extra_axis_keys(
    const ExperimentSpec& spec) {
  std::vector<std::string> keys;
  for (const auto& axis : spec.sweeps) {
    if (axis.key != "kernel" && axis.key != "scenario") {
      keys.push_back(axis.key);
    }
  }
  return keys;
}

[[nodiscard]] std::string axis_value(const JobResult& job,
                                     const std::string& key) {
  for (const auto& [k, v] : job.axes) {
    if (k == key) return v;
  }
  return "";
}

class CsvSink final : public ResultSink {
 public:
  void write(const ExperimentSpec& spec,
             const std::vector<JobResult>& results,
             std::ostream& out) const override {
    const auto extra = extra_axis_keys(spec);
    out << "job,kernel,scenario";
    for (const auto& key : extra) out << ',' << key;
    out << ",seed,run,cycles";
    if (spec.pwcet) {
      out << ",gumbel_location,gumbel_scale,pwcet_1e-9,pwcet_1e-12";
    }
    out << '\n';

    for (const JobResult& job : results) {
      if (job.failed()) continue;  // the summary sink reports failures
      std::string prefix = std::to_string(job.index);
      prefix += ',' + job.kernel + ',' + job.scenario;
      for (const auto& key : extra) prefix += ',' + axis_value(job, key);
      prefix += ',' + std::to_string(job.seed);
      std::string suffix;
      if (spec.pwcet) {
        suffix = ',';
        if (job.mbpta.has_value()) {
          suffix += fmt(job.mbpta->fit.location) + ',' +
                    fmt(job.mbpta->fit.scale);
        } else {
          suffix += ',';
        }
        suffix += ',' + pwcet_at(job, 1e-9) + ',' + pwcet_at(job, 1e-12);
      }
      const auto& samples = job.campaign.samples;
      for (std::size_t run = 0; run < samples.size(); ++run) {
        out << prefix << ',' << run << ',' << fmt(samples[run]) << suffix
            << '\n';
      }
    }
  }
};

class JsonSink final : public ResultSink {
 public:
  void write(const ExperimentSpec& spec,
             const std::vector<JobResult>& results,
             std::ostream& out) const override {
    out << "{\n";
    out << "  \"experiment\": \"" << json_escape(spec.name) << "\",\n";
    out << "  \"runs_per_job\": " << spec.runs << ",\n";
    out << "  \"base_seed\": " << spec.seed << ",\n";
    out << "  \"jobs\": [";
    for (std::size_t j = 0; j < results.size(); ++j) {
      const JobResult& job = results[j];
      out << (j == 0 ? "\n" : ",\n");
      out << "    {\n";
      out << "      \"job\": " << job.index << ",\n";
      out << "      \"kernel\": \"" << json_escape(job.kernel) << "\",\n";
      out << "      \"scenario\": \"" << json_escape(job.scenario)
          << "\",\n";
      out << "      \"axes\": {";
      for (std::size_t a = 0; a < job.axes.size(); ++a) {
        out << (a == 0 ? "" : ", ") << '"' << json_escape(job.axes[a].first)
            << "\": \"" << json_escape(job.axes[a].second) << '"';
      }
      out << "},\n";
      out << "      \"seed\": " << job.seed;
      if (job.failed()) {
        out << ",\n      \"error\": \"" << json_escape(job.error)
            << "\"\n    }";
        continue;
      }
      const auto& stats = job.campaign.exec_time;
      out << ",\n      \"mean\": " << fmt(stats.mean());
      out << ",\n      \"min\": " << fmt(stats.min());
      out << ",\n      \"max\": " << fmt(stats.max());
      out << ",\n      \"ci95\": " << fmt(stats.ci95_halfwidth());
      out << ",\n      \"bus_util\": "
          << fmt(job.campaign.bus_utilization.mean());
      out << ",\n      \"unfinished\": " << job.campaign.unfinished_runs;
      out << ",\n      \"credit_underflows\": "
          << job.campaign.credit_underflows;
      out << ",\n      \"samples\": [";
      const auto& samples = job.campaign.samples;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        out << (i == 0 ? "" : ", ") << fmt(samples[i]);
      }
      out << ']';
      if (job.mbpta.has_value()) {
        const auto& m = *job.mbpta;
        out << ",\n      \"pwcet\": {\n";
        out << "        \"location\": " << fmt(m.fit.location) << ",\n";
        out << "        \"scale\": " << fmt(m.fit.scale) << ",\n";
        out << "        \"cv_ok\": "
            << (m.diagnostics.cv.accepted ? "true" : "false") << ",\n";
        out << "        \"indep_ok\": "
            << (m.diagnostics.runs.accepted ? "true" : "false") << ",\n";
        out << "        \"curve\": [";
        for (std::size_t i = 0; i < m.curve.size(); ++i) {
          out << (i == 0 ? "" : ", ") << "{\"p\": "
              << fmt(m.curve[i].exceedance_probability) << ", \"wcet\": "
              << fmt(m.curve[i].wcet_estimate) << '}';
        }
        out << "]\n      }";
      } else if (!job.mbpta_error.empty()) {
        out << ",\n      \"pwcet_error\": \"" << json_escape(job.mbpta_error)
            << '"';
      }
      out << "\n    }";
    }
    out << (results.empty() ? "]\n" : "\n  ]\n");
    out << "}\n";
  }
};

class SummarySink final : public ResultSink {
 public:
  void write(const ExperimentSpec& spec,
             const std::vector<JobResult>& results,
             std::ostream& out) const override {
    std::size_t failed = 0;
    for (const auto& job : results) failed += job.failed() ? 1 : 0;
    out << "experiment '" << spec.name << "': " << results.size()
        << " job(s), " << spec.runs << " runs/job";
    if (failed != 0) out << ", " << failed << " FAILED";
    out << '\n';
    for (const JobResult& job : results) {
      out << "[" << job.index << "] kernel=" << job.kernel
          << " scenario=" << job.scenario;
      for (const auto& [key, value] : job.axes) {
        if (key == "kernel" || key == "scenario") continue;
        out << ' ' << key << '=' << value;
      }
      if (job.failed()) {
        out << " ERROR: " << job.error << '\n';
        continue;
      }
      const auto& stats = job.campaign.exec_time;
      char line[160];
      std::snprintf(line, sizeof line,
                    " | mean=%.6g ci95=%.3g min=%.6g max=%.6g util=%.3f",
                    stats.mean(), stats.ci95_halfwidth(), stats.min(),
                    stats.max(), job.campaign.bus_utilization.mean());
      out << line;
      if (job.campaign.unfinished_runs != 0) {
        out << " unfinished=" << job.campaign.unfinished_runs;
      }
      if (job.mbpta.has_value()) {
        out << " pwcet(1e-12)=" << pwcet_at(job, 1e-12);
      } else if (!job.mbpta_error.empty()) {
        out << " pwcet=n/a (" << job.mbpta_error << ")";
      }
      out << '\n';
    }
  }
};

}  // namespace

std::unique_ptr<ResultSink> make_sink(SinkKind kind) {
  switch (kind) {
    case SinkKind::kCsv: return std::make_unique<CsvSink>();
    case SinkKind::kJson: return std::make_unique<JsonSink>();
    case SinkKind::kSummary: return std::make_unique<SummarySink>();
  }
  CBUS_ASSERT(false);
  return nullptr;  // unreachable
}

namespace {

void write_to(const std::string& path, SinkKind kind,
              const ExperimentSpec& spec,
              const std::vector<JobResult>& results, std::ostream& out) {
  const auto sink = make_sink(kind);
  if (path == "-") {
    sink->write(spec, results, out);
    return;
  }
  std::ofstream file(path);
  CBUS_EXPECTS_MSG(file.good(), "cannot open output file: " + path);
  sink->write(spec, results, file);
}

}  // namespace

void emit_outputs(const ExperimentSpec& spec,
                  const std::vector<JobResult>& results, std::ostream& out) {
  if (!spec.csv_path.empty()) {
    write_to(spec.csv_path, SinkKind::kCsv, spec, results, out);
  }
  if (!spec.json_path.empty()) {
    write_to(spec.json_path, SinkKind::kJson, spec, results, out);
  }
  if (spec.summary) {
    make_sink(SinkKind::kSummary)->write(spec, results, out);
  }
}

}  // namespace cbus::exp
