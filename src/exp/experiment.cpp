#include "exp/experiment.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"
#include "metrics/probes.hpp"
#include "platform/config_file.hpp"
#include "workloads/eembc_like.hpp"

namespace cbus::exp {

namespace {

[[nodiscard]] std::vector<std::string> split_words(const std::string& text) {
  std::vector<std::string> words;
  std::istringstream in(text);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

[[nodiscard]] bool is_platform_key(const std::string& key) {
  const auto& keys = platform::config_keys();
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

[[nodiscard]] bool is_sweepable_key(const std::string& key) {
  return is_platform_key(key) || key == "kernel" || key == "scenario";
}

[[nodiscard]] bool parse_switch(const std::string& value,
                                const std::string& key, int line_no) {
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  CBUS_EXPECTS_MSG(false, "line " + std::to_string(line_no) + ": '" + key +
                              "' wants on/off, got: " + value);
  return false;  // unreachable
}

/// Validate a kernel name early so typos fail at parse time, not in a
/// worker thread halfway through a campaign.
void check_kernel(const std::string& name, int line_no) {
  const auto known = workloads::all_kernels();
  if (std::find(known.begin(), known.end(), name) != known.end()) return;
  CBUS_EXPECTS_MSG(false, "line " + std::to_string(line_no) +
                              ": unknown kernel '" + name +
                              "' (known: " + known_kernel_list() + ")");
}

}  // namespace

std::string known_kernel_list() {
  std::string list;
  for (const auto kernel : workloads::all_kernels()) {
    if (!list.empty()) list += ' ';
    list += kernel;
  }
  return list;
}

WorkloadSpec parse_workload(const std::string& text) {
  WorkloadSpec spec;
  if (text == "idle") {
    spec.kind = WorkloadSpec::Kind::kIdle;
    return spec;
  }
  if (text == "stream" || text.rfind("stream:", 0) == 0) {
    spec.kind = WorkloadSpec::Kind::kStream;
    if (const auto colon = text.find(':'); colon != std::string::npos) {
      try {
        spec.gap = platform::parse_config_u32(text.substr(colon + 1),
                                              "stream gap", 0);
      } catch (const std::invalid_argument&) {
        throw std::invalid_argument("bad stream gap in '" + text +
                                    "' (want stream[:gap], gap a uint32)");
      }
    }
    return spec;
  }
  if (text == "phased" || text.rfind("phased:", 0) == 0) {
    // phased[:period[:offset[:gap]]] -- the PhaseShiftedStream square
    // wave: `period` ops active / `period` ops quiet, shifted `offset`
    // ops, `gap` compute cycles per quiet op.
    spec.kind = WorkloadSpec::Kind::kPhased;
    spec.gap = 200;
    std::vector<std::string> params;
    if (const auto colon = text.find(':'); colon != std::string::npos) {
      std::string rest = text.substr(colon + 1);
      while (!rest.empty()) {
        const auto next = rest.find(':');
        params.push_back(rest.substr(0, next));
        rest = next == std::string::npos ? "" : rest.substr(next + 1);
      }
    }
    CBUS_EXPECTS_MSG(params.size() <= 3,
                     "bad phased workload '" + text +
                         "' (phased[:period[:offset[:gap]]])");
    try {
      if (params.size() >= 1) {
        spec.period =
            platform::parse_config_uint(params[0], "phased period", 0);
        CBUS_EXPECTS_MSG(spec.period >= 1, "phased period must be positive");
      }
      if (params.size() >= 2) {
        spec.offset =
            platform::parse_config_uint(params[1], "phased offset", 0);
      }
      if (params.size() >= 3) {
        spec.gap = platform::parse_config_u32(params[2], "phased gap", 0);
        CBUS_EXPECTS_MSG(spec.gap >= 1, "phased gap must be positive");
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("bad phased workload '" + text +
                                  "' (phased[:period[:offset[:gap]]])");
    }
    return spec;
  }
  const auto known = workloads::all_kernels();
  CBUS_EXPECTS_MSG(
      std::find(known.begin(), known.end(), text) != known.end(),
      "unknown workload '" + text +
          "' (kernel name, stream[:gap], phased[:period[:offset[:gap]]] "
          "or idle)");
  spec.kind = WorkloadSpec::Kind::kKernel;
  spec.kernel = text;
  return spec;
}

std::vector<std::string> parse_metric_selection(const std::string& value) {
  // Commas and whitespace both separate entries, so the directive reads
  // naturally either way.
  std::string spaced = value;
  for (char& c : spaced) {
    if (c == ',') c = ' ';
  }
  const std::vector<std::string> entries = split_words(spaced);
  CBUS_EXPECTS_MSG(!entries.empty(), "empty metrics selection");

  if (entries.size() == 1 && entries[0] == "all") {
    std::vector<std::string> all;
    for (const metrics::MetricInfo& info : metrics::metric_catalog()) {
      all.emplace_back(info.key);
    }
    return all;
  }

  for (const std::string& entry : entries) {
    const metrics::KeyRef ref = metrics::parse_key_ref(entry);
    const metrics::MetricInfo* info = metrics::find_metric(ref.base);
    CBUS_EXPECTS_MSG(info != nullptr,
                     "unknown metric key '" + ref.base +
                         "' (see `cbus_sim --list metrics`)");
    CBUS_EXPECTS_MSG(ref.element == std::nullopt || info->per_master,
                     "'" + ref.base +
                         "' is a scalar metric; [index] selects elements "
                         "of per-master metrics only");
  }
  return entries;
}

std::string_view to_string(Scenario scenario) noexcept {
  switch (scenario) {
    case Scenario::kIsolation: return "iso";
    case Scenario::kMaxContention: return "con";
    case Scenario::kStream: return "stream";
    case Scenario::kCorun: return "corun";
  }
  return "?";
}

std::span<const Scenario> all_scenarios() noexcept {
  static constexpr Scenario kAll[] = {
      Scenario::kIsolation,
      Scenario::kMaxContention,
      Scenario::kStream,
      Scenario::kCorun,
  };
  return kAll;
}

Scenario parse_scenario(const std::string& text) {
  if (text == "iso") return Scenario::kIsolation;
  if (text == "con") return Scenario::kMaxContention;
  if (text == "stream") return Scenario::kStream;
  if (text == "corun") return Scenario::kCorun;
  CBUS_EXPECTS_MSG(false,
                   "unknown scenario: " + text + " (iso|con|stream|corun)");
  return Scenario::kIsolation;  // unreachable
}

void ExperimentSpec::set_platform_key(const std::string& key,
                                      const std::string& value) {
  for (auto& [k, v] : platform_keys) {
    if (k == key) {
      v = value;
      return;
    }
  }
  platform_keys.emplace_back(key, value);
}

ExperimentSpec parse_experiment(std::istream& in) {
  ExperimentSpec spec;
  platform::scan_config_lines(in, [&](const std::string& key,
                                      const std::string& value,
                                      int line_no) {
    const std::string where = "line " + std::to_string(line_no) + ": ";

    // `sweep <key> = v1 v2 ...`
    if (key.rfind("sweep", 0) == 0 &&
        (key.size() == 5 || key[5] == ' ' || key[5] == '\t')) {
      const std::string axis = platform::config_trim(key.substr(5));
      CBUS_EXPECTS_MSG(!axis.empty(), where + "sweep without a key");
      CBUS_EXPECTS_MSG(is_sweepable_key(axis),
                       where + "'" + axis +
                           "' is not sweepable (platform keys, kernel and "
                           "scenario are)");
      CBUS_EXPECTS_MSG(
          std::none_of(spec.sweeps.begin(), spec.sweeps.end(),
                       [&](const SweepAxis& a) { return a.key == axis; }),
          where + "duplicate sweep axis '" + axis + "'");
      SweepAxis sweep{axis, split_words(value)};
      CBUS_EXPECTS_MSG(!sweep.values.empty(),
                       where + "sweep '" + axis + "' has no values");
      if (axis == "kernel") {
        for (const auto& v : sweep.values) check_kernel(v, line_no);
      } else if (axis == "scenario") {
        for (const auto& v : sweep.values) (void)parse_scenario(v);
      }
      spec.sweeps.push_back(std::move(sweep));
      return;
    }

    // `core<N> = workload`
    if (key.rfind("core", 0) == 0 && key.size() > 4 &&
        std::all_of(key.begin() + 4, key.end(),
                    [](char c) { return c >= '0' && c <= '9'; })) {
      const std::uint64_t index =
          platform::parse_config_uint(key.substr(4), key, line_no);
      CBUS_EXPECTS_MSG(index < kMaxMasters,
                       where + "core index out of range: " + key);
      try {
        if (index == 0) {
          const WorkloadSpec tua = parse_workload(value);
          CBUS_EXPECTS_MSG(tua.kind == WorkloadSpec::Kind::kKernel,
                           "core0 (the task under analysis) must be a "
                           "kernel, got: " + value);
          spec.kernel = tua.kernel;
        } else {
          spec.corunners[static_cast<std::uint32_t>(index)] =
              parse_workload(value);
        }
      } catch (const std::invalid_argument& e) {
        // Re-throw with the line number, without another contract wrap.
        throw std::invalid_argument(where + e.what());
      }
      return;
    }

    if (key == "name") {
      spec.name = value;
    } else if (key == "kernel") {
      check_kernel(value, line_no);
      spec.kernel = value;
    } else if (key == "scenario") {
      try {
        (void)parse_scenario(value);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(where + e.what());
      }
      spec.scenario = value;
    } else if (key == "runs") {
      spec.runs = platform::parse_config_u32(value, key, line_no);
      CBUS_EXPECTS_MSG(spec.runs >= 1, where + "runs must be positive");
    } else if (key == "seed") {
      spec.seed = platform::parse_config_uint(value, key, line_no);
    } else if (key == "max_cycles") {
      spec.max_cycles = platform::parse_config_uint(value, key, line_no);
      CBUS_EXPECTS_MSG(spec.max_cycles >= 1,
                       where + "max_cycles must be positive");
    } else if (key == "batch") {
      spec.batch = platform::parse_config_u32(value, key, line_no);
      CBUS_EXPECTS_MSG(spec.batch >= 1, where + "batch must be positive");
    } else if (key == "pwcet") {
      spec.pwcet = parse_switch(value, key, line_no);
    } else if (key == "metrics") {
      try {
        spec.metrics = parse_metric_selection(value);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument(where + e.what());
      }
    } else if (key == "retain") {
      if (value == "raw") {
        spec.retain_raw = true;
      } else if (value == "stream") {
        spec.retain_raw = false;
      } else {
        CBUS_EXPECTS_MSG(false, where + "'retain' wants raw or stream, "
                                        "got: " + value);
      }
    } else if (key == "checkpoint") {
      spec.checkpoint_path = value;
    } else if (key == "summary") {
      spec.summary = parse_switch(value, key, line_no);
    } else if (key == "csv") {
      spec.csv_path = value;
    } else if (key == "json") {
      spec.json_path = value;
    } else if (key == "threads") {
      spec.threads = platform::parse_config_u32(value, key, line_no);
    } else if (key == "trace") {
      spec.trace_path = value;
    } else if (key == "trace_run") {
      spec.trace_run = platform::parse_config_u32(value, key, line_no);
    } else if (key == "trace_window") {
      const std::size_t colon = value.find(':');
      CBUS_EXPECTS_MSG(colon != std::string::npos,
                       where + "'trace_window' wants <begin>:<end> cycles, "
                               "got: " + value);
      spec.trace_window_begin = platform::parse_config_uint(
          value.substr(0, colon), key, line_no);
      spec.trace_window_end = platform::parse_config_uint(
          value.substr(colon + 1), key, line_no);
      CBUS_EXPECTS_MSG(spec.trace_window_begin < spec.trace_window_end,
                       where + "'trace_window' is empty: " + value);
    } else if (key == "telemetry") {
      spec.telemetry_path = value;
    } else if (key == "progress") {
      spec.progress = parse_switch(value, key, line_no);
    } else if (is_platform_key(key)) {
      spec.set_platform_key(key, value);
    } else {
      CBUS_EXPECTS_MSG(false, where + "unknown key '" + key + "'");
    }
  });
  validate_spec(spec);
  return spec;
}

void validate_spec(const ExperimentSpec& spec) {
  if (!spec.retain_raw) {
    CBUS_EXPECTS_MSG(spec.csv_path.empty(),
                     "csv writes one row per run; retain = stream does "
                     "not keep the per-run series");
    CBUS_EXPECTS_MSG(!spec.pwcet,
                     "pwcet fits the raw sample series; retain = stream "
                     "does not keep it");
  }
  CBUS_EXPECTS_MSG(spec.checkpoint_path.empty() || !spec.retain_raw,
                   "checkpointing requires retain = stream (slice digests "
                   "are what the checkpoint stores)");
  if (!spec.trace_path.empty()) {
    CBUS_EXPECTS_MSG(spec.trace_run < spec.runs,
                     "trace_run is past the campaign (trace_run must be "
                     "< runs)");
  }
  CBUS_EXPECTS_MSG(spec.trace_window_begin < spec.trace_window_end,
                   "trace_window is empty");
}

ExperimentSpec load_experiment(const std::string& path) {
  std::ifstream in(path);
  CBUS_EXPECTS_MSG(in.good(), "cannot open experiment file: " + path);
  return parse_experiment(in);
}

}  // namespace cbus::exp
