#include "cpu/in_order_core.hpp"

#include <string>

#include "common/contracts.hpp"

namespace cbus::cpu {

InOrderCore::InOrderCore(MasterId id, const CoreConfig& config,
                         OpStream& stream, bus::BusPort& bus,
                         rng::RandBank& bank)
    : sim::Component("core-" + std::to_string(id)),
      id_(id),
      config_(config),
      stream_(stream),
      bus_(bus),
      store_buffer_(config.store_buffer_depth) {
  config_.validate();
  dl1_ = std::make_unique<cache::SetAssocCache>(
      config_.dl1, bank, "core" + std::to_string(id) + ".dl1");
  bus_.connect_master(id_, *this);
  advance_stream();
}

void InOrderCore::advance_stream() {
  current_op_ = stream_.next();
  miss_recorded_ = false;
  if (current_op_.has_value()) {
    compute_remaining_ = current_op_->compute_before;
    ++stats_.ops;
  }
}

void InOrderCore::drain_store_buffer(Cycle now) {
  if (store_buffer_.empty() || store_in_flight_ || waiting_ != Wait::kNone) {
    return;
  }
  if (!bus_.can_request(id_)) return;
  bus::BusRequest req;
  req.master = id_;
  req.addr = store_buffer_.front();
  req.kind = MemOpKind::kStore;
  bus_.request(req, now);
  store_in_flight_ = true;
  ++stats_.bus_requests;
}

void InOrderCore::tick(Cycle now) {
  if (done_) return;
  ++stats_.cycles;

  // Blocked on an outstanding load/atomic: nothing else can proceed
  // (single bus port, in-order pipeline).
  if (waiting_ != Wait::kNone) {
    ++stats_.bus_stall_cycles;
    return;
  }

  // Background write-buffer drain overlaps compute.
  drain_store_buffer(now);

  if (compute_remaining_ > 0) {
    --compute_remaining_;
    ++stats_.compute_cycles;
    return;
  }

  if (!current_op_.has_value()) {
    // Stream finished: wait for the write buffer to empty out.
    if (store_buffer_.empty() && !store_in_flight_) {
      done_ = true;
      finish_cycle_ = now;
    } else {
      ++stats_.bus_stall_cycles;
    }
    return;
  }

  const MemOp& op = *current_op_;
  switch (op.kind) {
    case MemOpKind::kLoad: {
      if (store_buffer_.contains_line(op.addr, config_.dl1.line_bytes)) {
        // Store-to-load forwarding from the write buffer: 1 cycle.
        ++stats_.l1_hits;
        advance_stream();
        return;
      }
      if (!miss_recorded_) {
        // First attempt: look up (and on a miss immediately reserve the
        // line -- only this core touches its private L1, and the pipeline
        // is blocked until the data returns anyway).
        const cache::AccessResult result =
            dl1_->access(op.addr, /*allocate_on_miss=*/true,
                         /*mark_dirty=*/false);
        if (result.hit) {
          ++stats_.l1_hits;
          advance_stream();
          return;
        }
        ++stats_.l1_misses;
        miss_recorded_ = true;
      }
      // Write-through ordering: the miss may only go out once every older
      // buffered store has drained.
      if (!store_buffer_.empty() || store_in_flight_) {
        ++stats_.bus_stall_cycles;
        return;
      }
      bus::BusRequest req;
      req.master = id_;
      req.addr = op.addr;
      req.kind = MemOpKind::kLoad;
      bus_.request(req, now);
      ++stats_.bus_requests;
      waiting_ = Wait::kLoad;
      ++stats_.bus_stall_cycles;
      return;
    }
    case MemOpKind::kStore: {
      if (store_buffer_.full()) {
        ++stats_.sb_stall_cycles;
        return;  // drain_store_buffer above is working on it
      }
      // Write-through, no write-allocate: the L1 is only updated on a hit.
      dl1_->access(op.addr, /*allocate_on_miss=*/false, /*mark_dirty=*/false);
      store_buffer_.push(op.addr);
      ++stats_.stores;
      advance_stream();
      return;
    }
    case MemOpKind::kAtomic: {
      // Atomics are ordering points: drain the write buffer first.
      if (!store_buffer_.empty() || store_in_flight_) {
        ++stats_.bus_stall_cycles;
        return;
      }
      bus::BusRequest req;
      req.master = id_;
      req.addr = op.addr;
      req.kind = MemOpKind::kAtomic;
      bus_.request(req, now);
      ++stats_.bus_requests;
      ++stats_.atomics;
      waiting_ = Wait::kAtomic;
      ++stats_.bus_stall_cycles;
      return;
    }
  }
  CBUS_ASSERT(false);
}

void InOrderCore::on_grant(const bus::BusRequest& /*request*/, Cycle /*now*/,
                           Cycle /*hold*/) {}

void InOrderCore::on_complete(const bus::BusRequest& request, Cycle /*now*/) {
  if (store_in_flight_ && request.kind == MemOpKind::kStore) {
    store_buffer_.pop();
    store_in_flight_ = false;
    return;
  }
  CBUS_ASSERT(waiting_ != Wait::kNone);
  waiting_ = Wait::kNone;
  advance_stream();  // the blocking op has retired; move on
}

}  // namespace cbus::cpu
