// A pipelined in-order core model (LEON3-class, paper §IV-A).
//
// Timing abstraction: the pipeline retires one compute cycle per clock;
// memory operations go through the private data L1:
//
//   * load hit  -- 1 cycle, no bus traffic;
//   * load miss -- blocks the pipeline, issues an L2 read on the bus
//     (after draining buffered stores: write-through ordering), resumes the
//     cycle after completion;
//   * store     -- writes through: updates the L1 on hit (no write
//     allocate), retires into the store buffer (1 cycle) and drains to the
//     bus in FIFO order in the background; the core stalls only when the
//     buffer is full;
//   * atomic    -- drains the store buffer, then holds the bus for a
//     read+write memory pair (56 cycles), blocking.
//
// This is deliberately the simplest pipeline for which the paper's
// traffic classes exist: frequent short transactions (store write-through,
// L2 hits) and long transactions (L2 misses, dirty evictions, atomics).
#pragma once

#include <memory>
#include <optional>

#include "bus/interfaces.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/store_buffer.hpp"
#include "cpu/core_config.hpp"
#include "cpu/op_stream.hpp"
#include "rng/rand_bank.hpp"
#include "sim/component.hpp"

namespace cbus::cpu {

class InOrderCore final : public sim::Component, public bus::BusMaster {
 public:
  InOrderCore(MasterId id, const CoreConfig& config, OpStream& stream,
              bus::BusPort& bus, rng::RandBank& bank);

  void tick(Cycle now) override;

  void on_grant(const bus::BusRequest& request, Cycle now,
                Cycle hold) override;
  void on_complete(const bus::BusRequest& request, Cycle now) override;

  /// The stream is exhausted, the store buffer drained, nothing in flight.
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Cycle at which done() became true.
  [[nodiscard]] Cycle finish_cycle() const noexcept { return finish_cycle_; }

  [[nodiscard]] const CoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const cache::SetAssocCache& dl1() const noexcept {
    return *dl1_;
  }
  [[nodiscard]] MasterId id() const noexcept { return id_; }

 private:
  enum class Wait : std::uint8_t { kNone, kLoad, kAtomic };

  /// Try to put the oldest buffered store on the bus.
  void drain_store_buffer(Cycle now);

  /// Fetch the next op from the stream into current_op_.
  void advance_stream();

  MasterId id_;
  CoreConfig config_;
  OpStream& stream_;
  bus::BusPort& bus_;
  std::unique_ptr<cache::SetAssocCache> dl1_;
  cache::StoreBuffer store_buffer_;

  std::optional<MemOp> current_op_;
  std::uint32_t compute_remaining_ = 0;
  Wait waiting_ = Wait::kNone;
  bool store_in_flight_ = false;  ///< the bus request in flight is a drain
  bool miss_recorded_ = false;    ///< current load already counted as a miss
  bool done_ = false;
  Cycle finish_cycle_ = 0;

  CoreStats stats_;
};

}  // namespace cbus::cpu
