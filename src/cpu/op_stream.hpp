// OpStream: the instruction-stream abstraction executed by the core model.
//
// A workload is a deterministic (per seed) sequence of memory operations,
// each preceded by a number of pure-compute cycles. This is the standard
// trace-driven reduction for bus/arbitration studies: only the memory
// operations interact with the shared resources, so only they (plus the
// compute gaps separating them) influence contention timing.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/types.hpp"

namespace cbus::cpu {

struct MemOp {
  MemOpKind kind = MemOpKind::kLoad;
  Addr addr = 0;
  /// Pipeline cycles spent before this operation issues (non-memory work).
  std::uint32_t compute_before = 0;
};

class OpStream {
 public:
  virtual ~OpStream() = default;

  /// The next operation, or nullopt when the task has finished.
  [[nodiscard]] virtual std::optional<MemOp> next() = 0;

  /// Restart from the beginning with per-run randomness derived from `seed`
  /// (streams with no internal randomness ignore the value).
  virtual void reset(std::uint64_t seed) = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace cbus::cpu
