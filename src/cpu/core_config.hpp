// Configuration of the in-order core model.
#pragma once

#include <cstdint>

#include "cache/cache_config.hpp"
#include "common/contracts.hpp"

namespace cbus::cpu {

struct CoreConfig {
  /// Private data L1 (write-through, no write-allocate -- LEON3 style).
  cache::CacheConfig dl1{
      .size_bytes = 16 * 1024,
      .line_bytes = 32,
      .ways = 4,
      .placement = cache::PlacementKind::kRandomHash,
      .replacement = cache::ReplacementKind::kRandom,
  };

  /// Write-buffer entries between the L1 and the bus.
  std::uint32_t store_buffer_depth = 2;

  void validate() const {
    dl1.validate();
    CBUS_EXPECTS(store_buffer_depth >= 1);
  }
};

/// Per-run counters exposed by the core.
struct CoreStats {
  Cycle cycles = 0;            ///< total cycles until completion
  Cycle compute_cycles = 0;    ///< cycles retiring non-memory work
  Cycle bus_stall_cycles = 0;  ///< cycles blocked on an outstanding request
  Cycle sb_stall_cycles = 0;   ///< cycles blocked on a full store buffer
  std::uint64_t ops = 0;       ///< memory operations executed
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t atomics = 0;
  std::uint64_t bus_requests = 0;
};

}  // namespace cbus::cpu
