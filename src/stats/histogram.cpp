#include "stats/histogram.hpp"

namespace cbus::stats {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t bucket_count)
    : width_(bucket_width), counts_(bucket_count, 0) {
  CBUS_EXPECTS(bucket_width > 0);
  CBUS_EXPECTS(bucket_count > 0);
}

void Histogram::add(std::uint64_t value) noexcept {
  const std::size_t index = static_cast<std::size_t>(value / width_);
  if (index < counts_.size()) {
    ++counts_[index];
  } else {
    ++overflow_;
  }
  ++total_;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  CBUS_EXPECTS(i < counts_.size());
  return counts_[i];
}

std::uint64_t Histogram::quantile_upper_bound(double q) const {
  CBUS_EXPECTS(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return (i + 1) * width_;
  }
  return counts_.size() * width_;  // in or beyond overflow
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c = 0;
  overflow_ = 0;
  total_ = 0;
}

}  // namespace cbus::stats
