#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace cbus::stats {

void OnlineStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double OnlineStats::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / mean_ : 0.0;
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

OnlineStats OnlineStats::from_moments(std::uint64_t n, double mean,
                                      double m2, double min,
                                      double max) noexcept {
  OnlineStats out;
  if (n == 0) return out;
  out.n_ = n;
  out.mean_ = mean;
  out.m2_ = m2;
  out.min_ = min;
  out.max_ = max;
  return out;
}

double quantile(std::span<const double> sample, double q) {
  CBUS_EXPECTS(!sample.empty());
  CBUS_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

double autocorrelation(std::span<const double> sample, std::size_t lag) {
  CBUS_EXPECTS(lag >= 1);
  if (sample.size() <= lag + 1) return 0.0;
  const double mu = mean_of(sample);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double d = sample[i] - mu;
    den += d * d;
    if (i + lag < sample.size()) num += d * (sample[i + lag] - mu);
  }
  return den != 0.0 ? num / den : 0.0;
}

}  // namespace cbus::stats
