// stats::ExactSum -- an exactly-rounded, order-independent accumulator
// for IEEE-754 doubles (a Kulisch-style superaccumulator).
//
// The campaign pipeline folds per-run metric records across threads,
// lockstep slices, checkpoint files and shard processes; byte-identical
// output requires the fold to be associative AND commutative down to the
// last bit. Floating-point addition is neither, so this accumulator keeps
// the running sum as an EXACT integer: every finite double is an integer
// multiple of 2^-1074, and a 2240-bit two's-complement integer has room
// for 2^64 addends of the largest finite magnitude. add() and merge()
// are integer arithmetic with no rounding (hence no order sensitivity);
// the single rounding step is to_double(), correctly rounded to
// nearest-even via a sticky bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace cbus::stats {

class ExactSum {
 public:
  /// 35 x 64 = 2240 bits: magnitudes up to 2^1024 in 2^-1074 units are
  /// 2098-bit integers, 2^64 of them need 2162 bits, plus the sign bit.
  static constexpr std::size_t kLimbs = 35;

  /// Accumulate one finite double, exactly. Precondition: isfinite(x)
  /// (callers count NaN/inf separately -- integer counters merge exactly).
  void add(double x);

  /// Add another accumulator's total, exactly (limb-wise integer add).
  void merge(const ExactSum& other) noexcept;

  /// The sum rounded once to the nearest double (ties to even); +-inf on
  /// overflow past the double range. Deterministic on IEEE-754 hosts.
  [[nodiscard]] double to_double() const noexcept;

  [[nodiscard]] bool is_zero() const noexcept;

  /// Raw limbs, little-endian in 2^-1074 units, two's complement --
  /// the canonical serialized form.
  [[nodiscard]] std::span<const std::uint64_t, kLimbs> limbs()
      const noexcept {
    return limbs_;
  }

  /// Rebuild from serialized limbs; precondition: exactly kLimbs values.
  [[nodiscard]] static ExactSum from_limbs(std::span<const std::uint64_t> limbs);

  friend bool operator==(const ExactSum&, const ExactSum&) = default;

 private:
  std::array<std::uint64_t, kLimbs> limbs_{};
};

}  // namespace cbus::stats
