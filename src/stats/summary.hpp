// Online summary statistics (Welford's algorithm) and sample utilities.
//
// Used everywhere execution-time samples are aggregated: slowdown tables,
// isolation-overhead experiments, MBPTA diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace cbus::stats {

/// Numerically-stable running mean/variance/min/max.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< unbiased (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean (1.96 * s / sqrt(n)); 0 when fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Coefficient of variation s/mean (0 when mean is 0).
  [[nodiscard]] double cv() const noexcept;

  void merge(const OnlineStats& other) noexcept;

  /// Rebuild a digest from externally-derived moments: `m2` is the sum of
  /// squared deviations (variance * (n-1)). Used by the streaming
  /// aggregator, which keeps exactly-mergeable sums instead of Welford
  /// state and derives this view on demand.
  [[nodiscard]] static OnlineStats from_moments(std::uint64_t n, double mean,
                                                double m2, double min,
                                                double max) noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact sample quantile (linear interpolation, type-7 like numpy default).
/// `q` in [0,1]. Sorts a copy; fine for campaign-sized samples.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// Sample mean of a span (0 for empty spans).
[[nodiscard]] double mean_of(std::span<const double> sample) noexcept;

/// Lag-k autocorrelation estimate; used by MBPTA independence diagnostics.
[[nodiscard]] double autocorrelation(std::span<const double> sample,
                                     std::size_t lag);

}  // namespace cbus::stats
