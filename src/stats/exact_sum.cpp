#include "stats/exact_sum.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/contracts.hpp"

namespace cbus::stats {

namespace {

constexpr std::uint64_t kMantissaMask = (std::uint64_t{1} << 52) - 1;

}  // namespace

void ExactSum::add(double x) {
  CBUS_EXPECTS_MSG(std::isfinite(x),
                   "ExactSum accumulates finite values only");
  const auto bits = std::bit_cast<std::uint64_t>(x);
  const bool negative = (bits >> 63) != 0;
  const std::uint64_t exponent = (bits >> 52) & 0x7FF;
  std::uint64_t mantissa = bits & kMantissaMask;
  std::size_t shift = 0;
  if (exponent != 0) {
    mantissa |= std::uint64_t{1} << 52;  // implicit leading bit
    shift = static_cast<std::size_t>(exponent - 1);
  }
  if (mantissa == 0) return;  // +-0 contributes nothing

  // The addend is mantissa * 2^shift in 2^-1074 units: at most 117 bits,
  // spanning two limbs after the in-limb offset.
  const std::size_t limb = shift / 64;
  const std::size_t offset = shift % 64;
  const std::uint64_t lo = mantissa << offset;
  const std::uint64_t hi = offset == 0 ? 0 : mantissa >> (64 - offset);

  if (!negative) {
    const auto add_at = [&](std::size_t i, std::uint64_t v) {
      while (v != 0 && i < kLimbs) {
        const std::uint64_t old = limbs_[i];
        limbs_[i] += v;
        v = limbs_[i] < old ? 1 : 0;  // carry
        ++i;
      }
    };
    add_at(limb, lo);
    add_at(limb + 1, hi);
  } else {
    const auto sub_at = [&](std::size_t i, std::uint64_t v) {
      while (v != 0 && i < kLimbs) {
        const std::uint64_t old = limbs_[i];
        limbs_[i] -= v;
        v = old < limbs_[i] ? 1 : 0;  // borrow (wrapped past zero)
        ++i;
      }
    };
    sub_at(limb, lo);
    sub_at(limb + 1, hi);
  }
}

void ExactSum::merge(const ExactSum& other) noexcept {
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < kLimbs; ++i) {
    const std::uint64_t a = limbs_[i] + carry;
    const std::uint64_t c1 = a < carry ? 1 : 0;
    limbs_[i] = a + other.limbs_[i];
    const std::uint64_t c2 = limbs_[i] < a ? 1 : 0;
    carry = c1 + c2;
  }
}

bool ExactSum::is_zero() const noexcept {
  return std::all_of(limbs_.begin(), limbs_.end(),
                     [](std::uint64_t l) { return l == 0; });
}

double ExactSum::to_double() const noexcept {
  std::array<std::uint64_t, kLimbs> mag = limbs_;
  const bool negative = (mag[kLimbs - 1] >> 63) != 0;
  if (negative) {  // two's-complement negate to get the magnitude
    for (auto& l : mag) l = ~l;
    for (std::size_t i = 0; i < kLimbs; ++i) {
      if (++mag[i] != 0) break;
    }
  }

  std::size_t top = kLimbs;
  while (top > 0 && mag[top - 1] == 0) --top;
  if (top == 0) return 0.0;
  const std::size_t h = top - 1;
  const auto msb = static_cast<std::size_t>(63 - std::countl_zero(mag[h]));
  const std::size_t position = h * 64 + msb;  // highest set bit

  std::uint64_t window;  // bits [position .. position-63]
  bool sticky = false;
  if (position <= 63) {
    window = mag[0];  // the whole magnitude: exact
  } else {
    const std::size_t low_bit = position - 63;
    const std::size_t idx = low_bit / 64;
    const std::size_t off = low_bit % 64;
    window = mag[idx] >> off;
    if (off != 0) window |= mag[idx + 1] << (64 - off);
    if (off != 0 && (mag[idx] & ((std::uint64_t{1} << off) - 1)) != 0) {
      sticky = true;
    }
    for (std::size_t i = 0; i < idx && !sticky; ++i) {
      sticky = mag[i] != 0;
    }
    // Bit 0 of the window sits 11 bits below the double's 53-bit
    // rounding point, so folding the sticky flag into it preserves
    // correct nearest-even rounding in the u64->double conversion.
    if (sticky) window |= 1;
  }

  const int exp2 =
      position <= 63 ? -1074 : static_cast<int>(position - 63) - 1074;
  const double value = std::ldexp(static_cast<double>(window), exp2);
  return negative ? -value : value;
}

ExactSum ExactSum::from_limbs(std::span<const std::uint64_t> limbs) {
  CBUS_EXPECTS_MSG(limbs.size() == kLimbs,
                   "ExactSum::from_limbs wants exactly kLimbs limbs");
  ExactSum out;
  std::copy(limbs.begin(), limbs.end(), out.limbs_.begin());
  return out;
}

}  // namespace cbus::stats
