// Fairness metrics over per-master allocations.
//
// The paper's central claim is about *which* quantity is shared fairly:
// request counts (what RR/FIFO/TDMA/lottery/RP equalise) versus occupancy
// cycles (what CBA equalises). Jain's index over both vectors quantifies
// the difference in one number per experiment.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/contracts.hpp"

namespace cbus::stats {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 == equal.
/// Allocations must be non-negative (throws std::invalid_argument).
/// Empty and zero-sum allocations return 1 (vacuously fair).
[[nodiscard]] inline double jain_index(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    CBUS_EXPECTS_MSG(x >= 0.0, "fairness shares must be non-negative");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

/// Max-min ratio (max share / min share); 1.0 == perfectly equal.
///
/// Contract (shares must be non-negative; throws std::invalid_argument):
///  * empty and single-element spans are vacuously fair  -> 1.0
///  * all-zero spans (nobody got anything)               -> 1.0
///  * any zero share alongside a nonzero one             -> +infinity
///    (a starved master is infinitely unfairly treated; callers that
///    prefer a finite index should use jain_index instead)
[[nodiscard]] inline double max_min_ratio(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double lo = shares[0];
  double hi = shares[0];
  for (double x : shares) {
    CBUS_EXPECTS_MSG(x >= 0.0, "fairness shares must be non-negative");
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (lo == 0.0) {
    return hi == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return hi / lo;
}

}  // namespace cbus::stats
