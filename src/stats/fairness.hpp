// Fairness metrics over per-master allocations.
//
// The paper's central claim is about *which* quantity is shared fairly:
// request counts (what RR/FIFO/TDMA/lottery/RP equalise) versus occupancy
// cycles (what CBA equalises). Jain's index over both vectors quantifies
// the difference in one number per experiment.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

namespace cbus::stats {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 == equal.
/// Zero-sum allocations return 1 (vacuously fair).
[[nodiscard]] inline double jain_index(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : shares) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

/// Max-min ratio (max share / min share); infinity if any share is zero
/// while another is not. 1.0 == perfectly equal.
[[nodiscard]] inline double max_min_ratio(std::span<const double> shares) {
  if (shares.empty()) return 1.0;
  double lo = shares[0];
  double hi = shares[0];
  for (double x : shares) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (lo == 0.0) return hi == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  return hi / lo;
}

}  // namespace cbus::stats
