// stats::LogHistogram -- a sparse log-linear quantile sketch whose state
// merges exactly.
//
// Streaming campaigns cannot keep per-run series, but sinks still want
// percentiles. Classic streaming quantile estimators (P^2, reservoir
// sampling) have arrival-order-dependent state, which would break the
// campaign determinism contract the moment slices run on different
// threads or shards. This sketch instead buckets each finite sample by
// (sign, biased exponent, top 8 mantissa bits) -- about 0.2% relative
// resolution -- and keeps an integer count per occupied bucket. Counts
// add bucket-wise, so merging is associative, commutative and exact;
// quantiles are answered with the deterministic bucket midpoint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cbus::stats {

class LogHistogram {
 public:
  /// One occupied bucket. Keys order exactly like the values they cover:
  /// 0 is the zero bucket, +-(m + 1) covers positive/negative values
  /// whose |x| bit pattern has top-20-bits m.
  struct Bucket {
    std::int64_t key = 0;
    std::uint64_t count = 0;
    friend bool operator==(const Bucket&, const Bucket&) = default;
  };

  /// Count one sample. Precondition: isfinite(x) (non-finite samples are
  /// tracked by the caller's integer counters).
  void add(double x);

  /// Add another sketch's counts, bucket-wise (exact).
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }

  /// Approximate q-quantile (q in [0, 1]): the midpoint of the bucket
  /// holding rank q * (count - 1). Precondition: count() > 0.
  [[nodiscard]] double quantile(double q) const;

  /// Occupied buckets, ascending by key -- the canonical serialized form.
  [[nodiscard]] std::span<const Bucket> buckets() const noexcept {
    return buckets_;
  }

  /// Rebuild from serialized buckets; validates strict key order and
  /// nonzero counts (throws std::invalid_argument otherwise).
  [[nodiscard]] static LogHistogram from_buckets(std::vector<Bucket> buckets);

  /// The bucket key a value lands in (exposed for tests).
  [[nodiscard]] static std::int64_t bucket_key(double x) noexcept;
  /// The deterministic representative (midpoint) of a bucket.
  [[nodiscard]] static double representative(std::int64_t key) noexcept;

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  std::vector<Bucket> buckets_;  ///< sorted ascending by key
  std::uint64_t total_ = 0;
};

}  // namespace cbus::stats
