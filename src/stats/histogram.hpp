// Fixed-width histogram over non-negative integer samples (cycle counts,
// wait times). Cheap enough to keep one per master on the bus.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"

namespace cbus::stats {

class Histogram {
 public:
  /// `bucket_width` cycles per bucket; values >= bucket_width*bucket_count
  /// land in the overflow bucket.
  Histogram(std::uint64_t bucket_width, std::size_t bucket_count);

  void add(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t bucket_width() const noexcept { return width_; }

  /// Smallest value v such that at least `q` fraction of samples are <= v
  /// (bucket upper-bound resolution).
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const;

  void reset() noexcept;

 private:
  std::uint64_t width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace cbus::stats
