#include "stats/log_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace cbus::stats {

namespace {

/// Bits of |x| kept in the key: sign-stripped exponent plus the top 8
/// mantissa bits. Monotone in |x|, covering denormals naturally.
constexpr int kDroppedMantissaBits = 52 - 8;

}  // namespace

std::int64_t LogHistogram::bucket_key(double x) noexcept {
  if (x == 0.0) return 0;
  const auto bits = std::bit_cast<std::uint64_t>(std::fabs(x));
  const auto magnitude =
      static_cast<std::int64_t>(bits >> kDroppedMantissaBits) + 1;
  return x > 0.0 ? magnitude : -magnitude;
}

double LogHistogram::representative(std::int64_t key) noexcept {
  if (key == 0) return 0.0;
  const auto magnitude = static_cast<std::uint64_t>(std::llabs(key)) - 1;
  const double lo =
      std::bit_cast<double>(magnitude << kDroppedMantissaBits);
  double hi = std::bit_cast<double>((magnitude + 1) << kDroppedMantissaBits);
  if (!std::isfinite(hi)) hi = std::numeric_limits<double>::max();
  const double mid = lo + (hi - lo) * 0.5;
  return key > 0 ? mid : -mid;
}

void LogHistogram::add(double x) {
  CBUS_EXPECTS_MSG(std::isfinite(x),
                   "LogHistogram counts finite values only");
  const std::int64_t key = bucket_key(x);
  const auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), key,
      [](const Bucket& b, std::int64_t k) { return b.key < k; });
  if (it != buckets_.end() && it->key == key) {
    ++it->count;
  } else {
    buckets_.insert(it, Bucket{key, 1});
  }
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.buckets_.empty()) return;
  std::vector<Bucket> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  auto a = buckets_.begin();
  auto b = other.buckets_.begin();
  while (a != buckets_.end() && b != other.buckets_.end()) {
    if (a->key < b->key) {
      merged.push_back(*a++);
    } else if (b->key < a->key) {
      merged.push_back(*b++);
    } else {
      merged.push_back(Bucket{a->key, a->count + b->count});
      ++a;
      ++b;
    }
  }
  merged.insert(merged.end(), a, buckets_.end());
  merged.insert(merged.end(), b, other.buckets_.end());
  buckets_ = std::move(merged);
  total_ += other.total_;
}

double LogHistogram::quantile(double q) const {
  CBUS_EXPECTS_MSG(total_ > 0, "quantile of an empty LogHistogram");
  CBUS_EXPECTS(q >= 0.0 && q <= 1.0);
  const double rank = q * static_cast<double>(total_ - 1);
  std::uint64_t cumulative = 0;
  for (const Bucket& bucket : buckets_) {
    cumulative += bucket.count;
    if (static_cast<double>(cumulative) > rank) {
      return representative(bucket.key);
    }
  }
  return representative(buckets_.back().key);
}

LogHistogram LogHistogram::from_buckets(std::vector<Bucket> buckets) {
  LogHistogram out;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    CBUS_EXPECTS_MSG(buckets[i].count > 0,
                     "LogHistogram bucket with a zero count");
    CBUS_EXPECTS_MSG(i == 0 || buckets[i - 1].key < buckets[i].key,
                     "LogHistogram buckets out of order");
    out.total_ += buckets[i].count;
  }
  out.buckets_ = std::move(buckets);
  return out;
}

}  // namespace cbus::stats
