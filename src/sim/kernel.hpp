// The cycle-driven simulation kernel.
//
// Deliberately simple: a vector of non-owning component pointers ticked in
// registration order under a single clock. Determinism is a hard
// requirement (MBPTA needs exact reproducibility from a seed), so there is
// no event heap and no unordered container anywhere on the tick path.
#pragma once

#include <functional>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"

namespace cbus::sim {

class Kernel {
 public:
  Kernel() = default;

  /// Register a component; ticked in registration order. Kernel does not own
  /// the component; the caller (the platform) guarantees its lifetime.
  void add(Component& component) { components_.push_back(&component); }

  [[nodiscard]] Cycle now() const noexcept { return clock_.now(); }

  /// Run exactly `cycles` cycles.
  void run(Cycle cycles);

  /// Run until `done()` returns true (checked after every cycle) or until
  /// `max_cycles` elapse. Returns true iff `done()` fired.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Execute a single cycle.
  void step();

  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_.size();
  }

 private:
  Clock clock_;
  std::vector<Component*> components_;
};

}  // namespace cbus::sim
