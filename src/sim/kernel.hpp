// The cycle-driven simulation kernel.
//
// Deliberately simple: a vector of non-owning component pointers ticked in
// registration order under a single clock. Determinism is a hard
// requirement (MBPTA needs exact reproducibility from a seed), so there is
// no event heap and no unordered container anywhere on the tick path.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"

namespace cbus::sim {

class Kernel {
 public:
  Kernel() = default;

  /// Register a component; ticked in registration order. Kernel does not own
  /// the component; the caller (the platform) guarantees its lifetime.
  void add(Component& component) { components_.push_back(&component); }

  [[nodiscard]] Cycle now() const noexcept { return clock_.now(); }

  /// Run exactly `cycles` cycles.
  void run(Cycle cycles);

  /// Run until `done()` returns true or `max_cycles` elapse. Returns true
  /// iff `done()` fired. `done` is evaluated exactly once after every
  /// executed cycle -- never before the first one, never twice for the
  /// same cycle -- so side-effecting predicates observe one call per
  /// cycle. A predicate that is already true therefore still executes one
  /// cycle before it is seen. BatchKernel honours the same contract.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Execute a single cycle.
  void step();

  [[nodiscard]] std::size_t component_count() const noexcept {
    return components_.size();
  }

  /// Registered components in tick order (the batched campaign path
  /// re-registers them into a BatchKernel lane).
  [[nodiscard]] std::span<Component* const> components() const noexcept {
    return components_;
  }

 private:
  Clock clock_;
  std::vector<Component*> components_;
};

}  // namespace cbus::sim
