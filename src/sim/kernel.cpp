#include "sim/kernel.hpp"

namespace cbus::sim {

void Kernel::step() {
  const Cycle now = clock_.now();
  for (Component* component : components_) component->tick(now);
  clock_.advance();
}

void Kernel::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

bool Kernel::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  CBUS_EXPECTS(done != nullptr);
  for (Cycle i = 0; i < max_cycles; ++i) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace cbus::sim
