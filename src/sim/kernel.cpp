#include "sim/kernel.hpp"

namespace cbus::sim {

void Kernel::step() {
  const Cycle now = clock_.now();
  for (Component* component : components_) component->tick(now);
  clock_.advance();
}

void Kernel::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

bool Kernel::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  CBUS_EXPECTS(done != nullptr);
  // Contract: `done` is evaluated exactly once after every executed cycle
  // and never before the first one, so a side-effecting predicate counts
  // executed cycles. BatchKernel::run_until matches this per lane.
  for (Cycle i = 0; i < max_cycles; ++i) {
    step();
    if (done()) return true;
  }
  return false;
}

}  // namespace cbus::sim
