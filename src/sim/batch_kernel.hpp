// BatchKernel: N independent replicas of a platform advanced in lockstep.
//
// A campaign re-runs the same machine with fresh seeds; the replicas never
// interact, so the only thing a batch changes is the *iteration order*:
// instead of running replica 0 to completion, then replica 1, ..., every
// live lane advances through the same cycle window before any lane moves
// past it. Lanes therefore stay within one stripe of each other, batches
// of lanes can be spread across worker threads, and batch-shared state
// (the core::CreditSoA credit arena) stays contiguous.
//
// The stripe length is a pure locality knob. `stripe = 1` is cycle-exact
// lockstep: cycle c of every lane runs before cycle c+1 of any lane.
// Larger stripes run each live lane for up to `stripe` consecutive cycles
// before switching lanes -- measured on the cache-model-heavy platform
// lanes, fine-grained interleave buys nothing (the serial tick loop is
// already instruction-cache-hot) and costs 5-10% in data-cache misses,
// so campaign slices use a coarse stripe (kCampaignStripe).
//
// Determinism: lanes share no state, so a lane's components observe
// exactly the tick sequence a serial Kernel would deliver -- any stripe,
// any lane count. A lane retires the moment its predicate fires (checked
// once after every cycle it executed, the Kernel::run_until contract) and
// is never ticked again, just like the serial run stopping. Batched
// campaigns are therefore bit-identical to serial ones, which
// tests/test_exp.cpp locks byte-for-byte.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"

namespace cbus::sim {

/// A batch-shared per-cycle stage: with a stage installed the kernel
/// switches to CYCLE-MAJOR lockstep (stripe 1 semantics) and calls
/// on_cycle(now, live) once per cycle between the lanes' pre- and
/// post-components, handing the stage every live lane at the same cycle
/// -- the shape the vectorized batch credit engine needs to update one
/// counter slot across all lanes as a single vertical operation. `live`
/// lists the still-live lane indices in ascending order.
class BatchStage {
 public:
  BatchStage() = default;
  BatchStage(const BatchStage&) = delete;
  BatchStage& operator=(const BatchStage&) = delete;
  virtual ~BatchStage() = default;

  virtual void on_cycle(Cycle now, std::span<const std::size_t> live) = 0;
};

class BatchKernel {
 public:
  /// Stripe used by campaign slices: long enough that a lane's cache-model
  /// state stays hot across the stripe (measured: cycle-exact interleave
  /// costs 5-10% on platform lanes, >= 64 cycles is within noise of
  /// serial), short enough that lanes still move through the run together
  /// (~10 bus transactions). Retirement is unaffected -- a lane's done()
  /// is polled after every cycle at any stripe.
  static constexpr Cycle kCampaignStripe = 512;

  /// A batch of `lanes` replicas (lanes >= 1) advanced in stripes of up
  /// to `stripe` cycles (>= 1; 1 = cycle-exact lockstep).
  explicit BatchKernel(std::size_t lanes, Cycle stripe = 1);

  /// Register a component into lane `lane`; ticked in registration order
  /// within its lane. Lanes must end up with identical slot counts (they
  /// are replicas of one platform); run_until checks. Non-owning.
  /// With a stage installed these are the PRE-stage components (the
  /// cores -- everything the serial kernel ticks before the bus).
  void add(std::size_t lane, Component& component);

  /// Register a component ticked AFTER the stage each cycle (the
  /// adaptive credit controller -- everything the serial kernel ticks
  /// after the bus). Only meaningful with a stage installed.
  void add_post(std::size_t lane, Component& component);

  /// Install the batch-shared stage and switch run_until to cycle-major
  /// lockstep. The stage must outlive the kernel. See BatchStage.
  void set_stage(BatchStage& stage) noexcept { stage_ = &stage; }

  [[nodiscard]] std::size_t lanes() const noexcept {
    return lane_components_.size();
  }

  /// Components registered in lane `lane`.
  [[nodiscard]] std::size_t lane_component_count(std::size_t lane) const;

  /// Cycles every still-live lane has completed; lanes advance through
  /// the same stripes, so one clock serves the whole batch. (A lane that
  /// fired mid-stripe stopped at its own earlier cycle; a lane that ran
  /// out of budget stopped exactly here. Once every lane has fired the
  /// clock freezes at the final stripe's base.)
  [[nodiscard]] Cycle now() const noexcept { return clock_.now(); }

  /// Advance every live lane until its `done(lane)` fires or `max_cycles`
  /// elapse; returns the per-lane fired flags. Per lane the predicate is
  /// evaluated exactly once after every cycle that lane executed (the
  /// Kernel::run_until contract); a fired lane retires immediately and is
  /// neither ticked nor re-polled.
  [[nodiscard]] std::vector<bool> run_until(
      const std::function<bool(std::size_t lane)>& done, Cycle max_cycles);

 private:
  [[nodiscard]] std::vector<bool> run_until_staged(
      const std::function<bool(std::size_t lane)>& done, Cycle max_cycles);

  std::vector<std::vector<Component*>> lane_components_;
  std::vector<std::vector<Component*>> post_components_;
  BatchStage* stage_ = nullptr;
  Cycle stripe_;
  Clock clock_;
};

}  // namespace cbus::sim
