#include "sim/batch_kernel.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace cbus::sim {

BatchKernel::BatchKernel(std::size_t lanes, Cycle stripe)
    : lane_components_(lanes), post_components_(lanes), stripe_(stripe) {
  CBUS_EXPECTS(lanes >= 1);
  CBUS_EXPECTS(stripe >= 1);
}

void BatchKernel::add(std::size_t lane, Component& component) {
  CBUS_EXPECTS(lane < lane_components_.size());
  lane_components_[lane].push_back(&component);
}

void BatchKernel::add_post(std::size_t lane, Component& component) {
  CBUS_EXPECTS(lane < post_components_.size());
  post_components_[lane].push_back(&component);
}

std::size_t BatchKernel::lane_component_count(std::size_t lane) const {
  CBUS_EXPECTS(lane < lane_components_.size());
  return lane_components_[lane].size();
}

std::vector<bool> BatchKernel::run_until(
    const std::function<bool(std::size_t lane)>& done, Cycle max_cycles) {
  CBUS_EXPECTS(done != nullptr);
  if (stage_ != nullptr) return run_until_staged(done, max_cycles);
  const std::size_t slots = lane_components_.front().size();
  for (const auto& lane : lane_components_) {
    CBUS_EXPECTS_MSG(lane.size() == slots,
                     "lanes are replicas: equal component counts required");
  }

  std::vector<bool> fired(lanes(), false);
  std::vector<std::size_t> live(lanes());
  for (std::size_t l = 0; l < lanes(); ++l) live[l] = l;

  while (!live.empty() && clock_.now() < max_cycles) {
    const Cycle base = clock_.now();
    const Cycle stripe = std::min(stripe_, max_cycles - base);
    // Each live lane runs the whole stripe before the next lane starts:
    // its data stays cache-hot across the stripe, while lanes still
    // advance through the same cycle window together. erase_if keeps lane
    // order, so the iteration is deterministic (not that lanes could tell
    // -- they share no state).
    std::erase_if(live, [&](std::size_t l) {
      const std::vector<Component*>& components = lane_components_[l];
      for (Cycle c = 0; c < stripe; ++c) {
        const Cycle now = base + c;
        for (Component* component : components) component->tick(now);
        // The run_until contract: polled once after every executed cycle.
        if (done(l)) {
          fired[l] = true;
          return true;
        }
      }
      return false;
    });
    // The clock tracks cycles every still-live lane completed; once all
    // lanes have fired it stops (advancing would claim cycles no lane
    // executed).
    if (live.empty()) break;
    for (Cycle c = 0; c < stripe; ++c) clock_.advance();
  }
  return fired;
}

std::vector<bool> BatchKernel::run_until_staged(
    const std::function<bool(std::size_t lane)>& done, Cycle max_cycles) {
  // Cycle-major lockstep: every live lane executes cycle c (pre
  // components, then the shared stage across all lanes, then post
  // components) before any lane sees c+1. Per lane the observable tick
  // sequence and the done() polling (once after every executed cycle)
  // are exactly the serial kernel's -- lanes share no state, so the
  // cross-lane interleave inside a cycle is free. The clock advances per
  // executed cycle; as in the striped loop it freezes once every lane
  // has fired, and unfinished lanes stop exactly at max_cycles.
  const std::size_t pre_slots = lane_components_.front().size();
  const std::size_t post_slots = post_components_.front().size();
  for (std::size_t l = 0; l < lanes(); ++l) {
    CBUS_EXPECTS_MSG(lane_components_[l].size() == pre_slots &&
                         post_components_[l].size() == post_slots,
                     "lanes are replicas: equal component counts required");
  }

  std::vector<bool> fired(lanes(), false);
  std::vector<std::size_t> live(lanes());
  for (std::size_t l = 0; l < lanes(); ++l) live[l] = l;

  while (!live.empty() && clock_.now() < max_cycles) {
    const Cycle now = clock_.now();
    for (const std::size_t l : live) {
      for (Component* component : lane_components_[l]) component->tick(now);
    }
    stage_->on_cycle(now, live);
    for (const std::size_t l : live) {
      for (Component* component : post_components_[l]) component->tick(now);
    }
    std::erase_if(live, [&](std::size_t l) {
      if (done(l)) {
        fired[l] = true;
        return true;
      }
      return false;
    });
    if (live.empty()) break;
    clock_.advance();
  }
  return fired;
}

}  // namespace cbus::sim
