// Component: anything clocked by the simulation kernel.
//
// Tick semantics (documented once, relied on everywhere): within a cycle the
// kernel ticks components in registration order. The platform registers
// cores first, then the bus, then memory-side models. A request raised by a
// core during cycle t is therefore visible to the bus arbiter in the same
// cycle t, and the paper's 1-cycle arbitration delay is modelled *inside*
// the bus (grant takes effect at t+1), not by tick ordering.
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace cbus::sim {

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;
  virtual ~Component() = default;

  /// Advance this component by one cycle. `now` is the cycle being executed.
  virtual void tick(Cycle now) = 0;

  [[nodiscard]] std::string_view name() const noexcept { return name_; }

 private:
  std::string name_;
};

}  // namespace cbus::sim
