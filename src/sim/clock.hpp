// The global bus clock. All components in the modelled SoC share one clock
// domain (the LEON3 prototype runs cores, bus, L2 and the memory controller
// front-end at the same 100 MHz clock).
#pragma once

#include "common/types.hpp"

namespace cbus::sim {

class Clock {
 public:
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  void advance() noexcept { ++now_; }

  void reset() noexcept { now_ = 0; }

 private:
  Cycle now_ = 0;
};

}  // namespace cbus::sim
