// Interfaces between the bus and its neighbours: masters (cores, DMA,
// virtual contenders), the slave side (L2 + memory), and the pluggable
// eligibility filter that CBA implements.
#pragma once

#include <cstdint>

#include "bus/request.hpp"
#include "common/types.hpp"

namespace cbus::bus {

/// Callbacks the bus invokes on the owner of a request.
class BusMaster {
 public:
  virtual ~BusMaster() = default;

  /// The request was granted; its transfer occupies [now, now + hold).
  virtual void on_grant(const BusRequest& request, Cycle now, Cycle hold) = 0;

  /// Arbitration latched the request at cycle `now`; the transfer starts
  /// next cycle. Between the latch and on_grant the master is neither
  /// pending nor holding, so it may legally raise a fresh request.
  /// Default no-op: only masters mirroring the bus's pending state (the
  /// batch credit engine's contender banks) care.
  virtual void on_latch(const BusRequest& /*request*/, Cycle /*now*/) {}

  /// The transfer finished at the end of cycle `now`; the master may use the
  /// result (e.g. load data) from cycle now + 1.
  virtual void on_complete(const BusRequest& request, Cycle now) = 0;
};

/// The slave side of the bus (in the modelled SoC: partitioned L2 backed by
/// the memory controller). Determines how long a transaction holds the bus.
class BusSlave {
 public:
  virtual ~BusSlave() = default;

  /// Transaction starts now; returns the total bus hold time in cycles
  /// (>= 1). State changes (cache fills, dirty evictions) happen here.
  virtual Cycle begin_transaction(const BusRequest& request, Cycle now) = 0;

  /// Transaction completed (bus released at end of cycle `now`).
  virtual void complete_transaction(const BusRequest& /*request*/,
                                    Cycle /*now*/) {}
};

/// The master-side port shared by every bus protocol (non-split and
/// split-transaction): raise requests, query request legality and pending
/// state, register completion callbacks. Cores, virtual contenders and
/// synthetic masters talk to this interface so the platform can swap the
/// bus protocol underneath them.
class BusPort {
 public:
  virtual ~BusPort() = default;

  /// Register the completion-callback target for a master id.
  virtual void connect_master(MasterId master, BusMaster& callbacks) = 0;

  /// Raise a request (preconditions per protocol; see can_request).
  virtual void request(const BusRequest& request, Cycle now) = 0;

  /// True if `master` may legally raise a request now.
  [[nodiscard]] virtual bool can_request(MasterId master) const = 0;

  /// True if the master has a raised-but-not-yet-granted request.
  [[nodiscard]] virtual bool has_pending(MasterId master) const = 0;
};

/// Passive observer of bus activity: request arrival, transfer start and
/// completion. Used by the transaction tracer and by custom instrumentation;
/// observers must not mutate bus state.
class BusObserver {
 public:
  virtual ~BusObserver() = default;
  virtual void on_request(const BusRequest& /*request*/, Cycle /*now*/) {}
  virtual void on_transfer_start(const BusRequest& /*request*/,
                                 Cycle /*start*/, Cycle /*hold*/) {}
  virtual void on_transfer_complete(const BusRequest& /*request*/,
                                    Cycle /*end*/) {}
};

/// Eligibility filter applied before arbitration (paper §III-A: "CBA acts as
/// a filter to determine the pending requests that are eligible to be
/// arbitrated"). The default filter passes everything through.
class EligibilityFilter {
 public:
  virtual ~EligibilityFilter() = default;

  /// Restrict `pending` (bit i == master i has a pending request) to the
  /// masters allowed to compete this cycle.
  [[nodiscard]] virtual std::uint32_t eligible(std::uint32_t pending,
                                               Cycle now) = 0;

  /// Called once per cycle with the master currently holding the bus
  /// (kNoMaster if the bus is idle or arbitrating). Credit bookkeeping
  /// lives here.
  virtual void on_cycle(MasterId holder, Cycle now) = 0;

  /// Called when a master wins arbitration.
  virtual void on_grant(MasterId master, Cycle now) = 0;

  /// Burst charge for occupancy this filter's bus never saw: the
  /// segmented interconnect reports the cycles a LOCAL master's
  /// transaction occupied FOREIGN segments, so its home budget pays for
  /// the whole path. Default no-op (the single bus has no foreign
  /// occupancy).
  virtual void on_remote_occupancy(MasterId /*master*/,
                                   Cycle /*occupancy*/) {}

  virtual void reset() = 0;
};

}  // namespace cbus::bus
