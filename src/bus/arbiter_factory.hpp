// Construction of arbiters by name/enum, shared by the platform assembly,
// the benches and the examples.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "bus/arbiter.hpp"
#include "common/types.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::bus {

enum class ArbiterKind : std::uint8_t {
  kRoundRobin,
  kFifo,
  kFixedPriority,
  kLottery,
  kRandomPermutation,  ///< the paper's inner policy
  kTdma,
  kDeficitRoundRobin,  ///< prior-art cycle-fair baseline (post-paid DRR)
  kDeficitAge,         ///< deficit counter weighted by request age
};

[[nodiscard]] std::string_view to_string(ArbiterKind kind) noexcept;

/// Parse "rr", "fifo", "priority", "lottery", "rp", "tdma", "drr", "da"
/// (long forms accepted too). Throws std::invalid_argument on junk; the
/// message lists every registered name, matching `--list arbiters`.
[[nodiscard]] ArbiterKind parse_arbiter_kind(std::string_view text);

/// Space-joined short names of every registered arbiter, for error
/// messages and usage text (the `--list arbiters` set on one line).
[[nodiscard]] std::string known_arbiter_list();

/// The short name parse_arbiter_kind accepts for each kind ("rr", "rp",
/// "drr", ...) -- the single source for CLI listings and usage text.
[[nodiscard]] std::string_view short_name(ArbiterKind kind) noexcept;

/// Every arbiter kind, in declaration order.
[[nodiscard]] std::span<const ArbiterKind> all_arbiter_kinds() noexcept;

/// Build an arbiter. `bank` supplies channels for the randomized policies;
/// `tdma_slot` is the TDMA slot width / DRR quantum (MaxL), ignored by
/// the other kinds.
[[nodiscard]] std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind,
                                                    std::uint32_t n_masters,
                                                    rng::RandBank& bank,
                                                    Cycle tdma_slot = 56);

}  // namespace cbus::bus
