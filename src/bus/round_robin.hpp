// Round-robin arbitration: rotate priority starting after the last winner.
// Request-count fair, the canonical real-time baseline (paper §II).
#pragma once

#include "bus/arbiter.hpp"

namespace cbus::bus {

class RoundRobinArbiter final : public Arbiter {
 public:
  explicit RoundRobinArbiter(std::uint32_t n_masters);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }
  [[nodiscard]] HwCost hw_cost() const override;

 private:
  MasterId last_granted_;
};

}  // namespace cbus::bus
