#include "bus/deficit_round_robin.hpp"

namespace cbus::bus {

DeficitRoundRobinArbiter::DeficitRoundRobinArbiter(std::uint32_t n_masters,
                                                   Cycle quantum)
    : Arbiter(n_masters),
      quantum_(quantum),
      deficit_(n_masters, 0),
      cursor_(0) {
  CBUS_EXPECTS(quantum >= 1);
}

MasterId DeficitRoundRobinArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  const std::uint32_t n = n_masters();
  // Walk the rotation at most 2N visits (every master gains a quantum per
  // visit, so within two rounds some pending master's deficit is
  // positive).
  for (std::uint32_t visit = 0; visit < 2 * n + 1; ++visit) {
    const MasterId m = (cursor_ + visit) % n;
    const bool pending = ((input.candidates >> m) & 1u) != 0;
    if (!pending) {
      // DRR rule: an idle flow's deficit does not accumulate.
      deficit_[m] = 0;
      continue;
    }
    if (deficit_[m] > 0) {
      cursor_ = m;  // stay on this master until its deficit is spent
      return m;
    }
    deficit_[m] += static_cast<std::int64_t>(quantum_);
    if (deficit_[m] > 0) {
      cursor_ = m;
      return m;
    }
  }
  CBUS_ASSERT(false);  // unreachable: quanta accumulate for pending masters
  return kNoMaster;
}

void DeficitRoundRobinArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
}

void DeficitRoundRobinArbiter::on_complete(MasterId master, Cycle hold) {
  CBUS_EXPECTS(master < n_masters());
  deficit_[master] -= static_cast<std::int64_t>(hold);
  // Move the rotation on when the master's allowance is exhausted.
  if (deficit_[master] <= 0) cursor_ = (master + 1) % n_masters();
}

void DeficitRoundRobinArbiter::reset() {
  for (auto& d : deficit_) d = 0;
  cursor_ = 0;
}

std::int64_t DeficitRoundRobinArbiter::deficit(MasterId master) const {
  CBUS_EXPECTS(master < n_masters());
  return deficit_[master];
}

HwCost DeficitRoundRobinArbiter::hw_cost() const {
  const unsigned n = n_masters();
  unsigned q_bits = 0;
  for (Cycle v = quantum_; v != 0; v >>= 1) ++q_bits;
  // Signed deficit counters wide enough for quantum + MaxL overdraw.
  return HwCost{n * (q_bits + 2), 4 * n,
                "per-master deficit counter + rotation cursor"};
}

}  // namespace cbus::bus
