#include "bus/round_robin.hpp"

namespace cbus::bus {

RoundRobinArbiter::RoundRobinArbiter(std::uint32_t n_masters)
    : Arbiter(n_masters), last_granted_(n_masters - 1) {}

MasterId RoundRobinArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  const std::uint32_t n = n_masters();
  for (std::uint32_t offset = 1; offset <= n; ++offset) {
    const MasterId candidate = (last_granted_ + offset) % n;
    if ((input.candidates >> candidate) & 1u) return candidate;
  }
  CBUS_ASSERT(false);  // candidates non-empty implies a winner exists
  return kNoMaster;
}

void RoundRobinArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
  last_granted_ = master;
}

void RoundRobinArbiter::reset() { last_granted_ = n_masters() - 1; }

HwCost RoundRobinArbiter::hw_cost() const {
  // State: log2(N) pointer bits. Logic: rotate + priority encoder.
  const unsigned n = n_masters();
  unsigned bits = 0;
  for (unsigned v = n - 1; v != 0; v >>= 1) ++bits;
  return HwCost{bits, 2 * n, "rotating pointer + priority encoder"};
}

}  // namespace cbus::bus
