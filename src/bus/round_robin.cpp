#include "bus/round_robin.hpp"

#include <bit>

namespace cbus::bus {

RoundRobinArbiter::RoundRobinArbiter(std::uint32_t n_masters)
    : Arbiter(n_masters), last_granted_(n_masters - 1) {}

MasterId RoundRobinArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  // Hardware form of the scan: rotate the candidate word so the pointer's
  // successor lands at bit 0, then the priority encoder (countr_zero)
  // yields the first candidate at or after it.
  const std::uint32_t n = n_masters();
  const std::uint32_t start = (last_granted_ + 1) % n;
  const std::uint32_t mask =
      n >= 32 ? ~0u : ((std::uint32_t{1} << n) - 1u);
  const std::uint32_t candidates = input.candidates & mask;
  CBUS_ASSERT(candidates != 0);
  const std::uint32_t rotated =
      start == 0 ? candidates
                 : ((candidates >> start) | (candidates << (n - start))) &
                       mask;
  const auto offset = static_cast<std::uint32_t>(std::countr_zero(rotated));
  return (start + offset) % n;
}

void RoundRobinArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
  last_granted_ = master;
}

void RoundRobinArbiter::reset() { last_granted_ = n_masters() - 1; }

HwCost RoundRobinArbiter::hw_cost() const {
  // State: log2(N) pointer bits. Logic: rotate + priority encoder.
  const unsigned n = n_masters();
  unsigned bits = 0;
  for (unsigned v = n - 1; v != 0; v >>= 1) ++bits;
  return HwCost{bits, 2 * n, "rotating pointer + priority encoder"};
}

}  // namespace cbus::bus
