#include "bus/fifo.hpp"

#include <limits>

namespace cbus::bus {

FifoArbiter::FifoArbiter(std::uint32_t n_masters)
    : Arbiter(n_masters), last_granted_(n_masters - 1) {}

MasterId FifoArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  CBUS_EXPECTS(input.arrival.size() >= n_masters());
  Cycle oldest = std::numeric_limits<Cycle>::max();
  for (MasterId m = 0; m < n_masters(); ++m) {
    if (((input.candidates >> m) & 1u) && input.arrival[m] < oldest) {
      oldest = input.arrival[m];
    }
  }
  // Round-robin tie-break among requests sharing the oldest arrival cycle.
  const std::uint32_t n = n_masters();
  for (std::uint32_t offset = 1; offset <= n; ++offset) {
    const MasterId candidate = (last_granted_ + offset) % n;
    if (((input.candidates >> candidate) & 1u) &&
        input.arrival[candidate] == oldest) {
      return candidate;
    }
  }
  CBUS_ASSERT(false);
  return kNoMaster;
}

void FifoArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
  last_granted_ = master;
}

void FifoArbiter::reset() { last_granted_ = n_masters() - 1; }

HwCost FifoArbiter::hw_cost() const {
  // State: an order queue of log2(N)-bit entries. Logic: comparator tree.
  const unsigned n = n_masters();
  unsigned bits = 0;
  for (unsigned v = n - 1; v != 0; v >>= 1) ++bits;
  return HwCost{n * bits, 3 * n, "arrival-order queue + comparator tree"};
}

}  // namespace cbus::bus
