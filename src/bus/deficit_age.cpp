#include "bus/deficit_age.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "vec/vec.hpp"

namespace cbus::bus {

DeficitAgeArbiter::DeficitAgeArbiter(std::uint32_t n_masters, Cycle quantum,
                                     std::uint64_t age_weight)
    : Arbiter(n_masters),
      quantum_(quantum),
      age_weight_(age_weight),
      bank_cap_(4 * static_cast<std::int64_t>(quantum)),
      deficit_(n_masters, 0) {
  CBUS_EXPECTS(quantum >= 1);
}

MasterId DeficitAgeArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  const std::uint32_t n = n_masters();

  // Pass 1: forfeit absent masters (idle, or gated by the eligibility
  // filter -- DRR's idle rule) and find the best-served candidate.
  std::int64_t floor = std::numeric_limits<std::int64_t>::max();
  for (MasterId m = 0; m < n; ++m) {
    if (((input.candidates >> m) & 1u) == 0) {
      deficit_[m] = 0;
      continue;
    }
    floor = std::min(floor, deficit_[m]);
  }

  // Pass 2: rebase the candidate set to that floor (capping the spread),
  // score deficit + weighted age, and grant the maximum. Non-candidates
  // score the INT64_MIN sentinel; rebased scores are >= 0, so the vector
  // argmax (first-index-wins, matching the strict `>` scan it replaces)
  // can never pick one.
  std::array<std::int64_t, kMaxMasters> scores;
  for (MasterId m = 0; m < n; ++m) {
    if (((input.candidates >> m) & 1u) == 0) {
      scores[m] = std::numeric_limits<std::int64_t>::min();
      continue;
    }
    deficit_[m] = std::min(deficit_[m] - floor, bank_cap_);
    CBUS_ASSERT(input.grant_cycle >= input.arrival[m]);
    const auto age =
        static_cast<std::int64_t>(input.grant_cycle - input.arrival[m]);
    scores[m] = deficit_[m] + static_cast<std::int64_t>(age_weight_) * age;
  }
  const int winner = vec::argmax_i64(scores.data(), n);
  CBUS_ASSERT(winner >= 0);
  return static_cast<MasterId>(winner);
}

void DeficitAgeArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
}

void DeficitAgeArbiter::on_complete(MasterId master, Cycle hold) {
  CBUS_EXPECTS(master < n_masters());
  // Post-paid: charge the actual occupancy; the winner drops behind the
  // other contenders by exactly the cycles it consumed, and the next
  // pick's rebase folds the charge into the relative spread.
  deficit_[master] -= static_cast<std::int64_t>(hold);
}

void DeficitAgeArbiter::reset() {
  for (auto& d : deficit_) d = 0;
}

std::int64_t DeficitAgeArbiter::deficit(MasterId master) const {
  CBUS_EXPECTS(master < n_masters());
  return deficit_[master];
}

HwCost DeficitAgeArbiter::hw_cost() const {
  const unsigned n = n_masters();
  unsigned q_bits = 0;
  for (Cycle v = quantum_; v != 0; v >>= 1) ++q_bits;
  // Signed deficit counter (quantum + 2 bits of headroom for the cap and
  // overdraw) plus an age adder per master, and a comparator tree.
  return HwCost{n * (q_bits + 3),
                8 * n,
                "per-master deficit counter + age adder + max-score tree"};
}

}  // namespace cbus::bus
