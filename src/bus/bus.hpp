// The non-split shared bus (AMBA AHB style, paper §III-C).
//
// Protocol model, pinned here and relied on by every experiment:
//  * Each master has at most one pending request on the bus at a time.
//  * A request raised during cycle t is visible to the arbiter at cycle t.
//  * Arbitration takes one cycle: a grant decided at cycle t starts its
//    transfer at t+1.
//  * Re-arbitration is overlapped with the last cycle of the current
//    transfer, so under back-to-back load the bus never idles between
//    transactions (matches the paper's fully-saturated-bus arithmetic:
//    a short request behind three 28-cycle streams waits exactly 84 cycles).
//  * The hold time of a transfer is decided when it starts: by the slave
//    (L2 hit 5 / miss 28 / dirty miss 56 / atomic 56) or by the request's
//    forced_hold (WCET-mode contenders, trace replay).
//  * An EligibilityFilter (CBA) restricts which pending requests may be
//    arbitrated; the default filter admits everything.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/interfaces.hpp"
#include "bus/request.hpp"
#include "common/contracts.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace cbus::bus {

struct BusConfig {
  std::uint32_t n_masters = 4;
  /// Overlap re-arbitration with the final transfer cycle (default true).
  /// Disabling inserts a 1-cycle gap between every pair of transfers.
  bool overlapped_arbitration = true;
};

/// Per-master and global occupancy accounting.
struct BusStatistics {
  struct PerMaster {
    std::uint64_t requests = 0;      ///< requests raised
    std::uint64_t grants = 0;        ///< transfers started
    std::uint64_t completions = 0;   ///< transfers finished
    Cycle wait_cycles = 0;           ///< sum of (grant - issue) over grants
    Cycle hold_cycles = 0;           ///< bus cycles occupied
    Cycle max_wait = 0;              ///< worst single-request wait
  };
  std::vector<PerMaster> master;
  Cycle busy_cycles = 0;   ///< cycles some transfer was in flight
  Cycle idle_cycles = 0;   ///< cycles the bus was idle (incl. arbitration)
  Cycle total_cycles = 0;  ///< cycles ticked

  /// Sums of the per-master counters, computed in one pass. Callers that
  /// derive several shares (the metrics probes) take totals() once
  /// instead of re-summing per master.
  struct Totals {
    std::uint64_t requests = 0;
    std::uint64_t grants = 0;
    std::uint64_t completions = 0;
    Cycle wait_cycles = 0;
    Cycle hold_cycles = 0;
  };

  [[nodiscard]] Totals totals() const {
    Totals t;
    for (const auto& pm : master) {
      t.requests += pm.requests;
      t.grants += pm.grants;
      t.completions += pm.completions;
      t.wait_cycles += pm.wait_cycles;
      t.hold_cycles += pm.hold_cycles;
    }
    return t;
  }

  /// Fraction of all ticked cycles master m held the bus.
  [[nodiscard]] double occupancy_share(MasterId m) const {
    CBUS_EXPECTS(m < master.size());
    return total_cycles == 0
               ? 0.0
               : static_cast<double>(master[m].hold_cycles) /
                     static_cast<double>(total_cycles);
  }

  /// Fraction of all grants that went to master m, against a precomputed
  /// totals() -- O(1), for callers deriving every master's share.
  [[nodiscard]] double grant_share(MasterId m, const Totals& t) const {
    CBUS_EXPECTS(m < master.size());
    return t.grants == 0 ? 0.0
                         : static_cast<double>(master[m].grants) /
                               static_cast<double>(t.grants);
  }

  /// Fraction of all grants that went to master m (convenience form;
  /// re-sums the grant total on every call).
  [[nodiscard]] double grant_share(MasterId m) const {
    return grant_share(m, totals());
  }
};

class NonSplitBus final : public sim::Component, public BusPort {
 public:
  NonSplitBus(const BusConfig& config, Arbiter& arbiter, BusSlave& slave);

  /// Install the CBA filter (nullptr restores pass-through arbitration).
  void set_filter(EligibilityFilter* filter) noexcept { filter_ = filter; }

  /// Install a passive activity observer (nullptr detaches).
  void set_observer(BusObserver* observer) noexcept { observer_ = observer; }

  /// Register the completion-callback target for a master id.
  void connect_master(MasterId master, BusMaster& callbacks) override;

  /// Raise a request. Precondition: `request.master` has no pending request
  /// and is not currently holding the bus.
  void request(const BusRequest& request, Cycle now) override;

  /// True if the master has a raised-but-not-started request.
  [[nodiscard]] bool has_pending(MasterId master) const override {
    CBUS_EXPECTS(master < config_.n_masters);
    return ((pending_bits_ >> master) & 1u) != 0;
  }

  /// True if the master's transfer is in flight.
  [[nodiscard]] bool is_holding(MasterId master) const noexcept {
    return transfer_.has_value() && transfer_->request.master == master;
  }

  /// True if `master` could legally raise a request now (no pending request
  /// and no transfer in flight for it).
  [[nodiscard]] bool can_request(MasterId master) const override {
    return !has_pending(master) && !is_holding(master);
  }

  [[nodiscard]] bool busy() const noexcept { return transfer_.has_value(); }

  /// Bitmask of masters with pending requests (maintained incrementally
  /// by request/arbitrate, so the per-cycle "anything to arbitrate?"
  /// check is one load).
  [[nodiscard]] std::uint32_t pending_mask() const noexcept {
    return pending_bits_;
  }

  /// Master currently holding the bus (kNoMaster when idle).
  [[nodiscard]] MasterId holder() const noexcept {
    return transfer_ ? transfer_->request.master : kNoMaster;
  }

  void tick(Cycle now) override;

  // --- phased tick (batched campaigns) ----------------------------------
  // The batch credit engine runs the credit bookkeeping VERTICALLY across
  // lanes, so the bus tick splits around it: tick_begin starts a latched
  // grant (this cycle's holder becomes known), the engine charges that
  // holder in the SoA arena, tick_finish advances/completes/arbitrates.
  // tick(now) == tick_begin(now); filter->on_cycle(holder(), now);
  // tick_finish(now) -- the serial and phased forms are the same code.

  /// Phase 1 of tick(): a grant latched last cycle starts its transfer.
  /// Inline: it runs once per lane-cycle in the batched hot loop and is
  /// almost always the two-load no-op.
  void tick_begin(Cycle now) {
    if (!transfer_.has_value() && latched_grant_.has_value()) {
      begin_latched(now);
    }
  }

  /// Phase 3 of tick(): advance the transfer in flight, complete and
  /// re-arbitrate, or idle-arbitrate. Reads post-credit-tick eligibility.
  /// Inline for the same reason as tick_begin: one call per lane-cycle,
  /// and the common case (transfer in flight, not finishing) touches a
  /// handful of counters.
  void tick_finish(Cycle now) {
    ++stats_.total_cycles;
    if (transfer_.has_value()) {
      ++stats_.busy_cycles;
      CBUS_ASSERT(transfer_->remaining >= 1);
      --transfer_->remaining;
      if (transfer_->remaining == 0) complete_transfer(now);
    } else {
      ++stats_.idle_cycles;
      if (!latched_grant_.has_value() && pending_bits_ != 0) {
        arbitrate(now, now + 1);
      }
    }
  }

  [[nodiscard]] const BusStatistics& statistics() const noexcept {
    return stats_;
  }
  void reset_statistics();

  [[nodiscard]] std::uint32_t n_masters() const noexcept {
    return config_.n_masters;
  }
  [[nodiscard]] const Arbiter& arbiter() const noexcept { return arbiter_; }

 private:
  struct Transfer {
    BusRequest request;
    Cycle remaining = 0;
    Cycle hold = 0;
  };

  /// Run arbitration for a transfer starting at `start`; latches the winner.
  void arbitrate(Cycle now, Cycle start);

  /// Begin the latched transfer at cycle `now`.
  void begin_latched(Cycle now);

  /// Completion path of tick_finish (cold relative to the advance path).
  void complete_transfer(Cycle now);

  BusConfig config_;
  Arbiter& arbiter_;
  BusSlave& slave_;
  EligibilityFilter* filter_ = nullptr;
  BusObserver* observer_ = nullptr;

  std::vector<BusMaster*> masters_;
  std::vector<std::optional<BusRequest>> pending_;
  std::uint32_t pending_bits_ = 0;  ///< bit per master, mirrors pending_
  std::vector<Cycle> arrival_;  ///< issue cycle per master (valid if pending)

  std::optional<Transfer> transfer_;
  std::optional<BusRequest> latched_grant_;  ///< starts next cycle

  BusStatistics stats_;
};

}  // namespace cbus::bus
