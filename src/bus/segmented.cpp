#include "bus/segmented.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace cbus::bus {

void SegmentedConfig::validate() const {
  CBUS_EXPECTS_MSG(n_masters >= 1 && n_masters <= kMaxMasters,
                   "segmented interconnect: bad master count");
  CBUS_EXPECTS_MSG(n_segments >= 1, "segmented interconnect needs >= 1 segment");
  CBUS_EXPECTS_MSG(bridge_hold >= 1, "bridge_hold must be positive");
  CBUS_EXPECTS_MSG(stripe_log2 <= 31, "seg_stripe exceeds the address width");
  // Every segment's local master set (home cores + up to two bridge
  // ingress ports) must fit the arbiter mask types.
  std::vector<std::uint32_t> cores_per_segment(n_segments, 0);
  for (MasterId m = 0; m < n_masters; ++m) {
    ++cores_per_segment[home_segment(m)];
  }
  for (std::uint32_t s = 0; s < n_segments; ++s) {
    const std::uint32_t bridges =
        (s > 0 ? 1u : 0u) + (s + 1 < n_segments ? 1u : 0u);
    CBUS_EXPECTS_MSG(cores_per_segment[s] + bridges <= kMaxMasters,
                     "segment " + std::to_string(s) +
                         " has too many local masters");
  }
}

SegmentedInterconnect::SegmentedInterconnect(
    const SegmentedConfig& config, BusSlave& slave,
    const ArbiterFactory& make_segment_arbiter)
    : sim::Component("segmented-interconnect"),
      config_(config),
      slave_(slave),
      filters_(config.n_segments, nullptr),
      home_(config.n_masters),
      slot_(config.n_masters),
      callbacks_(config.n_masters, nullptr),
      flight_(config.n_masters) {
  config_.validate();
  CBUS_EXPECTS_MSG(make_segment_arbiter != nullptr,
                   "segmented interconnect needs an arbiter factory");

  segments_.resize(config_.n_segments);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    home_[m] = config_.home_segment(m);
    Segment& seg = segments_[home_[m]];
    slot_[m] = static_cast<std::uint32_t>(seg.cores.size());
    seg.cores.push_back(m);
  }

  for (std::uint32_t s = 0; s < config_.n_segments; ++s) {
    Segment& seg = segments_[s];
    std::uint32_t n_local = static_cast<std::uint32_t>(seg.cores.size());
    if (s > 0) seg.left_port = n_local++;
    if (s + 1 < config_.n_segments) seg.right_port = n_local++;

    seg.arbiter = make_segment_arbiter(n_local, s);
    CBUS_EXPECTS_MSG(seg.arbiter != nullptr,
                     "segment arbiter factory returned null");
    CBUS_EXPECTS(seg.arbiter->n_masters() == n_local);

    seg.slave = std::make_unique<SegmentSlave>();
    seg.slave->owner = this;
    seg.slave->segment = s;
    seg.bus = std::make_unique<NonSplitBus>(
        BusConfig{n_local, config_.overlapped_arbitration}, *seg.arbiter,
        *seg.slave);

    seg.relays.reserve(n_local);
    for (std::uint32_t local = 0; local < n_local; ++local) {
      auto relay = std::make_unique<PortRelay>();
      relay->owner = this;
      relay->segment = s;
      relay->local = local;
      seg.bus->connect_master(local, *relay);
      seg.relays.push_back(std::move(relay));
    }
    seg.port_owner.assign(n_local, kNoMaster);
  }

  // One bridge per direction per adjacency, in fixed (s, direction)
  // order: the delivery order below is part of the determinism contract.
  for (std::uint32_t s = 0; s + 1 < config_.n_segments; ++s) {
    bridges_.push_back(Bridge{s, s + 1, {}});
    bridges_.push_back(Bridge{s + 1, s, {}});
  }

  global_.master.resize(config_.n_masters);
}

SegmentedInterconnect::~SegmentedInterconnect() = default;

void SegmentedInterconnect::connect_master(MasterId master,
                                           BusMaster& callbacks) {
  CBUS_EXPECTS(master < config_.n_masters);
  callbacks_[master] = &callbacks;
}

void SegmentedInterconnect::request(const BusRequest& request, Cycle now) {
  const MasterId m = request.master;
  CBUS_EXPECTS(m < config_.n_masters);
  CBUS_EXPECTS_MSG(!flight_[m].active,
                   "master already has a transaction in the interconnect");

  InFlight& entry = flight_[m];
  entry.active = true;
  entry.original = request;
  entry.original.issued_at = now;
  // Forced-hold requests (virtual contenders, trace replay) model
  // synthetic contention on the home segment and never route.
  entry.target = request.forced_hold > 0 ? home_[m]
                                         : config_.route(request.addr);
  entry.hops = 0;

  ++global_.master[m].requests;
  if (observer_ != nullptr) observer_->on_request(entry.original, now);
  raise_hop(home_[m], slot_[m], m, request.forced_hold, now);
}

bool SegmentedInterconnect::has_pending(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return flight_[master].active &&
         segments_[home_[master]].bus->has_pending(slot_[master]);
}

bool SegmentedInterconnect::can_request(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return !flight_[master].active;
}

void SegmentedInterconnect::tick(Cycle now) {
  // Bridge deliveries first: a request re-raised at cycle t is visible to
  // its segment's arbiter at t, exactly like a core raising in its own
  // tick (cores tick before the interconnect).
  deliver_bridges(now);
  for (Segment& seg : segments_) seg.bus->tick(now);
}

void SegmentedInterconnect::set_filter(std::uint32_t segment,
                                       EligibilityFilter* filter) {
  CBUS_EXPECTS(segment < config_.n_segments);
  segments_[segment].bus->set_filter(filter);
  filters_[segment] = filter;
}

std::uint32_t SegmentedInterconnect::n_local_masters(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments);
  return segments_[segment].bus->n_masters();
}

std::span<const MasterId> SegmentedInterconnect::segment_cores(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments);
  return segments_[segment].cores;
}

std::uint32_t SegmentedInterconnect::home_segment(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return home_[master];
}

std::uint32_t SegmentedInterconnect::local_slot(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return slot_[master];
}

std::size_t SegmentedInterconnect::bridge_queue_depth(std::uint32_t b) const {
  CBUS_EXPECTS(b < bridges_.size());
  return bridges_[b].queue.size();
}

std::pair<std::uint32_t, std::uint32_t> SegmentedInterconnect::bridge_route(
    std::uint32_t b) const {
  CBUS_EXPECTS(b < bridges_.size());
  return {bridges_[b].from, bridges_[b].to};
}

BusStatistics SegmentedInterconnect::statistics() const {
  BusStatistics out = global_;
  for (const Segment& seg : segments_) {
    const BusStatistics& s = seg.bus->statistics();
    out.busy_cycles += s.busy_cycles;
    out.idle_cycles += s.idle_cycles;
    out.total_cycles += s.total_cycles;
  }
  return out;
}

const BusStatistics& SegmentedInterconnect::segment_statistics(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments);
  return segments_[segment].bus->statistics();
}

const Arbiter& SegmentedInterconnect::segment_arbiter(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments);
  return *segments_[segment].arbiter;
}

void SegmentedInterconnect::raise_hop(std::uint32_t segment,
                                      std::uint32_t local, MasterId master,
                                      Cycle forced_hold, Cycle now) {
  Segment& seg = segments_[segment];
  CBUS_ASSERT(seg.port_owner[local] == kNoMaster);
  seg.port_owner[local] = master;

  BusRequest hop;
  hop.master = local;
  hop.addr = flight_[master].original.addr;
  hop.kind = flight_[master].original.kind;
  hop.tag = master;  // the global identity, for debugging/tracing
  hop.forced_hold = forced_hold;
  seg.bus->request(hop, now);
}

void SegmentedInterconnect::deliver_bridges(Cycle now) {
  for (Bridge& bridge : bridges_) {
    if (bridge.queue.empty()) continue;
    const BridgeEntry& head = bridge.queue.front();
    if (head.ready > now) continue;
    Segment& dest = segments_[bridge.to];
    const std::uint32_t port =
        bridge.to > bridge.from ? dest.left_port : dest.right_port;
    CBUS_ASSERT(port != kNoMaster);
    // The ingress port presents one request at a time; the rest of the
    // queue waits (store-and-forward backpressure). port_owner is the
    // authoritative busy flag: the bus's can_request() is briefly true
    // in the latched-grant window (granted, transfer not yet begun),
    // but the port's hop only retires at transfer completion.
    if (dest.port_owner[port] != kNoMaster) continue;
    CBUS_ASSERT(dest.bus->can_request(port));
    bridge_stats_.queue_cycles += now - head.enqueued;
    raise_hop(bridge.to, port, head.master, /*forced_hold=*/0, now);
    bridge.queue.pop_front();
  }
}

MasterId SegmentedInterconnect::owner_of(std::uint32_t segment,
                                         MasterId local) const {
  const MasterId master = segments_[segment].port_owner[local];
  CBUS_ASSERT(master != kNoMaster);
  return master;
}

Cycle SegmentedInterconnect::hop_begin(std::uint32_t segment,
                                       const BusRequest& local_request,
                                       Cycle now) {
  const MasterId master = owner_of(segment, local_request.master);
  const InFlight& entry = flight_[master];
  if (segment == entry.target) {
    // Target segment: the real slave decides, seeing the ORIGINAL
    // request (per-master slave partitions key off the global id).
    return slave_.begin_transaction(entry.original, now);
  }
  return config_.bridge_hold;  // forward beat into the bridge
}

void SegmentedInterconnect::hop_slave_complete(
    std::uint32_t segment, const BusRequest& local_request, Cycle now) {
  const MasterId master = owner_of(segment, local_request.master);
  const InFlight& entry = flight_[master];
  if (segment == entry.target) {
    slave_.complete_transaction(entry.original, now);
  }
}

void SegmentedInterconnect::hop_granted(std::uint32_t segment,
                                        MasterId local,
                                        const BusRequest& local_request,
                                        Cycle now, Cycle hold) {
  const MasterId master = owner_of(segment, local);
  flight_[master].hop_hold = hold;
  auto& pm = global_.master[master];
  pm.hold_cycles += hold;

  // The origin hop (the master's own port on its home segment) carries
  // the request-to-grant wait and the grant count; transit hops only add
  // occupancy.
  if (segment == home_[master] && local == slot_[master]) {
    ++pm.grants;
    const Cycle wait = now - local_request.issued_at;
    pm.wait_cycles += wait;
    pm.max_wait = std::max(pm.max_wait, wait);
    if (observer_ != nullptr) {
      observer_->on_transfer_start(flight_[master].original, now, hold);
    }
    if (callbacks_[master] != nullptr) {
      callbacks_[master]->on_grant(flight_[master].original, now, hold);
    }
  }
}

void SegmentedInterconnect::hop_completed(std::uint32_t segment,
                                          MasterId local,
                                          const BusRequest& /*local_request*/,
                                          Cycle now) {
  const MasterId master = owner_of(segment, local);
  segments_[segment].port_owner[local] = kNoMaster;
  InFlight& entry = flight_[master];

  // A hop served on a FOREIGN segment was charged to nobody there (the
  // bridge-ingress slot is credit-exempt); the origin's home filter pays
  // for it now, so a budget bounds its master's occupancy of the whole
  // interconnect, not just the home segment.
  const std::uint32_t home = home_[master];
  if (segment != home && filters_[home] != nullptr) {
    filters_[home]->on_remote_occupancy(slot_[master], entry.hop_hold);
  }

  if (segment == entry.target) {
    ++global_.master[master].completions;
    if (entry.hops > 0) {
      ++bridge_stats_.remote_transactions;
    } else {
      ++bridge_stats_.local_transactions;
    }
    const BusRequest original = entry.original;
    entry.active = false;  // cleared first: the master may re-raise
    if (observer_ != nullptr) observer_->on_transfer_complete(original, now);
    if (callbacks_[master] != nullptr) {
      callbacks_[master]->on_complete(original, now);
    }
    return;
  }

  // Transit hop done: store-and-forward towards the target.
  const std::uint32_t next =
      entry.target > segment ? segment + 1 : segment - 1;
  ++entry.hops;
  ++bridge_stats_.hops;
  for (Bridge& bridge : bridges_) {
    if (bridge.from == segment && bridge.to == next) {
      bridge.queue.push_back(
          BridgeEntry{master, now + config_.bridge_latency, now});
      return;
    }
  }
  CBUS_ASSERT(false);  // adjacency always has a bridge
}

}  // namespace cbus::bus
