#include "bus/segmented.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace cbus::bus {

namespace {

constexpr std::uint32_t kNoBridge = 0xFFFF'FFFFu;

}  // namespace

void SegmentedConfig::validate() const {
  CBUS_EXPECTS_MSG(n_masters >= 1 && n_masters <= kMaxMasters,
                   "segmented interconnect: bad master count");
  CBUS_EXPECTS_MSG(bridge_hold >= 1, "bridge_hold must be positive");
  CBUS_EXPECTS_MSG(stripe_log2 <= 31, "seg_stripe exceeds the address width");
  // Block distribution covers every segment iff there are at least as
  // many masters as segments; fewer would leave segments with no home
  // cores and a skewed home_segment map -- reject instead of silently
  // degenerating.
  CBUS_EXPECTS_MSG(n_masters >= n_segments(),
                   "segmented interconnect needs n_masters >= n_segments "
                   "(every segment needs a home core; got " +
                       std::to_string(n_masters) + " masters for " +
                       std::to_string(n_segments()) + " segments)");
  // Every segment's local master set (home cores + one bridge ingress
  // port per incoming topology edge) must fit the arbiter mask types.
  std::vector<std::uint32_t> cores_per_segment(n_segments(), 0);
  for (MasterId m = 0; m < n_masters; ++m) {
    ++cores_per_segment[home_segment(m)];
  }
  for (std::uint32_t s = 0; s < n_segments(); ++s) {
    CBUS_EXPECTS_MSG(cores_per_segment[s] + topology.in_degree(s) <=
                         kMaxMasters,
                     "segment " + std::to_string(s) +
                         " has too many local masters");
  }
}

SegmentedInterconnect::SegmentedInterconnect(
    const SegmentedConfig& config, BusSlave& slave,
    const ArbiterFactory& make_segment_arbiter)
    : sim::Component("segmented-interconnect"),
      config_(config),
      slave_(slave),
      filters_(config.n_segments(), nullptr),
      home_(config.n_masters),
      slot_(config.n_masters),
      callbacks_(config.n_masters, nullptr),
      flight_(config.n_masters),
      backpressure_stalls_(config.n_segments(), 0),
      hop_histogram_(config.topology.diameter() + 1, 0) {
  config_.validate();
  CBUS_EXPECTS_MSG(make_segment_arbiter != nullptr,
                   "segmented interconnect needs an arbiter factory");

  const Topology& topo = config_.topology;
  const std::uint32_t n = topo.n_segments();
  segments_.resize(n);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    home_[m] = config_.home_segment(m);
    Segment& seg = segments_[home_[m]];
    slot_[m] = static_cast<std::uint32_t>(seg.cores.size());
    seg.cores.push_back(m);
  }

  // One ingress port per incoming edge, in ascending source-segment
  // order (for the chain: from-left before from-right, the historical
  // slot layout).
  for (const TopologyEdge& e : topo.edges()) {
    segments_[e.to].ingress_from.push_back(e.from);
  }
  for (Segment& seg : segments_) {
    std::sort(seg.ingress_from.begin(), seg.ingress_from.end());
  }

  for (std::uint32_t s = 0; s < n; ++s) {
    Segment& seg = segments_[s];
    const std::uint32_t n_local = static_cast<std::uint32_t>(
        seg.cores.size() + seg.ingress_from.size());

    seg.arbiter = make_segment_arbiter(n_local, s);
    CBUS_EXPECTS_MSG(seg.arbiter != nullptr,
                     "segment arbiter factory returned null");
    CBUS_EXPECTS(seg.arbiter->n_masters() == n_local);

    seg.slave = std::make_unique<SegmentSlave>();
    seg.slave->owner = this;
    seg.slave->segment = s;
    seg.bus = std::make_unique<NonSplitBus>(
        BusConfig{n_local, config_.overlapped_arbitration}, *seg.arbiter,
        *seg.slave);

    seg.gate = std::make_unique<SegmentGate>();
    seg.gate->owner = this;
    seg.gate->segment = s;
    seg.bus->set_filter(seg.gate.get());

    seg.relays.reserve(n_local);
    for (std::uint32_t local = 0; local < n_local; ++local) {
      auto relay = std::make_unique<PortRelay>();
      relay->owner = this;
      relay->segment = s;
      relay->local = local;
      seg.bus->connect_master(local, *relay);
      seg.relays.push_back(std::move(relay));
    }
    seg.port_owner.assign(n_local, kNoMaster);
  }

  // One bridge per directed edge, in Topology::edges() order: the
  // delivery order below is part of the determinism contract (for the
  // chain this is the historical (s, direction) order).
  edge_index_.assign(static_cast<std::size_t>(n) * n, kNoBridge);
  for (const TopologyEdge& e : topo.edges()) {
    const Segment& dest = segments_[e.to];
    const auto it = std::find(dest.ingress_from.begin(),
                              dest.ingress_from.end(), e.from);
    CBUS_ASSERT(it != dest.ingress_from.end());
    const std::uint32_t port = static_cast<std::uint32_t>(
        dest.cores.size() + (it - dest.ingress_from.begin()));
    edge_index_[static_cast<std::size_t>(e.from) * n + e.to] =
        static_cast<std::uint32_t>(bridges_.size());
    bridges_.push_back(Bridge{e.from, e.to, port, {}, 0, 0, 0});
  }

  global_.master.resize(config_.n_masters);
}

SegmentedInterconnect::~SegmentedInterconnect() = default;

void SegmentedInterconnect::connect_master(MasterId master,
                                           BusMaster& callbacks) {
  CBUS_EXPECTS(master < config_.n_masters);
  callbacks_[master] = &callbacks;
}

void SegmentedInterconnect::request(const BusRequest& request, Cycle now) {
  const MasterId m = request.master;
  CBUS_EXPECTS(m < config_.n_masters);
  CBUS_EXPECTS_MSG(!flight_[m].active,
                   "master already has a transaction in the interconnect");

  InFlight& entry = flight_[m];
  entry.active = true;
  entry.original = request;
  entry.original.issued_at = now;
  // Forced-hold requests (virtual contenders, trace replay) model
  // synthetic contention on the home segment and never route.
  entry.target = request.forced_hold > 0 ? home_[m]
                                         : config_.route(request.addr);
  entry.hops = 0;

  ++global_.master[m].requests;
  if (observer_ != nullptr) observer_->on_request(entry.original, now);
  raise_hop(home_[m], slot_[m], m, request.forced_hold, now);
}

bool SegmentedInterconnect::has_pending(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return flight_[master].active &&
         segments_[home_[master]].bus->has_pending(slot_[master]);
}

bool SegmentedInterconnect::can_request(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return !flight_[master].active;
}

void SegmentedInterconnect::tick(Cycle now) {
  // Bridge deliveries first: a request re-raised at cycle t is visible to
  // its segment's arbiter at t, exactly like a core raising in its own
  // tick (cores tick before the interconnect).
  deliver_bridges(now);
  for (Segment& seg : segments_) seg.bus->tick(now);

  // End-of-cycle accounting: queue-depth accumulators per bridge, and --
  // with a bounded depth -- one stall master-cycle per pending request
  // withheld from arbitration by a full next-hop bridge.
  ++ticks_;
  for (Bridge& bridge : bridges_) {
    bridge.depth_sum += bridge.queue.size();
    bridge.depth_max = std::max(bridge.depth_max, bridge.queue.size());
  }
  if (config_.bridge_depth > 0) {
    for (std::uint32_t s = 0; s < n_segments(); ++s) {
      std::uint32_t blocked = blocked_mask(s);
      const Segment& seg = segments_[s];
      while (blocked != 0) {
        const std::uint32_t local =
            static_cast<std::uint32_t>(std::countr_zero(blocked));
        blocked &= blocked - 1;
        if (seg.bus->has_pending(local)) ++backpressure_stalls_[s];
      }
    }
  }
}

void SegmentedInterconnect::set_filter(std::uint32_t segment,
                                       EligibilityFilter* filter) {
  CBUS_EXPECTS(segment < config_.n_segments());
  segments_[segment].gate->user = filter;
  filters_[segment] = filter;
}

std::uint32_t SegmentedInterconnect::n_local_masters(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments());
  return segments_[segment].bus->n_masters();
}

std::span<const MasterId> SegmentedInterconnect::segment_cores(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments());
  return segments_[segment].cores;
}

std::uint32_t SegmentedInterconnect::home_segment(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return home_[master];
}

std::uint32_t SegmentedInterconnect::local_slot(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return slot_[master];
}

std::size_t SegmentedInterconnect::bridge_queue_depth(std::uint32_t b) const {
  CBUS_EXPECTS(b < bridges_.size());
  return bridges_[b].queue.size();
}

std::pair<std::uint32_t, std::uint32_t> SegmentedInterconnect::bridge_route(
    std::uint32_t b) const {
  CBUS_EXPECTS(b < bridges_.size());
  return {bridges_[b].from, bridges_[b].to};
}

std::size_t SegmentedInterconnect::bridge_queue_depth_max(
    std::uint32_t b) const {
  CBUS_EXPECTS(b < bridges_.size());
  return bridges_[b].depth_max;
}

std::uint64_t SegmentedInterconnect::bridge_queue_depth_sum(
    std::uint32_t b) const {
  CBUS_EXPECTS(b < bridges_.size());
  return bridges_[b].depth_sum;
}

std::uint64_t SegmentedInterconnect::backpressure_stalls(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments());
  return backpressure_stalls_[segment];
}

BusStatistics SegmentedInterconnect::statistics() const {
  BusStatistics out = global_;
  for (const Segment& seg : segments_) {
    const BusStatistics& s = seg.bus->statistics();
    out.busy_cycles += s.busy_cycles;
    out.idle_cycles += s.idle_cycles;
    out.total_cycles += s.total_cycles;
  }
  return out;
}

const BusStatistics& SegmentedInterconnect::segment_statistics(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments());
  return segments_[segment].bus->statistics();
}

const Arbiter& SegmentedInterconnect::segment_arbiter(
    std::uint32_t segment) const {
  CBUS_EXPECTS(segment < config_.n_segments());
  return *segments_[segment].arbiter;
}

void SegmentedInterconnect::raise_hop(std::uint32_t segment,
                                      std::uint32_t local, MasterId master,
                                      Cycle forced_hold, Cycle now) {
  Segment& seg = segments_[segment];
  CBUS_ASSERT(seg.port_owner[local] == kNoMaster);
  seg.port_owner[local] = master;

  BusRequest hop;
  hop.master = local;
  hop.addr = flight_[master].original.addr;
  hop.kind = flight_[master].original.kind;
  hop.tag = master;  // the global identity, for debugging/tracing
  hop.forced_hold = forced_hold;
  seg.bus->request(hop, now);
}

void SegmentedInterconnect::deliver_bridges(Cycle now) {
  for (Bridge& bridge : bridges_) {
    if (bridge.queue.empty()) continue;
    const BridgeEntry& head = bridge.queue.front();
    if (head.ready > now) continue;
    Segment& dest = segments_[bridge.to];
    const std::uint32_t port = bridge.dest_port;
    // The ingress port presents one request at a time; the rest of the
    // queue waits (store-and-forward backpressure). port_owner is the
    // authoritative busy flag: the bus's can_request() is briefly true
    // in the latched-grant window (granted, transfer not yet begun),
    // but the port's hop only retires at transfer completion.
    if (dest.port_owner[port] != kNoMaster) continue;
    CBUS_ASSERT(dest.bus->can_request(port));
    bridge_stats_.queue_cycles += now - head.enqueued;
    raise_hop(bridge.to, port, head.master, /*forced_hold=*/0, now);
    bridge.queue.pop_front();
  }
}

std::uint32_t SegmentedInterconnect::blocked_mask(
    std::uint32_t segment) const {
  if (config_.bridge_depth == 0) return 0;
  std::uint32_t mask = 0;
  const Segment& seg = segments_[segment];
  const std::uint32_t n_local =
      static_cast<std::uint32_t>(seg.port_owner.size());
  for (std::uint32_t local = 0; local < n_local; ++local) {
    const MasterId master = seg.port_owner[local];
    if (master == kNoMaster) continue;
    const InFlight& entry = flight_[master];
    if (entry.target == segment) continue;  // delivered here, no next hop
    const std::uint32_t next =
        config_.topology.next_hop(segment, entry.target);
    const Bridge& bridge = bridges_[bridge_index(segment, next)];
    // Count grant-time reservations too: overlapped arbitration admits
    // the next transfer while the previous one is still in service, so
    // the live queue alone under-reports committed occupancy.
    if (bridge.queue.size() + bridge.reserved >= config_.bridge_depth) {
      mask |= 1u << local;
    }
  }
  return mask;
}

std::uint32_t SegmentedInterconnect::bridge_index(std::uint32_t from,
                                                  std::uint32_t to) const {
  const std::uint32_t b =
      edge_index_[static_cast<std::size_t>(from) * n_segments() + to];
  CBUS_ASSERT(b != kNoBridge);  // routing only crosses topology edges
  return b;
}

MasterId SegmentedInterconnect::owner_of(std::uint32_t segment,
                                         MasterId local) const {
  const MasterId master = segments_[segment].port_owner[local];
  CBUS_ASSERT(master != kNoMaster);
  return master;
}

Cycle SegmentedInterconnect::hop_begin(std::uint32_t segment,
                                       const BusRequest& local_request,
                                       Cycle now) {
  const MasterId master = owner_of(segment, local_request.master);
  const InFlight& entry = flight_[master];
  if (segment == entry.target) {
    // Target segment: the real slave decides, seeing the ORIGINAL
    // request (per-master slave partitions key off the global id).
    return slave_.begin_transaction(entry.original, now);
  }
  return config_.bridge_hold;  // forward beat into the bridge
}

void SegmentedInterconnect::hop_slave_complete(
    std::uint32_t segment, const BusRequest& local_request, Cycle now) {
  const MasterId master = owner_of(segment, local_request.master);
  const InFlight& entry = flight_[master];
  if (segment == entry.target) {
    slave_.complete_transaction(entry.original, now);
  }
}

void SegmentedInterconnect::hop_granted(std::uint32_t segment,
                                        MasterId local,
                                        const BusRequest& local_request,
                                        Cycle now, Cycle hold) {
  const MasterId master = owner_of(segment, local);
  InFlight& granted = flight_[master];
  granted.hop_hold = hold;
  // A granted hop that will forward into a bridge reserves its queue
  // slot NOW (the SegmentGate admitted it against queue + reserved);
  // the reservation becomes the real entry in hop_completed.
  if (config_.bridge_depth > 0 && granted.target != segment) {
    const std::uint32_t next =
        config_.topology.next_hop(segment, granted.target);
    Bridge& bridge = bridges_[bridge_index(segment, next)];
    ++bridge.reserved;
    CBUS_ASSERT(bridge.queue.size() + bridge.reserved <=
                config_.bridge_depth);
  }
  auto& pm = global_.master[master];
  pm.hold_cycles += hold;

  // The origin hop (the master's own port on its home segment) carries
  // the request-to-grant wait and the grant count; transit hops only add
  // occupancy.
  if (segment == home_[master] && local == slot_[master]) {
    ++pm.grants;
    const Cycle wait = now - local_request.issued_at;
    pm.wait_cycles += wait;
    pm.max_wait = std::max(pm.max_wait, wait);
    if (observer_ != nullptr) {
      observer_->on_transfer_start(flight_[master].original, now, hold);
    }
    if (callbacks_[master] != nullptr) {
      callbacks_[master]->on_grant(flight_[master].original, now, hold);
    }
  }
}

void SegmentedInterconnect::hop_completed(std::uint32_t segment,
                                          MasterId local,
                                          const BusRequest& /*local_request*/,
                                          Cycle now) {
  const MasterId master = owner_of(segment, local);
  segments_[segment].port_owner[local] = kNoMaster;
  InFlight& entry = flight_[master];

  // A hop served on a FOREIGN segment was charged to nobody there (the
  // bridge-ingress slot is credit-exempt); the origin's home filter pays
  // for it now, so a budget bounds its master's occupancy of the whole
  // interconnect, not just the home segment.
  const std::uint32_t home = home_[master];
  if (segment != home && filters_[home] != nullptr) {
    filters_[home]->on_remote_occupancy(slot_[master], entry.hop_hold);
  }

  if (segment == entry.target) {
    ++global_.master[master].completions;
    ++hop_histogram_[entry.hops];
    if (entry.hops > 0) {
      ++bridge_stats_.remote_transactions;
    } else {
      ++bridge_stats_.local_transactions;
    }
    const BusRequest original = entry.original;
    entry.active = false;  // cleared first: the master may re-raise
    if (observer_ != nullptr) observer_->on_transfer_complete(original, now);
    if (callbacks_[master] != nullptr) {
      callbacks_[master]->on_complete(original, now);
    }
    return;
  }

  // Transit hop done: store-and-forward towards the target along the
  // topology's routed path.
  const std::uint32_t next =
      config_.topology.next_hop(segment, entry.target);
  ++entry.hops;
  ++bridge_stats_.hops;
  Bridge& bridge = bridges_[bridge_index(segment, next)];
  // The grant-time reservation converts into the real queue entry, so a
  // bounded queue never overflows.
  if (config_.bridge_depth > 0) {
    CBUS_ASSERT(bridge.reserved > 0);
    --bridge.reserved;
    CBUS_ASSERT(bridge.queue.size() < config_.bridge_depth);
  }
  bridge.queue.push_back(
      BridgeEntry{master, now + config_.bridge_latency, now});
}

}  // namespace cbus::bus
