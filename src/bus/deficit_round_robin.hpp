// Deficit round-robin (Shreedhar & Varghese, SIGCOMM 1995) adapted to a
// non-split bus: the classic cycle-fair scheduler from packet networks,
// included as the natural prior-art comparison for CBA.
//
// Each master has a deficit counter; visiting the rotation adds a quantum
// of cycles; a master may be granted while its deficit covers the
// transaction it requests. Unlike CBA there is no eligibility *filter* --
// DRR reorders grants rather than gating them -- and the deficit is reset
// when a master has nothing pending (no banking), which is DRR's version
// of the budget-saturation rule.
//
// Contrast with CBA (both are cycle-fair in the long run):
//  * DRR needs to know the transaction length AT ARBITRATION TIME to
//    check it against the deficit; on the modelled bus the hold time is
//    only known when the slave is consulted, so this implementation
//    charges the deficit at completion (post-paid) -- a master can
//    overdraw by at most MaxL, mirroring how hardware DRR variants work
//    when lengths are unknown a priori (the same problem the paper's
//    TDMA discussion describes).
//  * CBA gates *eligibility* before any inner policy; DRR IS the policy.
#pragma once

#include <vector>

#include "bus/arbiter.hpp"

namespace cbus::bus {

class DeficitRoundRobinArbiter final : public Arbiter {
 public:
  /// `quantum` cycles of credit added per rotation visit (a natural
  /// choice is MaxL, giving every master one worst-case transaction per
  /// round).
  DeficitRoundRobinArbiter(std::uint32_t n_masters, Cycle quantum);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override;

  /// Post-paid charge: the bus reports the actual hold after completion.
  void on_complete(MasterId master, Cycle hold) override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "deficit-round-robin";
  }
  [[nodiscard]] HwCost hw_cost() const override;

  [[nodiscard]] std::int64_t deficit(MasterId master) const;
  [[nodiscard]] Cycle quantum() const noexcept { return quantum_; }

 private:
  Cycle quantum_;
  std::vector<std::int64_t> deficit_;
  MasterId cursor_;
};

}  // namespace cbus::bus
