// Interconnect topology descriptions for bus::SegmentedInterconnect: a
// small graph model (segments = nodes, bridges = directed edges) plus a
// deterministic next-hop routing function per topology kind.
//
//  * chain:<n> -- the original linear chain. Routing walks towards the
//    target (`to > from` steps right, else left). This is the legacy
//    `segmented:<n>` behavior, cycle-exact by construction: the edge
//    enumeration below reproduces the historical bridge delivery order
//    (s -> s+1), (s+1 -> s) per adjacency.
//  * ring:<n> -- the chain closed by a wrap-around link. Routing takes
//    the shortest direction; equidistant targets (even n, antipodal
//    target) break the tie FORWARD (towards from+1), deterministically.
//  * mesh:<rows>x<cols> -- a 2D grid, segment s at (row s/cols,
//    col s%cols). Routing is dimension-ordered XY: correct the column
//    first, then the row. XY routing is deadlock-free on a mesh and
//    gives every (from, to) pair exactly one path, so batched campaigns
//    stay bit-identical to serial.
//
// Edge order is part of the determinism contract: bridges are delivered
// in edges() order every cycle, and per-segment ingress ports are
// assigned in ascending-source order (chain: from-left before
// from-right, as before).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cbus::bus {

enum class TopologyKind : std::uint8_t { kChain, kRing, kMesh };

[[nodiscard]] constexpr std::string_view to_string(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kChain: return "chain";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kMesh: return "mesh";
  }
  return "?";
}

/// One directed bridge link between two segments.
struct TopologyEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  friend bool operator==(const TopologyEdge&, const TopologyEdge&) = default;
};

/// Immutable graph + routing description. Construction validates shape
/// (throws std::invalid_argument) so an instance is always routable.
class Topology {
 public:
  /// Linear chain of n >= 1 segments (1 = degenerate single segment).
  [[nodiscard]] static Topology chain(std::uint32_t n);
  /// Ring of n >= 3 segments (n = 2 would duplicate the chain link).
  [[nodiscard]] static Topology ring(std::uint32_t n);
  /// rows x cols 2D mesh with XY routing; rows, cols >= 1, rows*cols >= 2.
  [[nodiscard]] static Topology mesh(std::uint32_t rows, std::uint32_t cols);

  Topology() : Topology(chain(2)) {}

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint32_t n_segments() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }

  /// Directed edges in bridge delivery order: for every undirected
  /// adjacency, the canonical direction first, then its reverse.
  [[nodiscard]] std::span<const TopologyEdge> edges() const noexcept {
    return edges_;
  }
  /// Bridge ingress ports a segment hosts (= incoming directed edges).
  [[nodiscard]] std::uint32_t in_degree(std::uint32_t segment) const;

  /// Neighbour a hop takes leaving `from` towards `to` (from != to).
  /// Deterministic: one answer per (from, to) pair, always adjacent.
  [[nodiscard]] std::uint32_t next_hop(std::uint32_t from,
                                       std::uint32_t to) const;
  /// Bridges crossed on the routed from -> to path (0 when from == to).
  [[nodiscard]] std::uint32_t distance(std::uint32_t from,
                                       std::uint32_t to) const;
  /// Longest routed path in the graph, in hops.
  [[nodiscard]] std::uint32_t diameter() const noexcept;

  /// Human-readable label: "chain:4", "ring:8", "mesh:3x3".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const Topology& a, const Topology& b) noexcept {
    return a.kind_ == b.kind_ && a.n_ == b.n_ && a.rows_ == b.rows_ &&
           a.cols_ == b.cols_;
  }

 private:
  Topology(TopologyKind kind, std::uint32_t n, std::uint32_t rows,
           std::uint32_t cols);

  TopologyKind kind_ = TopologyKind::kChain;
  std::uint32_t n_ = 1;
  std::uint32_t rows_ = 0;  ///< mesh only
  std::uint32_t cols_ = 0;  ///< mesh only
  std::vector<TopologyEdge> edges_;
  std::vector<std::uint32_t> in_degree_;
};

/// One accepted `topology =` config form (the `--list topologies` set).
struct TopologyForm {
  std::string_view name;         ///< config syntax, e.g. "mesh:<rows>x<cols>"
  std::string_view description;  ///< one-line summary for --list output
};

/// Registry of accepted config forms, in display order.
[[nodiscard]] std::span<const TopologyForm> topology_forms();

/// Space-joined form names for parse-error messages, mirroring
/// ctrl::known_controller_list().
[[nodiscard]] std::string known_topology_list();

}  // namespace cbus::bus
