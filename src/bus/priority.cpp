#include "bus/priority.hpp"

#include <numeric>

namespace cbus::bus {

FixedPriorityArbiter::FixedPriorityArbiter(std::uint32_t n_masters)
    : Arbiter(n_masters), order_(n_masters) {
  std::iota(order_.begin(), order_.end(), 0u);
}

FixedPriorityArbiter::FixedPriorityArbiter(std::uint32_t n_masters,
                                           std::vector<MasterId> order)
    : Arbiter(n_masters), order_(std::move(order)) {
  CBUS_EXPECTS(order_.size() == n_masters);
  std::uint32_t seen = 0;
  for (const MasterId m : order_) {
    CBUS_EXPECTS(m < n_masters);
    CBUS_EXPECTS_MSG(((seen >> m) & 1u) == 0, "duplicate master in order");
    seen |= 1u << m;
  }
}

MasterId FixedPriorityArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  for (const MasterId m : order_) {
    if ((input.candidates >> m) & 1u) return m;
  }
  CBUS_ASSERT(false);
  return kNoMaster;
}

void FixedPriorityArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
}

HwCost FixedPriorityArbiter::hw_cost() const {
  return HwCost{0, n_masters(), "pure priority encoder, no state"};
}

}  // namespace cbus::bus
