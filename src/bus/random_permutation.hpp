// Random-permutations arbitration (Jalle et al., DATE 2014) -- the inner
// policy the paper integrates CBA with on the LEON3 prototype.
//
// Arbitration windows: a uniformly random permutation of the masters is
// drawn; within the window each master is granted at most once, served in
// permutation order among those with pending requests. When every master
// has been served -- or no unserved master in the window has a pending
// request (work conservation) -- a fresh permutation is drawn. Randomness
// comes from the per-cycle RandBank channel, modelling the paper's
// APRANDBANK connection.
#pragma once

#include <vector>

#include "bus/arbiter.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::bus {

class RandomPermutationArbiter final : public Arbiter {
 public:
  RandomPermutationArbiter(std::uint32_t n_masters, rng::RandChannel channel);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "random-permutations";
  }
  [[nodiscard]] HwCost hw_cost() const override;

  /// Exposed for testing: the permutation currently in force.
  [[nodiscard]] const std::vector<std::uint32_t>& window() const noexcept {
    return permutation_;
  }
  /// Exposed for testing: bitmask of masters already served in this window.
  [[nodiscard]] std::uint32_t served_mask() const noexcept { return served_; }

 private:
  void redraw();

  rng::RandChannel channel_;
  std::vector<std::uint32_t> permutation_;
  std::uint32_t served_ = 0;
};

}  // namespace cbus::bus
