// SegmentedInterconnect: bus segments joined by store-and-forward
// bridges -- the multi-contention-point generalisation of the paper's
// single bus (ROADMAP "multi-segment/NoC-style interconnects").
//
// The shape of the interconnect is a bus::Topology graph (chain, ring or
// 2D mesh; see topology.hpp): segments are nodes, bridges are directed
// edges, and each topology supplies a deterministic next-hop routing
// function. Every global master (core) is attached to a *home segment*;
// the address space is interleaved across segments in
// `2^stripe_log2`-byte ranges, and a request targets the segment owning
// its address range:
//
//   core m (home h) --> segment h --> [bridge]* --> segment t --> slave
//
//  * On its home segment the request competes under that segment's OWN
//    arbiter instance (any registered policy) and OWN eligibility filter
//    (per-segment CBA credit accounting) -- the single-bus protocol
//    contract (1-cycle arbitration, overlapped re-arbitration, at most
//    one outstanding request per master) holds per segment, unchanged.
//  * If the target is local (`t == h`), the slave decides the hold time
//    exactly as on the single bus.
//  * Otherwise the transfer occupies the local segment for `bridge_hold`
//    cycles (the forward beat into the bridge), sits `bridge_latency`
//    cycles in the store-and-forward buffer, then re-arbitrates on the
//    next segment as that segment's bridge-ingress master -- hop by hop
//    along the topology's routed path until the target segment, where
//    the slave is consulted. The response path is folded into the hold
//    times (the originating master is notified when the target-segment
//    transfer completes).
//  * Forced-hold requests (WCET-mode virtual contenders, trace replay)
//    never route: they model synthetic contention on the master's home
//    segment, mirroring the paper's Table-I setup per segment.
//
// Bridge queues are unbounded by default (`bridge_depth = 0`: the model
// studies bandwidth shares, not buffer sizing). With a bounded
// `bridge_depth`, a full downstream queue exerts *backpressure*: any
// request whose routed next hop would enqueue into a full bridge is
// withheld from arbitration (masked out of grant eligibility, exactly
// like an exhausted credit budget), and a blocked bridge-ingress
// occupant keeps its port busy -- which stalls the upstream bridge head
// in turn, so congestion propagates hop-by-hop instead of accumulating
// in infinite buffers. Admission is a grant-time RESERVATION: winning a
// segment's arbitration reserves one slot in the routed next-hop bridge
// (overlapped arbitration grants while the previous transfer is still
// in service, so testing the live queue alone would leak admissions),
// and the reservation converts into the real queue entry when the
// forward beat completes. queued + reserved never exceeds the bound, so
// no entry is ever dropped or reordered. Caveat: shortest-path routing on a
// bounded ring admits cyclic waits in principle; with at most one
// outstanding request per master (this model's protocol) a cycle cannot
// close, but pathological configs should prefer `chain`/`mesh` (XY
// routing is deadlock-free) or a deeper bound.
//
// All state is per-instance and advanced only inside tick(), so a
// replica is lane-safe under sim::BatchKernel and batched campaigns stay
// bit-identical to serial -- for every topology.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/bus.hpp"
#include "bus/interfaces.hpp"
#include "bus/request.hpp"
#include "bus/topology.hpp"
#include "common/contracts.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace cbus::bus {

struct SegmentedConfig {
  std::uint32_t n_masters = 4;  ///< global bus masters (cores)
  /// Interconnect graph (chain:<n> reproduces the legacy linear chain
  /// cycle-exactly; see topology.hpp for ring/mesh routing rules).
  Topology topology = Topology::chain(2);
  bool overlapped_arbitration = true;

  /// Cycles a forwarded request occupies the segment it leaves (the
  /// forward beat into the bridge; an L2-hit-sized transfer by default).
  Cycle bridge_hold = 5;
  /// Store-and-forward buffering delay per hop, in cycles.
  Cycle bridge_latency = 2;
  /// Address interleave: route(addr) = (addr >> stripe_log2) % n_segments.
  std::uint32_t stripe_log2 = 12;
  /// Bridge queue bound; 0 = unbounded (the legacy behavior). A full
  /// queue withholds grant eligibility upstream (backpressure).
  std::uint32_t bridge_depth = 0;

  [[nodiscard]] std::uint32_t n_segments() const noexcept {
    return topology.n_segments();
  }

  /// Home segment of master m: block distribution, so masters 0..k-1
  /// fill segment 0 first (the TuA's segment), then the next.
  [[nodiscard]] std::uint32_t home_segment(MasterId m) const noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(m) * n_segments()) / n_masters);
  }

  /// Segment owning the address range of `addr`.
  [[nodiscard]] std::uint32_t route(Addr addr) const noexcept {
    return (addr >> stripe_log2) % n_segments();
  }

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;
};

/// Aggregate bridge-traffic accounting, global across all bridges.
struct BridgeStats {
  std::uint64_t hops = 0;            ///< store-and-forward traversals
  Cycle queue_cycles = 0;            ///< total enqueue-to-re-raise time
  std::uint64_t remote_transactions = 0;  ///< completions that crossed >=1 bridge
  std::uint64_t local_transactions = 0;   ///< completions served at home
};

class SegmentedInterconnect final : public sim::Component, public BusPort {
 public:
  /// Builds the arbiter instance of one segment (`n_local` local
  /// masters). Called once per segment, in segment order, so randomized
  /// policies draw deterministic per-segment seeds.
  using ArbiterFactory = std::function<std::unique_ptr<Arbiter>(
      std::uint32_t n_local, std::uint32_t segment)>;

  /// `slave` serves target-segment transactions (with the ORIGINAL
  /// global request, so per-master slave partitioning keeps working).
  SegmentedInterconnect(const SegmentedConfig& config, BusSlave& slave,
                        const ArbiterFactory& make_segment_arbiter);
  ~SegmentedInterconnect() override;

  // --- BusPort (the global, protocol-facing view) ------------------------
  void connect_master(MasterId master, BusMaster& callbacks) override;
  void request(const BusRequest& request, Cycle now) override;
  /// True while the master's request is raised at home and not granted.
  [[nodiscard]] bool has_pending(MasterId master) const override;
  /// True iff the master has no transaction anywhere in the interconnect.
  [[nodiscard]] bool can_request(MasterId master) const override;

  void tick(Cycle now) override;

  /// Install a passive observer of GLOBAL-level activity (nullptr
  /// detaches): on_request at the global raise, on_transfer_start when
  /// the origin hop wins home-segment arbitration (hold = the home
  /// forward beat), on_transfer_complete when the target-segment hop
  /// retires -- the same request/grant/complete milestones NonSplitBus
  /// reports, so one BusObserver implementation covers both topologies.
  /// Transit hops are not observed as events; their effect shows up in
  /// the bridge queue depths below.
  void set_observer(BusObserver* observer) noexcept { observer_ = observer; }

  /// Install segment `segment`'s eligibility filter (nullptr detaches).
  /// Local slot numbering (the filter's master ids): home cores in
  /// ascending global id, then one bridge-ingress port per incoming
  /// topology edge in ascending source-segment order (for the chain:
  /// from-left, then from-right, as always). Besides gating its own
  /// segment's arbitration, a filter receives
  /// on_remote_occupancy(local_core, cycles) whenever a home core's
  /// transaction finishes a hop on a FOREIGN segment, so per-segment
  /// credit accounting charges each core for its transaction's entire
  /// path. With a bounded `bridge_depth` the interconnect composes its
  /// own backpressure mask with the installed filter (filter first,
  /// then the blocked-next-hop mask).
  void set_filter(std::uint32_t segment, EligibilityFilter* filter);

  // --- topology introspection -------------------------------------------
  [[nodiscard]] std::uint32_t n_segments() const noexcept {
    return config_.n_segments();
  }
  [[nodiscard]] std::uint32_t n_masters() const noexcept {
    return config_.n_masters;
  }
  [[nodiscard]] const Topology& topology() const noexcept {
    return config_.topology;
  }
  /// Local masters of a segment: home cores + bridge ingress ports.
  [[nodiscard]] std::uint32_t n_local_masters(std::uint32_t segment) const;
  /// Home cores of a segment, ascending global id; a core's local slot is
  /// its index in this span.
  [[nodiscard]] std::span<const MasterId> segment_cores(
      std::uint32_t segment) const;
  [[nodiscard]] std::uint32_t home_segment(MasterId master) const;
  /// Local slot of a core on its home segment.
  [[nodiscard]] std::uint32_t local_slot(MasterId master) const;
  /// Bridges in delivery order = Topology::edges() order (for the chain:
  /// (s -> s+1), (s+1 -> s) per adjacency, the historical contract).
  [[nodiscard]] std::uint32_t n_bridges() const noexcept {
    return static_cast<std::uint32_t>(bridges_.size());
  }
  /// Requests currently buffered in bridge `b` (store-and-forward queue).
  [[nodiscard]] std::size_t bridge_queue_depth(std::uint32_t b) const;
  /// (from, to) segments of bridge `b`.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> bridge_route(
      std::uint32_t b) const;

  // --- statistics --------------------------------------------------------
  /// Global per-master view in BusStatistics shape: requests/grants/waits
  /// count home-segment arbitration, hold_cycles sums every segment-cycle
  /// occupied on the transaction's path, and busy/idle/total aggregate
  /// over all segments (total_cycles = n_segments x ticked cycles, so
  /// occupancy shares stay fractions of delivered interconnect capacity).
  [[nodiscard]] BusStatistics statistics() const;
  [[nodiscard]] const BusStatistics& segment_statistics(
      std::uint32_t segment) const;
  [[nodiscard]] const BridgeStats& bridge_stats() const noexcept {
    return bridge_stats_;
  }
  /// High-water mark of bridge `b`'s queue over the run.
  [[nodiscard]] std::size_t bridge_queue_depth_max(std::uint32_t b) const;
  /// Sum of bridge `b`'s end-of-cycle queue depths (mean = sum / ticks).
  [[nodiscard]] std::uint64_t bridge_queue_depth_sum(std::uint32_t b) const;
  /// Cycles this interconnect has ticked (denominator for depth means).
  [[nodiscard]] std::uint64_t ticked_cycles() const noexcept {
    return ticks_;
  }
  /// Master-cycles segment `segment` withheld a pending request from
  /// arbitration because its routed next-hop bridge was full. Always 0
  /// when bridge_depth is unbounded.
  [[nodiscard]] std::uint64_t backpressure_stalls(std::uint32_t segment) const;
  /// Completed transactions by bridges crossed; index = hop count,
  /// size = topology diameter + 1.
  [[nodiscard]] std::span<const std::uint64_t> hop_histogram() const noexcept {
    return hop_histogram_;
  }
  [[nodiscard]] const SegmentedConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const Arbiter& segment_arbiter(std::uint32_t segment) const;

 private:
  // Per-(segment, local-slot) relay: routes NonSplitBus master callbacks
  // back into the interconnect with the port identity attached.
  struct PortRelay final : BusMaster {
    SegmentedInterconnect* owner = nullptr;
    std::uint32_t segment = 0;
    MasterId local = 0;
    void on_grant(const BusRequest& request, Cycle now, Cycle hold) override {
      owner->hop_granted(segment, local, request, now, hold);
    }
    void on_complete(const BusRequest& request, Cycle now) override {
      owner->hop_completed(segment, local, request, now);
    }
  };

  // Per-segment slave adapter: target-segment transactions go to the real
  // slave (translated back to the original request), transit hops cost
  // the bridge forward beat.
  struct SegmentSlave final : BusSlave {
    SegmentedInterconnect* owner = nullptr;
    std::uint32_t segment = 0;
    Cycle begin_transaction(const BusRequest& request, Cycle now) override {
      return owner->hop_begin(segment, request, now);
    }
    void complete_transaction(const BusRequest& request, Cycle now) override {
      owner->hop_slave_complete(segment, request, now);
    }
  };

  // Per-segment eligibility adapter: applies the installed (credit)
  // filter first, then masks out requests whose routed next-hop bridge
  // is full -- the backpressure half of the grant-eligibility contract.
  // With bridge_depth unbounded the blocked mask is always 0, so the
  // composition is a byte-exact pass-through of the legacy behavior.
  struct SegmentGate final : EligibilityFilter {
    SegmentedInterconnect* owner = nullptr;
    std::uint32_t segment = 0;
    EligibilityFilter* user = nullptr;  ///< from set_filter (may be null)
    std::uint32_t eligible(std::uint32_t pending, Cycle now) override {
      const std::uint32_t mask =
          user != nullptr ? user->eligible(pending, now) : pending;
      return mask & ~owner->blocked_mask(segment);
    }
    void on_cycle(MasterId holder, Cycle now) override {
      if (user != nullptr) user->on_cycle(holder, now);
    }
    void on_grant(MasterId master, Cycle now) override {
      if (user != nullptr) user->on_grant(master, now);
    }
    void on_remote_occupancy(MasterId master, Cycle occupancy) override {
      if (user != nullptr) user->on_remote_occupancy(master, occupancy);
    }
    void reset() override {
      if (user != nullptr) user->reset();
    }
  };

  struct Segment {
    std::vector<MasterId> cores;  ///< ascending global ids; slot = index
    /// Source segment feeding each bridge-ingress port, ascending; port
    /// i lives at local slot cores.size() + i.
    std::vector<std::uint32_t> ingress_from;
    std::unique_ptr<Arbiter> arbiter;
    std::unique_ptr<SegmentSlave> slave;
    std::unique_ptr<SegmentGate> gate;
    std::unique_ptr<NonSplitBus> bus;
    std::vector<std::unique_ptr<PortRelay>> relays;  ///< one per local slot
    /// Global master whose hop occupies each local slot (kNoMaster: free).
    std::vector<MasterId> port_owner;
  };

  struct BridgeEntry {
    MasterId master = kNoMaster;
    Cycle ready = 0;     ///< earliest re-raise cycle (store-and-forward)
    Cycle enqueued = 0;  ///< for queue-time accounting
  };

  struct Bridge {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::uint32_t dest_port = 0;  ///< local slot of the ingress port on `to`
    std::deque<BridgeEntry> queue;
    /// Grant-time admissions not yet enqueued (bounded depth only):
    /// queue.size() + reserved <= bridge_depth is the hard invariant.
    std::uint32_t reserved = 0;
    std::uint64_t depth_sum = 0;  ///< end-of-cycle depths, summed
    std::size_t depth_max = 0;    ///< high-water mark
  };

  /// One outstanding transaction per global master.
  struct InFlight {
    bool active = false;
    BusRequest original;        ///< issued_at stamped at the global raise
    std::uint32_t target = 0;   ///< segment owning the address range
    std::uint32_t hops = 0;     ///< bridges crossed so far
    Cycle hop_hold = 0;         ///< hold of the hop currently in transfer
  };

  /// Raise master `master`'s hop on `segment` at local slot `local`.
  void raise_hop(std::uint32_t segment, std::uint32_t local, MasterId master,
                 Cycle forced_hold, Cycle now);
  /// Deliver ready bridge entries whose ingress port is free.
  void deliver_bridges(Cycle now);
  /// Local slots whose occupant's routed next-hop bridge is full (0 when
  /// bridge_depth is unbounded). Consulted by the SegmentGate at
  /// arbitration time and by the stall accounting in tick().
  [[nodiscard]] std::uint32_t blocked_mask(std::uint32_t segment) const;
  /// Bridge index of directed edge (from -> to); asserts adjacency.
  [[nodiscard]] std::uint32_t bridge_index(std::uint32_t from,
                                           std::uint32_t to) const;

  // NonSplitBus callback targets (see PortRelay / SegmentSlave).
  Cycle hop_begin(std::uint32_t segment, const BusRequest& local_request,
                  Cycle now);
  void hop_slave_complete(std::uint32_t segment,
                          const BusRequest& local_request, Cycle now);
  void hop_granted(std::uint32_t segment, MasterId local,
                   const BusRequest& local_request, Cycle now, Cycle hold);
  void hop_completed(std::uint32_t segment, MasterId local,
                     const BusRequest& local_request, Cycle now);

  [[nodiscard]] MasterId owner_of(std::uint32_t segment,
                                  MasterId local) const;

  SegmentedConfig config_;
  BusSlave& slave_;

  std::vector<Segment> segments_;
  std::vector<Bridge> bridges_;  ///< Topology::edges() order
  /// Directed-edge lookup: edge_index_[from * n + to] = bridge index.
  std::vector<std::uint32_t> edge_index_;
  /// Per-segment filters, mirrored from set_filter: foreign-hop
  /// occupancy is charged back to the origin's HOME filter
  /// (EligibilityFilter::on_remote_occupancy), so a credit budget pays
  /// for its transaction's whole path, not just the home forward beat.
  std::vector<EligibilityFilter*> filters_;

  std::vector<std::uint32_t> home_;  ///< per master
  std::vector<std::uint32_t> slot_;  ///< per master: home-segment slot
  BusObserver* observer_ = nullptr;  ///< global-level milestones (may be null)
  std::vector<BusMaster*> callbacks_;
  std::vector<InFlight> flight_;

  /// Live global per-master counters; busy/idle/total assembled on demand.
  BusStatistics global_;
  BridgeStats bridge_stats_;
  std::vector<std::uint64_t> backpressure_stalls_;  ///< per segment
  std::vector<std::uint64_t> hop_histogram_;  ///< per completed hop count
  std::uint64_t ticks_ = 0;
};

}  // namespace cbus::bus
