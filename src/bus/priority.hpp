// Fixed-priority arbitration. Included as the cautionary baseline: the paper
// (§II) notes priorities are unusable when every core runs real-time tasks,
// because a high-priority core can starve the rest -- our starvation tests
// demonstrate exactly that.
#pragma once

#include <vector>

#include "bus/arbiter.hpp"

namespace cbus::bus {

class FixedPriorityArbiter final : public Arbiter {
 public:
  /// Default priority order: master 0 highest.
  explicit FixedPriorityArbiter(std::uint32_t n_masters);

  /// Custom order: order[0] is the highest-priority master.
  FixedPriorityArbiter(std::uint32_t n_masters,
                       std::vector<MasterId> order);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed-priority";
  }
  [[nodiscard]] HwCost hw_cost() const override;

 private:
  std::vector<MasterId> order_;
};

}  // namespace cbus::bus
