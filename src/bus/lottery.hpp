// Lottery arbitration (Lahiri et al., DAC 2001): every pending request holds
// tickets; a uniformly random draw picks the winner. With equal tickets this
// is request-count fair in expectation and MBPTA-amenable (paper §II).
#pragma once

#include <vector>

#include "bus/arbiter.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::bus {

class LotteryArbiter final : public Arbiter {
 public:
  /// Equal tickets for every master.
  LotteryArbiter(std::uint32_t n_masters, rng::RandChannel channel);

  /// Weighted tickets (all weights >= 1).
  LotteryArbiter(std::uint32_t n_masters, rng::RandChannel channel,
                 std::vector<std::uint32_t> tickets);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "lottery";
  }
  [[nodiscard]] HwCost hw_cost() const override;

 private:
  rng::RandChannel channel_;
  std::vector<std::uint32_t> tickets_;
};

}  // namespace cbus::bus
