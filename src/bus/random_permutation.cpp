#include "bus/random_permutation.hpp"

#include "rng/permutation.hpp"

namespace cbus::bus {

RandomPermutationArbiter::RandomPermutationArbiter(std::uint32_t n_masters,
                                                   rng::RandChannel channel)
    : Arbiter(n_masters),
      channel_(std::move(channel)),
      permutation_(n_masters) {
  redraw();
}

void RandomPermutationArbiter::redraw() {
  rng::random_permutation(channel_, std::span<std::uint32_t>(permutation_));
  served_ = 0;
}

MasterId RandomPermutationArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  // First unserved master in permutation order with a pending request.
  for (const std::uint32_t m : permutation_) {
    if ((served_ >> m) & 1u) continue;
    if ((input.candidates >> m) & 1u) return static_cast<MasterId>(m);
  }
  // Window exhausted for every pending master: open a new window. A single
  // redraw suffices (the fresh window has no served masters), keeping the
  // policy work-conserving.
  redraw();
  for (const std::uint32_t m : permutation_) {
    if ((input.candidates >> m) & 1u) return static_cast<MasterId>(m);
  }
  CBUS_ASSERT(false);
  return kNoMaster;
}

void RandomPermutationArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
  served_ |= 1u << master;
  if (served_ == (n_masters() >= 32 ? ~0u : (1u << n_masters()) - 1u)) {
    redraw();
  }
}

void RandomPermutationArbiter::reset() { redraw(); }

HwCost RandomPermutationArbiter::hw_cost() const {
  const unsigned n = n_masters();
  unsigned bits = 0;
  for (unsigned v = n - 1; v != 0; v >>= 1) ++bits;
  // State: permutation registers (N x log2 N) + served mask. The PRNG is the
  // shared APRANDBANK, not counted per arbiter.
  return HwCost{n * bits + n, 8 * n,
                "permutation registers + served mask + shuffle network"};
}

}  // namespace cbus::bus
