#include "bus/tdma.hpp"

namespace cbus::bus {

TdmaArbiter::TdmaArbiter(std::uint32_t n_masters, Cycle slot_cycles)
    : Arbiter(n_masters), slot_(slot_cycles) {
  CBUS_EXPECTS(slot_cycles >= 1);
}

MasterId TdmaArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  // The transfer would start at input.grant_cycle; it must be the first
  // cycle of a slot owned by a requesting master.
  if (!is_slot_start(input.grant_cycle)) return kNoMaster;
  const MasterId owner = slot_owner(input.grant_cycle);
  if ((input.candidates >> owner) & 1u) return owner;
  return kNoMaster;
}

void TdmaArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
}

HwCost TdmaArbiter::hw_cost() const {
  // State: slot counter (log2 slot) + owner pointer.
  unsigned slot_bits = 0;
  for (Cycle v = slot_ - 1; v != 0; v >>= 1) ++slot_bits;
  unsigned owner_bits = 0;
  for (unsigned v = n_masters() - 1; v != 0; v >>= 1) ++owner_bits;
  return HwCost{slot_bits + owner_bits, n_masters() + slot_bits,
                "slot counter + owner decode"};
}

}  // namespace cbus::bus
