// Split-transaction bus variant.
//
// The paper notes (§III-C) that "buses with split transactions have more
// homogeneous request sizes" -- the bus is released during the slave's
// service time -- but the worst-case short-vs-long mix survives because
// "atomic operations by definition cannot be split". This model lets the
// repository quantify that argument.
//
// Protocol:
//  * Address phase: 1 cycle, arbitrated like the non-split bus (the CBA
//    eligibility filter applies here too).
//  * The slave services the request OFF the bus for `latency` cycles
//    (other address/data phases may proceed meanwhile; one outstanding
//    transaction per master).
//  * Data phase: `data_beats` bus cycles returning the line, granted in
//    ready order (responses have priority over new address phases).
//  * Atomics hold the bus for their full duration, non-split.
//
// Credits: a master is charged `scale` units for every cycle one of ITS
// phases occupies the bus (address, data, or atomic hold) -- occupancy-
// cycle fairness, exactly as on the non-split bus.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/bus.hpp"
#include "bus/interfaces.hpp"
#include "bus/request.hpp"
#include "common/contracts.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace cbus::bus {

/// How a slave services one split transaction.
struct SplitResponse {
  /// Off-bus service time between the end of the address phase and the
  /// data being ready (0 == ready the next cycle).
  Cycle latency = 0;
  /// Bus cycles of the data phase (>= 1 unless atomic_hold).
  Cycle data_beats = 4;
  /// Atomic: the bus stays held for `latency` cycles; no split, no data
  /// phase (the read+write pair completes within the hold).
  bool atomic_hold = false;
};

/// Slave-side interface for the split bus.
class SplitSlave {
 public:
  virtual ~SplitSlave() = default;
  virtual SplitResponse begin_split_transaction(const BusRequest& request,
                                                Cycle now) = 0;
};

class SplitBus final : public sim::Component, public BusPort {
 public:
  SplitBus(const BusConfig& config, Arbiter& arbiter, SplitSlave& slave);

  void set_filter(EligibilityFilter* filter) noexcept { filter_ = filter; }
  void connect_master(MasterId master, BusMaster& callbacks) override;

  /// Raise a request. One outstanding transaction per master.
  void request(const BusRequest& request, Cycle now) override;

  [[nodiscard]] bool has_pending(MasterId master) const override;
  [[nodiscard]] bool is_outstanding(MasterId master) const;
  [[nodiscard]] bool can_request(MasterId master) const override {
    return !has_pending(master) && !is_outstanding(master);
  }
  [[nodiscard]] MasterId holder() const noexcept {
    return phase_ ? phase_->master : kNoMaster;
  }

  void tick(Cycle now) override;

  [[nodiscard]] const BusStatistics& statistics() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint32_t n_masters() const noexcept {
    return config_.n_masters;
  }

 private:
  enum class PhaseKind : std::uint8_t { kAddress, kData, kAtomic };

  struct Phase {
    PhaseKind kind = PhaseKind::kAddress;
    MasterId master = kNoMaster;
    Cycle remaining = 0;
    Cycle occupancy = 0;  ///< total length of this phase (for accounting)
    BusRequest request;
  };

  struct Outstanding {
    BusRequest request;
    Cycle ready_at = 0;
    Cycle data_beats = 1;
  };

  [[nodiscard]] std::uint32_t pending_mask() const noexcept;
  void start_next_phase(Cycle now);
  void finish_phase(Cycle now);

  BusConfig config_;
  Arbiter& arbiter_;
  SplitSlave& slave_;
  EligibilityFilter* filter_ = nullptr;

  std::vector<BusMaster*> masters_;
  std::vector<std::optional<BusRequest>> pending_;
  std::vector<Cycle> arrival_;
  std::vector<bool> outstanding_;

  std::optional<Phase> phase_;          ///< phase occupying the bus
  std::optional<Phase> latched_phase_;  ///< starts next cycle
  std::vector<Outstanding> in_service_; ///< waiting for the slave
  std::deque<Outstanding> ready_;       ///< data phases awaiting the bus

  BusStatistics stats_;
};

}  // namespace cbus::bus
