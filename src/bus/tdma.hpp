// TDMA arbitration: time is statically divided into slots of MaxL cycles,
// one owner per slot in rotation. A request may only start in the first
// cycle of its owner's slot (paper §II: issuing a request of unknown
// duration later in the slot could delay the next owner), so short requests
// leave the remainder of the slot idle -- TDMA is not work-conserving,
// which the bandwidth experiments make visible.
#pragma once

#include "bus/arbiter.hpp"

namespace cbus::bus {

class TdmaArbiter final : public Arbiter {
 public:
  /// `slot_cycles` should be MaxL (the worst-case transaction length).
  TdmaArbiter(std::uint32_t n_masters, Cycle slot_cycles);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "tdma";
  }
  [[nodiscard]] HwCost hw_cost() const override;

  [[nodiscard]] Cycle slot_cycles() const noexcept { return slot_; }

  /// Owner of the slot containing cycle `at`.
  [[nodiscard]] MasterId slot_owner(Cycle at) const noexcept {
    return static_cast<MasterId>((at / slot_) % n_masters());
  }

  /// True iff `at` is the first cycle of a slot.
  [[nodiscard]] bool is_slot_start(Cycle at) const noexcept {
    return at % slot_ == 0;
  }

 private:
  Cycle slot_;
};

}  // namespace cbus::bus
