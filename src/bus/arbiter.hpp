// The arbitration-policy interface and the hardware-cost introspection used
// by the implementation-overhead experiment (paper §IV-B reports <0.1% FPGA
// area growth for CBA; we report state bits and LUT-equivalents instead).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace cbus::bus {

/// Everything an arbiter may look at when picking a winner.
struct ArbInput {
  /// Bit i set == master i has a pending *eligible* request.
  std::uint32_t candidates = 0;
  /// Cycle each master's pending request was raised (valid where bit set).
  std::span<const Cycle> arrival;
  /// The cycle at which the granted transfer would start (now + 1).
  Cycle grant_cycle = 0;
};

/// Rough hardware-cost model of an arbiter implementation: enough to rank
/// policies and to show that CBA's additions are negligible, which is the
/// paper's implementation-overhead claim.
struct HwCost {
  unsigned state_bits = 0;     ///< flip-flops
  unsigned lut_equivalents = 0;///< 4-input LUT estimate for the comb. logic
  std::string notes;
};

class Arbiter {
 public:
  explicit Arbiter(std::uint32_t n_masters) : n_masters_(n_masters) {
    CBUS_EXPECTS(n_masters >= 1 && n_masters <= kMaxMasters);
  }

  Arbiter(const Arbiter&) = delete;
  Arbiter& operator=(const Arbiter&) = delete;
  virtual ~Arbiter() = default;

  /// Pick a winner among `input.candidates`, or return kNoMaster to leave
  /// the bus idle this round (TDMA does this outside the owner's slot).
  /// Must not be called with an empty candidate set.
  [[nodiscard]] virtual MasterId pick(const ArbInput& input) = 0;

  /// Winner notification (update rotation pointers, permutation windows...).
  virtual void on_grant(MasterId master, Cycle now) = 0;

  /// Transfer-completion notification with the actual occupancy: post-paid
  /// policies (deficit round-robin) charge their accounting here. Default
  /// no-op.
  virtual void on_complete(MasterId /*master*/, Cycle /*hold*/) {}

  virtual void reset() = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual HwCost hw_cost() const = 0;

  [[nodiscard]] std::uint32_t n_masters() const noexcept { return n_masters_; }

 protected:
  /// Lowest set-bit helper shared by the deterministic policies.
  [[nodiscard]] static MasterId lowest_set(std::uint32_t mask) noexcept {
    CBUS_ASSERT(mask != 0);
    return static_cast<MasterId>(__builtin_ctz(mask));
  }

 private:
  std::uint32_t n_masters_;
};

}  // namespace cbus::bus
