// A bus transaction request on the non-split AMBA-style bus.
//
// Non-split means a granted request holds the bus until fully served
// (paper §II/§III-C); the hold time is decided when the transaction starts,
// either by the addressed slave (cache hit/miss outcome) or -- for synthetic
// WCET-mode contenders and trace replay -- by a forced hold carried in the
// request itself.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cbus::bus {

struct BusRequest {
  MasterId master = kNoMaster;
  Addr addr = 0;
  MemOpKind kind = MemOpKind::kLoad;
  /// Cycle the request was raised (for wait-time accounting and FIFO order).
  Cycle issued_at = 0;
  /// Master-local tag so the master can match completions to its own state.
  std::uint64_t tag = 0;
  /// If non-zero, the bus uses this hold time and never consults the slave.
  /// Used by WCET-estimation-mode virtual contenders (always 56 cycles) and
  /// by trace replay.
  Cycle forced_hold = 0;
};

}  // namespace cbus::bus
