#include "bus/split_bus.hpp"

#include <algorithm>

namespace cbus::bus {

SplitBus::SplitBus(const BusConfig& config, Arbiter& arbiter,
                   SplitSlave& slave)
    : sim::Component("split-bus"),
      config_(config),
      arbiter_(arbiter),
      slave_(slave),
      masters_(config.n_masters, nullptr),
      pending_(config.n_masters),
      arrival_(config.n_masters, 0),
      outstanding_(config.n_masters, false) {
  CBUS_EXPECTS(config.n_masters >= 1 && config.n_masters <= kMaxMasters);
  CBUS_EXPECTS(arbiter.n_masters() == config.n_masters);
  stats_.master.resize(config.n_masters);
}

void SplitBus::connect_master(MasterId master, BusMaster& callbacks) {
  CBUS_EXPECTS(master < config_.n_masters);
  masters_[master] = &callbacks;
}

void SplitBus::request(const BusRequest& request, Cycle now) {
  CBUS_EXPECTS(request.master < config_.n_masters);
  CBUS_EXPECTS_MSG(can_request(request.master),
                   "master already has a transaction in flight");
  BusRequest stamped = request;
  stamped.issued_at = now;
  pending_[request.master] = stamped;
  arrival_[request.master] = now;
  ++stats_.master[request.master].requests;
}

bool SplitBus::has_pending(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  return pending_[master].has_value();
}

bool SplitBus::is_outstanding(MasterId master) const {
  CBUS_EXPECTS(master < config_.n_masters);
  if (outstanding_[master]) return true;
  if (phase_ && phase_->master == master) return true;
  if (latched_phase_ && latched_phase_->master == master) return true;
  return false;
}

std::uint32_t SplitBus::pending_mask() const noexcept {
  std::uint32_t mask = 0;
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    if (pending_[m].has_value()) mask |= 1u << m;
  }
  return mask;
}

void SplitBus::start_next_phase(Cycle now) {
  CBUS_ASSERT(!latched_phase_.has_value());

  // Responses first: a ready data phase has priority over new addresses
  // (keeps the slave pipeline draining).
  if (!ready_.empty() && ready_.front().ready_at <= now) {
    const Outstanding out = ready_.front();
    ready_.pop_front();
    Phase phase;
    phase.kind = PhaseKind::kData;
    phase.master = out.request.master;
    phase.remaining = out.data_beats;
    phase.occupancy = out.data_beats;
    phase.request = out.request;
    latched_phase_ = phase;
    stats_.master[phase.master].hold_cycles += out.data_beats;
    return;
  }

  std::uint32_t candidates = pending_mask();
  if (candidates == 0) return;
  if (filter_ != nullptr) candidates = filter_->eligible(candidates, now);
  if (candidates == 0) return;

  const ArbInput input{candidates, std::span<const Cycle>(arrival_),
                       now + 1};
  const MasterId winner = arbiter_.pick(input);
  if (winner == kNoMaster) return;
  CBUS_ASSERT((candidates >> winner) & 1u);
  arbiter_.on_grant(winner, now);
  if (filter_ != nullptr) filter_->on_grant(winner, now);

  const BusRequest req = *pending_[winner];
  pending_[winner].reset();
  auto& pm = stats_.master[winner];
  ++pm.grants;
  const Cycle wait = (now + 1) - req.issued_at;
  pm.wait_cycles += wait;
  pm.max_wait = std::max(pm.max_wait, wait);

  const SplitResponse response = slave_.begin_split_transaction(req, now);
  Phase phase;
  phase.master = winner;
  phase.request = req;
  if (response.atomic_hold) {
    CBUS_EXPECTS(response.latency >= 1);
    phase.kind = PhaseKind::kAtomic;
    phase.remaining = response.latency;
    phase.occupancy = response.latency;
    pm.hold_cycles += response.latency;
  } else {
    phase.kind = PhaseKind::kAddress;
    phase.remaining = 1;  // single-cycle address phase
    phase.occupancy = 1;
    pm.hold_cycles += 1;
    Outstanding out;
    out.request = req;
    // Data ready `latency` cycles after the address phase completes.
    out.ready_at = now + 1 + response.latency;
    out.data_beats = std::max<Cycle>(1, response.data_beats);
    in_service_.push_back(out);
    outstanding_[winner] = true;
  }
  latched_phase_ = phase;
}

void SplitBus::finish_phase(Cycle now) {
  CBUS_ASSERT(phase_.has_value());
  const Phase done = *phase_;
  phase_.reset();
  // Post-paid arbiter accounting covers every occupancy phase. The phase
  // length was stashed in the stats at start; recompute from kind.
  switch (done.kind) {
    case PhaseKind::kAddress:
      // Nothing to do: the transaction now sits with the slave.
      break;
    case PhaseKind::kData:
    case PhaseKind::kAtomic: {
      ++stats_.master[done.master].completions;
      outstanding_[done.master] = false;
      if (masters_[done.master] != nullptr) {
        masters_[done.master]->on_complete(done.request, now);
      }
      break;
    }
  }
  arbiter_.on_complete(done.master, done.occupancy);
}

void SplitBus::tick(Cycle now) {
  // Move transactions whose service completed into the ready queue, in
  // ready-time order (FIFO among equals).
  for (auto it = in_service_.begin(); it != in_service_.end();) {
    if (it->ready_at <= now) {
      ready_.push_back(*it);
      it = in_service_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(ready_.begin(), ready_.end(),
            [](const Outstanding& a, const Outstanding& b) {
              return a.ready_at < b.ready_at;
            });

  // A phase latched last cycle takes the bus this cycle.
  if (!phase_.has_value() && latched_phase_.has_value()) {
    phase_ = *latched_phase_;
    latched_phase_.reset();
    if (phase_->kind != PhaseKind::kData &&
        masters_[phase_->master] != nullptr) {
      masters_[phase_->master]->on_grant(phase_->request, now,
                                         phase_->remaining);
    }
  }

  if (filter_ != nullptr) filter_->on_cycle(holder(), now);

  ++stats_.total_cycles;
  if (phase_.has_value()) {
    ++stats_.busy_cycles;
    CBUS_ASSERT(phase_->remaining >= 1);
    --phase_->remaining;
    if (phase_->remaining == 0) {
      finish_phase(now);
      start_next_phase(now);  // overlapped re-arbitration
    }
  } else {
    ++stats_.idle_cycles;
    if (!latched_phase_.has_value()) start_next_phase(now);
  }
}

}  // namespace cbus::bus
