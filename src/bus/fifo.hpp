// FIFO arbitration: oldest pending request wins (ties broken round-robin so
// simultaneous arrivals cannot starve a fixed index).
#pragma once

#include "bus/arbiter.hpp"

namespace cbus::bus {

class FifoArbiter final : public Arbiter {
 public:
  explicit FifoArbiter(std::uint32_t n_masters);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void reset() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fifo";
  }
  [[nodiscard]] HwCost hw_cost() const override;

 private:
  MasterId last_granted_;
};

}  // namespace cbus::bus
