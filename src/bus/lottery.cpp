#include "bus/lottery.hpp"

#include "rng/permutation.hpp"

namespace cbus::bus {

LotteryArbiter::LotteryArbiter(std::uint32_t n_masters,
                               rng::RandChannel channel)
    : Arbiter(n_masters),
      channel_(std::move(channel)),
      tickets_(n_masters, 1u) {}

LotteryArbiter::LotteryArbiter(std::uint32_t n_masters,
                               rng::RandChannel channel,
                               std::vector<std::uint32_t> tickets)
    : Arbiter(n_masters),
      channel_(std::move(channel)),
      tickets_(std::move(tickets)) {
  CBUS_EXPECTS(tickets_.size() == n_masters);
  for (const auto t : tickets_) CBUS_EXPECTS(t >= 1);
}

MasterId LotteryArbiter::pick(const ArbInput& input) {
  CBUS_EXPECTS(input.candidates != 0);
  std::uint32_t total = 0;
  for (MasterId m = 0; m < n_masters(); ++m) {
    if ((input.candidates >> m) & 1u) total += tickets_[m];
  }
  std::uint32_t draw = rng::uniform_below(channel_, total);
  for (MasterId m = 0; m < n_masters(); ++m) {
    if (((input.candidates >> m) & 1u) == 0) continue;
    if (draw < tickets_[m]) return m;
    draw -= tickets_[m];
  }
  CBUS_ASSERT(false);
  return kNoMaster;
}

void LotteryArbiter::on_grant(MasterId master, Cycle /*now*/) {
  CBUS_EXPECTS(master < n_masters());
}

HwCost LotteryArbiter::hw_cost() const {
  const unsigned n = n_masters();
  // State: ticket registers (8 bits each) + PRNG handled by the shared bank.
  return HwCost{8 * n, 6 * n, "ticket adders + random draw comparator"};
}

}  // namespace cbus::bus
