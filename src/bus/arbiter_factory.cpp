#include "bus/arbiter_factory.hpp"

#include "bus/deficit_age.hpp"
#include "bus/deficit_round_robin.hpp"
#include "bus/fifo.hpp"
#include "bus/lottery.hpp"
#include "bus/priority.hpp"
#include "bus/random_permutation.hpp"
#include "bus/round_robin.hpp"
#include "bus/tdma.hpp"
#include "common/contracts.hpp"

namespace cbus::bus {

std::string_view to_string(ArbiterKind kind) noexcept {
  switch (kind) {
    case ArbiterKind::kRoundRobin: return "round-robin";
    case ArbiterKind::kFifo: return "fifo";
    case ArbiterKind::kFixedPriority: return "fixed-priority";
    case ArbiterKind::kLottery: return "lottery";
    case ArbiterKind::kRandomPermutation: return "random-permutations";
    case ArbiterKind::kTdma: return "tdma";
    case ArbiterKind::kDeficitRoundRobin: return "deficit-round-robin";
    case ArbiterKind::kDeficitAge: return "deficit-age";
  }
  return "?";
}

std::string_view short_name(ArbiterKind kind) noexcept {
  switch (kind) {
    case ArbiterKind::kRoundRobin: return "rr";
    case ArbiterKind::kFifo: return "fifo";
    case ArbiterKind::kFixedPriority: return "priority";
    case ArbiterKind::kLottery: return "lottery";
    case ArbiterKind::kRandomPermutation: return "rp";
    case ArbiterKind::kTdma: return "tdma";
    case ArbiterKind::kDeficitRoundRobin: return "drr";
    case ArbiterKind::kDeficitAge: return "da";
  }
  return "?";
}

std::span<const ArbiterKind> all_arbiter_kinds() noexcept {
  static constexpr ArbiterKind kAll[] = {
      ArbiterKind::kRoundRobin,       ArbiterKind::kFifo,
      ArbiterKind::kFixedPriority,    ArbiterKind::kLottery,
      ArbiterKind::kRandomPermutation, ArbiterKind::kTdma,
      ArbiterKind::kDeficitRoundRobin, ArbiterKind::kDeficitAge,
  };
  return kAll;
}

std::string known_arbiter_list() {
  std::string list;
  for (const ArbiterKind kind : all_arbiter_kinds()) {
    if (!list.empty()) list += ' ';
    list += short_name(kind);
  }
  return list;
}

ArbiterKind parse_arbiter_kind(std::string_view text) {
  if (text == "rr" || text == "round-robin") return ArbiterKind::kRoundRobin;
  if (text == "fifo") return ArbiterKind::kFifo;
  if (text == "priority" || text == "fixed-priority") {
    return ArbiterKind::kFixedPriority;
  }
  if (text == "lottery") return ArbiterKind::kLottery;
  if (text == "rp" || text == "random-permutations") {
    return ArbiterKind::kRandomPermutation;
  }
  if (text == "tdma") return ArbiterKind::kTdma;
  if (text == "drr" || text == "deficit-round-robin") {
    return ArbiterKind::kDeficitRoundRobin;
  }
  if (text == "da" || text == "deficit-age") return ArbiterKind::kDeficitAge;
  // Name the whole registry, not just the bad value, so a typo is
  // self-correcting without a `--list arbiters` round trip.
  CBUS_EXPECTS_MSG(false, "unknown arbiter kind: " + std::string(text) +
                              " (known: " + known_arbiter_list() + ")");
  return ArbiterKind::kRoundRobin;  // unreachable
}

std::unique_ptr<Arbiter> make_arbiter(ArbiterKind kind,
                                      std::uint32_t n_masters,
                                      rng::RandBank& bank, Cycle tdma_slot) {
  switch (kind) {
    case ArbiterKind::kRoundRobin:
      return std::make_unique<RoundRobinArbiter>(n_masters);
    case ArbiterKind::kFifo:
      return std::make_unique<FifoArbiter>(n_masters);
    case ArbiterKind::kFixedPriority:
      return std::make_unique<FixedPriorityArbiter>(n_masters);
    case ArbiterKind::kLottery:
      return std::make_unique<LotteryArbiter>(n_masters,
                                              bank.open("arbiter.lottery"));
    case ArbiterKind::kRandomPermutation:
      return std::make_unique<RandomPermutationArbiter>(
          n_masters, bank.open("arbiter.random-permutations"));
    case ArbiterKind::kTdma:
      return std::make_unique<TdmaArbiter>(n_masters, tdma_slot);
    case ArbiterKind::kDeficitRoundRobin:
      return std::make_unique<DeficitRoundRobinArbiter>(n_masters,
                                                        tdma_slot);
    case ArbiterKind::kDeficitAge:
      return std::make_unique<DeficitAgeArbiter>(n_masters, tdma_slot);
  }
  CBUS_ASSERT(false);
  return nullptr;
}

}  // namespace cbus::bus
