#include "bus/bus.hpp"

#include <algorithm>

namespace cbus::bus {

NonSplitBus::NonSplitBus(const BusConfig& config, Arbiter& arbiter,
                         BusSlave& slave)
    : sim::Component("bus"),
      config_(config),
      arbiter_(arbiter),
      slave_(slave),
      masters_(config.n_masters, nullptr),
      pending_(config.n_masters),
      arrival_(config.n_masters, 0) {
  CBUS_EXPECTS(config.n_masters >= 1 && config.n_masters <= kMaxMasters);
  CBUS_EXPECTS(arbiter.n_masters() == config.n_masters);
  stats_.master.resize(config.n_masters);
}

void NonSplitBus::connect_master(MasterId master, BusMaster& callbacks) {
  CBUS_EXPECTS(master < config_.n_masters);
  masters_[master] = &callbacks;
}

void NonSplitBus::request(const BusRequest& request, Cycle now) {
  CBUS_EXPECTS(request.master < config_.n_masters);
  CBUS_EXPECTS_MSG(!pending_[request.master].has_value(),
                   "master already has a pending request (non-split bus)");
  CBUS_EXPECTS_MSG(!is_holding(request.master),
                   "master is holding the bus and cannot raise a request");
  BusRequest stamped = request;
  stamped.issued_at = now;
  pending_[request.master] = stamped;
  pending_bits_ |= 1u << request.master;
  arrival_[request.master] = now;
  ++stats_.master[request.master].requests;
  if (observer_ != nullptr) observer_->on_request(stamped, now);
}

void NonSplitBus::arbitrate(Cycle now, Cycle start) {
  std::uint32_t candidates = pending_bits_;
  if (candidates == 0) return;
  if (filter_ != nullptr) candidates = filter_->eligible(candidates, now);
  if (candidates == 0) return;

  const ArbInput input{candidates, std::span<const Cycle>(arrival_), start};
  const MasterId winner = arbiter_.pick(input);
  if (winner == kNoMaster) return;  // e.g. TDMA outside the owner's slot
  CBUS_ASSERT((candidates >> winner) & 1u);

  arbiter_.on_grant(winner, now);
  if (filter_ != nullptr) filter_->on_grant(winner, now);

  latched_grant_ = *pending_[winner];
  pending_[winner].reset();
  pending_bits_ &= ~(1u << winner);
  if (masters_[winner] != nullptr) {
    masters_[winner]->on_latch(*latched_grant_, now);
  }

  auto& pm = stats_.master[winner];
  ++pm.grants;
  const Cycle wait = start - latched_grant_->issued_at;
  pm.wait_cycles += wait;
  pm.max_wait = std::max(pm.max_wait, wait);
}

void NonSplitBus::begin_latched(Cycle now) {
  CBUS_ASSERT(latched_grant_.has_value());
  CBUS_ASSERT(!transfer_.has_value());
  const BusRequest req = *latched_grant_;
  latched_grant_.reset();

  const Cycle hold = req.forced_hold > 0
                         ? req.forced_hold
                         : slave_.begin_transaction(req, now);
  CBUS_ASSERT(hold >= 1);
  transfer_ = Transfer{req, hold, hold};
  stats_.master[req.master].hold_cycles += hold;
  if (observer_ != nullptr) observer_->on_transfer_start(req, now, hold);
  if (masters_[req.master] != nullptr) {
    masters_[req.master]->on_grant(req, now, hold);
  }
}

void NonSplitBus::tick(Cycle now) {
  // 1. A grant latched last cycle starts its transfer in this cycle.
  tick_begin(now);

  // 2. Credit bookkeeping sees the holder of *this* cycle. (The batch
  // credit engine replaces this call with one vertical SoA update
  // across lanes, between the same two phases.)
  if (filter_ != nullptr) filter_->on_cycle(holder(), now);

  // 3. Advance the transfer in flight / arbitrate.
  tick_finish(now);
}

void NonSplitBus::complete_transfer(Cycle now) {
  const BusRequest done = transfer_->request;
  const Cycle done_hold = transfer_->hold;
  transfer_.reset();
  arbiter_.on_complete(done.master, done_hold);
  if (done.forced_hold == 0) slave_.complete_transaction(done, now);
  ++stats_.master[done.master].completions;
  if (observer_ != nullptr) observer_->on_transfer_complete(done, now);
  if (masters_[done.master] != nullptr) {
    masters_[done.master]->on_complete(done, now);
  }
  // Overlapped re-arbitration: next transfer starts at now + 1 with no
  // idle gap.
  if (config_.overlapped_arbitration && pending_bits_ != 0) {
    arbitrate(now, now + 1);
  }
}

void NonSplitBus::reset_statistics() {
  stats_ = BusStatistics{};
  stats_.master.resize(config_.n_masters);
}

}  // namespace cbus::bus
