#include "bus/topology.hpp"

#include <array>
#include <cstdlib>
#include <stdexcept>

#include "common/contracts.hpp"

namespace cbus::bus {

namespace {

[[noreturn]] void bad_topology(const std::string& what) {
  throw std::invalid_argument("topology: " + what);
}

}  // namespace

Topology::Topology(TopologyKind kind, std::uint32_t n, std::uint32_t rows,
                   std::uint32_t cols)
    : kind_(kind), n_(n), rows_(rows), cols_(cols) {
  // Undirected adjacencies in canonical order; each contributes its
  // canonical direction then the reverse. For the chain this reproduces
  // the historical (s -> s+1), (s+1 -> s) bridge order exactly.
  const auto link = [this](std::uint32_t a, std::uint32_t b) {
    edges_.push_back({a, b});
    edges_.push_back({b, a});
  };
  switch (kind_) {
    case TopologyKind::kChain:
      for (std::uint32_t s = 0; s + 1 < n_; ++s) link(s, s + 1);
      break;
    case TopologyKind::kRing:
      for (std::uint32_t s = 0; s + 1 < n_; ++s) link(s, s + 1);
      link(n_ - 1, 0);  // the wrap link, forward direction first
      break;
    case TopologyKind::kMesh:
      for (std::uint32_t r = 0; r < rows_; ++r) {
        for (std::uint32_t c = 0; c < cols_; ++c) {
          const std::uint32_t s = r * cols_ + c;
          if (c + 1 < cols_) link(s, s + 1);
          if (r + 1 < rows_) link(s, s + cols_);
        }
      }
      break;
  }
  in_degree_.assign(n_, 0);
  for (const TopologyEdge& e : edges_) ++in_degree_[e.to];
}

Topology Topology::chain(std::uint32_t n) {
  if (n < 1) bad_topology("chain needs >= 1 segment");
  return Topology(TopologyKind::kChain, n, 0, 0);
}

Topology Topology::ring(std::uint32_t n) {
  if (n < 3) bad_topology("ring:<n> needs n >= 3 (ring:2 would duplicate "
                          "the chain link; use chain:2)");
  return Topology(TopologyKind::kRing, n, 0, 0);
}

Topology Topology::mesh(std::uint32_t rows, std::uint32_t cols) {
  if (rows < 1 || cols < 1 || rows * cols < 2) {
    bad_topology("mesh:<rows>x<cols> needs rows, cols >= 1 and at least "
                 "2 segments");
  }
  return Topology(TopologyKind::kMesh, rows * cols, rows, cols);
}

std::uint32_t Topology::in_degree(std::uint32_t segment) const {
  CBUS_EXPECTS(segment < n_);
  return in_degree_[segment];
}

std::uint32_t Topology::next_hop(std::uint32_t from, std::uint32_t to) const {
  CBUS_EXPECTS(from < n_ && to < n_ && from != to);
  switch (kind_) {
    case TopologyKind::kChain:
      return to > from ? from + 1 : from - 1;
    case TopologyKind::kRing: {
      const std::uint32_t fwd = (to + n_ - from) % n_;
      // Shortest direction; antipodal ties break forward.
      return fwd <= n_ - fwd ? (from + 1) % n_ : (from + n_ - 1) % n_;
    }
    case TopologyKind::kMesh: {
      const std::uint32_t fc = from % cols_;
      const std::uint32_t tc = to % cols_;
      if (fc != tc) return tc > fc ? from + 1 : from - 1;  // X first
      return to > from ? from + cols_ : from - cols_;      // then Y
    }
  }
  CBUS_ASSERT(false);
  return from;
}

std::uint32_t Topology::distance(std::uint32_t from, std::uint32_t to) const {
  CBUS_EXPECTS(from < n_ && to < n_);
  switch (kind_) {
    case TopologyKind::kChain:
      return to > from ? to - from : from - to;
    case TopologyKind::kRing: {
      const std::uint32_t fwd = (to + n_ - from) % n_;
      return fwd <= n_ - fwd ? fwd : n_ - fwd;
    }
    case TopologyKind::kMesh: {
      const std::uint32_t fc = from % cols_;
      const std::uint32_t tc = to % cols_;
      const std::uint32_t fr = from / cols_;
      const std::uint32_t tr = to / cols_;
      return (tc > fc ? tc - fc : fc - tc) + (tr > fr ? tr - fr : fr - tr);
    }
  }
  CBUS_ASSERT(false);
  return 0;
}

std::uint32_t Topology::diameter() const noexcept {
  switch (kind_) {
    case TopologyKind::kChain: return n_ - 1;
    case TopologyKind::kRing: return n_ / 2;
    case TopologyKind::kMesh: return (rows_ - 1) + (cols_ - 1);
  }
  return 0;
}

std::string Topology::label() const {
  switch (kind_) {
    case TopologyKind::kChain: return "chain:" + std::to_string(n_);
    case TopologyKind::kRing: return "ring:" + std::to_string(n_);
    case TopologyKind::kMesh:
      return "mesh:" + std::to_string(rows_) + "x" + std::to_string(cols_);
  }
  return "?";
}

std::span<const TopologyForm> topology_forms() {
  static const std::array<TopologyForm, 5> kForms{{
      {"single", "the paper's one shared bus (default)"},
      {"segmented:<n>", "legacy spelling of chain:<n> (n >= 2)"},
      {"chain:<n>", "linear chain of n bus segments, linear routing"},
      {"ring:<n>",
       "chain closed by a wrap link (n >= 3), shortest-direction routing"},
      {"mesh:<rows>x<cols>",
       "2D grid of segments, dimension-ordered XY routing"},
  }};
  return kForms;
}

std::string known_topology_list() {
  std::string out;
  for (const TopologyForm& form : topology_forms()) {
    if (!out.empty()) out += " ";
    out += form.name;
  }
  return out;
}

}  // namespace cbus::bus
