// Deficit-weighted age arbitration: a cycle-fair inner policy whose grant
// order follows both accumulated service debt AND request age.
//
// Motivation (ROADMAP "more inner policies"): the paper's inner policies
// are either request-fair (RR, FIFO, lottery, RP) or cycle-fair by
// rotation (DRR). Neither expresses "the master that has waited longest
// *and* has been served least goes first", which is the natural policy
// for multi-timescale burst profiles (Nadas et al., 1903.08075) and for
// weighted fairness across several contention points (Vandalore et al.).
// DeficitAgeArbiter scores every candidate as
//
//     score(m) = deficit(m) + age_weight * (grant_cycle - arrival(m))
//
// and grants the maximum (ties to the lowest master id, so the policy is
// fully deterministic and lane-safe for batched lockstep replicas).
//
// Deficit accounting is RELATIVE and post-paid (the modelled bus only
// learns a transaction's length at completion):
//  * a completed transfer charges its actual hold to the winner, pushing
//    it behind the other contenders by exactly the cycles it consumed;
//  * at every arbitration round the candidate set is rebased so the
//    least-owed candidate sits at zero -- deficit(m) is therefore "cycles
//    of service owed to m relative to the best-served contender", and the
//    counters stay bounded instead of racing a refill stream;
//  * the spread saturates at `bank_cap` (4 quanta -- the Table-I
//    budget-saturation rule transplanted to the inner policy, so one
//    master cannot hoard unbounded priority);
//  * a master with no *eligible* pending request forfeits its deficit
//    (DRR's idle rule). Under a CBA credit filter this means
//    ineligibility also forfeits -- the inner policy never works against
//    the filter's throttle, which is what "Table-I-compatible" means
//    here: CBA gates eligibility first, deficit_age orders the survivors.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/arbiter.hpp"

namespace cbus::bus {

class DeficitAgeArbiter final : public Arbiter {
 public:
  /// `quantum` sizes the deficit-spread cap at 4 quanta (MaxL is the
  /// natural choice); `age_weight` scores one waited cycle as
  /// `age_weight` owed service cycles.
  DeficitAgeArbiter(std::uint32_t n_masters, Cycle quantum,
                    std::uint64_t age_weight = 1);

  [[nodiscard]] MasterId pick(const ArbInput& input) override;
  void on_grant(MasterId master, Cycle now) override;
  void on_complete(MasterId master, Cycle hold) override;
  void reset() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "deficit-age";
  }
  [[nodiscard]] HwCost hw_cost() const override;

  /// Service owed to `master` relative to the best-served contender of
  /// the last arbitration round (>= 0 after a pick; negative only
  /// transiently between a completion charge and the next rebase).
  [[nodiscard]] std::int64_t deficit(MasterId master) const;
  [[nodiscard]] Cycle quantum() const noexcept { return quantum_; }
  [[nodiscard]] std::int64_t bank_cap() const noexcept { return bank_cap_; }

 private:
  Cycle quantum_;
  std::uint64_t age_weight_;
  std::int64_t bank_cap_;  ///< 4 quanta: bounded spread (saturation rule)
  std::vector<std::int64_t> deficit_;
};

}  // namespace cbus::bus
