// The slave side of the bus: a per-core-partitioned, write-back L2 backed
// by a memory controller (paper §IV-A). Partitioning means each master
// owns an independent L2 slice, so cores interfere only through *bus
// bandwidth* -- never through L2 capacity -- which isolates exactly the
// effect the paper studies.
//
// Serves both bus protocols: the paper's non-split bus (one hold time per
// transaction) and the split-transaction variant (address phase, off-bus
// service, data phase; atomics still hold the bus, §III-C). Memory
// latency is the paper's flat 28 cycles, or the optional open-page DRAM
// bank model.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "bus/interfaces.hpp"
#include "bus/split_bus.hpp"
#include "cache/set_assoc_cache.hpp"
#include "common/types.hpp"
#include "mem/dram.hpp"
#include "mem/memory_timings.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::mem {

struct L2Stats {
  std::uint64_t transactions = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses_clean = 0;
  std::uint64_t misses_dirty = 0;
  std::uint64_t atomics = 0;
  std::uint64_t memory_accesses = 0;  ///< DRAM operations issued
};

class PartitionedL2 final : public bus::BusSlave, public bus::SplitSlave {
 public:
  /// One `partition_config`-shaped slice per master. Passing a DramConfig
  /// replaces the flat memory latency with the open-page bank model.
  PartitionedL2(std::uint32_t n_masters,
                const cache::CacheConfig& partition_config,
                const MemoryTimings& timings, rng::RandBank& bank,
                std::optional<DramConfig> dram = std::nullopt);

  // Non-split protocol (paper baseline).
  Cycle begin_transaction(const bus::BusRequest& request, Cycle now) override;
  void complete_transaction(const bus::BusRequest& request,
                            Cycle now) override;

  // Split protocol (§III-C variant).
  bus::SplitResponse begin_split_transaction(const bus::BusRequest& request,
                                             Cycle now) override;

  /// Classify the outcome a request *would* have (no state change).
  [[nodiscard]] AccessOutcome classify(const bus::BusRequest& request) const;

  /// Invalidate a partition and re-randomize its placement (new run).
  void reset_partition(MasterId master, std::uint64_t placement_seed);

  [[nodiscard]] const L2Stats& stats(MasterId master) const;
  [[nodiscard]] const cache::SetAssocCache& partition(MasterId master) const;
  [[nodiscard]] cache::SetAssocCache& partition(MasterId master);
  [[nodiscard]] const MemoryTimings& timings() const noexcept {
    return timings_;
  }
  /// The DRAM bank model, if enabled.
  [[nodiscard]] const DramModel* dram() const noexcept { return dram_.get(); }

 private:
  /// One memory access for `addr`: flat latency or bank-model latency.
  [[nodiscard]] Cycle memory_latency(Addr addr, MasterId master);

  /// Full service time of the request (cache update included); shared by
  /// both protocols.
  [[nodiscard]] Cycle service(const bus::BusRequest& request);

  MemoryTimings timings_;
  std::vector<std::unique_ptr<cache::SetAssocCache>> partitions_;
  std::vector<L2Stats> stats_;
  std::unique_ptr<DramModel> dram_;
};

}  // namespace cbus::mem
