#include "mem/partitioned_l2.hpp"

#include <algorithm>
#include <string>

#include "common/contracts.hpp"

namespace cbus::mem {

PartitionedL2::PartitionedL2(std::uint32_t n_masters,
                             const cache::CacheConfig& partition_config,
                             const MemoryTimings& timings,
                             rng::RandBank& bank,
                             std::optional<DramConfig> dram)
    : timings_(timings), stats_(n_masters) {
  CBUS_EXPECTS(n_masters >= 1 && n_masters <= kMaxMasters);
  timings_.validate();
  partitions_.reserve(n_masters);
  for (MasterId m = 0; m < n_masters; ++m) {
    partitions_.push_back(std::make_unique<cache::SetAssocCache>(
        partition_config, bank, "l2.part" + std::to_string(m)));
  }
  if (dram.has_value()) {
    CBUS_EXPECTS_MSG(dram->row_miss <= timings_.mem_access,
                     "bank-model worst case must not exceed the flat memory "
                     "latency, or MaxL = 2 x mem_access stops being an "
                     "upper bound");
    dram_ = std::make_unique<DramModel>(*dram);
  }
}

Cycle PartitionedL2::memory_latency(Addr addr, MasterId master) {
  ++stats_[master].memory_accesses;
  return dram_ ? dram_->access(addr) : timings_.mem_access;
}

AccessOutcome PartitionedL2::classify(const bus::BusRequest& request) const {
  CBUS_EXPECTS(request.master < partitions_.size());
  if (request.kind == MemOpKind::kAtomic) return AccessOutcome::kUncached;
  const auto& part = *partitions_[request.master];
  if (part.probe(request.addr)) return AccessOutcome::kHit;
  // The victim (and hence its dirtiness) is only known when the replacement
  // decision is actually made; classify() answers conservatively with the
  // clean-miss class. Timing-accurate classification happens in service().
  return AccessOutcome::kMissClean;
}

Cycle PartitionedL2::service(const bus::BusRequest& request) {
  CBUS_EXPECTS(request.master < partitions_.size());
  auto& stats = stats_[request.master];
  ++stats.transactions;

  if (request.kind == MemOpKind::kAtomic) {
    // Atomics bypass the caches: one read + one write to memory; the bus
    // is held for both because atomic sequences cannot be split (SIII-C).
    ++stats.atomics;
    return memory_latency(request.addr, request.master) +
           memory_latency(request.addr, request.master);
  }

  auto& part = *partitions_[request.master];
  // Stores reaching L2 come from the write-through L1: they dirty the L2
  // line (the L2 is write-back towards memory). Loads fill clean lines.
  const bool is_store = request.kind == MemOpKind::kStore;
  const cache::AccessResult result =
      part.access(request.addr, /*allocate_on_miss=*/true,
                  /*mark_dirty=*/is_store);

  if (result.hit) {
    ++stats.hits;
    return timings_.l2_hit;
  }
  if (result.victim_valid && result.victim_dirty) {
    // Write the dirty victim back, then fetch the requested line.
    ++stats.misses_dirty;
    const Cycle writeback = memory_latency(
        result.victim_line * partitions_[request.master]->config().line_bytes,
        request.master);
    return writeback + memory_latency(request.addr, request.master);
  }
  ++stats.misses_clean;
  return memory_latency(request.addr, request.master);
}

Cycle PartitionedL2::begin_transaction(const bus::BusRequest& request,
                                       Cycle /*now*/) {
  return service(request);
}

bus::SplitResponse PartitionedL2::begin_split_transaction(
    const bus::BusRequest& request, Cycle /*now*/) {
  const Cycle total = service(request);
  bus::SplitResponse response;
  if (request.kind == MemOpKind::kAtomic) {
    response.atomic_hold = true;
    response.latency = total;  // bus held for the full read+write pair
    return response;
  }
  // Keep end-to-end service equal to the non-split hold: 1 address cycle
  // + off-bus latency + data beats == total.
  response.data_beats = std::min<Cycle>(timings_.split_data_beats,
                                        std::max<Cycle>(1, total - 1));
  response.latency = total - 1 - response.data_beats;
  return response;
}

void PartitionedL2::complete_transaction(const bus::BusRequest& /*request*/,
                                         Cycle /*now*/) {}

void PartitionedL2::reset_partition(MasterId master,
                                    std::uint64_t placement_seed) {
  CBUS_EXPECTS(master < partitions_.size());
  partitions_[master]->reset(placement_seed);
  stats_[master] = L2Stats{};
}

const L2Stats& PartitionedL2::stats(MasterId master) const {
  CBUS_EXPECTS(master < stats_.size());
  return stats_[master];
}

const cache::SetAssocCache& PartitionedL2::partition(MasterId master) const {
  CBUS_EXPECTS(master < partitions_.size());
  return *partitions_[master];
}

cache::SetAssocCache& PartitionedL2::partition(MasterId master) {
  CBUS_EXPECTS(master < partitions_.size());
  return *partitions_[master];
}

}  // namespace cbus::mem
