// Open-page DRAM bank model (DDR2-class, the prototype's memory).
//
// The base platform uses the paper's flat 28-cycle memory latency. This
// optional model refines it with row-buffer locality: an access hitting
// the currently open row of its bank is faster (t_CAS-dominated) than one
// that must precharge + activate first. Defaults are chosen so the
// worst case stays at the paper's 28 cycles -- MaxL = 56 remains a valid
// upper bound -- while sequential streams gain from open rows.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace cbus::mem {

struct DramConfig {
  std::uint32_t banks = 4;
  std::uint32_t row_bytes = 2048;
  Cycle row_hit = 20;   ///< open-row access
  Cycle row_miss = 28;  ///< precharge + activate + access (the paper's 28)

  void validate() const {
    CBUS_EXPECTS(banks >= 1);
    CBUS_EXPECTS((banks & (banks - 1)) == 0);
    CBUS_EXPECTS(row_bytes >= 64 && (row_bytes & (row_bytes - 1)) == 0);
    CBUS_EXPECTS(row_hit >= 1);
    CBUS_EXPECTS(row_miss >= row_hit);
  }
};

struct DramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  [[nodiscard]] double row_hit_rate() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(row_hits) /
                     static_cast<double>(accesses);
  }
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& config);

  /// Latency of one memory access; updates the bank's open row.
  [[nodiscard]] Cycle access(Addr addr);

  /// Close every row (rank-level precharge; new run).
  void reset();

  [[nodiscard]] const DramStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DramConfig& config() const noexcept { return config_; }

  /// Worst-case single-access latency (row_miss): feeds MaxL validation.
  [[nodiscard]] Cycle worst_case() const noexcept { return config_.row_miss; }

 private:
  struct Bank {
    bool open = false;
    std::uint32_t row = 0;
  };

  DramConfig config_;
  std::vector<Bank> banks_;
  DramStats stats_;
};

}  // namespace cbus::mem
