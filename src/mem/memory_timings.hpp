// The published latency model of the target platform (paper §IV-A):
//
//   "Bus transactions take between 5 cycles for L2 read cache hit and 56
//    cycles. Memory latency is 28 cycles and the longest requests may
//    produce 2 memory accesses, e.g. atomic operations produce a read and
//    a write operation and L2 cache misses evicting a dirty line produce
//    one access to write dirty data back to memory and another to fetch
//    requested data."
//
// Hold time of a non-split bus transaction:
//   L2 hit                         -> l2_hit          (5)
//   L2 miss, clean victim          -> mem_access      (28)
//   L2 miss, dirty victim          -> 2 * mem_access  (56)
//   atomic (read + write, uncached)-> 2 * mem_access  (56)
// MaxL == 2 * mem_access.
#pragma once

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace cbus::mem {

struct MemoryTimings {
  Cycle l2_hit = 5;
  Cycle mem_access = 28;
  /// Data-phase length on the split-transaction bus variant (line return).
  Cycle split_data_beats = 4;

  [[nodiscard]] Cycle hold_for(AccessOutcome outcome) const {
    switch (outcome) {
      case AccessOutcome::kHit: return l2_hit;
      case AccessOutcome::kMissClean: return mem_access;
      case AccessOutcome::kMissDirty: return 2 * mem_access;
      case AccessOutcome::kUncached: return 2 * mem_access;
    }
    CBUS_ASSERT(false);
    return 0;
  }

  /// The longest possible transaction: CBA's MaxL.
  [[nodiscard]] Cycle max_latency() const noexcept { return 2 * mem_access; }

  void validate() const {
    CBUS_EXPECTS(l2_hit >= 1);
    CBUS_EXPECTS(mem_access >= l2_hit);
    CBUS_EXPECTS(split_data_beats >= 1);
    CBUS_EXPECTS(split_data_beats < l2_hit);  // hit = addr + beats + slack
  }
};

}  // namespace cbus::mem
