#include "mem/dram.hpp"

namespace cbus::mem {

DramModel::DramModel(const DramConfig& config) : config_(config) {
  config_.validate();
  banks_.resize(config_.banks);
}

Cycle DramModel::access(Addr addr) {
  const std::uint32_t row_index =
      static_cast<std::uint32_t>(addr / config_.row_bytes);
  // Bank interleaving on row-address low bits (consecutive rows hit
  // different banks, as DDR2 controllers commonly map them).
  const std::uint32_t bank_index = row_index & (config_.banks - 1);
  const std::uint32_t row = row_index / config_.banks;

  Bank& bank = banks_[bank_index];
  ++stats_.accesses;
  if (bank.open && bank.row == row) {
    ++stats_.row_hits;
    return config_.row_hit;
  }
  ++stats_.row_misses;
  bank.open = true;
  bank.row = row;
  return config_.row_miss;
}

void DramModel::reset() {
  for (auto& bank : banks_) bank = Bank{};
  stats_ = DramStats{};
}

}  // namespace cbus::mem
