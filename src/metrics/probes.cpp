#include "metrics/probes.hpp"

#include <array>

#include "bus/segmented.hpp"
#include "ctrl/controller.hpp"
#include "stats/fairness.hpp"

namespace cbus::metrics {

void probe_tua(Cycle tua_cycles, const cpu::CoreStats& stats, Record& out) {
  out.set("tua.cycles", static_cast<double>(tua_cycles));
  out.set("tua.bus_requests", static_cast<double>(stats.bus_requests));
  out.set("tua.bus_stall_cycles",
          static_cast<double>(stats.bus_stall_cycles));
}

void probe_bus(const bus::BusStatistics& stats, Record& out) {
  const auto totals = stats.totals();
  out.set("bus.utilization",
          stats.total_cycles == 0
              ? 0.0
              : static_cast<double>(stats.busy_cycles) /
                    static_cast<double>(stats.total_cycles));

  const std::size_t n = stats.master.size();
  std::vector<double> occupancy(n);
  std::vector<double> grants(n);
  std::vector<double> requests(n);
  std::vector<double> mean_wait(n);
  std::vector<double> max_wait(n);
  for (std::size_t m = 0; m < n; ++m) {
    const auto& pm = stats.master[m];
    const auto master_id = static_cast<MasterId>(m);
    occupancy[m] = stats.occupancy_share(master_id);
    grants[m] = stats.grant_share(master_id, totals);
    requests[m] = static_cast<double>(pm.requests);
    mean_wait[m] = pm.grants == 0
                       ? 0.0
                       : static_cast<double>(pm.wait_cycles) /
                             static_cast<double>(pm.grants);
    max_wait[m] = static_cast<double>(pm.max_wait);
  }
  out.set("bus.occupancy_share", std::move(occupancy));
  out.set("bus.grant_share", std::move(grants));
  out.set("bus.requests", std::move(requests));
  out.set("bus.mean_wait", std::move(mean_wait));
  out.set("bus.max_wait", std::move(max_wait));
}

void probe_fairness(const bus::BusStatistics& stats, Record& out) {
  // Jain and max-min are scale-invariant, so raw cycle/grant counts give
  // the same indices as normalised shares without a division.
  const std::size_t n = stats.master.size();
  std::vector<double> occupancy(n);
  std::vector<double> grants(n);
  for (std::size_t m = 0; m < n; ++m) {
    occupancy[m] = static_cast<double>(stats.master[m].hold_cycles);
    grants[m] = static_cast<double>(stats.master[m].grants);
  }
  out.set("fair.jain_occupancy", stats::jain_index(occupancy));
  out.set("fair.jain_grants", stats::jain_index(grants));
  out.set("fair.maxmin_occupancy", stats::max_min_ratio(occupancy));
  out.set("fair.maxmin_grants", stats::max_min_ratio(grants));
}

void probe_credit(const core::CreditFilter* filter, Record& out) {
  if (filter == nullptr) {
    out.set("credit.underflows", 0.0);
    return;
  }
  const core::CreditState& state = filter->state();
  out.set("credit.underflows",
          static_cast<double>(state.underflow_clamps()));
  std::vector<double> budgets(state.config().n_masters);
  for (std::size_t m = 0; m < budgets.size(); ++m) {
    budgets[m] = state.budget_cycles(static_cast<MasterId>(m));
  }
  out.set("credit.budget", std::move(budgets));
}

void probe_credit(std::uint64_t underflows, std::span<const double> budgets,
                  Record& out) {
  out.set("credit.underflows", static_cast<double>(underflows));
  if (budgets.empty()) return;  // no CBA: mirror the null-filter overload
  out.set("credit.budget",
          std::vector<double>(budgets.begin(), budgets.end()));
}

void probe_segments(const bus::SegmentedInterconnect* segmented,
                    const bus::BusStatistics& flat, Record& out) {
  if (segmented == nullptr) {
    // Single bus: one segment whose occupancy is the bus utilization and
    // whose grants are the global grant total; no bridge traffic.
    out.set("seg.occupancy",
            std::vector<double>{
                flat.total_cycles == 0
                    ? 0.0
                    : static_cast<double>(flat.busy_cycles) /
                          static_cast<double>(flat.total_cycles)});
    out.set("seg.grants", std::vector<double>{static_cast<double>(
                              flat.totals().grants)});
    out.set("seg.remote_fraction", 0.0);
    out.set("seg.bridge_hops", 0.0);
    out.set("seg.mean_bridge_wait", 0.0);
    out.set("seg.queue_depth_max", std::vector<double>{0.0});
    out.set("seg.queue_depth_mean", std::vector<double>{0.0});
    out.set("seg.backpressure_stalls", std::vector<double>{0.0});
    // Every single-bus transaction is served in place: 0 bridges crossed.
    out.set("seg.hop_histogram",
            std::vector<double>{
                static_cast<double>(flat.totals().completions)});
    return;
  }

  const std::uint32_t n = segmented->n_segments();
  std::vector<double> occupancy(n);
  std::vector<double> grants(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const bus::BusStatistics& st = segmented->segment_statistics(s);
    occupancy[s] = st.total_cycles == 0
                       ? 0.0
                       : static_cast<double>(st.busy_cycles) /
                             static_cast<double>(st.total_cycles);
    grants[s] = static_cast<double>(st.totals().grants);
  }
  out.set("seg.occupancy", std::move(occupancy));
  out.set("seg.grants", std::move(grants));

  const bus::BridgeStats& bridges = segmented->bridge_stats();
  const std::uint64_t completed =
      bridges.remote_transactions + bridges.local_transactions;
  out.set("seg.remote_fraction",
          completed == 0 ? 0.0
                         : static_cast<double>(bridges.remote_transactions) /
                               static_cast<double>(completed));
  out.set("seg.bridge_hops", static_cast<double>(bridges.hops));
  out.set("seg.mean_bridge_wait",
          bridges.hops == 0 ? 0.0
                            : static_cast<double>(bridges.queue_cycles) /
                                  static_cast<double>(bridges.hops));

  // Per-bridge queue shape (one element per directed topology edge, in
  // bridge delivery order) and the backpressure picture.
  const std::uint32_t nb = segmented->n_bridges();
  const std::uint64_t ticks = segmented->ticked_cycles();
  std::vector<double> depth_max(nb);
  std::vector<double> depth_mean(nb);
  for (std::uint32_t b = 0; b < nb; ++b) {
    depth_max[b] =
        static_cast<double>(segmented->bridge_queue_depth_max(b));
    depth_mean[b] =
        ticks == 0 ? 0.0
                   : static_cast<double>(segmented->bridge_queue_depth_sum(b)) /
                         static_cast<double>(ticks);
  }
  out.set("seg.queue_depth_max", std::move(depth_max));
  out.set("seg.queue_depth_mean", std::move(depth_mean));
  std::vector<double> stalls(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    stalls[s] = static_cast<double>(segmented->backpressure_stalls(s));
  }
  out.set("seg.backpressure_stalls", std::move(stalls));
  const std::span<const std::uint64_t> hist = segmented->hop_histogram();
  std::vector<double> hops(hist.size());
  for (std::size_t h = 0; h < hist.size(); ++h) {
    hops[h] = static_cast<double>(hist[h]);
  }
  out.set("seg.hop_histogram", std::move(hops));
}

void probe_ctrl(const ctrl::CreditController* controller, Record& out) {
  if (controller == nullptr ||
      controller->kind() != ctrl::ControllerKind::kAdaptive) {
    return;
  }
  const std::vector<std::uint64_t> increments = controller->increments();
  std::vector<double> applied(increments.size());
  for (std::size_t m = 0; m < increments.size(); ++m) {
    applied[m] = static_cast<double>(increments[m]);
  }
  out.set("ctrl.increment", std::move(applied));
  const ctrl::ControllerStats& stats = controller->stats();
  out.set("ctrl.epochs", static_cast<double>(stats.epochs));
  out.set("ctrl.updates", static_cast<double>(stats.updates));
  out.set("ctrl.convergence_cycles",
          static_cast<double>(stats.convergence_cycles));
  out.set("ctrl.steady_error", stats.steady_error);
}

std::span<const MetricInfo> metric_catalog() {
  static const std::array<MetricInfo, 29> kCatalog{{
      {"tua.cycles", false,
       "execution time of the task under analysis (cycles)"},
      {"tua.bus_requests", false, "bus requests issued by the TuA"},
      {"tua.bus_stall_cycles", false,
       "TuA cycles blocked on an outstanding bus request"},
      {"bus.utilization", false, "fraction of cycles a transfer was in flight"},
      {"bus.occupancy_share", true,
       "fraction of all cycles each master held the bus"},
      {"bus.grant_share", true, "fraction of all grants each master won"},
      {"bus.requests", true, "requests raised per master"},
      {"bus.mean_wait", true,
       "mean request-to-grant wait per master (cycles)"},
      {"bus.max_wait", true,
       "worst single-request wait per master (cycles)"},
      {"fair.jain_occupancy", false,
       "Jain's index over per-master occupancy cycles (CBA equalises this)"},
      {"fair.jain_grants", false,
       "Jain's index over per-master grant counts (RR/FIFO equalise this)"},
      {"fair.maxmin_occupancy", false,
       "max/min ratio of per-master occupancy cycles"},
      {"fair.maxmin_grants", false,
       "max/min ratio of per-master grant counts"},
      {"credit.underflows", false,
       "cycles a CBA counter clamped at zero (0 without CBA)"},
      {"credit.budget", true,
       "end-of-run CBA budget per master in cycles (CBA setups only)"},
      {"seg.occupancy", true,
       "busy fraction per interconnect segment (one element per segment)"},
      {"seg.grants", true,
       "grants per interconnect segment, transit hops included"},
      {"seg.remote_fraction", false,
       "fraction of transactions that crossed at least one bridge"},
      {"seg.bridge_hops", false, "store-and-forward bridge traversals"},
      {"seg.mean_bridge_wait", false,
       "mean cycles a forwarded request sat in a bridge buffer"},
      {"seg.queue_depth_max", true,
       "high-water bridge queue depth (one element per directed edge)"},
      {"seg.queue_depth_mean", true,
       "time-mean bridge queue depth (one element per directed edge)"},
      {"seg.backpressure_stalls", true,
       "master-cycles a segment withheld a request because its next-hop "
       "bridge was full (bounded bridge_depth only)"},
      {"seg.hop_histogram", true,
       "completed transactions by bridges crossed (index = hop count)"},
      {"ctrl.increment", true,
       "Table-I credit increment in force per master at run end "
       "(controller = adaptive only)"},
      {"ctrl.epochs", false,
       "controller epochs processed (controller = adaptive only)"},
      {"ctrl.updates", false,
       "epochs whose rate vector moved (controller = adaptive only)"},
      {"ctrl.convergence_cycles", false,
       "end cycle of the last epoch that moved the rates -- the measured "
       "convergence time (controller = adaptive only)"},
      {"ctrl.steady_error", false,
       "final |rate - target| summed over masters, as a fraction of the "
       "scale (controller = adaptive only)"},
  }};
  return kCatalog;
}

const MetricInfo* find_metric(std::string_view key) noexcept {
  for (const MetricInfo& info : metric_catalog()) {
    if (info.key == key) return &info;
  }
  return nullptr;
}

}  // namespace cbus::metrics
