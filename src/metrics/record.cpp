#include "metrics/record.hpp"

namespace cbus::metrics {

void Record::set(std::string_view key, Value value) {
  CBUS_EXPECTS_MSG(!key.empty(), "metric keys must be non-empty");
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::string(key), std::move(value));
}

const Value* Record::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Record::at(std::string_view key) const {
  const Value* value = find(key);
  CBUS_EXPECTS_MSG(value != nullptr,
                   "no such metric key: " + std::string(key));
  return *value;
}

std::vector<std::string> Record::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

KeyRef parse_key_ref(std::string_view text) {
  const auto open = text.find('[');
  if (open == std::string_view::npos) {
    CBUS_EXPECTS_MSG(text.find(']') == std::string_view::npos,
                     "malformed metric key '" + std::string(text) + "'");
    CBUS_EXPECTS_MSG(!text.empty(), "empty metric key");
    return KeyRef{std::string(text), std::nullopt};
  }
  CBUS_EXPECTS_MSG(open != 0 && text.back() == ']' &&
                       text.size() >= open + 3,
                   "malformed metric key '" + std::string(text) +
                       "' (want key or key[index])");
  const std::string_view digits = text.substr(open + 1,
                                              text.size() - open - 2);
  std::size_t index = 0;
  for (const char c : digits) {
    CBUS_EXPECTS_MSG(c >= '0' && c <= '9',
                     "bad element index in metric key '" +
                         std::string(text) + "'");
    index = index * 10 + static_cast<std::size_t>(c - '0');
    CBUS_EXPECTS_MSG(index <= 1'000'000,
                     "element index out of range in metric key '" +
                         std::string(text) + "'");
  }
  return KeyRef{std::string(text.substr(0, open)), index};
}

std::string element_key(std::string_view base, std::size_t i) {
  return std::string(base) + '[' + std::to_string(i) + ']';
}

}  // namespace cbus::metrics
