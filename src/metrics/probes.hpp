// Probes: extract metric Records from the simulator's raw statistics
// structs after a run.
//
// A probe appends keys to a Record; the union of the standard probes is
// the canonical per-run record every campaign produces. The catalog below
// is the single source of truth for the key names -- experiment files
// select columns by these names (`metrics = fair.jain_occupancy,...`)
// and `cbus_sim --list metrics` prints them.
//
// Key naming scheme: `<subsystem>.<quantity>`, lower_snake_case, with
// per-master quantities as vector values addressed `key[i]` in column
// headers and selections.
#pragma once

#include <span>
#include <string_view>

#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "cpu/core_config.hpp"
#include "metrics/record.hpp"

namespace cbus::metrics {

/// Task-under-analysis timing and traffic: tua.cycles, tua.bus_requests,
/// tua.bus_stall_cycles.
void probe_tua(Cycle tua_cycles, const cpu::CoreStats& stats, Record& out);

/// Bus-level occupancy accounting: bus.utilization plus the per-master
/// vectors bus.occupancy_share, bus.grant_share, bus.requests,
/// bus.mean_wait and bus.max_wait. Shares are computed from one
/// BusStatistics::totals() pass.
void probe_bus(const bus::BusStatistics& stats, Record& out);

/// Fairness indices over the per-master allocation vectors -- the paper's
/// central occupancy-vs-request-count comparison: fair.jain_occupancy,
/// fair.jain_grants, fair.maxmin_occupancy, fair.maxmin_grants.
void probe_fairness(const bus::BusStatistics& stats, Record& out);

/// CBA credit accounting: credit.underflows (0 when no filter is
/// installed) and, with a filter, the per-master credit.budget vector of
/// end-of-run budgets in cycles.
void probe_credit(const core::CreditFilter* filter, Record& out);

/// One catalog entry per standard probe key.
struct MetricInfo {
  std::string_view key;
  bool per_master = false;  ///< vector value, one element per master
  /// Emitted by every campaign ("always") or only under a condition.
  std::string_view description;
};

/// Every key the standard probes can emit, in probe order.
[[nodiscard]] std::span<const MetricInfo> metric_catalog();

/// Catalog lookup by base key (no [i] suffix); nullptr when unknown.
[[nodiscard]] const MetricInfo* find_metric(std::string_view key) noexcept;

}  // namespace cbus::metrics
