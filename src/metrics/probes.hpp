// Probes: extract metric Records from the simulator's raw statistics
// structs after a run.
//
// A probe appends keys to a Record; the union of the standard probes is
// the canonical per-run record every campaign produces. The catalog below
// is the single source of truth for the key names -- experiment files
// select columns by these names (`metrics = fair.jain_occupancy,...`)
// and `cbus_sim --list metrics` prints them.
//
// Key naming scheme: `<subsystem>.<quantity>`, lower_snake_case, with
// per-master quantities as vector values addressed `key[i]` in column
// headers and selections.
#pragma once

#include <span>
#include <string_view>

#include <cstdint>

#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "cpu/core_config.hpp"
#include "metrics/record.hpp"

namespace cbus::bus {
class SegmentedInterconnect;  // probes take it as an opaque pointer
}  // namespace cbus::bus

namespace cbus::ctrl {
class CreditController;  // probes take it as an opaque pointer
}  // namespace cbus::ctrl

namespace cbus::metrics {

/// Task-under-analysis timing and traffic: tua.cycles, tua.bus_requests,
/// tua.bus_stall_cycles.
void probe_tua(Cycle tua_cycles, const cpu::CoreStats& stats, Record& out);

/// Bus-level occupancy accounting: bus.utilization plus the per-master
/// vectors bus.occupancy_share, bus.grant_share, bus.requests,
/// bus.mean_wait and bus.max_wait. Shares are computed from one
/// BusStatistics::totals() pass.
void probe_bus(const bus::BusStatistics& stats, Record& out);

/// Fairness indices over the per-master allocation vectors -- the paper's
/// central occupancy-vs-request-count comparison: fair.jain_occupancy,
/// fair.jain_grants, fair.maxmin_occupancy, fair.maxmin_grants.
void probe_fairness(const bus::BusStatistics& stats, Record& out);

/// CBA credit accounting: credit.underflows (0 when no filter is
/// installed) and, with a filter, the per-master credit.budget vector of
/// end-of-run budgets in cycles.
void probe_credit(const core::CreditFilter* filter, Record& out);

/// Segmented-topology form of probe_credit: `underflows` summed over the
/// per-segment filters, `budgets` the per-master end-of-run budgets in
/// cycles read from each master's home-segment filter (empty = no CBA).
/// Emits the same keys as the single-bus overload.
void probe_credit(std::uint64_t underflows, std::span<const double> budgets,
                  Record& out);

/// Per-segment interconnect accounting: the seg.occupancy and seg.grants
/// vectors (one element per segment) plus the scalar bridge-traffic keys
/// seg.remote_fraction, seg.bridge_hops and seg.mean_bridge_wait. Pass a
/// null interconnect for the single-bus topology: the keys degrade to
/// one-segment values derived from `flat` (so a topology sweep renders
/// comparable columns for every job).
void probe_segments(const bus::SegmentedInterconnect* segmented,
                    const bus::BusStatistics& flat, Record& out);

/// Credit-controller accounting, ADAPTIVE controllers only: the
/// per-master ctrl.increment vector (Table-I increments in force at run
/// end) plus ctrl.epochs, ctrl.updates, ctrl.convergence_cycles and
/// ctrl.steady_error. Emits nothing for a null or static controller, so
/// `controller = static` records keep the pre-controller shape
/// byte-for-byte (sinks render the absent keys as empty/null in mixed
/// sweeps).
void probe_ctrl(const ctrl::CreditController* controller, Record& out);

/// One catalog entry per standard probe key.
struct MetricInfo {
  std::string_view key;
  /// Vector value, one element per master -- or per SEGMENT for the
  /// seg.* keys (the flag means "addressable as key[i]", and the axis
  /// is named in each description).
  bool per_master = false;
  /// Emitted by every campaign ("always") or only under a condition.
  std::string_view description;
};

/// Every key the standard probes can emit, in probe order.
[[nodiscard]] std::span<const MetricInfo> metric_catalog();

/// Catalog lookup by base key (no [i] suffix); nullptr when unknown.
[[nodiscard]] const MetricInfo* find_metric(std::string_view key) noexcept;

}  // namespace cbus::metrics
