// metrics::Aggregator -- folds per-run Records into per-campaign
// statistics at constant memory.
//
// The first record added defines the key set and the element width of
// every key; later records must match (a campaign's platform shape is
// fixed, so a width change is a probe bug, not data). Per key and element
// the aggregator keeps an exactly-mergeable digest: integer counters
// (finite/NaN/inf), Kulisch-style exact sums of x and x^2
// (stats::ExactSum), finite min/max, and a log-linear quantile sketch
// (stats::LogHistogram). Every piece of that state folds associatively
// AND commutatively with no rounding, so two aggregators built from any
// partition of the same run set -- different batch sizes, thread counts,
// checkpoint slices or shard processes -- are bit-for-bit identical.
//
// Raw per-run series retention is OPT-IN (Options::retain_raw): the
// default streaming mode is O(#keys), independent of the run count.
// Sinks that render per-run rows or feed MBPTA fitters ask for retention
// explicitly; everything else (mean/min/max/stddev/CI, sketch
// percentiles) works in both modes.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/record.hpp"
#include "stats/exact_sum.hpp"
#include "stats/log_histogram.hpp"
#include "stats/summary.hpp"

namespace cbus::metrics {

namespace detail {

/// Census of live Aggregator instances, mirroring RecordCensus: the
/// streaming merge path (cbus_merge, checkpoint resume) promises peak
/// live aggregators O(jobs), independent of the slice count; regression
/// tests read these counters to catch a return to materializing every
/// slice's digest before folding.
struct AggregatorCensus {
  AggregatorCensus() noexcept { bump(); }
  AggregatorCensus(const AggregatorCensus&) noexcept { bump(); }
  AggregatorCensus(AggregatorCensus&&) noexcept { bump(); }
  AggregatorCensus& operator=(const AggregatorCensus&) noexcept = default;
  AggregatorCensus& operator=(AggregatorCensus&&) noexcept = default;
  ~AggregatorCensus() { live_.fetch_sub(1, std::memory_order_relaxed); }

  static void bump() noexcept {
    const std::uint64_t now =
        live_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  static inline std::atomic<std::uint64_t> live_{0};
  static inline std::atomic<std::uint64_t> peak_{0};
};

}  // namespace detail

class Aggregator {
 public:
  struct Options {
    /// Keep every per-run sample series (O(runs) memory). Required by
    /// per-run CSV rows, exact percentiles and MBPTA fit inputs.
    bool retain_raw = false;
  };

  Aggregator() = default;
  explicit Aggregator(const Options& options) : retain_raw_(options.retain_raw) {}

  /// Fold one per-run record. Precondition: the key set and per-key
  /// widths match every previously added record.
  void add(const Record& run);

  /// Fold another aggregator built over a DISJOINT run set with the same
  /// key schema (a checkpoint slice, another shard). Streaming mode only
  /// (raw series would need a run order; digests do not). The result is
  /// bit-identical for any merge order or partition.
  void merge(const Aggregator& other);

  [[nodiscard]] bool retains_raw() const noexcept { return retain_raw_; }

  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
  [[nodiscard]] bool empty() const noexcept { return runs_ == 0; }

  [[nodiscard]] bool has(std::string_view key) const noexcept;

  /// Keys in first-seen (probe) order.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Element count of `key` (1 for scalars); 0 when the key is absent.
  [[nodiscard]] std::size_t width(std::string_view key) const noexcept;

  /// True when `key` was added as a vector (even a 1-element one).
  [[nodiscard]] bool is_vector(std::string_view key) const;

  /// Per-element digest view, derived from the exact state; preconditions:
  /// has(key), element < width(key).
  [[nodiscard]] stats::OnlineStats element_stats(std::string_view key,
                                                 std::size_t element = 0) const;

  /// Exact sum of the element's finite samples, rounded once.
  [[nodiscard]] double element_sum(std::string_view key,
                                   std::size_t element = 0) const;

  /// Per-element raw series in run order; preconditions additionally
  /// include retains_raw().
  [[nodiscard]] const std::vector<double>& element_samples(
      std::string_view key, std::size_t element = 0) const;

  /// q-quantile (q in [0, 1]) of one element: exact over the retained
  /// series, otherwise the sketch estimate (~0.2% relative resolution).
  [[nodiscard]] double element_quantile(std::string_view key,
                                        std::size_t element, double q) const;

  /// Summary record: for every key K emit `K.mean`, `K.min`, `K.max` and
  /// `K.stddev` (vector-shaped when K is), plus `K.p<P>` per requested
  /// percentile. Percentiles are in [0, 100] and render with %g (99.9 ->
  /// "K.p99.9"); they are exact with raw retention, sketch estimates in
  /// streaming mode. Empty aggregators summarize to an empty record.
  [[nodiscard]] Record summarize(
      std::span<const double> percentiles = {}) const;

  /// Write the streaming digest state (versioned, canonical: equal states
  /// produce equal bytes). Precondition: !retains_raw().
  void serialize(std::ostream& out) const;

  /// Rebuild from serialize() output; throws std::invalid_argument on a
  /// malformed or truncated payload.
  [[nodiscard]] static Aggregator deserialize(std::istream& in);

  /// Live-instance census (includes moved-from shells), for streaming
  /// memory regression tests.
  [[nodiscard]] static std::uint64_t live_count() noexcept {
    return detail::AggregatorCensus::live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t peak_live_count() noexcept {
    return detail::AggregatorCensus::peak_.load(std::memory_order_relaxed);
  }
  static void reset_peak_live_count() noexcept {
    detail::AggregatorCensus::peak_.store(
        detail::AggregatorCensus::live_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }

 private:
  /// The exactly-mergeable per-element state.
  struct ElementDigest {
    std::uint64_t finite = 0;
    std::uint64_t nans = 0;
    std::uint64_t pos_inf = 0;
    std::uint64_t neg_inf = 0;
    /// x^2 rounded per-sample overflowed to inf (|x| ~ 1e154 or larger);
    /// the variance view degrades to NaN, counted so merges stay exact.
    std::uint64_t sq_overflow = 0;
    stats::ExactSum sum;     ///< exact sum of finite x
    stats::ExactSum sum_sq;  ///< exact sum of finite fl(x*x)
    double finite_min = 0.0;
    double finite_max = 0.0;
    stats::LogHistogram sketch;  ///< finite samples only

    void add(double x);
    void merge(const ElementDigest& other);
    [[nodiscard]] std::uint64_t count() const noexcept {
      return finite + nans + pos_inf + neg_inf;
    }
    [[nodiscard]] stats::OnlineStats stats() const noexcept;
    [[nodiscard]] double quantile(double q) const;
  };

  struct KeyAggregate {
    std::string key;
    bool vector_valued = false;
    std::vector<ElementDigest> digests;        ///< one per element
    std::vector<std::vector<double>> samples;  ///< [element][run], opt-in
  };

  [[nodiscard]] const KeyAggregate* find(std::string_view key) const noexcept;
  [[nodiscard]] const KeyAggregate& at(std::string_view key) const;

  std::vector<KeyAggregate> keys_;
  std::uint64_t runs_ = 0;
  bool retain_raw_ = false;
  [[no_unique_address]] detail::AggregatorCensus census_;
};

}  // namespace cbus::metrics
