// metrics::Aggregator -- folds per-run Records into per-campaign
// statistics.
//
// The first record added defines the key set and the element width of
// every key; later records must match (a campaign's platform shape is
// fixed, so a width change is a probe bug, not data). Per key and element
// the aggregator keeps an OnlineStats digest plus the raw sample series
// in run order, so sinks can render both summary columns (mean/min/max/
// stddev/percentiles) and per-run rows without re-running anything.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/record.hpp"
#include "stats/summary.hpp"

namespace cbus::metrics {

class Aggregator {
 public:
  /// Fold one per-run record. Precondition: the key set and per-key
  /// widths match every previously added record.
  void add(const Record& run);

  [[nodiscard]] std::uint64_t runs() const noexcept { return runs_; }
  [[nodiscard]] bool empty() const noexcept { return runs_ == 0; }

  [[nodiscard]] bool has(std::string_view key) const noexcept;

  /// Keys in first-seen (probe) order.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Element count of `key` (1 for scalars); 0 when the key is absent.
  [[nodiscard]] std::size_t width(std::string_view key) const noexcept;

  /// True when `key` was added as a vector (even a 1-element one).
  [[nodiscard]] bool is_vector(std::string_view key) const;

  /// Per-element digest; preconditions: has(key), element < width(key).
  [[nodiscard]] const stats::OnlineStats& element_stats(
      std::string_view key, std::size_t element = 0) const;

  /// Per-element raw series in run order; same preconditions.
  [[nodiscard]] const std::vector<double>& element_samples(
      std::string_view key, std::size_t element = 0) const;

  /// Summary record: for every key K emit `K.mean`, `K.min`, `K.max` and
  /// `K.stddev` (vector-shaped when K is), plus `K.p<P>` per requested
  /// percentile. Percentiles are in [0, 100] and render with %g (99.9 ->
  /// "K.p99.9"). Empty aggregators summarize to an empty record.
  [[nodiscard]] Record summarize(
      std::span<const double> percentiles = {}) const;

 private:
  struct KeyAggregate {
    std::string key;
    bool vector_valued = false;
    std::vector<stats::OnlineStats> stats;     ///< one per element
    std::vector<std::vector<double>> samples;  ///< [element][run]
  };

  [[nodiscard]] const KeyAggregate* find(std::string_view key) const noexcept;
  [[nodiscard]] const KeyAggregate& at(std::string_view key) const;

  std::vector<KeyAggregate> keys_;
  std::uint64_t runs_ = 0;
};

}  // namespace cbus::metrics
