#include "metrics/aggregator.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/binary_io.hpp"

namespace cbus::metrics {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Order-independent minimum: prefers -0.0 over +0.0 on ties so the
/// retained bit pattern never depends on arrival order.
[[nodiscard]] bool replaces_min(double x, double current) noexcept {
  return x < current || (x == current && std::signbit(x));
}

/// Order-independent maximum: prefers +0.0 over -0.0 on ties.
[[nodiscard]] bool replaces_max(double x, double current) noexcept {
  return x > current || (x == current && !std::signbit(x));
}

}  // namespace

void Aggregator::ElementDigest::add(double x) {
  if (std::isnan(x)) {
    ++nans;
    return;
  }
  if (std::isinf(x)) {
    x > 0.0 ? ++pos_inf : ++neg_inf;
    return;
  }
  if (finite == 0) {
    finite_min = x;
    finite_max = x;
  } else {
    if (replaces_min(x, finite_min)) finite_min = x;
    if (replaces_max(x, finite_max)) finite_max = x;
  }
  ++finite;
  sum.add(x);
  const double sq = x * x;  // rounded once per sample: deterministic
  if (std::isfinite(sq)) {
    sum_sq.add(sq);
  } else {
    ++sq_overflow;
  }
  sketch.add(x);
}

void Aggregator::ElementDigest::merge(const ElementDigest& other) {
  if (other.finite > 0) {
    if (finite == 0) {
      finite_min = other.finite_min;
      finite_max = other.finite_max;
    } else {
      if (replaces_min(other.finite_min, finite_min)) {
        finite_min = other.finite_min;
      }
      if (replaces_max(other.finite_max, finite_max)) {
        finite_max = other.finite_max;
      }
    }
  }
  finite += other.finite;
  nans += other.nans;
  pos_inf += other.pos_inf;
  neg_inf += other.neg_inf;
  sq_overflow += other.sq_overflow;
  sum.merge(other.sum);
  sum_sq.merge(other.sum_sq);
  sketch.merge(other.sketch);
}

stats::OnlineStats Aggregator::ElementDigest::stats() const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return {};
  const auto nd = static_cast<double>(n);

  double mean;
  if (nans > 0 || (pos_inf > 0 && neg_inf > 0)) {
    mean = kNan;
  } else if (pos_inf > 0) {
    mean = kInf;
  } else if (neg_inf > 0) {
    mean = -kInf;
  } else {
    mean = sum.to_double() / nd;
  }

  double m2;
  if (nans > 0 || pos_inf > 0 || neg_inf > 0 || sq_overflow > 0) {
    m2 = kNan;
  } else if (finite < 2 || std::bit_cast<std::uint64_t>(finite_min) ==
                               std::bit_cast<std::uint64_t>(finite_max)) {
    m2 = 0.0;  // constant series: exactly zero, no cancellation residue
  } else {
    const double s1 = sum.to_double();
    m2 = std::max(0.0, sum_sq.to_double() - (s1 / nd) * s1);
  }

  double lo;
  double hi;
  if (finite == 0 && pos_inf == 0 && neg_inf == 0) {
    lo = kNan;  // every sample was NaN
    hi = kNan;
  } else {
    lo = neg_inf > 0 ? -kInf : (finite > 0 ? finite_min : kInf);
    hi = pos_inf > 0 ? kInf : (finite > 0 ? finite_max : -kInf);
  }
  return stats::OnlineStats::from_moments(n, mean, m2, lo, hi);
}

double Aggregator::ElementDigest::quantile(double q) const {
  // Rank over the orderable samples: -inf block, finite sketch, +inf
  // block; NaNs are unrankable and excluded.
  const std::uint64_t rankable = neg_inf + sketch.count() + pos_inf;
  if (rankable == 0) return kNan;
  const double rank = q * static_cast<double>(rankable - 1);
  std::uint64_t cumulative = neg_inf;
  if (neg_inf > 0 && static_cast<double>(cumulative) > rank) return -kInf;
  for (const stats::LogHistogram::Bucket& bucket : sketch.buckets()) {
    cumulative += bucket.count;
    if (static_cast<double>(cumulative) > rank) {
      return stats::LogHistogram::representative(bucket.key);
    }
  }
  return pos_inf > 0 ? kInf : kNan;
}

void Aggregator::add(const Record& run) {
  if (runs_ == 0 && keys_.empty()) {
    keys_.reserve(run.size());
    for (const auto& [key, value] : run) {
      KeyAggregate agg;
      agg.key = key;
      agg.vector_valued = value.is_vector();
      agg.digests.resize(value.size());
      if (retain_raw_) agg.samples.resize(value.size());
      keys_.push_back(std::move(agg));
    }
  } else {
    CBUS_EXPECTS_MSG(run.size() == keys_.size(),
                     "record key set does not match the campaign's");
  }

  std::size_t slot = 0;
  for (const auto& [key, value] : run) {
    KeyAggregate& agg = keys_[slot++];
    CBUS_EXPECTS_MSG(key == agg.key,
                     "record key order changed mid-campaign: '" + key +
                         "' vs '" + agg.key + "'");
    CBUS_EXPECTS_MSG(value.size() == agg.digests.size(),
                     "metric '" + key + "' changed width mid-campaign");
    const auto elements = value.elements();
    for (std::size_t e = 0; e < elements.size(); ++e) {
      agg.digests[e].add(elements[e]);
      if (retain_raw_) agg.samples[e].push_back(elements[e]);
    }
  }
  ++runs_;
}

void Aggregator::merge(const Aggregator& other) {
  CBUS_EXPECTS_MSG(!retain_raw_ && !other.retain_raw_,
                   "merge needs streaming aggregators (raw series are "
                   "order-dependent; fold records instead)");
  if (other.runs_ == 0 && other.keys_.empty()) return;
  if (runs_ == 0 && keys_.empty()) {
    keys_ = other.keys_;
    runs_ = other.runs_;
    return;
  }
  CBUS_EXPECTS_MSG(other.keys_.size() == keys_.size(),
                   "record key set does not match the campaign's");
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    KeyAggregate& mine = keys_[k];
    const KeyAggregate& theirs = other.keys_[k];
    CBUS_EXPECTS_MSG(mine.key == theirs.key,
                     "record key order changed mid-campaign: '" +
                         theirs.key + "' vs '" + mine.key + "'");
    CBUS_EXPECTS_MSG(mine.digests.size() == theirs.digests.size(),
                     "metric '" + mine.key + "' changed width mid-campaign");
    for (std::size_t e = 0; e < mine.digests.size(); ++e) {
      mine.digests[e].merge(theirs.digests[e]);
    }
  }
  runs_ += other.runs_;
}

const Aggregator::KeyAggregate* Aggregator::find(
    std::string_view key) const noexcept {
  for (const auto& agg : keys_) {
    if (agg.key == key) return &agg;
  }
  return nullptr;
}

const Aggregator::KeyAggregate& Aggregator::at(std::string_view key) const {
  const KeyAggregate* agg = find(key);
  CBUS_EXPECTS_MSG(agg != nullptr,
                   "no such metric key: " + std::string(key));
  return *agg;
}

bool Aggregator::has(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

std::vector<std::string> Aggregator::keys() const {
  std::vector<std::string> out;
  out.reserve(keys_.size());
  for (const auto& agg : keys_) out.push_back(agg.key);
  return out;
}

std::size_t Aggregator::width(std::string_view key) const noexcept {
  const KeyAggregate* agg = find(key);
  return agg == nullptr ? 0 : agg->digests.size();
}

bool Aggregator::is_vector(std::string_view key) const {
  return at(key).vector_valued;
}

stats::OnlineStats Aggregator::element_stats(std::string_view key,
                                             std::size_t element) const {
  const KeyAggregate& agg = at(key);
  CBUS_EXPECTS_MSG(element < agg.digests.size(),
                   "element out of range for metric '" + std::string(key) +
                       "'");
  return agg.digests[element].stats();
}

double Aggregator::element_sum(std::string_view key,
                               std::size_t element) const {
  const KeyAggregate& agg = at(key);
  CBUS_EXPECTS_MSG(element < agg.digests.size(),
                   "element out of range for metric '" + std::string(key) +
                       "'");
  return agg.digests[element].sum.to_double();
}

const std::vector<double>& Aggregator::element_samples(
    std::string_view key, std::size_t element) const {
  CBUS_EXPECTS_MSG(retain_raw_,
                   "raw samples were not retained; construct the "
                   "Aggregator with Options::retain_raw");
  const KeyAggregate& agg = at(key);
  CBUS_EXPECTS_MSG(element < agg.samples.size(),
                   "element out of range for metric '" + std::string(key) +
                       "'");
  return agg.samples[element];
}

double Aggregator::element_quantile(std::string_view key, std::size_t element,
                                    double q) const {
  CBUS_EXPECTS(q >= 0.0 && q <= 1.0);
  const KeyAggregate& agg = at(key);
  CBUS_EXPECTS_MSG(element < agg.digests.size(),
                   "element out of range for metric '" + std::string(key) +
                       "'");
  if (retain_raw_) return stats::quantile(agg.samples[element], q);
  return agg.digests[element].quantile(q);
}

namespace {

/// "p95", "p99.9": shortest %g rendering of the percentile.
[[nodiscard]] std::string percentile_suffix(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "p%g", p);
  return buf;
}

}  // namespace

Record Aggregator::summarize(std::span<const double> percentiles) const {
  for (const double p : percentiles) {
    CBUS_EXPECTS_MSG(p >= 0.0 && p <= 100.0,
                     "percentiles must be in [0, 100]");
  }
  Record out;
  for (const auto& agg : keys_) {
    const std::size_t width = agg.digests.size();
    const auto emit = [&](const std::string& suffix, auto&& per_element) {
      if (agg.vector_valued) {
        std::vector<double> values(width);
        for (std::size_t e = 0; e < width; ++e) values[e] = per_element(e);
        out.set(agg.key + '.' + suffix, std::move(values));
      } else {
        out.set(agg.key + '.' + suffix, per_element(0));
      }
    };
    emit("mean",
         [&](std::size_t e) { return agg.digests[e].stats().mean(); });
    emit("min", [&](std::size_t e) { return agg.digests[e].stats().min(); });
    emit("max", [&](std::size_t e) { return agg.digests[e].stats().max(); });
    emit("stddev",
         [&](std::size_t e) { return agg.digests[e].stats().stddev(); });
    for (const double p : percentiles) {
      emit(percentile_suffix(p), [&](std::size_t e) {
        return retain_raw_ ? stats::quantile(agg.samples[e], p / 100.0)
                           : agg.digests[e].quantile(p / 100.0);
      });
    }
  }
  return out;
}

namespace {

constexpr std::uint32_t kDigestMagic = 0x47414243;  // "CBAG"
constexpr std::uint32_t kDigestVersion = 1;

void write_exact_sum(std::ostream& out, const stats::ExactSum& sum) {
  const auto limbs = sum.limbs();
  std::size_t last = limbs.size();
  while (last > 0 && limbs[last - 1] == 0) --last;
  std::size_t first = 0;
  while (first < last && limbs[first] == 0) ++first;
  io::write_u32(out, static_cast<std::uint32_t>(first));
  io::write_u32(out, static_cast<std::uint32_t>(last - first));
  for (std::size_t i = first; i < last; ++i) io::write_u64(out, limbs[i]);
}

[[nodiscard]] stats::ExactSum read_exact_sum(std::istream& in) {
  const std::uint32_t first = io::read_u32(in, "exact-sum offset");
  const std::uint32_t count = io::read_u32(in, "exact-sum limb count");
  CBUS_EXPECTS_MSG(
      first <= stats::ExactSum::kLimbs &&
          count <= stats::ExactSum::kLimbs - first,
      "exact-sum limb range out of bounds (corrupted digest)");
  std::array<std::uint64_t, stats::ExactSum::kLimbs> limbs{};
  for (std::uint32_t i = 0; i < count; ++i) {
    limbs[first + i] = io::read_u64(in, "exact-sum limb");
  }
  return stats::ExactSum::from_limbs(limbs);
}

void write_sketch(std::ostream& out, const stats::LogHistogram& sketch) {
  const auto buckets = sketch.buckets();
  io::write_u32(out, static_cast<std::uint32_t>(buckets.size()));
  for (const auto& bucket : buckets) {
    io::write_i64(out, bucket.key);
    io::write_u64(out, bucket.count);
  }
}

[[nodiscard]] stats::LogHistogram read_sketch(std::istream& in) {
  const std::uint32_t n = io::read_u32(in, "sketch bucket count");
  std::vector<stats::LogHistogram::Bucket> buckets;
  buckets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    stats::LogHistogram::Bucket bucket;
    bucket.key = io::read_i64(in, "sketch bucket key");
    bucket.count = io::read_u64(in, "sketch bucket payload");
    buckets.push_back(bucket);
  }
  return stats::LogHistogram::from_buckets(std::move(buckets));
}

}  // namespace

void Aggregator::serialize(std::ostream& out) const {
  CBUS_EXPECTS_MSG(!retain_raw_,
                   "only streaming aggregators serialize (raw series are "
                   "not part of the digest state)");
  io::write_u32(out, kDigestMagic);
  io::write_u32(out, kDigestVersion);
  io::write_u64(out, runs_);
  io::write_u32(out, static_cast<std::uint32_t>(keys_.size()));
  for (const KeyAggregate& agg : keys_) {
    io::write_string(out, agg.key);
    io::write_u8(out, agg.vector_valued ? 1 : 0);
    io::write_u32(out, static_cast<std::uint32_t>(agg.digests.size()));
    for (const ElementDigest& digest : agg.digests) {
      io::write_u64(out, digest.finite);
      io::write_u64(out, digest.nans);
      io::write_u64(out, digest.pos_inf);
      io::write_u64(out, digest.neg_inf);
      io::write_u64(out, digest.sq_overflow);
      io::write_f64(out, digest.finite_min);
      io::write_f64(out, digest.finite_max);
      write_exact_sum(out, digest.sum);
      write_exact_sum(out, digest.sum_sq);
      write_sketch(out, digest.sketch);
    }
  }
}

Aggregator Aggregator::deserialize(std::istream& in) {
  CBUS_EXPECTS_MSG(io::read_u32(in, "digest magic") == kDigestMagic,
                   "not an aggregator digest (bad magic)");
  const std::uint32_t version = io::read_u32(in, "digest version");
  CBUS_EXPECTS_MSG(version == kDigestVersion,
                   "aggregator digest version " + std::to_string(version) +
                       " is not supported (this build reads version " +
                       std::to_string(kDigestVersion) + ")");
  Aggregator out;
  out.runs_ = io::read_u64(in, "digest run count");
  const std::uint32_t nkeys = io::read_u32(in, "digest key count");
  out.keys_.reserve(nkeys);
  for (std::uint32_t k = 0; k < nkeys; ++k) {
    KeyAggregate agg;
    agg.key = io::read_string(in, "digest key name", 4096);
    agg.vector_valued = io::read_u8(in, "digest key kind") != 0;
    const std::uint32_t width = io::read_u32(in, "digest key width");
    CBUS_EXPECTS_MSG(width <= 65536,
                     "implausible digest width (corrupted digest)");
    agg.digests.resize(width);
    for (ElementDigest& digest : agg.digests) {
      digest.finite = io::read_u64(in, "digest finite count");
      digest.nans = io::read_u64(in, "digest nan count");
      digest.pos_inf = io::read_u64(in, "digest +inf count");
      digest.neg_inf = io::read_u64(in, "digest -inf count");
      digest.sq_overflow = io::read_u64(in, "digest overflow count");
      digest.finite_min = io::read_f64(in, "digest minimum");
      digest.finite_max = io::read_f64(in, "digest maximum");
      digest.sum = read_exact_sum(in);
      digest.sum_sq = read_exact_sum(in);
      digest.sketch = read_sketch(in);
    }
    out.keys_.push_back(std::move(agg));
  }
  return out;
}

}  // namespace cbus::metrics
