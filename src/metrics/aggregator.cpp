#include "metrics/aggregator.hpp"

#include <cstdio>

namespace cbus::metrics {

void Aggregator::add(const Record& run) {
  if (runs_ == 0) {
    keys_.reserve(run.size());
    for (const auto& [key, value] : run) {
      KeyAggregate agg;
      agg.key = key;
      agg.vector_valued = value.is_vector();
      agg.stats.resize(value.size());
      agg.samples.resize(value.size());
      keys_.push_back(std::move(agg));
    }
  } else {
    CBUS_EXPECTS_MSG(run.size() == keys_.size(),
                     "record key set does not match the campaign's");
  }

  std::size_t slot = 0;
  for (const auto& [key, value] : run) {
    KeyAggregate& agg = keys_[slot++];
    CBUS_EXPECTS_MSG(key == agg.key,
                     "record key order changed mid-campaign: '" + key +
                         "' vs '" + agg.key + "'");
    CBUS_EXPECTS_MSG(value.size() == agg.stats.size(),
                     "metric '" + key + "' changed width mid-campaign");
    const auto elements = value.elements();
    for (std::size_t e = 0; e < elements.size(); ++e) {
      agg.stats[e].add(elements[e]);
      agg.samples[e].push_back(elements[e]);
    }
  }
  ++runs_;
}

const Aggregator::KeyAggregate* Aggregator::find(
    std::string_view key) const noexcept {
  for (const auto& agg : keys_) {
    if (agg.key == key) return &agg;
  }
  return nullptr;
}

const Aggregator::KeyAggregate& Aggregator::at(std::string_view key) const {
  const KeyAggregate* agg = find(key);
  CBUS_EXPECTS_MSG(agg != nullptr,
                   "no such metric key: " + std::string(key));
  return *agg;
}

bool Aggregator::has(std::string_view key) const noexcept {
  return find(key) != nullptr;
}

std::vector<std::string> Aggregator::keys() const {
  std::vector<std::string> out;
  out.reserve(keys_.size());
  for (const auto& agg : keys_) out.push_back(agg.key);
  return out;
}

std::size_t Aggregator::width(std::string_view key) const noexcept {
  const KeyAggregate* agg = find(key);
  return agg == nullptr ? 0 : agg->stats.size();
}

bool Aggregator::is_vector(std::string_view key) const {
  return at(key).vector_valued;
}

const stats::OnlineStats& Aggregator::element_stats(
    std::string_view key, std::size_t element) const {
  const KeyAggregate& agg = at(key);
  CBUS_EXPECTS_MSG(element < agg.stats.size(),
                   "element out of range for metric '" + std::string(key) +
                       "'");
  return agg.stats[element];
}

const std::vector<double>& Aggregator::element_samples(
    std::string_view key, std::size_t element) const {
  const KeyAggregate& agg = at(key);
  CBUS_EXPECTS_MSG(element < agg.samples.size(),
                   "element out of range for metric '" + std::string(key) +
                       "'");
  return agg.samples[element];
}

namespace {

/// "p95", "p99.9": shortest %g rendering of the percentile.
[[nodiscard]] std::string percentile_suffix(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "p%g", p);
  return buf;
}

}  // namespace

Record Aggregator::summarize(std::span<const double> percentiles) const {
  for (const double p : percentiles) {
    CBUS_EXPECTS_MSG(p >= 0.0 && p <= 100.0,
                     "percentiles must be in [0, 100]");
  }
  Record out;
  for (const auto& agg : keys_) {
    const std::size_t width = agg.stats.size();
    const auto emit = [&](const std::string& suffix, auto&& per_element) {
      if (agg.vector_valued) {
        std::vector<double> values(width);
        for (std::size_t e = 0; e < width; ++e) values[e] = per_element(e);
        out.set(agg.key + '.' + suffix, std::move(values));
      } else {
        out.set(agg.key + '.' + suffix, per_element(0));
      }
    };
    emit("mean", [&](std::size_t e) { return agg.stats[e].mean(); });
    emit("min", [&](std::size_t e) { return agg.stats[e].min(); });
    emit("max", [&](std::size_t e) { return agg.stats[e].max(); });
    emit("stddev", [&](std::size_t e) { return agg.stats[e].stddev(); });
    for (const double p : percentiles) {
      emit(percentile_suffix(p), [&](std::size_t e) {
        return stats::quantile(agg.samples[e], p / 100.0);
      });
    }
  }
  return out;
}

}  // namespace cbus::metrics
