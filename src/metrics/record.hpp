// metrics::Record -- the typed metric-record API carried from probe to
// sink.
//
// A Record is an ordered list of (key, value) pairs where values are
// either a scalar or a per-master vector of doubles. Keys are stable,
// dot-scoped names (`tua.cycles`, `bus.occupancy_share`,
// `fair.jain_occupancy`); a vector element is addressed by suffixing an
// index in brackets (`bus.occupancy_share[2]`). Everything downstream of
// a run -- campaign aggregation, experiment sinks, CLI listings -- speaks
// records, so a new quantity is one probe line, never a new struct field
// plus hand-edited sinks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace cbus::metrics {

namespace detail {

/// Census of live Record instances (including moved-from shells). The
/// streaming campaign path promises peak Record count O(batch * threads),
/// independent of the run count; regression tests read these counters to
/// catch an accidental return to O(runs) materialization.
struct RecordCensus {
  RecordCensus() noexcept { bump(); }
  RecordCensus(const RecordCensus&) noexcept { bump(); }
  RecordCensus(RecordCensus&&) noexcept { bump(); }
  RecordCensus& operator=(const RecordCensus&) noexcept = default;
  RecordCensus& operator=(RecordCensus&&) noexcept = default;
  ~RecordCensus() { live_.fetch_sub(1, std::memory_order_relaxed); }

  friend bool operator==(const RecordCensus&, const RecordCensus&) noexcept {
    return true;  // bookkeeping only; never part of Record equality
  }

  static void bump() noexcept {
    const std::uint64_t now =
        live_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }

  static inline std::atomic<std::uint64_t> live_{0};
  static inline std::atomic<std::uint64_t> peak_{0};
};

}  // namespace detail

/// A metric value: one double, or one double per bus master.
class Value {
 public:
  enum class Kind : std::uint8_t { kScalar, kVector };

  Value() = default;
  /*implicit*/ Value(double scalar) : scalar_(scalar) {}
  /*implicit*/ Value(std::vector<double> elements)
      : kind_(Kind::kVector), vector_(std::move(elements)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_vector() const noexcept {
    return kind_ == Kind::kVector;
  }

  /// The scalar payload; precondition: kind() == kScalar.
  [[nodiscard]] double scalar() const {
    CBUS_EXPECTS(kind_ == Kind::kScalar);
    return scalar_;
  }

  /// Uniform element view: scalars look like a 1-element span.
  [[nodiscard]] std::span<const double> elements() const noexcept {
    return is_vector() ? std::span<const double>(vector_)
                       : std::span<const double>(&scalar_, 1);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return elements().size();
  }

  [[nodiscard]] double operator[](std::size_t i) const {
    CBUS_EXPECTS(i < size());
    return elements()[i];
  }

  friend bool operator==(const Value&, const Value&) = default;

 private:
  Kind kind_ = Kind::kScalar;
  double scalar_ = 0.0;
  std::vector<double> vector_;
};

/// Ordered string-keyed metric record. Insertion order is preserved (it
/// defines column order in sinks); setting an existing key replaces its
/// value in place. Lookup is linear -- records hold tens of keys.
class Record {
 public:
  void set(std::string_view key, Value value);
  void set(std::string_view key, double scalar) { set(key, Value(scalar)); }
  void set(std::string_view key, std::vector<double> elements) {
    set(key, Value(std::move(elements)));
  }

  [[nodiscard]] bool has(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }

  /// The value under `key`, or nullptr when absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// The value under `key`; precondition: has(key).
  [[nodiscard]] const Value& at(std::string_view key) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }

  /// Key names in insertion order.
  [[nodiscard]] std::vector<std::string> keys() const;

  friend bool operator==(const Record&, const Record&) = default;

  /// Live Record instances right now / the high-water mark since the
  /// last reset. Diagnostics for O(1)-memory regression tests only.
  [[nodiscard]] static std::uint64_t live_count() noexcept {
    return detail::RecordCensus::live_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static std::uint64_t peak_live_count() noexcept {
    return detail::RecordCensus::peak_.load(std::memory_order_relaxed);
  }
  static void reset_peak_live_count() noexcept {
    detail::RecordCensus::peak_.store(
        detail::RecordCensus::live_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }

 private:
  [[no_unique_address]] detail::RecordCensus census_;
  std::vector<std::pair<std::string, Value>> entries_;
};

/// A parsed metric-key reference: the bare key, or one vector element.
struct KeyRef {
  std::string base;                   ///< key without any [i] suffix
  std::optional<std::size_t> element; ///< set for `key[i]` references

  friend bool operator==(const KeyRef&, const KeyRef&) = default;
};

/// Parse "bus.occupancy_share[2]" -> {"bus.occupancy_share", 2} and
/// "tua.cycles" -> {"tua.cycles", nullopt}. Throws std::invalid_argument
/// on malformed brackets or a non-numeric index.
[[nodiscard]] KeyRef parse_key_ref(std::string_view text);

/// Render one element's column name: ("x", 2) -> "x[2]".
[[nodiscard]] std::string element_key(std::string_view base, std::size_t i);

}  // namespace cbus::metrics
