#include "platform/synthetic_master.hpp"

#include <string>

#include "common/contracts.hpp"

namespace cbus::platform {

SyntheticMaster::SyntheticMaster(const SyntheticMasterConfig& config,
                                 bus::BusPort& bus)
    : sim::Component("synthetic-" + std::to_string(config.id)),
      config_(config),
      bus_(bus),
      gap_remaining_(config.initial_delay > 0 ? config.initial_delay
                                              : config.gap) {
  CBUS_EXPECTS(config.hold >= 1);
  bus_.connect_master(config_.id, *this);
}

void SyntheticMaster::tick(Cycle now) {
  if (done_ || in_flight_) return;

  if (gap_remaining_ > 0) {
    --gap_remaining_;
    return;
  }

  bus::BusRequest req;
  req.master = config_.id;
  req.kind = MemOpKind::kLoad;
  req.forced_hold = config_.hold;
  req.tag = issued_++;
  bus_.request(req, now);
  in_flight_ = true;
}

void SyntheticMaster::on_grant(const bus::BusRequest& /*request*/,
                               Cycle /*now*/, Cycle /*hold*/) {}

void SyntheticMaster::on_complete(const bus::BusRequest& /*request*/,
                                  Cycle now) {
  CBUS_ASSERT(in_flight_);
  in_flight_ = false;
  ++completed_;
  gap_remaining_ = config_.gap;
  if (config_.requests != 0 && completed_ >= config_.requests) {
    done_ = true;
    finish_cycle_ = now;
    return;
  }
  if (config_.instant_rerequest && config_.gap == 0) {
    // Keep REQ asserted: the fresh request takes part in the overlapped
    // re-arbitration of this very cycle.
    bus::BusRequest req;
    req.master = config_.id;
    req.kind = MemOpKind::kLoad;
    req.forced_hold = config_.hold;
    req.tag = issued_++;
    bus_.request(req, now);
    in_flight_ = true;
  }
}

}  // namespace cbus::platform
