#include "platform/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace cbus::platform {

namespace {

/// Setup keyword -> CBA config; resolved at the end of parsing so `cores`
/// and `maxl` may appear in any order.
enum class SetupKeyword { kRp, kCba, kHcba };

}  // namespace

const std::vector<std::string_view>& config_keys() {
  // Keep in sync with parse_config's dispatch below (a test pins the
  // two together by round-tripping every key).
  static const std::vector<std::string_view> keys = {
      "cores",    "arbiter", "setup",        "mode",
      "bus",      "dram",    "l1_bytes",     "l2_bytes",
      "store_buffer", "maxl", "tdma_slot",   "topology",
      "bridge_hold", "bridge_latency", "seg_stripe", "bridge_depth",
      "controller"};
  return keys;
}

const std::vector<std::string_view>& setup_names() {
  // Keep in sync with the `setup` branch of parse_config's dispatch.
  static const std::vector<std::string_view> names = {"rp", "cba", "hcba"};
  return names;
}

std::string config_trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

void scan_config_lines(
    std::istream& in,
    const std::function<void(const std::string&, const std::string&, int)>&
        handle) {
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string text = config_trim(line);
    if (text.empty()) continue;

    const auto eq = text.find('=');
    CBUS_EXPECTS_MSG(eq != std::string::npos,
                     "line " + std::to_string(line_no) +
                         ": expected 'key = value', got: " + text);
    const std::string key = config_trim(text.substr(0, eq));
    const std::string value = config_trim(text.substr(eq + 1));
    CBUS_EXPECTS_MSG(!key.empty() && !value.empty(),
                     "line " + std::to_string(line_no) +
                         ": empty key or value");
    handle(key, value, line_no);
  }
}

std::uint64_t parse_config_uint(const std::string& value,
                                const std::string& key, int line_no) {
  const std::string where = "line " + std::to_string(line_no) + ": ";
  // stoull silently wraps negatives ("-1" -> 2^64-1) and skips leading
  // whitespace, so the first character must be a digit.
  CBUS_EXPECTS_MSG(!value.empty() && std::isdigit(
                       static_cast<unsigned char>(value.front())),
                   where + "bad number for '" + key + "': " + value);
  std::size_t used = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value, &used, 0);
  } catch (const std::out_of_range&) {
    CBUS_EXPECTS_MSG(false, where + "number out of range for '" + key +
                                "': " + value);
  } catch (const std::invalid_argument&) {
    CBUS_EXPECTS_MSG(false,
                     where + "bad number for '" + key + "': " + value);
  }
  CBUS_EXPECTS_MSG(used == value.size(),
                   where + "trailing characters after number for '" + key +
                       "': " + value);
  return parsed;
}

std::uint32_t parse_config_u32(const std::string& value,
                               const std::string& key, int line_no) {
  const std::uint64_t parsed = parse_config_uint(value, key, line_no);
  CBUS_EXPECTS_MSG(parsed <= 0xFFFF'FFFFull,
                   "line " + std::to_string(line_no) +
                       ": number out of range for '" + key + "': " + value);
  return static_cast<std::uint32_t>(parsed);
}

namespace {

/// `topology =` dispatch over the bus::topology_forms() registry; parse
/// errors enumerate the registered forms (the `--list topologies` set),
/// mirroring the controller-key UX.
void parse_topology_value(const std::string& value, int line_no,
                          TopologyConfig& topo) {
  const std::string where = "line " + std::to_string(line_no) + ": ";
  topo.rows = 0;
  topo.cols = 0;
  if (value == "single") {
    topo.kind = bus::TopologyKind::kChain;
    topo.segments = 1;
    return;
  }
  const auto arg_after = [&](std::size_t prefix) {
    return parse_config_u32(value.substr(prefix), "topology", line_no);
  };
  if (value.rfind("segmented:", 0) == 0 || value.rfind("chain:", 0) == 0) {
    const std::uint32_t n =
        arg_after(value.rfind("chain:", 0) == 0 ? 6 : 10);
    CBUS_EXPECTS_MSG(n >= 2, where +
                                 "chain/segmented:<n> needs n >= 2 (use "
                                 "`topology = single` for one bus)");
    topo.kind = bus::TopologyKind::kChain;
    topo.segments = n;
  } else if (value.rfind("ring:", 0) == 0) {
    const std::uint32_t n = arg_after(5);
    CBUS_EXPECTS_MSG(n >= 3, where +
                                 "ring:<n> needs n >= 3 (ring:2 would "
                                 "duplicate the chain link; use chain:2)");
    topo.kind = bus::TopologyKind::kRing;
    topo.segments = n;
  } else if (value.rfind("mesh:", 0) == 0) {
    const std::string dims = value.substr(5);
    const auto x = dims.find('x');
    CBUS_EXPECTS_MSG(x != std::string::npos && x > 0 && x + 1 < dims.size(),
                     where + "mesh wants mesh:<rows>x<cols>, got: " + value);
    const std::uint32_t rows =
        parse_config_u32(dims.substr(0, x), "topology", line_no);
    const std::uint32_t cols =
        parse_config_u32(dims.substr(x + 1), "topology", line_no);
    CBUS_EXPECTS_MSG(rows >= 1 && cols >= 1 && rows * cols >= 2,
                     where + "mesh:<rows>x<cols> needs rows, cols >= 1 "
                             "and at least 2 segments");
    topo.kind = bus::TopologyKind::kMesh;
    topo.rows = rows;
    topo.cols = cols;
    topo.segments = rows * cols;
  } else {
    CBUS_EXPECTS_MSG(false, where + "unknown topology '" + value +
                                "' (known: " + bus::known_topology_list() +
                                "; see --list topologies)");
  }
}

}  // namespace

PlatformConfig parse_config(std::istream& in) {
  PlatformConfig cfg;
  SetupKeyword setup = SetupKeyword::kRp;
  bool wcet_mode = false;
  Cycle maxl = cfg.timings.max_latency();

  scan_config_lines(in, [&](const std::string& key,
                            const std::string& value, int line_no) {
    if (key == "cores") {
      cfg.n_cores = parse_config_u32(value, key, line_no);
    } else if (key == "arbiter") {
      cfg.arbiter = bus::parse_arbiter_kind(value);
    } else if (key == "setup") {
      if (value == "rp") {
        setup = SetupKeyword::kRp;
      } else if (value == "cba") {
        setup = SetupKeyword::kCba;
      } else if (value == "hcba") {
        setup = SetupKeyword::kHcba;
      } else {
        CBUS_EXPECTS_MSG(false, "unknown setup: " + value);
      }
    } else if (key == "mode") {
      if (value == "operation") {
        wcet_mode = false;
      } else if (value == "wcet") {
        wcet_mode = true;
      } else {
        CBUS_EXPECTS_MSG(false, "unknown mode: " + value);
      }
    } else if (key == "bus") {
      if (value == "non-split") {
        cfg.bus_protocol = BusProtocol::kNonSplit;
      } else if (value == "split") {
        cfg.bus_protocol = BusProtocol::kSplit;
      } else {
        CBUS_EXPECTS_MSG(false, "unknown bus protocol: " + value);
      }
    } else if (key == "dram") {
      if (value == "flat") {
        cfg.dram.reset();
      } else if (value == "banked") {
        cfg.dram = mem::DramConfig{};
      } else {
        CBUS_EXPECTS_MSG(false, "unknown dram model: " + value);
      }
    } else if (key == "l1_bytes") {
      cfg.core.dl1.size_bytes = parse_config_u32(value, key, line_no);
    } else if (key == "l2_bytes") {
      cfg.l2_partition.size_bytes = parse_config_u32(value, key, line_no);
    } else if (key == "store_buffer") {
      cfg.core.store_buffer_depth = parse_config_u32(value, key, line_no);
    } else if (key == "maxl") {
      // Drives the CBA budget sizing (resolved below) and the TDMA slot /
      // DRR quantum; values below the platform's real worst case need
      // allow_maxl_underestimate (the A2 ablation scenario).
      maxl = parse_config_uint(value, key, line_no);
      CBUS_EXPECTS_MSG(maxl >= 1, "maxl must be positive");
      cfg.tdma_slot = maxl;
      if (maxl < cfg.timings.max_latency()) {
        cfg.allow_maxl_underestimate = true;
      }
    } else if (key == "tdma_slot") {
      cfg.tdma_slot = parse_config_uint(value, key, line_no);
    } else if (key == "topology") {
      parse_topology_value(value, line_no, cfg.topology);
    } else if (key == "bridge_depth") {
      if (value == "unbounded") {
        cfg.topology.bridge_depth = 0;
      } else {
        cfg.topology.bridge_depth = parse_config_u32(value, key, line_no);
        CBUS_EXPECTS_MSG(cfg.topology.bridge_depth >= 1,
                         "line " + std::to_string(line_no) +
                             ": bridge_depth must be >= 1 (or 'unbounded' "
                             "for the default infinite queues)");
      }
    } else if (key == "bridge_hold") {
      cfg.topology.bridge_hold = parse_config_uint(value, key, line_no);
      CBUS_EXPECTS_MSG(cfg.topology.bridge_hold >= 1,
                       "line " + std::to_string(line_no) +
                           ": bridge_hold must be positive");
    } else if (key == "bridge_latency") {
      cfg.topology.bridge_latency = parse_config_uint(value, key, line_no);
    } else if (key == "controller") {
      // ctrl::parse_controller throws with the registered-name list on
      // junk (the `--list controllers` set); prefix the line number.
      try {
        cfg.controller = ctrl::parse_controller(value);
      } catch (const std::invalid_argument& err) {
        CBUS_EXPECTS_MSG(false, "line " + std::to_string(line_no) + ": " +
                                    err.what());
      }
    } else if (key == "seg_stripe") {
      const std::uint64_t stripe = parse_config_uint(value, key, line_no);
      CBUS_EXPECTS_MSG(stripe >= 4 && stripe <= 0x8000'0000ull &&
                           (stripe & (stripe - 1)) == 0,
                       "line " + std::to_string(line_no) +
                           ": seg_stripe must be a power of two in "
                           "[4, 2^31]: " + value);
      std::uint32_t log2 = 0;
      for (std::uint64_t v = stripe; v > 1; v >>= 1) ++log2;
      cfg.topology.stripe_log2 = log2;
    } else {
      CBUS_EXPECTS_MSG(false, "line " + std::to_string(line_no) +
                                  ": unknown key '" + key + "'");
    }
  });

  // Resolve the CBA setup against the final core count / MaxL.
  switch (setup) {
    case SetupKeyword::kRp:
      cfg.cba.reset();
      break;
    case SetupKeyword::kCba:
      cfg.cba = core::CbaConfig::homogeneous(cfg.n_cores, maxl);
      break;
    case SetupKeyword::kHcba: {
      std::vector<RationalRate> rates;
      rates.emplace_back(1, 2);
      CBUS_EXPECTS_MSG(cfg.n_cores >= 2, "hcba needs at least 2 cores");
      for (std::uint32_t m = 1; m < cfg.n_cores; ++m) {
        rates.emplace_back(1, 2 * (cfg.n_cores - 1));
      }
      cfg.cba = core::CbaConfig::heterogeneous(maxl, rates);
      break;
    }
  }
  if (wcet_mode) {
    cfg.mode = PlatformMode::kWcetEstimation;
    cfg.contender_hold = cfg.timings.max_latency();
    cfg.contender_policy = cfg.cba.has_value()
                               ? core::ContenderPolicy::kCompLatch
                               : core::ContenderPolicy::kAlwaysCompete;
  }
  cfg.validate();
  return cfg;
}

PlatformConfig load_config(const std::string& path) {
  std::ifstream in(path);
  CBUS_EXPECTS_MSG(in.good(), "cannot open config file: " + path);
  return parse_config(in);
}

void write_config(std::ostream& out, const PlatformConfig& config) {
  out << "# cbus platform config\n";
  out << "cores = " << config.n_cores << '\n';
  out << "arbiter = " << to_string(config.arbiter) << '\n';
  if (!config.cba.has_value()) {
    out << "setup = rp\n";
  } else if (config.cba->bandwidth_share(0) > 0.26) {
    out << "setup = hcba\n";
  } else {
    out << "setup = cba\n";
  }
  out << "mode = "
      << (config.mode == PlatformMode::kWcetEstimation ? "wcet"
                                                       : "operation")
      << '\n';
  out << "bus = " << to_string(config.bus_protocol) << '\n';
  out << "dram = " << (config.dram.has_value() ? "banked" : "flat") << '\n';
  out << "l1_bytes = " << config.core.dl1.size_bytes << '\n';
  out << "l2_bytes = " << config.l2_partition.size_bytes << '\n';
  out << "store_buffer = " << config.core.store_buffer_depth << '\n';
  out << "tdma_slot = " << config.tdma_slot << '\n';
  out << "topology = " << config.topology.config_string() << '\n';
  out << "bridge_hold = " << config.topology.bridge_hold << '\n';
  out << "bridge_latency = " << config.topology.bridge_latency << '\n';
  out << "seg_stripe = " << (1ull << config.topology.stripe_log2) << '\n';
  if (config.topology.bridge_depth > 0) {
    out << "bridge_depth = " << config.topology.bridge_depth << '\n';
  } else {
    out << "bridge_depth = unbounded\n";
  }
  out << "controller = " << ctrl::to_config_string(config.controller)
      << '\n';
}

}  // namespace cbus::platform
