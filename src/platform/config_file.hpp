// Plain-text platform configuration: `key = value` lines with `#`
// comments, mapping onto PlatformConfig. This is what lets scripts and
// the cbus-sim CLI drive parameter sweeps without recompiling.
//
//   # 8-core CBA platform on the split bus
//   cores       = 8
//   arbiter     = rp            # rr fifo priority lottery rp tdma drr
//   setup       = cba           # rp | cba | hcba
//   mode        = wcet          # operation | wcet
//   bus         = split         # non-split | split
//   dram        = banked        # flat | banked
//   l1_bytes    = 16384
//   l2_bytes    = 131072
//   store_buffer = 2
//   maxl        = 56
//   tdma_slot   = 56
//
// Unknown keys throw (catching typos beats silently ignoring them).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "platform/platform_config.hpp"

namespace cbus::platform {

/// Parse a configuration stream into a PlatformConfig (validated).
/// Throws std::invalid_argument with the offending line on errors.
[[nodiscard]] PlatformConfig parse_config(std::istream& in);

/// Strict unsigned-integer parse for `key = value` config lines, shared by
/// this parser and the experiment-file parser. Accepts decimal, 0x hex
/// and leading-0 octal (std::stoull base 0); rejects empty values,
/// signs, trailing garbage and out-of-range values with a message naming
/// `key` and `line_no`. Throws std::invalid_argument.
[[nodiscard]] std::uint64_t parse_config_uint(const std::string& value,
                                              const std::string& key,
                                              int line_no);

/// parse_config_uint narrowed to uint32 fields: additionally rejects
/// values above 2^32-1 instead of silently truncating them.
[[nodiscard]] std::uint32_t parse_config_u32(const std::string& value,
                                             const std::string& key,
                                             int line_no);

/// Strip leading/trailing spaces and tabs (the dialect's whitespace).
[[nodiscard]] std::string config_trim(const std::string& text);

/// Every key parse_config accepts, so layers on top (the experiment
/// parser) can recognise platform keys without re-listing them.
[[nodiscard]] const std::vector<std::string_view>& config_keys();

/// Every value the `setup` key accepts ("rp", "cba", "hcba") -- the
/// single source for CLI listings (`cbus_sim --list setups`).
[[nodiscard]] const std::vector<std::string_view>& setup_names();

/// Scan the `key = value` dialect shared by platform config files and
/// experiment files: strips `#` comments and whitespace, skips blank
/// lines, splits each remaining line on its first '=' and rejects
/// malformed or empty-sided lines naming the line number. Calls
/// `handle(key, value, line_no)` per line; exceptions propagate.
void scan_config_lines(
    std::istream& in,
    const std::function<void(const std::string& key,
                             const std::string& value, int line_no)>&
        handle);

/// Parse a configuration file by path.
[[nodiscard]] PlatformConfig load_config(const std::string& path);

/// Render a config back to text (round-trippable for the supported keys).
void write_config(std::ostream& out, const PlatformConfig& config);

}  // namespace cbus::platform
