// Plain-text platform configuration: `key = value` lines with `#`
// comments, mapping onto PlatformConfig. This is what lets scripts and
// the cbus-sim CLI drive parameter sweeps without recompiling.
//
//   # 8-core CBA platform on the split bus
//   cores       = 8
//   arbiter     = rp            # rr fifo priority lottery rp tdma drr
//   setup       = cba           # rp | cba | hcba
//   mode        = wcet          # operation | wcet
//   bus         = split         # non-split | split
//   dram        = banked        # flat | banked
//   l1_bytes    = 16384
//   l2_bytes    = 131072
//   store_buffer = 2
//   maxl        = 56
//   tdma_slot   = 56
//
// Unknown keys throw (catching typos beats silently ignoring them).
#pragma once

#include <iosfwd>
#include <string>

#include "platform/platform_config.hpp"

namespace cbus::platform {

/// Parse a configuration stream into a PlatformConfig (validated).
/// Throws std::invalid_argument with the offending line on errors.
[[nodiscard]] PlatformConfig parse_config(std::istream& in);

/// Parse a configuration file by path.
[[nodiscard]] PlatformConfig load_config(const std::string& path);

/// Render a config back to text (round-trippable for the supported keys).
void write_config(std::ostream& out, const PlatformConfig& config);

}  // namespace cbus::platform
