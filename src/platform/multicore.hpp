// Multicore: one fully-wired instance of the modelled SoC.
//
// Construction builds everything for ONE run: a fresh RandBank seeded with
// the run seed feeds the arbiter, every cache's placement/replacement and
// nothing else -- so a run is exactly reproducible and distinct subsystems
// consume independent randomness.
//
// Wiring and tick order (determinism contract):
//   TuA core (master 0) -> other real cores -> WCET-mode virtual
//   contenders -> the bus.
// Cores raise requests during their tick; the bus arbitrates the same
// cycle and starts transfers the next cycle (1-cycle arbitration).
//
// A Multicore is cheap to build; campaigns construct one per run instead
// of resetting state (no half-reset bugs by construction).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "bus/arbiter.hpp"
#include "bus/bus.hpp"
#include "bus/segmented.hpp"
#include "bus/split_bus.hpp"
#include "core/batch_engine.hpp"
#include "core/credit_filter.hpp"
#include "core/virtual_contender.hpp"
#include "ctrl/controller.hpp"
#include "cpu/in_order_core.hpp"
#include "cpu/op_stream.hpp"
#include "mem/partitioned_l2.hpp"
#include "metrics/record.hpp"
#include "platform/platform_config.hpp"
#include "rng/rand_bank.hpp"
#include "sim/batch_kernel.hpp"
#include "sim/kernel.hpp"

namespace cbus::platform {

/// Everything a campaign wants to know about one finished run.
///
/// `record` is the probe-extracted metric record (see
/// metrics/probes.hpp for the key catalog) -- the form campaigns
/// aggregate and experiment sinks render. The raw statistics structs
/// stay alongside for tests and tools that inspect a single run.
struct RunResult {
  bool tua_finished = false;
  Cycle tua_cycles = 0;  ///< execution time of the task under analysis
  cpu::CoreStats tua_stats;
  bus::BusStatistics bus_stats;
  std::uint64_t credit_underflows = 0;
  std::vector<Cycle> core_finish;  ///< per real core; 0 if unfinished
  metrics::Record record;          ///< standard per-run metrics
};

class Multicore {
 public:
  /// `tua` runs on master 0. `contenders` (possibly empty) run on masters
  /// 1..k as real cores. In WCET-estimation mode, masters without a real
  /// workload become Table-I virtual contenders; in operation mode they
  /// stay idle (isolation).
  ///
  /// Streams are NOT reset here -- campaigns reset them with per-run seeds
  /// before constructing the Multicore.
  ///
  /// `credit_lane` (optional, CBA setups only) places the credit counters
  /// in external storage -- a core::CreditSoA lane -- instead of an own
  /// allocation, so a batch of replicas keeps its credit state contiguous.
  /// Must outlive the machine; behaviour is storage-independent.
  ///
  /// `engine` (optional; requires a non-empty `credit_lane`, CBA, the
  /// non-split protocol and the single-bus topology) hands this machine's
  /// Table-I work to a batch credit engine as lane `engine_lane`: no
  /// per-lane VirtualContender components are built (the engine's
  /// contender bank replaces them) and the bus is ticked by the engine,
  /// not the kernel. Such a machine runs ONLY via attach() on a staged
  /// BatchKernel -- run()/run_all() assert.
  Multicore(const PlatformConfig& config, std::uint64_t seed,
            cpu::OpStream& tua,
            const std::vector<cpu::OpStream*>& contenders = {},
            core::CreditLaneView credit_lane = {},
            core::BatchCreditEngine* engine = nullptr,
            std::size_t engine_lane = 0);

  Multicore(const Multicore&) = delete;
  Multicore& operator=(const Multicore&) = delete;

  /// Run until the TuA finishes (or `max_cycles`); returns the result.
  RunResult run(Cycle max_cycles = 50'000'000);

  /// Run until every real core finishes (or `max_cycles`).
  RunResult run_all(Cycle max_cycles = 50'000'000);

  // --- batched execution (sim::BatchKernel) ------------------------------
  /// Register every component as lane `lane` of `batch`, in the exact
  /// tick order run() uses. The machine is then advanced externally.
  void attach(sim::BatchKernel& batch, std::size_t lane);

  /// run()'s stop predicate: the TuA (master 0) has finished.
  [[nodiscard]] bool tua_done() const noexcept {
    return cores_.front()->done();
  }

  /// Assemble the RunResult after external (batched) stepping. `fired` is
  /// the lane's run_until flag; `executed_cycles` the batch clock, used as
  /// the TuA time of unfinished runs (exactly run()'s kernel.now()).
  [[nodiscard]] RunResult harvest(bool fired, Cycle executed_cycles) const {
    return collect(fired, executed_cycles);
  }

  // --- introspection (tests, benches) -----------------------------------
  /// The non-split bus (null when the split protocol is configured).
  [[nodiscard]] bus::NonSplitBus& bus() noexcept {
    CBUS_EXPECTS(bus_ != nullptr);
    return *bus_;
  }
  /// The active bus port, protocol- and topology-independent.
  [[nodiscard]] bus::BusPort& bus_port() noexcept {
    if (bus_) return *bus_;
    if (seg_bus_) return *seg_bus_;
    return *split_bus_;
  }
  /// The segmented interconnect (null unless topology = segmented:<n>).
  [[nodiscard]] bus::SegmentedInterconnect* segmented() noexcept {
    return seg_bus_.get();
  }
  /// Segment `s`'s credit filter (CBA + segmented topology only).
  [[nodiscard]] core::CreditFilter* segment_filter(std::uint32_t s) {
    return s < seg_filters_.size() ? seg_filters_[s].get() : nullptr;
  }
  [[nodiscard]] mem::PartitionedL2& l2() noexcept { return *l2_; }
  [[nodiscard]] cpu::InOrderCore& core(std::size_t i) { return *cores_.at(i); }
  [[nodiscard]] std::size_t real_cores() const noexcept {
    return cores_.size();
  }
  [[nodiscard]] core::CreditFilter* credit_filter() noexcept {
    return filter_.get();
  }
  /// The credit controller over the Table-I increments (null without a
  /// CBA config or on the segmented topology). Static for
  /// `controller = static` -- present but never ticked.
  [[nodiscard]] ctrl::CreditController* controller() noexcept {
    return controller_.get();
  }
  /// Install a passive BusObserver on the active interconnect (the
  /// non-split bus or the segmented interconnect; the split protocol has
  /// no observer hooks, so this is a documented no-op there). Observers
  /// must not mutate state; the tracer relies on an instrumented run
  /// being bit-identical to a bare one.
  void set_bus_observer(bus::BusObserver* observer) noexcept {
    if (bus_) bus_->set_observer(observer);
    if (seg_bus_) seg_bus_->set_observer(observer);
  }
  [[nodiscard]] sim::Kernel& kernel() noexcept { return kernel_; }
  [[nodiscard]] const PlatformConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] RunResult collect(bool finished, Cycle executed) const;

  PlatformConfig config_;
  rng::RandBank bank_;
  sim::Kernel kernel_;

  std::unique_ptr<bus::Arbiter> arbiter_;
  std::unique_ptr<core::CreditFilter> filter_;
  std::unique_ptr<ctrl::CreditController> controller_;
  std::unique_ptr<mem::PartitionedL2> l2_;
  std::unique_ptr<bus::NonSplitBus> bus_;
  std::unique_ptr<bus::SplitBus> split_bus_;
  std::unique_ptr<bus::SegmentedInterconnect> seg_bus_;
  /// Per-segment CBA filters (segmented topology; empty otherwise).
  std::vector<std::unique_ptr<core::CreditFilter>> seg_filters_;
  std::vector<std::unique_ptr<cpu::InOrderCore>> cores_;
  std::vector<std::unique_ptr<core::VirtualContender>> virtual_contenders_;
  /// Non-null when this machine is a lane of a batch credit engine.
  core::BatchCreditEngine* engine_ = nullptr;
};

}  // namespace cbus::platform
