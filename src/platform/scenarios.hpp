// Campaign runners: the measurement protocols of the paper's evaluation.
//
// "for each benchmark we show average execution time results for 1,000
//  runs of each configuration" (§IV-B) -- a campaign re-runs the same
// workload many times, each run with a fresh seed (new random cache
// placements, new arbitration randomness), and folds every run's metric
// record (metrics/probes.hpp) into one Aggregator.
//
// One entry point covers the paper's three protocols:
//
//   CampaignSpec spec;
//   spec.protocol = CampaignSpec::Protocol::kMaxContention;
//   spec.config   = PlatformConfig::paper_wcet(BusSetup::kCba);
//   spec.tua      = &stream;
//   CampaignResult r = run_campaign(spec);
//   r.exec_time().mean();                       // TuA timing digest
//   r.aggregate.element_stats("fair.jain_occupancy").mean();
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "cpu/op_stream.hpp"
#include "metrics/aggregator.hpp"
#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "stats/summary.hpp"

namespace cbus::platform {

/// A fully-described measurement campaign: protocol, platform, workloads
/// and repetition plan.
///
/// Workloads come in one of two forms:
///  * shared streams (`tua`/`corunners`, non-owning): the campaign resets
///    them with per-run seeds and replays runs strictly one at a time;
///  * stream factories (`tua_factory`/`corunner_factories`): every run
///    gets its own stream instances, which unlocks the batched lockstep
///    path (`batch` replicas advance together under one
///    sim::BatchKernel) and threading across batches (`threads`).
/// A factory must build streams equivalent to the shared one -- same
/// constructor arguments -- and OpStream::reset must fully restart a
/// stream; under those contracts both forms and every (batch, threads)
/// combination produce bit-identical per-run records from the same
/// base_seed.
struct CampaignSpec {
  /// The paper's measurement protocols.
  enum class Protocol : std::uint8_t {
    kIsolation,      ///< TuA alone, operation mode (ISO columns)
    kMaxContention,  ///< Table-I virtual contenders; requires WCET mode
    kCorun,          ///< real co-running workloads on masters 1..k
  };

  /// Builds one fresh workload stream per call (batched path).
  using StreamFactory = std::function<std::unique_ptr<cpu::OpStream>()>;

  Protocol protocol = Protocol::kMaxContention;
  PlatformConfig config;

  cpu::OpStream* tua = nullptr;            ///< shared-stream form
  std::vector<cpu::OpStream*> corunners;   ///< kCorun only

  StreamFactory tua_factory;               ///< factory form (batched path)
  std::vector<StreamFactory> corunner_factories;  ///< kCorun only

  std::uint64_t base_seed = 0xC0FFEE;
  std::uint32_t runs = 100;
  Cycle max_cycles = 50'000'000;

  /// Replicas advanced in lockstep per batch (factory form only; 1 =
  /// one machine at a time, still via fresh per-run streams).
  std::uint32_t batch = 1;
  /// Worker threads across batches (factory form only; 0 = hardware).
  std::uint32_t threads = 1;

  /// Keep every run's raw sample series on the aggregate (O(runs)
  /// memory) -- required by CampaignResult::samples(), per-run CSV rows
  /// and MBPTA fit inputs. The default streams exactly-mergeable digests
  /// at memory independent of the run count.
  bool retain_raw = false;

  /// Observability hook: called once per run with the run's global index
  /// and its fully-built (but not yet started) machine, before the run
  /// executes -- obs::Timeline::attach plugs in here. The hook must not
  /// mutate simulation state (observers only); instrumented runs are
  /// bit-identical to bare ones. Because the hook may register extra
  /// kernel components on some machines, instrumented slices run their
  /// lanes in single-lane batches (lockstep lanes must be exact
  /// replicas) -- same bytes, minus the batching speedup. Null = not
  /// instrumented (the default, and the only mode campaign goldens are
  /// recorded in).
  std::function<void(std::uint32_t run, Multicore& machine)> instrument;
};

/// One run's outcome in slice order; `record` is meaningful only for
/// finished runs (unfinished ones are dropped from the aggregate, as in
/// the serial path).
struct RunOutcome {
  bool finished = false;
  metrics::Record record;
};

/// Per-campaign result: every finished run's record folded into one
/// aggregator, with convenience views for the ubiquitous quantities.
struct CampaignResult {
  metrics::Aggregator aggregate;
  std::uint32_t unfinished_runs = 0;

  /// TuA execution-time digest (the `tua.cycles` key; empty stats when no
  /// run finished).
  [[nodiscard]] stats::OnlineStats exec_time() const;

  /// Raw per-run TuA times in run order (the MBPTA input). Empty unless
  /// the campaign ran with CampaignSpec::retain_raw.
  [[nodiscard]] const std::vector<double>& samples() const;

  /// Bus busy-fraction digest (the `bus.utilization` key).
  [[nodiscard]] stats::OnlineStats bus_utilization() const;

  /// Total CBA underflow clamps across finished runs.
  [[nodiscard]] std::uint64_t credit_underflows() const;

  /// Per-key summary statistics (metrics::Aggregator::summarize).
  [[nodiscard]] metrics::Record summary(
      std::span<const double> percentiles = {}) const {
    return aggregate.summarize(percentiles);
  }
};

/// Run the campaign `spec` describes. Preconditions: exactly one of
/// spec.tua / spec.tua_factory is set (batch > 1 needs the factory form),
/// runs >= 1, corunners only with kCorun, WCET mode with kMaxContention
/// (kIsolation forces operation mode itself).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec);

/// Run the contiguous slice of runs [first_run, first_run +
/// outcomes.size()) as ONE lockstep batch, writing each run's outcome in
/// order. Factory form only. This is run_campaign's unit of work,
/// exposed so exp::run_experiment can schedule slices from many sweep
/// jobs onto one thread pool; folding outcomes in run order yields the
/// serial aggregate bit-identically.
void run_campaign_slice(const CampaignSpec& spec, std::uint32_t first_run,
                        std::span<RunOutcome> outcomes);

/// Per-run seed derivation (public so tests can reproduce single runs).
[[nodiscard]] std::uint64_t run_seed(std::uint64_t base_seed,
                                     std::uint32_t run_index);

/// Slowdown of `x` relative to a baseline campaign mean.
[[nodiscard]] double slowdown(const CampaignResult& x,
                              const CampaignResult& baseline);

}  // namespace cbus::platform
