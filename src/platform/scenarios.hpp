// Campaign runners: the measurement protocols of the paper's evaluation.
//
// "for each benchmark we show average execution time results for 1,000
//  runs of each configuration" (§IV-B) -- a campaign re-runs the same
// workload many times, each run with a fresh seed (new random cache
// placements, new arbitration randomness), and folds every run's metric
// record (metrics/probes.hpp) into one Aggregator.
//
// One entry point covers the paper's three protocols:
//
//   CampaignSpec spec;
//   spec.protocol = CampaignSpec::Protocol::kMaxContention;
//   spec.config   = PlatformConfig::paper_wcet(BusSetup::kCba);
//   spec.tua      = &stream;
//   CampaignResult r = run_campaign(spec);
//   r.exec_time().mean();                       // TuA timing digest
//   r.aggregate.element_stats("fair.jain_occupancy").mean();
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cpu/op_stream.hpp"
#include "metrics/aggregator.hpp"
#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "stats/summary.hpp"

namespace cbus::platform {

/// A fully-described measurement campaign: protocol, platform, workloads
/// and repetition plan. Streams are non-owning -- the campaign resets
/// them with per-run seeds, so one spec can be run repeatedly.
struct CampaignSpec {
  /// The paper's measurement protocols.
  enum class Protocol : std::uint8_t {
    kIsolation,      ///< TuA alone, operation mode (ISO columns)
    kMaxContention,  ///< Table-I virtual contenders; requires WCET mode
    kCorun,          ///< real co-running workloads on masters 1..k
  };

  Protocol protocol = Protocol::kMaxContention;
  PlatformConfig config;

  cpu::OpStream* tua = nullptr;            ///< required; runs on master 0
  std::vector<cpu::OpStream*> corunners;   ///< kCorun only

  std::uint64_t base_seed = 0xC0FFEE;
  std::uint32_t runs = 100;
  Cycle max_cycles = 50'000'000;
};

/// Per-campaign result: every finished run's record folded into one
/// aggregator, with convenience views for the ubiquitous quantities.
struct CampaignResult {
  metrics::Aggregator aggregate;
  std::uint32_t unfinished_runs = 0;

  /// TuA execution-time digest (the `tua.cycles` key; empty stats when no
  /// run finished).
  [[nodiscard]] const stats::OnlineStats& exec_time() const;

  /// Raw per-run TuA times in run order (the MBPTA input).
  [[nodiscard]] const std::vector<double>& samples() const;

  /// Bus busy-fraction digest (the `bus.utilization` key).
  [[nodiscard]] const stats::OnlineStats& bus_utilization() const;

  /// Total CBA underflow clamps across finished runs.
  [[nodiscard]] std::uint64_t credit_underflows() const;

  /// Per-key summary statistics (metrics::Aggregator::summarize).
  [[nodiscard]] metrics::Record summary(
      std::span<const double> percentiles = {}) const {
    return aggregate.summarize(percentiles);
  }
};

/// Run the campaign `spec` describes. Preconditions: spec.tua is set,
/// runs >= 1, corunners only with kCorun, WCET mode with kMaxContention
/// (kIsolation forces operation mode itself).
[[nodiscard]] CampaignResult run_campaign(const CampaignSpec& spec);

/// Per-run seed derivation (public so tests can reproduce single runs).
[[nodiscard]] std::uint64_t run_seed(std::uint64_t base_seed,
                                     std::uint32_t run_index);

/// Slowdown of `x` relative to a baseline campaign mean.
[[nodiscard]] double slowdown(const CampaignResult& x,
                              const CampaignResult& baseline);

// --- deprecated wrappers (one PR of grace; use run_campaign) -------------

/// Repetition plan of the pre-CampaignSpec entry points.
struct CampaignConfig {
  std::uint64_t base_seed = 0xC0FFEE;
  std::uint32_t runs = 100;
  Cycle max_cycles = 50'000'000;
};

/// DEPRECATED: run_campaign with Protocol::kIsolation.
[[nodiscard]] CampaignResult run_isolation(const PlatformConfig& config,
                                           cpu::OpStream& tua,
                                           const CampaignConfig& campaign);

/// DEPRECATED: run_campaign with Protocol::kMaxContention.
[[nodiscard]] CampaignResult run_max_contention(
    const PlatformConfig& config, cpu::OpStream& tua,
    const CampaignConfig& campaign);

/// DEPRECATED: run_campaign with Protocol::kCorun.
[[nodiscard]] CampaignResult run_with_corunners(
    const PlatformConfig& config, cpu::OpStream& tua,
    const std::vector<cpu::OpStream*>& corunners,
    const CampaignConfig& campaign);

}  // namespace cbus::platform
