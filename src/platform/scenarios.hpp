// Campaign runners: the measurement protocols of the paper's evaluation.
//
// "for each benchmark we show average execution time results for 1,000
//  runs of each configuration" (§IV-B) -- a campaign re-runs the same
// workload many times, each run with a fresh seed (new random cache
// placements, new arbitration randomness), and aggregates execution times.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/op_stream.hpp"
#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "stats/summary.hpp"

namespace cbus::platform {

struct CampaignConfig {
  std::uint64_t base_seed = 0xC0FFEE;
  std::uint32_t runs = 100;
  Cycle max_cycles = 50'000'000;
};

struct CampaignResult {
  stats::OnlineStats exec_time;       ///< TuA execution time per run
  std::vector<double> samples;        ///< raw per-run times (MBPTA input)
  stats::OnlineStats bus_utilization; ///< busy fraction per run
  std::uint64_t credit_underflows = 0;
  std::uint32_t unfinished_runs = 0;
};

/// Task under analysis alone on the platform (ISO columns of Figure 1).
[[nodiscard]] CampaignResult run_isolation(const PlatformConfig& config,
                                           cpu::OpStream& tua,
                                           const CampaignConfig& campaign);

/// Maximum-contention / WCET-estimation runs (CON columns of Figure 1):
/// the TuA on core 0 against N-1 Table-I virtual contenders. `config.mode`
/// must be kWcetEstimation (use PlatformConfig::paper_wcet).
[[nodiscard]] CampaignResult run_max_contention(
    const PlatformConfig& config, cpu::OpStream& tua,
    const CampaignConfig& campaign);

/// Operation-mode contention against real co-running workloads.
[[nodiscard]] CampaignResult run_with_corunners(
    const PlatformConfig& config, cpu::OpStream& tua,
    const std::vector<cpu::OpStream*>& corunners,
    const CampaignConfig& campaign);

/// Per-run seed derivation (public so tests can reproduce single runs).
[[nodiscard]] std::uint64_t run_seed(std::uint64_t base_seed,
                                     std::uint32_t run_index);

/// Slowdown of `x` relative to a baseline campaign mean.
[[nodiscard]] double slowdown(const CampaignResult& x,
                              const CampaignResult& baseline);

}  // namespace cbus::platform
