// Whole-platform configuration: the paper's 4-core LEON3 prototype and the
// three bus setups of its evaluation (RP baseline, CBA, H-CBA).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "bus/arbiter_factory.hpp"
#include "bus/segmented.hpp"
#include "cache/cache_config.hpp"
#include "core/cba_config.hpp"
#include "core/virtual_contender.hpp"
#include "cpu/core_config.hpp"
#include "ctrl/controller.hpp"
#include "mem/dram.hpp"
#include "mem/memory_timings.hpp"

namespace cbus::platform {

/// The three bus configurations of Figure 1.
enum class BusSetup : std::uint8_t {
  kRp,    ///< random permutations only (baseline)
  kCba,   ///< RP + homogeneous CBA
  kHcba,  ///< RP + heterogeneous CBA (TuA gets 50% of bandwidth)
};

[[nodiscard]] constexpr std::string_view to_string(BusSetup setup) noexcept {
  switch (setup) {
    case BusSetup::kRp: return "RP";
    case BusSetup::kCba: return "CBA";
    case BusSetup::kHcba: return "H-CBA";
  }
  return "?";
}

/// Bus protocol choice (paper baseline vs the §III-C split variant).
enum class BusProtocol : std::uint8_t {
  kNonSplit,  ///< the paper's AMBA AHB-style non-split bus
  kSplit,     ///< split transactions (atomics still hold the bus)
};

[[nodiscard]] constexpr std::string_view to_string(BusProtocol p) noexcept {
  switch (p) {
    case BusProtocol::kNonSplit: return "non-split";
    case BusProtocol::kSplit: return "split";
  }
  return "?";
}

/// Interconnect topology: the paper's single shared bus, or a graph of
/// bus segments joined by store-and-forward bridges
/// (bus::SegmentedInterconnect over a bus::Topology). Config-file
/// syntax: `topology = single | segmented:<n> | chain:<n> | ring:<n> |
/// mesh:<rows>x<cols>` (`segmented:` is the legacy spelling of
/// `chain:`) plus the per-segment keys `bridge_hold`, `bridge_latency`,
/// `seg_stripe` (route interleave in bytes, a power of two) and
/// `bridge_depth` (`<k>` bounds every bridge queue and turns on
/// backpressure; `unbounded` is the default). See docs/TOPOLOGIES.md.
struct TopologyConfig {
  bus::TopologyKind kind = bus::TopologyKind::kChain;
  std::uint32_t segments = 1;  ///< 1 = the single shared bus
  std::uint32_t rows = 0;      ///< mesh only (rows * cols == segments)
  std::uint32_t cols = 0;      ///< mesh only
  Cycle bridge_hold = 5;       ///< forward beat leaving a segment (cycles)
  Cycle bridge_latency = 2;    ///< store-and-forward delay per hop
  std::uint32_t stripe_log2 = 12;  ///< 4 KiB address interleave
  std::uint32_t bridge_depth = 0;  ///< bridge queue bound; 0 = unbounded

  [[nodiscard]] bool segmented() const noexcept { return segments > 1; }

  /// The bus::Topology instance this config describes (segmented() only).
  [[nodiscard]] bus::Topology graph() const;

  /// Bridge-ingress ports over the whole interconnect (= directed
  /// edges = sum of per-segment in-degrees); each consumes one
  /// credit-counter slot per lane.
  [[nodiscard]] std::uint32_t bridge_ports() const noexcept {
    if (!segmented()) return 0;
    switch (kind) {
      case bus::TopologyKind::kChain: return 2 * (segments - 1);
      case bus::TopologyKind::kRing: return 2 * segments;
      case bus::TopologyKind::kMesh:
        return 2 * (rows * (cols - 1) + cols * (rows - 1));
    }
    return 0;
  }

  /// Config-file value this topology parses back from.
  [[nodiscard]] std::string config_string() const;
};

struct PlatformConfig {
  std::uint32_t n_cores = 4;

  bus::ArbiterKind arbiter = bus::ArbiterKind::kRandomPermutation;
  bool overlapped_arbitration = true;
  BusProtocol bus_protocol = BusProtocol::kNonSplit;
  TopologyConfig topology;

  /// Optional open-page DRAM bank model (flat 28-cycle latency when unset).
  std::optional<mem::DramConfig> dram;

  /// Credit-based arbitration; disengaged when nullopt (pure baseline).
  std::optional<core::CbaConfig> cba;

  /// Credit-controller policy over the CBA Table-I increments
  /// (`controller = static | adaptive:<window>[:<gain>]`). Static is
  /// today's behavior; adaptive requires a CBA config on a single
  /// non-split bus with scale >= n_cores (the per-master MCR floor).
  ctrl::ControllerConfig controller;

  cpu::CoreConfig core{};

  /// One slice of the partitioned L2 (per core).
  cache::CacheConfig l2_partition{
      .size_bytes = 128 * 1024,
      .line_bytes = 32,
      .ways = 8,
      .placement = cache::PlacementKind::kRandomHash,
      .replacement = cache::ReplacementKind::kRandom,
  };

  mem::MemoryTimings timings{};

  PlatformMode mode = PlatformMode::kOperation;

  /// WCET-estimation mode parameters (paper §III-B/C, Table I).
  Cycle contender_hold = 56;  ///< contenders occupy MaxL cycles per grant
  core::ContenderPolicy contender_policy =
      core::ContenderPolicy::kCompLatch;
  bool tua_zero_initial_budget = true;  ///< TuA starts with zero budget

  /// TDMA slot width when the inner policy is TDMA.
  Cycle tdma_slot = 56;

  /// Allow a CBA MaxL smaller than the platform's longest transaction
  /// (credits can clamp at zero). Off by default; the MaxL-sensitivity
  /// ablation turns it on deliberately.
  bool allow_maxl_underestimate = false;

  /// The paper's platform with the chosen bus setup, in operation mode.
  [[nodiscard]] static PlatformConfig paper(BusSetup setup);

  /// Same platform switched to WCET-estimation (maximum-contention) mode.
  [[nodiscard]] static PlatformConfig paper_wcet(BusSetup setup);

  /// The bus::SegmentedConfig this platform's interconnect uses
  /// (meaningful when topology.segmented()).
  [[nodiscard]] bus::SegmentedConfig segmented_config() const;

  /// Credit-counter slots one machine consumes (SoA arena sizing): the
  /// core counters, plus one per bridge-ingress port when the topology
  /// is segmented (degree-dependent: chain 2(n-1), ring 2n, mesh
  /// 2(rows(cols-1) + cols(rows-1))).
  [[nodiscard]] std::uint32_t credit_slots() const noexcept {
    return n_cores + topology.bridge_ports();
  }

  void validate() const;
};

}  // namespace cbus::platform
