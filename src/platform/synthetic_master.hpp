// SyntheticMaster: a bus master issuing a fixed number of forced-hold
// requests separated by fixed think time. The direct embodiment of the
// paper's §II illustrative example ("one of them having 5-cycle requests
// and the other 45-cycle requests", "1,000 requests ... 6 cycles once
// granted"), free of cache noise so the measured numbers can be checked
// against the paper's closed-form arithmetic.
#pragma once

#include <cstdint>

#include "bus/interfaces.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace cbus::platform {

struct SyntheticMasterConfig {
  MasterId id = 0;
  Cycle hold = 5;            ///< bus occupancy per request
  std::uint64_t requests = 1000;  ///< 0 == unbounded (contender)
  std::uint32_t gap = 4;     ///< compute cycles between completion and next
  /// Idle cycles before the first request (e.g. to bank credit -- the
  /// history-dependence scenario of the budget-saturation ablation).
  std::uint32_t initial_delay = 0;
  /// With gap == 0, re-raise the next request in the same cycle the
  /// previous one completes (models a master that keeps REQ asserted,
  /// so it participates in the overlapped re-arbitration). Off by
  /// default: the one-cycle re-raise matches cores that need a cycle to
  /// turn the response around.
  bool instant_rerequest = false;
};

class SyntheticMaster final : public sim::Component, public bus::BusMaster {
 public:
  SyntheticMaster(const SyntheticMasterConfig& config, bus::BusPort& bus);

  void tick(Cycle now) override;
  void on_grant(const bus::BusRequest& request, Cycle now,
                Cycle hold) override;
  void on_complete(const bus::BusRequest& request, Cycle now) override;

  /// All requests issued and completed.
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] Cycle finish_cycle() const noexcept { return finish_cycle_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

 private:
  SyntheticMasterConfig config_;
  bus::BusPort& bus_;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint32_t gap_remaining_;
  bool in_flight_ = false;
  bool done_ = false;
  Cycle finish_cycle_ = 0;
};

}  // namespace cbus::platform
