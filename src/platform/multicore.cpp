#include "platform/multicore.hpp"

#include "common/contracts.hpp"
#include "metrics/probes.hpp"

namespace cbus::platform {

Multicore::Multicore(const PlatformConfig& config, std::uint64_t seed,
                     cpu::OpStream& tua,
                     const std::vector<cpu::OpStream*>& contenders,
                     std::span<SaturatingCounter> credit_lane)
    : config_(config), bank_(seed) {
  config_.validate();
  CBUS_EXPECTS_MSG(contenders.size() + 1 <= config_.n_cores,
                   "more workloads than cores");

  arbiter_ = bus::make_arbiter(config_.arbiter, config_.n_cores, bank_,
                               config_.tdma_slot);
  l2_ = std::make_unique<mem::PartitionedL2>(
      config_.n_cores, config_.l2_partition, config_.timings, bank_,
      config_.dram);

  const bus::BusConfig bus_cfg{config_.n_cores,
                               config_.overlapped_arbitration};
  if (config_.bus_protocol == BusProtocol::kSplit) {
    split_bus_ = std::make_unique<bus::SplitBus>(bus_cfg, *arbiter_, *l2_);
  } else {
    bus_ = std::make_unique<bus::NonSplitBus>(bus_cfg, *arbiter_, *l2_);
  }

  if (config_.cba.has_value()) {
    filter_ = credit_lane.empty()
                  ? std::make_unique<core::CreditFilter>(*config_.cba)
                  : std::make_unique<core::CreditFilter>(*config_.cba,
                                                         credit_lane);
    if (bus_) bus_->set_filter(filter_.get());
    if (split_bus_) split_bus_->set_filter(filter_.get());
    if (config_.mode == PlatformMode::kWcetEstimation &&
        config_.tua_zero_initial_budget) {
      // Measurements for the TuA are collected under worst conditions,
      // "setting its initial budget to zero" (paper §III-B).
      filter_->state().set_budget(0, 0);
    }
  }

  bus::BusPort& port = bus_port();
  // Master 0: the task under analysis.
  cores_.push_back(std::make_unique<cpu::InOrderCore>(0, config_.core, tua,
                                                      port, bank_));
  // Real contender cores.
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    CBUS_EXPECTS(contenders[i] != nullptr);
    cores_.push_back(std::make_unique<cpu::InOrderCore>(
        static_cast<MasterId>(i + 1), config_.core, *contenders[i], port,
        bank_));
  }

  // WCET-estimation mode: the remaining masters become Table-I contenders.
  if (config_.mode == PlatformMode::kWcetEstimation) {
    for (MasterId m = static_cast<MasterId>(cores_.size());
         m < config_.n_cores; ++m) {
      core::VirtualContenderConfig vc;
      vc.self = m;
      vc.tua = 0;
      vc.hold = config_.contender_hold;
      vc.policy = config_.contender_policy;
      virtual_contenders_.push_back(std::make_unique<core::VirtualContender>(
          vc, port, filter_ ? &filter_->state() : nullptr));
    }
  }

  // Tick order: cores, then contenders, then the bus (see header).
  for (auto& core_ptr : cores_) kernel_.add(*core_ptr);
  for (auto& vc : virtual_contenders_) kernel_.add(*vc);
  if (bus_) kernel_.add(*bus_);
  if (split_bus_) kernel_.add(*split_bus_);
}

RunResult Multicore::run(Cycle max_cycles) {
  const bool finished =
      kernel_.run_until([this]() { return tua_done(); }, max_cycles);
  return collect(finished, kernel_.now());
}

RunResult Multicore::run_all(Cycle max_cycles) {
  const bool finished = kernel_.run_until(
      [this]() {
        for (const auto& c : cores_) {
          if (!c->done()) return false;
        }
        return true;
      },
      max_cycles);
  return collect(finished, kernel_.now());
}

void Multicore::attach(sim::BatchKernel& batch, std::size_t lane) {
  for (sim::Component* component : kernel_.components()) {
    batch.add(lane, *component);
  }
}

RunResult Multicore::collect(bool finished, Cycle executed) const {
  RunResult result;
  result.tua_finished = finished && cores_.front()->done();
  result.tua_cycles = cores_.front()->done() ? cores_.front()->finish_cycle()
                                             : executed;
  result.tua_stats = cores_.front()->stats();
  result.bus_stats = bus_ ? bus_->statistics() : split_bus_->statistics();
  result.credit_underflows =
      filter_ ? filter_->state().underflow_clamps() : 0;
  result.core_finish.reserve(cores_.size());
  for (const auto& c : cores_) {
    result.core_finish.push_back(c->done() ? c->finish_cycle() : 0);
  }
  metrics::probe_tua(result.tua_cycles, result.tua_stats, result.record);
  metrics::probe_bus(result.bus_stats, result.record);
  metrics::probe_fairness(result.bus_stats, result.record);
  metrics::probe_credit(filter_.get(), result.record);
  return result;
}

}  // namespace cbus::platform
