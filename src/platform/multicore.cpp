#include "platform/multicore.hpp"

#include "common/contracts.hpp"
#include "metrics/probes.hpp"

namespace cbus::platform {

namespace {

/// Segment `cores`' credit config carved from the global one: core slots
/// keep their GLOBAL Table-I parameters (rates, caps, thresholds), so the
/// paper's per-core budget shapes each core on its home segment
/// unchanged. Bridge ingress slots are credit-exempt (full recovery,
/// zero threshold) because the traffic they carry is charged at the
/// SOURCE: the interconnect debits every foreign-hop occupancy against
/// the origin core's home budget (EligibilityFilter::on_remote_occupancy
/// -> CreditState::charge), so a budget bounds its core's occupancy of
/// the whole interconnect and gating the bridge slot too would charge
/// the same cycles twice and starve cross-segment flows.
[[nodiscard]] core::CbaConfig segment_cba(const core::CbaConfig& global,
                                          std::span<const MasterId> cores,
                                          std::uint32_t n_local) {
  core::CbaConfig cfg;
  cfg.n_masters = n_local;
  cfg.max_latency = global.max_latency;
  cfg.scale = global.scale;
  const std::uint64_t bridge_cap = global.scale * global.max_latency;
  cfg.increment.assign(n_local, global.scale);
  cfg.saturation.assign(n_local, bridge_cap);
  cfg.threshold.assign(n_local, 0);
  cfg.initial.assign(n_local, bridge_cap);
  for (std::size_t slot = 0; slot < cores.size(); ++slot) {
    const MasterId m = cores[slot];
    cfg.increment[slot] = global.increment[m];
    cfg.saturation[slot] = global.saturation[m];
    cfg.threshold[slot] = global.threshold[m];
    cfg.initial[slot] = global.initial[m];
  }
  cfg.validate();
  return cfg;
}

}  // namespace

Multicore::Multicore(const PlatformConfig& config, std::uint64_t seed,
                     cpu::OpStream& tua,
                     const std::vector<cpu::OpStream*>& contenders,
                     core::CreditLaneView credit_lane,
                     core::BatchCreditEngine* engine, std::size_t engine_lane)
    : config_(config), bank_(seed), engine_(engine) {
  config_.validate();
  CBUS_EXPECTS_MSG(contenders.size() + 1 <= config_.n_cores,
                   "more workloads than cores");
  CBUS_EXPECTS_MSG(engine == nullptr ||
                       (!credit_lane.empty() && config_.cba.has_value() &&
                        !config_.topology.segmented() &&
                        config_.bus_protocol == BusProtocol::kNonSplit),
                   "the batch credit engine serves CBA machines on the "
                   "single non-split bus, over a CreditSoA lane");

  // Bank-draw order is part of the reproducibility contract: the
  // single-bus arbiter draws its channel seeds BEFORE the L2 placement
  // seeds, exactly as it always has. The segmented path is new, so its
  // per-segment arbiters draw after the L2 (the interconnect needs the
  // slave reference at construction), in segment order.
  if (!config_.topology.segmented()) {
    arbiter_ = bus::make_arbiter(config_.arbiter, config_.n_cores, bank_,
                                 config_.tdma_slot);
  }
  l2_ = std::make_unique<mem::PartitionedL2>(
      config_.n_cores, config_.l2_partition, config_.timings, bank_,
      config_.dram);

  const bus::BusConfig bus_cfg{config_.n_cores,
                               config_.overlapped_arbitration};
  if (config_.topology.segmented()) {
    seg_bus_ = std::make_unique<bus::SegmentedInterconnect>(
        config_.segmented_config(), *l2_,
        [this](std::uint32_t n_local, std::uint32_t /*segment*/) {
          return bus::make_arbiter(config_.arbiter, n_local, bank_,
                                   config_.tdma_slot);
        });
  } else if (config_.bus_protocol == BusProtocol::kSplit) {
    split_bus_ = std::make_unique<bus::SplitBus>(bus_cfg, *arbiter_, *l2_);
  } else {
    bus_ = std::make_unique<bus::NonSplitBus>(bus_cfg, *arbiter_, *l2_);
  }

  if (config_.cba.has_value() && seg_bus_) {
    // Per-segment credit accounting: one CreditFilter per segment over
    // that segment's local slots, carved out of the (optional) external
    // SoA lane in segment order.
    CBUS_EXPECTS_MSG(credit_lane.empty() ||
                         credit_lane.slots >= config_.credit_slots(),
                     "credit lane smaller than the segmented slot count");
    std::size_t offset = 0;
    for (std::uint32_t s = 0; s < seg_bus_->n_segments(); ++s) {
      const std::uint32_t n_local = seg_bus_->n_local_masters(s);
      core::CbaConfig seg_cfg =
          segment_cba(*config_.cba, seg_bus_->segment_cores(s), n_local);
      auto filter =
          credit_lane.empty()
              ? std::make_unique<core::CreditFilter>(std::move(seg_cfg))
              : std::make_unique<core::CreditFilter>(
                    std::move(seg_cfg),
                    credit_lane.subview(offset, n_local));
      offset += n_local;
      seg_bus_->set_filter(s, filter.get());
      seg_filters_.push_back(std::move(filter));
    }
    if (config_.mode == PlatformMode::kWcetEstimation &&
        config_.tua_zero_initial_budget) {
      seg_filters_[seg_bus_->home_segment(0)]->state().set_budget(
          seg_bus_->local_slot(0), 0);
    }
  } else if (config_.cba.has_value()) {
    filter_ = credit_lane.empty()
                  ? std::make_unique<core::CreditFilter>(*config_.cba)
                  : std::make_unique<core::CreditFilter>(*config_.cba,
                                                         credit_lane);
    if (bus_) bus_->set_filter(filter_.get());
    if (split_bus_) split_bus_->set_filter(filter_.get());
    if (config_.mode == PlatformMode::kWcetEstimation &&
        config_.tua_zero_initial_budget) {
      // Measurements for the TuA are collected under worst conditions,
      // "setting its initial budget to zero" (paper §III-B).
      filter_->state().set_budget(0, 0);
    }
  }

  bus::BusPort& port = bus_port();
  // Master 0: the task under analysis.
  cores_.push_back(std::make_unique<cpu::InOrderCore>(0, config_.core, tua,
                                                      port, bank_));
  // Real contender cores.
  for (std::size_t i = 0; i < contenders.size(); ++i) {
    CBUS_EXPECTS(contenders[i] != nullptr);
    cores_.push_back(std::make_unique<cpu::InOrderCore>(
        static_cast<MasterId>(i + 1), config_.core, *contenders[i], port,
        bank_));
  }

  // WCET-estimation mode: the remaining masters become Table-I contenders.
  if (config_.mode == PlatformMode::kWcetEstimation) {
    for (MasterId m = static_cast<MasterId>(cores_.size());
         m < config_.n_cores; ++m) {
      core::VirtualContenderConfig vc;
      vc.self = m;
      vc.tua = 0;
      vc.hold = config_.contender_hold;
      vc.policy = config_.contender_policy;
      if (engine_ != nullptr) {
        // Batched fast path: the engine's contender bank drives this
        // slot's COMP latch vertically across lanes -- no component.
        engine_->add_contender(engine_lane, vc, *bus_);
        continue;
      }
      const core::CreditState* credits = nullptr;
      if (seg_bus_ && !seg_filters_.empty()) {
        // Segmented: the contender's BUDGi lives in its home segment's
        // credit state, at its local slot.
        vc.credit_slot = seg_bus_->local_slot(m);
        credits = &seg_filters_[seg_bus_->home_segment(m)]->state();
      } else if (filter_) {
        credits = &filter_->state();
      }
      virtual_contenders_.push_back(
          std::make_unique<core::VirtualContender>(vc, port, credits));
    }
  }

  // Credit controller over the single-bus credit state. The STATIC
  // controller exists for introspection but is never registered with the
  // kernel: `controller = static` machines tick the exact component list
  // they always have, keeping pre-controller campaigns byte-identical.
  if (filter_ != nullptr) {
    controller_ = ctrl::make_controller(
        config_.controller, filter_->state(),
        bus_ ? bus_->statistics() : split_bus_->statistics());
  }

  // Tick order: cores, then contenders, then the bus (see header), then
  // the adaptive controller (it reads the bus statistics the cycle just
  // produced and retunes increments for the next one).
  //
  // Engine mode keeps only the cores in the kernel: the engine stage
  // runs the contender bank, the phased bus tick and the vertical credit
  // update in that same order, and attach() registers the adaptive
  // controller as a post-stage component.
  for (auto& core_ptr : cores_) kernel_.add(*core_ptr);
  if (engine_ != nullptr) {
    engine_->set_lane(engine_lane, *bus_, filter_->state());
    return;
  }
  for (auto& vc : virtual_contenders_) kernel_.add(*vc);
  if (bus_) kernel_.add(*bus_);
  if (split_bus_) kernel_.add(*split_bus_);
  if (seg_bus_) kernel_.add(*seg_bus_);
  if (controller_ && config_.controller.adaptive()) {
    kernel_.add(*controller_);
  }
}

RunResult Multicore::run(Cycle max_cycles) {
  CBUS_EXPECTS_MSG(engine_ == nullptr,
                   "engine-mode machines run via attach() on a staged batch");
  const bool finished =
      kernel_.run_until([this]() { return tua_done(); }, max_cycles);
  return collect(finished, kernel_.now());
}

RunResult Multicore::run_all(Cycle max_cycles) {
  CBUS_EXPECTS_MSG(engine_ == nullptr,
                   "engine-mode machines run via attach() on a staged batch");
  const bool finished = kernel_.run_until(
      [this]() {
        for (const auto& c : cores_) {
          if (!c->done()) return false;
        }
        return true;
      },
      max_cycles);
  return collect(finished, kernel_.now());
}

void Multicore::attach(sim::BatchKernel& batch, std::size_t lane) {
  for (sim::Component* component : kernel_.components()) {
    batch.add(lane, *component);
  }
  if (engine_ != nullptr && controller_ != nullptr &&
      config_.controller.adaptive()) {
    batch.add_post(lane, *controller_);
  }
}

RunResult Multicore::collect(bool finished, Cycle executed) const {
  RunResult result;
  result.tua_finished = finished && cores_.front()->done();
  result.tua_cycles = cores_.front()->done() ? cores_.front()->finish_cycle()
                                             : executed;
  result.tua_stats = cores_.front()->stats();
  if (bus_) {
    result.bus_stats = bus_->statistics();
  } else if (seg_bus_) {
    result.bus_stats = seg_bus_->statistics();
  } else {
    result.bus_stats = split_bus_->statistics();
  }
  result.core_finish.reserve(cores_.size());
  for (const auto& c : cores_) {
    result.core_finish.push_back(c->done() ? c->finish_cycle() : 0);
  }
  metrics::probe_tua(result.tua_cycles, result.tua_stats, result.record);
  metrics::probe_bus(result.bus_stats, result.record);
  metrics::probe_fairness(result.bus_stats, result.record);
  if (seg_bus_) {
    std::uint64_t underflows = 0;
    std::vector<double> budgets;
    if (!seg_filters_.empty()) {
      for (const auto& f : seg_filters_) {
        underflows += f->state().underflow_clamps();
      }
      budgets.resize(config_.n_cores);
      for (MasterId m = 0; m < config_.n_cores; ++m) {
        budgets[m] = seg_filters_[seg_bus_->home_segment(m)]
                         ->state()
                         .budget_cycles(seg_bus_->local_slot(m));
      }
    }
    result.credit_underflows = underflows;
    metrics::probe_credit(underflows, budgets, result.record);
    metrics::probe_segments(seg_bus_.get(), result.bus_stats,
                            result.record);
  } else {
    result.credit_underflows =
        filter_ ? filter_->state().underflow_clamps() : 0;
    metrics::probe_credit(filter_.get(), result.record);
    metrics::probe_segments(nullptr, result.bus_stats, result.record);
  }
  // ctrl.* keys appear only for adaptive machines (probe_ctrl skips the
  // static controller), so static records keep the pre-controller shape.
  metrics::probe_ctrl(controller_.get(), result.record);
  return result;
}

}  // namespace cbus::platform
