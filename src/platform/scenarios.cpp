#include "platform/scenarios.hpp"

#include "common/contracts.hpp"
#include "rng/splitmix64.hpp"

namespace cbus::platform {

std::uint64_t run_seed(std::uint64_t base_seed, std::uint32_t run_index) {
  rng::SplitMix64 mix(base_seed);
  std::uint64_t seed = mix.next();
  for (std::uint32_t i = 0; i < run_index; ++i) seed = mix.next();
  return seed;
}

namespace {

[[nodiscard]] CampaignResult run_campaign(
    const PlatformConfig& config, cpu::OpStream& tua,
    const std::vector<cpu::OpStream*>& corunners,
    const CampaignConfig& campaign) {
  CBUS_EXPECTS(campaign.runs >= 1);
  CampaignResult result;
  result.samples.reserve(campaign.runs);

  rng::SplitMix64 mix(campaign.base_seed);
  for (std::uint32_t run = 0; run < campaign.runs; ++run) {
    const std::uint64_t seed = mix.next();
    rng::SplitMix64 stream_seeds(seed);
    tua.reset(stream_seeds.next());
    for (cpu::OpStream* s : corunners) s->reset(stream_seeds.next());

    Multicore machine(config, seed, tua, corunners);
    const RunResult r = machine.run(campaign.max_cycles);

    if (!r.tua_finished) {
      ++result.unfinished_runs;
      continue;
    }
    const auto t = static_cast<double>(r.tua_cycles);
    result.exec_time.add(t);
    result.samples.push_back(t);
    result.bus_utilization.add(
        r.bus_stats.total_cycles == 0
            ? 0.0
            : static_cast<double>(r.bus_stats.busy_cycles) /
                  static_cast<double>(r.bus_stats.total_cycles));
    result.credit_underflows += r.credit_underflows;
  }
  return result;
}

}  // namespace

CampaignResult run_isolation(const PlatformConfig& config, cpu::OpStream& tua,
                             const CampaignConfig& campaign) {
  PlatformConfig iso = config;
  iso.mode = PlatformMode::kOperation;  // no contender injection
  return run_campaign(iso, tua, {}, campaign);
}

CampaignResult run_max_contention(const PlatformConfig& config,
                                  cpu::OpStream& tua,
                                  const CampaignConfig& campaign) {
  CBUS_EXPECTS_MSG(config.mode == PlatformMode::kWcetEstimation,
                   "maximum contention is a WCET-estimation-mode protocol");
  return run_campaign(config, tua, {}, campaign);
}

CampaignResult run_with_corunners(const PlatformConfig& config,
                                  cpu::OpStream& tua,
                                  const std::vector<cpu::OpStream*>& corunners,
                                  const CampaignConfig& campaign) {
  return run_campaign(config, tua, corunners, campaign);
}

double slowdown(const CampaignResult& x, const CampaignResult& baseline) {
  CBUS_EXPECTS(baseline.exec_time.count() > 0 && x.exec_time.count() > 0);
  CBUS_EXPECTS(baseline.exec_time.mean() > 0.0);
  return x.exec_time.mean() / baseline.exec_time.mean();
}

}  // namespace cbus::platform
