#include "platform/scenarios.hpp"

#include "common/contracts.hpp"
#include "rng/splitmix64.hpp"

namespace cbus::platform {

std::uint64_t run_seed(std::uint64_t base_seed, std::uint32_t run_index) {
  rng::SplitMix64 mix(base_seed);
  std::uint64_t seed = mix.next();
  for (std::uint32_t i = 0; i < run_index; ++i) seed = mix.next();
  return seed;
}

const stats::OnlineStats& CampaignResult::exec_time() const {
  static const stats::OnlineStats kEmpty;
  return aggregate.has("tua.cycles") ? aggregate.element_stats("tua.cycles")
                                     : kEmpty;
}

const std::vector<double>& CampaignResult::samples() const {
  static const std::vector<double> kEmpty;
  return aggregate.has("tua.cycles")
             ? aggregate.element_samples("tua.cycles")
             : kEmpty;
}

const stats::OnlineStats& CampaignResult::bus_utilization() const {
  static const stats::OnlineStats kEmpty;
  return aggregate.has("bus.utilization")
             ? aggregate.element_stats("bus.utilization")
             : kEmpty;
}

std::uint64_t CampaignResult::credit_underflows() const {
  if (!aggregate.has("credit.underflows")) return 0;
  std::uint64_t total = 0;
  for (const double x : aggregate.element_samples("credit.underflows")) {
    total += static_cast<std::uint64_t>(x);
  }
  return total;
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  CBUS_EXPECTS_MSG(spec.tua != nullptr, "CampaignSpec.tua is required");
  CBUS_EXPECTS(spec.runs >= 1);

  PlatformConfig config = spec.config;
  switch (spec.protocol) {
    case CampaignSpec::Protocol::kIsolation:
      CBUS_EXPECTS_MSG(spec.corunners.empty(),
                       "isolation runs the TuA alone");
      config.mode = PlatformMode::kOperation;  // no contender injection
      break;
    case CampaignSpec::Protocol::kMaxContention:
      CBUS_EXPECTS_MSG(
          config.mode == PlatformMode::kWcetEstimation,
          "maximum contention is a WCET-estimation-mode protocol");
      CBUS_EXPECTS_MSG(spec.corunners.empty(),
                       "maximum contention uses Table-I virtual "
                       "contenders, not real co-runners");
      break;
    case CampaignSpec::Protocol::kCorun:
      break;  // the configured mode and co-runners apply as-is
  }

  CampaignResult result;
  rng::SplitMix64 mix(spec.base_seed);
  for (std::uint32_t run = 0; run < spec.runs; ++run) {
    const std::uint64_t seed = mix.next();
    rng::SplitMix64 stream_seeds(seed);
    spec.tua->reset(stream_seeds.next());
    for (cpu::OpStream* s : spec.corunners) s->reset(stream_seeds.next());

    Multicore machine(config, seed, *spec.tua, spec.corunners);
    const RunResult r = machine.run(spec.max_cycles);

    if (!r.tua_finished) {
      ++result.unfinished_runs;
      continue;
    }
    result.aggregate.add(r.record);
  }
  return result;
}

CampaignResult run_isolation(const PlatformConfig& config, cpu::OpStream& tua,
                             const CampaignConfig& campaign) {
  CampaignSpec spec;
  spec.protocol = CampaignSpec::Protocol::kIsolation;
  spec.config = config;
  spec.tua = &tua;
  spec.base_seed = campaign.base_seed;
  spec.runs = campaign.runs;
  spec.max_cycles = campaign.max_cycles;
  return run_campaign(spec);
}

CampaignResult run_max_contention(const PlatformConfig& config,
                                  cpu::OpStream& tua,
                                  const CampaignConfig& campaign) {
  CampaignSpec spec;
  spec.protocol = CampaignSpec::Protocol::kMaxContention;
  spec.config = config;
  spec.tua = &tua;
  spec.base_seed = campaign.base_seed;
  spec.runs = campaign.runs;
  spec.max_cycles = campaign.max_cycles;
  return run_campaign(spec);
}

CampaignResult run_with_corunners(const PlatformConfig& config,
                                  cpu::OpStream& tua,
                                  const std::vector<cpu::OpStream*>& corunners,
                                  const CampaignConfig& campaign) {
  CampaignSpec spec;
  spec.protocol = CampaignSpec::Protocol::kCorun;
  spec.config = config;
  spec.tua = &tua;
  spec.corunners = corunners;
  spec.base_seed = campaign.base_seed;
  spec.runs = campaign.runs;
  spec.max_cycles = campaign.max_cycles;
  return run_campaign(spec);
}

double slowdown(const CampaignResult& x, const CampaignResult& baseline) {
  CBUS_EXPECTS(baseline.exec_time().count() > 0 &&
               x.exec_time().count() > 0);
  CBUS_EXPECTS(baseline.exec_time().mean() > 0.0);
  return x.exec_time().mean() / baseline.exec_time().mean();
}

}  // namespace cbus::platform
