#include "platform/scenarios.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "core/batch_engine.hpp"
#include "core/credit_state.hpp"
#include "rng/splitmix64.hpp"
#include "sim/batch_kernel.hpp"
#include "vec/vec.hpp"

namespace cbus::platform {

namespace {

/// Validate the spec's protocol contracts and return the effective
/// platform config (kIsolation forces operation mode). Shared by the
/// shared-stream and batched paths so both enforce identical rules.
[[nodiscard]] PlatformConfig resolve_campaign_config(
    const CampaignSpec& spec) {
  CBUS_EXPECTS(spec.runs >= 1);
  const bool corun = spec.protocol == CampaignSpec::Protocol::kCorun;
  CBUS_EXPECTS_MSG(corun || spec.corunners.empty(),
                   spec.protocol == CampaignSpec::Protocol::kIsolation
                       ? "isolation runs the TuA alone"
                       : "maximum contention uses Table-I virtual "
                         "contenders, not real co-runners");
  CBUS_EXPECTS_MSG(corun || spec.corunner_factories.empty(),
                   "co-runner factories apply to the corun protocol only");

  PlatformConfig config = spec.config;
  switch (spec.protocol) {
    case CampaignSpec::Protocol::kIsolation:
      config.mode = PlatformMode::kOperation;  // no contender injection
      break;
    case CampaignSpec::Protocol::kMaxContention:
      CBUS_EXPECTS_MSG(
          config.mode == PlatformMode::kWcetEstimation,
          "maximum contention is a WCET-estimation-mode protocol");
      break;
    case CampaignSpec::Protocol::kCorun:
      break;  // the configured mode and co-runners apply as-is
  }
  return config;
}

}  // namespace

std::uint64_t run_seed(std::uint64_t base_seed, std::uint32_t run_index) {
  rng::SplitMix64 mix(base_seed);
  std::uint64_t seed = mix.next();
  for (std::uint32_t i = 0; i < run_index; ++i) seed = mix.next();
  return seed;
}

stats::OnlineStats CampaignResult::exec_time() const {
  return aggregate.has("tua.cycles") ? aggregate.element_stats("tua.cycles")
                                     : stats::OnlineStats{};
}

const std::vector<double>& CampaignResult::samples() const {
  static const std::vector<double> kEmpty;
  return aggregate.retains_raw() && aggregate.has("tua.cycles")
             ? aggregate.element_samples("tua.cycles")
             : kEmpty;
}

stats::OnlineStats CampaignResult::bus_utilization() const {
  return aggregate.has("bus.utilization")
             ? aggregate.element_stats("bus.utilization")
             : stats::OnlineStats{};
}

std::uint64_t CampaignResult::credit_underflows() const {
  if (!aggregate.has("credit.underflows")) return 0;
  // Underflow clamps are integer counts, so the exact sum is exact here.
  return static_cast<std::uint64_t>(
      aggregate.element_sum("credit.underflows"));
}

void run_campaign_slice(const CampaignSpec& spec, std::uint32_t first_run,
                        std::span<RunOutcome> outcomes) {
  const PlatformConfig config = resolve_campaign_config(spec);
  CBUS_EXPECTS_MSG(spec.tua_factory != nullptr,
                   "run_campaign_slice needs the stream-factory form");
  CBUS_EXPECTS(first_run + outcomes.size() <= spec.runs);
  if (outcomes.empty()) return;
  const std::size_t lanes = outcomes.size();

  // Per-run seeds: the run_seed(base_seed, i) sequence, i.e. exactly the
  // draws the serial loop takes -- skip to this slice's window.
  rng::SplitMix64 mix(spec.base_seed);
  for (std::uint32_t i = 0; i < first_run; ++i) (void)mix.next();

  // One contiguous credit arena for the whole batch (SoA across lanes).
  // Segmented topologies widen each lane by the bridge-port slots.
  std::unique_ptr<core::CreditSoA> credit;
  if (config.cba.has_value()) {
    credit = std::make_unique<core::CreditSoA>(lanes, *config.cba,
                                               config.credit_slots());
  }

  // Vectorized fast path (see core::BatchCreditEngine): CBA on the
  // single non-split bus, uninstrumented, masks fit one word. Everything
  // else keeps the classic lane-major stripes -- as does CBUS_SIMD=off,
  // which is how the dispatch-parity matrix pins the two paths
  // byte-for-byte against each other.
  std::unique_ptr<core::BatchCreditEngine> engine;
  // lanes >= 2: a single-lane stripe is the serial reference point -- the
  // vertical engine would only add per-cycle dispatch overhead there, so
  // batch 1 (and a trailing 1-lane tail stripe) keeps the classic path.
  if (!spec.instrument && credit != nullptr && !config.topology.segmented() &&
      config.bus_protocol == BusProtocol::kNonSplit && lanes >= 2 &&
      lanes <= 64 && vec::engine_enabled()) {
    engine = std::make_unique<core::BatchCreditEngine>(*credit, *config.cba,
                                                       lanes);
  }

  struct Lane {
    std::unique_ptr<cpu::OpStream> tua;
    std::vector<std::unique_ptr<cpu::OpStream>> corunners;
    std::unique_ptr<Multicore> machine;
  };
  std::vector<Lane> replicas(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    Lane& r = replicas[lane];
    // Same per-run derivation as the shared-stream path: machine seed,
    // then one stream seed for the TuA and one per co-runner.
    const std::uint64_t seed = mix.next();
    rng::SplitMix64 stream_seeds(seed);
    r.tua = spec.tua_factory();
    CBUS_EXPECTS_MSG(r.tua != nullptr, "tua_factory returned null");
    r.tua->reset(stream_seeds.next());
    std::vector<cpu::OpStream*> corunner_ptrs;
    corunner_ptrs.reserve(spec.corunner_factories.size());
    for (const CampaignSpec::StreamFactory& make : spec.corunner_factories) {
      r.corunners.push_back(make());
      CBUS_EXPECTS_MSG(r.corunners.back() != nullptr,
                       "corunner factory returned null");
      r.corunners.back()->reset(stream_seeds.next());
      corunner_ptrs.push_back(r.corunners.back().get());
    }
    r.machine = std::make_unique<Multicore>(
        config, seed, *r.tua, corunner_ptrs,
        credit ? credit->lane(lane) : core::CreditLaneView{}, engine.get(),
        lane);
  }

  if (spec.instrument) {
    // Instrumented campaigns run each lane in its own single-lane batch:
    // the hook may register extra kernel components (e.g. a tracer) on
    // SOME machines, and lockstep lanes must be exact replicas (equal
    // component counts). The lockstep-equivalence contract makes the
    // outcome bit-identical either way; instrumentation only costs the
    // batching speedup, never determinism.
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      Lane& r = replicas[lane];
      spec.instrument(first_run + static_cast<std::uint32_t>(lane),
                      *r.machine);
      sim::BatchKernel single(1, sim::BatchKernel::kCampaignStripe);
      r.machine->attach(single, 0);
      const std::vector<bool> fired = single.run_until(
          [&](std::size_t) { return r.machine->tua_done(); },
          spec.max_cycles);
      RunResult run = r.machine->harvest(fired[0], single.now());
      outcomes[lane].finished = run.tua_finished;
      outcomes[lane].record = std::move(run.record);
    }
    return;
  }

  sim::BatchKernel batch(lanes, sim::BatchKernel::kCampaignStripe);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    replicas[lane].machine->attach(batch, lane);
  }
  if (engine != nullptr) batch.set_stage(*engine);

  const std::vector<bool> fired = batch.run_until(
      [&](std::size_t lane) { return replicas[lane].machine->tua_done(); },
      spec.max_cycles);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    RunResult r = replicas[lane].machine->harvest(fired[lane], batch.now());
    outcomes[lane].finished = r.tua_finished;
    outcomes[lane].record = std::move(r.record);
  }
}

CampaignResult run_campaign(const CampaignSpec& spec) {
  CBUS_EXPECTS_MSG(
      (spec.tua != nullptr) != (spec.tua_factory != nullptr),
      "set exactly one of CampaignSpec.tua and CampaignSpec.tua_factory");

  if (spec.tua_factory == nullptr) {
    // Shared-stream form: strictly one run at a time (the streams are
    // shared state), the original replay loop.
    CBUS_EXPECTS_MSG(spec.batch <= 1 && spec.threads <= 1,
                     "batched/threaded campaigns need the stream-factory "
                     "form (CampaignSpec.tua_factory)");
    const PlatformConfig config = resolve_campaign_config(spec);
    CampaignResult result;
    result.aggregate = metrics::Aggregator(
        metrics::Aggregator::Options{.retain_raw = spec.retain_raw});
    rng::SplitMix64 mix(spec.base_seed);
    for (std::uint32_t run = 0; run < spec.runs; ++run) {
      const std::uint64_t seed = mix.next();
      rng::SplitMix64 stream_seeds(seed);
      spec.tua->reset(stream_seeds.next());
      for (cpu::OpStream* s : spec.corunners) s->reset(stream_seeds.next());

      Multicore machine(config, seed, *spec.tua, spec.corunners);
      if (spec.instrument) spec.instrument(run, machine);
      const RunResult r = machine.run(spec.max_cycles);

      if (!r.tua_finished) {
        ++result.unfinished_runs;
        continue;
      }
      result.aggregate.add(r.record);
    }
    return result;
  }

  // Factory form: partition the runs into contiguous lockstep slices and
  // execute them (optionally across threads). In the default streaming
  // mode every slice folds its outcomes into a local digest immediately
  // and merges it into the total -- exact mergeability makes the merge
  // order irrelevant and peak live Records stay O(batch * threads). With
  // retain_raw the per-run series must keep run order, so all outcomes
  // are materialized and folded serially, as before.
  CBUS_EXPECTS_MSG(spec.corunners.empty(),
                   "give corunner_factories (not shared corunners) with "
                   "tua_factory");
  (void)resolve_campaign_config(spec);  // validate before spawning workers
  const std::uint32_t batch = std::max<std::uint32_t>(1, spec.batch);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slices;
  for (std::uint32_t first = 0; first < spec.runs; first += batch) {
    slices.emplace_back(first, std::min(batch, spec.runs - first));
  }

  std::uint32_t threads = spec.threads != 0
                              ? spec.threads
                              : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<std::uint32_t>(
      std::min<std::size_t>(threads, slices.size()));

  std::vector<RunOutcome> outcomes(spec.retain_raw ? spec.runs : 0);
  metrics::Aggregator streamed;
  std::uint32_t streamed_unfinished = 0;
  std::mutex fold_mutex;

  const auto run_slice = [&](std::size_t s) {
    const auto [first, count] = slices[s];
    if (spec.retain_raw) {
      run_campaign_slice(
          spec, first,
          std::span<RunOutcome>(outcomes).subspan(first, count));
      return;
    }
    std::vector<RunOutcome> local(count);
    run_campaign_slice(spec, first, local);
    metrics::Aggregator fold;
    std::uint32_t unfinished = 0;
    for (const RunOutcome& outcome : local) {
      if (!outcome.finished) {
        ++unfinished;
        continue;
      }
      fold.add(outcome.record);
    }
    const std::lock_guard<std::mutex> lock(fold_mutex);
    streamed.merge(fold);
    streamed_unfinished += unfinished;
  };
  if (threads <= 1) {
    for (std::size_t s = 0; s < slices.size(); ++s) run_slice(s);
  } else {
    // Workers capture per-slice exceptions; the lowest-indexed one is
    // rethrown after the join, so failures are thread-count-independent.
    std::vector<std::exception_ptr> errors(slices.size());
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
      while (true) {
        const std::size_t s = next.fetch_add(1);
        if (s >= slices.size()) return;
        try {
          run_slice(s);
        } catch (...) {
          errors[s] = std::current_exception();
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  CampaignResult result;
  if (!spec.retain_raw) {
    result.aggregate = std::move(streamed);
    result.unfinished_runs = streamed_unfinished;
    return result;
  }
  result.aggregate = metrics::Aggregator(
      metrics::Aggregator::Options{.retain_raw = true});
  for (RunOutcome& outcome : outcomes) {
    if (!outcome.finished) {
      ++result.unfinished_runs;
      continue;
    }
    result.aggregate.add(outcome.record);
  }
  return result;
}

double slowdown(const CampaignResult& x, const CampaignResult& baseline) {
  CBUS_EXPECTS(baseline.exec_time().count() > 0 &&
               x.exec_time().count() > 0);
  CBUS_EXPECTS(baseline.exec_time().mean() > 0.0);
  return x.exec_time().mean() / baseline.exec_time().mean();
}

}  // namespace cbus::platform
