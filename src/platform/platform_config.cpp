#include "platform/platform_config.hpp"

#include "common/contracts.hpp"

namespace cbus::platform {

PlatformConfig PlatformConfig::paper(BusSetup setup) {
  PlatformConfig cfg;  // defaults above are the paper's platform
  switch (setup) {
    case BusSetup::kRp:
      cfg.cba.reset();
      break;
    case BusSetup::kCba:
      cfg.cba = core::CbaConfig::homogeneous(cfg.n_cores,
                                             cfg.timings.max_latency());
      break;
    case BusSetup::kHcba:
      cfg.cba = core::CbaConfig::paper_hcba(cfg.timings.max_latency());
      break;
  }
  cfg.validate();
  return cfg;
}

PlatformConfig PlatformConfig::paper_wcet(BusSetup setup) {
  PlatformConfig cfg = paper(setup);
  cfg.mode = PlatformMode::kWcetEstimation;
  cfg.contender_hold = cfg.timings.max_latency();
  // The RP baseline has no budgets: its maximum contention is contenders
  // that always compete. With CBA, contenders follow the COMP latch.
  cfg.contender_policy = setup == BusSetup::kRp
                             ? core::ContenderPolicy::kAlwaysCompete
                             : core::ContenderPolicy::kCompLatch;
  return cfg;
}

bus::Topology TopologyConfig::graph() const {
  switch (kind) {
    case bus::TopologyKind::kChain: return bus::Topology::chain(segments);
    case bus::TopologyKind::kRing: return bus::Topology::ring(segments);
    case bus::TopologyKind::kMesh: return bus::Topology::mesh(rows, cols);
  }
  CBUS_ASSERT(false);
  return bus::Topology::chain(1);
}

std::string TopologyConfig::config_string() const {
  if (!segmented()) return "single";
  switch (kind) {
    case bus::TopologyKind::kChain:
      // The legacy spelling, byte-stable for pre-topology specs.
      return "segmented:" + std::to_string(segments);
    case bus::TopologyKind::kRing:
      return "ring:" + std::to_string(segments);
    case bus::TopologyKind::kMesh:
      return "mesh:" + std::to_string(rows) + "x" + std::to_string(cols);
  }
  CBUS_ASSERT(false);
  return "single";
}

bus::SegmentedConfig PlatformConfig::segmented_config() const {
  bus::SegmentedConfig cfg;
  cfg.n_masters = n_cores;
  cfg.topology = topology.graph();
  cfg.overlapped_arbitration = overlapped_arbitration;
  cfg.bridge_hold = topology.bridge_hold;
  cfg.bridge_latency = topology.bridge_latency;
  cfg.stripe_log2 = topology.stripe_log2;
  cfg.bridge_depth = topology.bridge_depth;
  return cfg;
}

void PlatformConfig::validate() const {
  CBUS_EXPECTS(n_cores >= 1 && n_cores <= kMaxMasters);
  core.validate();
  l2_partition.validate();
  timings.validate();
  CBUS_EXPECTS(contender_hold >= 1);
  CBUS_EXPECTS(tdma_slot >= 1);
  if (topology.segmented()) {
    segmented_config().validate();
    CBUS_EXPECTS_MSG(bus_protocol == BusProtocol::kNonSplit,
                     "the segmented interconnect models the non-split "
                     "protocol only (bus = non-split)");
  }
  if (dram.has_value()) dram->validate();
  controller.validate();
  if (controller.adaptive()) {
    CBUS_EXPECTS_MSG(cba.has_value(),
                     "controller = adaptive needs a CBA setup (the "
                     "controller retunes Table-I increments; the RP "
                     "baseline has none)");
    CBUS_EXPECTS_MSG(!topology.segmented(),
                     "controller = adaptive runs on the single shared bus "
                     "only (per-segment feedback is future work)");
    CBUS_EXPECTS_MSG(cba->scale >= cba->n_masters,
                     "controller = adaptive needs scale >= n_cores so "
                     "every master keeps a 1-unit recovery floor");
  }
  if (cba.has_value()) {
    cba->validate();
    CBUS_EXPECTS_MSG(cba->n_masters == n_cores,
                     "CBA config sized for a different core count");
    CBUS_EXPECTS_MSG(allow_maxl_underestimate ||
                         cba->max_latency >= timings.max_latency(),
                     "MaxL below the platform's longest transaction; "
                     "credits would underflow (set allow_maxl_underestimate "
                     "if this is an intentional ablation)");
  }
}

}  // namespace cbus::platform
