// Tail-convergence diagnostics: is the pWCET estimate stable in the
// number of runs, or still drifting?
//
// MBPTA's central practical question is "did we run enough times?". The
// answer here is empirical: refit the Gumbel tail on growing prefixes of
// the sample series (n/2^k, ..., n/4, n/2, n) and watch the fitted scale
// and the deep-tail quantile settle. A campaign whose pWCET-vs-run-count
// curve has flattened (low scale dispersion, small last-step drift) has
// converged; one still moving needs more runs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mbpta/pwcet.hpp"
#include "metrics/record.hpp"

namespace cbus::mbpta {

/// One refit on a sample prefix.
struct ConvergencePoint {
  std::size_t runs = 0;    ///< prefix length the fit used
  double scale = 0.0;      ///< fitted Gumbel scale (beta)
  double pwcet = 0.0;      ///< quantile at the target exceedance
};

struct ConvergenceReport {
  /// Prefix refits in increasing run count; the last entry uses every
  /// sample.
  std::vector<ConvergencePoint> curve;
  double target_probability = 0.0;  ///< exceedance the curve tracks
  /// Coefficient of variation of the fitted scale over the curve's last
  /// (up to) three points: dispersion that survives doubling the runs.
  double scale_cv = 0.0;
  /// |pwcet(n) - pwcet(n/2)| / pwcet(n): the last doubling's relative
  /// movement of the deep-tail estimate.
  double pwcet_drift = 0.0;
  /// Three or more prefix points, scale_cv < 0.05 and pwcet_drift < 0.02.
  bool converged = false;

  /// The report as `mbpta.*` metric keys (`mbpta.converged`,
  /// `mbpta.scale_cv`, `mbpta.pwcet_drift`, `mbpta.target_log10p`, plus
  /// `mbpta.curve_runs` / `mbpta.curve_pwcet` vectors), so sinks render
  /// it like any other quantity.
  [[nodiscard]] metrics::Record record() const;
};

/// Refit the Gumbel tail on halving prefixes of `exec_times` (each at
/// least 2 * config.block_size and 16 samples long) and report stability
/// of the pWCET at `target_probability`. Requires enough samples for one
/// full-series analyze().
[[nodiscard]] ConvergenceReport tail_convergence(
    std::span<const double> exec_times, const MbptaConfig& config = {},
    double target_probability = 1e-15);

}  // namespace cbus::mbpta
