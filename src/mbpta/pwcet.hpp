// The end-to-end MBPTA analysis: execution-time samples in, pWCET curve
// and applicability diagnostics out.
#pragma once

#include <span>
#include <vector>

#include "mbpta/diagnostics.hpp"
#include "mbpta/gumbel.hpp"

namespace cbus::mbpta {

struct PwcetPoint {
  double exceedance_probability = 0.0;
  double wcet_estimate = 0.0;
};

struct MbptaConfig {
  std::size_t block_size = 10;  ///< block-maxima grouping
  /// Exceedance probabilities reported on the pWCET curve.
  std::vector<double> probabilities = {1e-3, 1e-6, 1e-9, 1e-12, 1e-15};
};

struct MbptaResult {
  GumbelFit fit;           ///< PWM fit on block maxima (primary)
  GumbelFit moments_fit;   ///< cross-check estimator
  Diagnostics diagnostics; ///< on the block maxima
  std::vector<PwcetPoint> curve;
  std::size_t maxima_used = 0;
  double observed_max = 0.0;
};

/// Run the full analysis. Requires at least 2 * block_size samples.
[[nodiscard]] MbptaResult analyze(std::span<const double> exec_times,
                                  const MbptaConfig& config = {});

}  // namespace cbus::mbpta
