// Gumbel (EVT type I) fitting for MBPTA (Cucu-Grosjean et al., ECRTS 2012).
//
// MBPTA collects execution times under analysis-time worst conditions,
// takes block maxima, fits a Gumbel distribution, and reads pWCET values
// from its tail. Two standard estimators are implemented (method of
// moments and probability-weighted moments); agreement between them is
// itself a useful sanity check on the fit.
#pragma once

#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace cbus::mbpta {

struct GumbelFit {
  double location = 0.0;  ///< mu
  double scale = 1.0;     ///< beta > 0

  /// CDF at x.
  [[nodiscard]] double cdf(double x) const;

  /// Quantile: the value with exceedance probability `p_exceed`
  /// (pWCET at 10^-k is quantile(1e-k)).
  [[nodiscard]] double quantile_exceedance(double p_exceed) const;
};

/// Euler-Mascheroni constant, used by both estimators.
inline constexpr double kEulerGamma = 0.5772156649015329;

/// Method-of-moments fit: beta = s*sqrt(6)/pi, mu = mean - gamma*beta.
[[nodiscard]] GumbelFit fit_moments(std::span<const double> sample);

/// Probability-weighted-moments fit (Hosking): generally lower bias for
/// the sample sizes MBPTA uses (hundreds of maxima).
[[nodiscard]] GumbelFit fit_pwm(std::span<const double> sample);

/// Split `sample` into consecutive blocks of `block_size` and keep each
/// block's maximum (trailing partial block is dropped).
[[nodiscard]] std::vector<double> block_maxima(std::span<const double> sample,
                                               std::size_t block_size);

}  // namespace cbus::mbpta
