#include "mbpta/pot.hpp"

#include <cmath>

#include "stats/summary.hpp"

namespace cbus::mbpta {

double PotFit::quantile_exceedance(double p) const {
  CBUS_EXPECTS(p > 0.0 && p < 1.0);
  CBUS_EXPECTS_MSG(p <= exceedance_rate,
                   "POT extrapolates beyond the threshold only; requested "
                   "probability is below it");
  return threshold + mean_excess * std::log(exceedance_rate / p);
}

PotFit fit_pot(std::span<const double> sample, double threshold_quantile) {
  CBUS_EXPECTS(sample.size() >= 20);
  CBUS_EXPECTS(threshold_quantile > 0.0 && threshold_quantile < 1.0);

  PotFit fit;
  fit.threshold = stats::quantile(sample, threshold_quantile);

  stats::OnlineStats excess;
  for (const double x : sample) {
    if (x > fit.threshold) excess.add(x - fit.threshold);
  }
  fit.exceedances = static_cast<std::size_t>(excess.count());
  CBUS_EXPECTS_MSG(fit.exceedances >= 5,
                   "too few exceedances above the chosen threshold");
  fit.mean_excess = excess.mean();
  if (fit.mean_excess <= 0.0) fit.mean_excess = 1e-9;  // degenerate tail
  fit.exceedance_rate = static_cast<double>(fit.exceedances) /
                        static_cast<double>(sample.size());
  return fit;
}

}  // namespace cbus::mbpta
