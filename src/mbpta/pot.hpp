// Peaks-over-threshold (POT) pWCET estimation with an exponential excess
// model -- the second standard MBPTA estimator next to block-maxima
// Gumbel. For execution-time distributions in the Gumbel domain of
// attraction, the excesses over a high threshold are asymptotically
// exponential (the CV test in diagnostics.hpp checks exactly that), and
//
//   pWCET(p) = u + mean_excess * ln(zeta_u / p)
//
// where u is the threshold and zeta_u the empirical exceedance rate.
#pragma once

#include <span>

#include "common/contracts.hpp"

namespace cbus::mbpta {

struct PotFit {
  double threshold = 0.0;      ///< u
  double mean_excess = 0.0;    ///< exponential scale of (x - u | x > u)
  double exceedance_rate = 0;  ///< zeta_u = P(X > u), empirical
  std::size_t exceedances = 0;

  /// Value with exceedance probability `p` (p < exceedance_rate).
  [[nodiscard]] double quantile_exceedance(double p) const;
};

/// Fit the exponential-POT model using the `threshold_quantile`-quantile
/// of the sample as threshold (e.g. 0.9). Requires enough exceedances to
/// estimate a mean (>= 5).
[[nodiscard]] PotFit fit_pot(std::span<const double> sample,
                             double threshold_quantile);

}  // namespace cbus::mbpta
