#include "mbpta/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "stats/summary.hpp"

namespace cbus::mbpta {

double ks_distance(std::span<const double> sample, const GumbelFit& fit) {
  CBUS_EXPECTS(!sample.empty());
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = fit.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::abs(model - lo), std::abs(hi - model)));
  }
  return d;
}

CvTestResult cv_test(std::span<const double> sample,
                     double threshold_quantile) {
  CBUS_EXPECTS(sample.size() >= 4);
  CBUS_EXPECTS(threshold_quantile > 0.0 && threshold_quantile < 1.0);
  CvTestResult result;
  result.threshold = stats::quantile(sample, threshold_quantile);

  stats::OnlineStats excess;
  for (const double x : sample) {
    if (x > result.threshold) excess.add(x - result.threshold);
  }
  result.exceedances = static_cast<std::size_t>(excess.count());
  if (result.exceedances < 2 || excess.mean() == 0.0) {
    // Too few exceedances to evaluate: report CV 1 but do not accept.
    result.cv = 1.0;
    result.accepted = false;
    return result;
  }
  result.cv = excess.stddev() / excess.mean();
  const double band =
      1.96 / std::sqrt(static_cast<double>(result.exceedances));
  result.accepted = std::abs(result.cv - 1.0) <= band;
  return result;
}

RunsTestResult runs_test(std::span<const double> sample) {
  CBUS_EXPECTS(sample.size() >= 4);
  const double median = stats::quantile(sample, 0.5);

  RunsTestResult result;
  std::size_t n_above = 0;
  std::size_t n_below = 0;
  int prev = 0;  // 0 = unset, +1 above, -1 below (ties skipped)
  for (const double x : sample) {
    if (x == median) continue;
    const int side = x > median ? 1 : -1;
    if (side == 1) {
      ++n_above;
    } else {
      ++n_below;
    }
    if (side != prev) {
      ++result.runs;
      prev = side;
    }
  }
  const double na = static_cast<double>(n_above);
  const double nb = static_cast<double>(n_below);
  const double n = na + nb;
  if (na == 0.0 || nb == 0.0 || n < 4.0) {
    result.accepted = false;
    return result;
  }
  result.expected_runs = 2.0 * na * nb / n + 1.0;
  const double var = (result.expected_runs - 1.0) *
                     (result.expected_runs - 2.0) / (n - 1.0);
  if (var <= 0.0) {
    result.accepted = false;
    return result;
  }
  result.z =
      (static_cast<double>(result.runs) - result.expected_runs) /
      std::sqrt(var);
  result.accepted = std::abs(result.z) < 1.96;
  return result;
}

Diagnostics diagnose(std::span<const double> sample,
                     const GumbelFit& moments_fit, const GumbelFit& pwm_fit) {
  Diagnostics d;
  d.cv = cv_test(sample, 0.5);
  d.runs = runs_test(sample);
  d.lag1_autocorrelation = stats::autocorrelation(sample, 1);
  d.ks_moments = ks_distance(sample, moments_fit);
  d.ks_pwm = ks_distance(sample, pwm_fit);
  return d;
}

}  // namespace cbus::mbpta
