// Applicability diagnostics for MBPTA: the method is only trustworthy when
// the measured execution times behave like i.i.d. draws and the tail is
// exponential (Gumbel domain of attraction).
#pragma once

#include <span>
#include <vector>

#include "mbpta/gumbel.hpp"

namespace cbus::mbpta {

/// Kolmogorov-Smirnov distance between the empirical CDF of `sample` and a
/// fitted Gumbel (goodness of fit; smaller is better).
[[nodiscard]] double ks_distance(std::span<const double> sample,
                                 const GumbelFit& fit);

/// Coefficient-of-variation exponentiality check on threshold excesses:
/// for an exponential tail, CV of (x - u | x > u) is 1. Returns the CV of
/// the excesses above the q-quantile threshold.
struct CvTestResult {
  double threshold = 0.0;
  std::size_t exceedances = 0;
  double cv = 0.0;
  /// |cv - 1| <= 1.96 / sqrt(n): cannot reject exponentiality at ~95%.
  bool accepted = false;
};
[[nodiscard]] CvTestResult cv_test(std::span<const double> sample,
                                   double threshold_quantile);

/// Wald-Wolfowitz runs test for independence (above/below median).
/// |z| < 1.96 is consistent with independence at ~95%.
struct RunsTestResult {
  std::size_t runs = 0;
  double expected_runs = 0.0;
  double z = 0.0;
  bool accepted = false;
};
[[nodiscard]] RunsTestResult runs_test(std::span<const double> sample);

/// All diagnostics bundled, as an analysis report.
struct Diagnostics {
  CvTestResult cv;
  RunsTestResult runs;
  double lag1_autocorrelation = 0.0;
  double ks_moments = 0.0;
  double ks_pwm = 0.0;
};
[[nodiscard]] Diagnostics diagnose(std::span<const double> sample,
                                   const GumbelFit& moments_fit,
                                   const GumbelFit& pwm_fit);

}  // namespace cbus::mbpta
