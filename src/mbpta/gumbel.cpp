#include "mbpta/gumbel.hpp"

#include <algorithm>
#include <cmath>

#include "stats/summary.hpp"

namespace cbus::mbpta {

double GumbelFit::cdf(double x) const {
  return std::exp(-std::exp(-(x - location) / scale));
}

double GumbelFit::quantile_exceedance(double p_exceed) const {
  CBUS_EXPECTS(p_exceed > 0.0 && p_exceed < 1.0);
  // CDF value 1 - p; for tiny p use log1p for accuracy.
  return location - scale * std::log(-std::log1p(-p_exceed));
}

GumbelFit fit_moments(std::span<const double> sample) {
  CBUS_EXPECTS(sample.size() >= 2);
  stats::OnlineStats s;
  for (const double x : sample) s.add(x);
  GumbelFit fit;
  fit.scale = s.stddev() * std::sqrt(6.0) / 3.14159265358979323846;
  if (fit.scale <= 0.0) fit.scale = 1e-9;  // degenerate (constant) sample
  fit.location = s.mean() - kEulerGamma * fit.scale;
  return fit;
}

GumbelFit fit_pwm(std::span<const double> sample) {
  CBUS_EXPECTS(sample.size() >= 2);
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double b0 = 0.0;
  double b1 = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    b0 += sorted[i];
    b1 += (static_cast<double>(i) / (n - 1.0)) * sorted[i];
  }
  b0 /= n;
  b1 /= n;
  GumbelFit fit;
  fit.scale = (2.0 * b1 - b0) / std::log(2.0);
  if (fit.scale <= 0.0) fit.scale = 1e-9;
  fit.location = b0 - kEulerGamma * fit.scale;
  return fit;
}

std::vector<double> block_maxima(std::span<const double> sample,
                                 std::size_t block_size) {
  CBUS_EXPECTS(block_size >= 1);
  std::vector<double> maxima;
  maxima.reserve(sample.size() / block_size);
  for (std::size_t start = 0; start + block_size <= sample.size();
       start += block_size) {
    double mx = sample[start];
    for (std::size_t i = 1; i < block_size; ++i) {
      mx = std::max(mx, sample[start + i]);
    }
    maxima.push_back(mx);
  }
  return maxima;
}

}  // namespace cbus::mbpta
