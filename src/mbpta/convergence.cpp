#include "mbpta/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "mbpta/gumbel.hpp"

namespace cbus::mbpta {

metrics::Record ConvergenceReport::record() const {
  metrics::Record out;
  out.set("mbpta.converged", converged ? 1.0 : 0.0);
  out.set("mbpta.scale_cv", scale_cv);
  out.set("mbpta.pwcet_drift", pwcet_drift);
  out.set("mbpta.target_log10p", std::log10(target_probability));
  std::vector<double> runs;
  std::vector<double> pwcets;
  runs.reserve(curve.size());
  pwcets.reserve(curve.size());
  for (const ConvergencePoint& point : curve) {
    runs.push_back(static_cast<double>(point.runs));
    pwcets.push_back(point.pwcet);
  }
  out.set("mbpta.curve_runs", std::move(runs));
  out.set("mbpta.curve_pwcet", std::move(pwcets));
  return out;
}

ConvergenceReport tail_convergence(std::span<const double> exec_times,
                                   const MbptaConfig& config,
                                   double target_probability) {
  CBUS_EXPECTS(config.block_size >= 1);
  CBUS_EXPECTS(target_probability > 0.0 && target_probability < 1.0);
  CBUS_EXPECTS_MSG(exec_times.size() >= 2 * config.block_size,
                   "not enough samples for block maxima");

  // Halving prefixes n, n/2, n/4, ... while a Gumbel fit stays
  // meaningful; evaluated smallest-first so the curve reads as growth.
  std::vector<std::size_t> sizes;
  const std::size_t floor_size = std::max<std::size_t>(
      2 * config.block_size, std::size_t{16});
  for (std::size_t n = exec_times.size(); n >= floor_size; n /= 2) {
    sizes.push_back(n);
  }
  std::reverse(sizes.begin(), sizes.end());

  ConvergenceReport report;
  report.target_probability = target_probability;
  report.curve.reserve(sizes.size());
  for (const std::size_t n : sizes) {
    const std::vector<double> maxima =
        block_maxima(exec_times.first(n), config.block_size);
    const GumbelFit fit = fit_pwm(maxima);
    report.curve.push_back(ConvergencePoint{
        n, fit.scale, fit.quantile_exceedance(target_probability)});
  }

  const std::size_t points = report.curve.size();
  const std::size_t tail = std::min<std::size_t>(points, 3);
  if (tail >= 2) {
    double mean = 0.0;
    for (std::size_t i = points - tail; i < points; ++i) {
      mean += report.curve[i].scale;
    }
    mean /= static_cast<double>(tail);
    double var = 0.0;
    for (std::size_t i = points - tail; i < points; ++i) {
      const double d = report.curve[i].scale - mean;
      var += d * d;
    }
    var /= static_cast<double>(tail - 1);
    report.scale_cv = mean > 0.0 ? std::sqrt(var) / mean : 0.0;

    const double last = report.curve[points - 1].pwcet;
    const double prev = report.curve[points - 2].pwcet;
    report.pwcet_drift =
        last != 0.0 ? std::abs(last - prev) / std::abs(last) : 0.0;
  }
  report.converged =
      points >= 3 && report.scale_cv < 0.05 && report.pwcet_drift < 0.02;
  return report;
}

}  // namespace cbus::mbpta
