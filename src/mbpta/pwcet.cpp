#include "mbpta/pwcet.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace cbus::mbpta {

MbptaResult analyze(std::span<const double> exec_times,
                    const MbptaConfig& config) {
  CBUS_EXPECTS(config.block_size >= 1);
  CBUS_EXPECTS_MSG(exec_times.size() >= 2 * config.block_size,
                   "not enough samples for block maxima");

  MbptaResult result;
  const std::vector<double> maxima =
      block_maxima(exec_times, config.block_size);
  result.maxima_used = maxima.size();
  result.fit = fit_pwm(maxima);
  result.moments_fit = fit_moments(maxima);
  result.diagnostics = diagnose(maxima, result.moments_fit, result.fit);
  result.observed_max =
      *std::max_element(exec_times.begin(), exec_times.end());

  result.curve.reserve(config.probabilities.size());
  for (const double p : config.probabilities) {
    result.curve.push_back(PwcetPoint{p, result.fit.quantile_exceedance(p)});
  }
  return result;
}

}  // namespace cbus::mbpta
