// A set-associative cache model with pluggable placement and replacement.
//
// Purely functional timing model: it tracks which lines are resident and
// dirty so the bus slave can derive transaction hold times (hit / miss /
// dirty-victim miss); it does not store data. Tags hold the full line
// address, which is required under random placement (the set index is not
// recoverable from the tag).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/placement.hpp"
#include "cache/replacement.hpp"
#include "common/types.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::cache {

/// What a lookup+allocate did; drives bus hold-time computation.
struct AccessResult {
  bool hit = false;
  bool filled = false;        ///< a line was allocated
  bool victim_valid = false;  ///< the allocation evicted a resident line
  bool victim_dirty = false;  ///< ... that was dirty (write-back needed)
  Addr victim_line = 0;       ///< line address of the evicted line
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class SetAssocCache {
 public:
  /// `bank` supplies the placement seed and the random-replacement channel;
  /// one cache == one independent consumer of platform randomness.
  SetAssocCache(const CacheConfig& config, rng::RandBank& bank,
                std::string_view name);

  /// Look up `addr`; on miss, optionally allocate (evicting a victim).
  /// `mark_dirty` sets the line's dirty bit on hit or fill (write-back
  /// caches); write-through caches pass false.
  AccessResult access(Addr addr, bool allocate_on_miss, bool mark_dirty);

  /// Lookup without any state change (no LRU update, no allocation).
  [[nodiscard]] bool probe(Addr addr) const;

  /// Drop a line if resident (e.g. invalidation traffic). Returns true if
  /// the line was present.
  bool invalidate(Addr addr);

  /// Invalidate everything and re-randomize placement for a new run.
  void reset(std::uint64_t placement_seed);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = CacheStats{}; }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] Addr line_of(Addr addr) const noexcept {
    return addr / config_.line_bytes;
  }

 private:
  struct Way {
    Addr line = 0;
    bool valid = false;
    bool dirty = false;
    WayMeta meta;
  };

  [[nodiscard]] std::uint32_t index_of(Addr line_addr) const noexcept;
  [[nodiscard]] Way* find(std::uint32_t set, Addr line_addr);
  [[nodiscard]] const Way* find(std::uint32_t set, Addr line_addr) const;

  CacheConfig config_;
  std::uint64_t placement_seed_;
  std::vector<Way> ways_;  ///< n_sets x ways, row-major
  std::unique_ptr<ReplacementPolicy> replacement_;
  std::uint64_t use_stamp_ = 0;
  CacheStats stats_;
};

}  // namespace cbus::cache
