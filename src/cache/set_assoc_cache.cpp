#include "cache/set_assoc_cache.hpp"

#include <string>

#include "common/contracts.hpp"

namespace cbus::cache {

SetAssocCache::SetAssocCache(const CacheConfig& config, rng::RandBank& bank,
                             std::string_view name)
    : config_(config), placement_seed_(bank.derive_seed()) {
  config_.validate();
  ways_.resize(static_cast<std::size_t>(config_.n_sets()) * config_.ways);
  switch (config_.replacement) {
    case ReplacementKind::kLru:
      replacement_ = std::make_unique<LruReplacement>();
      break;
    case ReplacementKind::kRandom:
      replacement_ = std::make_unique<RandomReplacement>(
          bank.open(std::string(name) + ".repl"));
      break;
  }
}

std::uint32_t SetAssocCache::index_of(Addr line_addr) const noexcept {
  return config_.placement == PlacementKind::kModulo
             ? modulo_index(line_addr, config_.n_sets())
             : random_hash_index(line_addr, placement_seed_,
                                 config_.n_sets());
}

SetAssocCache::Way* SetAssocCache::find(std::uint32_t set, Addr line_addr) {
  Way* base = &ways_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].line == line_addr) return &base[w];
  }
  return nullptr;
}

const SetAssocCache::Way* SetAssocCache::find(std::uint32_t set,
                                              Addr line_addr) const {
  const Way* base = &ways_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].line == line_addr) return &base[w];
  }
  return nullptr;
}

AccessResult SetAssocCache::access(Addr addr, bool allocate_on_miss,
                                   bool mark_dirty) {
  const Addr line = line_of(addr);
  const std::uint32_t set = index_of(line);
  ++stats_.accesses;

  AccessResult result;
  if (Way* way = find(set, line); way != nullptr) {
    ++stats_.hits;
    way->meta.last_use = ++use_stamp_;
    if (mark_dirty) way->dirty = true;
    result.hit = true;
    return result;
  }

  ++stats_.misses;
  if (!allocate_on_miss) return result;

  Way* base = &ways_[static_cast<std::size_t>(set) * config_.ways];
  Way* slot = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      slot = &base[w];
      break;
    }
  }
  if (slot == nullptr) {
    // All ways valid: consult the replacement policy.
    std::vector<WayMeta> metas(config_.ways);
    for (std::uint32_t w = 0; w < config_.ways; ++w) metas[w] = base[w].meta;
    const std::uint32_t victim = replacement_->victim(metas);
    CBUS_ASSERT(victim < config_.ways);
    slot = &base[victim];
    result.victim_valid = true;
    result.victim_dirty = slot->dirty;
    result.victim_line = slot->line;
    ++stats_.evictions;
    if (slot->dirty) ++stats_.dirty_evictions;
  }

  slot->line = line;
  slot->valid = true;
  slot->dirty = mark_dirty;
  slot->meta.valid = true;
  slot->meta.last_use = ++use_stamp_;
  result.filled = true;
  return result;
}

bool SetAssocCache::probe(Addr addr) const {
  const Addr line = line_of(addr);
  return find(index_of(line), line) != nullptr;
}

bool SetAssocCache::invalidate(Addr addr) {
  const Addr line = line_of(addr);
  if (Way* way = find(index_of(line), line); way != nullptr) {
    way->valid = false;
    way->dirty = false;
    way->meta = WayMeta{};
    return true;
  }
  return false;
}

void SetAssocCache::reset(std::uint64_t placement_seed) {
  for (auto& way : ways_) way = Way{};
  placement_seed_ = placement_seed;
  use_stamp_ = 0;
}

}  // namespace cbus::cache
