// The write(-through) buffer between a core's L1 and the bus.
//
// LEON3's data L1 is write-through with a small write buffer: stores retire
// into the buffer and drain to L2 over the bus in FIFO order, so the core
// only stalls when the buffer is full (or when a load miss must wait for
// the drain). Each drained store is a short (5-cycle L2 hit) bus
// transaction -- precisely the "frequent short requests" traffic class the
// paper's fairness argument is about.
#pragma once

#include <cstdint>
#include <deque>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace cbus::cache {

class StoreBuffer {
 public:
  explicit StoreBuffer(std::uint32_t depth) : depth_(depth) {
    CBUS_EXPECTS(depth >= 1);
  }

  [[nodiscard]] bool full() const noexcept { return fifo_.size() >= depth_; }
  [[nodiscard]] bool empty() const noexcept { return fifo_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return fifo_.size(); }
  [[nodiscard]] std::uint32_t depth() const noexcept { return depth_; }

  /// Enqueue a retired store. Precondition: !full().
  void push(Addr addr) {
    CBUS_EXPECTS(!full());
    fifo_.push_back(addr);
  }

  /// Address of the oldest store. Precondition: !empty().
  [[nodiscard]] Addr front() const {
    CBUS_EXPECTS(!empty());
    return fifo_.front();
  }

  /// Drop the oldest store once its bus transaction completed.
  void pop() {
    CBUS_EXPECTS(!empty());
    fifo_.pop_front();
  }

  /// Store-to-load forwarding check: is a store to this line buffered?
  [[nodiscard]] bool contains_line(Addr addr, std::uint32_t line_bytes) const {
    const Addr line = addr / line_bytes;
    for (const Addr a : fifo_) {
      if (a / line_bytes == line) return true;
    }
    return false;
  }

  void clear() noexcept { fifo_.clear(); }

 private:
  std::uint32_t depth_;
  std::deque<Addr> fifo_;
};

}  // namespace cbus::cache
