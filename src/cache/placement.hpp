// Placement functions: map a line address to a set index.
//
// Random placement implements the seeded parametric hash used by
// MBPTA-compliant caches (Hernandez et al., DASIA 2015): a per-run seed
// re-randomizes which addresses conflict, so layout-induced execution-time
// variation becomes observable across runs.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cbus::cache {

/// Conventional modulo indexing.
[[nodiscard]] std::uint32_t modulo_index(Addr line_addr,
                                         std::uint32_t n_sets) noexcept;

/// Seeded hash indexing: uniform over sets, deterministic per (seed, line).
[[nodiscard]] std::uint32_t random_hash_index(Addr line_addr,
                                              std::uint64_t seed,
                                              std::uint32_t n_sets) noexcept;

}  // namespace cbus::cache
