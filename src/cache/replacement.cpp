#include "cache/replacement.hpp"

#include "common/contracts.hpp"
#include "rng/permutation.hpp"

namespace cbus::cache {

std::uint32_t LruReplacement::victim(std::span<const WayMeta> ways) {
  CBUS_EXPECTS(!ways.empty());
  std::uint32_t oldest = 0;
  for (std::uint32_t w = 1; w < ways.size(); ++w) {
    if (ways[w].last_use < ways[oldest].last_use) oldest = w;
  }
  return oldest;
}

std::uint32_t RandomReplacement::victim(std::span<const WayMeta> ways) {
  CBUS_EXPECTS(!ways.empty());
  return rng::uniform_below(channel_,
                            static_cast<std::uint32_t>(ways.size()));
}

}  // namespace cbus::cache
