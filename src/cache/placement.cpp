#include "cache/placement.hpp"

namespace cbus::cache {

std::uint32_t modulo_index(Addr line_addr, std::uint32_t n_sets) noexcept {
  return static_cast<std::uint32_t>(line_addr) & (n_sets - 1);
}

std::uint32_t random_hash_index(Addr line_addr, std::uint64_t seed,
                                std::uint32_t n_sets) noexcept {
  // SplitMix-style finalizer over (line ^ seed): full-avalanche, so each
  // seed induces an (approximately) independent placement function.
  std::uint64_t z = (static_cast<std::uint64_t>(line_addr) + 1) ^ seed;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z) & (n_sets - 1);
}

}  // namespace cbus::cache
