// Replacement policies for one set: pick the victim way.
//
// Implemented as small strategy objects owned by the cache (not per set;
// they receive the per-way metadata they need). Random replacement draws
// from the cache's RandBank channel -- per-run reproducible, independent of
// every other randomness consumer.
#pragma once

#include <cstdint>
#include <span>

#include "cache/cache_config.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::cache {

/// Per-way state the policies can inspect.
struct WayMeta {
  bool valid = false;
  std::uint64_t last_use = 0;  ///< access stamp (monotonic), for LRU
};

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  /// Choose the victim way among `ways` (all valid; invalid ways are filled
  /// first by the cache itself).
  [[nodiscard]] virtual std::uint32_t victim(std::span<const WayMeta> ways) = 0;
};

class LruReplacement final : public ReplacementPolicy {
 public:
  [[nodiscard]] std::uint32_t victim(std::span<const WayMeta> ways) override;
};

class RandomReplacement final : public ReplacementPolicy {
 public:
  explicit RandomReplacement(rng::RandChannel channel)
      : channel_(std::move(channel)) {}
  [[nodiscard]] std::uint32_t victim(std::span<const WayMeta> ways) override;

 private:
  rng::RandChannel channel_;
};

}  // namespace cbus::cache
