// Cache geometry and policy configuration.
//
// The modelled platform (paper §IV-A) uses random-placement,
// random-replacement caches to enable MBPTA: cache layout conflicts become
// a random variable sampled per run instead of a fixed unknown.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/contracts.hpp"

namespace cbus::cache {

enum class PlacementKind : std::uint8_t {
  kModulo,      ///< conventional index = line mod sets
  kRandomHash,  ///< seeded parametric hash (LEON3-PTA style random placement)
};

enum class ReplacementKind : std::uint8_t {
  kLru,
  kRandom,  ///< MBPTA-friendly random replacement
};

[[nodiscard]] constexpr std::string_view to_string(PlacementKind k) noexcept {
  switch (k) {
    case PlacementKind::kModulo: return "modulo";
    case PlacementKind::kRandomHash: return "random-hash";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(ReplacementKind k) noexcept {
  switch (k) {
    case ReplacementKind::kLru: return "lru";
    case ReplacementKind::kRandom: return "random";
  }
  return "?";
}

struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
  PlacementKind placement = PlacementKind::kRandomHash;
  ReplacementKind replacement = ReplacementKind::kRandom;

  [[nodiscard]] std::uint32_t n_lines() const {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::uint32_t n_sets() const { return n_lines() / ways; }

  void validate() const {
    CBUS_EXPECTS(line_bytes >= 4 && (line_bytes & (line_bytes - 1)) == 0);
    CBUS_EXPECTS(ways >= 1);
    CBUS_EXPECTS(size_bytes >= line_bytes * ways);
    CBUS_EXPECTS_MSG(size_bytes % (line_bytes * ways) == 0,
                     "size must be a whole number of sets");
    const std::uint32_t sets = n_sets();
    CBUS_EXPECTS_MSG((sets & (sets - 1)) == 0,
                     "set count must be a power of two");
  }
};

}  // namespace cbus::cache
