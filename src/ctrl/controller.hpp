// ctrl: closed-loop retuning of the CBA Table-I credit parameters.
//
// H-CBA's increments are chosen offline for one expected load; the moment
// offered load shifts away from that configuration point, budget either
// idles (a biased master that stops demanding keeps its reserved share)
// or starves (a bursty master is pinned to a share sized for its quiet
// phase). The ABR explicit-rate literature solved the same problem on ATM
// switches: measure per-source demand over a moving window, compute a
// max-min fair share with the iterative fair-share calculation (Fahmy &
// Jain), and feed the result back as a rate. This subsystem brings that
// switch-side loop onto the bus arbiter:
//
//   demand  -- an obs::DemandWindow fed from bus statistics deltas (a
//              first-class sim input: independent of CBUS_OBS and of
//              BusObserver availability, so the controller can never
//              silently read zeros);
//   target  -- weighted max-min water-filling over the windowed demand
//              rates, with a 1-unit MCR floor per master so an idle
//              master can always ramp back up;
//   actuate -- per-epoch first-order mixing toward the target (`gain`),
//              a deadband so measurement ripple does not wiggle the
//              rates near saturation, and deterministic epoch-rotating
//              largest-remainder integerization so fractional fair
//              shares time-average out instead of parking on one master.
//
// Determinism contract: a controller is a plain sim::Component owned by
// its machine -- every batched lane constructs an identical replica, all
// state is per-instance, and no wall-clock or global state is read, so
// lockstep campaigns stay bit-identical to serial at any batch/thread
// count. The static controller is today's behavior behind the same
// interface: it never touches the credit state and is never ticked.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bus/bus.hpp"
#include "common/types.hpp"
#include "core/credit_state.hpp"
#include "obs/demand_window.hpp"
#include "sim/component.hpp"

namespace cbus::ctrl {

/// The registered controller policies (`controller = ...` platform key).
enum class ControllerKind : std::uint8_t {
  kStatic,    ///< Table-I parameters fixed at configuration time
  kAdaptive,  ///< explicit-rate feedback retunes increments per epoch
};

[[nodiscard]] std::string_view to_string(ControllerKind kind) noexcept;

/// The short name parse_controller accepts for each kind ("static",
/// "adaptive") -- the single source for CLI listings and usage text.
[[nodiscard]] std::string_view short_name(ControllerKind kind) noexcept;

/// Every controller kind, in declaration order (`--list controllers`).
[[nodiscard]] std::span<const ControllerKind> all_controller_kinds() noexcept;

/// Space-joined short names of every registered controller, for error
/// messages and usage text (the `--list controllers` set on one line).
[[nodiscard]] std::string known_controller_list();

/// One parsed `controller =` value.
struct ControllerConfig {
  ControllerKind kind = ControllerKind::kStatic;

  /// Epoch length and demand-window span, in cycles (adaptive only).
  Cycle window = 2048;

  /// Fraction of the rate-to-target gap closed per epoch, in (0, 1].
  double gain = 0.5;

  /// Relative hysteresis: a new target moves the rates only when some
  /// master's gap exceeds deadband * scale units (stability knob; fixed
  /// rather than parsed -- see docs/CONTROLLERS.md).
  double deadband = 0.05;

  [[nodiscard]] bool adaptive() const noexcept {
    return kind == ControllerKind::kAdaptive;
  }

  /// Throws std::invalid_argument on out-of-range window/gain/deadband.
  void validate() const;

  friend bool operator==(const ControllerConfig&,
                         const ControllerConfig&) = default;
};

/// Parse a `controller =` value: "static" or
/// "adaptive[:<window>[:<gain>]]" (window in cycles >= 16, gain in
/// (0, 1]). Throws std::invalid_argument on junk; the message lists
/// every registered name, matching `cbus_sim --list controllers`.
[[nodiscard]] ControllerConfig parse_controller(std::string_view text);

/// Render a config back to the exact `controller =` value syntax
/// parse_controller accepts (config-file round-tripping).
[[nodiscard]] std::string to_config_string(const ControllerConfig& config);

/// Counters every controller exposes to the ctrl.* metric probes.
struct ControllerStats {
  std::uint64_t epochs = 0;   ///< epoch boundaries processed
  std::uint64_t updates = 0;  ///< epochs whose rate vector changed
  /// End cycle of the epoch in which the rates last moved (0 = they
  /// never did): the measured convergence time of the feedback loop.
  Cycle convergence_cycles = 0;
  /// Final distance between the mixed rates and the latest computed
  /// target, summed over masters, as a fraction of the scale (0 at a
  /// fully converged fixed point, bounded by the deadband).
  double steady_error = 0.0;
};

/// The controller interface the platform wires per machine instance.
class CreditController : public sim::Component {
 public:
  explicit CreditController(std::string name)
      : sim::Component(std::move(name)) {}

  [[nodiscard]] virtual ControllerKind kind() const noexcept = 0;
  [[nodiscard]] virtual const ControllerStats& stats() const noexcept = 0;

  /// The per-master Table-I increments currently applied, in budget
  /// units per cycle (the configured values for the static controller).
  [[nodiscard]] virtual std::vector<std::uint64_t> increments() const = 0;
};

/// Today's behavior behind the interface: the configured increments are
/// never touched, the component is never registered with a kernel, and
/// campaigns with `controller = static` stay byte-identical to ones that
/// never mention the key.
class StaticController final : public CreditController {
 public:
  explicit StaticController(const core::CreditState& credits)
      : CreditController("ctrl.static"), credits_(&credits) {}

  void tick(Cycle /*now*/) override {}
  [[nodiscard]] ControllerKind kind() const noexcept override {
    return ControllerKind::kStatic;
  }
  [[nodiscard]] const ControllerStats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::vector<std::uint64_t> increments() const override {
    return credits_->config().increment;
  }

 private:
  const core::CreditState* credits_;
  ControllerStats stats_;  ///< all-zero: no epochs, no updates
};

/// Epoch-driven explicit-rate feedback over the credit increments.
///
/// Ticks after the bus every cycle; every window/16 cycles it samples
/// per-master demand (the delta of wait+hold cycles from `bus_stats`, a
/// direct "cycles this master wanted the bus" signal) into its
/// obs::DemandWindow, and every `window` cycles it runs one epoch:
/// water-fill, mix, integerize, write the increments back through
/// core::CreditState::set_increment.
class AdaptiveController final : public CreditController {
 public:
  /// `credits` and `bus_stats` must outlive the controller; `config`
  /// must satisfy config.adaptive(). Requires scale >= n_masters (each
  /// master keeps a 1-unit MCR floor).
  AdaptiveController(const ControllerConfig& config,
                     core::CreditState& credits,
                     const bus::BusStatistics& bus_stats);

  void tick(Cycle now) override;

  [[nodiscard]] ControllerKind kind() const noexcept override {
    return ControllerKind::kAdaptive;
  }
  [[nodiscard]] const ControllerStats& stats() const noexcept override {
    return stats_;
  }
  [[nodiscard]] std::vector<std::uint64_t> increments() const override;

  // --- introspection (tests, benches) -----------------------------------
  [[nodiscard]] const obs::DemandWindow& demand() const noexcept {
    return demand_;
  }
  /// The real-valued rate state the integer increments track.
  [[nodiscard]] std::span<const double> rates() const noexcept {
    return rates_;
  }
  /// The latest water-filled target, in units (empty before epoch 1).
  [[nodiscard]] std::span<const double> targets() const noexcept {
    return targets_;
  }

 private:
  void sample(Cycle now);
  void epoch(Cycle now);

  ControllerConfig config_;
  core::CreditState* credits_;
  const bus::BusStatistics* bus_stats_;

  obs::DemandWindow demand_;
  Cycle bucket_width_;
  Cycle sample_countdown_;
  std::uint32_t buckets_left_;

  /// Per-master wait+hold snapshot from the previous sample point.
  std::vector<Cycle> busy_snapshot_;
  std::vector<double> rates_;    ///< mixed rate state (units/cycle)
  std::vector<double> targets_;  ///< latest water-filled target (units)
  std::vector<std::uint64_t> applied_;  ///< integer increments in force
  std::uint64_t epoch_index_ = 0;
  ControllerStats stats_;
};

/// The Fahmy/Jain iterative fair share: weighted max-min water-filling
/// of `capacity` over `demand`. Masters whose demand is below their
/// weighted share of the remaining capacity are capped at their demand;
/// the rest split the leftover in proportion to `weight`. Returns one
/// share per master, summing to at most `capacity` (exactly `capacity`
/// when total demand reaches it). `weight` may be empty (uniform);
/// otherwise it must match `demand` in size with every entry > 0.
[[nodiscard]] std::vector<double> fair_shares(std::span<const double> demand,
                                              std::span<const double> weight,
                                              double capacity);

/// Build the configured controller over a machine's credit state and bus
/// statistics (both must outlive the controller).
[[nodiscard]] std::unique_ptr<CreditController> make_controller(
    const ControllerConfig& config, core::CreditState& credits,
    const bus::BusStatistics& bus_stats);

}  // namespace cbus::ctrl
