#include "ctrl/controller.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "common/contracts.hpp"

namespace cbus::ctrl {

namespace {

constexpr std::uint32_t kBuckets = 16;  ///< demand-window ring slots
constexpr Cycle kMinWindow = 16;        ///< one bucket per cycle at least
constexpr Cycle kMaxWindow = 1u << 30;
/// Every master keeps at least this recovery rate (the ABR minimum cell
/// rate): an idle master must stay able to raise demand the window can
/// then see.
constexpr std::uint64_t kMcr = 1;

// User-facing value errors throw plain invalid_argument (no contract
// macro prefix) so CLI and config-file diagnostics render verbatim.
[[noreturn]] void bad_value(std::string_view what, std::string_view text) {
  throw std::invalid_argument("bad controller " + std::string(what) + ": '" +
                              std::string(text) + "'");
}

[[nodiscard]] std::uint64_t parse_number(std::string_view text,
                                         std::string_view what) {
  if (text.empty() ||
      !std::isdigit(static_cast<unsigned char>(text.front()))) {
    bad_value(what, text);
  }
  std::size_t used = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(std::string(text), &used, 10);
  } catch (const std::exception&) {
    bad_value(what, text);
  }
  if (used != text.size()) bad_value(what, text);
  return value;
}

[[nodiscard]] double parse_gain(std::string_view text) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(std::string(text), &used);
  } catch (const std::exception&) {
    bad_value("gain", text);
  }
  if (used != text.size() || !std::isfinite(value)) bad_value("gain", text);
  return value;
}

}  // namespace

std::string_view to_string(ControllerKind kind) noexcept {
  switch (kind) {
    case ControllerKind::kStatic: return "static";
    case ControllerKind::kAdaptive: return "adaptive";
  }
  return "?";
}

std::string_view short_name(ControllerKind kind) noexcept {
  return to_string(kind);
}

std::span<const ControllerKind> all_controller_kinds() noexcept {
  static constexpr std::array<ControllerKind, 2> kKinds{
      ControllerKind::kStatic, ControllerKind::kAdaptive};
  return kKinds;
}

std::string known_controller_list() {
  std::string list;
  for (const ControllerKind kind : all_controller_kinds()) {
    if (!list.empty()) list += ' ';
    list += short_name(kind);
  }
  return list;
}

void ControllerConfig::validate() const {
  if (window < kMinWindow || window > kMaxWindow) {
    throw std::invalid_argument("controller window must be in [" +
                                std::to_string(kMinWindow) +
                                ", 2^30] cycles");
  }
  if (!(gain > 0.0 && gain <= 1.0)) {
    throw std::invalid_argument("controller gain must be in (0, 1]");
  }
  if (!(deadband >= 0.0 && deadband < 1.0)) {
    throw std::invalid_argument("controller deadband must be in [0, 1)");
  }
}

ControllerConfig parse_controller(std::string_view text) {
  ControllerConfig config;
  if (text == "static") return config;

  std::string_view head = text;
  std::string_view params;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    head = text.substr(0, colon);
    params = text.substr(colon + 1);
  }
  // A plain invalid_argument, not a contract macro: this is a
  // user-facing value error and renders verbatim in CLI/config
  // diagnostics, like the arbiter and setup parsers.
  if (head != "adaptive") {
    throw std::invalid_argument(
        "unknown controller '" + std::string(text) + "' (known: " +
        known_controller_list() + "; adaptive takes :<window>[:<gain>])");
  }
  config.kind = ControllerKind::kAdaptive;
  if (!params.empty()) {
    std::string_view window_text = params;
    if (const auto colon = params.find(':');
        colon != std::string_view::npos) {
      window_text = params.substr(0, colon);
      config.gain = parse_gain(params.substr(colon + 1));
    }
    config.window = parse_number(window_text, "window");
  }
  config.validate();
  return config;
}

std::string to_config_string(const ControllerConfig& config) {
  if (!config.adaptive()) return "static";
  std::string text = "adaptive:" + std::to_string(config.window);
  // Trim the gain like "%g" would so the value round-trips compactly.
  std::string gain = std::to_string(config.gain);
  gain.erase(gain.find_last_not_of('0') + 1);
  if (!gain.empty() && gain.back() == '.') gain.pop_back();
  return text + ':' + gain;
}

std::vector<double> fair_shares(std::span<const double> demand,
                                std::span<const double> weight,
                                double capacity) {
  CBUS_EXPECTS(capacity >= 0.0);
  CBUS_EXPECTS(weight.empty() || weight.size() == demand.size());
  const std::size_t n = demand.size();
  std::vector<double> share(n, 0.0);
  std::vector<bool> capped(n, false);
  double remaining = capacity;

  // Iterative fair share: repeatedly cap every master whose demand is
  // below its weighted split of the remaining capacity, then re-split
  // what is left among the rest. Each pass caps at least one master, so
  // the loop runs at most n times.
  for (std::size_t pass = 0; pass < n; ++pass) {
    double active_weight = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      if (!capped[m]) active_weight += weight.empty() ? 1.0 : weight[m];
    }
    if (active_weight <= 0.0) break;
    bool capped_one = false;
    for (std::size_t m = 0; m < n; ++m) {
      if (capped[m]) continue;
      const double w = weight.empty() ? 1.0 : weight[m];
      CBUS_EXPECTS_MSG(w > 0.0, "fair_shares weights must be positive");
      const double split = remaining * w / active_weight;
      if (demand[m] <= split) {
        share[m] = std::max(0.0, demand[m]);
        capped[m] = true;
        capped_one = true;
      }
    }
    if (!capped_one) {
      // Every remaining master demands at least its split: bottleneck
      // reached, hand each its weighted share of what is left.
      for (std::size_t m = 0; m < n; ++m) {
        if (!capped[m]) {
          share[m] = remaining * (weight.empty() ? 1.0 : weight[m]) /
                     active_weight;
        }
      }
      return share;
    }
    remaining = capacity;
    for (std::size_t m = 0; m < n; ++m) {
      if (capped[m]) remaining -= share[m];
    }
    remaining = std::max(0.0, remaining);
  }
  return share;
}

AdaptiveController::AdaptiveController(const ControllerConfig& config,
                                       core::CreditState& credits,
                                       const bus::BusStatistics& bus_stats)
    : CreditController("ctrl.adaptive"),
      config_(config),
      credits_(&credits),
      bus_stats_(&bus_stats),
      demand_(credits.config().n_masters, config.window, kBuckets) {
  CBUS_EXPECTS_MSG(config_.adaptive(),
                   "AdaptiveController needs an adaptive config");
  config_.validate();
  const core::CbaConfig& cba = credits_->config();
  CBUS_EXPECTS_MSG(cba.scale >= cba.n_masters * kMcr,
                   "controller = adaptive needs scale >= n_masters (every "
                   "master keeps a 1-unit recovery floor)");
  // DemandWindow rounds the window up to a bucket multiple; adopt its
  // geometry so samples land exactly one per bucket.
  config_.window = demand_.window();
  bucket_width_ = config_.window / kBuckets;
  sample_countdown_ = bucket_width_;
  buckets_left_ = kBuckets;
  busy_snapshot_.assign(cba.n_masters, 0);
  rates_.assign(cba.increment.begin(), cba.increment.end());
  applied_ = cba.increment;
}

std::vector<std::uint64_t> AdaptiveController::increments() const {
  return applied_;
}

void AdaptiveController::tick(Cycle now) {
  if (--sample_countdown_ > 0) return;
  sample_countdown_ = bucket_width_;
  sample(now);
  if (--buckets_left_ > 0) return;
  buckets_left_ = kBuckets;
  epoch(now);
}

void AdaptiveController::sample(Cycle now) {
  // Demand signal: cycles the master spent wanting or holding the bus
  // since the last sample. wait_cycles is credited at grant time, so a
  // long ineligibility stall lands as one lump -- the bucketed window
  // smooths it, and the per-epoch rate is clamped below.
  const auto& masters = bus_stats_->master;
  for (std::size_t m = 0; m < busy_snapshot_.size(); ++m) {
    const Cycle busy = masters.size() > m
                           ? masters[m].wait_cycles + masters[m].hold_cycles
                           : 0;
    const Cycle delta = busy - std::min(busy, busy_snapshot_[m]);
    if (delta > 0) demand_.record(static_cast<MasterId>(m), now, delta);
    busy_snapshot_[m] = busy;
  }
}

void AdaptiveController::epoch(Cycle now) {
  const core::CbaConfig& cba = credits_->config();
  const std::size_t n = cba.n_masters;
  const double scale = static_cast<double>(cba.scale);
  ++stats_.epochs;

  // Windowed demand in occupancy units/cycle, floored at the MCR so a
  // momentarily idle master keeps its ramp-up reserve, and capped at the
  // full bus (lumpy wait credits can exceed the window).
  std::vector<double> wanted(n);
  for (std::size_t m = 0; m < n; ++m) {
    const double rate =
        static_cast<double>(demand_.demand(static_cast<MasterId>(m), now)) /
        static_cast<double>(config_.window);
    wanted[m] = std::clamp(rate * scale, static_cast<double>(kMcr), scale);
  }

  // The Fahmy/Jain explicit-rate step: weighted max-min over the demand,
  // capacity = the full recovery budget (scale units/cycle).
  targets_ = fair_shares(wanted, {}, scale);

  // Hysteresis: leave the rates alone while every gap to the new target
  // is inside the deadband -- measurement ripple near saturation must
  // not wiggle the increments.
  double gap = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    gap = std::max(gap, std::abs(targets_[m] - rates_[m]));
  }
  if (gap > config_.deadband * scale) {
    for (std::size_t m = 0; m < n; ++m) {
      rates_[m] += config_.gain * (targets_[m] - rates_[m]);
    }
    ++stats_.updates;
    stats_.convergence_cycles = now + 1;  // end of this epoch
  }
  stats_.steady_error = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    stats_.steady_error += std::abs(targets_[m] - rates_[m]) / scale;
  }

  // Integerize: floor each rate (>= 1 by the MCR floor), then hand the
  // leftover whole units to the largest remainders. Ties rotate with the
  // epoch index so a fractional fair share time-averages across masters
  // instead of parking on the lowest index forever.
  std::uint64_t total = 0;
  double rate_sum = 0.0;
  for (const double r : rates_) rate_sum += r;
  const auto budget = static_cast<std::uint64_t>(
      std::min(scale, std::round(rate_sum)));
  std::vector<std::uint64_t> next(n);
  std::vector<std::size_t> order(n);
  for (std::size_t m = 0; m < n; ++m) {
    next[m] = std::max<std::uint64_t>(
        kMcr, static_cast<std::uint64_t>(std::floor(rates_[m])));
    total += next[m];
    order[m] = m;
  }
  const std::size_t offset = static_cast<std::size_t>(epoch_index_ % n);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double ra = rates_[a] - std::floor(rates_[a]);
                     const double rb = rates_[b] - std::floor(rates_[b]);
                     if (ra != rb) return ra > rb;
                     return (a + n - offset) % n < (b + n - offset) % n;
                   });
  for (std::size_t i = 0; total < budget && i < n; ++i) {
    const std::size_t m = order[i];
    if (next[m] < cba.scale) {
      ++next[m];
      ++total;
    }
  }
  // Over-subscription from the MCR floors: shave the largest increments
  // (ties rotate the same way) until recovery fits the bus again.
  for (std::size_t i = 0; total > cba.scale && i < n * n; ++i) {
    std::size_t victim = n;
    for (const std::size_t m : order) {
      if (next[m] > kMcr && (victim == n || next[m] > next[victim])) {
        victim = m;
      }
    }
    if (victim == n) break;
    --next[victim];
    --total;
  }

  for (std::size_t m = 0; m < n; ++m) {
    if (next[m] != applied_[m]) {
      credits_->set_increment(static_cast<MasterId>(m), next[m]);
      applied_[m] = next[m];
    }
  }
  ++epoch_index_;
}

std::unique_ptr<CreditController> make_controller(
    const ControllerConfig& config, core::CreditState& credits,
    const bus::BusStatistics& bus_stats) {
  if (config.adaptive()) {
    return std::make_unique<AdaptiveController>(config, credits, bus_stats);
  }
  return std::make_unique<StaticController>(credits);
}

}  // namespace cbus::ctrl
