// Unbiased random permutations and bounded uniforms.
//
// The random-permutations arbitration policy (Jalle et al., DATE 2014) draws
// a fresh uniformly-distributed permutation of the masters for each
// arbitration window. Bias-free sampling matters: a biased shuffle would
// skew the per-master grant probabilities the MBPTA argument relies on.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <span>

#include "common/contracts.hpp"

namespace cbus::rng {

/// Uniform integer in [0, bound) via rejection sampling (no modulo bias).
/// Engine must satisfy UniformRandomBitGenerator with a 32-bit range.
template <typename Engine>
[[nodiscard]] std::uint32_t uniform_below(Engine& engine, std::uint32_t bound) {
  CBUS_EXPECTS(bound > 0);
  if (bound == 1) return 0;
  // Largest multiple of `bound` not exceeding 2^32.
  const std::uint32_t limit =
      static_cast<std::uint32_t>(-bound) / bound * bound + bound - 1;
  for (;;) {
    const std::uint32_t draw = static_cast<std::uint32_t>(engine());
    if (draw <= limit || limit == ~0u) return draw % bound;
  }
}

/// Fisher-Yates shuffle of `items` using `engine` (unbiased).
template <typename Engine, typename T>
void shuffle(Engine& engine, std::span<T> items) {
  for (std::size_t i = items.size(); i > 1; --i) {
    const std::uint32_t j =
        uniform_below(engine, static_cast<std::uint32_t>(i));
    using std::swap;
    swap(items[i - 1], items[j]);
  }
}

/// Fill `out` with a uniformly random permutation of 0..out.size()-1.
template <typename Engine>
void random_permutation(Engine& engine, std::span<std::uint32_t> out) {
  std::iota(out.begin(), out.end(), 0u);
  shuffle(engine, out);
}

}  // namespace cbus::rng
