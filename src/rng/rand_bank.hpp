// RandBank: software model of the paper's APRANDBANK module -- a bank of
// independent hardware PRNGs that "delivers random bits every cycle for
// random choices of the random permutations arbitration" (paper §III-C).
//
// Each consumer (arbiter, cache placement, cache replacement, ...) opens its
// own channel so randomness consumption by one component never perturbs the
// stream seen by another. This is essential for MBPTA-style experiments:
// changing the arbitration policy must not change cache placements.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/contracts.hpp"
#include "rng/mwc.hpp"
#include "rng/splitmix64.hpp"

namespace cbus::rng {

/// One independent random-word-per-cycle stream.
class RandChannel {
 public:
  using result_type = std::uint32_t;

  RandChannel(std::string name, std::uint64_t seed)
      : name_(std::move(name)), engine_(seed) {}

  /// The word delivered by the bank on this cycle's clock edge.
  [[nodiscard]] std::uint32_t word() noexcept {
    ++words_drawn_;
    return engine_.next();
  }

  std::uint32_t operator()() noexcept { return word(); }

  static constexpr std::uint32_t min() noexcept { return 0; }
  static constexpr std::uint32_t max() noexcept { return ~0u; }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t words_drawn() const noexcept {
    return words_drawn_;
  }

 private:
  std::string name_;
  Mwc32 engine_;
  std::uint64_t words_drawn_ = 0;
};

/// The bank itself: derives per-channel seeds from one campaign seed so a
/// whole platform run is reproducible from a single 64-bit value.
class RandBank {
 public:
  explicit RandBank(std::uint64_t campaign_seed) : seeder_(campaign_seed) {}

  /// Open a named channel with its own derived seed.
  [[nodiscard]] RandChannel open(std::string_view name) {
    return RandChannel(std::string(name), seeder_.next());
  }

  /// Derive a raw 64-bit seed (for components owning their own engines).
  [[nodiscard]] std::uint64_t derive_seed() noexcept { return seeder_.next(); }

 private:
  SplitMix64 seeder_;
};

}  // namespace cbus::rng
