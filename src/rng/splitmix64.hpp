// SplitMix64: the canonical seed-expansion generator (Steele et al., OOPSLA
// 2014 / Vigna). Used only to derive independent seeds for the hardware-style
// generators from a single campaign seed; never used inside the modelled
// hardware itself.
#pragma once

#include <cstdint>

namespace cbus::rng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace cbus::rng
