// Small distribution helpers used by workload generators.
//
// Deliberately minimal and deterministic across platforms (std::
// distributions are not bit-reproducible across standard libraries, and
// reproducibility of every run from a seed is a design requirement).
#pragma once

#include <cmath>
#include <cstdint>

#include "common/contracts.hpp"
#include "rng/permutation.hpp"

namespace cbus::rng {

/// Uniform integer in [lo, hi] inclusive.
template <typename Engine>
[[nodiscard]] std::uint32_t uniform_in(Engine& engine, std::uint32_t lo,
                                       std::uint32_t hi) {
  CBUS_EXPECTS(lo <= hi);
  return lo + uniform_below(engine, hi - lo + 1);
}

/// Bernoulli trial with probability numer/denom.
template <typename Engine>
[[nodiscard]] bool bernoulli(Engine& engine, std::uint32_t numer,
                             std::uint32_t denom) {
  CBUS_EXPECTS(denom > 0);
  CBUS_EXPECTS(numer <= denom);
  return uniform_below(engine, denom) < numer;
}

/// Uniform double in [0, 1) with 32 bits of resolution.
template <typename Engine>
[[nodiscard]] double uniform01(Engine& engine) {
  return static_cast<double>(static_cast<std::uint32_t>(engine())) /
         4294967296.0;
}

/// Geometric number of failures before first success, success prob p in (0,1].
/// Used for bursty inter-arrival gaps in synthetic workloads.
template <typename Engine>
[[nodiscard]] std::uint32_t geometric(Engine& engine, double p) {
  CBUS_EXPECTS(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = uniform01(engine);
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  return g < 0 ? 0u
               : static_cast<std::uint32_t>(
                     g > 4294967294.0 ? 4294967294.0 : g);
}

}  // namespace cbus::rng
