// Multiply-with-carry generator (Marsaglia). The IEC-61508 SIL-3 compliant
// PRNGs deployed in the LEON3-PTA platform (Agirre et al., DSD 2015) are
// MWC-class generators: one multiplier, one adder, two registers -- cheap in
// hardware yet with excellent equidistribution for arbitration purposes.
// This is the generator class behind the paper's APRANDBANK module.
#pragma once

#include <cstdint>

namespace cbus::rng {

/// 32-bit-output MWC: x' = a * low32(x) + carry, output low32.
/// a = 4294957665 gives period ~2^63 (a * 2^31 - 1 prime-safe choice).
class Mwc32 {
 public:
  using result_type = std::uint32_t;

  static constexpr std::uint64_t kMultiplier = 4294957665ULL;

  explicit Mwc32(std::uint64_t seed) noexcept
      : state_(seed == 0 ? 0x853C49E6748FEA9BULL : seed) {}

  [[nodiscard]] std::uint32_t next() noexcept {
    const std::uint64_t low = state_ & 0xFFFFFFFFULL;
    const std::uint64_t carry = state_ >> 32;
    state_ = kMultiplier * low + carry;
    return static_cast<std::uint32_t>(state_);
  }

  std::uint32_t operator()() noexcept { return next(); }

  static constexpr std::uint32_t min() noexcept { return 0; }
  static constexpr std::uint32_t max() noexcept { return ~0u; }

 private:
  std::uint64_t state_;
};

}  // namespace cbus::rng
