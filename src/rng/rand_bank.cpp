// Anchor TU for cbus_rng.
#include "rng/rand_bank.hpp"
