// Galois linear-feedback shift registers: the classic hardware random-bit
// source. A 32-bit maximal-length LFSR (taps 32,22,2,1 -> polynomial
// 0x80200003) produces one pseudo-random bit per clock, exactly like the
// bit-serial sources feeding FPGA arbiters.
#pragma once

#include <cstdint>

namespace cbus::rng {

/// Maximal-length 32-bit Galois LFSR; period 2^32 - 1.
class Lfsr32 {
 public:
  using result_type = std::uint32_t;

  /// Feedback mask for x^32 + x^22 + x^2 + x^1 + 1 (a maximal polynomial).
  static constexpr std::uint32_t kTaps = 0x80200003u;

  explicit Lfsr32(std::uint32_t seed) noexcept
      : state_(seed == 0 ? 1u : seed) {}

  /// Advance one clock; returns the bit shifted out.
  [[nodiscard]] bool step() noexcept {
    const bool out = (state_ & 1u) != 0;
    state_ >>= 1;
    if (out) state_ ^= kTaps;
    return out;
  }

  /// Collect `n` clocked bits into the low bits of a word (LSB first).
  [[nodiscard]] std::uint32_t bits(unsigned n) noexcept {
    std::uint32_t word = 0;
    for (unsigned i = 0; i < n && i < 32; ++i) {
      word |= static_cast<std::uint32_t>(step()) << i;
    }
    return word;
  }

  /// One full 32-bit word (32 clocks), satisfying UniformRandomBitGenerator.
  std::uint32_t operator()() noexcept { return bits(32); }

  static constexpr std::uint32_t min() noexcept { return 0; }
  static constexpr std::uint32_t max() noexcept { return ~0u; }

  [[nodiscard]] std::uint32_t state() const noexcept { return state_; }

 private:
  std::uint32_t state_;
};

}  // namespace cbus::rng
