// XorShift generators (Marsaglia 2003): cheap, hardware-friendly 32/64-bit
// engines. XorShift32 is a 3-shift register pipeline -- a realistic stand-in
// for a per-cycle FPGA random word source.
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace cbus::rng {

/// 32-bit xorshift; period 2^32 - 1; state must be non-zero.
class XorShift32 {
 public:
  using result_type = std::uint32_t;

  explicit XorShift32(std::uint32_t seed) : state_(seed == 0 ? 0xBAD5EEDu : seed) {}

  [[nodiscard]] std::uint32_t next() noexcept {
    std::uint32_t x = state_;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    state_ = x;
    return x;
  }

  std::uint32_t operator()() noexcept { return next(); }

  static constexpr std::uint32_t min() noexcept { return 1; }
  static constexpr std::uint32_t max() noexcept { return ~0u; }

 private:
  std::uint32_t state_;
};

/// 64-bit xorshift*; period 2^64 - 1, multiplicative output scrambling.
class XorShift64Star {
 public:
  using result_type = std::uint64_t;

  explicit XorShift64Star(std::uint64_t seed)
      : state_(seed == 0 ? 0xBAD5EEDBAD5EEDULL : seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

 private:
  std::uint64_t state_;
};

}  // namespace cbus::rng
