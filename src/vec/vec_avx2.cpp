// AVX2 kernels (4 x 64-bit per step). Compiled only when CBUS_SIMD
// resolves to avx2; -mavx2 is scoped to this translation unit.
//
// Semantics are bit-identical to the scalar reference in vec.cpp --
// every branch of the Table-I update is expressed as a blend, and the
// unsigned comparisons use the signed-compare trick (values < 2^63 by
// the CreditRow contract, so signed order equals unsigned order).
#if defined(CBUS_SIMD_AVX2)

#include <immintrin.h>

#include "vec/kernels.hpp"

namespace cbus::vec::detail {

namespace {

/// Expand the low 4 bits of `mask` to all-ones/all-zeros 64-bit lanes.
inline __m256i expand4(std::uint64_t mask) noexcept {
  const __m256i bits = _mm256_setr_epi64x(1, 2, 4, 8);
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask & 0xf));
  return _mm256_cmpeq_epi64(_mm256_and_si256(m, bits), bits);
}

/// movemask over 64-bit lane sign bits -> low 4 result bits.
inline std::uint64_t lane_bits(__m256i mask) noexcept {
  return static_cast<std::uint64_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(mask)));
}

std::uint64_t credit_tick_row_avx2(const CreditRow& row) noexcept {
  const __m256i scale = _mm256_set1_epi64x(static_cast<long long>(row.scale));
  const __m256i cap = _mm256_set1_epi64x(static_cast<long long>(row.cap));
  std::uint64_t clamped = 0;
  for (std::uint32_t l = 0; l < row.n; l += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row.values + l));
    const __m256i inc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row.incs + l));
    const __m256i up = _mm256_add_epi64(v, inc);
    const __m256i charge =
        _mm256_and_si256(expand4(row.charge_mask >> l), scale);
    // up < charge (signed == unsigned here): the MaxL-underestimation
    // clamp. Only chargeable lanes can trip it.
    const __m256i under = _mm256_cmpgt_epi64(charge, up);
    const __m256i net = _mm256_sub_epi64(up, charge);
    // min(net, cap), then zero the clamped lanes.
    const __m256i over = _mm256_cmpgt_epi64(net, cap);
    __m256i result = _mm256_blendv_epi8(net, cap, over);
    result = _mm256_andnot_si256(under, result);
    // Frozen (retired) lanes keep their value exactly.
    const __m256i upd = expand4(row.update_mask >> l);
    result = _mm256_blendv_epi8(v, result, upd);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(row.values + l), result);
    clamped |= lane_bits(_mm256_and_si256(under, upd)) << l;
  }
  return clamped;
}

std::uint64_t eq_mask_row_avx2(const std::uint64_t* row, std::uint64_t target,
                               std::uint32_t n) noexcept {
  const __m256i t = _mm256_set1_epi64x(static_cast<long long>(target));
  std::uint64_t mask = 0;
  for (std::uint32_t l = 0; l < n; l += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + l));
    mask |= lane_bits(_mm256_cmpeq_epi64(v, t)) << l;
  }
  // The tail block read into the padding lanes; drop their compare bits.
  return n < 64 ? mask & ((std::uint64_t{1} << n) - 1) : mask;
}

void credit_tick_cycle_avx2(const CreditCycle& cycle) noexcept {
  for (std::uint32_t m = 0; m < cycle.slots; ++m) {
    const CreditRow row{
        cycle.values + std::size_t{m} * cycle.stride,
        cycle.incs + std::size_t{m} * cycle.stride,
        cycle.scale,
        cycle.caps[m],
        cycle.charge[m],
        cycle.update_mask,
        cycle.lanes,
    };
    cycle.clamped[m] = credit_tick_row_avx2(row);
  }
}

void sat_words_avx2(const SatQuery& query) noexcept {
  for (std::uint32_t i = 0; i < query.n; ++i) {
    const std::uint64_t* row =
        query.values + std::size_t{query.slots[i]} * query.stride;
    query.out[i] = eq_mask_row_avx2(row, query.caps[i], query.lanes);
  }
}

int argmax_i64_avx2(const std::int64_t* scores, std::size_t n) noexcept {
  // Vector max-reduce, then first index equal to the max -- the first
  // occurrence of the maximum IS the strict-greater scan's winner.
  std::int64_t best = INT64_MIN;
  std::size_t l = 0;
  if (n >= 4) {
    __m256i vbest = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(scores));
    for (l = 4; l + 4 <= n; l += 4) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(scores + l));
      const __m256i gt = _mm256_cmpgt_epi64(v, vbest);
      vbest = _mm256_blendv_epi8(vbest, v, gt);
    }
    alignas(32) std::int64_t tmp[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), vbest);
    for (int i = 0; i < 4; ++i) best = tmp[i] > best ? tmp[i] : best;
  }
  for (; l < n; ++l) best = scores[l] > best ? scores[l] : best;
  if (best == INT64_MIN) return -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (scores[i] == best) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const Kernels kAvx2Kernels{credit_tick_row_avx2, credit_tick_cycle_avx2,
                           eq_mask_row_avx2, sat_words_avx2, argmax_i64_avx2};

}  // namespace cbus::vec::detail

#endif  // CBUS_SIMD_AVX2
