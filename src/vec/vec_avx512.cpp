// AVX-512F kernels (8 x 64-bit per step, k-mask predication). Compiled
// only when CBUS_SIMD resolves to avx512; -mavx512f is scoped to this
// translation unit. Bit-identical to the scalar reference in vec.cpp.
#if defined(CBUS_SIMD_AVX512)

#include <immintrin.h>

#include "vec/kernels.hpp"

namespace cbus::vec::detail {

namespace {

std::uint64_t credit_tick_row_avx512(const CreditRow& row) noexcept {
  const __m512i scale = _mm512_set1_epi64(static_cast<long long>(row.scale));
  const __m512i cap = _mm512_set1_epi64(static_cast<long long>(row.cap));
  std::uint64_t clamped = 0;
  for (std::uint32_t l = 0; l < row.n; l += 8) {
    const __mmask8 upd = static_cast<__mmask8>(row.update_mask >> l);
    const __m512i v = _mm512_loadu_si512(row.values + l);
    const __m512i inc = _mm512_loadu_si512(row.incs + l);
    const __m512i up = _mm512_add_epi64(v, inc);
    const __mmask8 chg = static_cast<__mmask8>(row.charge_mask >> l);
    const __m512i charge = _mm512_maskz_mov_epi64(chg, scale);
    // up < charge: the MaxL-underestimation clamp (native unsigned).
    const __mmask8 under =
        _mm512_cmplt_epu64_mask(up, charge) & upd;
    const __m512i net =
        _mm512_min_epu64(_mm512_sub_epi64(up, charge), cap);
    // Clamped lanes go to zero; frozen (retired) lanes keep their value.
    const __m512i result =
        _mm512_maskz_mov_epi64(static_cast<__mmask8>(~under), net);
    _mm512_mask_storeu_epi64(row.values + l, upd, result);
    clamped |= static_cast<std::uint64_t>(under) << l;
  }
  return clamped;
}

std::uint64_t eq_mask_row_avx512(const std::uint64_t* row,
                                 std::uint64_t target,
                                 std::uint32_t n) noexcept {
  const __m512i t = _mm512_set1_epi64(static_cast<long long>(target));
  std::uint64_t mask = 0;
  for (std::uint32_t l = 0; l < n; l += 8) {
    const __m512i v = _mm512_loadu_si512(row + l);
    mask |= static_cast<std::uint64_t>(_mm512_cmpeq_epi64_mask(v, t)) << l;
  }
  // The tail block read into the padding lanes; drop their compare bits.
  return n < 64 ? mask & ((std::uint64_t{1} << n) - 1) : mask;
}

void credit_tick_cycle_avx512(const CreditCycle& cycle) noexcept {
  for (std::uint32_t m = 0; m < cycle.slots; ++m) {
    const CreditRow row{
        cycle.values + std::size_t{m} * cycle.stride,
        cycle.incs + std::size_t{m} * cycle.stride,
        cycle.scale,
        cycle.caps[m],
        cycle.charge[m],
        cycle.update_mask,
        cycle.lanes,
    };
    cycle.clamped[m] = credit_tick_row_avx512(row);
  }
}

void sat_words_avx512(const SatQuery& query) noexcept {
  for (std::uint32_t i = 0; i < query.n; ++i) {
    const std::uint64_t* row =
        query.values + std::size_t{query.slots[i]} * query.stride;
    query.out[i] = eq_mask_row_avx512(row, query.caps[i], query.lanes);
  }
}

int argmax_i64_avx512(const std::int64_t* scores, std::size_t n) noexcept {
  std::int64_t best = INT64_MIN;
  std::size_t l = 0;
  if (n >= 8) {
    __m512i vbest = _mm512_loadu_si512(scores);
    for (l = 8; l + 8 <= n; l += 8) {
      vbest = _mm512_max_epi64(vbest, _mm512_loadu_si512(scores + l));
    }
    best = _mm512_reduce_max_epi64(vbest);
  }
  for (; l < n; ++l) best = scores[l] > best ? scores[l] : best;
  if (best == INT64_MIN) return -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (scores[i] == best) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const Kernels kAvx512Kernels{credit_tick_row_avx512, credit_tick_cycle_avx512,
                             eq_mask_row_avx512, sat_words_avx512,
                             argmax_i64_avx512};

}  // namespace cbus::vec::detail

#endif  // CBUS_SIMD_AVX512
