// AArch64 NEON kernels (2 x 64-bit per step). Compiled only when
// CBUS_SIMD resolves to neon (AArch64 compiles NEON by default, so no
// extra -m flags are needed). Bit-identical to the scalar reference in
// vec.cpp; the kernels stick to baseline A64 intrinsics (vcgtq_u64 /
// vceqq_u64 are AArch64-only, which the configure check enforces).
#if defined(CBUS_SIMD_NEON)

#include <arm_neon.h>

#include "vec/kernels.hpp"

namespace cbus::vec::detail {

namespace {

/// Expand the low 2 bits of `mask` to all-ones/all-zeros 64-bit lanes.
inline uint64x2_t expand2(std::uint64_t mask) noexcept {
  const uint64x2_t bits = {1, 2};
  return vceqq_u64(vandq_u64(vdupq_n_u64(mask & 0x3), bits), bits);
}

/// Low 2 lane-bits of a 64-bit compare mask.
inline std::uint64_t lane_bits(uint64x2_t mask) noexcept {
  return (vgetq_lane_u64(mask, 0) & 1u) | ((vgetq_lane_u64(mask, 1) & 1u) << 1);
}

std::uint64_t credit_tick_row_neon(const CreditRow& row) noexcept {
  const uint64x2_t scale = vdupq_n_u64(row.scale);
  const uint64x2_t cap = vdupq_n_u64(row.cap);
  std::uint64_t clamped = 0;
  for (std::uint32_t l = 0; l < row.n; l += 2) {
    const uint64x2_t v = vld1q_u64(row.values + l);
    const uint64x2_t inc = vld1q_u64(row.incs + l);
    const uint64x2_t up = vaddq_u64(v, inc);
    const uint64x2_t charge = vandq_u64(expand2(row.charge_mask >> l), scale);
    const uint64x2_t under = vcgtq_u64(charge, up);
    const uint64x2_t net = vsubq_u64(up, charge);
    const uint64x2_t over = vcgtq_u64(net, cap);
    uint64x2_t result = vbslq_u64(over, cap, net);
    result = vbicq_u64(result, under);
    const uint64x2_t upd = expand2(row.update_mask >> l);
    result = vbslq_u64(upd, result, v);
    vst1q_u64(row.values + l, result);
    clamped |= lane_bits(vandq_u64(under, upd)) << l;
  }
  return clamped;
}

std::uint64_t eq_mask_row_neon(const std::uint64_t* row, std::uint64_t target,
                               std::uint32_t n) noexcept {
  const uint64x2_t t = vdupq_n_u64(target);
  std::uint64_t mask = 0;
  for (std::uint32_t l = 0; l < n; l += 2) {
    mask |= lane_bits(vceqq_u64(vld1q_u64(row + l), t)) << l;
  }
  // The tail block read into the padding lanes; drop their compare bits.
  return n < 64 ? mask & ((std::uint64_t{1} << n) - 1) : mask;
}

void credit_tick_cycle_neon(const CreditCycle& cycle) noexcept {
  for (std::uint32_t m = 0; m < cycle.slots; ++m) {
    const CreditRow row{
        cycle.values + std::size_t{m} * cycle.stride,
        cycle.incs + std::size_t{m} * cycle.stride,
        cycle.scale,
        cycle.caps[m],
        cycle.charge[m],
        cycle.update_mask,
        cycle.lanes,
    };
    cycle.clamped[m] = credit_tick_row_neon(row);
  }
}

void sat_words_neon(const SatQuery& query) noexcept {
  for (std::uint32_t i = 0; i < query.n; ++i) {
    const std::uint64_t* row =
        query.values + std::size_t{query.slots[i]} * query.stride;
    query.out[i] = eq_mask_row_neon(row, query.caps[i], query.lanes);
  }
}

int argmax_i64_neon(const std::int64_t* scores, std::size_t n) noexcept {
  std::int64_t best = INT64_MIN;
  std::size_t l = 0;
  if (n >= 2) {
    int64x2_t vbest = vld1q_s64(scores);
    for (l = 2; l + 2 <= n; l += 2) {
      const int64x2_t v = vld1q_s64(scores + l);
      vbest = vbslq_s64(vcgtq_s64(v, vbest), v, vbest);
    }
    const std::int64_t a = vgetq_lane_s64(vbest, 0);
    const std::int64_t b = vgetq_lane_s64(vbest, 1);
    best = a > b ? a : b;
  }
  for (; l < n; ++l) best = scores[l] > best ? scores[l] : best;
  if (best == INT64_MIN) return -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (scores[i] == best) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

const Kernels kNeonKernels{credit_tick_row_neon, credit_tick_cycle_neon,
                           eq_mask_row_neon, sat_words_neon, argmax_i64_neon};

}  // namespace cbus::vec::detail

#endif  // CBUS_SIMD_NEON
