#include "vec/vec.hpp"

#include <atomic>

#include "vec/kernels.hpp"

namespace cbus::vec {

namespace detail {

namespace {

std::uint64_t credit_tick_row_scalar(const CreditRow& row) noexcept {
  std::uint64_t clamped = 0;
  for (std::uint32_t l = 0; l < row.n; ++l) {
    if (((row.update_mask >> l) & 1u) == 0) continue;
    const std::uint64_t up = row.values[l] + row.incs[l];
    const std::uint64_t charge =
        ((row.charge_mask >> l) & 1u) != 0 ? row.scale : 0;
    if (up < charge) {
      row.values[l] = 0;
      clamped |= std::uint64_t{1} << l;
    } else {
      const std::uint64_t net = up - charge;
      row.values[l] = net < row.cap ? net : row.cap;
    }
  }
  return clamped;
}

std::uint64_t eq_mask_row_scalar(const std::uint64_t* row,
                                 std::uint64_t target,
                                 std::uint32_t n) noexcept {
  std::uint64_t mask = 0;
  for (std::uint32_t l = 0; l < n; ++l) {
    if (row[l] == target) mask |= std::uint64_t{1} << l;
  }
  return mask;
}

void credit_tick_cycle_scalar(const CreditCycle& cycle) noexcept {
  for (std::uint32_t m = 0; m < cycle.slots; ++m) {
    const CreditRow row{
        cycle.values + std::size_t{m} * cycle.stride,
        cycle.incs + std::size_t{m} * cycle.stride,
        cycle.scale,
        cycle.caps[m],
        cycle.charge[m],
        cycle.update_mask,
        cycle.lanes,
    };
    cycle.clamped[m] = credit_tick_row_scalar(row);
  }
}

void sat_words_scalar(const SatQuery& query) noexcept {
  for (std::uint32_t i = 0; i < query.n; ++i) {
    const std::uint64_t* row =
        query.values + std::size_t{query.slots[i]} * query.stride;
    query.out[i] = eq_mask_row_scalar(row, query.caps[i], query.lanes);
  }
}

int argmax_i64_scalar(const std::int64_t* scores, std::size_t n) noexcept {
  int winner = -1;
  std::int64_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scores[i] == INT64_MIN) continue;
    if (winner < 0 || scores[i] > best) {
      winner = static_cast<int>(i);
      best = scores[i];
    }
  }
  return winner;
}

}  // namespace

const Kernels kScalarKernels{credit_tick_row_scalar, credit_tick_cycle_scalar,
                             eq_mask_row_scalar, sat_words_scalar,
                             argmax_i64_scalar};

namespace {

const Kernels& configured_kernels() noexcept {
#if defined(CBUS_SIMD_AVX2)
  return kAvx2Kernels;
#elif defined(CBUS_SIMD_AVX512)
  return kAvx512Kernels;
#elif defined(CBUS_SIMD_NEON)
  return kNeonKernels;
#else
  return kScalarKernels;
#endif
}

std::atomic<bool> g_force_scalar{false};

constexpr bool kEngineDefault =
#if defined(CBUS_SIMD_OFF)
    false;
#else
    true;
#endif

std::atomic<bool> g_engine_enabled{kEngineDefault};

const Kernels& active_kernels() noexcept {
  return g_force_scalar.load(std::memory_order_relaxed)
             ? kScalarKernels
             : configured_kernels();
}

}  // namespace

}  // namespace detail

const char* configured_isa() noexcept {
#if defined(CBUS_SIMD_NAME)
  return CBUS_SIMD_NAME;
#else
  return "scalar";
#endif
}

const char* active_isa() noexcept {
  return detail::g_force_scalar.load(std::memory_order_relaxed)
             ? "scalar"
             : configured_isa();
}

bool engine_enabled() noexcept {
  return detail::g_engine_enabled.load(std::memory_order_relaxed);
}

void set_engine_enabled(bool on) noexcept {
  detail::g_engine_enabled.store(on, std::memory_order_relaxed);
}

void force_scalar(bool on) noexcept {
  detail::g_force_scalar.store(on, std::memory_order_relaxed);
}

std::uint64_t credit_tick_row(const CreditRow& row) noexcept {
  return detail::active_kernels().credit_tick_row(row);
}

void credit_tick_cycle(const CreditCycle& cycle) noexcept {
  detail::active_kernels().credit_tick_cycle(cycle);
}

std::uint64_t eq_mask_row(const std::uint64_t* row, std::uint64_t target,
                          std::uint32_t n) noexcept {
  return detail::active_kernels().eq_mask_row(row, target, n);
}

void sat_words(const SatQuery& query) noexcept {
  detail::active_kernels().sat_words(query);
}

int argmax_i64(const std::int64_t* scores, std::size_t n) noexcept {
  return detail::active_kernels().argmax_i64(scores, n);
}

}  // namespace cbus::vec
