// Internal kernel table shared between the dispatcher (vec.cpp) and the
// per-ISA translation units. Each ISA TU defines one `Kernels` instance;
// only the TU matching the configured CBUS_SIMD is compiled (with its
// -m<isa> flags scoped to that file alone).
#pragma once

#include <cstddef>
#include <cstdint>

#include "vec/vec.hpp"

namespace cbus::vec::detail {

struct Kernels {
  std::uint64_t (*credit_tick_row)(const CreditRow&) noexcept;
  void (*credit_tick_cycle)(const CreditCycle&) noexcept;
  std::uint64_t (*eq_mask_row)(const std::uint64_t*, std::uint64_t,
                               std::uint32_t) noexcept;
  void (*sat_words)(const SatQuery&) noexcept;
  int (*argmax_i64)(const std::int64_t*, std::size_t) noexcept;
};

/// The portable reference implementation (always compiled).
extern const Kernels kScalarKernels;

#if defined(CBUS_SIMD_AVX2)
extern const Kernels kAvx2Kernels;
#elif defined(CBUS_SIMD_AVX512)
extern const Kernels kAvx512Kernels;
#elif defined(CBUS_SIMD_NEON)
extern const Kernels kNeonKernels;
#endif

}  // namespace cbus::vec::detail
