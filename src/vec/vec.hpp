// cbus::vec -- vertical (across-lane) kernels for the batched campaign
// hot path, behind a configure-time ISA dispatch.
//
// The batch credit engine lays slot m's Table-I counters contiguously
// across lanes (counter-major CreditSoA rows, padded to kLaneAlign), so
// the per-cycle credit update, the saturation test feeding the COMP
// latch and the deficit-age argmax become one vertical operation per
// slot across 4-16 lanes. Every kernel has a portable scalar
// implementation (always compiled, the reference semantics) plus at
// most one guarded ISA implementation selected at configure time via
// the CBUS_SIMD=auto|off|avx2|avx512|neon CMake option:
//
//   off    -- no vec kernels are used at all: the campaign driver keeps
//             the classic lane-major BatchKernel path (the build
//             `cbus_sim --version` reports and the CI dispatch-parity
//             leg compares against).
//   scalar -- the engine path with the portable kernels (auto resolves
//             here when the build host has no supported ISA).
//   avx2 / avx512 / neon -- the engine path with vertical kernels.
//
// Bit-identity contract: for every input, every ISA implementation
// returns exactly the scalar result -- the campaign byte-equality
// batteries (tests/test_vec.cpp, tests/test_exp.cpp) and the CI
// dispatch-parity leg pin this. force_scalar() routes all calls through
// the scalar kernels at runtime so one binary can check itself.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cbus::vec {

/// Lane counts are padded to a multiple of this in counter-major
/// arenas: kernels may load (and blend-store back unchanged) a full
/// block, so rows must be allocated in kLaneAlign units. 8 covers the
/// widest path (AVX-512, 8x64-bit).
inline constexpr std::size_t kLaneAlign = 8;

/// One counter-major row (slot m across all lanes) for the Table-I
/// per-cycle update. Bit l of the masks refers to lane l; lanes >= 64
/// never reach the engine (the campaign driver falls back to the
/// classic path).
///
/// `n` is the LIVE lane count; rows are allocated in kLaneAlign units,
/// and vector kernels may load (and blend-store back unchanged) the
/// whole padded block, so the padding lanes must exist but their
/// content never matters (mask bits >= n are zero by contract).
struct CreditRow {
  std::uint64_t* values;        ///< row base (padded to kLaneAlign)
  const std::uint64_t* incs;    ///< per-lane recovery increments
  std::uint64_t scale;          ///< occupancy charge per holding cycle
  std::uint64_t cap;            ///< saturation cap of this slot
  std::uint64_t charge_mask;    ///< bit l: lane l's bus holder == slot
  std::uint64_t update_mask;    ///< bit l: lane l is live (others frozen)
  std::uint32_t n;              ///< live lane count
};

/// A whole engine cycle's Table-I updates -- every slot row of the
/// arena -- as ONE dispatched call. The descriptor is built once per
/// campaign slice; only `charge`, `update_mask` and the `clamped`
/// outputs change per cycle. Keeping the per-row loop inside the
/// dispatched kernel matters: at one indirect call per ROW the dispatch
/// overhead rivals the vector work itself for small batches.
struct CreditCycle {
  std::uint64_t* values;        ///< arena base: slot-major padded rows
  const std::uint64_t* incs;    ///< increment arena, same geometry
  const std::uint64_t* caps;    ///< per-slot saturation caps [slots]
  const std::uint64_t* charge;  ///< per-slot holder masks [slots]
  std::uint64_t* clamped;       ///< out: per-slot clamp masks [slots]
  std::uint64_t scale;          ///< occupancy charge per holding cycle
  std::uint64_t update_mask;    ///< bit l: lane l is live
  std::uint32_t stride;         ///< elements between rows (padded lanes)
  std::uint32_t lanes;          ///< live lane count
  std::uint32_t slots;          ///< rows to update
};

/// The saturation words feeding the virtual-contender COMP latches --
/// bit l of out[i] set iff slot slots[i]'s counter equals caps[i] on
/// lane l -- for every contender slot in one dispatched call.
struct SatQuery {
  const std::uint64_t* values;  ///< arena base: slot-major padded rows
  const std::uint32_t* slots;   ///< slot ids to test [n]
  const std::uint64_t* caps;    ///< per-query saturation cap [n]
  std::uint64_t* out;           ///< out: saturation words [n]
  std::uint32_t stride;         ///< elements between rows (padded lanes)
  std::uint32_t lanes;          ///< live lane count
  std::uint32_t n;              ///< queries
};

/// The compile-time configured dispatch ("off", "scalar", "avx2",
/// "avx512" or "neon").
[[nodiscard]] const char* configured_isa() noexcept;

/// The dispatch actually answering calls right now: configured_isa(),
/// or "scalar" while force_scalar(true) is in effect.
[[nodiscard]] const char* active_isa() noexcept;

/// True iff the batched credit engine is enabled (configured to
/// anything but "off", unless overridden by set_engine_enabled). The
/// campaign driver consults this to pick engine vs classic path.
[[nodiscard]] bool engine_enabled() noexcept;

/// Test hook: override the engine on/off decision at runtime, so one
/// binary can run the same campaign through both the engine and the
/// classic path and compare bytes. Pass the value of engine_enabled()
/// captured at startup to restore the default.
void set_engine_enabled(bool on) noexcept;

/// Test hook: route every kernel through the portable scalar
/// implementation (true) or the configured ISA (false, default).
void force_scalar(bool on) noexcept;

/// Table-I tick for one slot row across lanes. Per lane l < n with
/// update bit set:
///   up     = values[l] + incs[l]
///   charge = (charge_mask bit l) ? scale : 0
///   values[l] = up < charge ? 0 : min(up - charge, cap)
/// Returns the clamp mask (lanes where up < charge -- only reachable
/// when MaxL was under-estimated). Lanes without the update bit keep
/// their value exactly. Values are assumed < 2^63 (Table-I units are
/// tiny; CbaConfig::validate bounds them).
std::uint64_t credit_tick_row(const CreditRow& row) noexcept;

/// credit_tick_row over every slot row of an arena, one dispatch.
void credit_tick_cycle(const CreditCycle& cycle) noexcept;

/// Bit l set iff row[l] == target, for l < n (the BUDGi == cap
/// saturation word feeding the virtual-contender COMP latch).
std::uint64_t eq_mask_row(const std::uint64_t* row, std::uint64_t target,
                          std::uint32_t n) noexcept;

/// eq_mask_row over a list of slot rows, one dispatch.
void sat_words(const SatQuery& query) noexcept;

/// Index of the maximum of scores[0..n), ties broken towards the FIRST
/// index (exactly the strict-greater scan the deficit-age arbiter
/// runs); -1 iff every score is INT64_MIN (the "absent" sentinel).
int argmax_i64(const std::int64_t* scores, std::size_t n) noexcept;

}  // namespace cbus::vec
