// Campaign telemetry: what the runner measures about ITSELF (progress,
// throughput, thread utilisation, memory) -- as opposed to the metrics
// digests, which measure the simulated platform. Rendered two ways:
//  * a throttled, self-rewriting stderr progress line (`--progress`) --
//    stderr ONLY, so stdout/CSV/JSON stay byte-identical with or without
//    it (locked by tests/progress_stream_test.sh);
//  * a machine-readable `telemetry.json` document (`telemetry <path>` in
//    the experiment file or `--telemetry` on the tools), stamped with
//    build provenance.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "stats/log_histogram.hpp"

namespace cbus::obs {

struct Telemetry {
  std::uint64_t total_runs = 0;
  std::uint64_t total_slices = 0;   ///< this invocation's share (shard/resume)
  std::uint64_t runs_done = 0;
  std::uint64_t slices_done = 0;
  double wall_seconds = 0.0;
  /// Per worker thread: seconds spent executing slices (vs idle/blocked).
  std::vector<double> thread_busy_seconds;
  /// Wall-clock milliseconds per completed slice.
  stats::LogHistogram slice_wall_ms;
  /// Peak resident set size of the process, in KiB (getrusage).
  long peak_rss_kb = 0;

  [[nodiscard]] double runs_per_sec() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(runs_done) / wall_seconds
               : 0.0;
  }
  /// Seconds to finish the remaining runs at the observed rate; 0 when
  /// done or no rate is established yet.
  [[nodiscard]] double eta_seconds() const noexcept {
    const double rate = runs_per_sec();
    if (rate <= 0.0 || runs_done >= total_runs) return 0.0;
    return static_cast<double>(total_runs - runs_done) / rate;
  }
};

/// Peak resident set size of the calling process, in KiB.
[[nodiscard]] long peak_rss_kb();

/// The full telemetry JSON document. `phase` distinguishes producers:
/// "run" (cbus_sim) vs "merge" (cbus_merge fold).
void write_telemetry_json(std::ostream& out, const Telemetry& telemetry,
                          std::string_view phase);

/// The throttled stderr progress line. NOT thread-safe: the runner calls
/// update() under its fold mutex, which also keeps the rendered counters
/// consistent. finish() always prints (ignoring the throttle) and
/// terminates the line.
class ProgressMeter {
 public:
  ProgressMeter(std::ostream& err, std::uint64_t total_runs,
                std::chrono::milliseconds min_interval =
                    std::chrono::milliseconds(250));

  void update(std::uint64_t runs_done, std::uint64_t slices_done);
  void finish(std::uint64_t runs_done, std::uint64_t slices_done);

 private:
  void render(std::uint64_t runs_done, std::uint64_t slices_done,
              bool final_line);

  std::ostream& err_;
  std::uint64_t total_runs_;
  std::chrono::milliseconds min_interval_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_render_;
  bool rendered_ = false;
};

}  // namespace cbus::obs
