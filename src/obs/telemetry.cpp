#include "obs/telemetry.hpp"

#include <sys/resource.h>

#include <cstdio>
#include <ostream>

#include "common/build_info.hpp"

namespace cbus::obs {

long peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

void write_telemetry_json(std::ostream& out, const Telemetry& t,
                          std::string_view phase) {
  out << "{\n  \"provenance\": ";
  common::write_build_info_json(out);
  out << ",\n  \"phase\": \"" << phase << "\"";
  out << ",\n  \"total_runs\": " << t.total_runs;
  out << ",\n  \"runs_done\": " << t.runs_done;
  out << ",\n  \"total_slices\": " << t.total_slices;
  out << ",\n  \"slices_done\": " << t.slices_done;
  out << ",\n  \"wall_seconds\": " << t.wall_seconds;
  out << ",\n  \"runs_per_sec\": " << t.runs_per_sec();
  out << ",\n  \"threads\": " << t.thread_busy_seconds.size();
  out << ",\n  \"thread_busy_fraction\": [";
  for (std::size_t i = 0; i < t.thread_busy_seconds.size(); ++i) {
    if (i != 0) out << ", ";
    out << (t.wall_seconds > 0.0 ? t.thread_busy_seconds[i] / t.wall_seconds
                                 : 0.0);
  }
  out << "]";
  out << ",\n  \"slice_wall_ms\": {\"count\": " << t.slice_wall_ms.count();
  if (!t.slice_wall_ms.empty()) {
    out << ", \"p50\": " << t.slice_wall_ms.quantile(0.50)
        << ", \"p90\": " << t.slice_wall_ms.quantile(0.90)
        << ", \"p99\": " << t.slice_wall_ms.quantile(0.99);
  }
  out << "}";
  out << ",\n  \"peak_rss_kb\": " << t.peak_rss_kb;
  out << "\n}\n";
}

ProgressMeter::ProgressMeter(std::ostream& err, std::uint64_t total_runs,
                             std::chrono::milliseconds min_interval)
    : err_(err),
      total_runs_(total_runs),
      min_interval_(min_interval),
      start_(std::chrono::steady_clock::now()),
      last_render_(start_ - min_interval) {}

void ProgressMeter::update(std::uint64_t runs_done,
                           std::uint64_t slices_done) {
  const auto now = std::chrono::steady_clock::now();
  if (now - last_render_ < min_interval_) return;
  last_render_ = now;
  render(runs_done, slices_done, /*final_line=*/false);
}

void ProgressMeter::finish(std::uint64_t runs_done,
                           std::uint64_t slices_done) {
  render(runs_done, slices_done, /*final_line=*/true);
}

void ProgressMeter::render(std::uint64_t runs_done,
                           std::uint64_t slices_done, bool final_line) {
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  const double rate =
      elapsed > 0.0 ? static_cast<double>(runs_done) / elapsed : 0.0;
  const double pct =
      total_runs_ > 0
          ? 100.0 * static_cast<double>(runs_done) /
                static_cast<double>(total_runs_)
          : 100.0;

  char line[160];
  if (final_line || rate <= 0.0 || runs_done >= total_runs_) {
    std::snprintf(line, sizeof(line),
                  "[cbus] %llu/%llu runs (%.1f%%) | %llu slices | %.0f "
                  "runs/s | %.1fs elapsed",
                  static_cast<unsigned long long>(runs_done),
                  static_cast<unsigned long long>(total_runs_), pct,
                  static_cast<unsigned long long>(slices_done), rate,
                  elapsed);
  } else {
    const double eta =
        static_cast<double>(total_runs_ - runs_done) / rate;
    std::snprintf(line, sizeof(line),
                  "[cbus] %llu/%llu runs (%.1f%%) | %llu slices | %.0f "
                  "runs/s | ETA %.0fs",
                  static_cast<unsigned long long>(runs_done),
                  static_cast<unsigned long long>(total_runs_), pct,
                  static_cast<unsigned long long>(slices_done), rate, eta);
  }
  // \r-rewrite the line in place; pad to clear a longer previous render.
  err_ << '\r' << line << "          " << (final_line ? "\n" : "\r");
  err_.flush();
  rendered_ = true;
}

}  // namespace cbus::obs
