// obs::Timeline -- cycle-accurate event capture for ONE simulated run,
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// The tracer plugs into hooks that already exist and stay zero-cost when
// unused:
//  * it is a bus::BusObserver on the run's bus (NonSplitBus) or
//    interconnect (SegmentedInterconnect, global-level events), giving
//    per-master request -> grant -> transfer spans;
//  * it is a sim::Component registered LAST in the machine's kernel, so
//    once per cycle -- after every other component has ticked -- it
//    passively polls Table-I credit budgets (core::CreditState),
//    per-master eligibility, per-master underflow clamps and per-bridge
//    queue depths. Polling reads public state and mutates nothing, so an
//    instrumented run's simulation is bit-identical to a bare one.
//
// Rendered track layout (docs/OBSERVABILITY.md pins the schema):
//   pid 0  "bus masters"        one thread per master: "wait"/"xfer"
//                               spans, "credit.underflow" instants
//   pid 1  "credit (cycles)"    counters "credit m<i>", "eligible m<i>"
//   pid 2  "bridge queues"      counters "bridge s<a>->s<b>" (segmented)
//   pid 3  "demand"             counters "demand m<i>" (DemandWindow)
// One trace ts unit = one bus cycle (the JSON renders cycles in the
// microsecond field; read "us" as "cycles").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "common/types.hpp"
#include "obs/demand_window.hpp"
#include "obs/registry.hpp"
#include "sim/component.hpp"

namespace cbus::core {
class CreditState;
}
namespace cbus::bus {
class SegmentedInterconnect;
}
namespace cbus::platform {
class Multicore;
}

namespace cbus::obs {

class Timeline final : public bus::BusObserver, public sim::Component {
 public:
  struct Config {
    /// Only events starting in [window_begin, window_end) are captured
    /// (`--trace-window a:b`); counters are sampled inside it only.
    Cycle window_begin = 0;
    Cycle window_end = std::numeric_limits<Cycle>::max();
    /// Counter tracks are sampled every `counter_stride` cycles (and
    /// emitted only on change), bounding trace volume for long runs.
    Cycle counter_stride = 64;
    /// Sliding window of the per-master demand probe, in cycles.
    Cycle demand_window = 4096;
  };

  Timeline();  ///< default Config
  explicit Timeline(const Config& config);

  /// Install this tracer on a fully-built machine: becomes the bus/
  /// interconnect observer and registers itself as the LAST kernel
  /// component (so a poll sees the cycle's final state). Must run before
  /// the machine executes its first cycle and at most once per Timeline.
  /// The split-transaction bus has no observer hook points; attaching to
  /// a split-protocol machine captures counter tracks only.
  void attach(platform::Multicore& machine);

  // --- bus::BusObserver ---------------------------------------------------
  void on_request(const bus::BusRequest& request, Cycle now) override;
  void on_transfer_start(const bus::BusRequest& request, Cycle start,
                         Cycle hold) override;
  void on_transfer_complete(const bus::BusRequest& request,
                            Cycle end) override;

  // --- sim::Component (the per-cycle poll) --------------------------------
  void tick(Cycle now) override;

  [[nodiscard]] bool attached() const noexcept { return attached_; }
  /// Total captured events (spans + counter samples + instants).
  [[nodiscard]] std::size_t event_count() const noexcept;
  /// The tracer's own bookkeeping counters (trace.requests, trace.spans,
  /// trace.counter_samples, trace.instants).
  [[nodiscard]] const Registry& registry() const noexcept {
    return registry_;
  }
  /// The windowed per-master demand probe (the adaptive-controller
  /// substrate); empty before attach().
  [[nodiscard]] const std::optional<DemandWindow>& demand() const noexcept {
    return demand_;
  }

  /// Emit the whole capture as one Chrome trace-event JSON document
  /// (object form: {"traceEvents": [...], "metadata": {...}}), with
  /// build provenance in the metadata block.
  void write_json(std::ostream& out) const;

 private:
  struct Span {
    Cycle ts = 0;
    Cycle dur = 0;
    MasterId master = 0;
    bool transfer = false;  ///< false: arbitration wait
    Addr addr = 0;
    MemOpKind op = MemOpKind::kLoad;
  };
  struct Sample {
    Cycle ts = 0;
    std::uint32_t track = 0;
    double value = 0.0;
  };
  struct Instant {
    Cycle ts = 0;
    MasterId master = 0;
  };
  struct Track {
    std::uint32_t pid = 0;
    std::string name;
    double last = std::numeric_limits<double>::quiet_NaN();
  };
  /// Live capture state per master.
  struct MasterState {
    bool waiting = false;
    Cycle issued = 0;
    bool transferring = false;
    Cycle started = 0;
    Addr addr = 0;
    MemOpKind op = MemOpKind::kLoad;
    std::uint64_t last_underflows = 0;
  };
  /// A credit-counter read target: `state` plus the master's local slot
  /// in it (identity for the single bus; home-segment slot when
  /// segmented).
  struct CreditSource {
    const core::CreditState* state = nullptr;
    MasterId slot = 0;
  };

  [[nodiscard]] bool in_window(Cycle now) const noexcept {
    return now >= config_.window_begin && now < config_.window_end;
  }
  [[nodiscard]] std::uint32_t make_track(std::uint32_t pid,
                                         std::string name);
  void sample(std::uint32_t track, Cycle now, double value);
  void poll_counters(Cycle now);

  Config config_;
  bool attached_ = false;
  std::uint32_t n_masters_ = 0;

  std::vector<MasterState> masters_;
  std::vector<CreditSource> credit_;
  const bus::SegmentedInterconnect* seg_ = nullptr;

  std::vector<Track> tracks_;
  std::vector<std::uint32_t> credit_track_;    ///< per master
  std::vector<std::uint32_t> eligible_track_;  ///< per master
  std::vector<std::uint32_t> bridge_track_;    ///< per bridge
  std::vector<std::uint32_t> demand_track_;    ///< per master

  std::vector<Span> spans_;
  std::vector<Sample> samples_;
  std::vector<Instant> instants_;

  std::optional<DemandWindow> demand_;
  Registry registry_;
};

}  // namespace cbus::obs
