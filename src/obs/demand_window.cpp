#include "obs/demand_window.hpp"

namespace cbus::obs {

DemandWindow::DemandWindow(std::uint32_t n_masters, Cycle window,
                           std::uint32_t buckets)
    : n_masters_(n_masters), n_buckets_(buckets) {
  CBUS_EXPECTS_MSG(n_masters >= 1, "demand window needs >= 1 master");
  CBUS_EXPECTS_MSG(buckets >= 1, "demand window needs >= 1 bucket");
  CBUS_EXPECTS_MSG(window >= buckets,
                   "demand window shorter than its bucket count");
  bucket_width_ = (window + buckets - 1) / buckets;
  window_ = bucket_width_ * buckets;
  buckets_.resize(static_cast<std::size_t>(n_masters) * buckets);
}

void DemandWindow::record(MasterId m, Cycle now, std::uint64_t weight) {
  CBUS_EXPECTS(m < n_masters_);
  const std::uint64_t epoch = now / bucket_width_;
  Bucket& slot = bucket(m, epoch % n_buckets_);
  if (slot.epoch != epoch) {
    slot.epoch = epoch;
    slot.count = 0;
  }
  slot.count += weight;
}

std::uint64_t DemandWindow::demand(MasterId m, Cycle now) const {
  CBUS_EXPECTS(m < n_masters_);
  const std::uint64_t epoch = now / bucket_width_;
  const std::uint64_t oldest =
      epoch >= n_buckets_ - 1 ? epoch - (n_buckets_ - 1) : 0;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_buckets_; ++i) {
    const Bucket& slot = bucket(m, i);
    if (slot.epoch >= oldest && slot.epoch <= epoch) total += slot.count;
  }
  return total;
}

double DemandWindow::rate(MasterId m, Cycle now) const {
  return static_cast<double>(demand(m, now)) /
         static_cast<double>(window_);
}

}  // namespace cbus::obs
