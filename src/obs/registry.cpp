#include "obs/registry.hpp"

#include <ostream>

namespace cbus::obs {

namespace {

template <typename Deque>
[[nodiscard]] auto* find_entry(Deque& entries, std::string_view name) {
  for (auto& entry : entries) {
    if (entry.name == name) return &entry.instrument;
  }
  return static_cast<decltype(&entries.front().instrument)>(nullptr);
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  if (auto* found = find_entry(counters_, name)) return *found;
  counters_.push_back({std::string(name), Counter{}});
  order_.emplace_back(Sample::Kind::kCounter, counters_.size() - 1);
  return counters_.back().instrument;
}

Gauge& Registry::gauge(std::string_view name) {
  if (auto* found = find_entry(gauges_, name)) return *found;
  gauges_.push_back({std::string(name), Gauge{}});
  order_.emplace_back(Sample::Kind::kGauge, gauges_.size() - 1);
  return gauges_.back().instrument;
}

Timer& Registry::timer(std::string_view name) {
  if (auto* found = find_entry(timers_, name)) return *found;
  timers_.push_back({std::string(name), Timer{}});
  order_.emplace_back(Sample::Kind::kTimer, timers_.size() - 1);
  return timers_.back().instrument;
}

std::vector<Registry::Sample> Registry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(order_.size());
  for (const auto& [kind, index] : order_) {
    Sample sample;
    sample.kind = kind;
    switch (kind) {
      case Sample::Kind::kCounter: {
        const auto& entry = counters_[index];
        sample.name = entry.name;
        sample.value = static_cast<double>(entry.instrument.value());
        break;
      }
      case Sample::Kind::kGauge: {
        const auto& entry = gauges_[index];
        sample.name = entry.name;
        sample.value = entry.instrument.value();
        sample.extra = entry.instrument.max();
        break;
      }
      case Sample::Kind::kTimer: {
        const auto& entry = timers_[index];
        sample.name = entry.name;
        sample.value = entry.instrument.total_seconds();
        sample.extra = static_cast<double>(entry.instrument.intervals());
        break;
      }
    }
    out.push_back(std::move(sample));
  }
  return out;
}

void Registry::write_json(std::ostream& out) const {
  out << '{';
  bool first = true;
  for (const Sample& sample : snapshot()) {
    if (!first) out << ", ";
    first = false;
    out << '"' << sample.name << "\": " << sample.value;
  }
  out << '}';
}

}  // namespace cbus::obs
