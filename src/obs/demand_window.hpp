// obs::DemandWindow -- sliding-window per-master demand measurement.
//
// The ABR explicit-rate literature (Fahmy & Jain, PAPERS.md) builds rate
// control on switch-side measurement of per-source demand over a moving
// window; the ROADMAP's adaptive credit controller needs exactly that
// substrate, and the timeline tracer renders it as per-master demand
// counter tracks. The window is bucketed: `buckets` ring slots of
// `window / buckets` cycles each, so demand(now) answers "events in
// roughly the last `window` cycles" (quantized to one bucket width) from
// O(buckets) integers per master -- deterministic, allocation-free after
// construction, and cheap enough to update on every request.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace cbus::obs {

class DemandWindow {
 public:
  /// `window` is rounded up to a multiple of `buckets` (each bucket then
  /// covers window / buckets cycles). Preconditions: n_masters >= 1,
  /// buckets >= 1, window >= buckets.
  DemandWindow(std::uint32_t n_masters, Cycle window,
               std::uint32_t buckets = 16);

  /// Count `weight` demand events for master `m` at cycle `now`.
  /// `now` must be non-decreasing across calls (simulation time).
  void record(MasterId m, Cycle now, std::uint64_t weight = 1);

  /// Events recorded for `m` in the last `window()` cycles before `now`
  /// (inclusive), quantized to bucket width. Counts recorded at cycles
  /// after `now` are invisible only if time ran backwards -- which the
  /// record() precondition forbids.
  [[nodiscard]] std::uint64_t demand(MasterId m, Cycle now) const;

  /// demand / window: the master's windowed request rate per cycle.
  [[nodiscard]] double rate(MasterId m, Cycle now) const;

  [[nodiscard]] Cycle window() const noexcept { return window_; }
  [[nodiscard]] std::uint32_t n_masters() const noexcept {
    return n_masters_;
  }

 private:
  struct Bucket {
    std::uint64_t epoch = ~std::uint64_t{0};  ///< cycle / bucket_width
    std::uint64_t count = 0;
  };

  [[nodiscard]] const Bucket& bucket(MasterId m, std::size_t i) const {
    return buckets_[m * n_buckets_ + i];
  }
  [[nodiscard]] Bucket& bucket(MasterId m, std::size_t i) {
    return buckets_[m * n_buckets_ + i];
  }

  std::uint32_t n_masters_;
  std::uint32_t n_buckets_;
  Cycle bucket_width_;
  Cycle window_;
  std::vector<Bucket> buckets_;  ///< [master][ring slot]
};

}  // namespace cbus::obs
