// obs::Registry -- named counters, gauges and timers shared by the
// observability layers (timeline tracer, campaign telemetry).
//
// The hooks are built to be left in place permanently: with the default
// build (`-DCBUS_OBS=ON`, macro CBUS_OBS_ENABLED=1) a Counter::add is a
// single uncontended integer add; configuring with `-DCBUS_OBS=OFF`
// compiles every hook down to an empty inline (no storage, no clock
// reads), so instrumented call sites cost nothing. The Registry API is
// identical in both modes -- call sites never #ifdef.
//
// Instruments are NOT thread-safe: each worker/instance owns its own
// Registry (the experiment runner folds per-thread registries under its
// existing fold mutex), matching the determinism-first design of the
// simulation core.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#ifndef CBUS_OBS_ENABLED
#define CBUS_OBS_ENABLED 1
#endif

namespace cbus::obs {

/// True when the observability hooks are compiled in (CBUS_OBS=ON).
inline constexpr bool kEnabled = CBUS_OBS_ENABLED != 0;

#if CBUS_OBS_ENABLED

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written level plus its high-water mark.
class Gauge {
 public:
  void set(double v) noexcept {
    value_ = v;
    if (v > max_) max_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Accumulated wall time over counted intervals. Use Timer::Scope for
/// RAII measurement of a block.
class Timer {
 public:
  void add(std::chrono::nanoseconds d) noexcept {
    total_ns_ += static_cast<std::uint64_t>(d.count());
    ++intervals_;
  }
  [[nodiscard]] std::uint64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] std::uint64_t intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return static_cast<double>(total_ns_) * 1e-9;
  }

  class Scope {
   public:
    explicit Scope(Timer& timer) noexcept
        : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { timer_->add(std::chrono::steady_clock::now() - start_); }

   private:
    Timer* timer_;
    std::chrono::steady_clock::time_point start_;
  };

 private:
  std::uint64_t total_ns_ = 0;
  std::uint64_t intervals_ = 0;
};

#else  // CBUS_OBS_ENABLED == 0: every hook is an empty inline.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  [[nodiscard]] double max() const noexcept { return 0.0; }
};

class Timer {
 public:
  void add(std::chrono::nanoseconds) noexcept {}
  [[nodiscard]] std::uint64_t total_ns() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t intervals() const noexcept { return 0; }
  [[nodiscard]] double total_seconds() const noexcept { return 0.0; }

  class Scope {
   public:
    explicit Scope(Timer&) noexcept {}  // no clock read
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

#endif  // CBUS_OBS_ENABLED

/// Name-keyed instrument store. Lookups are linear over a deque (the
/// registries here hold a handful of instruments and call sites cache the
/// returned reference); references stay valid for the Registry's
/// lifetime. Names are listed in first-registration order everywhere, so
/// snapshots are deterministic.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Timer& timer(std::string_view name);

  struct Sample {
    std::string name;
    enum class Kind : std::uint8_t { kCounter, kGauge, kTimer } kind;
    double value = 0.0;   ///< count, level, or total seconds
    double extra = 0.0;   ///< gauge max / timer interval count
  };

  /// Every instrument's current reading, in registration order.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Render the snapshot as a JSON object ({"name": value, ...}).
  void write_json(std::ostream& out) const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    T instrument;
  };
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Timer>> timers_;
  /// (kind, index) pairs in registration order, for snapshots.
  std::vector<std::pair<Sample::Kind, std::size_t>> order_;
};

}  // namespace cbus::obs
