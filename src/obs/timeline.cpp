#include "obs/timeline.hpp"

#include <cmath>
#include <ostream>

#include "bus/segmented.hpp"
#include "common/build_info.hpp"
#include "common/contracts.hpp"
#include "core/credit_filter.hpp"
#include "platform/multicore.hpp"

namespace cbus::obs {
namespace {

/// Track-group processes of the rendered trace (see the header comment).
constexpr std::uint32_t kPidMasters = 0;
constexpr std::uint32_t kPidCredit = 1;
constexpr std::uint32_t kPidBridges = 2;
constexpr std::uint32_t kPidDemand = 3;

/// JSON number that round-trips: integers print without a fraction,
/// everything else with enough digits to reconstruct the double.
void write_number(std::ostream& out, double value) {
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    out << static_cast<std::int64_t>(value);
  } else {
    const auto flags = out.flags();
    const auto precision = out.precision();
    out.precision(17);
    out << value;
    out.flags(flags);
    out.precision(precision);
  }
}

}  // namespace

Timeline::Timeline() : Timeline(Config{}) {}

Timeline::Timeline(const Config& config)
    : Component("timeline"), config_(config) {
  CBUS_EXPECTS_MSG(config.window_begin < config.window_end,
                   "trace window is empty");
  CBUS_EXPECTS_MSG(config.counter_stride >= 1,
                   "counter stride must be >= 1 cycle");
}

void Timeline::attach(platform::Multicore& machine) {
  CBUS_EXPECTS_MSG(!attached_, "a Timeline traces exactly one run");
  attached_ = true;

  n_masters_ = machine.config().n_cores;
  masters_.resize(n_masters_);
  demand_.emplace(n_masters_, config_.demand_window);

  machine.set_bus_observer(this);
  seg_ = machine.segmented();

  // Per-master credit readers: the single CBA filter covers every master
  // directly; under the segmented topology a master's budget lives in its
  // home segment's filter at its local slot. Non-CBA setups have no
  // credit state and simply get no credit tracks.
  if (machine.credit_filter() != nullptr) {
    for (MasterId m = 0; m < n_masters_; ++m) {
      credit_.push_back({&machine.credit_filter()->state(), m});
    }
  } else if (seg_ != nullptr &&
             machine.segment_filter(seg_->home_segment(0)) != nullptr) {
    for (MasterId m = 0; m < n_masters_; ++m) {
      core::CreditFilter* filter =
          machine.segment_filter(seg_->home_segment(m));
      CBUS_EXPECTS(filter != nullptr);
      credit_.push_back({&filter->state(), seg_->local_slot(m)});
    }
  }

  const auto named = [](const char* prefix, std::uint32_t n) {
    std::string name(prefix);
    name += std::to_string(n);
    return name;
  };
  for (MasterId m = 0; m < n_masters_; ++m) {
    if (!credit_.empty()) {
      credit_track_.push_back(make_track(kPidCredit, named("credit m", m)));
      eligible_track_.push_back(
          make_track(kPidCredit, named("eligible m", m)));
    }
    demand_track_.push_back(make_track(kPidDemand, named("demand m", m)));
  }
  if (seg_ != nullptr) {
    for (std::uint32_t b = 0; b < seg_->n_bridges(); ++b) {
      const auto [from, to] = seg_->bridge_route(b);
      std::string name = named("bridge s", from);
      name += "->s";
      name += std::to_string(to);
      bridge_track_.push_back(make_track(kPidBridges, std::move(name)));
    }
  }

  // Registered last: every poll observes the cycle's settled state.
  machine.kernel().add(*this);
}

void Timeline::on_request(const bus::BusRequest& request, Cycle now) {
  if (request.master >= n_masters_) return;
  demand_->record(request.master, now);
  registry_.counter("trace.requests").add();
  if (!in_window(now)) return;
  MasterState& ms = masters_[request.master];
  ms.waiting = true;
  ms.issued = now;
}

void Timeline::on_transfer_start(const bus::BusRequest& request, Cycle start,
                                 Cycle /*hold*/) {
  if (request.master >= n_masters_) return;
  MasterState& ms = masters_[request.master];
  if (ms.waiting) {
    // ms.waiting is only ever set inside the window, so the wait span's
    // start is in-window by construction.
    if (start > ms.issued) {
      spans_.push_back({ms.issued, start - ms.issued, request.master, false,
                        request.addr, request.kind});
      registry_.counter("trace.spans").add();
    }
    ms.waiting = false;
  }
  if (!in_window(start)) return;
  ms.transferring = true;
  ms.started = start;
  ms.addr = request.addr;
  ms.op = request.kind;
}

void Timeline::on_transfer_complete(const bus::BusRequest& request,
                                    Cycle end) {
  if (request.master >= n_masters_) return;
  MasterState& ms = masters_[request.master];
  if (!ms.transferring) return;
  // The bus releases at the END of cycle `end`, so the span covers
  // [started, end] inclusive.
  spans_.push_back({ms.started, end + 1 - ms.started, request.master, true,
                    ms.addr, ms.op});
  registry_.counter("trace.spans").add();
  ms.transferring = false;
}

void Timeline::tick(Cycle now) {
  if (!in_window(now)) return;
  // Underflow clamps are instants, polled every cycle so none is missed;
  // they only ever fire on mis-configured MaxL, so the compare stays cold.
  for (MasterId m = 0; m < static_cast<MasterId>(credit_.size()); ++m) {
    const std::uint64_t clamps =
        credit_[m].state->underflow_clamps(credit_[m].slot);
    if (clamps != masters_[m].last_underflows) {
      masters_[m].last_underflows = clamps;
      instants_.push_back({now, m});
      registry_.counter("trace.instants").add();
    }
  }
  if (now % config_.counter_stride == 0) poll_counters(now);
}

void Timeline::poll_counters(Cycle now) {
  for (MasterId m = 0; m < static_cast<MasterId>(credit_.size()); ++m) {
    const CreditSource& src = credit_[m];
    sample(credit_track_[m], now, src.state->budget_cycles(src.slot));
    sample(eligible_track_[m], now, src.state->eligible(src.slot) ? 1.0 : 0.0);
  }
  for (MasterId m = 0; m < n_masters_; ++m) {
    sample(demand_track_[m], now,
           static_cast<double>(demand_->demand(m, now)));
  }
  if (seg_ != nullptr) {
    for (std::uint32_t b = 0; b < seg_->n_bridges(); ++b) {
      sample(bridge_track_[b], now,
             static_cast<double>(seg_->bridge_queue_depth(b)));
    }
  }
}

void Timeline::sample(std::uint32_t track, Cycle now, double value) {
  Track& t = tracks_[track];
  if (t.last == value) return;  // emit-on-change keeps traces compact
  t.last = value;
  samples_.push_back({now, track, value});
  registry_.counter("trace.counter_samples").add();
}

std::uint32_t Timeline::make_track(std::uint32_t pid, std::string name) {
  tracks_.push_back({pid, std::move(name),
                     std::numeric_limits<double>::quiet_NaN()});
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::size_t Timeline::event_count() const noexcept {
  return spans_.size() + samples_.size() + instants_.size();
}

void Timeline::write_json(std::ostream& out) const {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"metadata\": {\"provenance\": ";
  common::write_build_info_json(out);
  out << ", \"clock\": \"1 ts unit = 1 bus cycle\"},\n\"traceEvents\": [\n";

  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Track naming metadata: processes for the four groups, one named
  // thread per master under pid 0.
  static constexpr struct {
    std::uint32_t pid;
    const char* name;
  } kProcesses[] = {{kPidMasters, "bus masters"},
                    {kPidCredit, "credit (cycles)"},
                    {kPidBridges, "bridge queues"},
                    {kPidDemand, "demand"}};
  for (const auto& p : kProcesses) {
    sep();
    out << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << p.pid
        << ", \"args\": {\"name\": \"" << p.name << "\"}}";
  }
  for (MasterId m = 0; m < n_masters_; ++m) {
    sep();
    out << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
        << kPidMasters << ", \"tid\": " << m
        << ", \"args\": {\"name\": \"master m" << m << "\"}}";
  }

  for (const Span& s : spans_) {
    sep();
    out << "{\"ph\": \"X\", \"name\": \"" << (s.transfer ? "xfer" : "wait")
        << "\", \"pid\": " << kPidMasters << ", \"tid\": " << s.master
        << ", \"ts\": " << s.ts << ", \"dur\": " << s.dur
        << ", \"args\": {\"op\": \"" << to_string(s.op) << "\", \"addr\": "
        << s.addr << "}}";
  }
  for (const Sample& s : samples_) {
    const Track& t = tracks_[s.track];
    sep();
    out << "{\"ph\": \"C\", \"name\": \"" << t.name << "\", \"pid\": "
        << t.pid << ", \"tid\": 0, \"ts\": " << s.ts
        << ", \"args\": {\"value\": ";
    write_number(out, s.value);
    out << "}}";
  }
  for (const Instant& i : instants_) {
    sep();
    out << "{\"ph\": \"i\", \"s\": \"t\", \"name\": \"credit.underflow\", "
           "\"pid\": "
        << kPidMasters << ", \"tid\": " << i.master << ", \"ts\": " << i.ts
        << "}";
  }

  out << "\n]\n}\n";
}

}  // namespace cbus::obs
