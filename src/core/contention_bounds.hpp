// Analytical worst-case contention bounds under CBA (paper §III-B).
//
// These closed forms are what a WCET analyst would plug into a static
// analysis alongside the measurement-based protocol; the test suite
// cross-validates every simulated wait against them.
//
// Setting: N masters, worst-case transaction MaxL, CBA with per-master
// recovery increments u_i over scale S (u_i/S of a cycle per cycle).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/cba_config.hpp"

namespace cbus::core {

/// Upper bound on the delay (cycles from raising an eligible request to
/// the start of its transfer) of ONE request of master `m`, when every
/// other master behaves adversarially:
///   * one in-flight transaction may need to drain: MaxL - 1 cycles;
///   * each other master can be granted at most once before m under any
///     of the request-fair inner policies (RR, FIFO, lottery and random
///     permutations all guarantee it for a persistently pending request):
///     (N - 1) * MaxL;
///   * plus the 1-cycle arbitration of m's own grant.
[[nodiscard]] Cycle max_request_delay(const CbaConfig& config);

/// Additional worst-case delay before the request is even *eligible*: the
/// budget must refill from its post-grant minimum to the threshold.
/// After a grant of `hold` cycles, master m has spent hold*(S - u_m)
/// units net and refills at u_m per cycle.
[[nodiscard]] Cycle max_refill_delay(const CbaConfig& config, MasterId m,
                                     Cycle hold);

/// Long-run occupancy upper bound of master m: u_m / S (the throttle).
[[nodiscard]] double occupancy_bound(const CbaConfig& config, MasterId m);

/// Upper bound on the contention slowdown of a task on master m that
/// occupies `bus_fraction` of its isolated execution on the bus:
/// every occupied cycle stretches to at most S/u_m cycles (budget period)
/// plus per-request arbitration losses folded into the fraction; the
/// non-bus fraction is unaffected. This is the paper's "the slowdown
/// should be at most N times" bound, generalized to H-CBA weights.
[[nodiscard]] double slowdown_bound(const CbaConfig& config, MasterId m,
                                    double bus_fraction);

}  // namespace cbus::core
