#include "core/credit_filter.hpp"

#include <algorithm>

namespace cbus::core {

bus::HwCost CreditFilter::hw_cost() const {
  const CbaConfig& cfg = state_.config();
  unsigned total_bits = 0;
  for (MasterId m = 0; m < cfg.n_masters; ++m) {
    unsigned bits = 0;
    for (std::uint64_t v = cfg.saturation[m]; v != 0; v >>= 1) ++bits;
    total_bits += std::max(bits, 1u);
  }
  // Per master: saturating adder + threshold comparator ~ 2 LUTs per bit
  // on 4-LUT fabric, plus the AND into the request lines.
  const unsigned luts = 2 * total_bits + cfg.n_masters;
  return bus::HwCost{total_bits, luts,
                     "per-master saturating budget counter + threshold "
                     "comparator + request gating"};
}

}  // namespace cbus::core
