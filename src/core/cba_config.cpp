#include "core/cba_config.hpp"

#include <numeric>

#include "common/contracts.hpp"

namespace cbus::core {

CbaConfig CbaConfig::homogeneous(std::uint32_t n_masters, Cycle max_latency) {
  CBUS_EXPECTS(n_masters >= 1 && n_masters <= kMaxMasters);
  CBUS_EXPECTS(max_latency >= 1);
  CbaConfig cfg;
  cfg.n_masters = n_masters;
  cfg.max_latency = max_latency;
  cfg.scale = n_masters;
  const std::uint64_t cap = static_cast<std::uint64_t>(n_masters) *
                            static_cast<std::uint64_t>(max_latency);
  cfg.increment.assign(n_masters, 1);
  cfg.saturation.assign(n_masters, cap);
  cfg.threshold.assign(n_masters, cap);
  cfg.initial.assign(n_masters, cap);
  cfg.validate();
  return cfg;
}

CbaConfig CbaConfig::paper_table1() {
  CbaConfig cfg = homogeneous(4, 56);
  // Table I gives the saturation value as 228 rather than 4 x 56 = 224: the
  // counter also absorbs the arbitration cycle that precedes each transfer
  // ((56 + 1) x 4 = 228). We reproduce the published register values.
  cfg.saturation.assign(4, 228);
  cfg.threshold.assign(4, 228);
  cfg.initial.assign(4, 228);
  cfg.validate();
  return cfg;
}

CbaConfig CbaConfig::heterogeneous(Cycle max_latency,
                                   std::span<const RationalRate> rates) {
  CBUS_EXPECTS(!rates.empty() && rates.size() <= kMaxMasters);
  CBUS_EXPECTS(max_latency >= 1);
  CbaConfig cfg;
  cfg.n_masters = static_cast<std::uint32_t>(rates.size());
  cfg.max_latency = max_latency;
  cfg.scale = common_scale(rates);
  const auto inc = scaled_increments(rates);
  cfg.increment.assign(inc.begin(), inc.end());
  const std::uint64_t cap = cfg.scale * max_latency;
  cfg.saturation.assign(cfg.n_masters, cap);
  cfg.threshold.assign(cfg.n_masters, cap);
  cfg.initial.assign(cfg.n_masters, cap);
  cfg.validate();
  return cfg;
}

CbaConfig CbaConfig::paper_hcba(Cycle max_latency) {
  const RationalRate rates[] = {
      {1, 2}, {1, 6}, {1, 6}, {1, 6}};  // TuA 50%, contenders 1/6 each
  return heterogeneous(max_latency, rates);
}

CbaConfig CbaConfig::with_cap_boost(CbaConfig base, MasterId master,
                                    std::uint32_t cap_multiplier) {
  CBUS_EXPECTS(master < base.n_masters);
  CBUS_EXPECTS(cap_multiplier >= 1);
  base.saturation[master] =
      base.threshold[master] * static_cast<std::uint64_t>(cap_multiplier);
  base.initial[master] = base.saturation[master];
  base.validate();
  return base;
}

void CbaConfig::validate() const {
  CBUS_EXPECTS(n_masters >= 1 && n_masters <= kMaxMasters);
  CBUS_EXPECTS(max_latency >= 1);
  CBUS_EXPECTS(scale >= 1);
  CBUS_EXPECTS(increment.size() == n_masters);
  CBUS_EXPECTS(saturation.size() == n_masters);
  CBUS_EXPECTS(threshold.size() == n_masters);
  CBUS_EXPECTS(initial.size() == n_masters);
  for (MasterId m = 0; m < n_masters; ++m) {
    CBUS_EXPECTS_MSG(threshold[m] <= saturation[m],
                     "eligibility threshold above the saturation cap");
    CBUS_EXPECTS_MSG(initial[m] <= saturation[m],
                     "initial budget above the saturation cap");
    CBUS_EXPECTS_MSG(increment[m] <= scale,
                     "a single master recovering faster than the bus serves "
                     "makes credits meaningless");
  }
}

double CbaConfig::total_recovery_rate() const noexcept {
  const std::uint64_t sum =
      std::accumulate(increment.begin(), increment.end(), std::uint64_t{0});
  return static_cast<double>(sum) / static_cast<double>(scale);
}

double CbaConfig::bandwidth_share(MasterId m) const {
  CBUS_EXPECTS(m < n_masters);
  return static_cast<double>(increment[m]) / static_cast<double>(scale);
}

}  // namespace cbus::core
