// CreditFilter: plugs the CBA credit state into the bus as its eligibility
// filter (paper §III-A: "CBA acts as a filter to determine the pending
// requests that are eligible to be arbitrated: only those whose core has
// MaxL budget can be arbitrated. Then, any arbitration policy can be
// applied.").
#pragma once

#include "bus/arbiter.hpp"
#include "bus/interfaces.hpp"
#include "core/credit_state.hpp"

namespace cbus::core {

class CreditFilter final : public bus::EligibilityFilter {
 public:
  explicit CreditFilter(CbaConfig config) : state_(std::move(config)) {}

  /// SoA-view constructor for batched campaigns: the counters live in an
  /// external CreditSoA lane (see CreditState).
  CreditFilter(CbaConfig config, const CreditLaneView& view)
      : state_(std::move(config), view) {}

  [[nodiscard]] std::uint32_t eligible(std::uint32_t pending,
                                       Cycle /*now*/) override {
    return state_.eligible_mask(pending);
  }

  void on_cycle(MasterId holder, Cycle /*now*/) override {
    state_.tick(holder);
  }

  void on_grant(MasterId /*master*/, Cycle /*now*/) override {
    // Budget is charged per occupancy cycle in on_cycle; nothing to do at
    // grant time. (The COMP latch reset of Table I lives with the WCET-mode
    // virtual contenders, not in the filter.)
  }

  void on_remote_occupancy(MasterId master, Cycle occupancy) override {
    // Foreign-segment occupancy of a local master's transaction, charged
    // against its home budget as a burst debit -- the per-cycle recovery
    // already ran while the transaction was away, so the Table-I
    // equation covers the whole path (see CreditState::charge).
    state_.charge(master, occupancy);
  }

  void reset() override { state_.reset(); }

  [[nodiscard]] CreditState& state() noexcept { return state_; }
  [[nodiscard]] const CreditState& state() const noexcept { return state_; }

  /// Hardware-cost model of the CBA addition (paper §IV-B: "far less than
  /// 0.1%" FPGA area growth): per master one budget counter of
  /// ceil(log2(saturation)) bits, an adder, a comparator against the
  /// threshold and the eligibility AND gate.
  [[nodiscard]] bus::HwCost hw_cost() const;

 private:
  CreditState state_;
};

}  // namespace cbus::core
