#include "core/virtual_contender.hpp"

#include "common/contracts.hpp"

namespace cbus::core {

VirtualContender::VirtualContender(const VirtualContenderConfig& config,
                                   bus::BusPort& bus,
                                   const CreditState* credits)
    : sim::Component("contender-" + std::to_string(config.self)),
      config_(config),
      bus_(bus),
      credits_(credits) {
  CBUS_EXPECTS(config.self != config.tua);
  CBUS_EXPECTS(config.hold >= 1);
  CBUS_EXPECTS_MSG(
      config.policy == ContenderPolicy::kAlwaysCompete || credits != nullptr,
      "the COMP latch needs the credit state to watch BUDGi");
  bus_.connect_master(config_.self, *this);
}

bool VirtualContender::budget_full() const {
  if (credits_ == nullptr) return true;
  const MasterId slot =
      config_.credit_slot == kNoMaster ? config_.self : config_.credit_slot;
  return credits_->saturated(slot);
}

void VirtualContender::tick(Cycle now) {
  if (config_.policy == ContenderPolicy::kCompLatch) {
    // COMPi <= 1 when BUDGi saturated and the TuA has a request pending.
    if (!comp_ && budget_full() && bus_.has_pending(config_.tua)) {
      comp_ = true;
    }
  } else {
    comp_ = true;  // always compete
  }

  if (comp_ && bus_.can_request(config_.self)) {
    bus::BusRequest req;
    req.master = config_.self;
    req.kind = MemOpKind::kLoad;
    req.forced_hold = config_.hold;  // keep the bus busy for MaxL cycles
    bus_.request(req, now);
  }
}

void VirtualContender::on_grant(const bus::BusRequest& /*request*/,
                                Cycle /*now*/, Cycle /*hold*/) {
  // COMPi is reset whenever core i is granted access to the bus (Table I).
  comp_ = false;
  ++grants_;
}

void VirtualContender::on_complete(const bus::BusRequest& /*request*/,
                                   Cycle /*now*/) {}

}  // namespace cbus::core
