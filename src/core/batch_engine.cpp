#include "core/batch_engine.hpp"

#include <algorithm>
#include <bit>

#include "common/contracts.hpp"
#include "vec/vec.hpp"

namespace cbus::core {

BatchCreditEngine::BatchCreditEngine(CreditSoA& soa, const CbaConfig& config,
                                     std::size_t lanes)
    : soa_(soa),
      config_(config),
      lanes_(lanes),
      padded_(static_cast<std::uint32_t>(soa.padded_lanes())),
      buses_(lanes, nullptr),
      states_(lanes, nullptr),
      caps_(config.saturation.begin(),
            config.saturation.begin() + config.n_masters),
      charge_(config.n_masters, 0),
      clamped_(config.n_masters, 0) {
  CBUS_EXPECTS_MSG(lanes >= 1 && lanes <= 64,
                   "engine masks are single words: <= 64 lanes");
  CBUS_EXPECTS(soa.lanes() == lanes);
  CBUS_EXPECTS(soa.slots_per_lane() >= config.n_masters);
}

void BatchCreditEngine::set_lane(std::size_t lane, bus::NonSplitBus& bus,
                                 CreditState& state) {
  CBUS_EXPECTS(lane < lanes_);
  buses_[lane] = &bus;
  states_[lane] = &state;
}

void BatchCreditEngine::add_contender(std::size_t lane,
                                      const VirtualContenderConfig& config,
                                      bus::NonSplitBus& bus) {
  CBUS_EXPECTS(lane < lanes_);
  CBUS_EXPECTS_MSG(config.credit_slot == kNoMaster,
                   "the engine serves the single-bus topology: a contender "
                   "watches its own slot");
  // The bank list is lane-invariant (lanes are replicas): lane 0 creates
  // the banks in registration (= serial tick) order, later lanes must
  // match them.
  std::size_t bank = banks_.size();
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b].config.self == config.self) {
      bank = b;
      break;
    }
  }
  if (bank == banks_.size()) {
    CBUS_EXPECTS_MSG(lane == 0, "contender banks must match across lanes");
    Bank fresh{config, 0, 0};
    if (config.policy == ContenderPolicy::kCompLatch) {
      fresh.sat_index = sat_slots_.size();
      sat_slots_.push_back(config.self);
      sat_caps_.push_back(config_.saturation[config.self]);
      sat_out_.push_back(0);
    }
    banks_.push_back(fresh);
  } else {
    CBUS_EXPECTS(banks_[bank].config.policy == config.policy &&
                 banks_[bank].config.hold == config.hold &&
                 banks_[bank].config.tua == config.tua);
  }
  auto proxy = std::make_unique<Proxy>();
  proxy->engine = this;
  proxy->lane = lane;
  proxy->bank = bank;
  bus.connect_master(config.self, *proxy);
  proxies_.push_back(std::move(proxy));
}

void BatchCreditEngine::Proxy::on_latch(const bus::BusRequest& /*request*/,
                                        Cycle /*now*/) {
  // Arbitration consumed the pending request; until on_grant the lane is
  // neither pending nor holding, so the bank may legally re-request --
  // exactly what the serial VirtualContender does in that window.
  engine->banks_[bank].pend &= ~(std::uint64_t{1} << lane);
}

void BatchCreditEngine::Proxy::on_grant(const bus::BusRequest& /*request*/,
                                        Cycle /*now*/, Cycle /*hold*/) {
  // COMPi is reset whenever core i is granted access to the bus (Table I).
  const std::uint64_t bit = std::uint64_t{1} << lane;
  engine->banks_[bank].comp &= ~bit;
  engine->banks_[bank].hold |= bit;
}

void BatchCreditEngine::Proxy::on_complete(const bus::BusRequest& /*request*/,
                                           Cycle /*now*/) {
  engine->banks_[bank].hold &= ~(std::uint64_t{1} << lane);
}

bool BatchCreditEngine::comp(std::size_t lane, MasterId m) const {
  for (const Bank& b : banks_) {
    if (b.config.self == m) return ((b.comp >> lane) & 1u) != 0;
  }
  return false;
}

void BatchCreditEngine::on_cycle(Cycle now, std::span<const std::size_t> live) {
  std::uint64_t live_word = 0;
  for (const std::size_t l : live) live_word |= std::uint64_t{1} << l;

  // Phase 0: the contender bank -- Table I's COMP latch, vertically.
  // COMPi latches when BUDGi is saturated AND the TuA has a request
  // pending; a latched contender competes whenever it legally can.
  // Serial order is per lane: contenders tick after cores, ascending
  // master id -- a contender reads only its own latch, its own BUDGi and
  // the TuA's pending flag, so running slot-major across lanes observes
  // the very same values.
  if (!banks_.empty()) {
    // The saturation test only matters on lanes whose latch is still
    // down AND whose TuA has a request pending; both are usually rare
    // (a saturated contender stays latched until granted), so the whole
    // query is skipped most cycles.
    if (!sat_slots_.empty()) {
      std::uint64_t need = 0;
      for (const Bank& bank : banks_) {
        if (bank.config.policy == ContenderPolicy::kCompLatch) {
          need |= ~bank.comp & live_word;
        }
      }
      if (need != 0) {
        std::uint64_t tua_pending = 0;
        const MasterId tua = banks_.front().config.tua;
        for (const std::size_t l : live) {
          if (buses_[l]->has_pending(tua)) tua_pending |= std::uint64_t{1} << l;
        }
        if ((tua_pending & need) != 0) {
          const vec::SatQuery query{
              soa_.values_row(0),
              sat_slots_.data(),
              sat_caps_.data(),
              sat_out_.data(),
              padded_,
              static_cast<std::uint32_t>(lanes_),
              static_cast<std::uint32_t>(sat_slots_.size()),
          };
          vec::sat_words(query);
          for (Bank& bank : banks_) {
            if (bank.config.policy == ContenderPolicy::kCompLatch) {
              bank.comp |= sat_out_[bank.sat_index] & tua_pending & live_word;
            }
          }
        }
      }
    }
    for (Bank& bank : banks_) {
      if (bank.config.policy != ContenderPolicy::kCompLatch) {
        bank.comp |= live_word;  // always compete (non-CBA baseline)
      }
    }
  }

  // Phase 0b, bank-major: latched contenders raise requests against the
  // PRE-tick_begin bus state (serial order: contenders tick before the
  // bus). The candidate set per bank is pure word arithmetic on the
  // vertical mirrors -- comp set, not pending, not holding -- and is
  // almost always zero, so the common cycle does one three-AND test per
  // bank and no per-lane probing at all. Lanes are independent, so
  // draining one bank across all lanes before the next preserves each
  // lane's own request order (banks are registered in ascending master
  // order, the serial tick order).
  for (Bank& bank : banks_) {
    std::uint64_t cand = bank.comp & ~bank.pend & ~bank.hold & live_word;
    while (cand != 0) {
      const auto l = static_cast<std::size_t>(std::countr_zero(cand));
      cand &= cand - 1;
      bus::BusRequest req;
      req.master = bank.config.self;
      req.kind = MemOpKind::kLoad;
      req.forced_hold = bank.config.hold;  // bus busy for MaxL cycles
      buses_[l]->request(req, now);
      bank.pend |= std::uint64_t{1} << l;
    }
  }

  // Phase 1: each lane's latched grant begins its transfer and this
  // cycle's holder becomes known -- the mask the Table-I update charges.
  std::fill(charge_.begin(), charge_.end(), 0);
  for (const std::size_t l : live) {
    bus::NonSplitBus& bus = *buses_[l];
    bus.tick_begin(now);
    const MasterId holder = bus.holder();
    if (holder != kNoMaster) charge_[holder] |= std::uint64_t{1} << l;
  }

  // Phase 2: the Table-I update -- every counter slot's vertical row in
  // one dispatched call. Retired lanes are masked out (their machines
  // stopped ticking, so their counters must freeze exactly where the
  // serial run left them).
  const vec::CreditCycle cycle{
      soa_.values_row(0),
      soa_.incs_row(0),
      caps_.data(),
      charge_.data(),
      clamped_.data(),
      config_.scale,
      live_word,
      padded_,
      static_cast<std::uint32_t>(lanes_),
      config_.n_masters,
  };
  vec::credit_tick_cycle(cycle);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    std::uint64_t clamped = clamped_[m];
    while (clamped != 0) {
      const auto l = static_cast<std::size_t>(std::countr_zero(clamped));
      clamped &= clamped - 1;
      states_[l]->note_clamp(m);
    }
  }

  // Phase 3: transfer advance / completion / re-arbitration, which reads
  // the post-update eligibility exactly as the serial bus tick does.
  for (const std::size_t l : live) buses_[l]->tick_finish(now);
}

}  // namespace cbus::core
