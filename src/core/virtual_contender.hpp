// WCET-estimation-mode contender (paper §III-B/C, Table I).
//
// During analysis, cores 2..4 are replaced by request generators that
// produce the probabilistic worst-case contention for the task under
// analysis (TuA, master 0):
//
//  * REQi is forced: a contender always has a request "ready".
//  * A granted contender keeps the bus busy for MaxL (56) cycles.
//  * COMPi latches when the contender's budget is full (BUDGi == 228) AND
//    the TuA has a request pending (REQ1); it is reset when the contender
//    is granted. A contender competes -- i.e. actually raises its request
//    towards the arbiter -- only while COMPi is set. This makes contenders
//    greedy exactly when they can hurt the TuA, while never wasting budget
//    when the TuA is idle.
//
// The same class also models the *non-CBA* maximum-contention generator
// (always compete, no budget/COMP gating) used for the RP baseline, via
// ContenderPolicy.
#pragma once

#include <cstdint>

#include "bus/interfaces.hpp"
#include "core/credit_state.hpp"
#include "sim/component.hpp"

namespace cbus::core {

enum class ContenderPolicy : std::uint8_t {
  /// Always have a request raised (baseline maximum contention, no CBA).
  kAlwaysCompete,
  /// Table I behaviour: compete only while the COMP latch is set.
  kCompLatch,
};

struct VirtualContenderConfig {
  MasterId self = 1;
  MasterId tua = 0;
  Cycle hold = 56;  ///< bus occupancy per grant (MaxL in WCET mode)
  ContenderPolicy policy = ContenderPolicy::kCompLatch;
  /// The slot this contender's BUDGi occupies in the CreditState it
  /// watches. kNoMaster means `self` -- the single-bus case; on a
  /// segmented interconnect each segment keeps its own credit state and
  /// the contender watches its LOCAL slot there.
  MasterId credit_slot = kNoMaster;
};

class VirtualContender final : public sim::Component, public bus::BusMaster {
 public:
  /// `credits` may be null only for kAlwaysCompete (no budget to watch).
  VirtualContender(const VirtualContenderConfig& config, bus::BusPort& bus,
                   const CreditState* credits);

  void tick(Cycle now) override;

  void on_grant(const bus::BusRequest& request, Cycle now,
                Cycle hold) override;
  void on_complete(const bus::BusRequest& request, Cycle now) override;

  [[nodiscard]] bool comp() const noexcept { return comp_; }
  [[nodiscard]] std::uint64_t grants() const noexcept { return grants_; }

 private:
  [[nodiscard]] bool budget_full() const;

  VirtualContenderConfig config_;
  bus::BusPort& bus_;
  const CreditState* credits_;
  bool comp_ = false;
  std::uint64_t grants_ = 0;
};

}  // namespace cbus::core
