#include "core/credit_state.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace cbus::core {

CreditState::CreditState(CbaConfig config) : config_(std::move(config)) {
  config_.validate();
  owned_.resize(config_.n_masters);
  counters_ = owned_;
  underflows_by_master_.resize(config_.n_masters, 0);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    counters_[m] = SaturatingCounter(config_.saturation[m], config_.initial[m]);
  }
}

CreditState::CreditState(CbaConfig config,
                         std::span<SaturatingCounter> storage)
    : config_(std::move(config)) {
  config_.validate();
  CBUS_EXPECTS_MSG(storage.size() >= config_.n_masters,
                   "credit storage smaller than n_masters");
  counters_ = storage.first(config_.n_masters);
  underflows_by_master_.resize(config_.n_masters, 0);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    counters_[m] = SaturatingCounter(config_.saturation[m], config_.initial[m]);
  }
}

CreditSoA::CreditSoA(std::size_t lanes, const CbaConfig& config,
                     std::size_t slots_per_lane)
    : lanes_(lanes),
      slots_(std::max<std::size_t>(config.n_masters, slots_per_lane)) {
  CBUS_EXPECTS(lanes >= 1);
  storage_.resize(lanes_ * slots_);
}

std::span<SaturatingCounter> CreditSoA::lane(std::size_t l) {
  CBUS_EXPECTS(l < lanes_);
  return std::span<SaturatingCounter>(storage_).subspan(l * slots_, slots_);
}

void CreditState::tick(MasterId holder) {
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    if (m != holder) {
      counters_[m].add(config_.increment[m]);
      continue;
    }
    // Combined net update (recovery and occupancy charge in one step; see
    // SaturatingCounter::tick for why the order matters). Clamp at zero
    // like the hardware counter would -- only reachable when MaxL was
    // under-estimated; tracked so experiments can detect it.
    const std::uint64_t up = counters_[m].value() + config_.increment[m];
    if (config_.scale <= up) {
      counters_[m].tick(config_.increment[m], config_.scale);
    } else {
      counters_[m].tick(config_.increment[m],
                        counters_[m].value() + config_.increment[m]);
      ++underflow_clamps_;
      ++underflows_by_master_[m];
    }
  }
}

void CreditState::charge(MasterId m, Cycle occupancy) {
  CBUS_EXPECTS(m < config_.n_masters);
  const std::uint64_t units = config_.scale * occupancy;
  if (counters_[m].value() >= units) {
    counters_[m].spend(units);
  } else {
    // Count the shortfall in CYCLES, the same unit tick() clamps in
    // (one clamp per cycle that could not be paid), so
    // credit.underflows compares across topologies.
    const std::uint64_t shortfall = units - counters_[m].value();
    const std::uint64_t clamped_cycles =
        (shortfall + config_.scale - 1) / config_.scale;
    underflow_clamps_ += clamped_cycles;
    underflows_by_master_[m] += clamped_cycles;
    counters_[m].spend(counters_[m].value());
  }
}

std::uint64_t CreditState::budget(MasterId m) const {
  CBUS_EXPECTS(m < config_.n_masters);
  return counters_[m].value();
}

double CreditState::budget_cycles(MasterId m) const {
  return static_cast<double>(budget(m)) / static_cast<double>(config_.scale);
}

bool CreditState::eligible(MasterId m) const {
  CBUS_EXPECTS(m < config_.n_masters);
  return counters_[m].value() >= config_.threshold[m];
}

std::uint32_t CreditState::eligible_mask(std::uint32_t pending) const {
  std::uint32_t mask = 0;
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    if (((pending >> m) & 1u) && eligible(m)) mask |= 1u << m;
  }
  return mask;
}

bool CreditState::saturated(MasterId m) const {
  CBUS_EXPECTS(m < config_.n_masters);
  return counters_[m].saturated();
}

void CreditState::set_budget(MasterId m, std::uint64_t units) {
  CBUS_EXPECTS(m < config_.n_masters);
  counters_[m].reset(units);
}

void CreditState::set_increment(MasterId m, std::uint64_t units) {
  CBUS_EXPECTS(m < config_.n_masters);
  CBUS_EXPECTS_MSG(units >= 1 && units <= config_.scale,
                   "increment must be in [1, scale]");
  config_.increment[m] = units;
}

void CreditState::reset() {
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    counters_[m].reset(config_.initial[m]);
  }
  underflow_clamps_ = 0;
  std::fill(underflows_by_master_.begin(), underflows_by_master_.end(), 0);
}

}  // namespace cbus::core
