#include "core/credit_state.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "vec/vec.hpp"

namespace cbus::core {

CreditState::CreditState(CbaConfig config) : config_(std::move(config)) {
  config_.validate();
  owned_.resize(config_.n_masters);
  values_ = owned_.data();
  stride_ = 1;
  underflows_by_master_.resize(config_.n_masters, 0);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    CBUS_EXPECTS(config_.initial[m] <= config_.saturation[m]);
    value(m) = config_.initial[m];
  }
}

CreditState::CreditState(CbaConfig config, const CreditLaneView& view)
    : config_(std::move(config)) {
  config_.validate();
  CBUS_EXPECTS_MSG(view.slots >= config_.n_masters,
                   "credit view smaller than n_masters");
  CBUS_EXPECTS(view.values != nullptr && view.incs != nullptr);
  values_ = view.values;
  incs_ = view.incs;
  stride_ = view.stride;
  underflows_by_master_.resize(config_.n_masters, 0);
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    CBUS_EXPECTS(config_.initial[m] <= config_.saturation[m]);
    value(m) = config_.initial[m];
    incs_[static_cast<std::size_t>(m) * stride_] = config_.increment[m];
  }
}

CreditSoA::CreditSoA(std::size_t lanes, const CbaConfig& config,
                     std::size_t slots_per_lane)
    : lanes_(lanes),
      slots_(std::max<std::size_t>(config.n_masters, slots_per_lane)),
      padded_((lanes + vec::kLaneAlign - 1) / vec::kLaneAlign *
              vec::kLaneAlign) {
  CBUS_EXPECTS(lanes >= 1);
  values_.resize(slots_ * padded_, 0);
  incs_.resize(slots_ * padded_, 0);
}

CreditLaneView CreditSoA::lane(std::size_t l) {
  CBUS_EXPECTS(l < lanes_);
  return CreditLaneView{values_.data() + l, incs_.data() + l, padded_,
                        slots_};
}

void CreditState::tick(MasterId holder) {
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    const std::uint64_t cap = config_.saturation[m];
    const std::uint64_t up = value(m) + config_.increment[m];
    if (m != holder) {
      // Recovery only, saturating at the cap.
      value(m) = std::min(up, cap);
      continue;
    }
    // Combined net update (recovery and occupancy charge in one step --
    // saturating the recovery before charging would silently lose one
    // unit per transaction and break the exact (N-1)*hold recovery
    // identity the fairness argument rests on). Clamp at zero like the
    // hardware counter would -- only reachable when MaxL was
    // under-estimated; tracked so experiments can detect it.
    if (config_.scale <= up) {
      value(m) = std::min(up - config_.scale, cap);
    } else {
      value(m) = 0;
      ++underflow_clamps_;
      ++underflows_by_master_[m];
    }
  }
}

void CreditState::charge(MasterId m, Cycle occupancy) {
  CBUS_EXPECTS(m < config_.n_masters);
  const std::uint64_t units = config_.scale * occupancy;
  if (value(m) >= units) {
    value(m) -= units;
  } else {
    // Count the shortfall in CYCLES, the same unit tick() clamps in
    // (one clamp per cycle that could not be paid), so
    // credit.underflows compares across topologies.
    const std::uint64_t shortfall = units - value(m);
    const std::uint64_t clamped_cycles =
        (shortfall + config_.scale - 1) / config_.scale;
    underflow_clamps_ += clamped_cycles;
    underflows_by_master_[m] += clamped_cycles;
    value(m) = 0;
  }
}

std::uint64_t CreditState::budget(MasterId m) const {
  CBUS_EXPECTS(m < config_.n_masters);
  return value(m);
}

double CreditState::budget_cycles(MasterId m) const {
  return static_cast<double>(budget(m)) / static_cast<double>(config_.scale);
}

bool CreditState::saturated(MasterId m) const {
  CBUS_EXPECTS(m < config_.n_masters);
  return value(m) == config_.saturation[m];
}

void CreditState::set_budget(MasterId m, std::uint64_t units) {
  CBUS_EXPECTS(m < config_.n_masters);
  CBUS_EXPECTS(units <= config_.saturation[m]);
  value(m) = units;
}

void CreditState::set_increment(MasterId m, std::uint64_t units) {
  CBUS_EXPECTS(m < config_.n_masters);
  CBUS_EXPECTS_MSG(units >= 1 && units <= config_.scale,
                   "increment must be in [1, scale]");
  config_.increment[m] = units;
  if (incs_ != nullptr) {
    incs_[static_cast<std::size_t>(m) * stride_] = units;
  }
}

void CreditState::reset() {
  for (MasterId m = 0; m < config_.n_masters; ++m) {
    value(m) = config_.initial[m];
  }
  underflow_clamps_ = 0;
  std::fill(underflows_by_master_.begin(), underflows_by_master_.end(), 0);
}

}  // namespace cbus::core
