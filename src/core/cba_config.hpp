// Configuration of the Credit-Based Arbitration mechanism (paper §III).
//
// All quantities are in *scaled budget units*: the paper multiplies Eq. (1)
// through by N so the hardware works in integers ("when using the bus, the
// budget should also be decreased by N every cycle instead of by 1"). One
// cycle of bus occupancy costs `scale` units; core i recovers
// `increment[i]` units per cycle. For homogeneous CBA with N cores,
// scale == N and increment[i] == 1, giving each core a long-run occupancy
// bound of 1/N. H-CBA method 2 (heterogeneous recovery) chooses a common
// denominator for the per-core rational rates; method 1 (cap boost) raises
// one core's saturation cap above the eligibility threshold so it can issue
// requests back to back.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rational_rate.hpp"
#include "common/types.hpp"

namespace cbus::core {

struct CbaConfig {
  std::uint32_t n_masters = 4;

  /// Worst-case (or upper-bounded) bus transaction duration, in cycles.
  Cycle max_latency = 56;

  /// Budget units charged per cycle of bus occupancy (the paper's N).
  std::uint64_t scale = 4;

  /// Budget units recovered per cycle, per master (the paper's +1).
  std::vector<std::uint64_t> increment;

  /// Saturation value of each budget counter, in units. Paper Table I uses
  /// 228 for the 4-core, MaxL=56 platform.
  std::vector<std::uint64_t> saturation;

  /// Eligibility threshold, in units: a master may be arbitrated only when
  /// its budget is at least this. Equal to saturation for plain CBA;
  /// H-CBA method 1 keeps the threshold while raising the cap.
  std::vector<std::uint64_t> threshold;

  /// Initial budget per master, in units (WCET mode zeroes the TuA's).
  std::vector<std::uint64_t> initial;

  /// --- Factories ---------------------------------------------------------

  /// Plain CBA: every master recovers 1/n of a cycle per cycle; saturation
  /// and threshold are n * max_latency units (= MaxL cycles of credit).
  [[nodiscard]] static CbaConfig homogeneous(std::uint32_t n_masters,
                                             Cycle max_latency);

  /// The exact Table I instance: 4 cores, MaxL = 56, 8-bit counters
  /// saturating at 228, +1/cycle recovery, -4/cycle while using the bus.
  [[nodiscard]] static CbaConfig paper_table1();

  /// H-CBA method 2: heterogeneous recovery rates (in cycles of credit per
  /// cycle, e.g. {1/2, 1/6, 1/6, 1/6}). The common denominator becomes the
  /// scale; saturation == threshold == MaxL cycles of credit.
  [[nodiscard]] static CbaConfig heterogeneous(
      Cycle max_latency, std::span<const RationalRate> rates);

  /// The paper's H-CBA evaluation point: TuA (master 0) recovers 1/2,
  /// each of the other three cores 1/6 -- i.e. 50% of bandwidth to the TuA.
  [[nodiscard]] static CbaConfig paper_hcba(Cycle max_latency = 56);

  /// H-CBA method 1: start from homogeneous CBA and let `master`'s budget
  /// saturate at `cap_multiplier` x MaxL (threshold unchanged), enabling
  /// back-to-back grants for that master.
  [[nodiscard]] static CbaConfig with_cap_boost(CbaConfig base,
                                                MasterId master,
                                                std::uint32_t cap_multiplier);

  /// --- Derived / validation ----------------------------------------------

  /// Throws std::invalid_argument unless the vectors are consistent.
  void validate() const;

  /// Sum of increments divided by scale: 1.0 means recovery exactly matches
  /// bus capacity (work-conserving at saturation); the ablation benches
  /// explore other values.
  [[nodiscard]] double total_recovery_rate() const noexcept;

  /// Convenience: bandwidth fraction master m converges to under full load.
  [[nodiscard]] double bandwidth_share(MasterId m) const;
};

}  // namespace cbus::core
