#include "core/contention_bounds.hpp"

#include "common/contracts.hpp"

namespace cbus::core {

Cycle max_request_delay(const CbaConfig& config) {
  config.validate();
  const Cycle maxl = config.max_latency;
  return (maxl - 1)                        // residual of an in-flight transfer
         + (config.n_masters - 1) * maxl   // one grant per other master
         + 1;                              // own arbitration cycle
}

Cycle max_refill_delay(const CbaConfig& config, MasterId m, Cycle hold) {
  config.validate();
  CBUS_EXPECTS(m < config.n_masters);
  CBUS_EXPECTS(hold >= 1);
  const std::uint64_t spent_net =
      hold * (config.scale - config.increment[m]);
  // Ceil division: refill at increment[m] units per cycle.
  return (spent_net + config.increment[m] - 1) / config.increment[m];
}

double occupancy_bound(const CbaConfig& config, MasterId m) {
  config.validate();
  CBUS_EXPECTS(m < config.n_masters);
  return static_cast<double>(config.increment[m]) /
         static_cast<double>(config.scale);
}

double slowdown_bound(const CbaConfig& config, MasterId m,
                      double bus_fraction) {
  CBUS_EXPECTS(bus_fraction >= 0.0 && bus_fraction <= 1.0);
  const double share = occupancy_bound(config, m);
  CBUS_EXPECTS(share > 0.0);
  // Occupied time stretches by 1/share; a request that was eligible the
  // moment it arrived can additionally wait behind other masters, which
  // is already folded into the stretched occupancy in the long run.
  return (1.0 - bus_fraction) + bus_fraction / share;
}

}  // namespace cbus::core
