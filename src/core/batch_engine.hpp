// BatchCreditEngine: the vectorized per-cycle stage of a batched
// single-bus campaign.
//
// A lockstep stripe runs N independent replicas of the same machine.
// The Table-I work -- credit recovery/charge, the saturation test
// feeding the virtual contenders' COMP latches -- is branch-light
// integer arithmetic repeated identically per lane, so the engine runs
// it VERTICALLY: one cbus::vec operation per counter slot across every
// live lane of the counter-major CreditSoA arena, instead of one scalar
// loop per lane.
//
// Identity argument (the non-negotiable contract): lanes share no
// state, so reordering work ACROSS lanes is unobservable; the only
// ordering that matters is each lane's own per-cycle sequence, which
// the serial kernel fixes as
//
//   cores tick (read pre-update counters, raise requests)
//   -> virtual contenders tick (read pre-update BUDGi, raise requests)
//   -> bus: begin latched grant (this cycle's holder becomes known)
//   -> bus: credit tick sees that holder (CreditFilter::on_cycle)
//   -> bus: transfer advance / completion / arbitration (reads
//      post-update eligibility, RNG drawn iff eligible candidates).
//
// on_cycle() below runs exactly these five phases, each phase across
// all lanes before the next: the contender bank (phase 0) replaces the
// per-lane VirtualContender components, NonSplitBus::tick_begin /
// tick_finish split the bus tick around the vertical credit update, and
// clamp events are routed back to each lane's CreditState so the
// underflow accounting matches the scalar path to the count.
//
// Scope: the single NonSplitBus topology only (segmented and split
// protocols keep the classic lane-major path this PR), <= 64 lanes
// (masks are single words), CBA configured. run_campaign_slice gates on
// exactly these conditions plus vec::engine_enabled().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bus/bus.hpp"
#include "common/types.hpp"
#include "core/credit_state.hpp"
#include "core/virtual_contender.hpp"
#include "sim/batch_kernel.hpp"

namespace cbus::core {

class BatchCreditEngine final : public sim::BatchStage {
 public:
  /// An engine over `soa` (the batch's counter-major arena) for `lanes`
  /// replicas of a machine with credit config `config`.
  BatchCreditEngine(CreditSoA& soa, const CbaConfig& config,
                    std::size_t lanes);

  /// Register lane `lane`'s bus and credit state (every lane must be
  /// registered before the first on_cycle).
  void set_lane(std::size_t lane, bus::NonSplitBus& bus, CreditState& state);

  /// Register a WCET-mode contender slot for lane `lane` -- the engine
  /// drives the Table-I COMP latch for it instead of a per-lane
  /// VirtualContender component. Must be called in ascending master
  /// order per lane (the serial tick order), with the same config on
  /// every lane.
  void add_contender(std::size_t lane, const VirtualContenderConfig& config,
                     bus::NonSplitBus& bus);

  /// One batch cycle across every live lane (sim::BatchStage).
  void on_cycle(Cycle now, std::span<const std::size_t> live) override;

  /// COMP latch of contender slot `m` on `lane` (tests).
  [[nodiscard]] bool comp(std::size_t lane, MasterId m) const;

 private:
  /// Per contender slot, shared across lanes: the Table-I latch words
  /// plus vertical mirrors of the bus state the request decision reads.
  /// `pend` and `hold` are maintained by the bus callbacks (request /
  /// on_latch / on_grant / on_complete), so the per-cycle candidate set
  ///   comp & ~pend & ~hold
  /// is three word ops instead of a per-lane pending/holder probe --
  /// and it is almost always zero (a contender fires one request per
  /// MaxL-cycle transaction).
  struct Bank {
    VirtualContenderConfig config;
    std::uint64_t comp = 0;      ///< COMP latch, bit per lane
    std::uint64_t pend = 0;      ///< lanes where our request is pending
    std::uint64_t hold = 0;      ///< lanes where our transfer is in flight
    std::size_t sat_index = 0;   ///< row in the saturation query (kCompLatch)
  };

  /// Grant-callback adapter: the bus resets COMP whenever the contender
  /// is granted (Table I), exactly like VirtualContender::on_grant, and
  /// keeps the bank's vertical pend/hold mirrors in sync.
  struct Proxy final : bus::BusMaster {
    BatchCreditEngine* engine = nullptr;
    std::size_t lane = 0;
    std::size_t bank = 0;

    void on_latch(const bus::BusRequest& request, Cycle now) override;
    void on_grant(const bus::BusRequest& request, Cycle now,
                  Cycle hold) override;
    void on_complete(const bus::BusRequest& request, Cycle now) override;
  };

  CreditSoA& soa_;
  CbaConfig config_;
  std::size_t lanes_;
  std::uint32_t padded_;
  std::vector<bus::NonSplitBus*> buses_;
  std::vector<CreditState*> states_;
  std::vector<Bank> banks_;
  std::vector<std::unique_ptr<Proxy>> proxies_;
  // Per-cycle descriptors, built once: only the mask words and outputs
  // mutate per cycle, so the hot loop issues exactly one dispatched vec
  // call for the saturation words (when any latch can change) and one
  // for the whole Table-I update.
  std::vector<std::uint64_t> caps_;     ///< per-slot saturation caps
  std::vector<std::uint64_t> charge_;   ///< per-slot holder masks (scratch)
  std::vector<std::uint64_t> clamped_;  ///< per-slot clamp masks (out)
  std::vector<std::uint32_t> sat_slots_;  ///< kCompLatch banks' slot ids
  std::vector<std::uint64_t> sat_caps_;   ///< their saturation caps
  std::vector<std::uint64_t> sat_out_;    ///< their saturation words (out)
};

}  // namespace cbus::core
