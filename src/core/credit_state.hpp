// The per-master budget counters (BUDGi of Table I) and their update rules.
//
// Every cycle each counter gains increment[i] units, saturating at its cap;
// the master holding the bus additionally pays `scale` units in the same
// cycle (net -(scale - increment) while holding, the paper's "-4" with the
// "+1" folded in). A master is eligible when its budget has reached the
// threshold -- which guarantees it can pay for any transaction up to MaxL
// without the counter underflowing. If a transaction exceeds MaxL (a
// mis-configured upper bound, explored by the MaxL ablation), the counter
// clamps at zero like its hardware counterpart and the event is counted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "common/saturating_counter.hpp"
#include "common/types.hpp"
#include "core/cba_config.hpp"

namespace cbus::core {

class CreditState {
 public:
  explicit CreditState(CbaConfig config);

  /// Counters live in caller-provided `storage` (>= n_masters entries)
  /// instead of an own allocation -- the struct-of-arrays view used by
  /// batched campaigns, where one CreditSoA arena keeps every replica's
  /// counters contiguous. `storage` must outlive this object; behaviour
  /// is identical to the owning constructor.
  CreditState(CbaConfig config, std::span<SaturatingCounter> storage);

  CreditState(const CreditState&) = delete;
  CreditState& operator=(const CreditState&) = delete;
  CreditState(CreditState&&) = default;
  CreditState& operator=(CreditState&&) = default;

  /// One clock edge: recovery for everyone, occupancy charge for `holder`
  /// (pass kNoMaster when the bus is idle or arbitrating).
  void tick(MasterId holder);

  /// Burst debit of `occupancy` cycles against master m's budget (at
  /// `scale` units per cycle), clamping at zero like the hardware
  /// counter and counting the clamp. Used by the segmented interconnect
  /// to charge a master's HOME budget for the cycles its transaction
  /// occupied foreign segments, so the Table-I equation
  /// budget = initial + increment*t - scale*total_path_occupancy keeps
  /// holding per master across contention points.
  void charge(MasterId m, Cycle occupancy);

  /// Budget of master m, in scaled units.
  [[nodiscard]] std::uint64_t budget(MasterId m) const;

  /// Budget of master m, in cycles of credit (units / scale).
  [[nodiscard]] double budget_cycles(MasterId m) const;

  /// True iff master m's budget has reached its eligibility threshold.
  [[nodiscard]] bool eligible(MasterId m) const;

  /// Restrict a pending mask to eligible masters.
  [[nodiscard]] std::uint32_t eligible_mask(std::uint32_t pending) const;

  /// True iff the counter is at its saturation cap (Table I's BUDGi == 228).
  [[nodiscard]] bool saturated(MasterId m) const;

  /// Force a budget value (WCET mode zeroes the TuA's budget at run start).
  void set_budget(MasterId m, std::uint64_t units);

  /// Retune master m's Table-I recovery increment (ctrl feedback loop).
  /// Takes effect from the next tick; the budget counter is untouched.
  /// Requires 1 <= units <= scale (a zero increment would strand the
  /// master below threshold forever).
  void set_increment(MasterId m, std::uint64_t units);

  /// Restore every counter to its configured initial value.
  void reset();

  /// Cycles on which a holder's counter could not pay the full occupancy
  /// charge and clamped at zero (only possible when MaxL is under-estimated
  /// or the threshold is configured below the worst-case cost).
  [[nodiscard]] std::uint64_t underflow_clamps() const noexcept {
    return underflow_clamps_;
  }

  /// Per-master share of underflow_clamps() (same unit: clamped cycles).
  /// Lets observability attribute each clamp to the master whose counter
  /// bottomed out; the sum over masters equals the global count.
  [[nodiscard]] std::uint64_t underflow_clamps(MasterId m) const {
    CBUS_EXPECTS(m < config_.n_masters);
    return underflows_by_master_[m];
  }

  [[nodiscard]] const CbaConfig& config() const noexcept { return config_; }

 private:
  CbaConfig config_;
  /// Backing store when self-owned (empty in the SoA-view case). A vector
  /// move keeps its heap buffer, so `counters_` survives moves either way.
  std::vector<SaturatingCounter> owned_;
  /// The live counters: `owned_` or an external CreditSoA lane.
  std::span<SaturatingCounter> counters_;
  std::uint64_t underflow_clamps_ = 0;
  /// Per-master clamp attribution; bumped only on the cold clamp paths.
  std::vector<std::uint64_t> underflows_by_master_;
};

/// Contiguous credit-counter storage for a batch of replicas: lane l's
/// counters occupy [l * slots, (l+1) * slots) where `slots` is
/// slots_per_lane() (n_masters by default; wider for segmented
/// topologies, whose per-segment credit states carve one lane), so the
/// whole batch's credit state fits a handful of cache lines and the
/// lockstep bus ticks walk it sequentially. Hand `lane(l)` to the
/// replica's CreditState/CreditFilter; the arena must outlive them.
class CreditSoA {
 public:
  /// `slots_per_lane` widens a lane beyond n_masters counters -- the
  /// segmented interconnect carves one lane into per-segment credit
  /// states (cores + bridge-port slots). 0 means n_masters.
  CreditSoA(std::size_t lanes, const CbaConfig& config,
            std::size_t slots_per_lane = 0);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t slots_per_lane() const noexcept {
    return slots_;
  }

  /// Lane `l`'s counter slice (sized slots_per_lane()).
  [[nodiscard]] std::span<SaturatingCounter> lane(std::size_t l);

 private:
  std::size_t lanes_;
  std::size_t slots_;
  std::vector<SaturatingCounter> storage_;
};

}  // namespace cbus::core
