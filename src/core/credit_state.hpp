// The per-master budget counters (BUDGi of Table I) and their update rules.
//
// Every cycle each counter gains increment[i] units, saturating at its cap;
// the master holding the bus additionally pays `scale` units in the same
// cycle (net -(scale - increment) while holding, the paper's "-4" with the
// "+1" folded in). A master is eligible when its budget has reached the
// threshold -- which guarantees it can pay for any transaction up to MaxL
// without the counter underflowing. If a transaction exceeds MaxL (a
// mis-configured upper bound, explored by the MaxL ablation), the counter
// clamps at zero like its hardware counterpart and the event is counted.
#pragma once

#include <cstdint>
#include <vector>

#include "common/saturating_counter.hpp"
#include "common/types.hpp"
#include "core/cba_config.hpp"

namespace cbus::core {

class CreditState {
 public:
  explicit CreditState(CbaConfig config);

  /// One clock edge: recovery for everyone, occupancy charge for `holder`
  /// (pass kNoMaster when the bus is idle or arbitrating).
  void tick(MasterId holder);

  /// Budget of master m, in scaled units.
  [[nodiscard]] std::uint64_t budget(MasterId m) const;

  /// Budget of master m, in cycles of credit (units / scale).
  [[nodiscard]] double budget_cycles(MasterId m) const;

  /// True iff master m's budget has reached its eligibility threshold.
  [[nodiscard]] bool eligible(MasterId m) const;

  /// Restrict a pending mask to eligible masters.
  [[nodiscard]] std::uint32_t eligible_mask(std::uint32_t pending) const;

  /// True iff the counter is at its saturation cap (Table I's BUDGi == 228).
  [[nodiscard]] bool saturated(MasterId m) const;

  /// Force a budget value (WCET mode zeroes the TuA's budget at run start).
  void set_budget(MasterId m, std::uint64_t units);

  /// Restore every counter to its configured initial value.
  void reset();

  /// Cycles on which a holder's counter could not pay the full occupancy
  /// charge and clamped at zero (only possible when MaxL is under-estimated
  /// or the threshold is configured below the worst-case cost).
  [[nodiscard]] std::uint64_t underflow_clamps() const noexcept {
    return underflow_clamps_;
  }

  [[nodiscard]] const CbaConfig& config() const noexcept { return config_; }

 private:
  CbaConfig config_;
  std::vector<SaturatingCounter> counters_;
  std::uint64_t underflow_clamps_ = 0;
};

}  // namespace cbus::core
