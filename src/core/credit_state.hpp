// The per-master budget counters (BUDGi of Table I) and their update rules.
//
// Every cycle each counter gains increment[i] units, saturating at its cap;
// the master holding the bus additionally pays `scale` units in the same
// cycle (net -(scale - increment) while holding, the paper's "-4" with the
// "+1" folded in). A master is eligible when its budget has reached the
// threshold -- which guarantees it can pay for any transaction up to MaxL
// without the counter underflowing. If a transaction exceeds MaxL (a
// mis-configured upper bound, explored by the MaxL ablation), the counter
// clamps at zero like its hardware counterpart and the event is counted.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "core/cba_config.hpp"

namespace cbus::core {

/// A strided window into a CreditSoA arena: slot i of this lane lives at
/// values[i * stride] (and its recovery increment at incs[i * stride]).
/// The COUNTER-MAJOR layout puts slot i of consecutive lanes at
/// consecutive addresses (stride == padded lane count), so the batch
/// credit engine updates one slot across every lane as one vertical
/// vector operation; a CreditState over the view reads and writes the
/// very same words scalar-wise, which is what keeps the engine and
/// classic paths bit-identical by construction.
struct CreditLaneView {
  std::uint64_t* values = nullptr;
  std::uint64_t* incs = nullptr;
  std::size_t stride = 0;  ///< elements between consecutive slots
  std::size_t slots = 0;   ///< slots visible through this view

  [[nodiscard]] bool empty() const noexcept { return values == nullptr; }

  /// Slots [offset, offset + n) as their own view (the segmented
  /// interconnect carves one lane into per-segment credit states).
  [[nodiscard]] CreditLaneView subview(std::size_t offset,
                                       std::size_t n) const {
    CBUS_EXPECTS(offset + n <= slots);
    return CreditLaneView{values + offset * stride, incs + offset * stride,
                          stride, n};
  }
};

class CreditState {
 public:
  explicit CreditState(CbaConfig config);

  /// Counters live in caller-provided storage -- one lane of the
  /// counter-major CreditSoA arena used by batched campaigns -- instead
  /// of an own allocation. The view must outlive this object and span at
  /// least n_masters slots; behaviour is identical to the owning
  /// constructor.
  CreditState(CbaConfig config, const CreditLaneView& view);

  CreditState(const CreditState&) = delete;
  CreditState& operator=(const CreditState&) = delete;
  CreditState(CreditState&&) = default;
  CreditState& operator=(CreditState&&) = default;

  /// One clock edge: recovery for everyone, occupancy charge for `holder`
  /// (pass kNoMaster when the bus is idle or arbitrating).
  void tick(MasterId holder);

  /// Burst debit of `occupancy` cycles against master m's budget (at
  /// `scale` units per cycle), clamping at zero like the hardware
  /// counter and counting the clamp. Used by the segmented interconnect
  /// to charge a master's HOME budget for the cycles its transaction
  /// occupied foreign segments, so the Table-I equation
  /// budget = initial + increment*t - scale*total_path_occupancy keeps
  /// holding per master across contention points.
  void charge(MasterId m, Cycle occupancy);

  /// Budget of master m, in scaled units.
  [[nodiscard]] std::uint64_t budget(MasterId m) const;

  /// Budget of master m, in cycles of credit (units / scale).
  [[nodiscard]] double budget_cycles(MasterId m) const;

  /// True iff master m's budget has reached its eligibility threshold.
  /// Inline: the bus consults eligibility on every arbitration, which in
  /// a batched campaign happens millions of times per second.
  [[nodiscard]] bool eligible(MasterId m) const {
    CBUS_EXPECTS(m < config_.n_masters);
    return value(m) >= config_.threshold[m];
  }

  /// Restrict a pending mask to eligible masters.
  [[nodiscard]] std::uint32_t eligible_mask(std::uint32_t pending) const {
    std::uint32_t mask = 0;
    for (MasterId m = 0; m < config_.n_masters; ++m) {
      if (((pending >> m) & 1u) && eligible(m)) mask |= 1u << m;
    }
    return mask;
  }

  /// True iff the counter is at its saturation cap (Table I's BUDGi == 228).
  [[nodiscard]] bool saturated(MasterId m) const;

  /// Force a budget value (WCET mode zeroes the TuA's budget at run start).
  void set_budget(MasterId m, std::uint64_t units);

  /// Retune master m's Table-I recovery increment (ctrl feedback loop).
  /// Takes effect from the next tick; the budget counter is untouched.
  /// Requires 1 <= units <= scale (a zero increment would strand the
  /// master below threshold forever).
  void set_increment(MasterId m, std::uint64_t units);

  /// Restore every counter to its configured initial value.
  void reset();

  /// Attribute one clamped cycle of master m to this state. The batch
  /// credit engine performs the Table-I update vertically in the SoA
  /// arena and routes the (cold) clamp events back here, so
  /// underflow_clamps() counts identically on both paths.
  void note_clamp(MasterId m) {
    CBUS_EXPECTS(m < config_.n_masters);
    ++underflow_clamps_;
    ++underflows_by_master_[m];
  }

  /// Cycles on which a holder's counter could not pay the full occupancy
  /// charge and clamped at zero (only possible when MaxL is under-estimated
  /// or the threshold is configured below the worst-case cost).
  [[nodiscard]] std::uint64_t underflow_clamps() const noexcept {
    return underflow_clamps_;
  }

  /// Per-master share of underflow_clamps() (same unit: clamped cycles).
  /// Lets observability attribute each clamp to the master whose counter
  /// bottomed out; the sum over masters equals the global count.
  [[nodiscard]] std::uint64_t underflow_clamps(MasterId m) const {
    CBUS_EXPECTS(m < config_.n_masters);
    return underflows_by_master_[m];
  }

  [[nodiscard]] const CbaConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::uint64_t& value(MasterId m) noexcept {
    return values_[static_cast<std::size_t>(m) * stride_];
  }
  [[nodiscard]] std::uint64_t value(MasterId m) const noexcept {
    return values_[static_cast<std::size_t>(m) * stride_];
  }

  CbaConfig config_;
  /// Backing store when self-owned (empty in the SoA-view case). A vector
  /// move keeps its heap buffer, so `values_` survives moves either way.
  std::vector<std::uint64_t> owned_;
  /// The live counters: `owned_` (stride 1) or a CreditSoA lane view.
  std::uint64_t* values_ = nullptr;
  /// Arena mirror of config_.increment (view mode; null when owned).
  /// set_increment writes through so the engine's vertical tick reads
  /// the retuned rate the same cycle a scalar tick would.
  std::uint64_t* incs_ = nullptr;
  std::size_t stride_ = 1;
  std::uint64_t underflow_clamps_ = 0;
  /// Per-master clamp attribution; bumped only on the cold clamp paths.
  std::vector<std::uint64_t> underflows_by_master_;
};

/// Counter-major credit storage for a batch of replicas: slot m of lane l
/// lives at row(m)[l], with the lane count padded to vec::kLaneAlign so
/// one slot's counters across all lanes form a contiguous, vector-width
/// row. The batch credit engine ticks whole rows vertically; the classic
/// path hands lane(l) (a strided CreditLaneView) to each replica's
/// CreditState/CreditFilter and runs exactly the scalar update it always
/// has -- over the same words. The arena must outlive its users.
class CreditSoA {
 public:
  /// `slots_per_lane` widens a lane beyond n_masters counters -- the
  /// segmented interconnect carves one lane into per-segment credit
  /// states (cores + bridge-port slots). 0 means n_masters.
  CreditSoA(std::size_t lanes, const CbaConfig& config,
            std::size_t slots_per_lane = 0);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }
  [[nodiscard]] std::size_t slots_per_lane() const noexcept {
    return slots_;
  }
  /// Lane count rounded up to vec::kLaneAlign -- the row length.
  [[nodiscard]] std::size_t padded_lanes() const noexcept { return padded_; }

  /// Lane `l`'s strided counter view (sized slots_per_lane()).
  [[nodiscard]] CreditLaneView lane(std::size_t l);

  /// Slot `m`'s value row across lanes (padded_lanes() elements).
  [[nodiscard]] std::uint64_t* values_row(std::size_t m) {
    CBUS_EXPECTS(m < slots_);
    return values_.data() + m * padded_;
  }
  /// Slot `m`'s increment row across lanes (padded_lanes() elements).
  [[nodiscard]] const std::uint64_t* incs_row(std::size_t m) const {
    CBUS_EXPECTS(m < slots_);
    return incs_.data() + m * padded_;
  }

 private:
  std::size_t lanes_;
  std::size_t slots_;
  std::size_t padded_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> incs_;
};

}  // namespace cbus::core
