// Core vocabulary types shared by every cbus subsystem.
//
// The simulator is cycle-accurate: every quantity of time is an integral
// number of bus-clock cycles. Addresses are 32-bit (SPARC V8 / LEON3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

namespace cbus {

/// A point in time or a duration, in bus-clock cycles.
using Cycle = std::uint64_t;

/// Identifier of a bus master (a core, in the paper's platform).
using MasterId = std::uint32_t;

/// A 32-bit physical address (SPARC V8).
using Addr = std::uint32_t;

/// Sentinel for "no master".
inline constexpr MasterId kNoMaster = std::numeric_limits<MasterId>::max();

/// Upper bound on bus masters supported by the arbiter mask types.
inline constexpr std::size_t kMaxMasters = 32;

/// Kinds of memory operations a core can issue.
enum class MemOpKind : std::uint8_t {
  kLoad,    ///< data read
  kStore,   ///< data write (write-through from L1)
  kAtomic,  ///< atomic read-modify-write (e.g. SPARC LDSTUB); uncacheable
};

[[nodiscard]] constexpr std::string_view to_string(MemOpKind kind) noexcept {
  switch (kind) {
    case MemOpKind::kLoad: return "load";
    case MemOpKind::kStore: return "store";
    case MemOpKind::kAtomic: return "atomic";
  }
  return "?";
}

/// Result of a cache lookup, used to derive bus-transaction hold times.
enum class AccessOutcome : std::uint8_t {
  kHit,            ///< L2 hit: 5-cycle transaction
  kMissClean,      ///< L2 miss, clean victim: one memory access (28 cycles)
  kMissDirty,      ///< L2 miss, dirty victim: two memory accesses (56 cycles)
  kUncached,       ///< bypasses caches (atomics): two memory accesses
};

[[nodiscard]] constexpr std::string_view to_string(AccessOutcome outcome) noexcept {
  switch (outcome) {
    case AccessOutcome::kHit: return "hit";
    case AccessOutcome::kMissClean: return "miss-clean";
    case AccessOutcome::kMissDirty: return "miss-dirty";
    case AccessOutcome::kUncached: return "uncached";
  }
  return "?";
}

/// Platform operating mode (paper §III-C, Table I).
enum class PlatformMode : std::uint8_t {
  kOperation,       ///< normal execution: REQ raised only on real requests
  kWcetEstimation,  ///< analysis: contender REQ forced, COMP latch active
};

[[nodiscard]] constexpr std::string_view to_string(PlatformMode mode) noexcept {
  switch (mode) {
    case PlatformMode::kOperation: return "operation";
    case PlatformMode::kWcetEstimation: return "wcet-estimation";
  }
  return "?";
}

}  // namespace cbus
