// Tiny binary stream helpers for the campaign checkpoint/serialization
// formats (aggregator digests, slice checkpoints).
//
// Values are written in the host's native byte order: checkpoints are
// working files of one campaign on one machine (resume, shard merge),
// not interchange artifacts. Readers throw std::invalid_argument on a
// short read -- at this layer a truncated payload is corruption (outer
// framing handles legitimate kill-mid-write truncation).
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>

#include "common/contracts.hpp"

namespace cbus::io {

template <typename T>
void write_pod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.write(buf, sizeof(T));
}

inline void write_u8(std::ostream& out, std::uint8_t v) { write_pod(out, v); }
inline void write_u32(std::ostream& out, std::uint32_t v) {
  write_pod(out, v);
}
inline void write_u64(std::ostream& out, std::uint64_t v) {
  write_pod(out, v);
}
inline void write_i64(std::ostream& out, std::int64_t v) {
  write_pod(out, v);
}
inline void write_f64(std::ostream& out, double v) { write_pod(out, v); }

inline void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& in, const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof(T)];
  in.read(buf, sizeof(T));
  CBUS_EXPECTS_MSG(in.gcount() == static_cast<std::streamsize>(sizeof(T)),
                   std::string("truncated payload reading ") + what);
  T value;
  std::memcpy(&value, buf, sizeof(T));
  return value;
}

[[nodiscard]] inline std::uint8_t read_u8(std::istream& in,
                                          const char* what) {
  return read_pod<std::uint8_t>(in, what);
}
[[nodiscard]] inline std::uint32_t read_u32(std::istream& in,
                                            const char* what) {
  return read_pod<std::uint32_t>(in, what);
}
[[nodiscard]] inline std::uint64_t read_u64(std::istream& in,
                                            const char* what) {
  return read_pod<std::uint64_t>(in, what);
}
[[nodiscard]] inline std::int64_t read_i64(std::istream& in,
                                           const char* what) {
  return read_pod<std::int64_t>(in, what);
}
[[nodiscard]] inline double read_f64(std::istream& in, const char* what) {
  return read_pod<double>(in, what);
}

[[nodiscard]] inline std::string read_string(std::istream& in,
                                             const char* what,
                                             std::uint32_t max_size) {
  const std::uint32_t size = read_u32(in, what);
  CBUS_EXPECTS_MSG(size <= max_size,
                   std::string("implausible string length reading ") + what);
  std::string s(size, '\0');
  in.read(s.data(), static_cast<std::streamsize>(size));
  CBUS_EXPECTS_MSG(in.gcount() == static_cast<std::streamsize>(size),
                   std::string("truncated payload reading ") + what);
  return s;
}

/// FNV-1a 64-bit over a byte range -- the checkpoint checksum.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data,
                                         std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

[[nodiscard]] inline std::uint64_t fnv1a(const std::string& s) noexcept {
  return fnv1a(s.data(), s.size());
}

}  // namespace cbus::io
