// Anchor translation unit for cbus_common (headers are otherwise inline).
#include "common/types.hpp"

namespace cbus {
// Intentionally empty: cbus_common is header-only; this TU gives the static
// library an object file so every toolchain accepts it.
}  // namespace cbus
