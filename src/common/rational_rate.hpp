// Exact rational rates for credit recovery.
//
// The paper's Eq. (1) increases each budget by 1/N per cycle; H-CBA method 2
// uses heterogeneous fractions (e.g. 1/2 for the TuA, 1/6 for contenders).
// Hardware implements this by scaling all terms to a common integer unit
// (paper: "multiplying all factors in Equation 1 by N"). RationalRate is the
// software mirror: a reduced num/den pair plus helpers to find the common
// scale for a set of per-core rates.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace cbus {

/// An exact non-negative rate expressed as num/den cycles of credit per cycle.
class RationalRate {
 public:
  constexpr RationalRate() noexcept = default;

  /// Constructs num/den, reduced to lowest terms. Requires den > 0.
  constexpr RationalRate(std::uint64_t num, std::uint64_t den)
      : num_(num), den_(den) {
    CBUS_EXPECTS(den > 0);
    const std::uint64_t g = std::gcd(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
  }

  [[nodiscard]] constexpr std::uint64_t num() const noexcept { return num_; }
  [[nodiscard]] constexpr std::uint64_t den() const noexcept { return den_; }

  [[nodiscard]] constexpr bool is_zero() const noexcept { return num_ == 0; }

  [[nodiscard]] constexpr double as_double() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  friend constexpr bool operator==(const RationalRate&,
                                   const RationalRate&) noexcept = default;

 private:
  std::uint64_t num_ = 0;
  std::uint64_t den_ = 1;
};

/// Least common multiple of the denominators of a set of rates: the integer
/// "budget units per cycle of bus time" scale used by the credit counters.
[[nodiscard]] inline std::uint64_t common_scale(
    std::span<const RationalRate> rates) {
  std::uint64_t scale = 1;
  for (const auto& r : rates) scale = std::lcm(scale, r.den());
  CBUS_ASSERT(scale > 0);
  return scale;
}

/// The per-cycle integer increment of each rate once scaled by
/// common_scale(rates).
[[nodiscard]] inline std::vector<std::uint64_t> scaled_increments(
    std::span<const RationalRate> rates) {
  const std::uint64_t scale = common_scale(rates);
  std::vector<std::uint64_t> inc;
  inc.reserve(rates.size());
  for (const auto& r : rates) inc.push_back(r.num() * (scale / r.den()));
  return inc;
}

}  // namespace cbus
