#include "common/build_info.hpp"

#include <ostream>
#include <sstream>

// The CMake configure step passes these as compile definitions on the
// cbus_common target (src/common/CMakeLists.txt); the fallbacks keep
// non-CMake consumers (tooling, IDE single-file parses) compiling.
#ifndef CBUS_BUILD_VERSION
#define CBUS_BUILD_VERSION "0.0.0"
#endif
#ifndef CBUS_BUILD_GIT_HASH
#define CBUS_BUILD_GIT_HASH "unknown"
#endif
#ifndef CBUS_BUILD_COMPILER
#define CBUS_BUILD_COMPILER "unknown"
#endif
#ifndef CBUS_BUILD_TYPE
#define CBUS_BUILD_TYPE "unknown"
#endif
#ifndef CBUS_BUILD_FLAGS
#define CBUS_BUILD_FLAGS ""
#endif
#ifndef CBUS_BUILD_SIMD
#define CBUS_BUILD_SIMD "off"
#endif

namespace cbus::common {

const BuildInfo& build_info() noexcept {
  static constexpr BuildInfo kInfo{
      CBUS_BUILD_VERSION, CBUS_BUILD_GIT_HASH, CBUS_BUILD_COMPILER,
      CBUS_BUILD_TYPE, CBUS_BUILD_FLAGS, CBUS_BUILD_SIMD};
  return kInfo;
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  std::ostringstream out;
  out << "cbus " << info.version << " (" << info.git_hash << ", "
      << info.compiler << ", " << info.build_type << ", simd " << info.simd
      << "; checkpoint format v" << kCheckpointFormatVersion
      << ", trace schema v" << kTraceSchemaVersion
      << ", telemetry schema v" << kTelemetrySchemaVersion << ")";
  return out.str();
}

void write_build_info_json(std::ostream& out) {
  const BuildInfo& info = build_info();
  out << "{\"version\": \"" << info.version << "\", \"git_hash\": \""
      << info.git_hash << "\", \"compiler\": \"" << info.compiler
      << "\", \"build_type\": \"" << info.build_type << "\", \"flags\": \""
      << info.flags << "\", \"simd\": \"" << info.simd
      << "\", \"checkpoint_format\": "
      << kCheckpointFormatVersion
      << ", \"trace_schema\": " << kTraceSchemaVersion
      << ", \"telemetry_schema\": " << kTelemetrySchemaVersion << "}";
}

}  // namespace cbus::common
