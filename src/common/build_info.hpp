// Build provenance, embedded once at configure/compile time and stamped
// into every machine-readable observability output (trace JSON metadata,
// telemetry headers) plus `cbus_sim --version`.
//
// The experiment sinks (CSV/JSON/summary) deliberately do NOT carry
// provenance: their byte layout is locked by golden tests and by the
// shard/merge/resume byte-identity contract, and a git hash in those
// files would break "same spec, same bytes" across builds. Provenance
// lives only in the observability side channels, whose content is
// timing-dependent anyway.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace cbus::common {

/// Version of the Chrome-trace JSON layout obs::Timeline emits.
inline constexpr std::uint32_t kTraceSchemaVersion = 1;
/// Version of the telemetry JSON document obs::write_telemetry_json emits.
inline constexpr std::uint32_t kTelemetrySchemaVersion = 1;
/// Version of the CBUSCKPT checkpoint container (exp/checkpoint.cpp
/// reads and writes exactly this version).
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

struct BuildInfo {
  std::string_view version;     ///< project version (CMake)
  std::string_view git_hash;    ///< short commit hash; "unknown" outside git
  std::string_view compiler;    ///< e.g. "GNU 12.2.0"
  std::string_view build_type;  ///< e.g. "Release"
  std::string_view flags;       ///< CMAKE_CXX_FLAGS for the build type
  std::string_view simd;        ///< resolved CBUS_SIMD dispatch, e.g. "avx2"
};

[[nodiscard]] const BuildInfo& build_info() noexcept;

/// One human-readable line (the `cbus_sim --version` body).
[[nodiscard]] std::string build_info_line();

/// The provenance fragment shared by every observability JSON document:
/// a complete object value ({"version": ..., "git_hash": ..., ...}),
/// including schema versions.
void write_build_info_json(std::ostream& out);

}  // namespace cbus::common
