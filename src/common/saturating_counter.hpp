// A saturating up/down counter, modelling the BUDGi registers of Table I.
//
// The hardware counter is an 8-bit register saturating at 228 (= 4 x 56);
// this model is 64-bit but enforces the same saturate-at-cap semantics and
// never goes below zero (eligibility rules guarantee enough credit to pay
// for any transaction; going negative is an invariant violation we check).
#pragma once

#include <cstdint>

#include "common/contracts.hpp"

namespace cbus {

class SaturatingCounter {
 public:
  SaturatingCounter() noexcept = default;

  /// Counter in [0, cap] starting at `initial`.
  SaturatingCounter(std::uint64_t cap, std::uint64_t initial) : cap_(cap) {
    CBUS_EXPECTS(initial <= cap);
    value_ = initial;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] std::uint64_t cap() const noexcept { return cap_; }
  [[nodiscard]] bool saturated() const noexcept { return value_ == cap_; }

  /// Add `amount`, saturating at the cap. Returns the new value.
  std::uint64_t add(std::uint64_t amount) noexcept {
    const std::uint64_t headroom = cap_ - value_;
    value_ += (amount < headroom) ? amount : headroom;
    return value_;
  }

  /// Subtract `amount`; underflow is an invariant violation (the eligibility
  /// filter must guarantee sufficient credit before any spend).
  std::uint64_t spend(std::uint64_t amount) {
    CBUS_ASSERT(amount <= value_);
    value_ -= amount;
    return value_;
  }

  /// Net per-cycle update: recovery and occupancy charge applied as ONE
  /// arithmetic step, `min(value + recover - charge, cap)` -- Table I's +1
  /// and -4 combine to net -3 while holding (for N = 4) even when the
  /// counter sits at its cap. Saturating the recovery before charging
  /// would silently lose one unit per transaction and break the exact
  /// (N-1)*hold recovery identity the fairness argument rests on.
  /// Underflow (charge exceeding value + recover) is an invariant
  /// violation here; CreditState uses clamped arithmetic for the
  /// MaxL-underestimation ablation.
  std::uint64_t tick(std::uint64_t recover, std::uint64_t charge) {
    const std::uint64_t up = value_ + recover;
    CBUS_ASSERT(charge <= up);
    value_ = up - charge;
    if (value_ > cap_) value_ = cap_;
    return value_;
  }

  void reset(std::uint64_t value) {
    CBUS_EXPECTS(value <= cap_);
    value_ = value;
  }

 private:
  std::uint64_t cap_ = 0;
  std::uint64_t value_ = 0;
};

}  // namespace cbus
