// Contract-checking helpers.
//
// Following the C++ Core Guidelines (I.5/I.7, E.12): preconditions on public
// interfaces throw (callers may pass bad configs), internal invariants assert
// unconditionally -- a cycle-accurate model that silently corrupts state is
// worse than one that stops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cbus::detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream oss;
  oss << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) oss << " -- " << msg;
  throw std::invalid_argument(oss.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line) {
  std::ostringstream oss;
  oss << "invariant violated: (" << expr << ") at " << file << ':' << line;
  throw std::logic_error(oss.str());
}

}  // namespace cbus::detail

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define CBUS_EXPECTS(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::cbus::detail::throw_precondition(#expr, __FILE__, __LINE__, "");    \
  } while (false)

/// Validate a caller-supplied precondition with an explanatory message.
#define CBUS_EXPECTS_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr))                                                            \
      ::cbus::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Check an internal invariant; throws std::logic_error (a bug in cbus).
#define CBUS_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) ::cbus::detail::throw_invariant(#expr, __FILE__, __LINE__); \
  } while (false)
