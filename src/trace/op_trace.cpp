#include "trace/op_trace.hpp"

#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace cbus::trace {

std::vector<cpu::MemOp> capture(cpu::OpStream& stream, std::size_t max_ops) {
  std::vector<cpu::MemOp> ops;
  ops.reserve(max_ops);
  for (std::size_t i = 0; i < max_ops; ++i) {
    auto op = stream.next();
    if (!op.has_value()) break;
    ops.push_back(*op);
  }
  return ops;
}

void write_ops(std::ostream& out, const std::vector<cpu::MemOp>& ops) {
  out << "# cbus op trace v1: kind,addr_hex,compute_before\n";
  for (const auto& op : ops) {
    out << to_string(op.kind) << ',' << std::hex << op.addr << std::dec << ','
        << op.compute_before << '\n';
  }
}

void save_ops(const std::string& path, const std::vector<cpu::MemOp>& ops) {
  std::ofstream out(path);
  CBUS_EXPECTS_MSG(out.good(), "cannot open trace file for writing: " + path);
  write_ops(out, ops);
}

namespace {
[[nodiscard]] MemOpKind parse_kind(const std::string& text) {
  if (text == "load") return MemOpKind::kLoad;
  if (text == "store") return MemOpKind::kStore;
  if (text == "atomic") return MemOpKind::kAtomic;
  CBUS_EXPECTS_MSG(false, "bad op kind in trace: " + text);
  return MemOpKind::kLoad;
}
}  // namespace

std::vector<cpu::MemOp> read_ops(std::istream& in) {
  std::vector<cpu::MemOp> ops;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind_text;
    std::string addr_text;
    std::string gap_text;
    CBUS_EXPECTS_MSG(std::getline(fields, kind_text, ',') &&
                         std::getline(fields, addr_text, ',') &&
                         std::getline(fields, gap_text),
                     "malformed trace line: " + line);
    cpu::MemOp op;
    op.kind = parse_kind(kind_text);
    op.addr = static_cast<Addr>(std::stoul(addr_text, nullptr, 16));
    op.compute_before =
        static_cast<std::uint32_t>(std::stoul(gap_text, nullptr, 10));
    ops.push_back(op);
  }
  return ops;
}

std::vector<cpu::MemOp> load_ops(const std::string& path) {
  std::ifstream in(path);
  CBUS_EXPECTS_MSG(in.good(), "cannot open trace file: " + path);
  return read_ops(in);
}

std::unique_ptr<workloads::FixedOpsStream> replay(std::vector<cpu::MemOp> ops,
                                                  std::uint64_t repeat) {
  return std::make_unique<workloads::FixedOpsStream>(std::move(ops), repeat);
}

}  // namespace cbus::trace
