// Memory-operation trace I/O: record any OpStream to a CSV file and replay
// it later. This is the bridge from real targets: a trace captured on
// actual hardware (or another simulator) drops in wherever the synthetic
// generators are used.
//
// Format: one op per line, `kind,addr,compute_before` where kind is one of
// load/store/atomic and addr is hex. Lines starting with '#' are comments.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cpu/op_stream.hpp"
#include "workloads/fixed_stream.hpp"

namespace cbus::trace {

/// Drain up to `max_ops` operations from `stream` into a vector.
[[nodiscard]] std::vector<cpu::MemOp> capture(cpu::OpStream& stream,
                                              std::size_t max_ops);

/// Serialize ops to a stream / file.
void write_ops(std::ostream& out, const std::vector<cpu::MemOp>& ops);
void save_ops(const std::string& path, const std::vector<cpu::MemOp>& ops);

/// Parse ops back (throws std::invalid_argument on malformed input).
[[nodiscard]] std::vector<cpu::MemOp> read_ops(std::istream& in);
[[nodiscard]] std::vector<cpu::MemOp> load_ops(const std::string& path);

/// An OpStream replaying a recorded trace.
[[nodiscard]] std::unique_ptr<workloads::FixedOpsStream> replay(
    std::vector<cpu::MemOp> ops, std::uint64_t repeat = 1);

}  // namespace cbus::trace
