// Transaction-level bus tracing: a BusObserver recording every transfer
// (who, what, when raised, when started, how long) plus CSV export and
// derived per-master latency statistics.
//
// This is the software twin of a bus protocol analyzer on the FPGA: the
// raw material for wait-time histograms, fairness audits and for
// debugging arbitration pathologies.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "bus/interfaces.hpp"
#include "common/types.hpp"
#include "stats/summary.hpp"

namespace cbus::trace {

struct BusTransaction {
  MasterId master = kNoMaster;
  Addr addr = 0;
  MemOpKind kind = MemOpKind::kLoad;
  Cycle issued_at = 0;   ///< request raised
  Cycle started_at = 0;  ///< transfer start (grant + 1)
  Cycle hold = 0;        ///< occupancy cycles
  Cycle completed_at = 0;

  [[nodiscard]] Cycle wait() const noexcept { return started_at - issued_at; }
  [[nodiscard]] Cycle turnaround() const noexcept {
    return completed_at + 1 - issued_at;
  }
};

class BusTraceRecorder final : public bus::BusObserver {
 public:
  /// Record at most `capacity` transactions (0 = unbounded); further
  /// activity is counted but not stored.
  explicit BusTraceRecorder(std::size_t capacity = 0)
      : capacity_(capacity) {}

  void on_request(const bus::BusRequest& request, Cycle now) override;
  void on_transfer_start(const bus::BusRequest& request, Cycle start,
                         Cycle hold) override;
  void on_transfer_complete(const bus::BusRequest& request,
                            Cycle end) override;

  [[nodiscard]] const std::vector<BusTransaction>& transactions()
      const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Wait-time summary for one master over the recorded window.
  [[nodiscard]] stats::OnlineStats wait_stats(MasterId master) const;

  /// Occupancy cycles per master over the recorded window.
  [[nodiscard]] std::vector<Cycle> occupancy_by_master(
      std::uint32_t n_masters) const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<BusTransaction> in_flight_;  ///< at most one per master
  std::vector<BusTransaction> completed_;
  std::uint64_t dropped_ = 0;
};

/// CSV: master,kind,addr_hex,issued,started,hold,completed
void write_bus_trace(std::ostream& out,
                     const std::vector<BusTransaction>& transactions);
void save_bus_trace(const std::string& path,
                    const std::vector<BusTransaction>& transactions);

}  // namespace cbus::trace
