#include "trace/bus_trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/contracts.hpp"

namespace cbus::trace {

void BusTraceRecorder::on_request(const bus::BusRequest& request,
                                  Cycle now) {
  BusTransaction txn;
  txn.master = request.master;
  txn.addr = request.addr;
  txn.kind = request.kind;
  txn.issued_at = now;
  // One pending request per master on the non-split bus: replace or add.
  const auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [&](const BusTransaction& t) { return t.master == request.master; });
  if (it != in_flight_.end()) {
    *it = txn;
  } else {
    in_flight_.push_back(txn);
  }
}

void BusTraceRecorder::on_transfer_start(const bus::BusRequest& request,
                                         Cycle start, Cycle hold) {
  const auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [&](const BusTransaction& t) { return t.master == request.master; });
  if (it == in_flight_.end()) {
    // Transfer without a recorded request (recorder attached mid-flight):
    // synthesize the entry from the request's own stamp.
    BusTransaction txn;
    txn.master = request.master;
    txn.addr = request.addr;
    txn.kind = request.kind;
    txn.issued_at = request.issued_at;
    in_flight_.push_back(txn);
  }
  auto& txn = *std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [&](const BusTransaction& t) { return t.master == request.master; });
  txn.started_at = start;
  txn.hold = hold;
}

void BusTraceRecorder::on_transfer_complete(const bus::BusRequest& request,
                                            Cycle end) {
  const auto it = std::find_if(
      in_flight_.begin(), in_flight_.end(),
      [&](const BusTransaction& t) { return t.master == request.master; });
  if (it == in_flight_.end()) return;  // attached mid-transfer
  it->completed_at = end;
  if (capacity_ == 0 || completed_.size() < capacity_) {
    completed_.push_back(*it);
  } else {
    ++dropped_;
  }
  in_flight_.erase(it);
}

stats::OnlineStats BusTraceRecorder::wait_stats(MasterId master) const {
  stats::OnlineStats s;
  for (const auto& txn : completed_) {
    if (txn.master == master) s.add(static_cast<double>(txn.wait()));
  }
  return s;
}

std::vector<Cycle> BusTraceRecorder::occupancy_by_master(
    std::uint32_t n_masters) const {
  std::vector<Cycle> occ(n_masters, 0);
  for (const auto& txn : completed_) {
    if (txn.master < n_masters) occ[txn.master] += txn.hold;
  }
  return occ;
}

void BusTraceRecorder::clear() {
  in_flight_.clear();
  completed_.clear();
  dropped_ = 0;
}

void write_bus_trace(std::ostream& out,
                     const std::vector<BusTransaction>& transactions) {
  out << "# cbus bus trace v1: master,kind,addr_hex,issued,started,hold,"
         "completed\n";
  for (const auto& txn : transactions) {
    out << txn.master << ',' << to_string(txn.kind) << ',' << std::hex
        << txn.addr << std::dec << ',' << txn.issued_at << ','
        << txn.started_at << ',' << txn.hold << ',' << txn.completed_at
        << '\n';
  }
}

void save_bus_trace(const std::string& path,
                    const std::vector<BusTransaction>& transactions) {
  std::ofstream out(path);
  CBUS_EXPECTS_MSG(out.good(), "cannot open bus trace for writing: " + path);
  write_bus_trace(out, transactions);
}

}  // namespace cbus::trace
