#include "workloads/phased.hpp"

#include "common/contracts.hpp"
#include "rng/splitmix64.hpp"

namespace cbus::workloads {

PhasedStream::PhasedStream(std::vector<KernelProfile> phases,
                           std::uint32_t iterations)
    : iterations_(iterations) {
  CBUS_EXPECTS(!phases.empty());
  CBUS_EXPECTS(iterations >= 1);
  name_ = "phased(";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) name_ += '+';
    name_ += phases[i].name;
    phases_.push_back(std::make_unique<KernelStream>(std::move(phases[i])));
  }
  name_ += ')';
  reset(0);
}

void PhasedStream::reset(std::uint64_t seed) {
  seed_ = seed;
  iteration_ = 0;
  index_ = 0;
  rng::SplitMix64 mix(seed);
  for (auto& phase : phases_) phase->reset(mix.next());
}

std::optional<cpu::MemOp> PhasedStream::next() {
  while (iteration_ < iterations_) {
    if (auto op = phases_[index_]->next(); op.has_value()) return op;
    ++index_;
    if (index_ >= phases_.size()) {
      ++iteration_;
      index_ = 0;
      if (iteration_ >= iterations_) break;
      // Fresh per-iteration sub-seeds, still derived from the reset seed.
      rng::SplitMix64 mix(seed_ ^ (0x9E3779B97F4A7C15ULL * iteration_));
      for (auto& phase : phases_) phase->reset(mix.next());
    }
  }
  return std::nullopt;
}

}  // namespace cbus::workloads
