#include "workloads/phased.hpp"

#include "common/contracts.hpp"
#include "rng/splitmix64.hpp"

namespace cbus::workloads {

PhasedStream::PhasedStream(std::vector<KernelProfile> phases,
                           std::uint32_t iterations)
    : iterations_(iterations) {
  CBUS_EXPECTS(!phases.empty());
  CBUS_EXPECTS(iterations >= 1);
  name_ = "phased(";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) name_ += '+';
    name_ += phases[i].name;
    phases_.push_back(std::make_unique<KernelStream>(std::move(phases[i])));
  }
  name_ += ')';
  reset(0);
}

void PhasedStream::reset(std::uint64_t seed) {
  seed_ = seed;
  iteration_ = 0;
  index_ = 0;
  rng::SplitMix64 mix(seed);
  for (auto& phase : phases_) phase->reset(mix.next());
}

PhaseShiftedStream::PhaseShiftedStream(std::uint64_t period,
                                       std::uint64_t offset,
                                       std::uint32_t quiet_gap, Addr base,
                                       std::uint32_t footprint_bytes,
                                       std::uint32_t line_bytes)
    : period_(period),
      offset_(offset),
      quiet_gap_(quiet_gap),
      base_(base),
      footprint_(footprint_bytes),
      line_(line_bytes) {
  CBUS_EXPECTS(period >= 1);
  CBUS_EXPECTS(quiet_gap >= 1);
  CBUS_EXPECTS(line_bytes >= 4);
  CBUS_EXPECTS(footprint_bytes >= line_bytes);
}

std::optional<cpu::MemOp> PhaseShiftedStream::next() {
  cpu::MemOp op;
  op.kind = MemOpKind::kLoad;
  // Fresh line each op over a footprint far beyond the hierarchy, like
  // StreamingStream -- every access is an L2 miss and hits the bus.
  op.addr = base_ + static_cast<Addr>((pos_ * line_) % footprint_);
  op.compute_before = active() ? 0 : quiet_gap_;
  ++pos_;
  return op;
}

void PhaseShiftedStream::reset(std::uint64_t /*seed*/) { pos_ = 0; }

std::optional<cpu::MemOp> PhasedStream::next() {
  while (iteration_ < iterations_) {
    if (auto op = phases_[index_]->next(); op.has_value()) return op;
    ++index_;
    if (index_ >= phases_.size()) {
      ++iteration_;
      index_ = 0;
      if (iteration_ >= iterations_) break;
      // Fresh per-iteration sub-seeds, still derived from the reset seed.
      rng::SplitMix64 mix(seed_ ^ (0x9E3779B97F4A7C15ULL * iteration_));
      for (auto& phase : phases_) phase->reset(mix.next());
    }
  }
  return std::nullopt;
}

}  // namespace cbus::workloads
