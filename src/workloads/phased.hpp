// PhasedStream: concatenate kernel profiles into program phases.
//
// Real applications alternate between behaviours (init, compute sweep,
// I/O-ish bursts); EVT-based analysis must cope with the resulting
// execution-time multimodality. A PhasedStream plays each phase's ops in
// order, optionally cycling for several iterations -- all derived from
// the same single reset seed.
//
// PhaseShiftedStream is the adaptive-controller stressor: an infinite
// strided load that alternates between a saturating ACTIVE phase and a
// throttled QUIET phase every `period` ops, with a per-master `offset`
// so co-runners peak at different times. Aggregate demand then shifts
// between masters over the run -- exactly the load a static Table-I
// allocation cannot track and an explicit-rate controller should.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "cpu/op_stream.hpp"
#include "workloads/kernel_stream.hpp"

namespace cbus::workloads {

class PhasedStream final : public cpu::OpStream {
 public:
  /// Each profile is one phase (its n_ops is the phase length); the whole
  /// sequence repeats `iterations` times.
  PhasedStream(std::vector<KernelProfile> phases, std::uint32_t iterations = 1);

  [[nodiscard]] std::optional<cpu::MemOp> next() override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] std::size_t phase_count() const noexcept {
    return phases_.size();
  }
  /// Phase currently being played (for instrumentation).
  [[nodiscard]] std::size_t current_phase() const noexcept { return index_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<KernelStream>> phases_;
  std::uint32_t iterations_;
  std::uint32_t iteration_ = 0;
  std::size_t index_ = 0;
  std::uint64_t seed_ = 0;
};

/// Square-wave load: `period` saturating ops (gap 0), then `period`
/// throttled ops (`quiet_gap` compute cycles each), repeating forever.
/// `offset` shifts the wave by that many ops so each co-runner can start
/// at a different point of the cycle. Deterministic: reset() only
/// rewinds the position -- the seed is unused, like StreamingStream.
class PhaseShiftedStream final : public cpu::OpStream {
 public:
  PhaseShiftedStream(std::uint64_t period, std::uint64_t offset = 0,
                     std::uint32_t quiet_gap = 200,
                     Addr base = 0x9000'0000,
                     std::uint32_t footprint_bytes = 8 * 1024 * 1024,
                     std::uint32_t line_bytes = 32);

  [[nodiscard]] std::optional<cpu::MemOp> next() override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "phase-shifted";
  }

  /// True while the NEXT op belongs to the saturating half of the wave.
  [[nodiscard]] bool active() const noexcept {
    return ((pos_ + offset_) / period_) % 2 == 0;
  }

 private:
  std::uint64_t period_;
  std::uint64_t offset_;
  std::uint32_t quiet_gap_;
  Addr base_;
  std::uint32_t footprint_;
  std::uint32_t line_;
  std::uint64_t pos_ = 0;
};

}  // namespace cbus::workloads
