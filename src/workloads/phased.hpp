// PhasedStream: concatenate kernel profiles into program phases.
//
// Real applications alternate between behaviours (init, compute sweep,
// I/O-ish bursts); EVT-based analysis must cope with the resulting
// execution-time multimodality. A PhasedStream plays each phase's ops in
// order, optionally cycling for several iterations -- all derived from
// the same single reset seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cpu/op_stream.hpp"
#include "workloads/kernel_stream.hpp"

namespace cbus::workloads {

class PhasedStream final : public cpu::OpStream {
 public:
  /// Each profile is one phase (its n_ops is the phase length); the whole
  /// sequence repeats `iterations` times.
  PhasedStream(std::vector<KernelProfile> phases, std::uint32_t iterations = 1);

  [[nodiscard]] std::optional<cpu::MemOp> next() override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] std::size_t phase_count() const noexcept {
    return phases_.size();
  }
  /// Phase currently being played (for instrumentation).
  [[nodiscard]] std::size_t current_phase() const noexcept { return index_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<KernelStream>> phases_;
  std::uint32_t iterations_;
  std::uint32_t iteration_ = 0;
  std::size_t index_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace cbus::workloads
