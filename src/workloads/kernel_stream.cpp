#include "workloads/kernel_stream.hpp"

#include "rng/distributions.hpp"
#include "rng/splitmix64.hpp"

namespace cbus::workloads {

namespace {
/// Stable 64-bit hash of the profile name, so different kernels sharing a
/// campaign seed still see independent streams.
[[nodiscard]] std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

KernelStream::KernelStream(KernelProfile profile)
    : profile_(std::move(profile)), engine_(hash_name(profile_.name)) {
  profile_.validate();
  reset(0);
}

void KernelStream::reset(std::uint64_t seed) {
  rng::SplitMix64 mix(seed ^ hash_name(profile_.name));
  engine_ = rng::XorShift64Star(mix.next());
  emitted_ = 0;
  stride_pos_ = 0;
  chase_cursor_ = static_cast<std::uint32_t>(mix.next());
  burst_remaining_ = 0;
}

Addr KernelStream::next_address() {
  const std::uint32_t footprint = profile_.footprint_bytes;

  // Loop-carried locality: a slice of accesses stays in the hot region.
  if (profile_.hot_permille_1024 > 0 &&
      rng::bernoulli(engine_, profile_.hot_permille_1024, 1024)) {
    const std::uint32_t offset =
        rng::uniform_below(engine_, profile_.hot_bytes / 4) * 4;
    return profile_.base + offset;
  }

  switch (profile_.pattern) {
    case AccessPattern::kStrided: {
      const std::uint32_t offset = static_cast<std::uint32_t>(
          (stride_pos_ * profile_.stride_bytes) % footprint);
      ++stride_pos_;
      return profile_.base + offset;
    }
    case AccessPattern::kRandom: {
      const std::uint32_t offset =
          rng::uniform_below(engine_, footprint / 4) * 4;
      return profile_.base + offset;
    }
    case AccessPattern::kPointerChase: {
      // Dependent walk: an affine step with odd multiplier visits words in
      // a data-dependent-looking but deterministic order.
      const std::uint32_t words = footprint / 4;
      chase_cursor_ = (chase_cursor_ * 2654435761u + 0x9E3779B9u);
      const std::uint32_t offset = (chase_cursor_ % words) * 4;
      return profile_.base + offset;
    }
  }
  CBUS_ASSERT(false);
  return profile_.base;
}

std::optional<cpu::MemOp> KernelStream::next() {
  if (emitted_ >= profile_.n_ops) return std::nullopt;
  ++emitted_;

  cpu::MemOp op;
  op.addr = next_address();

  const std::uint32_t draw = rng::uniform_below(engine_, 1024);
  if (draw < profile_.store_permille_1024) {
    op.kind = MemOpKind::kStore;
  } else if (draw <
             profile_.store_permille_1024 + profile_.atomic_permille_1024) {
    op.kind = MemOpKind::kAtomic;
  } else {
    op.kind = MemOpKind::kLoad;
  }

  if (burst_remaining_ > 0) {
    --burst_remaining_;
    op.compute_before = 0;
  } else {
    if (profile_.burst_prob_1024 > 0 && profile_.burst_len > 0 &&
        rng::bernoulli(engine_, profile_.burst_prob_1024, 1024)) {
      burst_remaining_ = profile_.burst_len;
    }
    op.compute_before =
        rng::uniform_in(engine_, profile_.gap_min, profile_.gap_max);
  }
  return op;
}

}  // namespace cbus::workloads
