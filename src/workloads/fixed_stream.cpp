#include "workloads/fixed_stream.hpp"

#include "common/contracts.hpp"

namespace cbus::workloads {

FixedOpsStream::FixedOpsStream(std::vector<cpu::MemOp> ops,
                               std::uint64_t repeat)
    : ops_(std::move(ops)), repeat_(repeat) {
  CBUS_EXPECTS(repeat >= 1);
}

std::optional<cpu::MemOp> FixedOpsStream::next() {
  if (pass_ >= repeat_) return std::nullopt;
  if (pos_ >= ops_.size()) {
    ++pass_;
    pos_ = 0;
    if (pass_ >= repeat_ || ops_.empty()) return std::nullopt;
  }
  return ops_[pos_++];
}

void FixedOpsStream::reset(std::uint64_t /*seed*/) {
  pass_ = 0;
  pos_ = 0;
}

}  // namespace cbus::workloads
