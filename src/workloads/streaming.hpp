// StreamingStream: the paper's contender archetype -- "streaming
// applications issuing constantly read requests to memory that take 28
// cycles" (§II). A back-to-back strided read sweep over a footprint far
// larger than the whole cache hierarchy, so every access is an L2
// clean-miss; effectively infinite so contenders never finish before the
// task under analysis does.
#pragma once

#include "cpu/op_stream.hpp"
#include "common/types.hpp"

namespace cbus::workloads {

class StreamingStream final : public cpu::OpStream {
 public:
  /// `gap` compute cycles between reads (0 == saturate the bus).
  explicit StreamingStream(std::uint32_t gap = 0,
                           Addr base = 0x8000'0000,
                           std::uint32_t footprint_bytes = 8 * 1024 * 1024,
                           std::uint32_t line_bytes = 32);

  [[nodiscard]] std::optional<cpu::MemOp> next() override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "streaming";
  }

 private:
  std::uint32_t gap_;
  Addr base_;
  std::uint32_t footprint_;
  std::uint32_t line_;
  std::uint64_t pos_ = 0;
};

}  // namespace cbus::workloads
