#include "workloads/streaming.hpp"

#include "common/contracts.hpp"

namespace cbus::workloads {

StreamingStream::StreamingStream(std::uint32_t gap, Addr base,
                                 std::uint32_t footprint_bytes,
                                 std::uint32_t line_bytes)
    : gap_(gap), base_(base), footprint_(footprint_bytes), line_(line_bytes) {
  CBUS_EXPECTS(line_bytes >= 4);
  CBUS_EXPECTS(footprint_bytes >= line_bytes);
}

std::optional<cpu::MemOp> StreamingStream::next() {
  cpu::MemOp op;
  op.kind = MemOpKind::kLoad;
  // Touch a fresh line each time; wrap around a footprint so large that
  // everything has long been evicted by the time it comes round again.
  op.addr = base_ + static_cast<Addr>((pos_ * line_) % footprint_);
  op.compute_before = gap_;
  ++pos_;
  return op;
}

void StreamingStream::reset(std::uint64_t /*seed*/) { pos_ = 0; }

}  // namespace cbus::workloads
