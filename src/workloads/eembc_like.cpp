#include "workloads/eembc_like.hpp"

#include "common/contracts.hpp"

namespace cbus::workloads {

// Profile rationale (16 KiB 4-way L1, 128 KiB L2 partition, write-through
// L1 -- every store is a bus transaction):
//
//  * matrix -- dense matrix arithmetic streaming through data far larger
//    than the L2 partition: strided loads, frequent L2 misses, result
//    stores that dirty L2 lines (dirty evictions -> 56-cycle
//    transactions). The most bus-hungry kernel; the paper measures its
//    worst RP contention slowdown (3.34x).
//  * cacheb -- the "cache buster" walks memory with a large stride and
//    mixed stores in bursts: moderate-to-high miss traffic of mixed
//    lengths.
//  * canrdr -- CAN remote-data-request response: small resident state
//    (fits L1), short control bursts, few stores; light bus usage.
//  * tblook -- table lookup: random probes over a table a few times the L1
//    with a hot index region; mostly short 5-cycle L2-hit transactions and
//    high sensitivity to random cache placement (the effect the paper
//    discusses for this kernel).
//  * a2time/rspeed/puwmod/ttsprk -- remaining Autobench members modelled
//    for coverage: small-footprint control kernels with light-to-moderate
//    traffic and occasional atomics (shared angle/speed state).

KernelProfile eembc_profile(std::string_view kernel) {
  KernelProfile p;
  p.name = std::string(kernel);

  if (kernel == "matrix") {
    // Streaming through data far beyond the L2 slice; a fresh line every
    // eighth access; result stores dirty the L2 (5-cycle write-throughs
    // mixed with 28/56-cycle misses). Calibrated to ~25% iso bus
    // utilization -- the most bus-hungry Autobench kernel but NOT
    // saturating (paper SIV-B).
    p.footprint_bytes = 512 * 1024;
    p.n_ops = 12'000;
    p.pattern = AccessPattern::kStrided;
    p.stride_bytes = 4;  // 8 accesses per 32B line
    p.store_permille_1024 = 240;
    p.gap_min = 11;
    p.gap_max = 19;
    return p;
  }
  if (kernel == "cacheb") {
    // Large-stride sweep with a hot working set: mixed short (5-cycle L2
    // hit) and long (28-cycle) transactions at moderate rate.
    p.footprint_bytes = 96 * 1024;  // > L1, < L2 partition
    p.n_ops = 14'000;
    p.pattern = AccessPattern::kStrided;
    p.stride_bytes = 48;
    p.store_permille_1024 = 140;
    p.gap_min = 25;
    p.gap_max = 45;
    p.hot_permille_1024 = 666;  // ~65% of accesses in the hot pages
    p.hot_bytes = 6 * 1024;
    return p;
  }
  if (kernel == "canrdr") {
    // CAN message handling: state fits the L1; rare store write-throughs
    // are the only bus traffic.
    p.footprint_bytes = 6 * 1024;
    p.n_ops = 24'000;
    p.pattern = AccessPattern::kRandom;
    p.store_permille_1024 = 70;
    p.gap_min = 10;
    p.gap_max = 22;
    p.hot_permille_1024 = 700;
    p.hot_bytes = 2 * 1024;
    return p;
  }
  if (kernel == "tblook") {
    // Random table probes over 3x the L1 with hot index pages: short
    // L2-hit transactions, highly sensitive to the random placement.
    p.footprint_bytes = 48 * 1024;
    p.n_ops = 16'000;
    p.pattern = AccessPattern::kRandom;
    p.store_permille_1024 = 40;
    p.gap_min = 24;
    p.gap_max = 44;
    p.hot_permille_1024 = 560;
    p.hot_bytes = 8 * 1024;
    return p;
  }
  if (kernel == "a2time") {
    p.footprint_bytes = 8 * 1024;
    p.n_ops = 20'000;
    p.pattern = AccessPattern::kRandom;
    p.store_permille_1024 = 90;
    p.atomic_permille_1024 = 2;
    p.gap_min = 8;
    p.gap_max = 20;
    p.hot_permille_1024 = 600;
    p.hot_bytes = 4 * 1024;
    return p;
  }
  if (kernel == "rspeed") {
    p.footprint_bytes = 12 * 1024;
    p.n_ops = 18'000;
    p.pattern = AccessPattern::kRandom;
    p.store_permille_1024 = 70;
    p.gap_min = 10;
    p.gap_max = 24;
    p.hot_permille_1024 = 500;
    p.hot_bytes = 4 * 1024;
    return p;
  }
  if (kernel == "puwmod") {
    p.footprint_bytes = 20 * 1024;
    p.n_ops = 18'000;
    p.pattern = AccessPattern::kStrided;
    p.stride_bytes = 32;
    p.store_permille_1024 = 180;
    p.gap_min = 18;
    p.gap_max = 34;
    p.burst_prob_1024 = 32;
    p.burst_len = 3;
    return p;
  }
  if (kernel == "ttsprk") {
    p.footprint_bytes = 28 * 1024;
    p.n_ops = 16'000;
    p.pattern = AccessPattern::kPointerChase;
    p.store_permille_1024 = 50;
    p.atomic_permille_1024 = 1;
    p.gap_min = 14;
    p.gap_max = 28;
    return p;
  }
  CBUS_EXPECTS_MSG(false, "unknown EEMBC-like kernel: " + std::string(kernel));
  return p;  // unreachable
}

std::unique_ptr<KernelStream> make_eembc(std::string_view kernel) {
  return std::make_unique<KernelStream>(eembc_profile(kernel));
}

std::vector<std::string_view> figure1_kernels() {
  return {"cacheb", "canrdr", "matrix", "tblook"};
}

std::vector<std::string_view> all_kernels() {
  return {"cacheb", "canrdr", "matrix", "tblook",
          "a2time", "rspeed", "puwmod", "ttsprk"};
}

}  // namespace cbus::workloads
