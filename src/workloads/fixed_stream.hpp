// FixedOpsStream: replay an explicit list of operations, optionally looped.
// The workhorse of unit tests and hand-built microbenchmarks where every
// access must be exactly where the test expects it.
#pragma once

#include <vector>

#include "cpu/op_stream.hpp"

namespace cbus::workloads {

class FixedOpsStream final : public cpu::OpStream {
 public:
  /// `repeat` full passes over `ops` (repeat >= 1).
  explicit FixedOpsStream(std::vector<cpu::MemOp> ops,
                          std::uint64_t repeat = 1);

  [[nodiscard]] std::optional<cpu::MemOp> next() override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed";
  }

 private:
  std::vector<cpu::MemOp> ops_;
  std::uint64_t repeat_;
  std::uint64_t pass_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace cbus::workloads
