// KernelStream: turns a KernelProfile into a per-run-randomized OpStream.
// All randomness derives from the reset() seed, so a run is exactly
// reproducible and two platform configurations can replay identical op
// sequences (paired comparisons need this).
#pragma once

#include "cpu/op_stream.hpp"
#include "rng/xorshift.hpp"
#include "workloads/kernel_profile.hpp"

namespace cbus::workloads {

class KernelStream final : public cpu::OpStream {
 public:
  explicit KernelStream(KernelProfile profile);

  [[nodiscard]] std::optional<cpu::MemOp> next() override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return profile_.name;
  }

  [[nodiscard]] const KernelProfile& profile() const noexcept {
    return profile_;
  }

 private:
  [[nodiscard]] Addr next_address();

  KernelProfile profile_;
  rng::XorShift64Star engine_;
  std::uint64_t emitted_ = 0;
  std::uint64_t stride_pos_ = 0;
  std::uint32_t chase_cursor_ = 0;
  std::uint32_t burst_remaining_ = 0;
};

}  // namespace cbus::workloads
