// KernelProfile: the parameter set describing a synthetic kernel's memory
// behaviour. The EEMBC-Autobench-like workloads are instances of this one
// generator (see eembc_like.cpp for the profiles and the rationale mapping
// each to the real kernel's access-pattern signature).
#pragma once

#include <cstdint>
#include <string>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace cbus::workloads {

enum class AccessPattern : std::uint8_t {
  kStrided,       ///< sequential sweep with a fixed stride (matrix rows)
  kRandom,        ///< uniform over the footprint (hash/table lookups)
  kPointerChase,  ///< dependent-walk over the footprint (linked structures)
};

struct KernelProfile {
  std::string name;

  /// Data footprint in bytes. Relative to the 16 KiB L1 and the 128 KiB L2
  /// partition this determines where misses land.
  std::uint32_t footprint_bytes = 32 * 1024;

  /// Memory operations per run (run length).
  std::uint64_t n_ops = 20'000;

  AccessPattern pattern = AccessPattern::kRandom;
  std::uint32_t stride_bytes = 32;  ///< for kStrided

  /// Probability (in 1/1024 units, hardware-style) of an op being a store /
  /// an atomic; the rest are loads.
  std::uint32_t store_permille_1024 = 100;
  std::uint32_t atomic_permille_1024 = 0;

  /// Uniform compute gap (cycles) before each op...
  std::uint32_t gap_min = 8;
  std::uint32_t gap_max = 16;
  /// ...except inside bursts: with probability burst_prob_1024/1024 an op
  /// starts a burst of `burst_len` ops with zero gap (tight loop bodies).
  std::uint32_t burst_prob_1024 = 0;
  std::uint32_t burst_len = 0;

  /// Fraction (1/1024) of accesses that stay inside a hot region of
  /// `hot_bytes`, modelling loop-carried locality.
  std::uint32_t hot_permille_1024 = 0;
  std::uint32_t hot_bytes = 4 * 1024;

  /// Base virtual address of the kernel's data segment.
  Addr base = 0x4000'0000;

  void validate() const {
    CBUS_EXPECTS(!name.empty());
    CBUS_EXPECTS(footprint_bytes >= 64);
    CBUS_EXPECTS(n_ops >= 1);
    CBUS_EXPECTS(stride_bytes >= 1);
    CBUS_EXPECTS(store_permille_1024 + atomic_permille_1024 <= 1024);
    CBUS_EXPECTS(gap_min <= gap_max);
    CBUS_EXPECTS(hot_permille_1024 <= 1024);
    CBUS_EXPECTS(hot_bytes <= footprint_bytes);
    CBUS_EXPECTS(burst_prob_1024 <= 1024);
  }
};

}  // namespace cbus::workloads
