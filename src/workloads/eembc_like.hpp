// EEMBC-Autobench-like workload profiles.
//
// EEMBC Autobench binaries are proprietary, so the evaluation runs
// synthetic kernels whose *memory-operation signature* matches the real
// kernels (see DESIGN.md substitution table): footprint relative to the
// cache hierarchy, access pattern, store fraction, and bus pressure. The
// four kernels of the paper's Figure 1 (cacheb, canrdr, matrix, tblook)
// plus four more Autobench members for wider coverage.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "workloads/kernel_stream.hpp"

namespace cbus::workloads {

/// Profile for a named kernel; throws for unknown names.
[[nodiscard]] KernelProfile eembc_profile(std::string_view kernel);

/// Ready-to-run stream for a named kernel.
[[nodiscard]] std::unique_ptr<KernelStream> make_eembc(
    std::string_view kernel);

/// The kernels Figure 1 evaluates, in the paper's order.
[[nodiscard]] std::vector<std::string_view> figure1_kernels();

/// All available kernels (Figure 1 set + extended set).
[[nodiscard]] std::vector<std::string_view> all_kernels();

}  // namespace cbus::workloads
