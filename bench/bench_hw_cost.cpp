// E5 -- SIV-B "Implementation Overheads".
//
// The paper synthesizes the 4-core LEON3 with and without CBA on a
// TerasIC DE4 FPGA: same 100 MHz maximum frequency, occupancy growth
// "far less than 0.1%" over the 73%-occupied baseline. Without the board,
// we substitute two measurements that support the same claim (see
// DESIGN.md substitution table):
//
//  1. a hardware-cost inventory: state bits and 4-LUT equivalents of each
//     arbitration policy and of the CBA addition, from the same cost
//     models the arbiter classes expose -- CBA adds four 8-bit saturating
//     counters plus comparators, i.e. tens of LUTs against the ~10^5-LUT
//     budget of a 4-core SoC (0.0x%);
//  2. software timing of the per-cycle credit update and the full
//     arbitration decision path, showing the decision fits a single
//     cycle's worth of simple logic.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "bus/arbiter_factory.hpp"
#include "core/credit_filter.hpp"
#include "rng/rand_bank.hpp"

namespace {

using namespace cbus;

// A Stratix-IV-class 4-core SoC (the paper's DE4 board at 73% occupancy)
// uses on the order of 130k ALUTs; CBA's addition is measured against it.
constexpr double kSocLutBudget = 130'000.0;

void print_hw_costs() {
  bench::banner(
      "SIV-B implementation overheads -- arbiter hardware-cost inventory",
      "State bits + 4-LUT-equivalent estimates per policy (4 masters), and\n"
      "the CBA filter's addition relative to a ~130k-LUT 4-core SoC.");

  rng::RandBank bank(1);
  bench::Table table({"block", "state bits", "LUT-equiv", "notes"});
  for (const auto kind :
       {bus::ArbiterKind::kFixedPriority, bus::ArbiterKind::kRoundRobin,
        bus::ArbiterKind::kFifo, bus::ArbiterKind::kLottery,
        bus::ArbiterKind::kRandomPermutation, bus::ArbiterKind::kTdma}) {
    const auto arbiter = bus::make_arbiter(kind, 4, bank);
    const bus::HwCost cost = arbiter->hw_cost();
    table.add_row({std::string(to_string(kind)),
                   std::to_string(cost.state_bits),
                   std::to_string(cost.lut_equivalents), cost.notes});
  }
  const core::CreditFilter filter(core::CbaConfig::paper_table1());
  const bus::HwCost cba = filter.hw_cost();
  table.add_row({"CBA filter (the addition)", std::to_string(cba.state_bits),
                 std::to_string(cba.lut_equivalents), cba.notes});
  table.print();

  const double growth = 100.0 * cba.lut_equivalents / kSocLutBudget;
  std::cout << "\nCBA addition vs 4-core SoC budget: "
            << bench::fmt(growth, 3) << "% LUT growth   (paper: FPGA "
            << "occupancy grew by far less than 0.1%)\n"
            << "Arbitration decisions remain single-cycle: the timing "
               "benchmarks below show\nthe whole decision path is a few "
               "nanoseconds of simple integer logic, far\ninside a 10 ns "
               "(100 MHz) cycle budget.\n";
}

void BM_CreditUpdatePerCycle(benchmark::State& state) {
  core::CreditState credits(core::CbaConfig::paper_table1());
  MasterId holder = 2;
  for (auto _ : state) {
    credits.tick(holder);
    benchmark::DoNotOptimize(credits.budget(2));
  }
}
BENCHMARK(BM_CreditUpdatePerCycle);

void BM_ArbitrationDecision(benchmark::State& state,
                            bus::ArbiterKind kind) {
  rng::RandBank bank(7);
  const auto arbiter = bus::make_arbiter(kind, 4, bank, 56);
  const std::array<Cycle, 4> arrival{0, 1, 2, 3};
  Cycle now = 0;
  for (auto _ : state) {
    const bus::ArbInput input{0b1111, arrival, now += 56};
    const MasterId winner = arbiter->pick(input);
    if (winner != kNoMaster) arbiter->on_grant(winner, now);
    benchmark::DoNotOptimize(winner);
  }
}
BENCHMARK_CAPTURE(BM_ArbitrationDecision, round_robin,
                  bus::ArbiterKind::kRoundRobin);
BENCHMARK_CAPTURE(BM_ArbitrationDecision, lottery, bus::ArbiterKind::kLottery);
BENCHMARK_CAPTURE(BM_ArbitrationDecision, random_permutations,
                  bus::ArbiterKind::kRandomPermutation);
BENCHMARK_CAPTURE(BM_ArbitrationDecision, tdma, bus::ArbiterKind::kTdma);

void BM_FilteredDecision(benchmark::State& state) {
  // Full CBA path: credit tick + eligibility mask + inner RP pick.
  rng::RandBank bank(9);
  const auto arbiter =
      bus::make_arbiter(bus::ArbiterKind::kRandomPermutation, 4, bank);
  core::CreditFilter filter(core::CbaConfig::paper_table1());
  const std::array<Cycle, 4> arrival{0, 0, 0, 0};
  Cycle now = 0;
  for (auto _ : state) {
    filter.on_cycle(kNoMaster, now);
    const std::uint32_t eligible = filter.eligible(0b1111, now);
    if (eligible != 0) {
      const bus::ArbInput input{eligible, arrival, now + 1};
      const MasterId winner = arbiter->pick(input);
      if (winner != kNoMaster) arbiter->on_grant(winner, now);
      benchmark::DoNotOptimize(winner);
    }
    ++now;
  }
}
BENCHMARK(BM_FilteredDecision);

}  // namespace

int main(int argc, char** argv) {
  print_hw_costs();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
