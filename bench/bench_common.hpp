// Shared infrastructure for the experiment binaries: paper-style table
// printing and campaign sizing.
//
// Every bench binary does two things:
//   1. prints the reproduced paper table/figure as rows on stdout, and
//   2. registers google-benchmark timings for the underlying simulations.
// CBUS_BENCH_RUNS (environment) overrides the per-cell run count; the
// paper uses 1,000 runs per cell, the default here is smaller so the whole
// suite stays interactive.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/arbiter_factory.hpp"
#include "bus/bus.hpp"
#include "core/credit_filter.hpp"
#include "platform/synthetic_master.hpp"
#include "rng/rand_bank.hpp"
#include "sim/kernel.hpp"

namespace cbus::bench {

/// A raw-bus rig of synthetic forced-hold masters: the workhorse of the
/// ablation benches (no caches, so every effect is the arbiter's).
class SyntheticRig {
 public:
  SyntheticRig(bus::ArbiterKind kind, std::optional<core::CbaConfig> cba,
               Cycle tdma_slot = 56, std::uint64_t seed = 0x51D);
  ~SyntheticRig();  // out of line: ForcedHoldOnlySlave is incomplete here

  /// Add a master issuing `requests` (0 = unbounded) `hold`-cycle
  /// transactions separated by `gap` cycles, idle for `initial_delay`
  /// cycles first.
  platform::SyntheticMaster& add_master(MasterId id, Cycle hold,
                                        std::uint64_t requests,
                                        std::uint32_t gap,
                                        std::uint32_t initial_delay = 0,
                                        bool instant_rerequest = false);

  /// Run for `cycles` (call after all masters are added).
  void run(Cycle cycles);

  /// Run until master 0 finishes (requests > 0); returns its finish cycle.
  [[nodiscard]] Cycle run_until_first_done(Cycle max_cycles);

  [[nodiscard]] const bus::BusStatistics& stats() const {
    return bus_->statistics();
  }
  [[nodiscard]] core::CreditFilter* filter() noexcept {
    return filter_.get();
  }

 private:
  class ForcedHoldOnlySlave;

  rng::RandBank bank_;
  std::unique_ptr<ForcedHoldOnlySlave> slave_;
  std::unique_ptr<bus::Arbiter> arbiter_;
  std::unique_ptr<bus::NonSplitBus> bus_;
  std::unique_ptr<core::CreditFilter> filter_;
  std::vector<std::unique_ptr<platform::SyntheticMaster>> masters_;
  sim::Kernel kernel_;
  bool finalized_ = false;
};

/// Per-cell campaign runs (default `fallback`, override via CBUS_BENCH_RUNS).
[[nodiscard]] std::uint32_t campaign_runs(std::uint32_t fallback);

/// Fixed-width text table, markdown-ish, for paper-style output.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out = std::cout) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals.
[[nodiscard]] std::string fmt(double value, int decimals = 2);

/// Section banner for bench stdout.
void banner(const std::string& title, const std::string& subtitle);

}  // namespace cbus::bench
