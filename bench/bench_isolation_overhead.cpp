// E4 -- SIV-B "Results in Isolation": the cost of CBA when the task runs
// alone. The paper reports CBA increases isolation execution time by ~3%
// on average across EEMBC (the budget gate occasionally stalls bursty
// request sequences), while H-CBA's impact is "negligible" (the TuA's
// faster recovery rate makes the gate bind almost never).
//
// We run all eight EEMBC-like kernels (the Figure-1 four plus the
// extended set) in isolation under RP, RP+CBA and RP+H-CBA.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;
using platform::BusSetup;
using platform::CampaignSpec;
using platform::PlatformConfig;

void print_isolation_overheads() {
  const std::uint32_t runs = bench::campaign_runs(15);
  bench::banner(
      "SIV-B isolation overhead -- CBA vs RP with the task alone",
      "Average execution time normalised to the RP bus, " +
          std::to_string(runs) + " randomized runs per cell.");

  bench::Table table(
      {"kernel", "RP (cycles)", "CBA", "H-CBA", "iso bus util"});
  double sum_cba = 0;
  double sum_hcba = 0;
  int n = 0;
  for (const auto kernel : workloads::all_kernels()) {
    auto tua = workloads::make_eembc(kernel);
    CampaignSpec spec;
    spec.protocol = CampaignSpec::Protocol::kIsolation;
    spec.tua = tua.get();
    spec.runs = runs;
    spec.base_seed = 0x150;

    spec.config = PlatformConfig::paper(BusSetup::kRp);
    const auto rp = platform::run_campaign(spec);
    spec.config = PlatformConfig::paper(BusSetup::kCba);
    const auto cba = platform::run_campaign(spec);
    spec.config = PlatformConfig::paper(BusSetup::kHcba);
    const auto hcba = platform::run_campaign(spec);

    const double base = rp.exec_time().mean();
    const double r_cba = cba.exec_time().mean() / base;
    const double r_hcba = hcba.exec_time().mean() / base;
    sum_cba += r_cba;
    sum_hcba += r_hcba;
    ++n;
    table.add_row({std::string(kernel), bench::fmt(base, 0),
                   bench::fmt(r_cba) + "x", bench::fmt(r_hcba) + "x",
                   bench::fmt(100.0 * rp.bus_utilization().mean(), 1) + "%"});
  }
  table.print();
  std::cout << "\naverage CBA isolation overhead   : "
            << bench::fmt(100.0 * (sum_cba / n - 1.0), 1)
            << "%   (paper: ~3%)\n"
            << "average H-CBA isolation overhead : "
            << bench::fmt(100.0 * (sum_hcba / n - 1.0), 1)
            << "%   (paper: negligible)\n"
            << "\nThe overhead tracks how often a kernel issues a request\n"
               "before its budget has recovered (paper SIV-B); bus-light\n"
               "kernels see none, the streaming matrix kernel the most.\n";
}

void BM_IsolationRun(benchmark::State& state, BusSetup setup) {
  auto tua = workloads::make_eembc("cacheb");
  const PlatformConfig cfg = PlatformConfig::paper(setup);
  std::uint64_t seed = 11;
  for (auto _ : state) {
    tua->reset(seed);
    platform::Multicore machine(cfg, seed, *tua);
    benchmark::DoNotOptimize(machine.run().tua_cycles);
    ++seed;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_IsolationRun, rp, BusSetup::kRp);
BENCHMARK_CAPTURE(BM_IsolationRun, cba, BusSetup::kCba);
BENCHMARK_CAPTURE(BM_IsolationRun, hcba, BusSetup::kHcba);

int main(int argc, char** argv) {
  print_isolation_overheads();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
