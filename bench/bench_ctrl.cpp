// Adaptive-controller cost microbenches, pinned by the CI bench gate so
// the feedback loop cannot silently tax the simulation hot path.
//
// The registered benchmarks are bench-gate entries (tools/bench_compare.py
// vs bench/baselines.json):
//   BM_FairShares        -- one Fahmy/Jain water-filling pass over a
//                           16-master demand vector (the per-epoch math);
//   BM_AdaptiveTick      -- steady-state ctrl::AdaptiveController::tick
//                           with live demand, amortising sampling and the
//                           per-window epoch over every cycle;
//   BM_CtrlRun/static    -- a 4-core H-CBA phased-load co-run with the
//                           increments left alone (the baseline cost);
//   BM_CtrlRun/adaptive  -- the same run with `adaptive:1024` retuning,
//                           so the gate pins the controller's whole-run
//                           overhead relative to static.
#include <benchmark/benchmark.h>

#include <vector>

#include "bus/bus.hpp"
#include "core/cba_config.hpp"
#include "core/credit_state.hpp"
#include "ctrl/controller.hpp"
#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/phased.hpp"

namespace {

using namespace cbus;
using platform::BusSetup;
using platform::PlatformConfig;

void BM_FairShares(benchmark::State& state) {
  std::vector<double> demand(16);
  for (std::size_t m = 0; m < demand.size(); ++m) {
    demand[m] = static_cast<double>((m * 7) % 13) + 0.5;
  }
  for (auto _ : state) {
    auto share = ctrl::fair_shares(demand, {}, 24.0);
    benchmark::DoNotOptimize(share);
  }
}
BENCHMARK(BM_FairShares);

void BM_AdaptiveTick(benchmark::State& state) {
  core::CreditState credits(core::CbaConfig::paper_hcba(56));
  bus::BusStatistics stats;
  stats.master.resize(4);
  ctrl::AdaptiveController controller(
      ctrl::parse_controller("adaptive:1024"), credits, stats);
  Cycle now = 1;
  for (auto _ : state) {
    // Uneven live demand keeps the epoch path exercised, not deadbanded.
    stats.master[now & 3].hold_cycles += 1 + (now & 1);
    controller.tick(now++);
  }
  benchmark::DoNotOptimize(controller.stats().epochs);
}
BENCHMARK(BM_AdaptiveTick);

[[nodiscard]] Cycle one_run(std::uint64_t seed, bool adaptive) {
  static auto tua = workloads::make_eembc("matrix");
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kHcba);
  if (adaptive) cfg.controller = ctrl::parse_controller("adaptive:1024");
  workloads::PhaseShiftedStream c1(768, 256, 150);
  workloads::PhaseShiftedStream c2(768, 512, 150);
  workloads::PhaseShiftedStream c3(768, 640, 150);
  tua->reset(seed);
  platform::Multicore machine(cfg, seed, *tua, {&c1, &c2, &c3});
  return machine.run().tua_cycles;
}

void BM_CtrlRunStatic(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_run(seed, /*adaptive=*/false));
    ++seed;
  }
}
BENCHMARK(BM_CtrlRunStatic)->Name("BM_CtrlRun/static");

void BM_CtrlRunAdaptive(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_run(seed, /*adaptive=*/true));
    ++seed;
  }
}
BENCHMARK(BM_CtrlRunAdaptive)->Name("BM_CtrlRun/adaptive");

}  // namespace

BENCHMARK_MAIN();
