// E1 -- the paper's SII illustrative example, reproduced cycle by cycle.
//
//   "let us assume that the task under analysis issues frequent requests
//    that access the L2 cache with a total turnaround latency of 6 cycles
//    once granted access to the bus. [...] tasks in the other cores are
//    streaming applications issuing constantly read requests to memory
//    that take 28 cycles. [...] its execution time with contention will
//    easily be close to (10,000 - 6,000) + 1,000 x (6 + 84) = 94,000 [...]
//    a 9.4x slowdown. [...] if a cycle-fair arbitration is used, execution
//    time would be (10,000 - 6,000) + 1,000 x (6 + 18) = 28,000, so a 2.8x
//    slowdown."
//
// We run the exact scenario on the modelled non-split bus: the TuA issues
// 1,000 5-cycle-hold requests separated by 4 compute cycles (the 1-cycle
// arbitration makes the 6-cycle turnaround), against three greedy
// 28-cycle streamers, under request-fair arbitration and under CBA.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "common/contracts.hpp"
#include "core/credit_filter.hpp"
#include "platform/synthetic_master.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace cbus;

class UnusedSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    CBUS_ASSERT(false);  // every request carries a forced hold
    return 1;
  }
};

struct Outcome {
  double cycles = 0;
  double tua_occupancy = 0;
  double contender_occupancy = 0;
};

Outcome run_example(std::optional<core::CbaConfig> cba, int n_contenders,
                    Cycle contender_hold) {
  UnusedSlave slave;
  bus::RoundRobinArbiter arbiter(4);
  bus::NonSplitBus b(bus::BusConfig{4, true}, arbiter, slave);
  std::unique_ptr<core::CreditFilter> filter;
  if (cba.has_value()) {
    filter = std::make_unique<core::CreditFilter>(*cba);
    b.set_filter(filter.get());
  }
  sim::Kernel kernel;

  platform::SyntheticMasterConfig tua_cfg;
  tua_cfg.id = 0;
  tua_cfg.hold = 5;
  tua_cfg.requests = 1000;
  tua_cfg.gap = 4;
  platform::SyntheticMaster tua(tua_cfg, b);
  kernel.add(tua);

  std::vector<std::unique_ptr<platform::SyntheticMaster>> contenders;
  for (int i = 1; i <= n_contenders; ++i) {
    platform::SyntheticMasterConfig c;
    c.id = static_cast<MasterId>(i);
    c.hold = contender_hold;
    c.requests = 0;  // stream forever
    c.gap = 0;
    contenders.push_back(std::make_unique<platform::SyntheticMaster>(c, b));
    kernel.add(*contenders.back());
  }
  kernel.add(b);

  const bool done =
      kernel.run_until([&]() { return tua.done(); }, 5'000'000);
  CBUS_ASSERT(done);

  Outcome out;
  out.cycles = static_cast<double>(tua.finish_cycle());
  const auto& s = b.statistics();
  out.tua_occupancy = s.occupancy_share(0);
  out.contender_occupancy = n_contenders > 0 ? s.occupancy_share(1) : 0.0;
  return out;
}

void print_example() {
  bench::banner(
      "SII illustrative example -- 1,000 short requests vs 3 streaming "
      "contenders",
      "TuA: 5-cycle holds + 1-cycle arbitration (6-cycle turnaround), "
      "4-cycle gaps.\nContenders: greedy 28-cycle memory reads.");

  const auto iso = run_example(std::nullopt, 0, 28);
  const auto rf = run_example(std::nullopt, 3, 28);
  const auto cba = run_example(core::CbaConfig::homogeneous(4, 56), 3, 28);
  const auto rf56 = run_example(std::nullopt, 3, 56);
  const auto cba56 = run_example(core::CbaConfig::homogeneous(4, 56), 3, 56);

  bench::Table table({"scenario", "cycles", "slowdown", "paper", "TuA occ",
                      "contender occ"});
  table.add_row({"isolation", bench::fmt(iso.cycles, 0), "1.00x",
                 "10,000 (1.0x)", bench::fmt(iso.tua_occupancy), "-"});
  table.add_row({"request-fair, 28-cy contenders", bench::fmt(rf.cycles, 0),
                 bench::fmt(rf.cycles / iso.cycles) + "x", "94,000 (9.4x)",
                 bench::fmt(rf.tua_occupancy),
                 bench::fmt(rf.contender_occupancy)});
  table.add_row({"CBA, 28-cy contenders", bench::fmt(cba.cycles, 0),
                 bench::fmt(cba.cycles / iso.cycles) + "x",
                 "28,000 (2.8x, idealized)", bench::fmt(cba.tua_occupancy),
                 bench::fmt(cba.contender_occupancy)});
  table.add_row({"request-fair, 56-cy contenders", bench::fmt(rf56.cycles, 0),
                 bench::fmt(rf56.cycles / iso.cycles) + "x",
                 "(unbounded in hold)", bench::fmt(rf56.tua_occupancy),
                 bench::fmt(rf56.contender_occupancy)});
  table.add_row({"CBA, 56-cy contenders", bench::fmt(cba56.cycles, 0),
                 bench::fmt(cba56.cycles / iso.cycles) + "x", "(bounded)",
                 bench::fmt(cba56.tua_occupancy),
                 bench::fmt(cba56.contender_occupancy)});
  table.print();

  std::cout
      << "\nShape check: request-fair slowdown grows with the contenders'\n"
         "request length (8.9x -> 17.3x); CBA pins every contender at 25%\n"
         "occupancy so the TuA's time barely moves. The paper's 94,000 is\n"
         "the fully-serialized closed form (our 4-cycle gap overlaps the\n"
         "head of each wait: 89,000); its 28,000 cycle-fair figure assumes\n"
         "zero eligibility latency, while the implementable mechanism\n"
         "(full-budget eligibility, Table I) measures ~56,000 -- still\n"
         "bounded, unlike the request-fair baseline.\n";
}

void BM_IllustrativeRequestFair(benchmark::State& state) {
  for (auto _ : state) {
    const auto out = run_example(std::nullopt, 3, 28);
    benchmark::DoNotOptimize(out.cycles);
  }
}
BENCHMARK(BM_IllustrativeRequestFair);

void BM_IllustrativeCba(benchmark::State& state) {
  for (auto _ : state) {
    const auto out = run_example(core::CbaConfig::homogeneous(4, 56), 3, 28);
    benchmark::DoNotOptimize(out.cycles);
  }
}
BENCHMARK(BM_IllustrativeCba);

}  // namespace

int main(int argc, char** argv) {
  print_example();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
