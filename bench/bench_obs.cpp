// Observability-cost microbenches: what the obs:: hooks and the timeline
// tracer cost, pinned by the CI bench gate so instrumentation overhead
// cannot silently creep into the simulation hot path.
//
// The registered benchmarks are bench-gate entries (tools/bench_compare.py
// vs bench/baselines.json):
//   BM_RegistryCounterAdd  -- one obs::Counter::add (the fast path that
//                             CBUS_OBS=OFF compiles to nothing);
//   BM_DemandWindowRecord  -- one sliding-window demand update;
//   BM_ObsRunBare          -- a 4-core H-CBA contention run, no tracer;
//   BM_ObsRunTraced        -- the same run with a Timeline attached PLUS
//                             a bare re-run asserting bit-identical
//                             results (the no-perturbation contract,
//                             enforced where the overhead is measured);
//                             its time therefore covers ~2 runs + capture.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>

#include "obs/demand_window.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;
using platform::BusSetup;
using platform::PlatformConfig;

void BM_RegistryCounterAdd(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bench");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(counter);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_RegistryCounterAdd);

void BM_DemandWindowRecord(benchmark::State& state) {
  obs::DemandWindow window(4, /*window=*/4096, /*buckets=*/16);
  Cycle now = 0;
  for (auto _ : state) {
    window.record(static_cast<MasterId>(now & 3), now);
    ++now;
  }
  benchmark::DoNotOptimize(window.demand(0, now));
}
BENCHMARK(BM_DemandWindowRecord);

[[nodiscard]] Cycle one_run(std::uint64_t seed, bool traced) {
  static auto tua = workloads::make_eembc("matrix");
  const PlatformConfig cfg = PlatformConfig::paper_wcet(BusSetup::kHcba);
  tua->reset(seed);
  platform::Multicore machine(cfg, seed, *tua);
  obs::Timeline timeline;
  if (traced) timeline.attach(machine);
  return machine.run().tua_cycles;
}

void BM_ObsRunBare(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(one_run(seed, /*traced=*/false));
    ++seed;
  }
}
BENCHMARK(BM_ObsRunBare);

void BM_ObsRunTraced(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const Cycle traced = one_run(seed, /*traced=*/true);
    const Cycle bare = one_run(seed, /*traced=*/false);
    if (traced != bare) {
      std::cerr << "FATAL: tracer perturbed the simulation (seed " << seed
                << ": " << traced << " vs " << bare << " cycles)\n";
      std::abort();
    }
    benchmark::DoNotOptimize(traced);
    ++seed;
  }
}
BENCHMARK(BM_ObsRunTraced);

}  // namespace

BENCHMARK_MAIN();
