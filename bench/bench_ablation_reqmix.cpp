// A5 -- ablation: request-length heterogeneity (the paper's core premise).
//
// SI: "whenever requests from different cores have different duration,
// fairness is lost since cores with larger requests enjoy most of the
// bandwidth" -- e.g. alternating 5- and 45-cycle requests give 10%/90%.
//
// We sweep the long master's request length L against a 5-cycle short
// master (two masters, both greedy) and report occupancy shares and Jain
// indices with and without CBA: without, unfairness grows with L/5;
// with CBA both are pinned at their halves... of the eligible time.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "stats/fairness.hpp"

namespace {

using namespace cbus;

struct MixResult {
  double occ_short = 0;
  double occ_long = 0;
  double jain = 0;
  double grant_share_long = 0;
};

MixResult measure(Cycle long_hold, bool with_cba,
                  bus::ArbiterKind kind = bus::ArbiterKind::kRoundRobin) {
  // Two active masters on the 4-master bus (the paper's SI example).
  bench::SyntheticRig rig(
      kind, with_cba ? std::optional<core::CbaConfig>(
                           core::CbaConfig::homogeneous(4, 56))
                     : std::nullopt);
  rig.add_master(0, 5, 0, 0, 0, /*instant_rerequest=*/true);
  rig.add_master(1, long_hold, 0, 0, 0, /*instant_rerequest=*/true);
  rig.run(200'000);
  const auto& s = rig.stats();
  MixResult r;
  r.occ_short = s.occupancy_share(0);
  r.occ_long = s.occupancy_share(1);
  const std::vector<double> occ{r.occ_short, r.occ_long};
  r.jain = stats::jain_index(occ);
  r.grant_share_long = s.grant_share(1);
  return r;
}

void print_ablation() {
  bench::banner(
      "A5 -- bandwidth share vs request-length ratio (SI example)",
      "Master 0: greedy 5-cycle requests. Master 1: greedy L-cycle\n"
      "requests. Round-robin arbitration; CBA MaxL = 56.");

  bench::Table table({"L (long hold)", "no-CBA occ 5cy/Lcy", "no-CBA Jain",
                      "CBA occ 5cy/Lcy", "CBA Jain",
                      "DRR occ 5cy/Lcy", "DRR Jain"});
  for (const Cycle L : {5u, 9u, 15u, 28u, 45u, 56u}) {
    const MixResult plain = measure(L, false);
    const MixResult cba = measure(L, true);
    // Prior-art comparison: deficit round-robin, cycle-fair by quantum
    // accounting instead of an eligibility filter.
    const MixResult drr =
        measure(L, false, bus::ArbiterKind::kDeficitRoundRobin);
    table.add_row(
        {std::to_string(L) + (L == 45 ? " (paper's 10%/90%)" : ""),
         bench::fmt(plain.occ_short) + "/" + bench::fmt(plain.occ_long),
         bench::fmt(plain.jain, 3),
         bench::fmt(cba.occ_short) + "/" + bench::fmt(cba.occ_long),
         bench::fmt(cba.jain, 3),
         bench::fmt(drr.occ_short) + "/" + bench::fmt(drr.occ_long),
         bench::fmt(drr.jain, 3)});
  }
  table.print();
  std::cout
      << "\nWithout CBA grant shares stay at 50/50 (request-fair!) while "
         "occupancy\ndiverges to ~L/(L+5) for the long master -- 90% at "
         "the paper's L = 45.\nWith CBA the long master is capped at its "
         "25% (MaxL budget), ending the\ndivergence; the short master's "
         "eligibility latency keeps it below its cap,\nbut its share no "
         "longer shrinks as L grows. Deficit round-robin -- the\n"
         "networking prior art -- achieves 50/50 occupancy here because "
         "it reorders\ngrants instead of gating eligibility; the price "
         "is that it must track\nactual transaction lengths post-hoc and "
         "provides no per-core rate cap\n(an always-greedy master still "
         "takes every idle cycle).\n";
}

void BM_ReqMixStep(benchmark::State& state) {
  const auto L = static_cast<Cycle>(state.range(0));
  bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin,
                          core::CbaConfig::homogeneous(4, 56));
  rig.add_master(0, 5, 0, 0);
  rig.add_master(1, L, 0, 0);
  rig.run(1);
  for (auto _ : state) {
    rig.run(1000);
    benchmark::DoNotOptimize(rig.stats().busy_cycles);
  }
}
BENCHMARK(BM_ReqMixStep)->Arg(9)->Arg(45);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
