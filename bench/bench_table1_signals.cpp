// E2 -- Table I of the paper: the CBA signal summary, demonstrated live.
//
//   |          | Every cycle            | When using bus |
//   | BUDGi    | min(BUDGi + 1, 228)    | BUDGi - 4      |
//   |          | WCET mode              | Operation mode |
//   | COMP1    | --                     | --             |
//   | COMP2,3,4| BUDGi == 228 ^ REQ1==1 | 1              |
//   | REQ1     | when request ready     | when request ready |
//   | REQ2,3,4 | 1                      | when request ready |
//
// This bench replays a deterministic WCET-mode scenario on the real
// arbiter/credit machinery and prints a cycle-by-cycle register trace
// showing each Table-I rule firing: the saturating +1, the -4 occupancy
// charge, the COMP latch (budget full AND TuA request pending) and its
// reset on grant.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "common/contracts.hpp"
#include "core/credit_filter.hpp"
#include "core/virtual_contender.hpp"
#include "platform/synthetic_master.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace cbus;

class UnusedSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    CBUS_ASSERT(false);
    return 1;
  }
};

void print_table1_trace() {
  bench::banner(
      "Table I -- CBA signals in WCET-estimation mode",
      "4 cores, MaxL = 56, 8-bit budgets saturating at 228, +1/cycle,\n"
      "-4/cycle while holding. TuA (core 0) starts with zero budget and\n"
      "issues 5-cycle requests; contenders hold 56 cycles, COMP-latched.");

  UnusedSlave slave;
  bus::RoundRobinArbiter arbiter(4);
  bus::NonSplitBus b(bus::BusConfig{4, true}, arbiter, slave);
  core::CreditFilter filter(core::CbaConfig::paper_table1());
  b.set_filter(&filter);
  filter.state().set_budget(0, 0);  // TuA zero initial budget (SIII-B)

  sim::Kernel kernel;
  platform::SyntheticMasterConfig tua_cfg;
  tua_cfg.id = 0;
  tua_cfg.hold = 5;
  tua_cfg.requests = 3;
  tua_cfg.gap = 4;
  platform::SyntheticMaster tua(tua_cfg, b);
  kernel.add(tua);

  std::vector<std::unique_ptr<core::VirtualContender>> contenders;
  for (MasterId m = 1; m < 4; ++m) {
    core::VirtualContenderConfig vc;
    vc.self = m;
    vc.tua = 0;
    vc.hold = 56;
    vc.policy = core::ContenderPolicy::kCompLatch;
    contenders.push_back(
        std::make_unique<core::VirtualContender>(vc, b, &filter.state()));
    kernel.add(*contenders.back());
  }
  kernel.add(b);

  bench::Table table({"cycle", "BUDG0", "BUDG1", "BUDG2", "BUDG3", "COMP2",
                      "COMP3", "COMP4", "REQ1", "holder", "event"});

  std::uint64_t prev_budg0 = 0;
  MasterId prev_holder = kNoMaster;
  for (Cycle t = 0; t < 800; ++t) {
    kernel.step();
    const auto& cs = filter.state();
    const MasterId holder = b.holder();

    // Record only the interesting cycles to keep the trace readable.
    std::string event;
    if (t == 0) event = "TuA budget zeroed at analysis start";
    if (cs.budget(0) == 228 && prev_budg0 < 228) {
      event = "BUDG0 saturates at 228 -> TuA eligible";
    }
    if (holder != prev_holder && holder != kNoMaster) {
      event = "core " + std::to_string(holder) + " granted" +
              (holder == 0 ? " (TuA)" : " (holds 56)");
    }
    if (holder == kNoMaster && prev_holder != kNoMaster) {
      event = "bus released by core " + std::to_string(prev_holder);
    }
    if (!event.empty() || t % 100 == 99) {
      table.add_row(
          {std::to_string(t), std::to_string(cs.budget(0)),
           std::to_string(cs.budget(1)), std::to_string(cs.budget(2)),
           std::to_string(cs.budget(3)),
           contenders[0]->comp() ? "1" : "0",
           contenders[1]->comp() ? "1" : "0",
           contenders[2]->comp() ? "1" : "0",
           b.has_pending(0) ? "1" : "0",
           holder == kNoMaster ? "-" : std::to_string(holder), event});
    }
    prev_budg0 = cs.budget(0);
    prev_holder = holder;
    if (tua.done() && t > 600) break;
  }
  table.print();

  std::cout << "\nRules verified live: budgets never exceed 228; the holder "
               "pays net -3/cycle\n(+1 and -4 combined); COMPi latches only "
               "when BUDGi == 228 and the TuA has a\npending request, and "
               "resets on grant; the TuA's first request waits for its\n"
               "zeroed budget to saturate (228 cycles).\n";
}

/// Timing: raw cost of the credit-state update (the per-cycle hardware op).
void BM_CreditTick(benchmark::State& state) {
  core::CreditState credits(core::CbaConfig::paper_table1());
  MasterId holder = 0;
  for (auto _ : state) {
    credits.tick(holder);
    holder = (holder + 1) % 5 == 4 ? kNoMaster : (holder + 1) % 4;
    benchmark::DoNotOptimize(credits.budget(0));
  }
}
BENCHMARK(BM_CreditTick);

/// Timing: eligibility mask computation (the filter's combinational path).
void BM_EligibilityMask(benchmark::State& state) {
  core::CreditState credits(core::CbaConfig::paper_table1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(credits.eligible_mask(0b1111));
  }
}
BENCHMARK(BM_EligibilityMask);

}  // namespace

int main(int argc, char** argv) {
  print_table1_trace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
