// Graph-routed interconnect study: the chain-of-segments question from
// bench_segmented widened to the ring and 2D-mesh topologies, with the
// bounded bridge queues (credit-based backpressure) the chain never had
// (ROADMAP "multi-segment/NoC-style interconnects").
//
// The printed table runs a congested co-run -- the canrdr TuA plus
// eight saturating streaming contenders, every access an L2 miss -- on
// ring:4 and mesh:3x3 under H-CBA, contrasting unbounded bridges with a
// depth-1 bound:
//  * seg.backpressure_stalls shows the withheld master-cycles the bound
//    converts queue growth into (unbounded rows must read zero);
//  * seg.queue_depth_max shows the high-water mark the bound clamps;
//  * TuA cycles show what the backpressure costs the analysed task.
//
// The registered benchmarks are the CI bench-gate entries
// (tools/bench_compare.py vs bench/baselines.json):
//   BM_RingCampaign          -- 8-run congested co-run on ring:4, depth 1;
//   BM_MeshCampaign          -- the same campaign on mesh:3x3, depth 1;
//   BM_MeshUnboundedCampaign -- mesh:3x3 with unbounded bridges, the
//                               no-backpressure reference cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/streaming.hpp"

namespace {

using namespace cbus;

constexpr std::uint32_t kRuns = 8;
constexpr std::uint32_t kCores = 9;

struct TopologyCase {
  const char* label;
  bus::TopologyKind kind;
  std::uint32_t segments;
  std::uint32_t rows;
  std::uint32_t cols;
};

constexpr TopologyCase kRing4{"ring:4", bus::TopologyKind::kRing, 4, 0, 0};
constexpr TopologyCase kMesh3x3{"mesh:3x3", bus::TopologyKind::kMesh,
                                9, 3, 3};

[[nodiscard]] platform::PlatformConfig make_config(const TopologyCase& topo,
                                                   std::uint32_t depth) {
  platform::PlatformConfig cfg =
      platform::PlatformConfig::paper(platform::BusSetup::kHcba);
  cfg.n_cores = kCores;
  // H-CBA resized for 9 cores, same shape as the config-file resolver:
  // the TuA holds a 1/2 bandwidth share, the contenders split the rest.
  std::vector<RationalRate> rates;
  rates.emplace_back(1, 2);
  for (std::uint32_t m = 1; m < kCores; ++m) {
    rates.emplace_back(1, 2 * (kCores - 1));
  }
  cfg.cba = core::CbaConfig::heterogeneous(cfg.timings.max_latency(), rates);
  cfg.topology.kind = topo.kind;
  cfg.topology.segments = topo.segments;
  cfg.topology.rows = topo.rows;
  cfg.topology.cols = topo.cols;
  cfg.topology.bridge_depth = depth;
  return cfg;
}

/// The congested co-run: canrdr TuA, every other core a saturating
/// streaming reader (8 MiB footprint, so each access is an L2 miss that
/// crosses the fabric).
[[nodiscard]] platform::CampaignSpec campaign_spec(const TopologyCase& topo,
                                                   std::uint32_t depth,
                                                   std::uint32_t runs) {
  platform::CampaignSpec spec;
  spec.protocol = platform::CampaignSpec::Protocol::kCorun;
  spec.config = make_config(topo, depth);
  spec.tua_factory = []() { return workloads::make_eembc("canrdr"); };
  for (std::uint32_t core = 1; core < kCores; ++core) {
    spec.corunner_factories.emplace_back(
        []() { return std::make_unique<workloads::StreamingStream>(2); });
  }
  spec.runs = runs;
  spec.base_seed = 0xC0FFEE;
  spec.batch = 8;
  return spec;
}

[[nodiscard]] double element_total(const metrics::Aggregator& agg,
                                   const std::string& key) {
  double sum = 0.0;
  for (std::size_t e = 0; e < agg.width(key); ++e) {
    sum += agg.element_sum(key, e);
  }
  return sum;
}

[[nodiscard]] double element_peak(const metrics::Aggregator& agg,
                                  const std::string& key) {
  double peak = 0.0;
  for (std::size_t e = 0; e < agg.width(key); ++e) {
    peak = std::max(peak, agg.element_stats(key, e).max());
  }
  return peak;
}

void print_backpressure_table() {
  bench::banner(
      "Graph-routed interconnect -- congested co-run across topologies "
      "(H-CBA)",
      "canrdr TuA plus eight saturating streaming contenders; a depth-1\n"
      "bridge bound converts queue growth into counted backpressure\n"
      "stalls, an unbounded fabric absorbs the same load silently.");

  const std::uint32_t runs = bench::campaign_runs(kRuns);
  bench::Table table({"topology", "depth", "TuA mean", "stalls/run",
                      "queue max", "remote frac"});
  for (const TopologyCase& topo : {kRing4, kMesh3x3}) {
    for (const std::uint32_t depth : {0u, 1u}) {
      const auto result =
          platform::run_campaign(campaign_spec(topo, depth, runs));
      const auto& agg = result.aggregate;
      table.add_row(
          {topo.label, depth == 0 ? "unbounded" : std::to_string(depth),
           bench::fmt(result.exec_time().mean(), 0),
           bench::fmt(element_total(agg, "seg.backpressure_stalls") / runs,
                      0),
           bench::fmt(element_peak(agg, "seg.queue_depth_max"), 0),
           bench::fmt(agg.element_stats("seg.remote_fraction").mean(), 3)});
    }
  }
  table.print();
  std::cout
      << "\nBounding the bridges does not change what arrives, only where\n"
         "it waits: the depth-1 rows trade unbounded queue growth for\n"
         "backpressure stalls upstream, and the high-water queue depth\n"
         "never exceeds the configured bound.\n";
}

void BM_RingCampaign(benchmark::State& state) {
  const platform::CampaignSpec spec = campaign_spec(kRing4, 1, kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kRuns);
}
BENCHMARK(BM_RingCampaign);

void BM_MeshCampaign(benchmark::State& state) {
  const platform::CampaignSpec spec = campaign_spec(kMesh3x3, 1, kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kRuns);
}
BENCHMARK(BM_MeshCampaign);

void BM_MeshUnboundedCampaign(benchmark::State& state) {
  const platform::CampaignSpec spec = campaign_spec(kMesh3x3, 0, kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kRuns);
}
BENCHMARK(BM_MeshUnboundedCampaign);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  print_backpressure_table();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
