#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "common/contracts.hpp"

namespace cbus::bench {

class SyntheticRig::ForcedHoldOnlySlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    CBUS_ASSERT(false);  // all rig requests carry forced holds
    return 1;
  }
};

SyntheticRig::~SyntheticRig() = default;

SyntheticRig::SyntheticRig(bus::ArbiterKind kind,
                           std::optional<core::CbaConfig> cba,
                           Cycle tdma_slot, std::uint64_t seed)
    : bank_(seed), slave_(std::make_unique<ForcedHoldOnlySlave>()) {
  arbiter_ = bus::make_arbiter(kind, 4, bank_, tdma_slot);
  bus_ = std::make_unique<bus::NonSplitBus>(bus::BusConfig{4, true},
                                            *arbiter_, *slave_);
  if (cba.has_value()) {
    filter_ = std::make_unique<core::CreditFilter>(*cba);
    bus_->set_filter(filter_.get());
  }
}

platform::SyntheticMaster& SyntheticRig::add_master(
    MasterId id, Cycle hold, std::uint64_t requests, std::uint32_t gap,
    std::uint32_t initial_delay, bool instant_rerequest) {
  CBUS_EXPECTS(!finalized_);
  platform::SyntheticMasterConfig cfg;
  cfg.id = id;
  cfg.hold = hold;
  cfg.requests = requests;
  cfg.gap = gap;
  cfg.initial_delay = initial_delay;
  cfg.instant_rerequest = instant_rerequest;
  masters_.push_back(
      std::make_unique<platform::SyntheticMaster>(cfg, *bus_));
  kernel_.add(*masters_.back());
  return *masters_.back();
}

void SyntheticRig::run(Cycle cycles) {
  if (!finalized_) {
    kernel_.add(*bus_);
    finalized_ = true;
  }
  kernel_.run(cycles);
}

Cycle SyntheticRig::run_until_first_done(Cycle max_cycles) {
  if (!finalized_) {
    kernel_.add(*bus_);
    finalized_ = true;
  }
  CBUS_EXPECTS(!masters_.empty());
  const bool done = kernel_.run_until(
      [this]() { return masters_.front()->done(); }, max_cycles);
  CBUS_ASSERT(done);
  return masters_.front()->finish_cycle();
}

std::uint32_t campaign_runs(std::uint32_t fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at bench startup,
  // before any worker thread exists.
  if (const char* env = std::getenv("CBUS_BENCH_RUNS"); env != nullptr) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::uint32_t>(parsed);
  }
  return fallback;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "| ";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << std::left << std::setw(static_cast<int>(width[c])) << cell
          << " | ";
    }
    out << '\n';
  };
  print_row(header_);
  out << "|";
  for (std::size_t c = 0; c < width.size(); ++c) {
    out << std::string(width[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int decimals) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(decimals) << value;
  return oss.str();
}

void banner(const std::string& title, const std::string& subtitle) {
  std::cout << "\n=== " << title << " ===\n";
  if (!subtitle.empty()) std::cout << subtitle << "\n";
  std::cout << '\n';
}

}  // namespace cbus::bench
