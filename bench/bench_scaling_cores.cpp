// E7 -- core-count scaling: the paper's closing claim.
//
//   "Our results show that the maximum slowdown roughly matches the core
//    count -- as one would expect -- when all tasks saturate the shared
//    resource, which compares to existing policies whose slowdown is
//    virtually unbounded."
//
// Two sweeps over N = 2..8 cores, always against greedy MaxL (56-cycle)
// contenders:
//
//  (a) the SII task shape -- short 5-cycle requests with compute gaps --
//      where request-fair waits scale with (N-1) x MaxL / period while
//      CBA's budget throttle keeps the slowdown near the N x share bound;
//  (b) equal saturating requests (everyone 56-cycle greedy), where both
//      policies land at ~N -- the paper's "roughly matches the core
//      count" reference point.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "bus/arbiter_factory.hpp"
#include "bus/bus.hpp"
#include "core/contention_bounds.hpp"
#include "core/credit_filter.hpp"
#include "platform/scenarios.hpp"
#include "platform/synthetic_master.hpp"
#include "sim/kernel.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;

class NoSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    CBUS_ASSERT(false);
    return 1;
  }
};

/// TuA finish time with `n_cores-1` greedy 56-cycle contenders.
double run_case(std::uint32_t n_cores, Cycle tua_hold, std::uint32_t tua_gap,
                std::uint32_t contenders, bool with_cba) {
  rng::RandBank bank(0xCA1E);
  NoSlave slave;
  const auto arbiter =
      bus::make_arbiter(bus::ArbiterKind::kRandomPermutation, n_cores, bank);
  bus::NonSplitBus b(bus::BusConfig{n_cores, true}, *arbiter, slave);
  std::unique_ptr<core::CreditFilter> filter;
  if (with_cba) {
    filter = std::make_unique<core::CreditFilter>(
        core::CbaConfig::homogeneous(n_cores, 56));
    b.set_filter(filter.get());
  }
  sim::Kernel kernel;
  platform::SyntheticMasterConfig tc;
  tc.id = 0;
  tc.hold = tua_hold;
  tc.requests = 500;
  tc.gap = tua_gap;
  platform::SyntheticMaster tua(tc, b);
  kernel.add(tua);
  std::vector<std::unique_ptr<platform::SyntheticMaster>> cs;
  for (MasterId m = 1; m <= contenders; ++m) {
    platform::SyntheticMasterConfig cc;
    cc.id = m;
    cc.hold = 56;
    cc.requests = 0;
    cc.gap = 0;
    cs.push_back(std::make_unique<platform::SyntheticMaster>(cc, b));
    kernel.add(*cs.back());
  }
  kernel.add(b);
  const bool done =
      kernel.run_until([&]() { return tua.done(); }, 10'000'000);
  CBUS_ASSERT(done);
  return static_cast<double>(tua.finish_cycle());
}

void print_scaling() {
  bench::banner(
      "E7 -- slowdown vs core count (greedy MaxL contenders)",
      "(a) SII-shaped TuA: 5-cycle requests, 4-cycle gaps;\n"
      "(b) equal saturation: TuA = contenders = greedy 56-cycle requests.\n"
      "Random-permutations inner policy; slowdown vs the TuA alone.");

  bench::Table table({"cores N", "(a) request-fair", "(a) CBA",
                      "(b) request-fair", "(b) CBA", "N (paper bound)"});
  for (const std::uint32_t n : {2u, 3u, 4u, 6u, 8u}) {
    const double short_iso = run_case(n, 5, 4, 0, false);
    const double short_rf = run_case(n, 5, 4, n - 1, false) / short_iso;
    const double short_cba = run_case(n, 5, 4, n - 1, true) / short_iso;
    const double sat_iso = run_case(n, 56, 0, 0, false);
    const double sat_rf = run_case(n, 56, 0, n - 1, false) / sat_iso;
    const double sat_cba = run_case(n, 56, 0, n - 1, true) / sat_iso;
    table.add_row({std::to_string(n), bench::fmt(short_rf) + "x",
                   bench::fmt(short_cba) + "x", bench::fmt(sat_rf) + "x",
                   bench::fmt(sat_cba) + "x", bench::fmt(double(n), 0) + "x"});
  }
  table.print();
  std::cout
      << "\n(a): the request-fair column grows with (N-1) x MaxL per\n"
         "request -- 5.6x steeper than the TuA's own requests -- while the\n"
         "CBA column grows with the budget share alone (roughly half the\n"
         "request-fair value at every N). (b): with equal saturating\n"
         "requests both policies sit at ~N, the paper's reference point;\n"
         "CBA adds no penalty there.\n";
}

void BM_ScalingRun(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_case(n, 5, 4, n - 1, true));
  }
}
BENCHMARK(BM_ScalingRun)->Arg(2)->Arg(4)->Arg(8);

// --- campaign throughput: lockstep batching vs one machine at a time ----
//
// The multi-seed campaign is THE hot loop of the paper's evaluation
// (1,000 runs per configuration); this measures what the batched
// sim::BatchKernel path buys over the serial replay, and what threading
// across batches adds on top. Args are {batch, threads}; {1, 1} is the
// serial reference point.

constexpr std::uint32_t kCampaignRuns = 24;

[[nodiscard]] platform::CampaignSpec campaign_spec(std::uint32_t batch,
                                                   std::uint32_t threads,
                                                   std::uint32_t cores = 0) {
  platform::CampaignSpec spec;
  spec.protocol = platform::CampaignSpec::Protocol::kMaxContention;
  spec.config = platform::PlatformConfig::paper_wcet(platform::BusSetup::kCba);
  if (cores != 0) {
    // E7's wider points: the TuA against cores-1 greedy MaxL contenders.
    spec.config.n_cores = cores;
    spec.config.cba = core::CbaConfig::homogeneous(
        cores, spec.config.timings.max_latency());
    spec.config.validate();
  }
  spec.tua_factory = []() { return workloads::make_eembc("canrdr"); };
  spec.runs = kCampaignRuns;
  spec.base_seed = 0xC0FFEE;
  spec.batch = batch;
  spec.threads = threads;
  return spec;
}

void BM_CampaignBatch(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  const platform::CampaignSpec spec = campaign_spec(batch, threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kCampaignRuns);
}
// UseRealTime: the campaign spawns its own workers, so wall clock is the
// honest throughput measure (thread-CPU time would only see the caller).
BENCHMARK(BM_CampaignBatch)
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({24, 1})
    ->Args({8, 4})
    ->Args({8, 8})
    ->UseRealTime();

// The same campaign at E7's widest point (8 cores: the TuA against 7
// greedy MaxL contenders). The per-cycle Table-I work grows with the
// master count while the TuA's own compute does not, so this is the
// credit-bound end of the campaign spectrum -- the case the vectorized
// engine targets. Args are {batch, threads}.
void BM_CampaignBatchWide(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  const auto threads = static_cast<std::uint32_t>(state.range(1));
  const platform::CampaignSpec spec = campaign_spec(batch, threads, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kCampaignRuns);
}
BENCHMARK(BM_CampaignBatchWide)
    ->Args({1, 1})
    ->Args({24, 1})
    ->Args({8, 4})
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  print_scaling();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
