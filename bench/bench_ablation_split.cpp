// A6 -- ablation: split-transaction bus vs the paper's non-split bus.
//
// Paper SIII-C: "despite buses with split transactions have more
// homogeneous request sizes, the worst-case situation, having very long
// and very short requests, is possible since atomic operations by
// definition cannot be split."
//
// Scenario: master 0 issues short requests; masters 1-3 alternate
// normal reads with atomics (the unsplittable long requests). We measure
// master 0's occupancy and worst-case wait on both bus protocols, with
// and without CBA -- showing (a) the split bus alone fixes the
// hit-vs-miss heterogeneity, (b) it does NOT fix atomic hogging, and
// (c) CBA caps the atomic masters on either protocol.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <optional>

#include "bench_common.hpp"
#include "bus/round_robin.hpp"
#include "bus/split_bus.hpp"
#include "core/credit_filter.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace cbus;

/// Split slave with the platform's latency classes.
class ClassSlave final : public bus::SplitSlave {
 public:
  bus::SplitResponse begin_split_transaction(const bus::BusRequest& request,
                                             Cycle) override {
    if (request.kind == MemOpKind::kAtomic) {
      return bus::SplitResponse{56, 0, true};
    }
    // Miss-like read: 23 cycles of service + 4 beats (28 total).
    return bus::SplitResponse{23, 4, false};
  }
};

/// Greedy requester that alternates reads and atomics.
class MixMaster final : public bus::BusMaster {
 public:
  MixMaster(MasterId id, bool use_atomics)
      : id_(id), use_atomics_(use_atomics) {}

  template <typename Bus>
  void drive(Bus& bus, Cycle now) {
    if (!bus.can_request(id_)) return;
    bus::BusRequest req;
    req.master = id_;
    req.addr = 0x1000u * id_;
    req.kind = (use_atomics_ && (++count_ % 2 == 0)) ? MemOpKind::kAtomic
                                                     : MemOpKind::kLoad;
    bus.request(req, now);
  }

  void on_grant(const bus::BusRequest&, Cycle, Cycle) override {}
  void on_complete(const bus::BusRequest&, Cycle) override {}

 private:
  MasterId id_;
  bool use_atomics_;
  std::uint64_t count_ = 0;
};

struct Measured {
  double occ_short = 0;
  double occ_atomic = 0;
  Cycle short_max_wait = 0;
};

template <typename BusT, typename SlaveT>
Measured run_protocol(bool with_cba, bool atomics) {
  SlaveT slave;
  bus::RoundRobinArbiter arbiter(4);
  BusT b(bus::BusConfig{4, true}, arbiter, slave);
  std::unique_ptr<core::CreditFilter> filter;
  if (with_cba) {
    filter = std::make_unique<core::CreditFilter>(
        core::CbaConfig::homogeneous(4, 56));
    b.set_filter(filter.get());
  }
  sim::Kernel kernel;
  kernel.add(b);

  MixMaster short_master(0, false);
  MixMaster m1(1, atomics), m2(2, atomics), m3(3, atomics);
  b.connect_master(0, short_master);
  b.connect_master(1, m1);
  b.connect_master(2, m2);
  b.connect_master(3, m3);

  // Master 0's "short" requests: plain reads too (homogeneous on the
  // split bus, 28-cycle on the non-split one).
  for (Cycle t = 0; t < 200'000; ++t) {
    short_master.drive(b, kernel.now());
    m1.drive(b, kernel.now());
    m2.drive(b, kernel.now());
    m3.drive(b, kernel.now());
    kernel.step();
  }
  Measured out;
  out.occ_short = b.statistics().occupancy_share(0);
  out.occ_atomic = b.statistics().occupancy_share(1);
  out.short_max_wait = b.statistics().master[0].max_wait;
  return out;
}

/// Adapter so the non-split bus sees the same latency classes.
class NonSplitClassSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest& request, Cycle) override {
    return request.kind == MemOpKind::kAtomic ? 56 : 28;
  }
};

void print_ablation() {
  bench::banner(
      "A6 -- split vs non-split bus, with and without atomics and CBA",
      "Master 0: plain reads. Masters 1-3: alternating reads/atomics\n"
      "(56-cycle unsplittable holds). All greedy; round-robin inner.");

  bench::Table table({"protocol", "contender atomics", "CBA",
                      "occ short-master", "occ atomic-master",
                      "short max wait"});
  const auto add = [&](const char* proto, bool atomics, bool cba,
                       const Measured& m) {
    table.add_row({proto, atomics ? "yes" : "no", cba ? "yes" : "no",
                   bench::fmt(m.occ_short), bench::fmt(m.occ_atomic),
                   std::to_string(m.short_max_wait)});
  };

  add("non-split", false, false,
      run_protocol<bus::NonSplitBus, NonSplitClassSlave>(false, false));
  add("split", false, false,
      run_protocol<bus::SplitBus, ClassSlave>(false, false));
  add("non-split", true, false,
      run_protocol<bus::NonSplitBus, NonSplitClassSlave>(false, true));
  add("split", true, false,
      run_protocol<bus::SplitBus, ClassSlave>(false, true));
  add("non-split", true, true,
      run_protocol<bus::NonSplitBus, NonSplitClassSlave>(true, true));
  add("split", true, true,
      run_protocol<bus::SplitBus, ClassSlave>(true, true));
  table.print();

  std::cout
      << "\nWith homogeneous reads the split bus equalizes occupancy by\n"
         "construction (every transaction occupies 1+4 cycles). Adding\n"
         "atomics re-creates the short-vs-long mix -- the atomic masters'\n"
         "56-cycle unsplittable holds dominate the split bus exactly as the\n"
         "paper argues -- and CBA restores the occupancy cap on either\n"
         "protocol. Credit-based throttling is not made redundant by split\n"
         "transactions.\n";
}

void BM_SplitBusStep(benchmark::State& state) {
  ClassSlave slave;
  bus::RoundRobinArbiter arbiter(4);
  bus::SplitBus b(bus::BusConfig{4, true}, arbiter, slave);
  sim::Kernel kernel;
  kernel.add(b);
  MixMaster masters[4] = {{0, false}, {1, true}, {2, true}, {3, true}};
  for (MasterId m = 0; m < 4; ++m) b.connect_master(m, masters[m]);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      for (MasterId m = 0; m < 4; ++m) masters[m].drive(b, kernel.now());
      kernel.step();
    }
    benchmark::DoNotOptimize(b.statistics().busy_cycles);
  }
}
BENCHMARK(BM_SplitBusStep);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
