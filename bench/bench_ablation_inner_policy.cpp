// A3 -- ablation: the inner arbitration policy under the CBA filter.
//
// Paper SIII-A: "CBA acts as a filter [...] Then, any arbitration policy
// can be applied." The paper integrates random permutations (MBPTA-
// compliant); here every inner policy runs the same adversarial traffic
// with and without the filter, showing (a) the cycle-fairness bound is
// the filter's doing, not the policy's, and (b) how much each policy's
// own bias survives inside the eligible set.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "stats/fairness.hpp"

namespace {

using namespace cbus;

void row_for(bench::Table& table, bus::ArbiterKind kind, bool with_cba) {
  bench::SyntheticRig rig(kind,
                          with_cba ? std::optional<core::CbaConfig>(
                                         core::CbaConfig::homogeneous(4, 56))
                                   : std::nullopt);
  rig.add_master(0, 5, 0, 0);
  rig.add_master(1, 9, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 56, 0, 0);
  rig.run(300'000);
  const auto& s = rig.stats();
  std::vector<double> occ;
  for (MasterId m = 0; m < 4; ++m) occ.push_back(s.occupancy_share(m));
  table.add_row({std::string(to_string(kind)) + (with_cba ? " + CBA" : ""),
                 bench::fmt(occ[0]), bench::fmt(occ[1]), bench::fmt(occ[2]),
                 bench::fmt(occ[3]),
                 bench::fmt(stats::jain_index(occ), 3),
                 bench::fmt(s.grant_share(3), 3)});
}

void print_ablation() {
  bench::banner(
      "A3 -- inner policy under the CBA filter",
      "Greedy masters with 5/9/28/56-cycle requests. Occupancy per master,\n"
      "Jain index over occupancy (1.0 = cycle-fair), and the 56-cycle\n"
      "master's grant share.");

  bench::Table table({"policy", "occ m0(5)", "occ m1(9)", "occ m2(28)",
                      "occ m3(56)", "Jain(occ)", "grants m3"});
  for (const auto kind :
       {bus::ArbiterKind::kRoundRobin, bus::ArbiterKind::kFifo,
        bus::ArbiterKind::kLottery, bus::ArbiterKind::kRandomPermutation,
        bus::ArbiterKind::kTdma}) {
    row_for(table, kind, /*with_cba=*/false);
  }
  table.add_row({"----", "", "", "", "", "", ""});
  for (const auto kind :
       {bus::ArbiterKind::kRoundRobin, bus::ArbiterKind::kFifo,
        bus::ArbiterKind::kLottery, bus::ArbiterKind::kRandomPermutation,
        bus::ArbiterKind::kTdma}) {
    row_for(table, kind, /*with_cba=*/true);
  }
  table.print();
  std::cout
      << "\nWithout the filter every request-fair policy hands the bus to "
         "the long\nrequests (m3 near 50%+, Jain well below 1). With the "
         "filter the 1/N\noccupancy cap holds under EVERY inner policy -- "
         "the paper's claim that CBA\ncomposes with any MBPTA-amenable "
         "arbiter. TDMA remains non-work-conserving\n(lower utilization), "
         "but its shares are equally capped.\n";
}

void BM_InnerPolicyStep(benchmark::State& state) {
  const auto kind = static_cast<bus::ArbiterKind>(state.range(0));
  bench::SyntheticRig rig(kind, core::CbaConfig::homogeneous(4, 56));
  rig.add_master(0, 5, 0, 0);
  rig.add_master(1, 9, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 56, 0, 0);
  rig.run(1);
  for (auto _ : state) {
    rig.run(1000);
    benchmark::DoNotOptimize(rig.stats().busy_cycles);
  }
}
BENCHMARK(BM_InnerPolicyStep)
    ->Arg(static_cast<int>(bus::ArbiterKind::kRoundRobin))
    ->Arg(static_cast<int>(bus::ArbiterKind::kLottery))
    ->Arg(static_cast<int>(bus::ArbiterKind::kRandomPermutation));

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
