// Segmented-interconnect study: the paper's short-vs-long unfairness
// question widened from one shared bus to a chain of bus segments joined
// by store-and-forward bridges (ROADMAP "multi-segment/NoC-style
// interconnects").
//
// The printed table reruns the ISO/CON protocol (H-CBA setup) on 1, 2
// and 4 segments and contrasts the random-permutations inner policy with
// the new deficit-age policy:
//  * the CON slowdown shows what per-segment credit filtering preserves
//    of the paper's bound when contention splits across segments;
//  * seg.remote_fraction shows how much traffic pays bridge hops;
//  * Jain-over-occupancy shows whether per-segment H-CBA still shapes
//    the TuA's 50% share.
//
// The registered benchmarks are the CI bench-gate entries
// (tools/bench_compare.py vs bench/baselines.json):
//   BM_SegmentedCampaign/{1,2,4} -- an 8-run CON campaign per topology;
//   BM_DeficitAgeCampaign       -- the same campaign under deficit-age.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;

constexpr std::uint32_t kRuns = 8;

[[nodiscard]] platform::PlatformConfig make_config(std::uint32_t segments,
                                                   bus::ArbiterKind arbiter,
                                                   bool wcet) {
  platform::PlatformConfig cfg =
      wcet ? platform::PlatformConfig::paper_wcet(platform::BusSetup::kHcba)
           : platform::PlatformConfig::paper(platform::BusSetup::kHcba);
  cfg.arbiter = arbiter;
  cfg.topology.segments = segments;
  return cfg;
}

[[nodiscard]] platform::CampaignSpec campaign_spec(std::uint32_t segments,
                                                   bus::ArbiterKind arbiter,
                                                   bool isolation,
                                                   std::uint32_t runs) {
  platform::CampaignSpec spec;
  spec.protocol = isolation
                      ? platform::CampaignSpec::Protocol::kIsolation
                      : platform::CampaignSpec::Protocol::kMaxContention;
  spec.config = make_config(segments, arbiter, /*wcet=*/!isolation);
  spec.tua_factory = []() { return workloads::make_eembc("canrdr"); };
  spec.runs = runs;
  spec.base_seed = 0xC0FFEE;
  spec.batch = 8;
  return spec;
}

void print_topology_table() {
  bench::banner(
      "Multi-segment interconnect -- ISO/CON across topologies (H-CBA)",
      "canrdr TuA on segment 0; Table-I contenders on the remaining\n"
      "cores' home segments; per-segment credit filtering; slowdown is\n"
      "CON mean / ISO mean per topology.");

  const std::uint32_t runs = bench::campaign_runs(kRuns);
  bench::Table table({"segments", "policy", "ISO mean", "CON mean",
                      "slowdown", "jain(occ)", "remote frac"});
  for (const std::uint32_t segments : {1u, 2u, 4u}) {
    for (const bus::ArbiterKind arbiter :
         {bus::ArbiterKind::kRandomPermutation,
          bus::ArbiterKind::kDeficitAge}) {
      const auto iso = platform::run_campaign(
          campaign_spec(segments, arbiter, /*isolation=*/true, runs));
      const auto con = platform::run_campaign(
          campaign_spec(segments, arbiter, /*isolation=*/false, runs));
      const double jain =
          con.aggregate.element_stats("fair.jain_occupancy").mean();
      const double remote =
          con.aggregate.has("seg.remote_fraction")
              ? con.aggregate.element_stats("seg.remote_fraction").mean()
              : 0.0;
      table.add_row({std::to_string(segments),
                     std::string(bus::to_string(arbiter)),
                     bench::fmt(iso.exec_time().mean(), 0),
                     bench::fmt(con.exec_time().mean(), 0),
                     bench::fmt(platform::slowdown(con, iso)) + "x",
                     bench::fmt(jain, 3), bench::fmt(remote, 3)});
    }
  }
  table.print();
  std::cout
      << "\nSplitting the bus localises contention: remote traffic pays\n"
         "bridge hops, but each segment's credit filter keeps the\n"
         "occupancy shares of its local masters bounded, so the CON\n"
         "slowdown stays in the same band across topologies instead of\n"
         "growing with the contention-point count.\n";
}

void BM_SegmentedCampaign(benchmark::State& state) {
  const auto segments = static_cast<std::uint32_t>(state.range(0));
  const platform::CampaignSpec spec = campaign_spec(
      segments, bus::ArbiterKind::kRandomPermutation, false, kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kRuns);
}
BENCHMARK(BM_SegmentedCampaign)->Arg(1)->Arg(2)->Arg(4);

void BM_DeficitAgeCampaign(benchmark::State& state) {
  const platform::CampaignSpec spec =
      campaign_spec(1, bus::ArbiterKind::kDeficitAge, false, kRuns);
  for (auto _ : state) {
    benchmark::DoNotOptimize(platform::run_campaign(spec));
  }
  state.SetItemsProcessed(state.iterations() * kRuns);
}
BENCHMARK(BM_DeficitAgeCampaign);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  print_topology_table();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
