// A4 -- ablation: the two heterogeneous-bandwidth mechanisms of SIII-A.
//
//   method 1: let one core's budget grow above MaxL (cap boost) -- enables
//             back-to-back grants, at the cost of "some temporal
//             starvation to the others";
//   method 2: heterogeneous recovery rates (the paper's evaluated H-CBA:
//             TuA 1/2, contenders 1/6).
//
// Part A sweeps the TuA share under method 2. Part B compares the two
// methods at a matched ~50% allocation, measuring achieved shares AND the
// victims' worst-case single-request wait (the temporal-starvation cost
// the paper predicts for method 1).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace cbus;

void print_method2_sweep() {
  bench::banner(
      "A4a -- H-CBA method 2 (recovery-rate) share sweep",
      "TuA (master 0) configured share w; contenders split 1-w equally.\n"
      "All masters greedy with 28-cycle requests; round-robin inner.");

  bench::Table table({"configured TuA share", "occ TuA", "occ contender",
                      "TuA max wait", "contender max wait"});
  for (const auto& [num, den] : std::vector<std::pair<unsigned, unsigned>>{
           {1, 4}, {1, 3}, {1, 2}, {5, 8}, {3, 4}}) {
    const RationalRate tua{num, den};
    const RationalRate rest{den - num, den * 3};
    const RationalRate rates[] = {tua, rest, rest, rest};
    bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin,
                            core::CbaConfig::heterogeneous(56, rates));
    rig.add_master(0, 28, 0, 0);
    rig.add_master(1, 28, 0, 0);
    rig.add_master(2, 28, 0, 0);
    rig.add_master(3, 28, 0, 0);
    rig.run(400'000);
    const auto& s = rig.stats();
    table.add_row({std::to_string(num) + "/" + std::to_string(den),
                   bench::fmt(s.occupancy_share(0)),
                   bench::fmt(s.occupancy_share(1)),
                   std::to_string(s.master[0].max_wait),
                   std::to_string(s.master[1].max_wait)});
  }
  table.print();
}

void print_method_comparison() {
  bench::banner(
      "A4b -- method 1 (cap boost) vs method 2 (recovery rates) at ~50%",
      "TuA greedy 28-cycle requests vs three greedy 28-cycle contenders.");

  bench::Table table({"mechanism", "occ TuA", "occ contender",
                      "contender max wait", "TuA back-to-back grants"});

  const auto measure = [&](const char* name, const core::CbaConfig& cfg) {
    bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin, cfg);
    rig.add_master(0, 28, 0, 0);
    rig.add_master(1, 28, 0, 0);
    rig.add_master(2, 28, 0, 0);
    rig.add_master(3, 28, 0, 0);
    rig.run(400'000);
    const auto& s = rig.stats();
    // Back-to-back ratio proxy: grants per hold-period the TuA achieved.
    const double b2b =
        s.master[0].wait_cycles == 0
            ? 1.0
            : static_cast<double>(s.master[0].grants * 28) /
                  static_cast<double>(s.master[0].hold_cycles +
                                      s.master[0].wait_cycles);
    table.add_row({name, bench::fmt(s.occupancy_share(0)),
                   bench::fmt(s.occupancy_share(1)),
                   std::to_string(s.master[1].max_wait), bench::fmt(b2b)});
  };

  // Method 1: homogeneous rates, TuA cap doubled (can pay two MaxL
  // transactions back to back).
  measure("method 1: cap 2x, rates 1/4 each",
          core::CbaConfig::with_cap_boost(core::CbaConfig::homogeneous(4, 56),
                                          0, 2));
  // Method 2: the paper's evaluated point.
  measure("method 2: rates {1/2, 1/6 x3}", core::CbaConfig::paper_hcba(56));

  table.print();
  std::cout
      << "\nThe two mechanisms are NOT equivalent. Method 1 keeps the "
         "long-run share at\n1/N (recovery rate unchanged) -- the boosted "
         "cap only lets the TuA bank\ncredit across idle periods and burst "
         "it back-to-back afterwards (see the\nA1 saturation ablation for "
         "that burst, the paper's 'temporal starvation').\nMethod 2 "
         "changes the long-run share itself: the TuA's occupancy rises "
         "and\nthe contenders' worst-case waits stretch accordingly.\n";
}

void BM_HcbaStep(benchmark::State& state) {
  bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin,
                          core::CbaConfig::paper_hcba(56));
  rig.add_master(0, 28, 0, 0);
  rig.add_master(1, 28, 0, 0);
  rig.add_master(2, 28, 0, 0);
  rig.add_master(3, 28, 0, 0);
  rig.run(1);
  for (auto _ : state) {
    rig.run(1000);
    benchmark::DoNotOptimize(rig.stats().busy_cycles);
  }
}
BENCHMARK(BM_HcbaStep);

}  // namespace

int main(int argc, char** argv) {
  print_method2_sweep();
  print_method_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
