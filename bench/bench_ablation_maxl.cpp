// A2 -- ablation: sensitivity to the MaxL estimate.
//
// CBA needs MaxL, "the maximum duration (or its upperbound)" of a bus
// transaction. What happens when the estimate is wrong?
//  * over-estimated MaxL (cap too high): eligibility takes longer to
//    reach after each grant, so short-request masters lose additional
//    bandwidth to eligibility latency;
//  * under-estimated MaxL (cap below the real worst case): budgets clamp
//    at zero mid-transaction (hardware saturating counters), silently
//    weakening the throttle -- the credit state counts these clamps.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace cbus;

void print_ablation() {
  bench::banner(
      "A2 -- MaxL sensitivity",
      "Platform worst-case transaction is 56 cycles. CBA configured with\n"
      "MaxL from 14 (4x under-estimate) to 224 (4x over-estimate);\n"
      "mixed traffic: master 0 short (5), master 1 medium (28), masters\n"
      "2-3 long (56-cycle) greedy requests, round-robin inner policy.");

  bench::Table table({"configured MaxL", "occ m0 (5cy)", "occ m1 (28cy)",
                      "occ m2 (56cy)", "bus util", "budget clamps"});
  for (const Cycle maxl : {14u, 28u, 56u, 112u, 224u}) {
    bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin,
                            core::CbaConfig::homogeneous(4, maxl));
    rig.add_master(0, 5, 0, 0);
    rig.add_master(1, 28, 0, 0);
    rig.add_master(2, 56, 0, 0);
    rig.add_master(3, 56, 0, 0);
    rig.run(300'000);
    const auto& s = rig.stats();
    table.add_row(
        {std::to_string(maxl) + (maxl == 56 ? " (correct)" : ""),
         bench::fmt(s.occupancy_share(0)), bench::fmt(s.occupancy_share(1)),
         bench::fmt(s.occupancy_share(2)),
         bench::fmt(static_cast<double>(s.busy_cycles) /
                    static_cast<double>(s.total_cycles)),
         std::to_string(rig.filter()->state().underflow_clamps())});
  }
  table.print();
  std::cout
      << "\nUnder-estimates (MaxL < 56) clamp budgets at zero during long\n"
         "transactions (non-zero clamp counts): the throttle weakens and "
         "long\nrequests regain occupancy. Over-estimates keep the 1/N "
         "upper bound but\nstretch every refill, growing idle time and "
         "starving the short-request\nmaster first. The correct MaxL = 56 "
         "maximizes both fairness and utilization.\n";
}

void BM_MaxlSweepStep(benchmark::State& state) {
  const auto maxl = static_cast<Cycle>(state.range(0));
  bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin,
                          core::CbaConfig::homogeneous(4, maxl));
  rig.add_master(0, 5, 0, 0);
  rig.add_master(1, 28, 0, 0);
  rig.add_master(2, 56, 0, 0);
  rig.add_master(3, 56, 0, 0);
  rig.run(1);
  for (auto _ : state) {
    rig.run(1000);
    benchmark::DoNotOptimize(rig.stats().busy_cycles);
  }
}
BENCHMARK(BM_MaxlSweepStep)->Arg(28)->Arg(56)->Arg(112);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
