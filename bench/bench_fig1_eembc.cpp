// E3 -- Figure 1 of the paper: per-benchmark slowdown (normalised average
// execution time) for the EEMBC Autobench-like kernels under six bus
// configurations: {RP, CBA, H-CBA} x {isolation, maximum contention}.
//
// Paper values (read off Figure 1):
//   * all slowdowns below 4x (EEMBC does not saturate the bus);
//   * worst RP-CON slowdown: matrix at 3.34x;
//   * worst CBA-CON slowdown: 2.34x;
//   * H-CBA-CON lowers the maximum further;
//   * CBA-ISO costs ~3% on average; H-CBA-ISO is negligible.
//
// The paper runs 1,000 randomized runs per cell on the FPGA; default here
// is 20 per cell (override with CBUS_BENCH_RUNS) since the shape is stable
// far earlier.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"

namespace {

using namespace cbus;
using platform::BusSetup;
using platform::CampaignSpec;
using platform::PlatformConfig;

struct Row {
  double rp_iso = 1.0;
  double cba_iso = 0;
  double hcba_iso = 0;
  double rp_con = 0;
  double cba_con = 0;
  double hcba_con = 0;
};

Row measure(std::string_view kernel, std::uint32_t runs) {
  auto tua = workloads::make_eembc(kernel);
  CampaignSpec spec;
  spec.tua = tua.get();
  spec.runs = runs;
  spec.base_seed = 0xF161;

  const auto mean = [&](CampaignSpec::Protocol protocol,
                        const PlatformConfig& config) {
    spec.protocol = protocol;
    spec.config = config;
    return platform::run_campaign(spec).exec_time().mean();
  };
  using Protocol = CampaignSpec::Protocol;

  const double base =
      mean(Protocol::kIsolation, PlatformConfig::paper(BusSetup::kRp));

  Row row;
  row.cba_iso =
      mean(Protocol::kIsolation, PlatformConfig::paper(BusSetup::kCba)) /
      base;
  row.hcba_iso =
      mean(Protocol::kIsolation, PlatformConfig::paper(BusSetup::kHcba)) /
      base;
  row.rp_con = mean(Protocol::kMaxContention,
                    PlatformConfig::paper_wcet(BusSetup::kRp)) /
               base;
  row.cba_con = mean(Protocol::kMaxContention,
                     PlatformConfig::paper_wcet(BusSetup::kCba)) /
                base;
  row.hcba_con = mean(Protocol::kMaxContention,
                      PlatformConfig::paper_wcet(BusSetup::kHcba)) /
                 base;
  return row;
}

void print_figure1() {
  const std::uint32_t runs = bench::campaign_runs(20);
  bench::banner(
      "Figure 1 -- EEMBC slowdowns on the 4-core LEON3-like platform",
      "Normalised average execution time over " + std::to_string(runs) +
          " randomized runs per cell (paper: 1,000 runs).\n"
          "ISO = task alone; CON = maximum contention (WCET-estimation "
          "protocol, Table I).");

  bench::Table table({"benchmark", "RP-ISO", "CBA-ISO", "H-CBA-ISO",
                      "RP-CON", "CBA-CON", "H-CBA-CON"});
  double max_rp_con = 0;
  double max_cba_con = 0;
  double sum_cba_iso = 0;
  double sum_hcba_iso = 0;
  int n = 0;
  for (const auto kernel : workloads::figure1_kernels()) {
    const Row row = measure(kernel, runs);
    table.add_row({std::string(kernel), bench::fmt(row.rp_iso),
                   bench::fmt(row.cba_iso), bench::fmt(row.hcba_iso),
                   bench::fmt(row.rp_con), bench::fmt(row.cba_con),
                   bench::fmt(row.hcba_con)});
    max_rp_con = std::max(max_rp_con, row.rp_con);
    max_cba_con = std::max(max_cba_con, row.cba_con);
    sum_cba_iso += row.cba_iso;
    sum_hcba_iso += row.hcba_iso;
    ++n;
  }
  table.print();
  std::cout << "\nmax RP-CON slowdown    : " << bench::fmt(max_rp_con)
            << "x   (paper: 3.34x, matrix)\n"
            << "max CBA-CON slowdown   : " << bench::fmt(max_cba_con)
            << "x   (paper: 2.34x)\n"
            << "avg CBA-ISO overhead   : "
            << bench::fmt(100.0 * (sum_cba_iso / n - 1.0), 1)
            << "%   (paper: ~3%)\n"
            << "avg H-CBA-ISO overhead : "
            << bench::fmt(100.0 * (sum_hcba_iso / n - 1.0), 1)
            << "%   (paper: negligible)\n";
}

/// google-benchmark timing of one full platform run per configuration.
void BM_PlatformRun(benchmark::State& state, BusSetup setup, bool contention,
                    const char* kernel) {
  auto tua = workloads::make_eembc(kernel);
  const PlatformConfig cfg = contention ? PlatformConfig::paper_wcet(setup)
                                        : PlatformConfig::paper(setup);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    tua->reset(seed);
    platform::Multicore machine(cfg, seed, *tua);
    const auto result = machine.run();
    benchmark::DoNotOptimize(result.tua_cycles);
    ++seed;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_PlatformRun, rp_iso_matrix, BusSetup::kRp, false,
                  "matrix");
BENCHMARK_CAPTURE(BM_PlatformRun, cba_con_matrix, BusSetup::kCba, true,
                  "matrix");
BENCHMARK_CAPTURE(BM_PlatformRun, hcba_con_tblook, BusSetup::kHcba, true,
                  "tblook");

int main(int argc, char** argv) {
  print_figure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
