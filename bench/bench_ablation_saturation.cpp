// A1 -- ablation: why the budget must saturate at MaxL.
//
// Paper SIII: "budget saturates at MaxL to prevent the case in which one
// core spends long time not using the bus and then it tries to hog the
// bus during a long period. Otherwise, the effective bandwidth enjoyed by
// one task would depend on the shared resource utilization performed by
// previously executed tasks."
//
// We emulate the unbounded-budget variant with ever-larger saturation
// caps (cap = k x threshold, the banking knob of H-CBA method 1) and an
// idle phase in which master 0 banks credit, then measure how long it can
// hog the bus afterwards and how much a victim's requests suffer during
// the burst.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace cbus;

struct BurstResult {
  double burst_occupancy = 0;  ///< hog's share in the post-idle window
  Cycle victim_max_wait = 0;   ///< worst single-request wait of master 1
  Cycle monopoly = 0;          ///< longest stretch the hog held back-to-back
};

BurstResult measure_burst(std::uint32_t cap_multiplier, Cycle idle_phase) {
  const auto cfg = core::CbaConfig::with_cap_boost(
      core::CbaConfig::homogeneous(4, 56), 0, cap_multiplier);
  bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin, cfg);
  // Master 0 idles for `idle_phase` cycles -- with cap = k x threshold it
  // banks up to k transactions' worth of credit -- then turns greedy with
  // 56-cycle requests. Masters 1..3 issue steady 5-cycle requests
  // throughout.
  rig.add_master(0, 56, 0, 0, static_cast<std::uint32_t>(idle_phase));
  rig.add_master(1, 5, 0, 20);
  rig.add_master(2, 5, 0, 20);
  rig.add_master(3, 5, 0, 20);

  rig.run(idle_phase);
  const auto before = rig.stats();
  const Cycle window = 4'000;
  rig.run(window);
  const auto after = rig.stats();

  BurstResult result;
  const auto hold_delta =
      after.master[0].hold_cycles - before.master[0].hold_cycles;
  result.burst_occupancy =
      static_cast<double>(hold_delta) / static_cast<double>(window);
  result.victim_max_wait = after.master[1].max_wait;
  // Back-to-back monopoly estimate: grants funded purely by banked credit
  // (each 56-cycle grant costs 168 net units; the bank holds
  // (k-1) x 224 above the threshold).
  result.monopoly = hold_delta;
  return result;
}

void print_ablation() {
  bench::banner(
      "A1 -- budget saturation vs banking (cap = k x threshold)",
      "Master 0 idles for 50,000 cycles (banking credit up to its cap),\n"
      "then turns into a greedy MaxL (56-cycle) requester against three\n"
      "steady short-request victims. k = 1 is the paper's saturating\n"
      "design; large k emulates the unbounded budget it warns against.");

  bench::Table table({"cap multiplier k", "hog occupancy (4k window)",
                      "hog hold cycles in window",
                      "victim max wait (cycles)"});
  for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
    const BurstResult r = measure_burst(k, 50'000);
    table.add_row({std::to_string(k), bench::fmt(r.burst_occupancy),
                   std::to_string(r.monopoly),
                   std::to_string(r.victim_max_wait)});
  }
  table.print();
  std::cout
      << "\nWith the paper's saturating cap (k=1) prior idleness buys "
         "nothing: the hog\nis pinned at ~25% occupancy from its first "
         "request. Raising the cap lets\nbanked credit fund back-to-back "
         "MaxL transactions: the hog's post-idle burst\nand the victims' "
         "worst-case waits grow with k -- exactly the history\n"
         "dependence the paper's saturation rule exists to prevent (and, "
         "in\ncontrolled doses, what H-CBA method 1 exploits).\n";
}

void BM_SaturatingCbaStep(benchmark::State& state) {
  bench::SyntheticRig rig(bus::ArbiterKind::kRoundRobin,
                          core::CbaConfig::homogeneous(4, 56));
  rig.add_master(0, 56, 0, 0);
  rig.add_master(1, 5, 0, 20);
  rig.add_master(2, 5, 0, 20);
  rig.add_master(3, 5, 0, 20);
  rig.run(1);
  for (auto _ : state) {
    rig.run(1000);
    benchmark::DoNotOptimize(rig.stats().busy_cycles);
  }
}
BENCHMARK(BM_SaturatingCbaStep);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
