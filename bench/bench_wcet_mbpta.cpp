// E6 -- SIII-B WCET estimation: CBA's compatibility with MBPTA.
//
// Protocol (paper SIII-B + Table I): collect execution times of the task
// under analysis in WCET-estimation mode -- TuA budget zeroed, contender
// REQ forced, COMP latch, MaxL holds -- over many randomized runs; fit a
// Gumbel tail to block maxima; read pWCET values. Validation: everything
// observed in operation mode (real streaming co-runners) must fall below
// the pWCET curve.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mbpta/pwcet.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/streaming.hpp"

namespace {

using namespace cbus;
using platform::BusSetup;
using platform::CampaignSpec;
using platform::PlatformConfig;

void print_mbpta() {
  const std::uint32_t runs = bench::campaign_runs(150);
  bench::banner(
      "SIII-B -- MBPTA pWCET estimation on the CBA bus",
      "Analysis: " + std::to_string(runs) +
          " WCET-mode runs per kernel (paper: 1,000); PWM Gumbel fit on "
          "block maxima\n(block 10). Validation: max over operation-mode "
          "runs against 3 streaming co-runners.");

  bench::Table table({"kernel", "analysis mean", "analysis max",
                      "pWCET@1e-9", "pWCET@1e-12", "op-mode max", "bound",
                      "CV ok", "indep ok"});
  for (const auto kernel : workloads::figure1_kernels()) {
    auto tua = workloads::make_eembc(kernel);
    CampaignSpec analysis_spec;
    analysis_spec.protocol = CampaignSpec::Protocol::kMaxContention;
    analysis_spec.config = PlatformConfig::paper_wcet(BusSetup::kCba);
    analysis_spec.tua = tua.get();
    analysis_spec.runs = runs;
    analysis_spec.base_seed = 0xE57;
    analysis_spec.retain_raw = true;  // mbpta::analyze wants the series

    const auto analysis_runs = platform::run_campaign(analysis_spec);

    mbpta::MbptaConfig mcfg;
    mcfg.block_size = 10;
    const auto result = mbpta::analyze(analysis_runs.samples(), mcfg);

    workloads::StreamingStream s1(0), s2(0), s3(0);
    CampaignSpec op_spec;
    op_spec.protocol = CampaignSpec::Protocol::kCorun;
    op_spec.config = PlatformConfig::paper(BusSetup::kCba);
    op_spec.tua = tua.get();
    op_spec.corunners = {&s1, &s2, &s3};
    op_spec.runs = std::max(10u, runs / 5);
    op_spec.base_seed = 0x0b5;
    const auto op = platform::run_campaign(op_spec);

    const double p9 = result.fit.quantile_exceedance(1e-9);
    const double p12 = result.fit.quantile_exceedance(1e-12);
    table.add_row(
        {std::string(kernel),
         bench::fmt(analysis_runs.exec_time().mean(), 0),
         bench::fmt(analysis_runs.exec_time().max(), 0), bench::fmt(p9, 0),
         bench::fmt(p12, 0), bench::fmt(op.exec_time().max(), 0),
         op.exec_time().max() <= p12 ? "holds" : "VIOLATED",
         result.diagnostics.cv.accepted ? "yes" : "no",
         result.diagnostics.runs.accepted ? "yes" : "no"});
  }
  table.print();
  std::cout
      << "\nThe WCET-estimation protocol (contenders gated by the Table-I "
         "COMP latch,\nTuA starting with zero budget) produces analysis "
         "measurements whose Gumbel\ntail upper-bounds operation-mode "
         "behaviour -- the paper's MBPTA claim.\n";
}

void BM_WcetModeRun(benchmark::State& state) {
  auto tua = workloads::make_eembc("canrdr");
  const PlatformConfig cfg = PlatformConfig::paper_wcet(BusSetup::kCba);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    tua->reset(seed);
    platform::Multicore machine(cfg, seed, *tua);
    benchmark::DoNotOptimize(machine.run().tua_cycles);
    ++seed;
  }
}
BENCHMARK(BM_WcetModeRun);

void BM_GumbelFitPwm(benchmark::State& state) {
  std::vector<double> sample;
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    sample.push_back(1e6 + static_cast<double>(x % 100'000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mbpta::fit_pwm(sample));
  }
}
BENCHMARK(BM_GumbelFitPwm);

}  // namespace

int main(int argc, char** argv) {
  print_mbpta();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
