// Unit tests for the cycle-driven kernel: tick ordering, run_until
// semantics, clock progression.
#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "sim/component.hpp"
#include "sim/kernel.hpp"

namespace cbus::sim {
namespace {

class Probe final : public Component {
 public:
  Probe(std::string name, std::vector<std::string>* log)
      : Component(std::move(name)), log_(log) {}

  void tick(Cycle now) override {
    ++ticks_;
    last_now_ = now;
    if (log_ != nullptr) log_->push_back(std::string(name()));
  }

  std::uint64_t ticks_ = 0;
  Cycle last_now_ = 0;

 private:
  std::vector<std::string>* log_;
};

TEST(Clock, StartsAtZeroAndAdvances) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance();
  clock.advance();
  EXPECT_EQ(clock.now(), 2u);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(Kernel, RunTicksEveryComponentOncePerCycle) {
  Kernel kernel;
  Probe a("a", nullptr);
  Probe b("b", nullptr);
  kernel.add(a);
  kernel.add(b);
  kernel.run(10);
  EXPECT_EQ(a.ticks_, 10u);
  EXPECT_EQ(b.ticks_, 10u);
  EXPECT_EQ(kernel.now(), 10u);
}

TEST(Kernel, TickOrderIsRegistrationOrder) {
  Kernel kernel;
  std::vector<std::string> log;
  Probe a("core", &log);
  Probe b("bus", &log);
  kernel.add(a);
  kernel.add(b);
  kernel.run(2);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "core");
  EXPECT_EQ(log[1], "bus");
  EXPECT_EQ(log[2], "core");
  EXPECT_EQ(log[3], "bus");
}

TEST(Kernel, ComponentsSeeCurrentCycle) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  kernel.run(5);
  EXPECT_EQ(a.last_now_, 4u);  // cycles 0..4 executed
}

TEST(Kernel, RunUntilStopsWhenPredicateFires) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  const bool fired =
      kernel.run_until([&]() { return a.ticks_ >= 7; }, 1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.ticks_, 7u);
}

TEST(Kernel, RunUntilHonoursBudget) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  const bool fired = kernel.run_until([]() { return false; }, 50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(kernel.now(), 50u);
}

TEST(Kernel, RunUntilImmediatelyTrueRunsNothing) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  const bool fired = kernel.run_until([]() { return true; }, 50);
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.ticks_, 0u);
}

TEST(Kernel, RunUntilRejectsNullPredicate) {
  Kernel kernel;
  EXPECT_THROW((void)kernel.run_until(nullptr, 10), std::invalid_argument);
}

TEST(Kernel, StepExecutesExactlyOneCycle) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  kernel.step();
  EXPECT_EQ(a.ticks_, 1u);
  EXPECT_EQ(kernel.now(), 1u);
}

TEST(Kernel, ComponentCount) {
  Kernel kernel;
  Probe a("a", nullptr);
  Probe b("b", nullptr);
  EXPECT_EQ(kernel.component_count(), 0u);
  kernel.add(a);
  kernel.add(b);
  EXPECT_EQ(kernel.component_count(), 2u);
}

}  // namespace
}  // namespace cbus::sim
