// Unit tests for the cycle-driven kernel: tick ordering, run_until
// semantics, clock progression, and the lockstep BatchKernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/batch_kernel.hpp"
#include "sim/clock.hpp"
#include "sim/component.hpp"
#include "sim/kernel.hpp"

namespace cbus::sim {
namespace {

class Probe final : public Component {
 public:
  Probe(std::string name, std::vector<std::string>* log)
      : Component(std::move(name)), log_(log) {}

  void tick(Cycle now) override {
    ++ticks_;
    last_now_ = now;
    if (log_ != nullptr) log_->push_back(std::string(name()));
  }

  std::uint64_t ticks_ = 0;
  Cycle last_now_ = 0;

 private:
  std::vector<std::string>* log_;
};

TEST(Clock, StartsAtZeroAndAdvances) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance();
  clock.advance();
  EXPECT_EQ(clock.now(), 2u);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(Kernel, RunTicksEveryComponentOncePerCycle) {
  Kernel kernel;
  Probe a("a", nullptr);
  Probe b("b", nullptr);
  kernel.add(a);
  kernel.add(b);
  kernel.run(10);
  EXPECT_EQ(a.ticks_, 10u);
  EXPECT_EQ(b.ticks_, 10u);
  EXPECT_EQ(kernel.now(), 10u);
}

TEST(Kernel, TickOrderIsRegistrationOrder) {
  Kernel kernel;
  std::vector<std::string> log;
  Probe a("core", &log);
  Probe b("bus", &log);
  kernel.add(a);
  kernel.add(b);
  kernel.run(2);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "core");
  EXPECT_EQ(log[1], "bus");
  EXPECT_EQ(log[2], "core");
  EXPECT_EQ(log[3], "bus");
}

TEST(Kernel, ComponentsSeeCurrentCycle) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  kernel.run(5);
  EXPECT_EQ(a.last_now_, 4u);  // cycles 0..4 executed
}

TEST(Kernel, RunUntilStopsWhenPredicateFires) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  const bool fired =
      kernel.run_until([&]() { return a.ticks_ >= 7; }, 1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.ticks_, 7u);
}

TEST(Kernel, RunUntilHonoursBudget) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  const bool fired = kernel.run_until([]() { return false; }, 50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(kernel.now(), 50u);
}

TEST(Kernel, RunUntilChecksOncePerExecutedCycle) {
  // The contract: `done` is evaluated exactly once after every executed
  // cycle -- never before the first, never twice for the same cycle -- so
  // a side-effecting predicate counts cycles. A pre-satisfied predicate
  // is therefore only seen after one cycle has run.
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  std::uint64_t calls = 0;
  const bool fired = kernel.run_until(
      [&]() {
        ++calls;
        return true;
      },
      50);
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.ticks_, 1u);
  EXPECT_EQ(calls, 1u);

  // Exhaustion: 50 cycles -> exactly 50 evaluations, not 51.
  Kernel k2;
  Probe b("b", nullptr);
  k2.add(b);
  calls = 0;
  const bool fired2 = k2.run_until(
      [&]() {
        ++calls;
        return false;
      },
      50);
  EXPECT_FALSE(fired2);
  EXPECT_EQ(calls, 50u);
  EXPECT_EQ(b.ticks_, 50u);
}

TEST(Kernel, RunUntilZeroBudgetNeverPollsThePredicate) {
  Kernel kernel;
  std::uint64_t calls = 0;
  const bool fired = kernel.run_until(
      [&]() {
        ++calls;
        return true;
      },
      0);
  EXPECT_FALSE(fired);
  EXPECT_EQ(calls, 0u);
}

TEST(Kernel, RunUntilRejectsNullPredicate) {
  Kernel kernel;
  EXPECT_THROW((void)kernel.run_until(nullptr, 10), std::invalid_argument);
}

TEST(Kernel, StepExecutesExactlyOneCycle) {
  Kernel kernel;
  Probe a("a", nullptr);
  kernel.add(a);
  kernel.step();
  EXPECT_EQ(a.ticks_, 1u);
  EXPECT_EQ(kernel.now(), 1u);
}

TEST(Kernel, ComponentCount) {
  Kernel kernel;
  Probe a("a", nullptr);
  Probe b("b", nullptr);
  EXPECT_EQ(kernel.component_count(), 0u);
  kernel.add(a);
  kernel.add(b);
  EXPECT_EQ(kernel.component_count(), 2u);
  EXPECT_EQ(kernel.components().size(), 2u);
  EXPECT_EQ(kernel.components()[0], &a);
  EXPECT_EQ(kernel.components()[1], &b);
}

// --- BatchKernel ------------------------------------------------------------

TEST(BatchKernel, LanesRetireIndependentlyAtTheirOwnCycle) {
  // Three lanes with stop cycles 3, 7 and 12: each lane's probe must tick
  // exactly until its own predicate fires, while the batch keeps running
  // for the slower lanes.
  BatchKernel batch(3);
  Probe a("a", nullptr), b("b", nullptr), c("c", nullptr);
  batch.add(0, a);
  batch.add(1, b);
  batch.add(2, c);
  const std::vector<std::uint64_t> stop{3, 7, 12};
  const Probe* probes[] = {&a, &b, &c};
  const auto fired = batch.run_until(
      [&](std::size_t lane) { return probes[lane]->ticks_ >= stop[lane]; },
      100);
  EXPECT_EQ(fired, (std::vector<bool>{true, true, true}));
  EXPECT_EQ(a.ticks_, 3u);
  EXPECT_EQ(b.ticks_, 7u);
  EXPECT_EQ(c.ticks_, 12u);
  // The clock tracks still-live lanes and freezes at the final window's
  // base once the last lane (12 executed cycles at stripe 1) fires.
  EXPECT_EQ(batch.now(), 11u);
}

TEST(BatchKernel, MatchesSerialKernelPerLane) {
  // A lane's components must observe exactly the tick sequence a serial
  // Kernel delivers: same `now` values, same count, same order.
  std::vector<std::string> serial_log;
  Kernel serial;
  Probe sa("core", &serial_log), sb("bus", &serial_log);
  serial.add(sa);
  serial.add(sb);
  const bool serial_fired =
      serial.run_until([&]() { return sa.ticks_ >= 5; }, 100);

  std::vector<std::string> lane_log;
  BatchKernel batch(2);
  Probe la("core", &lane_log), lb("bus", &lane_log);
  Probe other("other", nullptr);
  Probe other_bus("other_bus", nullptr);
  batch.add(0, la);
  batch.add(0, lb);
  batch.add(1, other);
  batch.add(1, other_bus);
  const auto fired = batch.run_until(
      [&](std::size_t lane) {
        return lane == 0 ? la.ticks_ >= 5 : other.ticks_ >= 9;
      },
      100);
  EXPECT_TRUE(serial_fired);
  EXPECT_EQ(fired, (std::vector<bool>{true, true}));
  EXPECT_EQ(lane_log, serial_log);
  EXPECT_EQ(la.last_now_, sa.last_now_);
  EXPECT_EQ(lb.ticks_, sb.ticks_);
}

TEST(BatchKernel, HonoursBudgetPerLane) {
  BatchKernel batch(2);
  Probe a("a", nullptr), b("b", nullptr);
  batch.add(0, a);
  batch.add(1, b);
  const auto fired = batch.run_until(
      [&](std::size_t lane) { return lane == 0 && a.ticks_ >= 2; }, 10);
  EXPECT_EQ(fired, (std::vector<bool>{true, false}));
  EXPECT_EQ(a.ticks_, 2u);
  EXPECT_EQ(b.ticks_, 10u);  // ran to the budget, never fired
  EXPECT_EQ(batch.now(), 10u);
}

TEST(BatchKernel, StripesPreservePerLaneBehaviour) {
  // The stripe is a locality knob only: per-lane tick counts, retirement
  // cycles and budget handling must be identical at any stripe length,
  // including stripes that do not divide max_cycles.
  for (const Cycle stripe : {Cycle{1}, Cycle{4}, Cycle{7}, Cycle{512}}) {
    BatchKernel batch(3, stripe);
    Probe a("a", nullptr), b("b", nullptr), c("c", nullptr);
    batch.add(0, a);
    batch.add(1, b);
    batch.add(2, c);
    const Probe* probes[] = {&a, &b, &c};
    const std::vector<std::uint64_t> stop{3, 9, 100};  // lane 2 never fires
    const auto fired = batch.run_until(
        [&](std::size_t lane) { return probes[lane]->ticks_ >= stop[lane]; },
        10);
    EXPECT_EQ(fired, (std::vector<bool>{true, true, false})) << stripe;
    EXPECT_EQ(a.ticks_, 3u) << stripe;
    EXPECT_EQ(b.ticks_, 9u) << stripe;
    EXPECT_EQ(c.ticks_, 10u) << stripe;  // ran to the budget
    EXPECT_EQ(batch.now(), 10u) << stripe;
    EXPECT_EQ(a.last_now_, 2u) << stripe;
    EXPECT_EQ(c.last_now_, 9u) << stripe;
  }
}

TEST(BatchKernel, ClockStopsWhenEveryLaneHasFired) {
  // With a coarse stripe the batch must not keep advancing its clock
  // past the window in which the last lane retired.
  BatchKernel batch(2, /*stripe=*/512);
  Probe a("a", nullptr), b("b", nullptr);
  batch.add(0, a);
  batch.add(1, b);
  const Probe* probes[] = {&a, &b};
  const auto fired = batch.run_until(
      [&](std::size_t lane) { return probes[lane]->ticks_ >= 5 + lane; },
      1'000'000);
  EXPECT_EQ(fired, (std::vector<bool>{true, true}));
  EXPECT_EQ(a.ticks_, 5u);
  EXPECT_EQ(b.ticks_, 6u);
  EXPECT_EQ(batch.now(), 0u);  // all lanes fired inside the first stripe
}

TEST(BatchKernel, RejectsBadShapes) {
  EXPECT_THROW(BatchKernel(0), std::invalid_argument);
  EXPECT_THROW(BatchKernel(1, /*stripe=*/0), std::invalid_argument);
  BatchKernel batch(2);
  Probe a("a", nullptr), b("b", nullptr), extra("x", nullptr);
  batch.add(0, a);
  batch.add(1, b);
  batch.add(1, extra);  // lanes are no longer replicas of one shape
  EXPECT_THROW(
      (void)batch.run_until([](std::size_t) { return true; }, 1),
      std::invalid_argument);
  EXPECT_THROW((void)batch.run_until(nullptr, 1), std::invalid_argument);
}

}  // namespace
}  // namespace cbus::sim
