// Tests for the paper's contribution: CBA configuration factories, budget
// counter dynamics (Table I), the eligibility filter, H-CBA methods 1 & 2,
// and the WCET-estimation-mode COMP latch.
#include <gtest/gtest.h>

#include <array>

#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "core/cba_config.hpp"
#include "core/contention_bounds.hpp"
#include "core/credit_filter.hpp"
#include "core/credit_state.hpp"
#include "core/virtual_contender.hpp"
#include "sim/kernel.hpp"

namespace cbus::core {
namespace {

// --- CbaConfig ------------------------------------------------------------------

TEST(CbaConfig, HomogeneousFourCores) {
  const CbaConfig cfg = CbaConfig::homogeneous(4, 56);
  EXPECT_EQ(cfg.scale, 4u);
  EXPECT_EQ(cfg.increment, std::vector<std::uint64_t>(4, 1));
  EXPECT_EQ(cfg.saturation, std::vector<std::uint64_t>(4, 224));
  EXPECT_EQ(cfg.threshold, std::vector<std::uint64_t>(4, 224));
  EXPECT_DOUBLE_EQ(cfg.total_recovery_rate(), 1.0);
  EXPECT_DOUBLE_EQ(cfg.bandwidth_share(0), 0.25);
}

TEST(CbaConfig, PaperTable1Values) {
  const CbaConfig cfg = CbaConfig::paper_table1();
  EXPECT_EQ(cfg.n_masters, 4u);
  EXPECT_EQ(cfg.max_latency, 56u);
  EXPECT_EQ(cfg.saturation[0], 228u);  // the published register value
  EXPECT_EQ(cfg.scale, 4u);            // "-4 when using the bus"
  EXPECT_EQ(cfg.increment[0], 1u);     // "+1 every cycle"
}

TEST(CbaConfig, PaperHcbaRates) {
  // TuA 1/2, contenders 1/6 each: scale 6, increments {3,1,1,1}.
  const CbaConfig cfg = CbaConfig::paper_hcba(56);
  EXPECT_EQ(cfg.scale, 6u);
  EXPECT_EQ(cfg.increment[0], 3u);
  EXPECT_EQ(cfg.increment[1], 1u);
  EXPECT_DOUBLE_EQ(cfg.bandwidth_share(0), 0.5);
  EXPECT_NEAR(cfg.bandwidth_share(1), 1.0 / 6.0, 1e-12);
  EXPECT_EQ(cfg.saturation[0], 6u * 56u);
}

TEST(CbaConfig, CapBoostMethodOne) {
  const CbaConfig cfg =
      CbaConfig::with_cap_boost(CbaConfig::homogeneous(4, 56), 1, 2);
  EXPECT_EQ(cfg.saturation[1], 448u);
  EXPECT_EQ(cfg.threshold[1], 224u);  // threshold unchanged
  EXPECT_EQ(cfg.saturation[0], 224u);
}

TEST(CbaConfig, ValidationCatchesInconsistency) {
  CbaConfig cfg = CbaConfig::homogeneous(4, 56);
  cfg.threshold[2] = 300;  // above cap
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = CbaConfig::homogeneous(4, 56);
  cfg.increment[0] = 5;  // recovers faster than the bus serves
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = CbaConfig::homogeneous(4, 56);
  cfg.initial[3] = 1000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(CbaConfig, HeterogeneousRejectsEmpty) {
  EXPECT_THROW(CbaConfig::heterogeneous(56, {}), std::invalid_argument);
}

// --- CreditState -------------------------------------------------------------------

TEST(CreditState, Table1UpdateRules) {
  // Table I: every cycle min(BUDGi+1, 228); when using the bus, -4.
  CreditState credits(CbaConfig::paper_table1());
  EXPECT_EQ(credits.budget(0), 228u);

  credits.tick(0);  // core 0 holds the bus: 228 + 1 - 4 = 225
  EXPECT_EQ(credits.budget(0), 225u);
  EXPECT_EQ(credits.budget(1), 228u);  // others stay saturated

  credits.tick(kNoMaster);  // idle: +1 saturating
  EXPECT_EQ(credits.budget(0), 226u);
}

TEST(CreditState, FiftySixCycleHoldCosts168) {
  CreditState credits(CbaConfig::paper_table1());
  for (int i = 0; i < 56; ++i) credits.tick(3);
  EXPECT_EQ(credits.budget(3), 228u - 3u * 56u);  // 60
  // Recovery to saturation takes exactly 168 idle cycles.
  int idle = 0;
  while (!credits.saturated(3)) {
    credits.tick(kNoMaster);
    ++idle;
  }
  EXPECT_EQ(idle, 168);
}

TEST(CreditState, EligibilityRequiresThreshold) {
  CreditState credits(CbaConfig::homogeneous(4, 56));
  EXPECT_TRUE(credits.eligible(0));
  credits.tick(0);  // spend a little
  EXPECT_FALSE(credits.eligible(0));
  EXPECT_EQ(credits.eligible_mask(0b1111), 0b1110u);
}

TEST(CreditState, SetBudgetForWcetMode) {
  CreditState credits(CbaConfig::paper_table1());
  credits.set_budget(0, 0);  // TuA starts from zero (paper §III-B)
  EXPECT_EQ(credits.budget(0), 0u);
  EXPECT_FALSE(credits.eligible(0));
  // It takes 228 cycles to become eligible for the first request.
  for (int i = 0; i < 228; ++i) credits.tick(kNoMaster);
  EXPECT_TRUE(credits.eligible(0));
}

TEST(CreditState, CapBoostAllowsBackToBack) {
  // H-CBA method 1: cap 2x threshold lets a master pay for a full MaxL
  // transaction and STILL be eligible immediately after.
  const CbaConfig cfg =
      CbaConfig::with_cap_boost(CbaConfig::homogeneous(4, 56), 0, 2);
  CreditState credits(cfg);
  for (int i = 0; i < 56; ++i) credits.tick(0);
  EXPECT_EQ(credits.budget(0), 448u - 168u);
  EXPECT_TRUE(credits.eligible(0)) << "boosted master eligible back-to-back";
  // A plain master spending the same is NOT eligible.
  CreditState plain(CbaConfig::homogeneous(4, 56));
  for (int i = 0; i < 56; ++i) plain.tick(0);
  EXPECT_FALSE(plain.eligible(0));
}

TEST(CreditState, UnderflowClampsWhenMaxLUnderestimated) {
  // MaxL configured as 8 but a 56-cycle transaction occurs: the counter
  // clamps at zero instead of underflowing, and the event is counted.
  CreditState credits(CbaConfig::homogeneous(4, 8));
  for (int i = 0; i < 56; ++i) credits.tick(2);
  EXPECT_GE(credits.budget(2), 0u);
  EXPECT_GT(credits.underflow_clamps(), 0u);
}

TEST(CreditState, ResetRestoresInitialBudgets) {
  CreditState credits(CbaConfig::paper_table1());
  for (int i = 0; i < 20; ++i) credits.tick(1);
  credits.reset();
  EXPECT_EQ(credits.budget(1), 228u);
  EXPECT_EQ(credits.underflow_clamps(), 0u);
}

TEST(CreditState, HcbaRecoveryRatesDiffer) {
  CreditState credits(CbaConfig::paper_hcba(56));
  credits.set_budget(0, 0);
  credits.set_budget(1, 0);
  for (int i = 0; i < 100; ++i) credits.tick(kNoMaster);
  EXPECT_EQ(credits.budget(0), 300u);  // 3/cycle
  EXPECT_EQ(credits.budget(1), 100u);  // 1/cycle
}

TEST(CreditState, BudgetCyclesConversion) {
  CreditState credits(CbaConfig::homogeneous(4, 56));
  EXPECT_DOUBLE_EQ(credits.budget_cycles(0), 56.0);
}

// --- CreditFilter on a live bus -------------------------------------------------------

class NullSlave final : public bus::BusSlave {
 public:
  Cycle begin_transaction(const bus::BusRequest&, Cycle) override {
    return 5;
  }
};

TEST(CreditFilter, ThrottlesShortRequestsToQuarterBandwidth) {
  // One master hammering 5-cycle requests through a CBA filter must end up
  // with at most ~25% occupancy (1/N with N=4) -- Eq. (1)'s guarantee.
  NullSlave slave;
  bus::RoundRobinArbiter arb(4);
  bus::NonSplitBus b(bus::BusConfig{4, true}, arb, slave);
  CreditFilter filter(CbaConfig::homogeneous(4, 56));
  b.set_filter(&filter);
  sim::Kernel kernel;
  kernel.add(b);

  // Re-raise a request whenever the previous completed.
  class Hammer final : public bus::BusMaster {
   public:
    explicit Hammer(bus::NonSplitBus& bus) : bus_(&bus) {}
    void on_grant(const bus::BusRequest&, Cycle, Cycle) override {}
    void on_complete(const bus::BusRequest&, Cycle) override { idle = true; }
    bool idle = true;
    bus::NonSplitBus* bus_;
  } hammer(b);
  b.connect_master(0, hammer);

  for (int cycle = 0; cycle < 20'000; ++cycle) {
    if (hammer.idle) {
      bus::BusRequest req;
      req.master = 0;
      b.request(req, kernel.now());
      hammer.idle = false;
    }
    kernel.step();
  }
  const double share = b.statistics().occupancy_share(0);
  EXPECT_LE(share, 0.26);
  EXPECT_GT(share, 0.20);  // and it does get its guaranteed quarter
}

TEST(CreditFilter, HwCostIsSmall) {
  const CreditFilter filter(CbaConfig::paper_table1());
  const bus::HwCost cost = filter.hw_cost();
  EXPECT_EQ(cost.state_bits, 4u * 8u);  // four 8-bit counters
  EXPECT_LT(cost.lut_equivalents, 100u);
}

// --- VirtualContender / COMP latch (Table I) ------------------------------------------

struct WcetHarness {
  WcetHarness(ContenderPolicy policy, bool with_credits) {
    if (with_credits) {
      filter = std::make_unique<CreditFilter>(CbaConfig::paper_table1());
      b.set_filter(filter.get());
    }
    for (MasterId m = 1; m < 4; ++m) {
      VirtualContenderConfig cfg;
      cfg.self = m;
      cfg.tua = 0;
      cfg.hold = 56;
      cfg.policy = policy;
      contenders.push_back(std::make_unique<VirtualContender>(
          cfg, b, filter ? &filter->state() : nullptr));
    }
    for (auto& c : contenders) kernel.add(*c);
    kernel.add(b);
  }

  NullSlave slave;
  bus::RoundRobinArbiter arb{4};
  bus::NonSplitBus b{bus::BusConfig{4, true}, arb, slave};
  std::unique_ptr<CreditFilter> filter;
  std::vector<std::unique_ptr<VirtualContender>> contenders;
  sim::Kernel kernel;
};

TEST(VirtualContender, AlwaysCompeteSaturatesBus) {
  WcetHarness h(ContenderPolicy::kAlwaysCompete, /*with_credits=*/false);
  h.kernel.run(2000);
  const auto& s = h.b.statistics();
  // After the initial arbitration cycle the bus never idles.
  EXPECT_GE(static_cast<double>(s.busy_cycles) /
                static_cast<double>(s.total_cycles),
            0.99);
}

TEST(VirtualContender, CompLatchWaitsForTuaRequest) {
  WcetHarness h(ContenderPolicy::kCompLatch, /*with_credits=*/true);
  h.kernel.run(500);
  // The TuA never raised a request, so no contender may compete.
  EXPECT_EQ(h.b.statistics().busy_cycles, 0u);
  for (const auto& c : h.contenders) EXPECT_FALSE(c->comp());
}

TEST(VirtualContender, CompLatchFiresOnTuaRequest) {
  WcetHarness h(ContenderPolicy::kCompLatch, /*with_credits=*/true);
  // Raise a TuA request (master 0 has full budget initially here).
  bus::BusRequest req;
  req.master = 0;
  h.b.request(req, 0);
  h.kernel.run(3);
  // Contenders latched COMP and raised their 56-cycle requests.
  int competing = 0;
  for (MasterId m = 1; m < 4; ++m) {
    if (h.b.has_pending(m) || h.b.is_holding(m)) ++competing;
  }
  EXPECT_EQ(competing, 3);
}

TEST(VirtualContender, CompResetOnGrant) {
  WcetHarness h(ContenderPolicy::kCompLatch, /*with_credits=*/true);
  bus::BusRequest req;
  req.master = 0;
  h.b.request(req, 0);
  // Run long enough for at least one contender grant.
  h.kernel.run(80);
  int reset_count = 0;
  for (const auto& c : h.contenders) {
    if (c->grants() > 0 && !c->comp()) ++reset_count;
  }
  EXPECT_GT(reset_count, 0);
}

TEST(VirtualContender, BudgetGateDelaysRecompetition) {
  WcetHarness h(ContenderPolicy::kCompLatch, /*with_credits=*/true);
  // Keep the TuA "requesting" forever: raise a fresh request whenever free.
  std::uint64_t tua_completions = 0;
  class Counter final : public bus::BusMaster {
   public:
    explicit Counter(std::uint64_t& n) : n_(&n) {}
    void on_grant(const bus::BusRequest&, Cycle, Cycle) override {}
    void on_complete(const bus::BusRequest&, Cycle) override { ++*n_; }
    std::uint64_t* n_;
  } counter(tua_completions);
  h.b.connect_master(0, counter);

  for (int cycle = 0; cycle < 4000; ++cycle) {
    if (h.b.can_request(0)) {
      bus::BusRequest req;
      req.master = 0;
      h.b.request(req, h.kernel.now());
    }
    h.kernel.step();
  }
  // Each contender's 56-cycle grant costs 168 net budget (recovery 168
  // cycles), so per contender grants are bounded by ~ cycles / 224.
  for (const auto& c : h.contenders) {
    EXPECT_LE(c->grants(), 4000u / 224u + 2u);
  }
  // And the TuA is never starved out.
  EXPECT_GT(tua_completions, 0u);
}

TEST(VirtualContender, ConfigRejectsSelfEqualsTua) {
  NullSlave slave;
  bus::RoundRobinArbiter arb(4);
  bus::NonSplitBus b(bus::BusConfig{4, true}, arb, slave);
  VirtualContenderConfig cfg;
  cfg.self = 0;
  cfg.tua = 0;
  EXPECT_THROW(VirtualContender(cfg, b, nullptr), std::invalid_argument);
}

TEST(VirtualContender, CompLatchRequiresCredits) {
  NullSlave slave;
  bus::RoundRobinArbiter arb(4);
  bus::NonSplitBus b(bus::BusConfig{4, true}, arb, slave);
  VirtualContenderConfig cfg;
  cfg.self = 1;
  cfg.tua = 0;
  cfg.policy = ContenderPolicy::kCompLatch;
  EXPECT_THROW(VirtualContender(cfg, b, nullptr), std::invalid_argument);
}

// --- analytical contention bounds (SIII-B companions) --------------------------------

TEST(ContentionBounds, MaxRequestDelayFourCores) {
  // (MaxL-1) residual + 3 x MaxL grants + 1 arbitration = 55+168+1 = 224.
  const auto cfg = CbaConfig::homogeneous(4, 56);
  EXPECT_EQ(max_request_delay(cfg), 224u);
}

TEST(ContentionBounds, RefillDelayMatchesCounterDynamics) {
  const auto cfg = CbaConfig::homogeneous(4, 56);
  // A 56-cycle hold at net -3/cycle refills in 168 cycles.
  EXPECT_EQ(max_refill_delay(cfg, 0, 56), 168u);
  // A 5-cycle hold: 15 units at +1/cycle.
  EXPECT_EQ(max_refill_delay(cfg, 0, 5), 15u);
  // Simulated counterpart (must agree exactly):
  CreditState credits(cfg);
  for (int i = 0; i < 56; ++i) credits.tick(0);
  Cycle idle = 0;
  while (!credits.eligible(0)) {
    credits.tick(kNoMaster);
    ++idle;
  }
  EXPECT_EQ(idle, max_refill_delay(cfg, 0, 56));
}

TEST(ContentionBounds, HcbaRefillFasterForTua) {
  const auto cfg = CbaConfig::paper_hcba(56);
  // TuA: 56 x (6-3) = 168 units at +3/cycle = 56 cycles.
  EXPECT_EQ(max_refill_delay(cfg, 0, 56), 56u);
  // Contender: 56 x (6-1) = 280 units at +1/cycle.
  EXPECT_EQ(max_refill_delay(cfg, 1, 56), 280u);
}

TEST(ContentionBounds, OccupancyBoundMatchesConfig) {
  const auto cfg = CbaConfig::paper_hcba(56);
  EXPECT_DOUBLE_EQ(occupancy_bound(cfg, 0), 0.5);
  EXPECT_NEAR(occupancy_bound(cfg, 1), 1.0 / 6.0, 1e-12);
}

TEST(ContentionBounds, SlowdownBoundIsNForSaturatingTask) {
  const auto cfg = CbaConfig::homogeneous(4, 56);
  // Fully bus-bound task: the paper's "at most N times".
  EXPECT_DOUBLE_EQ(slowdown_bound(cfg, 0, 1.0), 4.0);
  // The paper's SII task (60% of isolated time on the bus):
  // 0.4 + 0.6 x 4 = 2.8 -- exactly the 28,000-cycle closed form.
  EXPECT_DOUBLE_EQ(slowdown_bound(cfg, 0, 0.6), 2.8);
  // No bus usage: no slowdown.
  EXPECT_DOUBLE_EQ(slowdown_bound(cfg, 0, 0.0), 1.0);
}

TEST(ContentionBounds, SimulatedWaitsRespectTheDelayBound) {
  // Adversarial rig: TuA against three COMP-latched MaxL contenders;
  // every granted TuA request's wait must stay within
  // max_request_delay + max_refill_delay (the refill part applies because
  // the TuA re-requests immediately).
  const auto cfg = CbaConfig::paper_table1();
  WcetHarness h(ContenderPolicy::kCompLatch, /*with_credits=*/true);
  for (int cycle = 0; cycle < 20'000; ++cycle) {
    if (h.b.can_request(0)) {
      bus::BusRequest req;
      req.master = 0;
      h.b.request(req, h.kernel.now());
    }
    h.kernel.step();
  }
  const Cycle bound = max_request_delay(cfg) +
                      max_refill_delay(cfg, 0, 5) + 1;
  EXPECT_LE(h.b.statistics().master[0].max_wait, bound);
}

}  // namespace
}  // namespace cbus::core
