// Platform assembly tests: configuration presets, Multicore wiring,
// SyntheticMaster timing, campaign determinism and the scenario runners.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "metrics/aggregator.hpp"
#include "metrics/record.hpp"
#include "platform/config_file.hpp"
#include "platform/multicore.hpp"
#include "platform/platform_config.hpp"
#include "platform/scenarios.hpp"
#include "platform/synthetic_master.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/fixed_stream.hpp"
#include "workloads/streaming.hpp"

namespace cbus::platform {
namespace {

// --- PlatformConfig presets ----------------------------------------------------

TEST(PlatformConfig, PaperRpHasNoCba) {
  const PlatformConfig cfg = PlatformConfig::paper(BusSetup::kRp);
  EXPECT_FALSE(cfg.cba.has_value());
  EXPECT_EQ(cfg.arbiter, bus::ArbiterKind::kRandomPermutation);
  EXPECT_EQ(cfg.n_cores, 4u);
}

TEST(PlatformConfig, PaperCbaIsHomogeneous) {
  const PlatformConfig cfg = PlatformConfig::paper(BusSetup::kCba);
  ASSERT_TRUE(cfg.cba.has_value());
  EXPECT_EQ(cfg.cba->scale, 4u);
  EXPECT_EQ(cfg.cba->max_latency, 56u);
  EXPECT_DOUBLE_EQ(cfg.cba->bandwidth_share(0), 0.25);
}

TEST(PlatformConfig, PaperHcbaGivesTuaHalf) {
  const PlatformConfig cfg = PlatformConfig::paper(BusSetup::kHcba);
  ASSERT_TRUE(cfg.cba.has_value());
  EXPECT_DOUBLE_EQ(cfg.cba->bandwidth_share(0), 0.5);
}

TEST(PlatformConfig, WcetPresetSelectsContenderPolicy) {
  const PlatformConfig rp = PlatformConfig::paper_wcet(BusSetup::kRp);
  EXPECT_EQ(rp.mode, PlatformMode::kWcetEstimation);
  EXPECT_EQ(rp.contender_policy, core::ContenderPolicy::kAlwaysCompete);
  const PlatformConfig cba = PlatformConfig::paper_wcet(BusSetup::kCba);
  EXPECT_EQ(cba.contender_policy, core::ContenderPolicy::kCompLatch);
  EXPECT_EQ(cba.contender_hold, 56u);
}

TEST(PlatformConfig, ValidateCatchesMismatchedCbaSize) {
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kCba);
  cfg.n_cores = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PlatformConfig, ValidateCatchesUnderestimatedMaxL) {
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kCba);
  cfg.cba = core::CbaConfig::homogeneous(4, 10);  // < 56
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.allow_maxl_underestimate = true;
  EXPECT_NO_THROW(cfg.validate());
}

// --- Multicore wiring -------------------------------------------------------------

TEST(Multicore, IsolationRunFinishes) {
  auto tua = workloads::make_eembc("canrdr");
  tua->reset(1);
  Multicore machine(PlatformConfig::paper(BusSetup::kRp), 1, *tua);
  const RunResult r = machine.run();
  EXPECT_TRUE(r.tua_finished);
  EXPECT_GT(r.tua_cycles, 0u);
  EXPECT_EQ(machine.real_cores(), 1u);
}

TEST(Multicore, SameSeedSameResult) {
  auto tua = workloads::make_eembc("tblook");
  for (int rep = 0; rep < 2; ++rep) {
    // fresh machine each time
  }
  tua->reset(7);
  Multicore a(PlatformConfig::paper(BusSetup::kRp), 99, *tua);
  const Cycle ta = a.run().tua_cycles;
  tua->reset(7);
  Multicore b(PlatformConfig::paper(BusSetup::kRp), 99, *tua);
  const Cycle tb = b.run().tua_cycles;
  EXPECT_EQ(ta, tb);
}

TEST(Multicore, DifferentSeedsUsuallyDiffer) {
  auto tua = workloads::make_eembc("tblook");
  tua->reset(7);
  Multicore a(PlatformConfig::paper(BusSetup::kRp), 1, *tua);
  const Cycle ta = a.run().tua_cycles;
  tua->reset(7);
  Multicore b(PlatformConfig::paper(BusSetup::kRp), 2, *tua);
  const Cycle tb = b.run().tua_cycles;
  EXPECT_NE(ta, tb);  // random placement/replacement differ
}

TEST(Multicore, WcetModeSpawnsVirtualContenders) {
  auto tua = workloads::make_eembc("canrdr");
  tua->reset(3);
  Multicore machine(PlatformConfig::paper_wcet(BusSetup::kCba), 3, *tua);
  // 1 TuA core + 3 contenders + bus = 5 components.
  EXPECT_EQ(machine.kernel().component_count(), 5u);
  ASSERT_NE(machine.credit_filter(), nullptr);
  // TuA budget zeroed per §III-B.
  EXPECT_EQ(machine.credit_filter()->state().budget(0), 0u);
}

TEST(Multicore, OperationModeHasNoContenders) {
  auto tua = workloads::make_eembc("canrdr");
  tua->reset(3);
  Multicore machine(PlatformConfig::paper(BusSetup::kCba), 3, *tua);
  EXPECT_EQ(machine.kernel().component_count(), 2u);  // core + bus
  // Operation mode keeps the TuA's budget full at start.
  EXPECT_EQ(machine.credit_filter()->state().budget(0), 224u);
}

TEST(Multicore, RealCorunnersRun) {
  auto tua = workloads::make_eembc("canrdr");
  workloads::StreamingStream s1(0);
  workloads::StreamingStream s2(0);
  tua->reset(5);
  s1.reset(5);
  s2.reset(5);
  Multicore machine(PlatformConfig::paper(BusSetup::kRp), 5, *tua,
                    {&s1, &s2});
  EXPECT_EQ(machine.real_cores(), 3u);
  const RunResult r = machine.run();
  EXPECT_TRUE(r.tua_finished);
  // Streaming corunners used the bus.
  EXPECT_GT(r.bus_stats.master[1].grants, 0u);
  EXPECT_GT(r.bus_stats.master[2].grants, 0u);
}

TEST(Multicore, TooManyWorkloadsRejected) {
  auto tua = workloads::make_eembc("canrdr");
  workloads::StreamingStream s1(0), s2(0), s3(0), s4(0);
  std::vector<cpu::OpStream*> too_many{&s1, &s2, &s3, &s4};
  EXPECT_THROW(
      Multicore(PlatformConfig::paper(BusSetup::kRp), 1, *tua, too_many),
      std::invalid_argument);
}

TEST(Multicore, RunHonoursCycleBudget) {
  auto tua = workloads::make_eembc("matrix");
  tua->reset(1);
  Multicore machine(PlatformConfig::paper(BusSetup::kRp), 1, *tua);
  const RunResult r = machine.run(/*max_cycles=*/100);
  EXPECT_FALSE(r.tua_finished);
  EXPECT_EQ(r.tua_cycles, 100u);
}

// --- SyntheticMaster ---------------------------------------------------------------

TEST(SyntheticMaster, IsolatedPeriodIsGapPlusArbPlusHold) {
  // gap 4, arbitration 1, hold 5 -> 10-cycle period (the paper's §II
  // isolated task: 1,000 requests -> 10,000 cycles).
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kRp);
  workloads::FixedOpsStream empty({});
  Multicore machine(cfg, 1, empty);  // platform for the bus; core idle

  SyntheticMasterConfig smc;
  smc.id = 1;  // use a free master slot... need a 4-master bus
  // Build directly on the machine's bus is awkward; use a dedicated rig
  // below instead. This test only checks config defaults.
  EXPECT_EQ(smc.hold, 5u);
  EXPECT_EQ(smc.gap, 4u);
}

/// A CampaignSpec over the given platform (helper for the tests below).
[[nodiscard]] CampaignSpec make_spec(CampaignSpec::Protocol protocol,
                                     PlatformConfig config,
                                     cpu::OpStream& tua, std::uint32_t runs,
                                     std::uint64_t seed) {
  CampaignSpec spec;
  spec.protocol = protocol;
  spec.config = std::move(config);
  spec.tua = &tua;
  spec.runs = runs;
  spec.base_seed = seed;
  spec.retain_raw = true;  // these tests read the per-run series
  return spec;
}

TEST(ScenarioRunners, IsolationCampaignAggregates) {
  auto tua = workloads::make_eembc("canrdr");
  const CampaignResult r = run_campaign(
      make_spec(CampaignSpec::Protocol::kIsolation,
                PlatformConfig::paper(BusSetup::kRp), *tua, 5, 11));
  EXPECT_EQ(r.exec_time().count(), 5u);
  EXPECT_EQ(r.samples().size(), 5u);
  EXPECT_EQ(r.unfinished_runs, 0u);
  EXPECT_GT(r.exec_time().mean(), 0.0);
  EXPECT_EQ(r.aggregate.runs(), 5u);
}

TEST(ScenarioRunners, CampaignFoldsRunRecords) {
  // Every standard probe key reaches the aggregate, per-master keys at
  // the platform width, and derived views agree with the records.
  auto tua = workloads::make_eembc("canrdr");
  const CampaignResult r = run_campaign(
      make_spec(CampaignSpec::Protocol::kMaxContention,
                PlatformConfig::paper_wcet(BusSetup::kCba), *tua, 3, 11));
  EXPECT_EQ(r.aggregate.width("bus.occupancy_share"), 4u);
  EXPECT_EQ(r.aggregate.width("bus.grant_share"), 4u);
  EXPECT_EQ(r.aggregate.width("credit.budget"), 4u);
  EXPECT_TRUE(r.aggregate.has("fair.jain_occupancy"));
  EXPECT_TRUE(r.aggregate.has("fair.maxmin_grants"));
  const auto& jain = r.aggregate.element_stats("fair.jain_occupancy");
  EXPECT_GT(jain.mean(), 0.0);
  EXPECT_LE(jain.max(), 1.0);
  // Occupancy shares sum below 1 (arbitration cycles are nobody's).
  double share_sum = 0.0;
  for (std::size_t m = 0; m < 4; ++m) {
    share_sum += r.aggregate.element_stats("bus.occupancy_share", m).mean();
  }
  EXPECT_GT(share_sum, 0.5);
  EXPECT_LE(share_sum, 1.0 + 1e-12);
}

TEST(ScenarioRunners, CampaignIsReproducible) {
  auto tua = workloads::make_eembc("tblook");
  const auto spec =
      make_spec(CampaignSpec::Protocol::kIsolation,
                PlatformConfig::paper(BusSetup::kCba), *tua, 3, 42);
  const auto a = run_campaign(spec);
  const auto b = run_campaign(spec);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i], b.samples()[i]);
  }
}

TEST(ScenarioRunners, MaxContentionRequiresWcetMode) {
  auto tua = workloads::make_eembc("canrdr");
  EXPECT_THROW(
      (void)run_campaign(make_spec(CampaignSpec::Protocol::kMaxContention,
                                   PlatformConfig::paper(BusSetup::kCba),
                                   *tua, 1, 1)),
      std::invalid_argument);
}

TEST(ScenarioRunners, SpecRequiresTuaAndRejectsStrayCorunners) {
  auto tua = workloads::make_eembc("canrdr");
  CampaignSpec no_tua;
  no_tua.config = PlatformConfig::paper(BusSetup::kRp);
  EXPECT_THROW((void)run_campaign(no_tua), std::invalid_argument);

  workloads::StreamingStream s(0);
  auto iso = make_spec(CampaignSpec::Protocol::kIsolation,
                       PlatformConfig::paper(BusSetup::kRp), *tua, 1, 1);
  iso.corunners = {&s};
  EXPECT_THROW((void)run_campaign(iso), std::invalid_argument);
}

/// Bitwise equality over every key/element/run of two campaign
/// aggregates. Record::operator== cannot serve here: isolation runs make
/// fair.maxmin_* infinite by contract and NaN/inf break naive equality,
/// while bit patterns compare exactly.
void expect_same_aggregate(const metrics::Aggregator& a,
                           const metrics::Aggregator& b) {
  ASSERT_EQ(a.keys(), b.keys());
  for (const std::string& key : a.keys()) {
    ASSERT_EQ(a.width(key), b.width(key)) << key;
    for (std::size_t e = 0; e < a.width(key); ++e) {
      const auto& sa = a.element_samples(key, e);
      const auto& sb = b.element_samples(key, e);
      ASSERT_EQ(sa.size(), sb.size()) << key;
      for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sa[i]),
                  std::bit_cast<std::uint64_t>(sb[i]))
            << key << '[' << e << "] run " << i;
      }
    }
  }
}

/// A factory-form spec mirroring make_spec, for the batched path.
[[nodiscard]] CampaignSpec make_factory_spec(CampaignSpec::Protocol protocol,
                                             PlatformConfig config,
                                             std::string kernel,
                                             std::uint32_t runs,
                                             std::uint64_t seed) {
  CampaignSpec spec;
  spec.protocol = protocol;
  spec.config = std::move(config);
  spec.tua_factory = [kernel = std::move(kernel)]() {
    return workloads::make_eembc(kernel);
  };
  spec.runs = runs;
  spec.base_seed = seed;
  spec.retain_raw = true;  // these tests read the per-run series
  return spec;
}

TEST(ScenarioRunners, FactoryFormMatchesSharedStreamForm) {
  // The batched (stream-factory) path must reproduce the shared-stream
  // replay loop bit-identically, for every batch and thread count.
  auto tua = workloads::make_eembc("cacheb");
  const auto shared = run_campaign(
      make_spec(CampaignSpec::Protocol::kIsolation,
                PlatformConfig::paper(BusSetup::kCba), *tua, 5, 99));
  for (const std::uint32_t batch : {1u, 3u, 8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      auto spec = make_factory_spec(CampaignSpec::Protocol::kIsolation,
                                    PlatformConfig::paper(BusSetup::kCba),
                                    "cacheb", 5, 99);
      spec.batch = batch;
      spec.threads = threads;
      const auto batched = run_campaign(spec);
      ASSERT_EQ(batched.samples().size(), shared.samples().size());
      for (std::size_t i = 0; i < shared.samples().size(); ++i) {
        EXPECT_EQ(batched.samples()[i], shared.samples()[i])
            << "batch=" << batch << " threads=" << threads << " run " << i;
      }
      expect_same_aggregate(batched.aggregate, shared.aggregate);
    }
  }
}

TEST(ScenarioRunners, BatchedCorunMatchesSharedStreamForm) {
  // Co-runner factories against shared co-runner streams, WCET-mode CBA
  // with real contenders exercising the SoA credit arena.
  auto tua = workloads::make_eembc("cacheb");
  workloads::StreamingStream s1(0), s2(4);
  auto corun_spec =
      make_spec(CampaignSpec::Protocol::kCorun,
                PlatformConfig::paper(BusSetup::kCba), *tua, 4, 99);
  corun_spec.corunners = {&s1, &s2};
  const auto shared = run_campaign(corun_spec);

  auto batched_spec = make_factory_spec(CampaignSpec::Protocol::kCorun,
                                        PlatformConfig::paper(BusSetup::kCba),
                                        "cacheb", 4, 99);
  batched_spec.corunner_factories = {
      []() { return std::make_unique<workloads::StreamingStream>(0); },
      []() { return std::make_unique<workloads::StreamingStream>(4); }};
  batched_spec.batch = 4;
  const auto batched = run_campaign(batched_spec);
  ASSERT_EQ(batched.samples().size(), shared.samples().size());
  for (std::size_t i = 0; i < shared.samples().size(); ++i) {
    EXPECT_EQ(batched.samples()[i], shared.samples()[i]) << "run " << i;
  }
  expect_same_aggregate(batched.aggregate, shared.aggregate);
}

TEST(ScenarioRunners, RunCampaignSliceWindowsAgree) {
  // Slices are run_campaign's unit of work; a slice starting at run k
  // must reproduce runs k.. of the full campaign (seeds by run index).
  auto spec = make_factory_spec(CampaignSpec::Protocol::kIsolation,
                                PlatformConfig::paper(BusSetup::kRp),
                                "canrdr", 6, 1234);
  const auto full = run_campaign(spec);
  std::vector<RunOutcome> window(3);
  run_campaign_slice(spec, 2, window);
  for (std::size_t i = 0; i < window.size(); ++i) {
    ASSERT_TRUE(window[i].finished);
    EXPECT_EQ(window[i].record.at("tua.cycles").scalar(),
              full.samples()[2 + i]);
  }
}

TEST(ScenarioRunners, FactoryFormContractErrors) {
  // Exactly one workload form, and batching requires the factory form.
  auto tua = workloads::make_eembc("canrdr");
  auto both = make_factory_spec(CampaignSpec::Protocol::kIsolation,
                                PlatformConfig::paper(BusSetup::kRp),
                                "canrdr", 1, 1);
  both.tua = tua.get();
  EXPECT_THROW((void)run_campaign(both), std::invalid_argument);

  auto shared_batched =
      make_spec(CampaignSpec::Protocol::kIsolation,
                PlatformConfig::paper(BusSetup::kRp), *tua, 2, 1);
  shared_batched.batch = 4;
  EXPECT_THROW((void)run_campaign(shared_batched), std::invalid_argument);
}

TEST(ScenarioRunners, ContentionSlowsTheTuaDown) {
  auto tua = workloads::make_eembc("cacheb");
  const auto iso = run_campaign(
      make_spec(CampaignSpec::Protocol::kIsolation,
                PlatformConfig::paper(BusSetup::kRp), *tua, 3, 77));
  const auto con = run_campaign(
      make_spec(CampaignSpec::Protocol::kMaxContention,
                PlatformConfig::paper_wcet(BusSetup::kRp), *tua, 3, 77));
  EXPECT_GT(slowdown(con, iso), 1.2);
}

TEST(ScenarioRunners, SlowdownOfSelfIsOne) {
  auto tua = workloads::make_eembc("canrdr");
  const auto iso = run_campaign(
      make_spec(CampaignSpec::Protocol::kIsolation,
                PlatformConfig::paper(BusSetup::kRp), *tua, 2, 0xC0FFEE));
  EXPECT_DOUBLE_EQ(slowdown(iso, iso), 1.0);
}

// --- split-protocol platform --------------------------------------------------------

TEST(SplitPlatform, IsolationRunFinishes) {
  auto tua = workloads::make_eembc("canrdr");
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kRp);
  cfg.bus_protocol = BusProtocol::kSplit;
  tua->reset(2);
  Multicore machine(cfg, 2, *tua);
  const RunResult r = machine.run();
  EXPECT_TRUE(r.tua_finished);
  EXPECT_GT(r.bus_stats.master[0].completions, 0u);
}

TEST(SplitPlatform, SplitNoSlowerThanNonSplitInIsolation) {
  // With one core there is no pipelining benefit, but end-to-end service
  // times are matched by construction: the two protocols should land
  // within a few percent of each other.
  auto tua = workloads::make_eembc("tblook");
  PlatformConfig nonsplit = PlatformConfig::paper(BusSetup::kRp);
  PlatformConfig split = nonsplit;
  split.bus_protocol = BusProtocol::kSplit;
  const auto a = run_campaign(make_spec(CampaignSpec::Protocol::kIsolation,
                                        nonsplit, *tua, 3, 21));
  const auto b = run_campaign(make_spec(CampaignSpec::Protocol::kIsolation,
                                        split, *tua, 3, 21));
  EXPECT_NEAR(b.exec_time().mean() / a.exec_time().mean(), 1.0, 0.05);
}

TEST(SplitPlatform, WcetModeWorks) {
  auto tua = workloads::make_eembc("canrdr");
  PlatformConfig cfg = PlatformConfig::paper_wcet(BusSetup::kCba);
  cfg.bus_protocol = BusProtocol::kSplit;
  tua->reset(3);
  Multicore machine(cfg, 3, *tua);
  const RunResult r = machine.run();
  EXPECT_TRUE(r.tua_finished);
  EXPECT_EQ(r.credit_underflows, 0u);
}

TEST(SplitPlatform, DeterministicPerSeed) {
  auto tua = workloads::make_eembc("cacheb");
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kCba);
  cfg.bus_protocol = BusProtocol::kSplit;
  tua->reset(7);
  Multicore a(cfg, 9, *tua);
  const Cycle ta = a.run().tua_cycles;
  tua->reset(7);
  Multicore b(cfg, 9, *tua);
  EXPECT_EQ(ta, b.run().tua_cycles);
}

// --- DRAM bank model on the platform ---------------------------------------------------

TEST(DramPlatform, RunsAndSpeedsUpStreaming) {
  // matrix streams sequentially: open rows make many misses cheaper than
  // the flat 28-cycle latency, so execution gets faster, never slower.
  auto tua = workloads::make_eembc("matrix");
  PlatformConfig flat = PlatformConfig::paper(BusSetup::kRp);
  PlatformConfig banked = flat;
  banked.dram = mem::DramConfig{};
  const auto a = run_campaign(make_spec(CampaignSpec::Protocol::kIsolation,
                                        flat, *tua, 3, 31));
  const auto b = run_campaign(make_spec(CampaignSpec::Protocol::kIsolation,
                                        banked, *tua, 3, 31));
  EXPECT_LT(b.exec_time().mean(), a.exec_time().mean());
  EXPECT_GT(b.exec_time().mean(), 0.5 * a.exec_time().mean());
}

TEST(DramPlatform, NoCreditUnderflowWithCba) {
  // Bank-model worst case (28) keeps MaxL = 56 a valid upper bound.
  auto tua = workloads::make_eembc("matrix");
  PlatformConfig cfg = PlatformConfig::paper_wcet(BusSetup::kCba);
  cfg.dram = mem::DramConfig{};
  const auto r = run_campaign(make_spec(
      CampaignSpec::Protocol::kMaxContention, cfg, *tua, 2, 0xC0FFEE));
  EXPECT_EQ(r.credit_underflows(), 0u);
}

TEST(DramPlatform, ValidationRejectsBadBankConfig) {
  PlatformConfig cfg = PlatformConfig::paper(BusSetup::kRp);
  cfg.dram = mem::DramConfig{};
  cfg.dram->banks = 5;  // not a power of two
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- config files -----------------------------------------------------------------------

TEST(ConfigFile, ParsesFullExample) {
  std::istringstream in(
      "# example\n"
      "cores = 8\n"
      "arbiter = drr   # deficit round robin\n"
      "setup = cba\n"
      "mode = wcet\n"
      "bus = split\n"
      "dram = banked\n"
      "l1_bytes = 8192\n"
      "l2_bytes = 65536\n"
      "store_buffer = 4\n"
      "tdma_slot = 56\n");
  const PlatformConfig cfg = parse_config(in);
  EXPECT_EQ(cfg.n_cores, 8u);
  EXPECT_EQ(cfg.arbiter, bus::ArbiterKind::kDeficitRoundRobin);
  ASSERT_TRUE(cfg.cba.has_value());
  EXPECT_EQ(cfg.cba->n_masters, 8u);
  EXPECT_EQ(cfg.mode, PlatformMode::kWcetEstimation);
  EXPECT_EQ(cfg.contender_policy, core::ContenderPolicy::kCompLatch);
  EXPECT_EQ(cfg.bus_protocol, BusProtocol::kSplit);
  EXPECT_TRUE(cfg.dram.has_value());
  EXPECT_EQ(cfg.core.dl1.size_bytes, 8192u);
  EXPECT_EQ(cfg.l2_partition.size_bytes, 65536u);
  EXPECT_EQ(cfg.core.store_buffer_depth, 4u);
}

TEST(ConfigFile, DefaultsAreThePaperPlatform) {
  std::istringstream in("");
  const PlatformConfig cfg = parse_config(in);
  EXPECT_EQ(cfg.n_cores, 4u);
  EXPECT_EQ(cfg.arbiter, bus::ArbiterKind::kRandomPermutation);
  EXPECT_FALSE(cfg.cba.has_value());  // setup defaults to rp
  EXPECT_EQ(cfg.mode, PlatformMode::kOperation);
}

TEST(ConfigFile, HcbaScalesWithCoreCount) {
  std::istringstream in("cores = 3\nsetup = hcba\n");
  const PlatformConfig cfg = parse_config(in);
  ASSERT_TRUE(cfg.cba.has_value());
  EXPECT_DOUBLE_EQ(cfg.cba->bandwidth_share(0), 0.5);
  EXPECT_DOUBLE_EQ(cfg.cba->bandwidth_share(1), 0.25);  // (1-0.5)/2
}

TEST(ConfigFile, UnknownKeyThrowsWithLineNumber) {
  std::istringstream in("cores = 4\nbogus_key = 7\n");
  try {
    (void)parse_config(in);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus_key"), std::string::npos);
  }
}

TEST(ConfigFile, NumberErrorsNameKeyAndLine) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::istringstream in(text);
    try {
      (void)parse_config(in);
      FAIL() << "should have thrown for: " << text;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("line 2"), std::string::npos) << what;
      EXPECT_NE(what.find(fragment), std::string::npos) << what;
    }
  };
  // stoull would silently accept the "123" prefix of "123abc".
  expect_error("cores = 4\nl2_bytes = 123abc\n", "trailing characters");
  // ... and silently wrap "-1" to 2^64-1.
  expect_error("cores = 4\ntdma_slot = -1\n", "bad number");
  expect_error("cores = 4\nmaxl = 99999999999999999999999\n",
               "out of range");
  // Values that fit uint64 but overflow the uint32 field must not be
  // silently truncated.
  expect_error("cores = 4\nl1_bytes = 4294967296\n", "out of range");
}

TEST(ConfigFile, ConfigKeysMatchesTheParser) {
  // Pins config_keys() to parse_config's dispatch: every advertised key
  // must parse with a representative value.
  const std::map<std::string, std::string> sample = {
      {"cores", "4"},          {"arbiter", "rr"},    {"setup", "cba"},
      {"mode", "wcet"},        {"bus", "split"},     {"dram", "banked"},
      {"l1_bytes", "8192"},    {"l2_bytes", "65536"},
      {"store_buffer", "2"},   {"maxl", "56"},       {"tdma_slot", "56"},
      {"topology", "segmented:2"}, {"bridge_hold", "5"},
      {"bridge_latency", "2"}, {"seg_stripe", "4096"},
      {"bridge_depth", "4"},   {"controller", "static"}};
  for (const auto key : config_keys()) {
    const auto it = sample.find(std::string(key));
    ASSERT_NE(it, sample.end()) << "no sample value for key " << key;
    std::istringstream in(it->first + " = " + it->second + "\n");
    EXPECT_NO_THROW((void)parse_config(in)) << key;
  }
  EXPECT_EQ(config_keys().size(), sample.size());
}

TEST(ConfigFile, ParseConfigUintAcceptsBases) {
  EXPECT_EQ(parse_config_uint("56", "maxl", 1), 56u);
  EXPECT_EQ(parse_config_uint("0x38", "maxl", 1), 56u);
  EXPECT_THROW((void)parse_config_uint("", "maxl", 1),
               std::invalid_argument);
  EXPECT_THROW((void)parse_config_uint(" 56", "maxl", 1),
               std::invalid_argument);
}

TEST(ConfigFile, MalformedValueThrows) {
  std::istringstream bad_number("cores = four\n");
  EXPECT_THROW((void)parse_config(bad_number), std::invalid_argument);
  std::istringstream no_equals("cores 4\n");
  EXPECT_THROW((void)parse_config(no_equals), std::invalid_argument);
  std::istringstream bad_enum("setup = turbo\n");
  EXPECT_THROW((void)parse_config(bad_enum), std::invalid_argument);
}

TEST(ConfigFile, RoundTripPreservesSemantics) {
  PlatformConfig original = PlatformConfig::paper_wcet(BusSetup::kCba);
  original.bus_protocol = BusProtocol::kSplit;
  original.dram = mem::DramConfig{};
  std::ostringstream out;
  write_config(out, original);
  std::istringstream in(out.str());
  const PlatformConfig back = parse_config(in);
  EXPECT_EQ(back.n_cores, original.n_cores);
  EXPECT_EQ(back.arbiter, original.arbiter);
  EXPECT_EQ(back.mode, original.mode);
  EXPECT_EQ(back.bus_protocol, original.bus_protocol);
  EXPECT_EQ(back.dram.has_value(), original.dram.has_value());
  EXPECT_EQ(back.cba.has_value(), original.cba.has_value());
}

TEST(ConfigFile, ParsedConfigActuallyRuns) {
  std::istringstream in("cores = 2\nsetup = cba\nmode = wcet\n");
  const PlatformConfig cfg = parse_config(in);
  auto tua = workloads::make_eembc("canrdr");
  tua->reset(5);
  Multicore machine(cfg, 5, *tua);
  EXPECT_TRUE(machine.run().tua_finished);
}

TEST(ConfigFile, MissingFileThrows) {
  EXPECT_THROW((void)load_config("/nonexistent/cbus.cfg"),
               std::invalid_argument);
}

// --- streaming aggregation ------------------------------------------------------

/// Serialized digest bytes of a streaming campaign aggregate.
[[nodiscard]] std::string digest_bytes(const metrics::Aggregator& agg) {
  std::ostringstream out(std::ios::binary);
  agg.serialize(out);
  return out.str();
}

TEST(StreamingCampaign, DigestIsBitIdenticalAcrossBatchAndThreads) {
  // The streaming fold merges slice digests in whatever order worker
  // threads finish; exact mergeability must hide that entirely. Every
  // batch x thread combination lands on the same digest bytes.
  auto make = [](std::uint32_t batch, std::uint32_t threads) {
    auto spec = make_factory_spec(CampaignSpec::Protocol::kMaxContention,
                                  PlatformConfig::paper_wcet(BusSetup::kCba),
                                  "canrdr", 12, 77);
    spec.retain_raw = false;
    spec.batch = batch;
    spec.threads = threads;
    return run_campaign(spec);
  };
  const auto reference = make(1, 1);
  EXPECT_FALSE(reference.aggregate.retains_raw());
  const std::string expected = digest_bytes(reference.aggregate);
  for (const std::uint32_t batch : {1u, 3u, 8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      const auto got = make(batch, threads);
      EXPECT_EQ(digest_bytes(got.aggregate), expected)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(got.unfinished_runs, reference.unfinished_runs);
    }
  }
}

TEST(StreamingCampaign, StatsMatchRawRetentionBitForBit) {
  // Streaming derives mean/min/max/stddev from exact sums; the raw
  // mode's OnlineStats folds the same run-ordered series. The derived
  // views must agree to the last bit on every key and element.
  auto spec = make_factory_spec(CampaignSpec::Protocol::kMaxContention,
                                PlatformConfig::paper_wcet(BusSetup::kCba),
                                "canrdr", 10, 31);
  spec.retain_raw = false;
  const auto streamed = run_campaign(spec);
  spec.retain_raw = true;
  const auto raw = run_campaign(spec);

  ASSERT_EQ(streamed.aggregate.keys(), raw.aggregate.keys());
  for (const std::string& key : raw.aggregate.keys()) {
    ASSERT_EQ(streamed.aggregate.width(key), raw.aggregate.width(key));
    for (std::size_t e = 0; e < raw.aggregate.width(key); ++e) {
      const auto rs = raw.aggregate.element_stats(key, e);
      const auto ss = streamed.aggregate.element_stats(key, e);
      EXPECT_EQ(rs.count(), ss.count()) << key;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(rs.min()),
                std::bit_cast<std::uint64_t>(ss.min()))
          << key << '[' << e << ']';
      EXPECT_EQ(std::bit_cast<std::uint64_t>(rs.max()),
                std::bit_cast<std::uint64_t>(ss.max()))
          << key << '[' << e << ']';
      // Welford means/variances round differently along the fold path,
      // so the cross-mode contract there is closeness, not bit equality
      // -- the exact sums are the BETTER answer.
      EXPECT_NEAR(rs.mean(), ss.mean(),
                  1e-9 * (1.0 + std::abs(rs.mean())))
          << key << '[' << e << ']';
      if (std::isfinite(rs.variance())) {
        EXPECT_NEAR(rs.variance(), ss.variance(),
                    1e-6 * (1.0 + std::abs(rs.variance())))
            << key << '[' << e << ']';
      }
    }
  }
  // Raw mode kept the series, streaming mode refuses to invent one.
  EXPECT_EQ(raw.samples().size(), 10u);
  EXPECT_TRUE(streamed.samples().empty());
}

TEST(StreamingCampaign, PeakRecordCountIsIndependentOfRunCount) {
  // The memory contract behind million-run campaigns: streaming keeps
  // O(batch * threads) records alive at once, raw keeps O(runs). Record
  // instances are census-counted, so measure the peak directly.
  auto run_with = [](std::uint32_t runs, bool retain) {
    auto spec = make_factory_spec(CampaignSpec::Protocol::kIsolation,
                                  PlatformConfig::paper(BusSetup::kRp),
                                  "canrdr", runs, 3);
    spec.retain_raw = retain;
    spec.batch = 4;
    spec.threads = 1;
    metrics::Record::reset_peak_live_count();
    const auto result = run_campaign(spec);
    EXPECT_EQ(result.aggregate.runs(), runs);
    return metrics::Record::peak_live_count();
  };

  const std::uint64_t stream_small = run_with(20, false);
  const std::uint64_t stream_large = run_with(160, false);
  // Constant head-room: the peak may wiggle by a few scratch records
  // but must not scale with the 8x run-count growth.
  EXPECT_LE(stream_large, stream_small + 4);

  const std::uint64_t raw_large = run_with(160, true);
  EXPECT_GE(raw_large, 160u);  // one retained record per run
  EXPECT_GT(raw_large, stream_large * 4);
}

}  // namespace
}  // namespace cbus::platform
