// Checkpoint format and sharded-campaign determinism tests: round
// trips, version and spec pinning (named-field diagnostics), truncated
// tail tolerance vs hard corruption errors, in-process resume, and the
// shard/merge path reproducing a single-process run byte for byte.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "metrics/record.hpp"

namespace cbus::exp {
namespace {

[[nodiscard]] ExperimentSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_experiment(in);
}

/// A small streaming campaign: 2 sweep jobs x 6 runs in 3 slices each.
[[nodiscard]] ExperimentSpec stream_spec() {
  return parse(
      "name = ckpt-test\n"
      "scenario = con\n"
      "kernel = matrix\n"
      "sweep setup = rp cba\n"
      "runs = 6\n"
      "batch = 2\n"
      "seed = 0xABCD\n"
      "retain = stream\n"
      "summary = off\n");
}

/// A scratch file path, with any leftover from a previous run removed
/// (a stale corrupted checkpoint would otherwise poison resume tests).
[[nodiscard]] std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

[[nodiscard]] std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The JSON sink rendering of a result -- the byte-identity yardstick
/// for resume and shard/merge (it covers stats, metrics and counters).
[[nodiscard]] std::string json_of(const ExperimentSpec& spec,
                                  const ExperimentResult& result) {
  std::ostringstream out;
  make_sink(SinkKind::kJson)->write(spec, result.jobs, out);
  return out.str();
}

/// Run the spec's campaign once and leave a complete checkpoint behind.
[[nodiscard]] ExperimentResult run_with_checkpoint(
    const ExperimentSpec& spec, const std::string& path) {
  RunOptions options;
  options.threads_override = 1;
  options.checkpoint_path = path;
  return run_experiment(spec, options);
}

void expect_throws_with(const std::function<void()>& op,
                        const std::string& fragment) {
  try {
    op();
    FAIL() << "should have thrown (wanted: " << fragment << ")";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

// --- format round trip and pinning ------------------------------------------

TEST(Checkpoint, RoundTripsMetaAndSlices) {
  const ExperimentSpec spec = stream_spec();
  const std::string path = temp_path("roundtrip.ckpt");
  const ExperimentResult direct = run_with_checkpoint(spec, path);
  ASSERT_EQ(direct.failed_jobs(), 0u);

  const LoadedCheckpoint loaded = load_checkpoint(path);
  validate_checkpoint_meta(loaded.meta, make_meta(spec, 0, 1));
  EXPECT_EQ(loaded.meta.job_count, 2u);
  EXPECT_EQ(loaded.meta.slice_count, 6u);
  ASSERT_EQ(loaded.slices.size(), 6u);
  std::uint64_t runs_total = 0;
  for (const SliceState& slice : loaded.slices) {
    EXPECT_LT(slice.job, 2u);
    EXPECT_EQ(slice.run_count, 2u);
    EXPECT_FALSE(slice.aggregate.retains_raw());
    runs_total += slice.aggregate.runs();
  }
  EXPECT_EQ(runs_total, 12u);
  // valid_bytes covers the whole file when nothing was truncated.
  EXPECT_EQ(loaded.valid_bytes, file_bytes(path).size());
}

TEST(Checkpoint, RejectsBadMagicAndUnsupportedVersion) {
  const std::string path = temp_path("badmagic.ckpt");
  write_file(path, "definitely not a checkpoint file");
  expect_throws_with([&] { (void)load_checkpoint(path); },
                     "not a cbus checkpoint file (bad magic)");

  // Same magic, version bumped to 2: a future format must be refused
  // by this reader, not misparsed.
  std::string future = "CBUSCKPT";
  const std::uint32_t version = 2;
  future.append(reinterpret_cast<const char*>(&version), sizeof version);
  write_file(path, future);
  expect_throws_with(
      [&] { (void)load_checkpoint(path); },
      "checkpoint format version 2 is not supported (this build reads "
      "version 1)");
}

TEST(Checkpoint, RejectsCorruptedHeaderChecksum) {
  const ExperimentSpec spec = stream_spec();
  const std::string path = temp_path("hdrsum.ckpt");
  (void)run_with_checkpoint(spec, path);
  std::string bytes = file_bytes(path);
  // Flip one bit inside the header payload (past magic+version+len).
  bytes[18] = static_cast<char>(bytes[18] ^ 0x01);
  write_file(path, bytes);
  expect_throws_with([&] { (void)load_checkpoint(path); },
                     "checkpoint header failed its checksum");
}

TEST(Checkpoint, RejectsCorruptedSliceEntry) {
  const ExperimentSpec spec = stream_spec();
  const std::string path = temp_path("slicesum.ckpt");
  (void)run_with_checkpoint(spec, path);
  const std::string original = file_bytes(path);
  const LoadedCheckpoint loaded = load_checkpoint(path);
  ASSERT_GT(loaded.slices.size(), 1u);

  // Find the first entry's start: it is where "SLCE" first appears.
  const std::size_t entry = original.find("SLCE");
  ASSERT_NE(entry, std::string::npos);

  // A flipped byte inside a COMPLETE entry is corruption, not a
  // kill-mid-append artifact: hard error.
  std::string corrupted = original;
  corrupted[entry + 10] = static_cast<char>(corrupted[entry + 10] ^ 0x40);
  write_file(path, corrupted);
  expect_throws_with([&] { (void)load_checkpoint(path); },
                     "checkpoint slice entry failed its checksum");

  // A trashed entry magic likewise.
  corrupted = original;
  corrupted[entry] = 'X';
  write_file(path, corrupted);
  expect_throws_with([&] { (void)load_checkpoint(path); },
                     "checkpoint slice entry has a bad magic");
}

TEST(Checkpoint, ToleratesTruncatedTailEntry) {
  const ExperimentSpec spec = stream_spec();
  const std::string path = temp_path("tail.ckpt");
  (void)run_with_checkpoint(spec, path);
  const std::string original = file_bytes(path);
  const LoadedCheckpoint full = load_checkpoint(path);
  ASSERT_EQ(full.slices.size(), 6u);

  // Chop the file mid-way through the last entry, as a SIGKILL between
  // write() and flush would: the prefix loads cleanly, the tail slice
  // is simply gone, and valid_bytes marks the cut for append_to.
  write_file(path, original.substr(0, original.size() - 7));
  const LoadedCheckpoint chopped = load_checkpoint(path);
  EXPECT_EQ(chopped.slices.size(), 5u);
  EXPECT_LT(chopped.valid_bytes, original.size() - 7);

  // Appending after the valid prefix heals the file: rewrite the lost
  // slice and the checkpoint reads complete again.
  {
    CheckpointWriter writer =
        CheckpointWriter::append_to(path, chopped.valid_bytes);
    writer.append(full.slices.back());
  }
  const LoadedCheckpoint healed = load_checkpoint(path);
  ASSERT_EQ(healed.slices.size(), 6u);
  EXPECT_EQ(healed.slices.back().slice, full.slices.back().slice);
}

TEST(Checkpoint, MetaMismatchNamesTheField) {
  const ExperimentSpec spec = stream_spec();
  const CheckpointMeta mine = make_meta(spec, 0, 1);

  CheckpointMeta other = mine;
  other.seed = 999;
  expect_throws_with([&] { validate_checkpoint_meta(other, mine); },
                     "checkpoint does not match this campaign: seed is "
                     "999 in the file but 43981 here");

  other = mine;
  other.name = "someone-elses-study";
  expect_throws_with([&] { validate_checkpoint_meta(other, mine); },
                     "name is 'someone-elses-study' in the file but "
                     "'ckpt-test' here");

  // Any result-shaping spec edit moves the hash, even when every named
  // header field still matches.
  ExperimentSpec edited = stream_spec();
  edited.platform_keys.emplace_back("maxl", "7");
  expect_throws_with(
      [&] {
        validate_checkpoint_meta(make_meta(edited, 0, 1), mine);
      },
      "spec_hash is ");
}

TEST(Checkpoint, SpecHashCoversResultShapingFieldsOnly) {
  const ExperimentSpec spec = stream_spec();
  const std::uint64_t base = spec_hash(spec);

  ExperimentSpec edited = stream_spec();
  edited.threads = 7;
  edited.json_path = "elsewhere.json";
  edited.summary = true;
  EXPECT_EQ(spec_hash(edited), base)
      << "output routing must not invalidate checkpoints";

  edited = stream_spec();
  edited.seed += 1;
  EXPECT_NE(spec_hash(edited), base);
  edited = stream_spec();
  edited.kernel = "tblook";
  EXPECT_NE(spec_hash(edited), base);
  edited = stream_spec();
  edited.max_cycles += 1;
  EXPECT_NE(spec_hash(edited), base);
}

TEST(Checkpoint, HeaderBytesGolden) {
  // Locks the on-disk header layout for version 1 (host byte order; the
  // golden is for the little-endian hosts CI runs on). Any layout edit
  // must bump kFormatVersion instead of silently moving fields.
  if constexpr (std::endian::native != std::endian::little) {
    GTEST_SKIP() << "golden bytes assume a little-endian host";
  }
  CheckpointMeta meta;
  meta.name = "g";
  meta.seed = 0x0102030405060708ull;
  meta.max_cycles = 9;
  meta.spec_hash = 0x1122334455667788ull;
  meta.runs = 10;
  meta.batch = 2;
  meta.job_count = 3;
  meta.slice_count = 15;
  meta.shard_index = 1;
  meta.shard_count = 4;
  const std::string path = temp_path("golden.ckpt");
  { (void)CheckpointWriter::create(path, meta); }
  const std::string bytes = file_bytes(path);

  const unsigned char expected[] = {
      // magic, version 1
      'C', 'B', 'U', 'S', 'C', 'K', 'P', 'T', 1, 0, 0, 0,
      // header frame: payload length 53
      53, 0, 0, 0,
      // seed, max_cycles, spec_hash (u64 little-endian each)
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
      9, 0, 0, 0, 0, 0, 0, 0,
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
      // runs, batch, job_count, slice_count, shard_index, shard_count
      10, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 15, 0, 0, 0,
      1, 0, 0, 0, 4, 0, 0, 0,
      // name: u32 length + bytes
      1, 0, 0, 0, 'g'};
  ASSERT_EQ(bytes.size(), sizeof expected + 8);  // + payload checksum
  EXPECT_EQ(std::memcmp(bytes.data(), expected, sizeof expected), 0);
  // The trailing FNV-1a checksum is itself pinned by the layout.
  const LoadedCheckpoint reread = load_checkpoint(path);
  validate_checkpoint_meta(reread.meta, meta);
}

// --- resume -----------------------------------------------------------------

TEST(CheckpointResume, SkipsCompletedSlicesAndMatchesBytes) {
  const ExperimentSpec spec = stream_spec();
  const std::string full_path = temp_path("resume-full.ckpt");
  const ExperimentResult uninterrupted =
      run_with_checkpoint(spec, full_path);
  const std::string expected = json_of(spec, uninterrupted);
  const LoadedCheckpoint full = load_checkpoint(full_path);

  // Replay a kill after two finished slices: a fresh checkpoint holding
  // only those, plus a truncated garbage tail as the kill artifact.
  const std::string partial_path = temp_path("resume-partial.ckpt");
  {
    CheckpointWriter writer =
        CheckpointWriter::create(partial_path, make_meta(spec, 0, 1));
    writer.append(full.slices[0]);
    writer.append(full.slices[3]);
  }
  const std::uint64_t valid = load_checkpoint(partial_path).valid_bytes;
  {
    std::ofstream out(partial_path,
                      std::ios::binary | std::ios::app);
    out.write("SLCE\x40\x00", 6);  // half an entry header
  }

  const ExperimentResult resumed =
      run_with_checkpoint(spec, partial_path);
  EXPECT_EQ(json_of(spec, resumed), expected);

  // The healed file is complete and its valid prefix grew.
  const LoadedCheckpoint after = load_checkpoint(partial_path);
  EXPECT_EQ(after.slices.size(), 6u);
  EXPECT_GT(after.valid_bytes, valid);

  // A second resume finds nothing to do and still matches.
  const ExperimentResult again = run_with_checkpoint(spec, partial_path);
  EXPECT_EQ(json_of(spec, again), expected);
}

TEST(CheckpointResume, RejectsACheckpointFromAnotherCampaign) {
  const ExperimentSpec spec = stream_spec();
  const std::string path = temp_path("foreign.ckpt");
  (void)run_with_checkpoint(spec, path);

  ExperimentSpec other = stream_spec();
  other.seed = 0xFEED;
  expect_throws_with([&] { (void)run_with_checkpoint(other, path); },
                     "checkpoint does not match this campaign: seed is ");
}

TEST(CheckpointResume, CheckpointingRequiresStreaming) {
  ExperimentSpec spec = stream_spec();
  spec.retain_raw = true;
  expect_throws_with(
      [&] {
        (void)run_with_checkpoint(spec, temp_path("raw.ckpt"));
      },
      "checkpointing requires retain = stream");
}

// --- sharding and merge -----------------------------------------------------

TEST(ShardMerge, ShardsReassembleToSingleProcessBytes) {
  const ExperimentSpec spec = stream_spec();
  RunOptions single;
  single.threads_override = 2;
  const std::string expected =
      json_of(spec, run_experiment(spec, single));

  for (const std::uint32_t shard_count : {1u, 3u}) {
    for (const std::uint32_t threads : {1u, 2u}) {
      std::vector<std::string> paths;
      for (std::uint32_t i = 0; i < shard_count; ++i) {
        RunOptions options;
        options.threads_override = threads;
        options.shard_index = i;
        options.shard_count = shard_count;
        options.checkpoint_path =
            temp_path("shard-" + std::to_string(shard_count) + "-" +
                      std::to_string(threads) + "-" + std::to_string(i) +
                      ".ckpt");
        paths.push_back(options.checkpoint_path);
        const ExperimentResult shard = run_experiment(spec, options);
        ASSERT_EQ(shard.failed_jobs(), 0u);
      }
      const LoadedCheckpoint merged = merge_checkpoints(spec, paths);
      const ExperimentResult result =
          finalize_from_slices(spec, merged.slices);
      EXPECT_EQ(json_of(spec, result), expected)
          << shard_count << " shards, " << threads << " threads";
    }
  }
}

TEST(ShardMerge, ShardOwnsOnlyItsSlices) {
  const ExperimentSpec spec = stream_spec();
  RunOptions options;
  options.threads_override = 1;
  options.shard_index = 1;
  options.shard_count = 3;
  options.checkpoint_path = temp_path("own.ckpt");
  (void)run_experiment(spec, options);
  const LoadedCheckpoint loaded = load_checkpoint(options.checkpoint_path);
  ASSERT_FALSE(loaded.slices.empty());
  for (const SliceState& slice : loaded.slices) {
    EXPECT_EQ(slice.slice % 3u, 1u);
  }
  EXPECT_EQ(loaded.meta.shard_index, 1u);
  EXPECT_EQ(loaded.meta.shard_count, 3u);
}

TEST(ShardMerge, MergeValidatesTheShardSet) {
  const ExperimentSpec spec = stream_spec();
  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 3; ++i) {
    RunOptions options;
    options.threads_override = 1;
    options.shard_index = i;
    options.shard_count = 3;
    options.checkpoint_path =
        temp_path("vs-" + std::to_string(i) + ".ckpt");
    paths.push_back(options.checkpoint_path);
    (void)run_experiment(spec, options);
  }

  // Wrong file count for the recorded shard geometry.
  expect_throws_with(
      [&] {
        (void)merge_checkpoints(
            spec, {paths[0], paths[1]});
      },
      "ran as 3 shard(s) but 2 checkpoint file(s) were given");

  // The same shard twice (and another missing).
  expect_throws_with(
      [&] {
        (void)merge_checkpoints(spec, {paths[0], paths[1], paths[1]});
      },
      "two checkpoint files claim shard 1");

  // An unfinished shard: keep its header but drop its slices.
  const LoadedCheckpoint loaded = load_checkpoint(paths[2]);
  {
    CheckpointWriter writer =
        CheckpointWriter::create(paths[2], loaded.meta);
  }
  expect_throws_with(
      [&] { (void)merge_checkpoints(spec, paths); },
      "checkpoint set is incomplete: slice 2 (shard 2) has not "
      "finished");
}

TEST(ShardMerge, ShardedRunRequiresACheckpoint) {
  const ExperimentSpec spec = stream_spec();
  RunOptions options;
  options.shard_index = 0;
  options.shard_count = 2;
  expect_throws_with([&] { (void)run_experiment(spec, options); },
                     "sharded runs need a checkpoint file");
}

TEST(ShardMerge, FinalizeRejectsForeignSlices) {
  const ExperimentSpec spec = stream_spec();
  const std::string path = temp_path("foreign-slice.ckpt");
  (void)run_with_checkpoint(spec, path);
  std::vector<SliceState> slices = load_checkpoint(path).slices;
  slices[0].job = 99;
  expect_throws_with(
      [&] { (void)finalize_from_slices(spec, slices); },
      "slice state references job 99 of 2");
}

}  // namespace
}  // namespace cbus::exp
