// ctrl subsystem tests: the controller registry and `controller =` value
// syntax, the Fahmy/Jain water-filling fair share, the epoch-driven
// adaptive feedback loop (demand sampling, rate mixing, deterministic
// integerization), the PhaseShiftedStream workload, and the campaign
// determinism contracts (static byte-identity to pre-controller specs;
// adaptive byte-identity across batch/thread counts, checkpoint resume
// and shard+merge; end-to-end fairness improvement over static on the
// phased workload).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bus/bus.hpp"
#include "core/cba_config.hpp"
#include "core/credit_state.hpp"
#include "ctrl/controller.hpp"
#include "exp/checkpoint.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "platform/config_file.hpp"
#include "platform/multicore.hpp"
#include "workloads/eembc_like.hpp"
#include "workloads/phased.hpp"

namespace cbus::ctrl {
namespace {

// --- registry and value syntax ----------------------------------------------

TEST(ControllerRegistry, ListsEveryKindOnce) {
  EXPECT_EQ(all_controller_kinds().size(), 2u);
  EXPECT_EQ(known_controller_list(), "static adaptive");
  EXPECT_EQ(short_name(ControllerKind::kStatic), "static");
  EXPECT_EQ(short_name(ControllerKind::kAdaptive), "adaptive");
}

TEST(ControllerParse, AcceptsTheDocumentedForms) {
  EXPECT_EQ(parse_controller("static").kind, ControllerKind::kStatic);

  const ControllerConfig bare = parse_controller("adaptive");
  EXPECT_TRUE(bare.adaptive());
  EXPECT_EQ(bare.window, 2048u);

  const ControllerConfig windowed = parse_controller("adaptive:4096");
  EXPECT_EQ(windowed.window, 4096u);
  EXPECT_DOUBLE_EQ(windowed.gain, 0.5);

  const ControllerConfig full = parse_controller("adaptive:1024:0.25");
  EXPECT_EQ(full.window, 1024u);
  EXPECT_DOUBLE_EQ(full.gain, 0.25);
}

TEST(ControllerParse, RejectsJunkAndListsTheRegistry) {
  // The unknown-name error enumerates the registered controllers,
  // matching `cbus_sim --list controllers` (the satellite contract).
  try {
    (void)parse_controller("pid");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("static adaptive"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)parse_controller(""), std::invalid_argument);
  EXPECT_THROW((void)parse_controller("static:8"), std::invalid_argument);
  EXPECT_THROW((void)parse_controller("adaptive:8"),
               std::invalid_argument);  // window < 16
  EXPECT_THROW((void)parse_controller("adaptive:1024:0"),
               std::invalid_argument);  // gain out of (0, 1]
  EXPECT_THROW((void)parse_controller("adaptive:1024:1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_controller("adaptive:-16"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_controller("adaptive:1024:0.5:x"),
               std::invalid_argument);
}

TEST(ControllerParse, RoundTripsThroughConfigString) {
  for (const std::string text :
       {"static", "adaptive:2048:0.5", "adaptive:512:0.25"}) {
    EXPECT_EQ(to_config_string(parse_controller(text)), text);
  }
  // The short forms normalise to the explicit rendering.
  EXPECT_EQ(to_config_string(parse_controller("adaptive")),
            "adaptive:2048:0.5");
}

// --- fair_shares water-filling ----------------------------------------------

TEST(FairShares, SplitsEvenlyWhenEveryoneIsGreedy) {
  const std::vector<double> demand{10.0, 10.0, 10.0};
  const auto share = fair_shares(demand, {}, 6.0);
  ASSERT_EQ(share.size(), 3u);
  for (const double s : share) EXPECT_DOUBLE_EQ(s, 2.0);
}

TEST(FairShares, CapsLowDemandersAndWaterFillsTheRest) {
  // Classic max-min: demand {1, 4, 10} over capacity 9 -> {1, 4, 4}.
  const std::vector<double> demand{1.0, 4.0, 10.0};
  const auto share = fair_shares(demand, {}, 9.0);
  EXPECT_DOUBLE_EQ(share[0], 1.0);
  EXPECT_DOUBLE_EQ(share[1], 4.0);
  EXPECT_DOUBLE_EQ(share[2], 4.0);
}

TEST(FairShares, RespectsWeights) {
  // Both greedy, weights 2:1 -> shares 2:1.
  const std::vector<double> demand{100.0, 100.0};
  const std::vector<double> weight{2.0, 1.0};
  const auto share = fair_shares(demand, weight, 6.0);
  EXPECT_DOUBLE_EQ(share[0], 4.0);
  EXPECT_DOUBLE_EQ(share[1], 2.0);
}

TEST(FairShares, NeverExceedsCapacityOrDemand) {
  const std::vector<double> demand{0.5, 3.0, 2.0, 8.0};
  const auto share = fair_shares(demand, {}, 6.0);
  double total = 0.0;
  for (std::size_t m = 0; m < share.size(); ++m) {
    EXPECT_LE(share[m], demand[m] + 1e-12);
    total += share[m];
  }
  EXPECT_NEAR(total, 6.0, 1e-12);  // total demand exceeds capacity
}

TEST(FairShares, UnderloadedSystemCapsEveryoneAtDemand) {
  const std::vector<double> demand{1.0, 2.0};
  const auto share = fair_shares(demand, {}, 10.0);
  EXPECT_DOUBLE_EQ(share[0], 1.0);
  EXPECT_DOUBLE_EQ(share[1], 2.0);
}

// --- CreditState::set_increment ---------------------------------------------

TEST(SetIncrement, RetunesTheRecoveryRate) {
  core::CreditState state(core::CbaConfig::homogeneous(4, 56));
  EXPECT_EQ(state.config().increment[2], 1u);
  state.set_increment(2, 3);
  EXPECT_EQ(state.config().increment[2], 3u);
  // Out of range: master index, zero increment, above scale.
  EXPECT_THROW(state.set_increment(4, 1), std::invalid_argument);
  EXPECT_THROW(state.set_increment(0, 0), std::invalid_argument);
  EXPECT_THROW(state.set_increment(0, state.config().scale + 1),
               std::invalid_argument);
}

// --- the adaptive feedback loop over synthetic demand ------------------------

/// Drive `cycles` ticks, bumping the synthetic per-master busy counters
/// by `busy_per_cycle` each cycle (the controller samples the deltas).
void drive(AdaptiveController& ctrl, bus::BusStatistics& stats, Cycle& now,
           Cycle cycles, const std::vector<Cycle>& busy_per_cycle) {
  for (Cycle c = 0; c < cycles; ++c) {
    for (std::size_t m = 0; m < busy_per_cycle.size(); ++m) {
      stats.master[m].hold_cycles += busy_per_cycle[m];
    }
    ctrl.tick(now++);
  }
}

TEST(AdaptiveController, ConvergesToEqualSharesUnderEqualDemand) {
  // Biased start (the paper's H-CBA: master 0 holds 3 of 6 units) plus
  // equal saturating demand: the explicit-rate loop must level the
  // increments.
  core::CreditState credits(core::CbaConfig::paper_hcba(56));
  bus::BusStatistics stats;
  stats.master.resize(4);

  AdaptiveController ctrl(parse_controller("adaptive:1024"), credits, stats);
  EXPECT_EQ(ctrl.increments(), (std::vector<std::uint64_t>{3, 1, 1, 1}));

  Cycle now = 1;
  drive(ctrl, stats, now, 16 * 1024, {1, 1, 1, 1});
  const auto& stat = ctrl.stats();
  EXPECT_GT(stat.epochs, 0u);
  EXPECT_GT(stat.updates, 0u);
  EXPECT_LT(stat.convergence_cycles, now);
  // 6 units over 4 equal masters cannot split evenly; the rotating
  // largest-remainder integerization keeps every master within one unit
  // of the 1.5-unit fair share and the total pinned at the scale.
  std::uint64_t total = 0;
  for (const std::uint64_t inc : ctrl.increments()) {
    EXPECT_GE(inc, 1u);
    EXPECT_LE(inc, 2u);
    total += inc;
  }
  EXPECT_EQ(total, 6u);
}

TEST(AdaptiveController, ShiftsBudgetTowardTheDemandingMasters) {
  core::CreditState credits(core::CbaConfig::homogeneous(4, 56));
  bus::BusStatistics stats;
  stats.master.resize(4);
  AdaptiveController ctrl(parse_controller("adaptive:1024:1"), credits,
                          stats);

  // Master 2 wants the whole bus, the others are idle: it must end up
  // with every unit the MCR floors leave free.
  Cycle now = 1;
  drive(ctrl, stats, now, 32 * 1024, {0, 0, 1, 0});
  EXPECT_EQ(ctrl.increments(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  // (scale 4 with a 1-unit floor for each of 4 masters leaves nothing to
  // shift; widen the bus to see the actual transfer.)
  core::CbaConfig wide = core::CbaConfig::homogeneous(4, 56);
  wide.scale = 8;
  wide.increment = {2, 2, 2, 2};
  core::CreditState credits8(wide);
  bus::BusStatistics stats8;
  stats8.master.resize(4);
  AdaptiveController ctrl8(parse_controller("adaptive:1024:1"), credits8,
                           stats8);
  now = 1;
  drive(ctrl8, stats8, now, 32 * 1024, {0, 0, 1, 0});
  EXPECT_EQ(ctrl8.increments(), (std::vector<std::uint64_t>{1, 1, 5, 1}));
  EXPECT_EQ(credits8.config().increment[2], 5u);
}

TEST(AdaptiveController, DeadbandFreezesTheRatesAtTheFixedPoint) {
  core::CreditState credits(core::CbaConfig::homogeneous(2, 56));
  bus::BusStatistics stats;
  stats.master.resize(2);
  AdaptiveController ctrl(parse_controller("adaptive:256"), credits, stats);
  Cycle now = 1;
  drive(ctrl, stats, now, 8 * 256, {1, 1});
  const std::uint64_t updates_at_convergence = ctrl.stats().updates;
  drive(ctrl, stats, now, 8 * 256, {1, 1});
  // Same demand, converged rates: the deadband suppresses every further
  // update while epochs keep counting.
  EXPECT_EQ(ctrl.stats().updates, updates_at_convergence);
  EXPECT_GT(ctrl.stats().epochs, updates_at_convergence);
  EXPECT_LT(ctrl.stats().steady_error, 0.2);
}

TEST(AdaptiveController, RequiresRoomForTheMcrFloor) {
  // scale 4 < 5 masters: no way to give every master a 1-unit floor.
  core::CbaConfig cramped = core::CbaConfig::homogeneous(5, 56);
  cramped.scale = 4;
  core::CreditState credits(cramped);
  bus::BusStatistics stats;
  stats.master.resize(5);
  EXPECT_THROW(
      AdaptiveController(parse_controller("adaptive"), credits, stats),
      std::invalid_argument);
  core::CreditState ok(core::CbaConfig::homogeneous(5, 56));
  EXPECT_NO_THROW(
      AdaptiveController(parse_controller("adaptive"), ok, stats));
}

// --- PhaseShiftedStream ------------------------------------------------------

TEST(PhaseShifted, AlternatesActiveAndQuietEveryPeriod) {
  workloads::PhaseShiftedStream stream(/*period=*/4, /*offset=*/0,
                                       /*quiet_gap=*/50);
  std::vector<std::uint32_t> gaps;
  for (int i = 0; i < 12; ++i) gaps.push_back(stream.next()->compute_before);
  EXPECT_EQ(gaps, (std::vector<std::uint32_t>{0, 0, 0, 0, 50, 50, 50, 50, 0,
                                              0, 0, 0}));
}

TEST(PhaseShifted, OffsetShiftsTheWave) {
  workloads::PhaseShiftedStream stream(/*period=*/4, /*offset=*/2,
                                       /*quiet_gap=*/50);
  std::vector<std::uint32_t> gaps;
  for (int i = 0; i < 6; ++i) gaps.push_back(stream.next()->compute_before);
  EXPECT_EQ(gaps, (std::vector<std::uint32_t>{0, 0, 50, 50, 50, 50}));
}

TEST(PhaseShifted, ResetRewindsDeterministically) {
  workloads::PhaseShiftedStream stream(8, 3, 10);
  std::vector<Addr> first;
  for (int i = 0; i < 20; ++i) first.push_back(stream.next()->addr);
  stream.reset(0xDEAD);  // seed is unused by design
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(stream.next()->addr, first[static_cast<std::size_t>(i)]);
  }
}

TEST(PhaseShifted, ParsesAsAWorkloadSpec) {
  const exp::WorkloadSpec spec = exp::parse_workload("phased:768:256:150");
  EXPECT_EQ(spec.kind, exp::WorkloadSpec::Kind::kPhased);
  EXPECT_EQ(spec.period, 768u);
  EXPECT_EQ(spec.offset, 256u);
  EXPECT_EQ(spec.gap, 150u);

  const exp::WorkloadSpec defaults = exp::parse_workload("phased");
  EXPECT_EQ(defaults.period, 512u);
  EXPECT_EQ(defaults.offset, 0u);
  EXPECT_EQ(defaults.gap, 200u);

  EXPECT_THROW((void)exp::parse_workload("phased:0"),
               std::invalid_argument);
  EXPECT_THROW((void)exp::parse_workload("phased:512:0:1:9"),
               std::invalid_argument);
  EXPECT_THROW((void)exp::parse_workload("phased:abc"),
               std::invalid_argument);
}

// --- platform wiring ---------------------------------------------------------

TEST(PlatformWiring, AdaptiveNeedsCbaAndASingleBus) {
  const auto parse_cfg = [](const std::string& text) {
    std::istringstream in(text);
    return platform::parse_config(in);
  };
  EXPECT_THROW((void)parse_cfg("setup = rp\ncontroller = adaptive\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_cfg("setup = cba\ntopology = segmented:2\n"
                               "controller = adaptive\n"),
               std::invalid_argument);
  const platform::PlatformConfig ok =
      parse_cfg("setup = hcba\ncontroller = adaptive:1024\n");
  EXPECT_TRUE(ok.controller.adaptive());
  EXPECT_EQ(ok.controller.window, 1024u);
  // Unknown values surface the registry through the config-file error.
  try {
    (void)parse_cfg("setup = cba\ncontroller = fuzzy\n");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("static adaptive"),
              std::string::npos)
        << e.what();
  }
}

TEST(PlatformWiring, MachineExposesTheConfiguredController) {
  std::istringstream in("setup = hcba\ncontroller = adaptive:1024\n");
  const platform::PlatformConfig cfg = platform::parse_config(in);
  auto tua = workloads::make_eembc("matrix");
  tua->reset(7);
  platform::Multicore machine(cfg, 7, *tua);
  ASSERT_NE(machine.controller(), nullptr);
  EXPECT_EQ(machine.controller()->kind(), ControllerKind::kAdaptive);
  const auto result = machine.run(200'000);
  // The adaptive machine ran epochs and emitted the ctrl.* record keys.
  EXPECT_GT(machine.controller()->stats().epochs, 0u);
  EXPECT_TRUE(result.record.has("ctrl.epochs"));
  EXPECT_TRUE(result.record.has("ctrl.increment"));

  std::istringstream in2("setup = hcba\n");
  const platform::PlatformConfig plain = platform::parse_config(in2);
  tua->reset(7);
  platform::Multicore static_machine(plain, 7, *tua);
  ASSERT_NE(static_machine.controller(), nullptr);
  EXPECT_EQ(static_machine.controller()->kind(), ControllerKind::kStatic);
  EXPECT_FALSE(static_machine.run(200'000).record.has("ctrl.epochs"));
}

// --- campaign determinism ----------------------------------------------------

[[nodiscard]] exp::ExperimentSpec parse_exp(const std::string& text) {
  std::istringstream in(text);
  return exp::parse_experiment(in);
}

[[nodiscard]] std::string csv_of(const exp::ExperimentSpec& spec,
                                 const exp::ExperimentResult& result) {
  std::ostringstream out;
  exp::make_sink(exp::SinkKind::kCsv)->write(spec, result.jobs, out);
  return out.str();
}

[[nodiscard]] std::string json_of(const exp::ExperimentSpec& spec,
                                  const exp::ExperimentResult& result) {
  std::ostringstream out;
  exp::make_sink(exp::SinkKind::kJson)->write(spec, result.jobs, out);
  return out.str();
}

/// The phased-workload campaign used by the determinism matrix: small,
/// adaptive, with ctrl.* and fair.* columns.
constexpr const char* kAdaptiveExp =
    "name = ctrl-det\n"
    "scenario = corun\n"
    "kernel = canrdr\n"
    "core1 = phased:512:128:150\n"
    "core2 = phased:512:256:150\n"
    "setup = hcba\n"
    "cores = 3\n"
    "controller = adaptive:1024\n"
    "runs = 4\n"
    "max_cycles = 150000\n"
    "summary = off\n"
    "metrics = fair.jain_occupancy,ctrl.increment,ctrl.epochs,"
    "ctrl.convergence_cycles\n";

TEST(ControllerDeterminism, StaticKeyIsByteIdenticalToNoKey) {
  // `controller = static` must not perturb a single byte of output
  // relative to a spec that never mentions the key (the pre-PR
  // baseline): the static controller is never registered to tick.
  const std::string base =
      "scenario = corun\nkernel = canrdr\ncore1 = stream:2\n"
      "setup = hcba\ncores = 3\nruns = 4\nsummary = off\nmetrics = all\n";
  const exp::ExperimentSpec plain = parse_exp(base);
  const exp::ExperimentSpec keyed =
      parse_exp(base + "controller = static\n");
  const auto a = exp::run_experiment(plain, 2);
  const auto b = exp::run_experiment(keyed, 2);
  ASSERT_EQ(a.failed_jobs(), 0u);
  EXPECT_EQ(csv_of(plain, a), csv_of(keyed, b));
  EXPECT_EQ(json_of(plain, a), json_of(keyed, b));
}

TEST(ControllerDeterminism, AdaptiveIsByteIdenticalAcrossBatchAndThreads) {
  const exp::ExperimentSpec serial_spec = parse_exp(kAdaptiveExp);
  const auto serial = exp::run_experiment(serial_spec, 1);
  ASSERT_EQ(serial.failed_jobs(), 0u);
  const std::string expected_csv = csv_of(serial_spec, serial);
  const std::string expected_json = json_of(serial_spec, serial);
  EXPECT_NE(expected_csv.find("ctrl.epochs"), std::string::npos);

  for (const std::uint32_t batch : {8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      exp::ExperimentSpec spec = parse_exp(kAdaptiveExp);
      spec.batch = batch;
      const auto result = exp::run_experiment(spec, threads);
      EXPECT_EQ(csv_of(spec, result), expected_csv)
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(json_of(spec, result), expected_json)
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

/// A scratch file path with any stale leftover removed.
[[nodiscard]] std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

/// The streaming (checkpointable) variant of the adaptive campaign.
[[nodiscard]] exp::ExperimentSpec streaming_adaptive_spec() {
  exp::ExperimentSpec spec = parse_exp(kAdaptiveExp);
  spec.retain_raw = false;
  spec.batch = 2;
  return spec;
}

TEST(ControllerDeterminism, CheckpointResumesMidEpochCampaign) {
  // Slices stop machines mid-epoch (150k cycles is no multiple of the
  // 1024-cycle window); resume must still reproduce the uninterrupted
  // bytes because controller state is rebuilt per run, not carried.
  const exp::ExperimentSpec spec = streaming_adaptive_spec();
  exp::RunOptions options;
  options.threads_override = 1;
  options.checkpoint_path = temp_path("ctrl-full.ckpt");
  const auto uninterrupted = exp::run_experiment(spec, options);
  ASSERT_EQ(uninterrupted.failed_jobs(), 0u);
  const std::string expected = json_of(spec, uninterrupted);

  const exp::LoadedCheckpoint full =
      exp::load_checkpoint(options.checkpoint_path);
  ASSERT_GE(full.slices.size(), 2u);
  exp::RunOptions resume;
  resume.threads_override = 2;
  resume.checkpoint_path = temp_path("ctrl-partial.ckpt");
  {
    exp::CheckpointWriter writer = exp::CheckpointWriter::create(
        resume.checkpoint_path, exp::make_meta(spec, 0, 1));
    writer.append(full.slices[0]);
  }
  const auto resumed = exp::run_experiment(spec, resume);
  EXPECT_EQ(json_of(spec, resumed), expected);
}

TEST(ControllerDeterminism, ShardsMergeToSingleProcessBytes) {
  const exp::ExperimentSpec spec = streaming_adaptive_spec();
  exp::RunOptions single;
  single.threads_override = 2;
  const std::string expected =
      json_of(spec, exp::run_experiment(spec, single));

  std::vector<std::string> paths;
  for (std::uint32_t i = 0; i < 2; ++i) {
    exp::RunOptions options;
    options.threads_override = 2;
    options.shard_index = i;
    options.shard_count = 2;
    options.checkpoint_path =
        temp_path("ctrl-shard-" + std::to_string(i) + ".ckpt");
    paths.push_back(options.checkpoint_path);
    const auto shard = exp::run_experiment(spec, options);
    ASSERT_EQ(shard.failed_jobs(), 0u);
  }
  const exp::LoadedCheckpoint merged = exp::merge_checkpoints(spec, paths);
  const auto result = exp::finalize_from_slices(spec, merged.slices);
  EXPECT_EQ(json_of(spec, result), expected);
}

// --- end-to-end fairness -----------------------------------------------------

TEST(AdaptiveEndToEnd, ImprovesFairnessOverStaticOnPhasedLoad) {
  // The acceptance scenario: H-CBA's biased Table-I increments against
  // four phase-shifted equal loads. The adaptive controller must
  // measurably improve Jain/max-min occupancy fairness over static and
  // converge within the run.
  const std::string text =
      "name = ctrl-e2e\n"
      "scenario = corun\n"
      "kernel = matrix\n"
      "core1 = phased:768:256:150\n"
      "core2 = phased:768:512:150\n"
      "core3 = phased:768:640:150\n"
      "setup = hcba\n"
      "cores = 4\n"
      "sweep controller = static adaptive:1024\n"
      "runs = 3\n"
      "max_cycles = 300000\n"
      "summary = off\n"
      "metrics = fair.jain_occupancy,fair.maxmin_occupancy,ctrl.epochs,"
      "ctrl.convergence_cycles\n";
  const exp::ExperimentSpec spec = parse_exp(text);
  const auto result = exp::run_experiment(spec, 2);
  ASSERT_EQ(result.failed_jobs(), 0u);
  ASSERT_EQ(result.jobs.size(), 2u);

  const auto mean_of = [&](std::size_t job, const std::string& key) {
    return result.jobs[job].campaign.aggregate.element_stats(key).mean();
  };
  const double static_jain = mean_of(0, "fair.jain_occupancy");
  const double adaptive_jain = mean_of(1, "fair.jain_occupancy");
  const double static_maxmin = mean_of(0, "fair.maxmin_occupancy");
  const double adaptive_maxmin = mean_of(1, "fair.maxmin_occupancy");

  EXPECT_GT(adaptive_jain, static_jain + 0.005)
      << "static=" << static_jain << " adaptive=" << adaptive_jain;
  EXPECT_LT(adaptive_maxmin, static_maxmin - 0.05)
      << "static=" << static_maxmin << " adaptive=" << adaptive_maxmin;

  // Convergence is bounded: the loop settled well inside the run.
  const double epochs = mean_of(1, "ctrl.epochs");
  const double convergence = mean_of(1, "ctrl.convergence_cycles");
  EXPECT_GT(epochs, 10.0);
  EXPECT_GT(convergence, 0.0);
  EXPECT_LT(convergence, 300'000.0);
}

}  // namespace
}  // namespace cbus::ctrl
