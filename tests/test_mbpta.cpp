// MBPTA/EVT tests: Gumbel fitting recovers known parameters, quantile
// arithmetic, block maxima, diagnostics behave correctly on synthetic
// distributions with known properties.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mbpta/convergence.hpp"
#include "mbpta/diagnostics.hpp"
#include "mbpta/gumbel.hpp"
#include "mbpta/pot.hpp"
#include "mbpta/pwcet.hpp"
#include "rng/distributions.hpp"
#include "rng/xorshift.hpp"

namespace cbus::mbpta {
namespace {

/// Sample a Gumbel(mu, beta) via inverse transform.
std::vector<double> gumbel_sample(double mu, double beta, std::size_t n,
                                  std::uint64_t seed) {
  rng::XorShift64Star g(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double u = rng::uniform01(g);
    if (u <= 0.0) u = 1e-12;
    xs.push_back(mu - beta * std::log(-std::log(u)));
  }
  return xs;
}

std::vector<double> exponential_sample(double rate, std::size_t n,
                                       std::uint64_t seed) {
  rng::XorShift64Star g(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(-std::log(1.0 - rng::uniform01(g)) / rate);
  }
  return xs;
}

// --- GumbelFit basics -----------------------------------------------------------

TEST(Gumbel, CdfAtLocationIsExpMinusOne) {
  const GumbelFit fit{10.0, 2.0};
  EXPECT_NEAR(fit.cdf(10.0), std::exp(-1.0), 1e-12);
}

TEST(Gumbel, QuantileInvertsdCdf) {
  const GumbelFit fit{100.0, 7.0};
  for (const double p : {0.5, 0.1, 1e-3, 1e-6}) {
    const double x = fit.quantile_exceedance(p);
    EXPECT_NEAR(fit.cdf(x), 1.0 - p, 1e-9);
  }
}

TEST(Gumbel, QuantileMonotoneInExceedance) {
  const GumbelFit fit{100.0, 7.0};
  EXPECT_LT(fit.quantile_exceedance(1e-3), fit.quantile_exceedance(1e-6));
  EXPECT_LT(fit.quantile_exceedance(1e-6), fit.quantile_exceedance(1e-12));
}

TEST(Gumbel, QuantileRejectsBadP) {
  const GumbelFit fit{0.0, 1.0};
  EXPECT_THROW((void)fit.quantile_exceedance(0.0), std::invalid_argument);
  EXPECT_THROW((void)fit.quantile_exceedance(1.0), std::invalid_argument);
}

// --- estimators recover known parameters -------------------------------------------

TEST(Gumbel, MomentsFitRecoversParameters) {
  const auto xs = gumbel_sample(1000.0, 50.0, 20'000, 17);
  const GumbelFit fit = fit_moments(xs);
  EXPECT_NEAR(fit.location, 1000.0, 5.0);
  EXPECT_NEAR(fit.scale, 50.0, 3.0);
}

TEST(Gumbel, PwmFitRecoversParameters) {
  const auto xs = gumbel_sample(1000.0, 50.0, 20'000, 19);
  const GumbelFit fit = fit_pwm(xs);
  EXPECT_NEAR(fit.location, 1000.0, 5.0);
  EXPECT_NEAR(fit.scale, 50.0, 3.0);
}

TEST(Gumbel, EstimatorsAgreeOnGumbelData) {
  const auto xs = gumbel_sample(500.0, 20.0, 10'000, 23);
  const GumbelFit a = fit_moments(xs);
  const GumbelFit b = fit_pwm(xs);
  EXPECT_NEAR(a.location, b.location, 3.0);
  EXPECT_NEAR(a.scale, b.scale, 2.0);
}

TEST(Gumbel, DegenerateConstantSampleHandled) {
  const std::vector<double> xs(100, 42.0);
  const GumbelFit fit = fit_pwm(xs);
  EXPECT_GT(fit.scale, 0.0);  // clamped, not zero/negative
  EXPECT_NEAR(fit.location, 42.0, 1.0);
}

// --- block maxima -----------------------------------------------------------------

TEST(BlockMaxima, TakesPerBlockMax) {
  const std::vector<double> xs{1, 5, 2, 9, 3, 4, 8, 7};
  const auto maxima = block_maxima(xs, 4);
  ASSERT_EQ(maxima.size(), 2u);
  EXPECT_DOUBLE_EQ(maxima[0], 9.0);
  EXPECT_DOUBLE_EQ(maxima[1], 8.0);
}

TEST(BlockMaxima, DropsTrailingPartialBlock) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_EQ(block_maxima(xs, 2).size(), 2u);
}

TEST(BlockMaxima, BlockOneIsIdentity) {
  const std::vector<double> xs{3, 1, 2};
  const auto maxima = block_maxima(xs, 1);
  EXPECT_EQ(maxima, xs);
}

// --- diagnostics ------------------------------------------------------------------

TEST(Diagnostics, KsSmallForCorrectModel) {
  const auto xs = gumbel_sample(100.0, 10.0, 5000, 29);
  const GumbelFit fit = fit_pwm(xs);
  EXPECT_LT(ks_distance(xs, fit), 0.03);
}

TEST(Diagnostics, KsLargeForWrongModel) {
  const auto xs = gumbel_sample(100.0, 10.0, 5000, 31);
  const GumbelFit wrong{200.0, 1.0};
  EXPECT_GT(ks_distance(xs, wrong), 0.5);
}

TEST(Diagnostics, CvTestAcceptsExponentialTail) {
  const auto xs = exponential_sample(0.1, 20'000, 37);
  const CvTestResult r = cv_test(xs, 0.7);
  EXPECT_NEAR(r.cv, 1.0, 0.05);
  EXPECT_TRUE(r.accepted);
}

TEST(Diagnostics, CvTestRejectsUniformTail) {
  // Uniform excesses have CV 1/sqrt(3) ~ 0.577: clearly rejected.
  rng::XorShift64Star g(41);
  std::vector<double> xs;
  for (int i = 0; i < 20'000; ++i) xs.push_back(rng::uniform01(g));
  const CvTestResult r = cv_test(xs, 0.5);
  EXPECT_LT(r.cv, 0.7);
  EXPECT_FALSE(r.accepted);
}

TEST(Diagnostics, RunsTestAcceptsIid) {
  // A 5% significance test rejects ~1 seed in 20; sample a few seeds and
  // require the typical (majority) outcome to be acceptance.
  int accepted = 0;
  for (const std::uint64_t seed : {43u, 44u, 45u, 46u, 47u}) {
    const auto xs = gumbel_sample(0.0, 1.0, 5000, seed);
    accepted += runs_test(xs).accepted ? 1 : 0;
  }
  EXPECT_GE(accepted, 4);
}

TEST(Diagnostics, RunsTestRejectsTrend) {
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(i);
  const RunsTestResult r = runs_test(xs);
  EXPECT_FALSE(r.accepted);
}

TEST(Diagnostics, RunsTestRejectsAlternation) {
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(i % 2 == 0 ? 0.0 : 10.0);
  const RunsTestResult r = runs_test(xs);
  EXPECT_FALSE(r.accepted);
  EXPECT_GT(r.z, 1.96);  // far more runs than expected
}

// --- end-to-end analyze --------------------------------------------------------------

TEST(Analyze, ProducesMonotoneCurveAboveObservations) {
  const auto xs = gumbel_sample(10'000.0, 200.0, 3000, 47);
  const MbptaResult r = analyze(xs);
  ASSERT_EQ(r.curve.size(), 5u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GT(r.curve[i].wcet_estimate, r.curve[i - 1].wcet_estimate);
  }
  // pWCET at 1e-12 must comfortably exceed every observation of a sample
  // this size.
  EXPECT_GT(r.curve[3].wcet_estimate, r.observed_max);
  EXPECT_EQ(r.maxima_used, 300u);
}

TEST(Analyze, RequiresEnoughSamples) {
  const std::vector<double> xs(5, 1.0);
  EXPECT_THROW((void)analyze(xs), std::invalid_argument);
}

TEST(Analyze, CustomProbabilities) {
  const auto xs = gumbel_sample(100.0, 5.0, 1000, 53);
  MbptaConfig cfg;
  cfg.probabilities = {1e-2, 1e-4};
  const MbptaResult r = analyze(xs, cfg);
  ASSERT_EQ(r.curve.size(), 2u);
  EXPECT_DOUBLE_EQ(r.curve[0].exceedance_probability, 1e-2);
}

TEST(Analyze, BlockSizeReducesMaxima) {
  const auto xs = gumbel_sample(100.0, 5.0, 1000, 59);
  MbptaConfig cfg;
  cfg.block_size = 20;
  const MbptaResult r = analyze(xs, cfg);
  EXPECT_EQ(r.maxima_used, 50u);
}

// --- POT (peaks over threshold) estimator ----------------------------------------------

TEST(Pot, RecoversExponentialTail) {
  const auto xs = exponential_sample(0.05, 20'000, 61);  // mean 20
  const PotFit fit = fit_pot(xs, 0.9);
  // Memorylessness: excesses over any threshold are Exp(0.05) again.
  EXPECT_NEAR(fit.mean_excess, 20.0, 1.0);
  EXPECT_NEAR(fit.exceedance_rate, 0.1, 0.01);
}

TEST(Pot, QuantileInvertsEmpirically) {
  const auto xs = exponential_sample(0.1, 50'000, 67);
  const PotFit fit = fit_pot(xs, 0.8);
  // pWCET at p = 0.01 should match the empirical 99th percentile.
  const double predicted = fit.quantile_exceedance(0.01);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double empirical = sorted[static_cast<std::size_t>(0.99 * 50'000)];
  EXPECT_NEAR(predicted / empirical, 1.0, 0.05);
}

TEST(Pot, MonotoneInExceedanceProbability) {
  const auto xs = exponential_sample(0.1, 5'000, 71);
  const PotFit fit = fit_pot(xs, 0.9);
  EXPECT_LT(fit.quantile_exceedance(1e-3), fit.quantile_exceedance(1e-6));
  EXPECT_LT(fit.quantile_exceedance(1e-6), fit.quantile_exceedance(1e-12));
}

TEST(Pot, AgreesWithGumbelOnGumbelData) {
  // Deep-tail estimates from the two standard MBPTA estimators should
  // land in the same ballpark on well-behaved data.
  const auto xs = gumbel_sample(10'000.0, 150.0, 20'000, 73);
  const PotFit pot = fit_pot(xs, 0.95);
  const GumbelFit gumbel = fit_pwm(xs);
  const double p = 1e-9;
  const double ratio =
      pot.quantile_exceedance(p) / gumbel.quantile_exceedance(p);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(Pot, RejectsBadInputs) {
  const auto xs = exponential_sample(0.1, 100, 79);
  EXPECT_THROW((void)fit_pot(xs, 0.0), std::invalid_argument);
  EXPECT_THROW((void)fit_pot(xs, 1.0), std::invalid_argument);
  const std::vector<double> tiny(10, 1.0);
  EXPECT_THROW((void)fit_pot(tiny, 0.9), std::invalid_argument);
  const PotFit fit = fit_pot(xs, 0.9);
  EXPECT_THROW((void)fit.quantile_exceedance(0.5), std::invalid_argument);
}

// --- tail convergence -----------------------------------------------------------

TEST(Convergence, StationaryGumbelSeriesConverges) {
  // 8192 iid Gumbel samples: prefix refits should agree, the deep-tail
  // estimate should have stopped moving, and the curve's run counts
  // must halve down to the floor and end with the full series.
  const auto xs = gumbel_sample(1000.0, 5.0, 8192, 21);
  const ConvergenceReport report = tail_convergence(xs);
  ASSERT_GE(report.curve.size(), 3u);
  EXPECT_EQ(report.curve.back().runs, xs.size());
  for (std::size_t i = 1; i < report.curve.size(); ++i) {
    EXPECT_LT(report.curve[i - 1].runs, report.curve[i].runs);
  }
  EXPECT_TRUE(report.converged)
      << "scale_cv=" << report.scale_cv
      << " pwcet_drift=" << report.pwcet_drift;
  EXPECT_LT(report.scale_cv, 0.05);
  EXPECT_LT(report.pwcet_drift, 0.02);
  EXPECT_DOUBLE_EQ(report.target_probability, 1e-15);
  // Every prefix pWCET sits above the prefix's own observations region.
  for (const ConvergencePoint& point : report.curve) {
    EXPECT_GT(point.pwcet, 1000.0);
    EXPECT_GT(point.scale, 0.0);
  }
}

TEST(Convergence, DriftingSeriesDoesNotConverge) {
  // A strong trend keeps moving the tail as runs accumulate: the last
  // doubling must still show drift, so converged stays false.
  auto xs = gumbel_sample(1000.0, 5.0, 1024, 33);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += static_cast<double>(i) * 2.0;
  }
  const ConvergenceReport report = tail_convergence(xs);
  EXPECT_FALSE(report.converged);
  EXPECT_GT(report.pwcet_drift + report.scale_cv, 0.02);
}

TEST(Convergence, ShortSeriesYieldsSinglePointNotConverged) {
  // Just enough for one analyze() but below the halving floor twice:
  // a one-point curve cannot claim convergence.
  const auto xs = gumbel_sample(1000.0, 5.0, 30, 5);
  MbptaConfig config;
  config.block_size = 10;
  const ConvergenceReport report = tail_convergence(xs, config);
  ASSERT_GE(report.curve.size(), 1u);
  EXPECT_EQ(report.curve.back().runs, xs.size());
  EXPECT_FALSE(report.converged);
}

TEST(Convergence, RecordEmitsMbptaKeys) {
  const auto xs = gumbel_sample(500.0, 2.0, 512, 9);
  const ConvergenceReport report = tail_convergence(xs);
  const metrics::Record record = report.record();
  EXPECT_EQ(record.at("mbpta.converged").scalar(),
            report.converged ? 1.0 : 0.0);
  EXPECT_DOUBLE_EQ(record.at("mbpta.scale_cv").scalar(), report.scale_cv);
  EXPECT_DOUBLE_EQ(record.at("mbpta.pwcet_drift").scalar(),
                   report.pwcet_drift);
  EXPECT_DOUBLE_EQ(record.at("mbpta.target_log10p").scalar(), -15.0);
  ASSERT_EQ(record.at("mbpta.curve_runs").size(), report.curve.size());
  ASSERT_EQ(record.at("mbpta.curve_pwcet").size(), report.curve.size());
  for (std::size_t i = 0; i < report.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(record.at("mbpta.curve_runs")[i],
                     static_cast<double>(report.curve[i].runs));
    EXPECT_DOUBLE_EQ(record.at("mbpta.curve_pwcet")[i],
                     report.curve[i].pwcet);
  }
}

}  // namespace
}  // namespace cbus::mbpta
