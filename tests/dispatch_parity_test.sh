#!/usr/bin/env bash
# Dispatch-parity check: the same campaigns run under --simd native (the
# configured ISA + batch credit engine), --simd scalar (engine with the
# portable kernels) and --simd off (the classic lane-major path, what a
# CBUS_SIMD=off build runs) must produce byte-identical output -- stdout,
# CSV and streaming JSON alike. This is the local half of the contract;
# the CI dispatch-parity leg repeats it across two separately configured
# builds (CBUS_SIMD=off vs the widest ISA) with cmp.
#
# Usage: dispatch_parity_test.sh CBUS_SIM SMOKE_EXP STREAM_EXP
set -euo pipefail

sim="$1"
smoke="$2"
stream="$3"

work="$(mktemp -d "${TMPDIR:-/tmp}/cbus-simd-XXXXXX")"
trap 'rm -rf "$work"' EXIT

for mode in native scalar off; do
  dir="$work/$mode"
  mkdir "$dir"
  cd "$dir"
  # Threads x batch exercises the sliced engine path; batch 4 with 5
  # runs also covers the tail stripe (5 % 4 != 0).
  "$sim" --experiment "$smoke" --simd "$mode" --threads 2 --batch 4 \
    > stdout_smoke.txt
  "$sim" --experiment "$stream" --simd "$mode" --threads 2 \
    > stdout_stream.txt
done

for mode in scalar off; do
  for f in stdout_smoke.txt smoke.csv stdout_stream.txt stream_shard.json
  do
    if ! cmp -s "$work/native/$f" "$work/$mode/$f"; then
      echo "FAIL: $f differs between --simd native and --simd $mode"
      diff "$work/native/$f" "$work/$mode/$f" | head -20
      exit 1
    fi
  done
  echo "ok: --simd $mode byte-identical to native"
done

echo "PASS"
