// Experiment subsystem tests: format parsing (good and bad inputs),
// sweep expansion, thread-count-invariant determinism and golden sink
// output.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "exp/sinks.hpp"
#include "metrics/probes.hpp"
#include "metrics/record.hpp"

namespace cbus::exp {
namespace {

[[nodiscard]] ExperimentSpec parse(const std::string& text) {
  std::istringstream in(text);
  return parse_experiment(in);
}

/// Expect parse_experiment to throw with both fragments in the message.
void expect_parse_error(const std::string& text, const std::string& frag_a,
                        const std::string& frag_b = "") {
  try {
    (void)parse(text);
    FAIL() << "should have thrown for: " << text;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(frag_a), std::string::npos) << what;
    if (!frag_b.empty()) {
      EXPECT_NE(what.find(frag_b), std::string::npos) << what;
    }
  }
}

// --- format parsing ---------------------------------------------------------

TEST(ExperimentFormat, ParsesFullExample) {
  const ExperimentSpec spec = parse(
      "# a comment\n"
      "name = my-study\n"
      "scenario = corun\n"
      "kernel = tblook\n"
      "core1 = stream\n"
      "core2 = stream:4\n"
      "core3 = matrix\n"
      "sweep arbiter = rr tdma rp\n"
      "sweep cores = 2 4\n"
      "setup = hcba\n"
      "runs = 12\n"
      "seed = 0xBEEF\n"
      "max_cycles = 1000000\n"
      "pwcet = on\n"
      "summary = off\n"
      "threads = 3\n"
      "csv = out.csv\n"
      "json = -\n");
  EXPECT_EQ(spec.name, "my-study");
  EXPECT_EQ(spec.scenario, "corun");
  EXPECT_EQ(spec.kernel, "tblook");
  ASSERT_EQ(spec.corunners.size(), 3u);
  EXPECT_EQ(spec.corunners.at(1).kind, WorkloadSpec::Kind::kStream);
  EXPECT_EQ(spec.corunners.at(1).gap, 0u);
  EXPECT_EQ(spec.corunners.at(2).gap, 4u);
  EXPECT_EQ(spec.corunners.at(3).kind, WorkloadSpec::Kind::kKernel);
  EXPECT_EQ(spec.corunners.at(3).kernel, "matrix");
  ASSERT_EQ(spec.sweeps.size(), 2u);
  EXPECT_EQ(spec.sweeps[0].key, "arbiter");
  EXPECT_EQ(spec.sweeps[0].values,
            (std::vector<std::string>{"rr", "tdma", "rp"}));
  EXPECT_EQ(spec.sweeps[1].key, "cores");
  EXPECT_EQ(spec.runs, 12u);
  EXPECT_EQ(spec.seed, 0xBEEFu);
  EXPECT_EQ(spec.max_cycles, 1'000'000u);
  EXPECT_TRUE(spec.pwcet);
  EXPECT_FALSE(spec.summary);
  EXPECT_EQ(spec.threads, 3u);
  EXPECT_EQ(spec.csv_path, "out.csv");
  EXPECT_EQ(spec.json_path, "-");
  ASSERT_EQ(spec.platform_keys.size(), 1u);
  EXPECT_EQ(spec.platform_keys[0].first, "setup");
  EXPECT_EQ(spec.platform_keys[0].second, "hcba");
}

TEST(ExperimentFormat, Core0IsTheKernelAlias) {
  const ExperimentSpec spec = parse("core0 = cacheb\n");
  EXPECT_EQ(spec.kernel, "cacheb");
  EXPECT_TRUE(spec.corunners.empty());
}

TEST(ExperimentFormat, PlatformKeyLastWriteWins) {
  const ExperimentSpec spec = parse("cores = 2\ncores = 8\n");
  ASSERT_EQ(spec.platform_keys.size(), 1u);
  EXPECT_EQ(spec.platform_keys[0].second, "8");
}

TEST(ExperimentFormat, RejectsUnknownKeyWithLineNumber) {
  expect_parse_error("runs = 3\nbogus = 1\n", "line 2", "bogus");
}

TEST(ExperimentFormat, ParsesBatchKey) {
  EXPECT_EQ(parse("").batch, 1u);  // default: one machine at a time
  EXPECT_EQ(parse("batch = 16\n").batch, 16u);
}

TEST(ExperimentFormat, RejectsBadValues) {
  expect_parse_error("runs = zero\n", "bad number", "runs");
  expect_parse_error("runs = 0\n", "runs must be positive");
  expect_parse_error("batch = 0\n", "batch must be positive");
  expect_parse_error("batch = x\n", "bad number", "batch");
  expect_parse_error("runs = -3\n", "bad number");
  expect_parse_error("runs = 3x\n", "trailing characters");
  expect_parse_error("seed = 99999999999999999999999\n", "out of range");
  // uint32 fields must reject (not truncate) values above 2^32-1:
  // runs = 2^32+1 would otherwise silently become 1.
  expect_parse_error("runs = 4294967297\n", "out of range");
  expect_parse_error("threads = 4294967296\n", "out of range");
  expect_parse_error("core1 = stream:4294967297\n", "bad stream gap",
                     "line 1");
  expect_parse_error("pwcet = maybe\n", "on/off");
  expect_parse_error("kernel = bogus\n", "unknown kernel", "known:");
  expect_parse_error("scenario = chaos\n", "unknown scenario");
  expect_parse_error("core1 = warp\n", "unknown workload");
  expect_parse_error("core0 = stream\n", "must be a kernel");
  expect_parse_error("core99 = stream\n", "core index out of range");
  expect_parse_error("runs 3\n", "expected 'key = value'");
}

TEST(ExperimentFormat, RejectsBadSweeps) {
  expect_parse_error("sweep runs = 1 2\n", "not sweepable");
  expect_parse_error("sweep kernel = matrix\nsweep kernel = tblook\n",
                     "duplicate sweep axis");
  expect_parse_error("sweep kernel = matrix warp\n", "unknown kernel");
  expect_parse_error("sweep scenario = iso chaos\n", "unknown scenario");
}

TEST(ExperimentFormat, ParseWorkloadVariants) {
  EXPECT_EQ(parse_workload("idle").kind, WorkloadSpec::Kind::kIdle);
  EXPECT_EQ(parse_workload("stream").gap, 0u);
  EXPECT_EQ(parse_workload("stream:7").gap, 7u);
  EXPECT_EQ(parse_workload("rspeed").kernel, "rspeed");
  EXPECT_THROW((void)parse_workload("stream:x"), std::invalid_argument);
  EXPECT_THROW((void)parse_workload(""), std::invalid_argument);
}

TEST(ExperimentFormat, MissingFileThrows) {
  EXPECT_THROW((void)load_experiment("/nonexistent/x.exp"),
               std::invalid_argument);
}

// --- metrics directive ------------------------------------------------------

TEST(MetricsDirective, ParsesListAndAll) {
  const ExperimentSpec spec = parse(
      "metrics = fair.jain_occupancy,fair.jain_grants "
      "bus.occupancy_share[2]\n");
  EXPECT_EQ(spec.metrics,
            (std::vector<std::string>{"fair.jain_occupancy",
                                      "fair.jain_grants",
                                      "bus.occupancy_share[2]"}));

  const ExperimentSpec all = parse("metrics = all\n");
  EXPECT_EQ(all.metrics.size(), metrics::metric_catalog().size());
  EXPECT_EQ(all.metrics.front(), "tua.cycles");
}

TEST(MetricsDirective, RejectsBadSelections) {
  expect_parse_error("metrics = fair.bogus\n", "unknown metric",
                     "--list metrics");
  expect_parse_error("metrics = tua.cycles[1]\n", "scalar metric");
  expect_parse_error("metrics = bus.occupancy_share[x]\n",
                     "bad element index");
  expect_parse_error("metrics = bus.occupancy_share[2\n", "malformed");
  // The line number names the offending directive.
  expect_parse_error("runs = 3\nmetrics = nope\n", "line 2");
}

TEST(MetricsDirective, ParseMetricSelectionIsReusable) {
  // The CLI --metrics flag shares this helper.
  EXPECT_EQ(parse_metric_selection("tua.cycles, bus.utilization"),
            (std::vector<std::string>{"tua.cycles", "bus.utilization"}));
  EXPECT_THROW((void)parse_metric_selection(""), std::invalid_argument);
}

// --- sweep expansion --------------------------------------------------------

TEST(SweepExpansion, CartesianProductLastAxisFastest) {
  const ExperimentSpec spec = parse(
      "sweep kernel = matrix tblook\n"
      "sweep setup = rp cba hcba\n"
      "scenario = iso\n");
  const std::vector<Job> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].kernel, "matrix");
  EXPECT_EQ(jobs[0].axes[1].second, "rp");
  EXPECT_EQ(jobs[1].axes[1].second, "cba");   // setup (last axis) fastest
  EXPECT_EQ(jobs[2].axes[1].second, "hcba");
  EXPECT_EQ(jobs[3].kernel, "tblook");
  EXPECT_EQ(jobs[3].axes[1].second, "rp");
  // Axis overrides reached the platform config.
  EXPECT_FALSE(jobs[0].config.cba.has_value());
  EXPECT_TRUE(jobs[1].config.cba.has_value());
}

TEST(SweepExpansion, NoSweepsMakesOneJob) {
  const ExperimentSpec spec = parse("scenario = iso\n");
  EXPECT_EQ(expand(spec).size(), 1u);
}

TEST(SweepExpansion, PerJobSeedsAreDistinctAndStable) {
  const ExperimentSpec spec = parse("sweep setup = rp cba hcba\n");
  const auto a = expand(spec);
  const auto b = expand(spec);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_NE(a[0].seed, a[1].seed);
  EXPECT_NE(a[1].seed, a[2].seed);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(SweepExpansion, ConScenarioImpliesWcetMode) {
  const ExperimentSpec spec = parse("scenario = con\nsetup = cba\n");
  const auto jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].config.mode, PlatformMode::kWcetEstimation);
}

TEST(SweepExpansion, CorunRejectsAssignmentBeyondCoreCount) {
  const ExperimentSpec bad = parse(
      "scenario = corun\ncores = 2\ncore3 = stream\nkernel = canrdr\n");
  try {
    (void)expand(bad);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("core3"), std::string::npos)
        << e.what();
  }
  // Under a cores sweep, the bound is the largest sweep point: core3
  // runs in the cores=4 jobs, so dropping it at cores=2 is by design...
  const ExperimentSpec swept = parse(
      "scenario = corun\nsweep cores = 2 4\ncore3 = stream\n"
      "kernel = canrdr\n");
  EXPECT_EQ(expand(swept).size(), 2u);
  // ... but an assignment above EVERY sweep point would never run.
  const ExperimentSpec never = parse(
      "scenario = corun\nsweep cores = 2 4\ncore7 = stream\n"
      "kernel = canrdr\n");
  EXPECT_THROW((void)expand(never), std::invalid_argument);
}

TEST(SweepExpansion, ConScenarioRejectsDeclaredOperationMode) {
  // The conflict is caught in any layer, including a base config text
  // (the --config file route).
  ExperimentSpec with_text = parse("scenario = con\n");
  with_text.platform_text = "mode = operation\n";
  EXPECT_THROW((void)expand(with_text), std::invalid_argument);
  // `con` implies wcet mode; a declared operation mode is a conflict the
  // user must resolve, not something to silently override.
  const ExperimentSpec plain = parse("scenario = con\nmode = operation\n");
  EXPECT_THROW((void)expand(plain), std::invalid_argument);
  const ExperimentSpec swept =
      parse("scenario = con\nsweep mode = operation wcet\n");
  EXPECT_THROW((void)expand(swept), std::invalid_argument);
  const ExperimentSpec ok = parse("scenario = con\nmode = wcet\n");
  EXPECT_EQ(expand(ok).size(), 1u);
}

TEST(SweepExpansion, InvalidCombinationNamesTheSweepPoint) {
  const ExperimentSpec spec =
      parse("setup = hcba\nsweep cores = 4 1\nscenario = iso\n");
  try {
    (void)expand(spec);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("job 1"), std::string::npos) << what;
    EXPECT_NE(what.find("cores=1"), std::string::npos) << what;
  }
}

// --- execution determinism --------------------------------------------------

[[nodiscard]] std::string csv_of(const ExperimentSpec& spec,
                                 const ExperimentResult& result) {
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(spec, result.jobs, out);
  return out.str();
}

TEST(Runner, SameCsvAtOneAndFourThreads) {
  const ExperimentSpec spec = parse(
      "scenario = con\n"
      "kernel = canrdr\n"
      "sweep setup = rp cba hcba\n"
      "cores = 2\n"
      "runs = 3\n");
  const auto serial = run_experiment(spec, /*threads=*/1);
  const auto parallel = run_experiment(spec, /*threads=*/4);
  ASSERT_EQ(serial.jobs.size(), 3u);
  EXPECT_EQ(serial.failed_jobs(), 0u);
  const std::string a = csv_of(spec, serial);
  EXPECT_EQ(a, csv_of(spec, parallel));
  EXPECT_NE(a.find("canrdr"), std::string::npos);
}

TEST(Runner, BatchedExecutionIsByteIdenticalToSerial) {
  // The tentpole determinism contract: the same experiment must produce
  // byte-identical CSV and JSON for every (batch, threads) combination,
  // including `metrics = all` (every probe key, per-master vectors and
  // the maxmin infinity contract included).
  const std::string text =
      "scenario = con\n"
      "kernel = canrdr\n"
      "sweep setup = rp cba\n"
      "cores = 2\n"
      "runs = 5\n"
      "metrics = all\n";
  const ExperimentSpec serial_spec = parse(text);
  const auto serial = run_experiment(serial_spec, /*threads=*/1);
  EXPECT_EQ(serial.failed_jobs(), 0u);
  std::ostringstream serial_csv, serial_json;
  make_sink(SinkKind::kCsv)->write(serial_spec, serial.jobs, serial_csv);
  make_sink(SinkKind::kJson)->write(serial_spec, serial.jobs, serial_json);

  for (const std::uint32_t batch : {2u, 8u}) {
    for (const std::uint32_t threads : {1u, 4u}) {
      ExperimentSpec spec = parse(text);
      spec.batch = batch;
      const auto batched = run_experiment(spec, threads);
      std::ostringstream csv, json;
      make_sink(SinkKind::kCsv)->write(spec, batched.jobs, csv);
      make_sink(SinkKind::kJson)->write(spec, batched.jobs, json);
      EXPECT_EQ(csv.str(), serial_csv.str())
          << "batch=" << batch << " threads=" << threads;
      EXPECT_EQ(json.str(), serial_json.str())
          << "batch=" << batch << " threads=" << threads;
    }
  }
}

TEST(Runner, BatchedCorunMatchesSerial) {
  // Co-runner factories (streams and idle fillers) through the batched
  // path: a batch of 4 replicas must reproduce the one-at-a-time CSV.
  const std::string text =
      "scenario = corun\n"
      "kernel = canrdr\n"
      "core1 = stream:2\n"
      "core3 = stream\n"
      "setup = cba\n"
      "runs = 3\n"
      "metrics = bus.occupancy_share,credit.underflows\n";
  const ExperimentSpec spec = parse(text);
  const auto serial = run_experiment(spec, 1);
  ExperimentSpec batched_spec = parse(text);
  batched_spec.batch = 4;
  const auto batched = run_experiment(batched_spec, 2);
  ASSERT_EQ(serial.failed_jobs(), 0u);
  EXPECT_EQ(csv_of(spec, serial), csv_of(batched_spec, batched));
}

TEST(Runner, BatchSlicesShareThePoolAcrossJobs) {
  // One job, many runs: slices of the single job must occupy all
  // workers (the pre-batch runner clamped threads to the job count,
  // which made this spec single-threaded); output stays identical.
  ExperimentSpec spec = parse(
      "scenario = iso\nkernel = canrdr\ncores = 2\nruns = 8\n");
  spec.batch = 2;
  const auto wide = run_experiment(spec, 4);
  const auto narrow = run_experiment(spec, 1);
  ASSERT_EQ(wide.failed_jobs(), 0u);
  EXPECT_EQ(csv_of(spec, wide), csv_of(spec, narrow));
  EXPECT_EQ(wide.jobs[0].campaign.exec_time().count(), 8u);
}

TEST(Runner, FailedJobStaysAJobFailureUnderBatching) {
  // A per-slice failure must surface as the job's error (not a throw),
  // identically for any batch/thread count.
  ExperimentSpec spec = parse("scenario = con\nruns = 4\n");
  spec.batch = 2;
  std::vector<Job> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 1u);
  jobs[0].config.mode = PlatformMode::kOperation;
  const JobResult r = run_job(spec, jobs[0]);
  EXPECT_TRUE(r.failed());
  EXPECT_NE(r.error.find("WCET"), std::string::npos);
}

TEST(Runner, CorunAssignsCorunnersAndIdleGaps) {
  // core2 unassigned between core1 and core3: it must idle, not shift
  // core3's workload down a master.
  const ExperimentSpec spec = parse(
      "scenario = corun\n"
      "kernel = canrdr\n"
      "core1 = stream\n"
      "core3 = stream\n"
      "runs = 2\n");
  const auto result = run_experiment(spec, 1);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.failed_jobs(), 0u);
  EXPECT_EQ(result.jobs[0].campaign.exec_time().count(), 2u);
}

TEST(Runner, FailedJobIsReportedNotThrown) {
  // operation mode + con is impossible; the runner must record the error.
  ExperimentSpec spec = parse("scenario = con\nruns = 1\n");
  std::vector<Job> jobs = expand(spec);
  ASSERT_EQ(jobs.size(), 1u);
  jobs[0].config.mode = PlatformMode::kOperation;
  const JobResult r = run_job(spec, jobs[0]);
  EXPECT_TRUE(r.failed());
  EXPECT_NE(r.error.find("WCET"), std::string::npos);
}

TEST(Runner, PwcetProducesCurve) {
  const ExperimentSpec spec = parse(
      "scenario = iso\n"
      "kernel = canrdr\n"
      "cores = 2\n"
      "runs = 30\n"
      "pwcet = on\n");
  const auto result = run_experiment(spec, 2);
  ASSERT_EQ(result.jobs.size(), 1u);
  ASSERT_TRUE(result.jobs[0].mbpta.has_value()) << result.jobs[0].mbpta_error;
  EXPECT_FALSE(result.jobs[0].mbpta->curve.empty());
}

// --- golden sink output -----------------------------------------------------

/// A hand-built two-job result set with exactly known numbers. Job 0's
/// per-run records carry the TuA time, the bus utilisation and a
/// per-master occupancy vector plus a fairness scalar, exactly as the
/// standard probes would emit them.
[[nodiscard]] std::vector<JobResult> golden_results() {
  std::vector<JobResult> results(2);
  results[0].index = 0;
  results[0].axes = {{"setup", "rp"}};
  results[0].kernel = "matrix";
  results[0].scenario = "con";
  results[0].seed = 42;
  results[0].campaign.aggregate = metrics::Aggregator(
      metrics::Aggregator::Options{.retain_raw = true});
  for (const double x : {100.0, 110.0, 120.0}) {
    metrics::Record record;
    record.set("tua.cycles", x);
    record.set("bus.utilization", 0.5);
    record.set("bus.occupancy_share",
               std::vector<double>{0.25, 0.5, 0.125});
    // 0.25 / 0.5 / 0.75: exact in binary, so the aggregated mean (0.5)
    // and stddev (0.25) are exact too and safe to golden-test.
    record.set("fair.jain_occupancy", (x - 100.0) / 40.0 + 0.25);
    results[0].campaign.aggregate.add(record);
  }
  results[1].index = 1;
  results[1].axes = {{"setup", "cba"}};
  results[1].kernel = "matrix";
  results[1].scenario = "con";
  results[1].seed = 43;
  results[1].error = "boom";
  return results;
}

[[nodiscard]] ExperimentSpec golden_spec() {
  ExperimentSpec spec = parse("name = golden\nsweep setup = rp cba\n");
  spec.runs = 3;
  spec.seed = 7;
  return spec;
}

TEST(Sinks, CsvGolden) {
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(golden_spec(), golden_results(), out);
  EXPECT_EQ(out.str(),
            "job,kernel,scenario,setup,seed,run,cycles\n"
            "0,matrix,con,rp,42,0,100\n"
            "0,matrix,con,rp,42,1,110\n"
            "0,matrix,con,rp,42,2,120\n");  // failed job 1 has no rows
}

TEST(Sinks, JsonGolden) {
  std::ostringstream out;
  make_sink(SinkKind::kJson)->write(golden_spec(), golden_results(), out);
  const std::string expected =
      "{\n"
      "  \"experiment\": \"golden\",\n"
      "  \"runs_per_job\": 3,\n"
      "  \"base_seed\": 7,\n"
      "  \"jobs\": [\n"
      "    {\n"
      "      \"job\": 0,\n"
      "      \"kernel\": \"matrix\",\n"
      "      \"scenario\": \"con\",\n"
      "      \"axes\": {\"setup\": \"rp\"},\n"
      "      \"seed\": 42,\n"
      "      \"mean\": 110,\n"
      "      \"min\": 100,\n"
      "      \"max\": 120,\n"
      "      \"ci95\": 11.316065276116667,\n"
      "      \"bus_util\": 0.5,\n"
      "      \"unfinished\": 0,\n"
      "      \"credit_underflows\": 0,\n"
      "      \"samples\": [100, 110, 120]\n"
      "    },\n"
      "    {\n"
      "      \"job\": 1,\n"
      "      \"kernel\": \"matrix\",\n"
      "      \"scenario\": \"con\",\n"
      "      \"axes\": {\"setup\": \"cba\"},\n"
      "      \"seed\": 43,\n"
      "      \"error\": \"boom\"\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Sinks, SummaryReportsFailures) {
  std::ostringstream out;
  make_sink(SinkKind::kSummary)->write(golden_spec(), golden_results(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("1 FAILED"), std::string::npos) << text;
  EXPECT_NE(text.find("ERROR: boom"), std::string::npos) << text;
  EXPECT_NE(text.find("mean=110"), std::string::npos) << text;
}

TEST(Sinks, PwcetColumnsAppearWhenEnabled) {
  ExperimentSpec spec = golden_spec();
  spec.pwcet = true;
  auto results = golden_results();
  results[0].mbpta.emplace();
  results[0].mbpta->fit.location = 118.0;
  results[0].mbpta->fit.scale = 2.0;
  results[0].mbpta->curve = {{1e-9, 159.4}, {1e-12, 173.2}};
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(spec, results, out);
  EXPECT_EQ(out.str(),
            "job,kernel,scenario,setup,seed,run,cycles,"
            "gumbel_location,gumbel_scale,pwcet_1e-9,pwcet_1e-12\n"
            "0,matrix,con,rp,42,0,100,118,2,159.4,173.2\n"
            "0,matrix,con,rp,42,1,110,118,2,159.4,173.2\n"
            "0,matrix,con,rp,42,2,120,118,2,159.4,173.2\n");
}

TEST(Sinks, CsvMetricColumnsGolden) {
  // A bare per-master key expands to one column per element; scalars get
  // one column; per-run values land on the matching rows.
  ExperimentSpec spec = golden_spec();
  spec.metrics = {"fair.jain_occupancy", "bus.occupancy_share"};
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(spec, golden_results(), out);
  EXPECT_EQ(out.str(),
            "job,kernel,scenario,setup,seed,run,cycles,"
            "fair.jain_occupancy,bus.occupancy_share[0],"
            "bus.occupancy_share[1],bus.occupancy_share[2]\n"
            "0,matrix,con,rp,42,0,100,0.25,0.25,0.5,0.125\n"
            "0,matrix,con,rp,42,1,110,0.5,0.25,0.5,0.125\n"
            "0,matrix,con,rp,42,2,120,0.75,0.25,0.5,0.125\n");
}

TEST(Sinks, CsvPadsNarrowJobsWithEmptyCells) {
  // Heterogeneous sweeps (a `cores` axis) give jobs different per-master
  // widths. Bare per-master keys expand to the WIDEST job's width; the
  // narrower job must render explicitly empty cells for the elements it
  // never had -- never stale or garbage values -- and an explicit
  // out-of-range element reference must pad every row of that job.
  ExperimentSpec spec = golden_spec();
  spec.metrics = {"bus.occupancy_share", "bus.occupancy_share[3]"};
  std::vector<JobResult> results(2);
  results[0].index = 0;
  results[0].axes = {{"setup", "rp"}};
  results[0].kernel = "matrix";
  results[0].scenario = "con";
  results[0].seed = 42;
  results[0].campaign.aggregate = metrics::Aggregator(
      metrics::Aggregator::Options{.retain_raw = true});
  for (const double x : {100.0, 110.0}) {
    metrics::Record record;
    record.set("tua.cycles", x);
    record.set("bus.occupancy_share", std::vector<double>{0.5, 0.25});
    results[0].campaign.aggregate.add(record);
  }
  results[1].index = 1;
  results[1].axes = {{"setup", "cba"}};
  results[1].kernel = "matrix";
  results[1].scenario = "con";
  results[1].seed = 43;
  results[1].campaign.aggregate = metrics::Aggregator(
      metrics::Aggregator::Options{.retain_raw = true});
  {
    metrics::Record record;
    record.set("tua.cycles", 200.0);
    record.set("bus.occupancy_share",
               std::vector<double>{0.125, 0.25, 0.0625, 0.5});
    results[1].campaign.aggregate.add(record);
  }
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(spec, results, out);
  EXPECT_EQ(out.str(),
            "job,kernel,scenario,setup,seed,run,cycles,"
            "bus.occupancy_share[0],bus.occupancy_share[1],"
            "bus.occupancy_share[2],bus.occupancy_share[3],"
            "bus.occupancy_share[3]\n"
            "0,matrix,con,rp,42,0,100,0.5,0.25,,,\n"
            "0,matrix,con,rp,42,1,110,0.5,0.25,,,\n"
            "1,matrix,con,cba,43,0,200,0.125,0.25,0.0625,0.5,0.5\n");
}

TEST(Sinks, CsvPadsHeterogeneousCoresSweepEndToEnd) {
  // The same contract through a real `cores` sweep: every row has the
  // header's column count, and the narrow job's high-master cells are
  // empty while the wide job's are not.
  ExperimentSpec spec = parse(
      "scenario = con\n"
      "kernel = canrdr\n"
      "sweep cores = 2 4\n"
      "runs = 2\n"
      "metrics = bus.occupancy_share\n");
  spec.batch = 2;
  const auto result = run_experiment(spec, 1);
  ASSERT_EQ(result.failed_jobs(), 0u);
  const std::string csv = csv_of(spec, result);
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  const auto width = commas(line);
  EXPECT_NE(line.find("bus.occupancy_share[3]"), std::string::npos);
  std::size_t narrow_rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(commas(line), width) << line;
    if (line.rfind("0,", 0) == 0) {
      // cores=2 job: elements [2] and [3] never existed -> empty cells.
      EXPECT_EQ(line.substr(line.size() - 2), ",,") << line;
      ++narrow_rows;
    } else {
      EXPECT_NE(line.substr(line.size() - 2), ",,") << line;
    }
  }
  EXPECT_EQ(narrow_rows, 2u);
}

TEST(Sinks, CsvMetricElementSelection) {
  ExperimentSpec spec = golden_spec();
  spec.metrics = {"bus.occupancy_share[1]"};
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(spec, golden_results(), out);
  EXPECT_EQ(out.str(),
            "job,kernel,scenario,setup,seed,run,cycles,"
            "bus.occupancy_share[1]\n"
            "0,matrix,con,rp,42,0,100,0.5\n"
            "0,matrix,con,rp,42,1,110,0.5\n"
            "0,matrix,con,rp,42,2,120,0.5\n");
}

TEST(Sinks, JsonMetricsSection) {
  ExperimentSpec spec = golden_spec();
  spec.metrics = {"fair.jain_occupancy", "bus.occupancy_share[2]"};
  std::ostringstream out;
  make_sink(SinkKind::kJson)->write(spec, golden_results(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"fair.jain_occupancy\": {\"mean\": 0.5, "
                      "\"min\": 0.25, \"max\": 0.75, \"stddev\": 0.25}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\"bus.occupancy_share[2]\": {\"mean\": 0.125, "
                      "\"min\": 0.125, \"max\": 0.125, \"stddev\": 0}"),
            std::string::npos)
      << text;
  // The failed job carries no metrics object.
  EXPECT_EQ(text.find("\"metrics\""), text.rfind("\"metrics\""));
}

TEST(Sinks, NonFiniteMetricValuesRenderAsJsonNull) {
  // fair.maxmin_* is +infinity by contract when a master is starved
  // (e.g. isolation runs with idle masters); JSON has no inf/nan
  // literals, so those stats must render as null, and the aggregate of
  // an all-inf series (a NaN mean) must too.
  ExperimentSpec spec = golden_spec();
  spec.metrics = {"fair.maxmin_grants"};
  auto results = golden_results();
  results[1].error.clear();
  results[1].campaign.aggregate = metrics::Aggregator(
      metrics::Aggregator::Options{.retain_raw = true});
  for (const double x : {50.0, 60.0}) {
    metrics::Record record;
    record.set("tua.cycles", x);
    record.set("fair.maxmin_grants",
               std::numeric_limits<double>::infinity());
    results[1].campaign.aggregate.add(record);
  }
  std::ostringstream out;
  make_sink(SinkKind::kJson)->write(spec, results, out);
  EXPECT_NE(out.str().find("\"fair.maxmin_grants\": {\"mean\": null, "
                           "\"min\": null, \"max\": null, "
                           "\"stddev\": null}"),
            std::string::npos)
      << out.str();
  EXPECT_EQ(out.str().find("inf"), std::string::npos) << out.str();
}

TEST(Sinks, IsolationWithAllMetricsProducesParseableJson) {
  // End to end: `metrics = all` under isolation hits the maxmin
  // infinity contract on the three idle masters; every JSON number must
  // stay finite or null (no bare inf/nan tokens).
  const ExperimentSpec spec = parse(
      "scenario = iso\nkernel = canrdr\nruns = 2\nmetrics = all\n");
  const auto result = run_experiment(spec, 1);
  ASSERT_EQ(result.failed_jobs(), 0u);
  std::ostringstream out;
  make_sink(SinkKind::kJson)->write(spec, result.jobs, out);
  EXPECT_EQ(out.str().find("inf"), std::string::npos);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
  EXPECT_NE(out.str().find("\"fair.maxmin_grants\": {\"mean\": null"),
            std::string::npos)
      << out.str();
}

// --- fairness metrics end to end --------------------------------------------

TEST(MetricsPipeline, RrVsCbaOccupancyFairnessGap) {
  // The paper's central claim, reproduced through the whole pipeline:
  // round-robin equalises request counts, so grant fairness is high while
  // occupancy fairness collapses (short TuA requests vs long streaming
  // transfers); CBA equalises occupancy cycles instead.
  const ExperimentSpec spec = parse(
      "name = fairgap\n"
      "scenario = corun\n"
      "kernel = matrix\n"
      "core1 = stream\n"
      "core2 = stream\n"
      "core3 = stream\n"
      "arbiter = rr\n"
      "cores = 4\n"
      "sweep setup = rp cba\n"
      "runs = 4\n"
      "metrics = fair.jain_occupancy,fair.jain_grants,"
      "bus.occupancy_share\n");
  const auto result = run_experiment(spec, 2);
  ASSERT_EQ(result.jobs.size(), 2u);
  ASSERT_EQ(result.failed_jobs(), 0u);

  const auto jain = [&](std::size_t job, std::string_view key) {
    return result.jobs[job].campaign.aggregate.element_stats(key).mean();
  };
  const double rr_occ = jain(0, "fair.jain_occupancy");
  const double rr_grants = jain(0, "fair.jain_grants");
  const double cba_occ = jain(1, "fair.jain_occupancy");
  // Plain RR: request-count fairness exceeds occupancy fairness (the
  // short matrix transactions pay in cycles for their equal grants).
  EXPECT_GT(rr_grants, rr_occ + 0.02);
  // CBA closes the occupancy gap RR leaves open (~0.93 -> ~0.975 here).
  EXPECT_GT(cba_occ, rr_occ + 0.03);

  // The selected per-master and fairness keys become CSV columns.
  std::ostringstream out;
  make_sink(SinkKind::kCsv)->write(spec, result.jobs, out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "job,kernel,scenario,setup,seed,run,cycles,"
            "fair.jain_occupancy,fair.jain_grants,bus.occupancy_share[0],"
            "bus.occupancy_share[1],bus.occupancy_share[2],"
            "bus.occupancy_share[3]");
}

TEST(MetricsPipeline, SameOutputsAtOneAndFourThreadsWithMetrics) {
  const ExperimentSpec spec = parse(
      "scenario = con\n"
      "kernel = canrdr\n"
      "sweep setup = rp cba\n"
      "runs = 3\n"
      "metrics = all\n");
  const auto serial = run_experiment(spec, 1);
  const auto parallel = run_experiment(spec, 4);
  EXPECT_EQ(serial.failed_jobs(), 0u);
  std::ostringstream csv_a, csv_b, json_a, json_b;
  make_sink(SinkKind::kCsv)->write(spec, serial.jobs, csv_a);
  make_sink(SinkKind::kCsv)->write(spec, parallel.jobs, csv_b);
  make_sink(SinkKind::kJson)->write(spec, serial.jobs, json_a);
  make_sink(SinkKind::kJson)->write(spec, parallel.jobs, json_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(json_a.str(), json_b.str());
  // `all` covers every catalog key; per-master ones appear indexed.
  EXPECT_NE(csv_a.str().find("bus.grant_share[3]"), std::string::npos);
  EXPECT_NE(csv_a.str().find("fair.maxmin_grants"), std::string::npos);
}

TEST(Sinks, JsonCarriesPwcetError) {
  ExperimentSpec spec = golden_spec();
  spec.pwcet = true;
  auto results = golden_results();
  results[0].mbpta_error = "too few samples";
  std::ostringstream out;
  make_sink(SinkKind::kJson)->write(spec, results, out);
  EXPECT_NE(out.str().find("\"pwcet_error\": \"too few samples\""),
            std::string::npos)
      << out.str();
}

TEST(Sinks, EmitOutputsHonoursStdoutDashes) {
  ExperimentSpec spec = golden_spec();
  spec.csv_path = "-";
  spec.summary = false;
  std::ostringstream out;
  emit_outputs(spec, golden_results(), out);
  EXPECT_EQ(out.str().rfind("job,kernel", 0), 0u);
}

}  // namespace
}  // namespace cbus::exp
