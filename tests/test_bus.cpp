// Bus-protocol tests: 1-cycle arbitration, non-split holds, overlapped
// re-arbitration (back-to-back transfers), per-master accounting, filter
// hook points. These timings are the foundation every experiment rests on,
// so they are pinned cycle by cycle here.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "bus/bus.hpp"
#include "bus/round_robin.hpp"
#include "sim/kernel.hpp"

namespace cbus::bus {
namespace {

/// Slave with a programmable hold time per request.
class FakeSlave final : public BusSlave {
 public:
  explicit FakeSlave(Cycle hold) : hold_(hold) {}

  Cycle begin_transaction(const BusRequest& request, Cycle now) override {
    begins.push_back({request.master, now});
    return hold_;
  }
  void complete_transaction(const BusRequest& request, Cycle now) override {
    completes.push_back({request.master, now});
  }

  Cycle hold_;
  std::vector<std::pair<MasterId, Cycle>> begins;
  std::vector<std::pair<MasterId, Cycle>> completes;
};

/// Master recording grant/complete callbacks.
class FakeMaster final : public BusMaster {
 public:
  void on_grant(const BusRequest&, Cycle now, Cycle hold) override {
    grants.push_back({now, hold});
  }
  void on_complete(const BusRequest&, Cycle now) override {
    completions.push_back(now);
  }
  std::vector<std::pair<Cycle, Cycle>> grants;
  std::vector<Cycle> completions;
};

/// Records the eligibility/credit callbacks the bus makes.
class SpyFilter final : public EligibilityFilter {
 public:
  std::uint32_t eligible(std::uint32_t pending, Cycle) override {
    ++eligible_calls;
    return pending & allow_mask;
  }
  void on_cycle(MasterId holder, Cycle) override {
    holders.push_back(holder);
  }
  void on_grant(MasterId master, Cycle) override {
    grants.push_back(master);
  }
  void reset() override {}

  std::uint32_t allow_mask = ~0u;
  int eligible_calls = 0;
  std::vector<MasterId> holders;
  std::vector<MasterId> grants;
};

struct BusHarness {
  explicit BusHarness(Cycle hold = 5, std::uint32_t n = 4,
                      bool overlapped = true)
      : slave(hold), arbiter(n), bus(BusConfig{n, overlapped}, arbiter, slave) {
    for (std::uint32_t m = 0; m < n; ++m) bus.connect_master(m, masters[m]);
    kernel.add(bus);
  }

  FakeSlave slave;
  RoundRobinArbiter arbiter;
  NonSplitBus bus;
  FakeMaster masters[8];
  sim::Kernel kernel;
};

// --- basic protocol timing ---------------------------------------------------

TEST(BusProtocol, SingleRequestTiming) {
  BusHarness h(5);
  // Request raised at cycle 0: arbitration during 0, transfer occupies
  // cycles 1..5, completion callback at the end of cycle 5.
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  h.kernel.run(10);

  ASSERT_EQ(h.slave.begins.size(), 1u);
  EXPECT_EQ(h.slave.begins[0].second, 1u);  // transfer starts at cycle 1
  ASSERT_EQ(h.masters[0].completions.size(), 1u);
  EXPECT_EQ(h.masters[0].completions[0], 5u);  // ends at end of cycle 5
}

TEST(BusProtocol, HoldOneCycle) {
  BusHarness h(1);
  BusRequest req;
  req.master = 2;
  h.bus.request(req, 0);
  h.kernel.run(5);
  ASSERT_EQ(h.masters[2].completions.size(), 1u);
  EXPECT_EQ(h.masters[2].completions[0], 1u);  // starts and ends at cycle 1
}

TEST(BusProtocol, GrantCallbackCarriesHold) {
  BusHarness h(28);
  BusRequest req;
  req.master = 1;
  h.bus.request(req, 0);
  h.kernel.run(2);
  ASSERT_EQ(h.masters[1].grants.size(), 1u);
  EXPECT_EQ(h.masters[1].grants[0].second, 28u);
}

TEST(BusProtocol, ForcedHoldBypassesSlave) {
  BusHarness h(5);
  BusRequest req;
  req.master = 0;
  req.forced_hold = 56;
  h.bus.request(req, 0);
  h.kernel.run(60);
  EXPECT_TRUE(h.slave.begins.empty());  // slave never consulted
  ASSERT_EQ(h.masters[0].completions.size(), 1u);
  EXPECT_EQ(h.masters[0].completions[0], 56u);
}

TEST(BusProtocol, BackToBackTransfersNoIdleGap) {
  BusHarness h(5);
  BusRequest a;
  a.master = 0;
  BusRequest b;
  b.master = 1;
  h.bus.request(a, 0);
  h.bus.request(b, 0);
  h.kernel.run(15);
  // a: cycles 1..5; overlapped re-arbitration at cycle 5; b: cycles 6..10.
  ASSERT_EQ(h.slave.begins.size(), 2u);
  EXPECT_EQ(h.slave.begins[1].second, 6u);
  EXPECT_EQ(h.masters[1].completions[0], 10u);
}

TEST(BusProtocol, NonOverlappedInsertsGap) {
  BusHarness h(5, 4, /*overlapped=*/false);
  BusRequest a;
  a.master = 0;
  BusRequest b;
  b.master = 1;
  h.bus.request(a, 0);
  h.bus.request(b, 0);
  h.kernel.run(15);
  // a: 1..5; idle arbitration cycle 6; b: 7..11.
  ASSERT_EQ(h.slave.begins.size(), 2u);
  EXPECT_EQ(h.slave.begins[1].second, 7u);
}

TEST(BusProtocol, BusyAndIdleAccounting) {
  BusHarness h(5);
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  h.kernel.run(10);
  const auto& s = h.bus.statistics();
  EXPECT_EQ(s.total_cycles, 10u);
  EXPECT_EQ(s.busy_cycles, 5u);
  EXPECT_EQ(s.idle_cycles, 5u);
}

TEST(BusProtocol, WaitAccounting) {
  BusHarness h(5);
  BusRequest a;
  a.master = 0;
  BusRequest b;
  b.master = 1;
  h.bus.request(a, 0);
  h.bus.request(b, 0);
  h.kernel.run(15);
  const auto& s = h.bus.statistics();
  // a waited 1 cycle (arbitration); b waited 6 (raised at 0, started at 6).
  EXPECT_EQ(s.master[0].wait_cycles, 1u);
  EXPECT_EQ(s.master[1].wait_cycles, 6u);
  EXPECT_EQ(s.master[1].max_wait, 6u);
  EXPECT_EQ(s.master[0].hold_cycles, 5u);
}

TEST(BusProtocol, OccupancyAndGrantShares) {
  BusHarness h(5);
  BusRequest a;
  a.master = 0;
  h.bus.request(a, 0);
  h.kernel.run(10);
  const auto& s = h.bus.statistics();
  EXPECT_DOUBLE_EQ(s.occupancy_share(0), 0.5);
  EXPECT_DOUBLE_EQ(s.grant_share(0), 1.0);
  EXPECT_DOUBLE_EQ(s.occupancy_share(1), 0.0);
}

TEST(BusProtocol, TotalsSumPerMasterCounters) {
  // totals() is the one-pass sum the metrics probes build shares from;
  // the O(1) grant_share overload must agree with the re-summing one.
  BusStatistics s;
  s.master.resize(3);
  s.master[0] = {.requests = 4,
                 .grants = 3,
                 .completions = 3,
                 .wait_cycles = 9,
                 .hold_cycles = 15,
                 .max_wait = 5};
  s.master[2] = {.requests = 2,
                 .grants = 1,
                 .completions = 1,
                 .wait_cycles = 4,
                 .hold_cycles = 28,
                 .max_wait = 4};
  const auto t = s.totals();
  EXPECT_EQ(t.requests, 6u);
  EXPECT_EQ(t.grants, 4u);
  EXPECT_EQ(t.completions, 4u);
  EXPECT_EQ(t.wait_cycles, 13u);
  EXPECT_EQ(t.hold_cycles, 43u);
  for (MasterId m = 0; m < 3; ++m) {
    EXPECT_DOUBLE_EQ(s.grant_share(m, t), s.grant_share(m));
  }
  EXPECT_DOUBLE_EQ(s.grant_share(0, t), 0.75);
  EXPECT_DOUBLE_EQ(s.grant_share(1, t), 0.0);
}

// --- request legality ----------------------------------------------------------

TEST(BusProtocol, DoubleRequestRejected) {
  BusHarness h(5);
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  EXPECT_THROW(h.bus.request(req, 0), std::invalid_argument);
}

TEST(BusProtocol, RequestWhileHoldingRejected) {
  BusHarness h(5);
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  h.kernel.run(3);  // transfer in flight
  EXPECT_TRUE(h.bus.is_holding(0));
  EXPECT_THROW(h.bus.request(req, 3), std::invalid_argument);
}

TEST(BusProtocol, CanRequestAgainAfterCompletion) {
  BusHarness h(5);
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  h.kernel.run(6);  // completed at end of cycle 5
  EXPECT_TRUE(h.bus.can_request(0));
  EXPECT_NO_THROW(h.bus.request(req, 6));
}

TEST(BusProtocol, BadMasterIdRejected) {
  BusHarness h(5);
  BusRequest req;
  req.master = 99;
  EXPECT_THROW(h.bus.request(req, 0), std::invalid_argument);
}

// --- filter hooks ----------------------------------------------------------------

TEST(BusFilter, OnCycleSeesHolderEveryCycle) {
  BusHarness h(3);
  SpyFilter filter;
  h.bus.set_filter(&filter);
  BusRequest req;
  req.master = 1;
  h.bus.request(req, 0);
  h.kernel.run(6);
  // Cycle 0: idle (arbitrating); cycles 1..3: master 1 holds; 4,5: idle.
  ASSERT_EQ(filter.holders.size(), 6u);
  EXPECT_EQ(filter.holders[0], kNoMaster);
  EXPECT_EQ(filter.holders[1], 1u);
  EXPECT_EQ(filter.holders[2], 1u);
  EXPECT_EQ(filter.holders[3], 1u);
  EXPECT_EQ(filter.holders[4], kNoMaster);
}

TEST(BusFilter, IneligibleRequestWaits) {
  BusHarness h(5);
  SpyFilter filter;
  filter.allow_mask = 0u;  // nobody eligible
  h.bus.set_filter(&filter);
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  h.kernel.run(10);
  EXPECT_TRUE(h.slave.begins.empty());
  EXPECT_TRUE(h.bus.has_pending(0));

  filter.allow_mask = ~0u;  // release
  h.kernel.run(10);
  EXPECT_EQ(h.slave.begins.size(), 1u);
}

TEST(BusFilter, GrantNotification) {
  BusHarness h(5);
  SpyFilter filter;
  h.bus.set_filter(&filter);
  BusRequest req;
  req.master = 2;
  h.bus.request(req, 0);
  h.kernel.run(3);
  ASSERT_EQ(filter.grants.size(), 1u);
  EXPECT_EQ(filter.grants[0], 2u);
}

TEST(BusFilter, FilterSelectsAmongPending) {
  BusHarness h(5);
  SpyFilter filter;
  filter.allow_mask = 0b10;  // only master 1 eligible
  h.bus.set_filter(&filter);
  BusRequest a;
  a.master = 0;
  BusRequest b;
  b.master = 1;
  h.bus.request(a, 0);
  h.bus.request(b, 0);
  h.kernel.run(7);
  ASSERT_FALSE(h.slave.begins.empty());
  EXPECT_EQ(h.slave.begins[0].first, 1u);  // master 1 went first
}

// --- statistics reset -------------------------------------------------------------

TEST(BusProtocol, ResetStatisticsZeroes) {
  BusHarness h(5);
  BusRequest req;
  req.master = 0;
  h.bus.request(req, 0);
  h.kernel.run(10);
  h.bus.reset_statistics();
  const auto& s = h.bus.statistics();
  EXPECT_EQ(s.total_cycles, 0u);
  EXPECT_EQ(s.master[0].grants, 0u);
}

// --- holder/pending introspection ---------------------------------------------------

TEST(BusProtocol, HolderTracksTransfer) {
  BusHarness h(4);
  EXPECT_EQ(h.bus.holder(), kNoMaster);
  BusRequest req;
  req.master = 3;
  h.bus.request(req, 0);
  EXPECT_TRUE(h.bus.has_pending(3));
  h.kernel.run(2);  // transfer started at cycle 1
  EXPECT_EQ(h.bus.holder(), 3u);
  EXPECT_FALSE(h.bus.has_pending(3));
  h.kernel.run(10);
  EXPECT_EQ(h.bus.holder(), kNoMaster);
}

}  // namespace
}  // namespace cbus::bus
