// Cache model tests: geometry validation, hit/miss/eviction mechanics,
// dirty-victim tracking, placement functions, replacement policies, the
// store buffer, and reference-model equivalence checks.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cache/cache_config.hpp"
#include "cache/placement.hpp"
#include "cache/replacement.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/store_buffer.hpp"
#include "rng/rand_bank.hpp"

namespace cbus::cache {
namespace {

CacheConfig small_cache(PlacementKind placement = PlacementKind::kModulo,
                        ReplacementKind repl = ReplacementKind::kLru) {
  return CacheConfig{
      .size_bytes = 1024, .line_bytes = 32, .ways = 2,
      .placement = placement, .replacement = repl};  // 16 sets
}

// --- config -------------------------------------------------------------------

TEST(CacheConfig, GeometryDerivation) {
  const CacheConfig cfg = small_cache();
  EXPECT_EQ(cfg.n_lines(), 32u);
  EXPECT_EQ(cfg.n_sets(), 16u);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(CacheConfig, RejectsNonPowerOfTwoSets) {
  CacheConfig cfg = small_cache();
  cfg.size_bytes = 960;  // 15 sets
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(CacheConfig, RejectsNonPowerOfTwoLine) {
  CacheConfig cfg = small_cache();
  cfg.line_bytes = 24;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- placement ----------------------------------------------------------------

TEST(Placement, ModuloMasksLowBits) {
  EXPECT_EQ(modulo_index(0, 16), 0u);
  EXPECT_EQ(modulo_index(17, 16), 1u);
  EXPECT_EQ(modulo_index(31, 16), 15u);
}

TEST(Placement, RandomHashDeterministicPerSeed) {
  for (Addr line = 0; line < 100; ++line) {
    EXPECT_EQ(random_hash_index(line, 42, 64),
              random_hash_index(line, 42, 64));
  }
}

TEST(Placement, RandomHashSeedChangesLayout) {
  int differing = 0;
  for (Addr line = 0; line < 256; ++line) {
    if (random_hash_index(line, 1, 64) != random_hash_index(line, 2, 64)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 200);  // layouts essentially independent
}

TEST(Placement, RandomHashRoughlyUniform) {
  constexpr std::uint32_t kSets = 16;
  std::vector<int> counts(kSets, 0);
  for (Addr line = 0; line < 16'000; ++line) {
    ++counts[random_hash_index(line, 7, kSets)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 150);
}

// --- replacement -----------------------------------------------------------------

TEST(Replacement, LruPicksOldest) {
  LruReplacement lru;
  std::vector<WayMeta> ways(4);
  ways[0].last_use = 30;
  ways[1].last_use = 10;
  ways[2].last_use = 20;
  ways[3].last_use = 40;
  EXPECT_EQ(lru.victim(ways), 1u);
}

TEST(Replacement, RandomVictimInRange) {
  rng::RandBank bank(5);
  RandomReplacement random(bank.open("r"));
  std::vector<WayMeta> ways(4);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(random.victim(ways));
  for (const auto v : seen) EXPECT_LT(v, 4u);
  EXPECT_EQ(seen.size(), 4u);  // all ways eventually chosen
}

// --- SetAssocCache: basic mechanics -----------------------------------------------

TEST(Cache, MissThenHit) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  const auto first = cache.access(0x100, true, false);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.filled);
  const auto second = cache.access(0x100, true, false);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentWordHits) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  (void)cache.access(0x100, true, false);
  EXPECT_TRUE(cache.access(0x11C, true, false).hit);  // same 32B line
  EXPECT_FALSE(cache.access(0x120, true, false).hit);  // next line
}

TEST(Cache, NoAllocateLeavesCacheEmpty) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  (void)cache.access(0x100, /*allocate_on_miss=*/false, false);
  EXPECT_FALSE(cache.probe(0x100));
}

TEST(Cache, LruEvictionOrder) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");  // 2-way, modulo
  // Three lines mapping to set 0 (line addr multiples of 16).
  const Addr a = 0x0000;          // line 0 -> set 0
  const Addr b = 16u * 32u;       // line 16 -> set 0
  const Addr c = 32u * 32u;       // line 32 -> set 0
  (void)cache.access(a, true, false);
  (void)cache.access(b, true, false);
  (void)cache.access(a, true, false);        // a most recent
  const auto r = cache.access(c, true, false);  // evicts b (LRU)
  EXPECT_TRUE(r.victim_valid);
  EXPECT_EQ(r.victim_line, 16u);
  EXPECT_TRUE(cache.probe(a));
  EXPECT_FALSE(cache.probe(b));
  EXPECT_TRUE(cache.probe(c));
}

TEST(Cache, DirtyVictimReported) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  const Addr a = 0x0000;
  const Addr b = 16u * 32u;
  const Addr c = 32u * 32u;
  (void)cache.access(a, true, /*mark_dirty=*/true);  // dirty fill
  (void)cache.access(b, true, false);
  (void)cache.access(b, true, false);                 // a becomes LRU
  const auto r = cache.access(c, true, false);        // evicts dirty a
  EXPECT_TRUE(r.victim_valid);
  EXPECT_TRUE(r.victim_dirty);
  EXPECT_EQ(cache.stats().dirty_evictions, 1u);
}

TEST(Cache, HitMarksDirty) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  const Addr a = 0x0000;
  (void)cache.access(a, true, false);   // clean fill
  (void)cache.access(a, true, true);    // store hit dirties it
  const Addr b = 16u * 32u;
  const Addr c = 32u * 32u;
  (void)cache.access(b, true, false);
  (void)cache.access(b, true, false);
  const auto r = cache.access(c, true, false);
  EXPECT_TRUE(r.victim_dirty);
}

TEST(Cache, InvalidateRemovesLine) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  (void)cache.access(0x100, true, false);
  EXPECT_TRUE(cache.invalidate(0x100));
  EXPECT_FALSE(cache.probe(0x100));
  EXPECT_FALSE(cache.invalidate(0x100));  // already gone
}

TEST(Cache, ResetClearsAndReseeds) {
  rng::RandBank bank(1);
  SetAssocCache cache(
      small_cache(PlacementKind::kRandomHash, ReplacementKind::kLru), bank,
      "t");
  (void)cache.access(0x100, true, false);
  cache.reset(999);
  EXPECT_FALSE(cache.probe(0x100));
}

TEST(Cache, ProbeDoesNotDisturbLru) {
  rng::RandBank bank(1);
  SetAssocCache cache(small_cache(), bank, "t");
  const Addr a = 0x0000;
  const Addr b = 16u * 32u;
  const Addr c = 32u * 32u;
  (void)cache.access(a, true, false);
  (void)cache.access(b, true, false);
  // probe(a) must NOT refresh a's recency...
  EXPECT_TRUE(cache.probe(a));
  // ... so the next eviction still takes a (the LRU way).
  const auto r = cache.access(c, true, false);
  EXPECT_EQ(r.victim_line, 0u);
}

// Reference-model equivalence: the cache must agree with a brute-force
// simulation of LRU sets over a pseudo-random access pattern.
TEST(Cache, MatchesReferenceLruModel) {
  rng::RandBank bank(1);
  const CacheConfig cfg = small_cache();
  SetAssocCache cache(cfg, bank, "t");

  struct RefEntry {
    Addr line;
    std::uint64_t stamp;
  };
  std::map<std::uint32_t, std::vector<RefEntry>> ref_sets;
  std::uint64_t stamp = 0;

  std::uint64_t state = 12345;
  int agreement_checked = 0;
  for (int i = 0; i < 4000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const Addr addr = static_cast<Addr>((state >> 20) % 4096) * 4;
    const Addr line = addr / cfg.line_bytes;
    const std::uint32_t set = modulo_index(line, cfg.n_sets());

    auto& ways = ref_sets[set];
    const auto it = std::find_if(ways.begin(), ways.end(),
                                 [&](const RefEntry& e) { return e.line == line; });
    const bool ref_hit = it != ways.end();
    const auto got = cache.access(addr, true, false);
    ASSERT_EQ(got.hit, ref_hit) << "access " << i;
    ++agreement_checked;

    if (ref_hit) {
      it->stamp = ++stamp;
    } else {
      if (ways.size() >= cfg.ways) {
        auto victim = std::min_element(
            ways.begin(), ways.end(),
            [](const RefEntry& a, const RefEntry& b) { return a.stamp < b.stamp; });
        ways.erase(victim);
      }
      ways.push_back({line, ++stamp});
    }
  }
  EXPECT_EQ(agreement_checked, 4000);
}

// --- StoreBuffer -------------------------------------------------------------------

TEST(StoreBuffer, FifoOrder) {
  StoreBuffer sb(4);
  sb.push(0x100);
  sb.push(0x200);
  EXPECT_EQ(sb.front(), 0x100u);
  sb.pop();
  EXPECT_EQ(sb.front(), 0x200u);
}

TEST(StoreBuffer, FullAndEmpty) {
  StoreBuffer sb(2);
  EXPECT_TRUE(sb.empty());
  sb.push(1);
  sb.push(2);
  EXPECT_TRUE(sb.full());
  EXPECT_THROW(sb.push(3), std::invalid_argument);
  sb.pop();
  EXPECT_FALSE(sb.full());
}

TEST(StoreBuffer, PopEmptyRejected) {
  StoreBuffer sb(2);
  EXPECT_THROW(sb.pop(), std::invalid_argument);
  EXPECT_THROW((void)sb.front(), std::invalid_argument);
}

TEST(StoreBuffer, ContainsLineMatchesSameLine) {
  StoreBuffer sb(4);
  sb.push(0x104);
  EXPECT_TRUE(sb.contains_line(0x11F, 32));   // same 32B line
  EXPECT_FALSE(sb.contains_line(0x120, 32));  // adjacent line
}

TEST(StoreBuffer, ClearEmpties) {
  StoreBuffer sb(4);
  sb.push(1);
  sb.clear();
  EXPECT_TRUE(sb.empty());
}

// --- random placement behaviour (the MBPTA enabler) ---------------------------------

TEST(Cache, RandomPlacementChangesConflictsAcrossSeeds) {
  // Two addresses that conflict under one seed should often not conflict
  // under another -- the property MBPTA runs rely on.
  const CacheConfig cfg =
      small_cache(PlacementKind::kRandomHash, ReplacementKind::kLru);
  int conflict_seeds = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    if (random_hash_index(0x10, seed, cfg.n_sets()) ==
        random_hash_index(0x50, seed, cfg.n_sets())) {
      ++conflict_seeds;
    }
  }
  // 16 sets -> expect ~4/64 conflicts; definitely not all or none.
  EXPECT_GT(conflict_seeds, 0);
  EXPECT_LT(conflict_seeds, 20);
}

}  // namespace
}  // namespace cbus::cache
