// Unit + statistical smoke tests for cbus_rng: determinism per seed,
// independence of channels, absence of sampling bias, hardware-generator
// periods.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/lfsr.hpp"
#include "rng/mwc.hpp"
#include "rng/permutation.hpp"
#include "rng/rand_bank.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xorshift.hpp"

namespace cbus::rng {
namespace {

// --- determinism -------------------------------------------------------------

TEST(SplitMix64, DeterministicPerSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(XorShift32, NeverReturnsZeroState) {
  XorShift32 g(123);
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(g.next(), 0u);
}

TEST(XorShift32, ZeroSeedRemapped) {
  XorShift32 g(0);  // zero state would be a fixed point; must be remapped
  EXPECT_NE(g.next(), 0u);
}

TEST(XorShift64Star, Deterministic) {
  XorShift64Star a(7);
  XorShift64Star b(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
}

// --- LFSR -------------------------------------------------------------------

TEST(Lfsr32, BitBalanceRoughlyHalf) {
  Lfsr32 lfsr(0xACE1u);
  int ones = 0;
  constexpr int kBits = 100'000;
  for (int i = 0; i < kBits; ++i) ones += lfsr.step() ? 1 : 0;
  // Expected 50% +- 5 sigma (sigma = sqrt(n)/2 ~ 158).
  EXPECT_NEAR(ones, kBits / 2, 800);
}

TEST(Lfsr32, StateNeverZero) {
  Lfsr32 lfsr(0);  // remapped to 1
  for (int i = 0; i < 1000; ++i) {
    (void)lfsr.step();
    EXPECT_NE(lfsr.state(), 0u);
  }
}

TEST(Lfsr32, BitsCollectsLsbFirst) {
  Lfsr32 a(0x1234);
  Lfsr32 b(0x1234);
  std::uint32_t expected = 0;
  for (unsigned i = 0; i < 8; ++i) {
    expected |= static_cast<std::uint32_t>(a.step()) << i;
  }
  EXPECT_EQ(b.bits(8), expected);
}

TEST(Lfsr32, LongPeriodNoShortCycle) {
  // A maximal 32-bit LFSR must not revisit its seed state quickly.
  Lfsr32 lfsr(0xBEEF);
  const std::uint32_t start = lfsr.state();
  for (int i = 0; i < 100'000; ++i) {
    (void)lfsr.step();
    ASSERT_NE(lfsr.state(), start) << "short cycle after " << i;
  }
}

// --- MWC ---------------------------------------------------------------------

TEST(Mwc32, DeterministicAndNonDegenerate) {
  Mwc32 a(99);
  Mwc32 b(99);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
    seen.insert(x);
  }
  EXPECT_GT(seen.size(), 990u);  // essentially no repeats in 1000 draws
}

TEST(Mwc32, MeanIsCentered) {
  Mwc32 g(2024);
  double sum = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += g.next();
  const double mean = sum / kN;
  const double expected = 2147483647.5;  // (2^32-1)/2
  EXPECT_NEAR(mean / expected, 1.0, 0.01);
}

// --- RandBank ----------------------------------------------------------------

TEST(RandBank, ChannelsAreIndependentStreams) {
  RandBank bank(7);
  auto a = bank.open("a");
  auto b = bank.open("b");
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.word() == b.word()) ++equal;
  }
  EXPECT_LT(equal, 5);  // collisions essentially never
}

TEST(RandBank, SameSeedSameChannels) {
  RandBank bank1(123);
  RandBank bank2(123);
  auto a1 = bank1.open("arb");
  auto a2 = bank2.open("arb");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.word(), a2.word());
}

TEST(RandBank, OpenOrderDefinesStream) {
  // Channel identity is positional (derived seeds in order), documenting
  // that consumers must open channels in a fixed order.
  RandBank bank1(5);
  RandBank bank2(5);
  auto first1 = bank1.open("x");
  auto first2 = bank2.open("y");
  EXPECT_EQ(first1.word(), first2.word());
}

TEST(RandBank, CountsWordsDrawn) {
  RandBank bank(1);
  auto c = bank.open("count");
  EXPECT_EQ(c.words_drawn(), 0u);
  (void)c.word();
  (void)c.word();
  EXPECT_EQ(c.words_drawn(), 2u);
}

// --- uniform_below / shuffle ---------------------------------------------------

TEST(UniformBelow, BoundsRespected) {
  XorShift32 g(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(uniform_below(g, 7u), 7u);
  }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
  XorShift32 g(5);
  EXPECT_EQ(uniform_below(g, 1u), 0u);
}

TEST(UniformBelow, RejectsZeroBound) {
  XorShift32 g(5);
  EXPECT_THROW((void)uniform_below(g, 0u), std::invalid_argument);
}

TEST(UniformBelow, NoModuloBias) {
  // Chi-square-ish check over a bound that does not divide 2^32.
  XorShift64Star g(17);
  constexpr std::uint32_t kBound = 6;
  constexpr int kN = 120'000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kN; ++i) ++counts[uniform_below(g, kBound)];
  const double expected = static_cast<double>(kN) / kBound;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Shuffle, ProducesPermutation) {
  XorShift32 g(11);
  std::vector<std::uint32_t> perm(8);
  random_permutation(g, std::span<std::uint32_t>(perm));
  std::set<std::uint32_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 7u);
}

TEST(Shuffle, UniformFirstPosition) {
  // Every master should appear in position 0 about n/4 of the time:
  // unbiased Fisher-Yates (biased shuffles skew grant probabilities).
  XorShift64Star g(23);
  constexpr int kN = 40'000;
  std::array<int, 4> first{};
  std::vector<std::uint32_t> perm(4);
  for (int i = 0; i < kN; ++i) {
    random_permutation(g, std::span<std::uint32_t>(perm));
    ++first[perm[0]];
  }
  for (const int c : first) {
    EXPECT_NEAR(c, kN / 4, 5 * std::sqrt(kN / 4.0));
  }
}

// --- distributions ------------------------------------------------------------

TEST(Distributions, UniformInInclusiveBounds) {
  XorShift32 g(3);
  for (int i = 0; i < 10'000; ++i) {
    const auto x = uniform_in(g, 10u, 20u);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
}

TEST(Distributions, UniformInSingleton) {
  XorShift32 g(3);
  EXPECT_EQ(uniform_in(g, 9u, 9u), 9u);
}

TEST(Distributions, BernoulliFrequency) {
  XorShift64Star g(31);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += bernoulli(g, 256, 1024) ? 1 : 0;
  EXPECT_NEAR(hits, kN / 4, 5 * std::sqrt(kN * 0.25 * 0.75));
}

TEST(Distributions, BernoulliEdges) {
  XorShift32 g(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(bernoulli(g, 0, 1024));
    EXPECT_TRUE(bernoulli(g, 1024, 1024));
  }
}

TEST(Distributions, Uniform01Range) {
  XorShift32 g(77);
  for (int i = 0; i < 10'000; ++i) {
    const double u = uniform01(g);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Distributions, GeometricMeanMatches) {
  // E[failures before success] = (1-p)/p; for p=0.25 that is 3.
  XorShift64Star g(41);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += geometric(g, 0.25);
  EXPECT_NEAR(sum / kN, 3.0, 0.1);
}

TEST(Distributions, GeometricPOneIsZero) {
  XorShift32 g(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric(g, 1.0), 0u);
}

}  // namespace
}  // namespace cbus::rng
