// Workload-generator tests: determinism per seed, profile validation,
// pattern properties (strides, footprints, burstiness), the EEMBC-like
// profiles and the streaming contender.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "workloads/eembc_like.hpp"
#include "workloads/fixed_stream.hpp"
#include "workloads/kernel_stream.hpp"
#include "workloads/phased.hpp"
#include "workloads/streaming.hpp"

namespace cbus::workloads {
namespace {

std::vector<cpu::MemOp> drain(cpu::OpStream& s, std::size_t max = 100'000) {
  std::vector<cpu::MemOp> ops;
  while (ops.size() < max) {
    auto op = s.next();
    if (!op.has_value()) break;
    ops.push_back(*op);
  }
  return ops;
}

// --- FixedOpsStream ------------------------------------------------------------

TEST(FixedOpsStream, ReplaysInOrder) {
  FixedOpsStream s({cpu::MemOp{MemOpKind::kLoad, 0x10, 1},
                    cpu::MemOp{MemOpKind::kStore, 0x20, 2}});
  const auto ops = drain(s);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].addr, 0x10u);
  EXPECT_EQ(ops[1].kind, MemOpKind::kStore);
  EXPECT_FALSE(s.next().has_value());
}

TEST(FixedOpsStream, RepeatLoops) {
  FixedOpsStream s({cpu::MemOp{MemOpKind::kLoad, 0x10, 0}}, 3);
  EXPECT_EQ(drain(s).size(), 3u);
}

TEST(FixedOpsStream, ResetRestarts) {
  FixedOpsStream s({cpu::MemOp{MemOpKind::kLoad, 0x10, 0}});
  (void)drain(s);
  s.reset(0);
  EXPECT_EQ(drain(s).size(), 1u);
}

TEST(FixedOpsStream, EmptyIsImmediatelyExhausted) {
  FixedOpsStream s({});
  EXPECT_FALSE(s.next().has_value());
}

// --- KernelStream --------------------------------------------------------------

KernelProfile basic_profile() {
  KernelProfile p;
  p.name = "test";
  p.footprint_bytes = 4096;
  p.n_ops = 500;
  p.pattern = AccessPattern::kRandom;
  p.store_permille_1024 = 256;
  p.gap_min = 2;
  p.gap_max = 6;
  return p;
}

TEST(KernelStream, EmitsExactlyNOps) {
  KernelStream s(basic_profile());
  s.reset(7);
  EXPECT_EQ(drain(s).size(), 500u);
}

TEST(KernelStream, DeterministicPerSeed) {
  KernelStream a(basic_profile());
  KernelStream b(basic_profile());
  a.reset(42);
  b.reset(42);
  const auto ops_a = drain(a);
  const auto ops_b = drain(b);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].addr, ops_b[i].addr);
    EXPECT_EQ(ops_a[i].kind, ops_b[i].kind);
    EXPECT_EQ(ops_a[i].compute_before, ops_b[i].compute_before);
  }
}

TEST(KernelStream, DifferentSeedsDiffer) {
  KernelStream a(basic_profile());
  KernelStream b(basic_profile());
  a.reset(1);
  b.reset(2);
  const auto ops_a = drain(a);
  const auto ops_b = drain(b);
  int same = 0;
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    if (ops_a[i].addr == ops_b[i].addr) ++same;
  }
  EXPECT_LT(same, 50);
}

TEST(KernelStream, AddressesStayInFootprint) {
  KernelStream s(basic_profile());
  s.reset(3);
  for (const auto& op : drain(s)) {
    EXPECT_GE(op.addr, 0x4000'0000u);
    EXPECT_LT(op.addr, 0x4000'0000u + 4096u);
  }
}

TEST(KernelStream, GapsWithinBounds) {
  KernelStream s(basic_profile());
  s.reset(4);
  for (const auto& op : drain(s)) {
    EXPECT_GE(op.compute_before, 2u);
    EXPECT_LE(op.compute_before, 6u);
  }
}

TEST(KernelStream, StoreFractionApproximatelyRespected) {
  KernelProfile p = basic_profile();
  p.n_ops = 20'000;
  KernelStream s(p);
  s.reset(5);
  int stores = 0;
  for (const auto& op : drain(s)) stores += op.kind == MemOpKind::kStore;
  EXPECT_NEAR(stores / 20'000.0, 0.25, 0.02);
}

TEST(KernelStream, StridedWalksSequentially) {
  KernelProfile p = basic_profile();
  p.pattern = AccessPattern::kStrided;
  p.stride_bytes = 32;
  p.store_permille_1024 = 0;
  p.hot_permille_1024 = 0;
  KernelStream s(p);
  s.reset(6);
  const auto ops = drain(s);
  for (std::size_t i = 1; i < 16; ++i) {
    EXPECT_EQ(ops[i].addr - ops[i - 1].addr, 32u);
  }
}

TEST(KernelStream, StridedWrapsAtFootprint) {
  KernelProfile p = basic_profile();
  p.pattern = AccessPattern::kStrided;
  p.stride_bytes = 1024;
  p.footprint_bytes = 4096;
  p.hot_permille_1024 = 0;
  p.n_ops = 10;
  KernelStream s(p);
  s.reset(6);
  const auto ops = drain(s);
  EXPECT_EQ(ops[4].addr, ops[0].addr);  // wrapped after 4 strides
}

TEST(KernelStream, BurstsProduceZeroGaps) {
  KernelProfile p = basic_profile();
  p.burst_prob_1024 = 512;
  p.burst_len = 4;
  p.n_ops = 5000;
  KernelStream s(p);
  s.reset(8);
  int zero_gaps = 0;
  for (const auto& op : drain(s)) zero_gaps += op.compute_before == 0;
  EXPECT_GT(zero_gaps, 1000);
}

TEST(KernelStream, HotRegionConcentratesAccesses) {
  KernelProfile p = basic_profile();
  p.footprint_bytes = 64 * 1024;
  p.hot_permille_1024 = 768;  // 75% hot
  p.hot_bytes = 1024;
  p.n_ops = 10'000;
  KernelStream s(p);
  s.reset(9);
  int hot = 0;
  for (const auto& op : drain(s)) {
    if (op.addr < 0x4000'0000u + 1024u) ++hot;
  }
  EXPECT_GT(hot, 7000);
}

TEST(KernelStream, PointerChaseCoversFootprint) {
  KernelProfile p = basic_profile();
  p.pattern = AccessPattern::kPointerChase;
  p.hot_permille_1024 = 0;
  p.n_ops = 4000;
  KernelStream s(p);
  s.reset(10);
  std::set<Addr> lines;
  for (const auto& op : drain(s)) lines.insert(op.addr / 32);
  EXPECT_GT(lines.size(), 60u);  // visits a good share of 128 lines
}

TEST(KernelStream, ProfileValidationRejectsBadConfig) {
  KernelProfile p = basic_profile();
  p.gap_min = 10;
  p.gap_max = 5;
  EXPECT_THROW(KernelStream{p}, std::invalid_argument);

  p = basic_profile();
  p.store_permille_1024 = 1000;
  p.atomic_permille_1024 = 100;
  EXPECT_THROW(KernelStream{p}, std::invalid_argument);

  p = basic_profile();
  p.hot_bytes = p.footprint_bytes + 1;
  EXPECT_THROW(KernelStream{p}, std::invalid_argument);
}

// --- EEMBC-like profiles ----------------------------------------------------------

TEST(EembcLike, Figure1KernelsExist) {
  for (const auto name : figure1_kernels()) {
    const auto stream = make_eembc(name);
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->name(), name);
  }
}

TEST(EembcLike, AllKernelsValidateAndRun) {
  for (const auto name : all_kernels()) {
    auto stream = make_eembc(name);
    stream->reset(11);
    const auto ops = drain(*stream);
    EXPECT_GT(ops.size(), 1000u) << name;
  }
}

TEST(EembcLike, UnknownKernelThrows) {
  EXPECT_THROW((void)eembc_profile("bogus"), std::invalid_argument);
}

TEST(EembcLike, MatrixIsTheBusHungriest) {
  // matrix must have the largest footprint (streaming beyond the L2 slice).
  const auto matrix = eembc_profile("matrix");
  for (const auto name : figure1_kernels()) {
    if (name == "matrix") continue;
    EXPECT_GE(matrix.footprint_bytes, eembc_profile(name).footprint_bytes);
  }
}

TEST(EembcLike, CanrdrFitsInL1) {
  EXPECT_LE(eembc_profile("canrdr").footprint_bytes, 16u * 1024u);
}

// --- StreamingStream ---------------------------------------------------------------

TEST(Streaming, NeverEnds) {
  StreamingStream s(0);
  for (int i = 0; i < 10'000; ++i) ASSERT_TRUE(s.next().has_value());
}

TEST(Streaming, TouchesFreshLines) {
  StreamingStream s(0, 0x8000'0000, 1024 * 1024, 32);
  std::set<Addr> lines;
  for (int i = 0; i < 1000; ++i) lines.insert(s.next()->addr / 32);
  EXPECT_EQ(lines.size(), 1000u);
}

TEST(Streaming, AllLoadsWithConfiguredGap) {
  StreamingStream s(3);
  for (int i = 0; i < 100; ++i) {
    const auto op = *s.next();
    EXPECT_EQ(op.kind, MemOpKind::kLoad);
    EXPECT_EQ(op.compute_before, 3u);
  }
}

TEST(Streaming, ResetRestartsSweep) {
  StreamingStream s(0);
  const Addr first = s.next()->addr;
  (void)s.next();
  s.reset(0);
  EXPECT_EQ(s.next()->addr, first);
}

// --- PhasedStream ----------------------------------------------------------------------

TEST(Phased, ConcatenatesPhasesInOrder) {
  KernelProfile a = basic_profile();
  a.name = "ph-a";
  a.n_ops = 10;
  a.base = 0x1000'0000;
  KernelProfile b = basic_profile();
  b.name = "ph-b";
  b.n_ops = 5;
  b.base = 0x2000'0000;
  PhasedStream s({a, b});
  s.reset(1);
  const auto ops = drain(s);
  ASSERT_EQ(ops.size(), 15u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_LT(ops[i].addr, 0x2000'0000u);
  for (std::size_t i = 10; i < 15; ++i) EXPECT_GE(ops[i].addr, 0x2000'0000u);
}

TEST(Phased, IterationsRepeatTheSequence) {
  KernelProfile a = basic_profile();
  a.name = "ph-it";
  a.n_ops = 7;
  PhasedStream s({a}, /*iterations=*/3);
  s.reset(2);
  EXPECT_EQ(drain(s).size(), 21u);
}

TEST(Phased, DeterministicPerSeed) {
  KernelProfile a = basic_profile();
  a.name = "ph-det";
  a.n_ops = 50;
  PhasedStream s1({a}, 2);
  PhasedStream s2({a}, 2);
  s1.reset(9);
  s2.reset(9);
  const auto ops1 = drain(s1);
  const auto ops2 = drain(s2);
  ASSERT_EQ(ops1.size(), ops2.size());
  for (std::size_t i = 0; i < ops1.size(); ++i) {
    EXPECT_EQ(ops1[i].addr, ops2[i].addr);
  }
}

TEST(Phased, NameListsPhases) {
  KernelProfile a = basic_profile();
  a.name = "alpha";
  KernelProfile b = basic_profile();
  b.name = "beta";
  PhasedStream s({a, b});
  EXPECT_EQ(s.name(), "phased(alpha+beta)");
}

TEST(Phased, RejectsEmptyAndZeroIterations) {
  EXPECT_THROW(PhasedStream({}, 1), std::invalid_argument);
  KernelProfile a = basic_profile();
  EXPECT_THROW(PhasedStream({a}, 0), std::invalid_argument);
}

TEST(Phased, ResetRestartsFromPhaseZero) {
  KernelProfile a = basic_profile();
  a.name = "ph-reset";
  a.n_ops = 5;
  PhasedStream s({a}, 2);
  s.reset(3);
  (void)drain(s);
  s.reset(3);
  EXPECT_EQ(s.current_phase(), 0u);
  EXPECT_EQ(drain(s).size(), 10u);
}

}  // namespace
}  // namespace cbus::workloads
